// Figure 13: charging-gap ratio (%) vs congestion level, per
// application, for the three schemes (c = 0.5).
#include "bench_common.hpp"

using namespace tlc;
using namespace tlc::testbed;

int main(int argc, char** argv) {
  const auto options = bench::parse_options(argc, argv);
  print_banner("Figure 13: gap ratio under congestion");
  bench::print_mode(options);

  for (AppKind app : bench::paper_apps()) {
    std::printf("\n--- %s ---\n", app_name(app));
    TextTable table({"Background (Mbps)", "Legacy 4G/5G", "TLC-random",
                     "TLC-optimal"});
    for (double bg : options.background_levels()) {
      auto config = bench::base_scenario(options, app, bg);
      const auto result = run_experiment(config);
      table.add_row({cell(bg, 0),
                     cell_pct(result.mean_gap_ratio(Scheme::Legacy)),
                     cell_pct(result.mean_gap_ratio(Scheme::TlcRandom)),
                     cell_pct(result.mean_gap_ratio(Scheme::TlcOptimal))});
    }
    table.print();
  }

  std::printf(
      "\npaper reference (Fig 13): legacy ratios climb towards 20-30%% at "
      "160 Mbps for the\nbest-effort apps while TLC-optimal stays flat "
      "(~2%%); QCI=7 gaming is shielded by its\ndedicated bearer, so even "
      "legacy stays low there.\n");
  return 0;
}
