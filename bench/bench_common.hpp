// Shared plumbing for the figure/table bench binaries.
//
// Every bench runs standalone with reduced defaults (so the whole bench
// directory executes in minutes) and accepts:
//   --full        paper-scale sweeps (longer cycles, more repetitions)
//   --seed=N      experiment seed
//   --json=PATH   also write machine-readable results to PATH (benches
//                 that support it; consumed by the bench_report target)
#pragma once

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "testbed/experiment.hpp"
#include "testbed/report.hpp"
#include "testbed/scenario.hpp"

namespace tlc::bench {

struct BenchOptions {
  bool full = false;
  std::uint64_t seed = 1;
  std::string json_path;  // empty = human-readable output only

  /// Charging cycle length for testbed sweeps.
  [[nodiscard]] SimTime cycle_length() const {
    return full ? 60 * kSecond : 20 * kSecond;
  }
  /// Cycles per configuration.
  [[nodiscard]] int cycles() const { return full ? 5 : 2; }
  /// Congestion sweep (Mbps of iperf UDP background).
  [[nodiscard]] std::vector<double> background_levels() const {
    if (full) return {0, 100, 120, 140, 160};
    return {0, 120, 160};
  }
};

inline BenchOptions parse_options(int argc, char** argv) {
  BenchOptions options;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) {
      options.full = true;
    } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      options.seed = std::strtoull(argv[i] + 7, nullptr, 10);
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      options.json_path = argv[i] + 7;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf("usage: %s [--full] [--seed=N] [--json=PATH]\n", argv[0]);
      std::exit(0);
    }
  }
  return options;
}

/// Base scenario for a bench sweep point.
inline testbed::ScenarioConfig base_scenario(const BenchOptions& options,
                                             testbed::AppKind app,
                                             double background_mbps) {
  testbed::ScenarioConfig config;
  config.app = app;
  config.background_mbps = background_mbps;
  config.cycle_length = options.cycle_length();
  config.cycles = options.cycles();
  config.seed = options.seed;
  return config;
}

/// The §7.1 application set (Table 2 / Figs 12-13 rows).
inline std::vector<testbed::AppKind> paper_apps() {
  return {testbed::AppKind::WebcamRtsp, testbed::AppKind::WebcamUdp,
          testbed::AppKind::VrGvsp, testbed::AppKind::GamingQci7};
}

inline void print_mode(const BenchOptions& options) {
  std::printf("mode: %s (cycle=%.0fs x%d, seed=%llu)%s\n",
              options.full ? "full" : "quick",
              to_seconds(options.cycle_length()), options.cycles(),
              static_cast<unsigned long long>(options.seed),
              options.full ? "" : "  [--full for paper-scale sweeps]");
}

}  // namespace tlc::bench
