// Table 2: average charging gap (c = 0.5) per application, for honest
// legacy 4G/5G, TLC-optimal and TLC-random.
//
// Like the paper, the averages span a sweep of congestion levels (the
// experiments "repeat ... with various congestion" §7.1), so the legacy
// column reflects both clean and overloaded conditions.
#include "bench_common.hpp"

using namespace tlc;
using namespace tlc::testbed;

int main(int argc, char** argv) {
  const auto options = bench::parse_options(argc, argv);
  print_banner("Table 2: average charging gap (c = 0.5)");
  bench::print_mode(options);

  TextTable table({"Application", "Avg bitrate (Mbps)",
                   "Legacy gap (MB/hr)", "Legacy eps",
                   "TLC-opt gap (MB/hr)", "TLC-opt eps",
                   "TLC-rand gap (MB/hr)", "TLC-rand eps"});

  for (AppKind app : bench::paper_apps()) {
    double bitrate_sum = 0.0;
    int bitrate_n = 0;
    std::map<Scheme, RunningStats> gap;
    std::map<Scheme, RunningStats> eps;
    for (double bg : options.background_levels()) {
      auto config = bench::base_scenario(options, app, bg);
      const auto result = run_experiment(config);
      for (const CycleMeasurements& c : result.cycles) {
        bitrate_sum += static_cast<double>(c.true_sent) * 8.0 / 1e6 /
                       to_seconds(config.cycle_length);
        ++bitrate_n;
      }
      for (const auto& [scheme, outcomes] : result.outcomes) {
        for (const CycleOutcome& o : outcomes) {
          gap[scheme].add(o.gap_mb_per_hr);
          eps[scheme].add(o.gap_ratio);
        }
      }
    }
    table.add_row({app_name(app),
                   cell(bitrate_sum / bitrate_n, 2),
                   cell(gap[Scheme::Legacy].mean(), 2),
                   cell_pct(eps[Scheme::Legacy].mean()),
                   cell(gap[Scheme::TlcOptimal].mean(), 2),
                   cell_pct(eps[Scheme::TlcOptimal].mean()),
                   cell(gap[Scheme::TlcRandom].mean(), 2),
                   cell_pct(eps[Scheme::TlcRandom].mean())});
  }
  table.print();

  std::printf(
      "\npaper reference (Table 2, averaged over its sweep):\n"
      "  WebCam (RTSP)    0.77 Mbps  legacy 16.56 MB/hr (17.0%%)  "
      "opt 3.27 (2.2%%)  rand 6.02 (5.1%%)\n"
      "  WebCam (UDP)     1.73 Mbps  legacy 54.68 MB/hr (8.1%%)   "
      "opt 15.59 (2.0%%) rand 23.72 (3.3%%)\n"
      "  VRidge (Portal2) 9.0 Mbps   legacy 384.49 MB/hr (21.9%%) "
      "opt 48.07 (1.8%%) rand 93.3 (4.5%%)\n"
      "  Gaming QCI=7     0.02 Mbps  legacy 0.34 MB/hr (3.2%%)    "
      "opt 0.18 (1.6%%)  rand 0.21 (1.9%%)\n"
      "shape check: TLC-optimal cuts the legacy gap by ~50-90%% and stays "
      "near ~2%% ratio;\nTLC-random lands in between.\n");
  return 0;
}
