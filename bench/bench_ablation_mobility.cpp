// Ablation: link-layer mobility as a charging-gap source (§3.1 cause 2).
//
// The §2.2 targeted-ad cameras are static, but V2X-style deployments
// move: every cell crossing interrupts the radio (and occasionally
// fails). Sweeping device speed shows handover loss feeding the legacy
// gap while TLC-optimal stays flat — the same cancellation covers every
// loss layer.
#include "bench_common.hpp"

using namespace tlc;
using namespace tlc::testbed;

int main(int argc, char** argv) {
  const auto options = bench::parse_options(argc, argv);
  print_banner("Ablation: charging gap vs device mobility");
  bench::print_mode(options);

  struct Profile {
    const char* label;
    double speed_mps;
  };
  const Profile profiles[] = {
      {"static (roadside camera)", 0.0},
      {"pedestrian (1.4 m/s)", 1.4},
      {"urban driving (14 m/s)", 14.0},
      {"highway (33 m/s)", 33.0},
  };

  TextTable table({"Mobility", "Handovers/hr", "Loss", "Legacy 4G/5G",
                   "TLC-optimal"});
  for (const Profile& profile : profiles) {
    auto config =
        bench::base_scenario(options, AppKind::WebcamUdpDownlink, 0.0);
    config.cycle_length = options.full ? 120 * kSecond : 60 * kSecond;
    config.mobility.speed_mps = profile.speed_mps;
    config.mobility.cell_radius_m = 300.0;
    // Inter-frequency, break-before-make handovers with RRC
    // re-establishment on failure — the lossy end of the [10]
    // measurements.
    config.mobility.interruption_ms = 150.0;
    config.mobility.failure_prob = 0.08;
    config.mobility.failure_outage_s = 2.0;
    config.enodeb.queue_limit_bytes = 160 * 1024;

    Testbed probe(config);
    probe.run();
    const double hours =
        to_seconds(static_cast<SimTime>(config.cycles) *
                   config.cycle_length) /
        3600.0;
    const double handovers_per_hr =
        static_cast<double>(probe.app_radio().handovers()) / hours;

    const auto result =
        run_experiment(config, {Scheme::Legacy, Scheme::TlcOptimal});
    double loss = 0.0;
    for (const CycleMeasurements& c : result.cycles) {
      loss += 1.0 - static_cast<double>(c.true_received) /
                        static_cast<double>(c.true_sent);
    }
    loss /= static_cast<double>(result.cycles.size());

    table.add_row({profile.label, cell(handovers_per_hr, 0), cell_pct(loss),
                   cell_pct(result.mean_gap_ratio(Scheme::Legacy)),
                   cell_pct(result.mean_gap_ratio(Scheme::TlcOptimal))});
  }
  table.print();

  std::printf(
      "\nreading: handover interruptions add loss roughly linearly in "
      "speed; legacy billing\ninherits it as gap while TLC's negotiated "
      "charge remains within measurement error —\nmobility-induced loss "
      "cancels exactly like congestion- or fading-induced loss.\n");
  return 0;
}
