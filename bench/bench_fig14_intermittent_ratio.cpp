// Figure 14: charging-gap ratio vs the intermittent disconnectivity
// ratio η (UDP WebCam streamed downlink, matching the Fig 4 setup; the
// paper notes other apps behave alike).
#include "bench_common.hpp"

using namespace tlc;
using namespace tlc::testbed;

int main(int argc, char** argv) {
  const auto options = bench::parse_options(argc, argv);
  print_banner("Figure 14: gap ratio vs intermittent disconnectivity");
  bench::print_mode(options);

  const std::vector<double> etas =
      options.full ? std::vector<double>{0.05, 0.07, 0.09, 0.11, 0.13, 0.15}
                   : std::vector<double>{0.05, 0.10, 0.15};

  TextTable table({"Target eta", "Measured eta", "Legacy 4G/5G",
                   "TLC-random", "TLC-optimal"});
  for (double eta : etas) {
    auto config = bench::base_scenario(options, AppKind::WebcamUdpDownlink, 0.0);
    config.disconnect_ratio = eta;
    config.mean_outage_s = 1.93;
    // Longer cycles smooth the stochastic outage process.
    config.cycle_length = options.full ? 180 * kSecond : 60 * kSecond;
    config.enodeb.queue_limit_bytes = 160 * 1024;  // as in the Fig 4 bench

    Testbed probe(config);  // measure realized η on an identical run
    probe.run();
    const double measured = probe.measured_disconnect_ratio();

    const auto result = run_experiment(config);
    table.add_row({cell_pct(eta, 0), cell_pct(measured, 1),
                   cell_pct(result.mean_gap_ratio(Scheme::Legacy)),
                   cell_pct(result.mean_gap_ratio(Scheme::TlcRandom)),
                   cell_pct(result.mean_gap_ratio(Scheme::TlcOptimal))});
  }
  table.print();

  std::printf(
      "\npaper reference (Fig 14): the legacy ratio grows with η (up to "
      "~15-20%% at η=15%%)\nwhile TLC-optimal stays near 2%%; heavier "
      "intermittent connectivity means bigger TLC savings.\n");
  return 0;
}
