// Figure 17: Proof-of-Charging cost (TLC-optimal).
//  * CDF of PoC negotiation time per device (real RSA-1024 crypto time
//    measured on this host, scaled by the device profiles, plus the
//    device <-> network round trips);
//  * CDF of PoC verification time per platform;
//  * the message-size table (LTE CDR / TLC CDR / CDA / PoC);
//  * verifier throughput (the paper: one Z840 verifies ~230K PoCs/hour).
#include <chrono>
#include <deque>

#include "bench_common.hpp"
#include "core/protocol.hpp"
#include "core/verifier.hpp"
#include "epc/cdr.hpp"
#include "epc/profiles.hpp"

using namespace tlc;
using namespace tlc::core;
using namespace tlc::testbed;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct NegotiationArtifacts {
  Bytes poc_wire;
  double device_crypto_s = 0.0;
  double network_crypto_s = 0.0;
  std::size_t cdr_size = 0;
  std::size_t cda_size = 0;
  std::size_t poc_size = 0;
};

NegotiationArtifacts run_negotiation(const crypto::RsaKeyPair& edge_kp,
                                     const crypto::RsaKeyPair& op_kp,
                                     const PlanRef& plan,
                                     double device_crypto_scale,
                                     std::uint64_t seed) {
  EndpointConfig op_config;
  op_config.role = PartyRole::Operator;
  op_config.own_private = op_kp.private_key;
  op_config.own_public = op_kp.public_key;
  op_config.peer_public = edge_kp.public_key;
  op_config.plan = plan;
  op_config.view = UsageView{100000000, 92000000};
  op_config.crypto_time_scale = 1.0;  // core runs on the workstation

  EndpointConfig edge_config = op_config;
  edge_config.role = PartyRole::EdgeVendor;
  edge_config.own_private = edge_kp.private_key;
  edge_config.own_public = edge_kp.public_key;
  edge_config.peer_public = op_kp.public_key;
  edge_config.crypto_time_scale = device_crypto_scale;

  OptimalStrategy op_strategy;
  OptimalStrategy edge_strategy;
  ProtocolEndpoint op(op_config, op_strategy, Rng(seed));
  ProtocolEndpoint edge(edge_config, edge_strategy, Rng(seed + 1));

  std::deque<std::pair<bool, Bytes>> wire;
  op.set_send([&](const Bytes& m) { wire.emplace_back(true, m); });
  edge.set_send([&](const Bytes& m) { wire.emplace_back(false, m); });
  op.start();
  while (!wire.empty()) {
    auto [to_edge, message] = wire.front();
    wire.pop_front();
    if (to_edge) {
      (void)edge.receive(message);
    } else {
      (void)op.receive(message);
    }
  }

  NegotiationArtifacts artifacts;
  artifacts.poc_wire = encode_signed_poc(*op.poc());
  artifacts.device_crypto_s = edge.crypto_seconds();
  artifacts.network_crypto_s = op.crypto_seconds();
  artifacts.cdr_size = op.last_cdr_size();
  artifacts.cda_size = edge.last_cda_size();
  artifacts.poc_size = op.last_poc_size();
  return artifacts;
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = bench::parse_options(argc, argv);
  print_banner("Figure 17: Proof-of-Charging cost (RSA-1024, TLC-optimal)");
  bench::print_mode(options);
  const int rounds = options.full ? 200 : 40;

  Rng key_rng(options.seed + 17);
  const auto edge_kp = crypto::rsa_generate(1024, key_rng);
  const auto op_kp = crypto::rsa_generate(1024, key_rng);
  const PlanRef plan{0, kHour, 0.5};

  // --- negotiation time per device ---
  std::printf("\nPoC negotiation time (crypto + device<->network RTTs):\n");
  NegotiationArtifacts last{};
  for (const epc::DeviceProfile& device :
       {epc::device_el20(), epc::device_pixel2xl(), epc::device_s7edge()}) {
    Samples times_ms;
    Samples crypto_share;
    Rng rtt_rng(options.seed + 23);
    for (int i = 0; i < rounds; ++i) {
      last = run_negotiation(edge_kp, op_kp, plan, device.crypto_scale,
                             options.seed + static_cast<std::uint64_t>(i));
      const double crypto_ms =
          (last.device_crypto_s + last.network_crypto_s) * 1e3;
      // CDR -> CDA -> PoC crosses the device<->core path three times.
      const double rtt_ms =
          1.5 * (to_millis(device.base_rtt) +
                 std::abs(rtt_rng.gaussian(0.0, device.rtt_jitter_ms)));
      times_ms.add(crypto_ms + rtt_ms);
      crypto_share.add(crypto_ms / (crypto_ms + rtt_ms));
    }
    std::printf("  %-10s mean %6.1f ms  p95 %6.1f ms  (crypto share %4.1f%%)\n",
                device.name.c_str(), times_ms.mean(), times_ms.quantile(0.95),
                crypto_share.mean() * 100.0);
  }
  std::printf(
      "  paper: 65.8 / 105.5 / 93.7 ms mean on EL20 / Pixel 2 XL / S7 Edge; "
      "crypto ~54.9%% of it.\n");

  // --- verification time per platform ---
  std::printf("\nPoC verification time (Algorithm 2):\n");
  const VerificationRequest request{last.poc_wire, plan, edge_kp.public_key,
                                    op_kp.public_key};
  Samples z840_ms;
  for (int i = 0; i < rounds; ++i) {
    const auto start = std::chrono::steady_clock::now();
    auto verified = verify_poc(request);
    const double elapsed = seconds_since(start);
    if (!verified) {
      std::printf("verification unexpectedly failed: %s\n",
                  verified.error().c_str());
      return 1;
    }
    z840_ms.add(elapsed * 1e3);
  }
  for (const epc::DeviceProfile& device : epc::all_devices()) {
    std::printf("  %-10s mean %6.2f ms  p95 %6.2f ms\n", device.name.c_str(),
                z840_ms.mean() * device.crypto_scale,
                z840_ms.quantile(0.95) * device.crypto_scale);
  }
  const double per_hour = 3600.0 / (z840_ms.mean() / 1e3);
  std::printf(
      "  workstation verifier throughput: %.0fK PoCs/hour (paper: a single "
      "Z840 ~230K/hour)\n",
      per_hour / 1000.0);

  // --- message sizes ---
  std::printf("\nMessage sizes:\n");
  epc::ChargingDataRecord legacy_cdr;
  TextTable sizes({"Message", "This impl (bytes)", "Paper (bytes)"});
  sizes.add_row({"LTE CDR (legacy)",
                 std::to_string(legacy_cdr.encode_compact().size()), "34"});
  sizes.add_row({"TLC CDR", std::to_string(last.cdr_size), "199"});
  sizes.add_row({"TLC CDA", std::to_string(last.cda_size), "398"});
  sizes.add_row({"TLC PoC", std::to_string(last.poc_size), "796"});
  sizes.add_row({"Total signaling (3 msgs)",
                 std::to_string(last.cdr_size + last.cda_size +
                                last.poc_size),
                 "1393"});
  sizes.print();
  return 0;
}
