// Figure 3: the raw data charging gap (MB/hr) under various congestion
// levels (iperf UDP background traffic, RSS >= -95 dBm).
//
// The "gap" here is the §3.2 measurement: the difference between the
// usage metered by the LTE gateway and by the edge device/server —
// i.e. the full loss-induced record divergence, before any charging
// scheme is applied.
#include "bench_common.hpp"

#include "testbed/testbed.hpp"

using namespace tlc;
using namespace tlc::testbed;

int main(int argc, char** argv) {
  const auto options = bench::parse_options(argc, argv);
  print_banner("Figure 3: charging gap vs congestion level");
  bench::print_mode(options);

  const std::vector<AppKind> apps = {AppKind::WebcamRtsp, AppKind::WebcamUdp,
                                     AppKind::VrGvsp};
  TextTable table({"Background (Mbps)", "WebCam (RTSP, UL) gap/hr (MB)",
                   "WebCam (UDP, UL) gap/hr (MB)",
                   "VRidge (GVSP, DL) gap/hr (MB)"});

  for (double bg : options.background_levels()) {
    std::vector<std::string> row{cell(bg, 0)};
    for (AppKind app : apps) {
      auto config = bench::base_scenario(options, app, bg);
      config.mean_rss_dbm = -92.0;  // the paper's "good radio" regime
      Testbed testbed(config);
      double gap_mb_hr = 0.0;
      const auto& cycles = testbed.run();
      for (const CycleMeasurements& c : cycles) {
        // Operator record (gateway) vs edge record for the app flow.
        const std::uint64_t edge_side =
            app_direction(app) == sim::Direction::Uplink ? c.edge_sent
                                                         : c.edge_received;
        const std::uint64_t diff = c.gateway_volume > edge_side
                                       ? c.gateway_volume - edge_side
                                       : edge_side - c.gateway_volume;
        gap_mb_hr += static_cast<double>(diff) / 1e6 /
                     (to_seconds(config.cycle_length) / 3600.0);
      }
      gap_mb_hr /= static_cast<double>(cycles.size());
      row.push_back(cell(gap_mb_hr, 1));
    }
    table.add_row(std::move(row));
  }
  table.print();

  std::printf(
      "\npaper reference (Fig 3): gaps grow with congestion, reaching\n"
      "~98 / ~252 / ~983 MB/hr for RTSP / UDP WebCam / VRidge at 160 Mbps.\n");
  return 0;
}
