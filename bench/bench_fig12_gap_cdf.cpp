// Figure 12: CDF of the per-cycle charging gap (MB/hr) for each
// application under Legacy 4G/5G, TLC-random and TLC-optimal (c = 0.5).
#include "bench_common.hpp"

using namespace tlc;
using namespace tlc::testbed;

int main(int argc, char** argv) {
  const auto options = bench::parse_options(argc, argv);
  print_banner("Figure 12: overall charging gap CDFs (c = 0.5)");
  bench::print_mode(options);

  for (AppKind app : bench::paper_apps()) {
    std::map<Scheme, Samples> samples;
    // The CDF pools cycles across the congestion sweep, plus a couple
    // of weak-signal points, mirroring the paper's mixed conditions.
    std::vector<std::pair<double, double>> conditions;
    for (double bg : options.background_levels()) {
      conditions.emplace_back(bg, -92.0);
    }
    conditions.emplace_back(0.0, -102.0);  // weak signal, no congestion
    int variant = 0;
    for (const auto& [bg, rss] : conditions) {
      auto config = bench::base_scenario(options, app, bg);
      config.mean_rss_dbm = rss;
      config.seed = options.seed + static_cast<std::uint64_t>(variant++);
      const auto result = run_experiment(config);
      for (const auto& [scheme, outcomes] : result.outcomes) {
        for (const CycleOutcome& o : outcomes) {
          samples[scheme].add(o.gap_mb_per_hr);
        }
      }
    }
    std::printf("\n--- %s ---\n", app_name(app));
    for (Scheme scheme :
         {Scheme::Legacy, Scheme::TlcRandom, Scheme::TlcOptimal}) {
      print_cdf(std::string("  ") + scheme_name(scheme), samples[scheme], 10,
                " MB/hr");
    }
  }

  std::printf(
      "\npaper reference (Fig 12): the legacy CDF extends far right "
      "(heavy-loss cycles);\nTLC-optimal stays tightly near zero and "
      "TLC-random sits between them for every app.\n");
  return 0;
}
