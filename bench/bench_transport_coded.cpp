// Network-coded settlement transport (DESIGN.md §17): what rateless
// RLNC buys over stop-and-wait on a lossy edge link.
//
// Sweep: drop rate {0, 5, 10, 20, 35, 50}% x generation size
// {16, 32, 64}. Each cell drives the same sealed-batch-sized payload
// through the same FaultyChannel twice:
//   rlnc            CodedTransfer/CodedReceiver — systematic burst,
//                   coded top-ups, one ACK per generation
//   stop_and_wait   one chunk in flight at a time, per-chunk ACK,
//                   fixed retransmit timeout equal to the coded path's
//                   ack_timeout_ticks (no backoff — deliberately
//                   generous to the baseline)
//
// Reported per row: virtual ticks to converge (the channel clock —
// how long the link is occupied), wire bytes, CPU wall, and the
// stop-and-wait/rlnc tick ratio. The §17 acceptance bar: rlnc
// converges in less link time than stop-and-wait at every drop rate
// >= 10% and stays within 1.5x at 0%; bench_report freshes these
// numbers into BENCH_transport.json.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "sim/rng_stream.hpp"
#include "transport/coded_session.hpp"
#include "transport/faulty_channel.hpp"
#include "transport/rlnc.hpp"
#include "transport/transport_config.hpp"
#include "util/rng.hpp"

namespace tlc::bench {
namespace {

using transport::FaultProfile;
using transport::FaultyChannel;
using Dir = transport::FaultyChannel::Dir;

using Clock = std::chrono::steady_clock;
constexpr int kSamples = 3;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

constexpr std::uint16_t kChunkBytes = 64;
constexpr std::uint64_t kAckTimeoutTicks = 32;  // both disciplines
constexpr std::uint64_t kTickBudget = 1ULL << 22;

struct RunStats {
  bool delivered = false;
  std::uint64_t ticks = 0;
  std::uint64_t wire_bytes = 0;
};

FaultProfile drop_profile(double drop) {
  FaultProfile profile;
  profile.drop = drop;
  return profile;
}

RunStats run_rlnc(std::uint16_t generation_size, double drop,
                  const Bytes& payload, std::uint64_t channel_seed,
                  std::uint64_t coeff_seed) {
  transport::CodedConfig config;
  config.generation_size = generation_size;
  config.chunk_bytes = kChunkBytes;
  config.ack_timeout_ticks = kAckTimeoutTicks;
  config.max_ticks = kTickBudget;
  FaultyChannel channel(drop_profile(drop), drop_profile(drop), channel_seed);
  transport::CodedReceiver receiver(config);
  transport::CodedTransfer transfer(config, channel, /*transfer_id=*/1,
                                    payload, coeff_seed);
  const transport::TransferOutcome outcome = transfer.run(receiver);
  RunStats stats;
  stats.delivered = outcome.delivered;
  stats.ticks = outcome.end_tick;
  stats.wire_bytes = outcome.counters.bytes_on_wire;
  if (outcome.delivered) {
    const auto decoded = receiver.payload();
    if (!decoded.has_value() || decoded.value() != payload) {
      std::printf("bench_transport_coded: decode mismatch\n");
      stats.delivered = false;
    }
  }
  return stats;
}

/// Stop-and-wait baseline over the identical channel model: 4-byte
/// sequence header + chunk, one frame outstanding, resend on a fixed
/// timeout, 4-byte ACK per chunk. Drop-only profiles keep frames
/// intact, so no CRC is needed to make the comparison fair.
RunStats run_stop_and_wait(double drop, const Bytes& payload,
                           std::uint64_t channel_seed) {
  FaultyChannel channel(drop_profile(drop), drop_profile(drop), channel_seed);
  const std::vector<Bytes> chunks =
      transport::chunk_payload(payload, kChunkBytes);
  RunStats stats;
  std::uint64_t now = 0;
  for (std::uint32_t index = 0; index < chunks.size(); ++index) {
    Bytes frame;
    frame.reserve(4 + chunks[index].size());
    frame.push_back(static_cast<std::uint8_t>(index >> 24));
    frame.push_back(static_cast<std::uint8_t>(index >> 16));
    frame.push_back(static_cast<std::uint8_t>(index >> 8));
    frame.push_back(static_cast<std::uint8_t>(index));
    frame.insert(frame.end(), chunks[index].begin(), chunks[index].end());

    bool acked = false;
    std::uint64_t deadline = now;  // first send is immediate
    while (!acked) {
      if (now >= deadline) {
        channel.send(Dir::ToOperator, frame, now);
        stats.wire_bytes += frame.size();
        deadline = now + kAckTimeoutTicks;
      }
      for (const Bytes& wire : channel.deliver_due(Dir::ToOperator, now)) {
        if (wire.size() < 4) continue;
        // Receiver acks whatever sequence it sees (duplicates included
        // — the sender filters stale ACKs below).
        const Bytes ack(wire.begin(), wire.begin() + 4);
        channel.send(Dir::ToEdge, ack, now);
        stats.wire_bytes += ack.size();
      }
      for (const Bytes& wire : channel.deliver_due(Dir::ToEdge, now)) {
        if (wire.size() == 4 &&
            (static_cast<std::uint32_t>(wire[0]) << 24 |
             static_cast<std::uint32_t>(wire[1]) << 16 |
             static_cast<std::uint32_t>(wire[2]) << 8 |
             static_cast<std::uint32_t>(wire[3])) == index) {
          acked = true;
        }
      }
      if (acked) break;
      const std::uint64_t due = channel.earliest_due();
      const std::uint64_t next =
          due == FaultyChannel::kIdle ? deadline : std::min(due, deadline);
      now = std::max(now + 1, next);
      if (now > kTickBudget) {
        stats.ticks = now;
        return stats;  // delivered stays false
      }
    }
  }
  stats.delivered = true;
  stats.ticks = now;
  return stats;
}

struct Row {
  int drop_pct = 0;
  std::uint16_t generation_size = 0;
  std::uint64_t chunks = 0;
  RunStats rlnc;
  RunStats saw;
  double rlnc_wall = 0;
  double saw_wall = 0;
  double tick_ratio = 0;  // stop-and-wait ticks / rlnc ticks
};

template <typename Fn>
double median_wall(Fn&& body) {
  std::vector<double> walls;
  for (int i = 0; i < kSamples; ++i) {
    const auto start = Clock::now();
    body();
    walls.push_back(seconds_since(start));
  }
  std::sort(walls.begin(), walls.end());
  return walls[walls.size() / 2];
}

void write_json(const std::string& path, const std::vector<Row>& rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_transport_coded: cannot write %s\n",
                 path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"transport_coded\",\n  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    std::fprintf(
        f,
        "    {\"drop_pct\": %d, \"generation_size\": %u, \"chunks\": %llu, "
        "\"rlnc_ticks\": %llu, \"saw_ticks\": %llu, \"tick_ratio\": %.2f, "
        "\"rlnc_wire_bytes\": %llu, \"saw_wire_bytes\": %llu, "
        "\"rlnc_wall_seconds\": %.6f, \"saw_wall_seconds\": %.6f, "
        "\"rlnc_delivered\": %s, \"saw_delivered\": %s}%s\n",
        row.drop_pct, row.generation_size,
        static_cast<unsigned long long>(row.chunks),
        static_cast<unsigned long long>(row.rlnc.ticks),
        static_cast<unsigned long long>(row.saw.ticks), row.tick_ratio,
        static_cast<unsigned long long>(row.rlnc.wire_bytes),
        static_cast<unsigned long long>(row.saw.wire_bytes), row.rlnc_wall,
        row.saw_wall, row.rlnc.delivered ? "true" : "false",
        row.saw.delivered ? "true" : "false",
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

int run(const BenchOptions& options) {
  print_mode(options);

  // Sealed-batch-sized payload: ~8 KiB quick (a small UE group's
  // receipts), ~32 KiB under --full.
  Rng payload_rng = sim::stream_rng(options.seed, 0x7c0ded);
  const Bytes payload = payload_rng.bytes(options.full ? 32768 : 8192);
  const std::uint64_t chunk_count =
      (payload.size() + kChunkBytes - 1) / kChunkBytes;

  std::printf("payload: %zu bytes (%llu chunks of %u)\n", payload.size(),
              static_cast<unsigned long long>(chunk_count), kChunkBytes);
  std::printf("%6s %5s %12s %12s %7s %12s %12s\n", "drop%", "gen",
              "rlnc ticks", "saw ticks", "ratio", "rlnc bytes", "saw bytes");

  std::vector<Row> rows;
  bool bar_met = true;
  for (const int drop_pct : {0, 5, 10, 20, 35, 50}) {
    const double drop = drop_pct / 100.0;
    const std::uint64_t channel_seed = sim::stream_seed(
        options.seed, 0xc4a7ULL + static_cast<std::uint64_t>(drop_pct));
    for (const std::uint16_t gen :
         {std::uint16_t{16}, std::uint16_t{32}, std::uint16_t{64}}) {
      Row row;
      row.drop_pct = drop_pct;
      row.generation_size = gen;
      row.chunks = chunk_count;
      const std::uint64_t coeff_seed =
          sim::stream_seed(options.seed, transport::kCodedCoeffStream);
      row.rlnc_wall = median_wall([&] {
        row.rlnc = run_rlnc(gen, drop, payload, channel_seed, coeff_seed);
      });
      row.saw_wall = median_wall(
          [&] { row.saw = run_stop_and_wait(drop, payload, channel_seed); });
      row.tick_ratio = row.rlnc.ticks > 0
                           ? static_cast<double>(row.saw.ticks) /
                                 static_cast<double>(row.rlnc.ticks)
                           : 0.0;
      std::printf("%6d %5u %12llu %12llu %6.2fx %12llu %12llu\n", drop_pct,
                  gen, static_cast<unsigned long long>(row.rlnc.ticks),
                  static_cast<unsigned long long>(row.saw.ticks),
                  row.tick_ratio,
                  static_cast<unsigned long long>(row.rlnc.wire_bytes),
                  static_cast<unsigned long long>(row.saw.wire_bytes));
      // §17 acceptance: decisive win past 10% loss, never worse than
      // 1.5x the baseline on a clean link.
      if (drop_pct >= 10 && row.tick_ratio <= 1.0) bar_met = false;
      if (drop_pct == 0 && row.saw.ticks > 0 &&
          static_cast<double>(row.rlnc.ticks) >
              1.5 * static_cast<double>(row.saw.ticks)) {
        bar_met = false;
      }
      if (!row.rlnc.delivered || !row.saw.delivered) bar_met = false;
      rows.push_back(row);
    }
  }

  std::printf("acceptance (rlnc wins >=10%% drop, within 1.5x at 0%%): %s\n",
              bar_met ? "MET" : "MISSED");
  if (!options.json_path.empty()) {
    write_json(options.json_path, rows);
  }
  return bar_met ? 0 : 1;
}

}  // namespace
}  // namespace tlc::bench

int main(int argc, char** argv) {
  return tlc::bench::run(tlc::bench::parse_options(argc, argv));
}
