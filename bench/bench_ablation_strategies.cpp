// Ablation: the strategy matrix behind Theorems 2-4. Every pairing of
// edge/operator strategies, with the outcome's position inside the
// [x̂o, x̂e] band, rounds to convergence, and failure behaviour of the
// misbehaving strategies.
#include "bench_common.hpp"

#include <memory>

#include "core/negotiation.hpp"

using namespace tlc;
using namespace tlc::core;
using namespace tlc::testbed;

namespace {

std::unique_ptr<Strategy> make_strategy(const std::string& kind, Rng& rng) {
  if (kind == "honest") return std::make_unique<HonestStrategy>();
  if (kind == "optimal") return std::make_unique<OptimalStrategy>();
  if (kind == "random") {
    return std::make_unique<RandomSelfishStrategy>(rng.fork());
  }
  if (kind == "reject-all") return std::make_unique<RejectAllStrategy>();
  return std::make_unique<GreedyOverclaimStrategy>(1.5);
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = bench::parse_options(argc, argv);
  print_banner("Ablation: strategy matrix (Theorems 2-4)");
  bench::print_mode(options);

  const std::vector<std::string> kinds = {"honest", "optimal", "random",
                                          "reject-all", "greedy"};
  const std::uint64_t sent = 100000000;      // x̂e
  const std::uint64_t received = 88000000;   // x̂o (12% loss)
  const UsageView view{sent, received};
  const int trials = options.full ? 200 : 50;

  TextTable table({"Edge strategy", "Operator strategy", "Completed",
                   "Rounds", "x position in [x_o, x_e]", "Bound held"});
  Rng rng(options.seed);
  for (const std::string& edge_kind : kinds) {
    for (const std::string& op_kind : kinds) {
      int completed = 0;
      RunningStats rounds;
      RunningStats position;
      bool bound_held = true;
      for (int t = 0; t < trials; ++t) {
        auto edge = make_strategy(edge_kind, rng);
        auto op = make_strategy(op_kind, rng);
        const auto result = negotiate(*edge, view, *op, view, {0.5, 32, 0});
        rounds.add(result.rounds);
        if (!result.completed) continue;
        ++completed;
        bound_held = bound_held && result.charged >= received &&
                     result.charged <= sent;
        position.add((static_cast<double>(result.charged) -
                      static_cast<double>(received)) /
                     static_cast<double>(sent - received));
      }
      table.add_row(
          {edge_kind, op_kind,
           cell_pct(static_cast<double>(completed) / trials, 0),
           cell(rounds.mean(), 1),
           completed > 0 ? cell(position.mean(), 2) : std::string("-"),
           completed > 0 ? (bound_held ? "yes" : "NO") : "-"});
    }
  }
  table.print();

  std::printf(
      "\nreading: every completed negotiation lands inside [x̂o, x̂e] "
      "(Theorem 2, 'Bound held');\nhonest/optimal pairs settle in 1 round "
      "at position c=0.5 (Theorems 3-4); reject-all\nnever completes and "
      "only hurts its owner (§5.1); greedy over-claims fail the "
      "cross-check.\n");
  return 0;
}
