// Event-core microbenchmark: raw simulator throughput on the three hot
// operations (schedule, fire, cancel) plus the arrival-coalescing
// pattern the workloads use.
//
// Cases:
//   schedule_fire      N one-shot events at jittered times, then run()
//   schedule_cancel    N events scheduled then cancelled; run() drains
//                      the disarmed slots (the lazy-deletion path)
//   self_chain         K self-rescheduling chains (the frame-drain
//                      shape: one live event per chain, slot churn)
//   arrivals_unbatched one event per packet, pre-scheduled per frame
//                      (the pre-coalescing workload shape)
//   arrivals_batched   one self-rescheduling drain event per frame,
//                      consuming the frame's packets chunk by chunk
//
// Each case reports median-of-3 events/sec (packets/sec for the arrival
// cases, so the two shapes are directly comparable).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace tlc::bench {
namespace {

using Clock = std::chrono::steady_clock;
constexpr int kSamples = 3;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct Row {
  std::string name;
  std::uint64_t events;
  double wall_seconds;
  double events_per_second;
};

// Accumulator the event bodies write through so the optimizer cannot
// delete the callbacks.
std::uint64_t g_sink = 0;

double bench_schedule_fire(std::uint64_t n, Rng& rng) {
  sim::Simulator sim;
  const auto start = Clock::now();
  for (std::uint64_t i = 0; i < n; ++i) {
    const SimTime at = static_cast<SimTime>(rng.uniform_u64(1'000'000));
    sim.schedule_at(at, [i] { g_sink += i; });
  }
  sim.run();
  return seconds_since(start);
}

double bench_schedule_cancel(std::uint64_t n, Rng& rng) {
  sim::Simulator sim;
  std::vector<std::uint64_t> ids;
  ids.reserve(n);
  const auto start = Clock::now();
  for (std::uint64_t i = 0; i < n; ++i) {
    const SimTime at = static_cast<SimTime>(rng.uniform_u64(1'000'000));
    ids.push_back(sim.schedule_at(at, [i] { g_sink += i; }));
  }
  for (const std::uint64_t id : ids) {
    sim.cancel(id);
  }
  sim.run();  // drains the disarmed heap entries
  return seconds_since(start);
}

double bench_self_chain(std::uint64_t n, std::uint64_t chains) {
  sim::Simulator sim;
  struct Chain {
    sim::Simulator* sim;
    std::uint64_t remaining;
    SimTime step;
    void fire() {
      g_sink += remaining;
      if (--remaining > 0) {
        sim->schedule_after(step, [this] { fire(); });
      }
    }
  };
  std::vector<Chain> state;
  state.reserve(chains);
  const auto start = Clock::now();
  for (std::uint64_t c = 0; c < chains; ++c) {
    state.push_back(Chain{&sim, n / chains, static_cast<SimTime>(c % 7 + 1)});
    Chain* chain = &state.back();
    sim.schedule_after(chain->step, [chain] { chain->fire(); });
  }
  sim.run();
  return seconds_since(start);
}

constexpr std::uint64_t kPacketsPerFrame = 32;
constexpr SimTime kPacketSpacing = 40;
constexpr SimTime kFrameSpacing = kPacketsPerFrame * kPacketSpacing * 2;

double bench_arrivals_unbatched(std::uint64_t packets) {
  sim::Simulator sim;
  const std::uint64_t frames = packets / kPacketsPerFrame;
  const auto start = Clock::now();
  for (std::uint64_t f = 0; f < frames; ++f) {
    const SimTime frame_at = static_cast<SimTime>(f) * kFrameSpacing;
    sim.schedule_at(frame_at, [&sim, frame_at] {
      for (std::uint64_t p = 0; p < kPacketsPerFrame; ++p) {
        sim.schedule_at(frame_at + static_cast<SimTime>(p) * kPacketSpacing,
                        [p] { g_sink += p; });
      }
    });
  }
  sim.run();
  return seconds_since(start);
}

double bench_arrivals_batched(std::uint64_t packets) {
  sim::Simulator sim;
  struct Drain {
    sim::Simulator* sim;
    std::uint64_t remaining = 0;
    void pump() {
      g_sink += remaining;
      if (--remaining > 0) {
        sim->schedule_after(kPacketSpacing, [this] { pump(); });
      }
    }
  };
  std::vector<Drain> drains;
  const std::uint64_t frames = packets / kPacketsPerFrame;
  drains.reserve(frames);
  const auto start = Clock::now();
  for (std::uint64_t f = 0; f < frames; ++f) {
    const SimTime frame_at = static_cast<SimTime>(f) * kFrameSpacing;
    drains.push_back(Drain{&sim});
    Drain* drain = &drains.back();
    sim.schedule_at(frame_at, [drain] {
      drain->remaining = kPacketsPerFrame;
      drain->pump();
    });
  }
  sim.run();
  return seconds_since(start);
}

template <typename Fn>
Row sample(const std::string& name, std::uint64_t events, Fn&& body) {
  std::vector<double> walls;
  for (int i = 0; i < kSamples; ++i) {
    walls.push_back(body());
  }
  std::sort(walls.begin(), walls.end());
  const double wall = walls[walls.size() / 2];
  const Row row{name, events, wall, static_cast<double>(events) / wall};
  std::printf("%20s %14llu %10.3f %16.0f\n", row.name.c_str(),
              static_cast<unsigned long long>(row.events), row.wall_seconds,
              row.events_per_second);
  return row;
}

void write_json(const std::string& path, const std::vector<Row>& rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_sim_core: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"sim_core\",\n  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    std::fprintf(f,
                 "    {\"case\": \"%s\", \"events\": %llu, "
                 "\"wall_seconds\": %.3f, \"events_per_second\": %.0f}%s\n",
                 row.name.c_str(),
                 static_cast<unsigned long long>(row.events), row.wall_seconds,
                 row.events_per_second, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

int run(const BenchOptions& options) {
  print_mode(options);
  const std::uint64_t n = options.full ? 8'000'000 : 2'000'000;
  std::printf("%20s %14s %10s %16s\n", "case", "events", "wall (s)",
              "events/sec");

  Rng rng(options.seed);
  std::vector<Row> rows;
  rows.push_back(sample("schedule_fire", n, [&] {
    return bench_schedule_fire(n, rng);
  }));
  rows.push_back(sample("schedule_cancel", n, [&] {
    return bench_schedule_cancel(n, rng);
  }));
  rows.push_back(sample("self_chain", n, [&] {
    return bench_self_chain(n, 64);
  }));
  rows.push_back(sample("arrivals_unbatched", n, [&] {
    return bench_arrivals_unbatched(n);
  }));
  rows.push_back(sample("arrivals_batched", n, [&] {
    return bench_arrivals_batched(n);
  }));

  std::printf("\n(sink=%llu)\n", static_cast<unsigned long long>(g_sink));
  if (!options.json_path.empty()) {
    write_json(options.json_path, rows);
  }
  return 0;
}

}  // namespace
}  // namespace tlc::bench

int main(int argc, char** argv) {
  return tlc::bench::run(tlc::bench::parse_options(argc, argv));
}
