// Fleet scaling bench: UEs/sec and settlement throughput vs worker
// threads, across UE population tiers from 64 to 10k.
//
// Each tier holds cell density fixed (8 UEs per shard world, so
// population grows the shard count the way it would grow eNodeB count)
// and runs the same fleet at 1/2/4/8 worker threads. Noise control:
// one unrecorded warm-up run per invocation plus median-of-N sampling
// per row — single-sample runs of the 64-UE tier swung ~16% run to
// run, which buried real regressions. The determinism contract is
// asserted along the way: every sample of a tier, at every thread
// count, must produce bit-identical measurement / CDF / PoC digests.
//
// Speedups are bounded by the hardware the bench runs on — the JSON
// records hardware_threads so a 1-core container's flat curve reads as
// what it is, not as a scaling bug.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "fleet/engine.hpp"
#include "util/bytes.hpp"

namespace tlc::bench {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// One UE population tier. Larger tiers shorten the charging cycle so
// the simulated span stays bounded, and sample less: the long runs
// integrate over enough events that run-to-run swing is already small.
struct Tier {
  int ue_count;
  SimTime cycle_length;
  double background_mbps;
  int quick_samples;
  int full_samples;
};

constexpr Tier kTiers[] = {
    {64, 10 * kSecond, 2.0, 3, 5},
    {1024, 2 * kSecond, 1.0, 3, 5},
    {10240, 1 * kSecond, 1.0, 1, 3},
};

struct Row {
  unsigned threads;
  double wall_seconds;  // median of the tier's sample count
  double ues_per_second;
  double settlements_per_second;
  double speedup;
};

struct TierReport {
  fleet::FleetConfig config;
  int samples = 0;
  bool digests_agree = true;
  std::vector<Row> rows;
};

fleet::FleetConfig tier_config(const Tier& tier, const BenchOptions& options,
                               unsigned threads) {
  fleet::FleetConfig config;
  config.base.cycle_length = tier.cycle_length;
  config.base.cycles = 2;
  config.base.background_mbps = tier.background_mbps;
  config.ue_count = tier.ue_count;
  config.shards = std::max(1, tier.ue_count / 8);
  config.threads = threads;
  config.seed = options.seed;
  config.rsa_bits = 512;
  config.key_cache_slots = 4;
  return config;
}

/// Machine-readable sidecar for the bench_report target. Deliberately
/// timestamp-free: the report layer stamps results so reruns of the
/// same build produce byte-comparable files.
void write_json(const std::string& path,
                const std::vector<TierReport>& reports) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_fleet_scale: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"fleet_scale\",\n"
               "  \"hardware_threads\": %u,\n  \"tiers\": [\n",
               std::thread::hardware_concurrency());
  for (std::size_t t = 0; t < reports.size(); ++t) {
    const TierReport& report = reports[t];
    std::fprintf(f,
                 "    {\"ue_count\": %d, \"shards\": %d, \"cycles\": %d, "
                 "\"cycle_seconds\": %.0f, \"background_mbps\": %.1f, "
                 "\"rsa_bits\": %zu, \"samples\": %d, "
                 "\"digests_identical\": %s,\n     \"rows\": [\n",
                 report.config.ue_count, report.config.shards,
                 report.config.base.cycles,
                 to_seconds(report.config.base.cycle_length),
                 report.config.base.background_mbps, report.config.rsa_bits,
                 report.samples, report.digests_agree ? "true" : "false");
    for (std::size_t i = 0; i < report.rows.size(); ++i) {
      const Row& row = report.rows[i];
      std::fprintf(f,
                   "      {\"threads\": %u, \"wall_seconds\": %.3f, "
                   "\"ues_per_second\": %.1f, "
                   "\"settlements_per_second\": %.1f, \"speedup\": %.2f}%s\n",
                   row.threads, row.wall_seconds, row.ues_per_second,
                   row.settlements_per_second, row.speedup,
                   i + 1 < report.rows.size() ? "," : "");
    }
    std::fprintf(f, "     ]}%s\n", t + 1 < reports.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

TierReport run_tier(const Tier& tier, const BenchOptions& options) {
  TierReport report;
  report.config = tier_config(tier, options, 1);
  report.samples = options.full ? tier.full_samples : tier.quick_samples;

  std::printf(
      "fleet: %d UEs over %d shards, %d cycles x %.0fs, settle=RSA-%zu, "
      "median of %d\n",
      report.config.ue_count, report.config.shards, report.config.base.cycles,
      to_seconds(report.config.base.cycle_length), report.config.rsa_bits,
      report.samples);
  std::printf("%8s %12s %14s %18s %10s\n", "threads", "wall (s)", "UEs/sec",
              "settlements/sec", "speedup");

  std::string reference_digest;
  double reference_wall = 0.0;
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    const fleet::FleetConfig config = tier_config(tier, options, threads);
    std::vector<double> walls;
    std::size_t receipts = 0;
    for (int sample = 0; sample < report.samples; ++sample) {
      const auto start = Clock::now();
      const fleet::FleetResult result = fleet::run_fleet(config);
      walls.push_back(seconds_since(start));
      receipts = result.receipts.size();

      const std::string digest = to_hex(result.measurement_digest) +
                                 to_hex(result.cdf_digest) +
                                 to_hex(result.poc_digest);
      if (reference_digest.empty()) {
        reference_digest = digest;
      } else if (digest != reference_digest) {
        report.digests_agree = false;
      }
    }
    std::sort(walls.begin(), walls.end());
    const double wall = walls[walls.size() / 2];
    if (threads == 1) {
      reference_wall = wall;
    }
    const Row row{threads, wall, config.ue_count / wall,
                  static_cast<double>(receipts) / wall,
                  reference_wall / wall};
    report.rows.push_back(row);
    std::printf("%8u %12.2f %14.1f %18.1f %9.2fx\n", row.threads,
                row.wall_seconds, row.ues_per_second,
                row.settlements_per_second, row.speedup);
  }
  std::printf("determinism: digests %s across thread counts\n\n",
              report.digests_agree ? "IDENTICAL" : "DIVERGED");
  return report;
}

int run(const BenchOptions& options) {
  print_mode(options);
  std::printf("hardware threads available: %u\n\n",
              std::thread::hardware_concurrency());

  // Warm-up: one unrecorded small-tier run pages in the RSA key cache,
  // allocator arenas and code paths so tier 0's first sample is not
  // systematically slow.
  (void)fleet::run_fleet(tier_config(kTiers[0], options, 1));

  std::vector<TierReport> reports;
  bool digests_agree = true;
  for (const Tier& tier : kTiers) {
    reports.push_back(run_tier(tier, options));
    digests_agree = digests_agree && reports.back().digests_agree;
  }

  if (!options.json_path.empty()) {
    write_json(options.json_path, reports);
  }
  return digests_agree ? 0 : 1;
}

}  // namespace
}  // namespace tlc::bench

int main(int argc, char** argv) {
  return tlc::bench::run(tlc::bench::parse_options(argc, argv));
}
