// Fleet scaling bench: UEs/sec and settlement throughput vs worker
// threads.
//
// Runs the same 64-UE fleet at 1/2/4/8 worker threads, reports shard
// simulation throughput (UEs/sec), batch settlement throughput
// ((UE,cycle) settlements/sec), speedup relative to 1 thread, and
// asserts the determinism contract along the way: every thread count
// must produce bit-identical measurement / CDF / PoC digests.
//
// Speedups are bounded by the hardware the bench runs on — the core
// count is printed so a 1-core container's flat curve reads as what it
// is, not as a scaling bug.
#include <chrono>
#include <cstdio>
#include <thread>

#include "bench_common.hpp"
#include "fleet/engine.hpp"
#include "util/bytes.hpp"

namespace tlc::bench {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

fleet::FleetConfig fleet_config(const BenchOptions& options,
                                unsigned threads) {
  fleet::FleetConfig config;
  config.base.cycle_length = options.full ? 30 * kSecond : 10 * kSecond;
  config.base.cycles = options.cycles();
  config.base.background_mbps = 2.0;
  config.ue_count = options.full ? 128 : 64;
  config.shards = options.full ? 16 : 8;
  config.threads = threads;
  config.seed = options.seed;
  config.rsa_bits = 512;
  config.key_cache_slots = 4;
  return config;
}

int run(const BenchOptions& options) {
  print_mode(options);
  std::printf("hardware threads available: %u\n\n",
              std::thread::hardware_concurrency());
  const fleet::FleetConfig probe = fleet_config(options, 1);
  std::printf(
      "fleet: %d UEs over %d shards, %d cycles x %.0fs, settle=RSA-%zu\n\n",
      probe.ue_count, probe.shards, probe.base.cycles,
      to_seconds(probe.base.cycle_length), probe.rsa_bits);
  std::printf("%8s %12s %14s %18s %10s\n", "threads", "wall (s)", "UEs/sec",
              "settlements/sec", "speedup");

  std::string reference_digest;
  double reference_wall = 0.0;
  bool digests_agree = true;
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    const fleet::FleetConfig config = fleet_config(options, threads);
    const auto start = Clock::now();
    const fleet::FleetResult result = fleet::run_fleet(config);
    const double wall = seconds_since(start);

    const std::string digest = to_hex(result.measurement_digest) +
                               to_hex(result.cdf_digest) +
                               to_hex(result.poc_digest);
    if (reference_digest.empty()) {
      reference_digest = digest;
      reference_wall = wall;
    } else if (digest != reference_digest) {
      digests_agree = false;
    }
    std::printf("%8u %12.2f %14.1f %18.1f %9.2fx\n", threads, wall,
                config.ue_count / wall,
                static_cast<double>(result.receipts.size()) / wall,
                reference_wall / wall);
  }

  std::printf("\ndeterminism: digests %s across thread counts\n",
              digests_agree ? "IDENTICAL" : "DIVERGED");
  return digests_agree ? 0 : 1;
}

}  // namespace
}  // namespace tlc::bench

int main(int argc, char** argv) {
  return tlc::bench::run(tlc::bench::parse_options(argc, argv));
}
