// Fleet scaling bench: UEs/sec and settlement throughput vs worker
// threads.
//
// Runs the same 64-UE fleet at 1/2/4/8 worker threads, reports shard
// simulation throughput (UEs/sec), batch settlement throughput
// ((UE,cycle) settlements/sec), speedup relative to 1 thread, and
// asserts the determinism contract along the way: every thread count
// must produce bit-identical measurement / CDF / PoC digests.
//
// Speedups are bounded by the hardware the bench runs on — the core
// count is printed so a 1-core container's flat curve reads as what it
// is, not as a scaling bug.
#include <chrono>
#include <cstdio>
#include <thread>

#include "bench_common.hpp"
#include "fleet/engine.hpp"
#include "util/bytes.hpp"

namespace tlc::bench {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct Row {
  unsigned threads;
  double wall_seconds;
  double ues_per_second;
  double settlements_per_second;
  double speedup;
};

/// Machine-readable sidecar for the bench_report target. Deliberately
/// timestamp-free: the report layer stamps results so reruns of the
/// same build produce byte-comparable files.
void write_json(const std::string& path, const fleet::FleetConfig& config,
                const std::vector<Row>& rows, bool digests_agree) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_fleet_scale: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"fleet_scale\",\n"
               "  \"ue_count\": %d,\n  \"shards\": %d,\n"
               "  \"rsa_bits\": %zu,\n  \"digests_identical\": %s,\n"
               "  \"rows\": [\n",
               config.ue_count, config.shards, config.rsa_bits,
               digests_agree ? "true" : "false");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    std::fprintf(f,
                 "    {\"threads\": %u, \"wall_seconds\": %.3f, "
                 "\"ues_per_second\": %.1f, \"settlements_per_second\": %.1f, "
                 "\"speedup\": %.2f}%s\n",
                 row.threads, row.wall_seconds, row.ues_per_second,
                 row.settlements_per_second, row.speedup,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

fleet::FleetConfig fleet_config(const BenchOptions& options,
                                unsigned threads) {
  fleet::FleetConfig config;
  config.base.cycle_length = options.full ? 30 * kSecond : 10 * kSecond;
  config.base.cycles = options.cycles();
  config.base.background_mbps = 2.0;
  config.ue_count = options.full ? 128 : 64;
  config.shards = options.full ? 16 : 8;
  config.threads = threads;
  config.seed = options.seed;
  config.rsa_bits = 512;
  config.key_cache_slots = 4;
  return config;
}

int run(const BenchOptions& options) {
  print_mode(options);
  std::printf("hardware threads available: %u\n\n",
              std::thread::hardware_concurrency());
  const fleet::FleetConfig probe = fleet_config(options, 1);
  std::printf(
      "fleet: %d UEs over %d shards, %d cycles x %.0fs, settle=RSA-%zu\n\n",
      probe.ue_count, probe.shards, probe.base.cycles,
      to_seconds(probe.base.cycle_length), probe.rsa_bits);
  std::printf("%8s %12s %14s %18s %10s\n", "threads", "wall (s)", "UEs/sec",
              "settlements/sec", "speedup");

  std::string reference_digest;
  double reference_wall = 0.0;
  bool digests_agree = true;
  std::vector<Row> rows;
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    const fleet::FleetConfig config = fleet_config(options, threads);
    const auto start = Clock::now();
    const fleet::FleetResult result = fleet::run_fleet(config);
    const double wall = seconds_since(start);

    const std::string digest = to_hex(result.measurement_digest) +
                               to_hex(result.cdf_digest) +
                               to_hex(result.poc_digest);
    if (reference_digest.empty()) {
      reference_digest = digest;
      reference_wall = wall;
    } else if (digest != reference_digest) {
      digests_agree = false;
    }
    const Row row{threads, wall, config.ue_count / wall,
                  static_cast<double>(result.receipts.size()) / wall,
                  reference_wall / wall};
    rows.push_back(row);
    std::printf("%8u %12.2f %14.1f %18.1f %9.2fx\n", row.threads,
                row.wall_seconds, row.ues_per_second,
                row.settlements_per_second, row.speedup);
  }

  std::printf("\ndeterminism: digests %s across thread counts\n",
              digests_agree ? "IDENTICAL" : "DIVERGED");
  if (!options.json_path.empty()) {
    write_json(options.json_path, probe, rows, digests_agree);
  }
  return digests_agree ? 0 : 1;
}

}  // namespace
}  // namespace tlc::bench

int main(int argc, char** argv) {
  return tlc::bench::run(tlc::bench::parse_options(argc, argv));
}
