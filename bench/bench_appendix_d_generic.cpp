// Appendix D: TLC in generic mobile data charging. When the server sits
// on the Internet rather than at the edge, downlink loss between the
// server and the 4G/5G core inflates the edge's sent-volume report; the
// resulting over-charge is provably bounded by c * (x̂e' − x̂e).
#include "bench_common.hpp"

#include "core/generic.hpp"

using namespace tlc;
using namespace tlc::core;
using namespace tlc::testbed;

int main(int argc, char** argv) {
  const auto options = bench::parse_options(argc, argv);
  print_banner("Appendix D: generic downlink over-charge bound");
  bench::print_mode(options);

  const std::uint64_t device_received = 90000000;  // x̂o
  const std::uint64_t core_received = 100000000;   // x̂e

  for (double c : {0.0, 0.5, 1.0}) {
    std::printf("\n--- lost-data weight c = %.2f ---\n", c);
    TextTable table({"Internet-side loss", "Charged x' (MB)", "Ideal x (MB)",
                     "Over-charge (MB)", "Bound c*(x_e'-x_e) (MB)",
                     "Within bound"});
    for (double internet_loss : {0.0, 0.02, 0.05, 0.10, 0.20}) {
      const auto internet_sent = static_cast<std::uint64_t>(
          static_cast<double>(core_received) / (1.0 - internet_loss));
      const auto outcome = generic_downlink_charge(
          internet_sent, core_received, device_received, c);
      table.add_row({cell_pct(internet_loss, 0),
                     cell(static_cast<double>(outcome.charged) / 1e6, 2),
                     cell(static_cast<double>(outcome.ideal) / 1e6, 2),
                     cell(static_cast<double>(outcome.overcharge) / 1e6, 2),
                     cell(static_cast<double>(outcome.bound) / 1e6, 2),
                     outcome.overcharge <= outcome.bound + 1 ? "yes" : "NO"});
    }
    table.print();
  }

  std::printf(
      "\nreading: the realized over-charge equals the Appendix D bound "
      "c*(x̂e'−x̂e) exactly;\nwith c=0 the user is immune to Internet-side "
      "loss, and even at c=1 the exposure is capped\nby the measured loss "
      "— unlike legacy 4G/5G's unbounded selfish charging.\n");
  return 0;
}
