// google-benchmark microbenchmarks for the primitives behind Fig 17:
// SHA-256, RSA-1024 sign/verify, message encode/decode, the full signed
// negotiation, and Algorithm 2 verification.
#include <benchmark/benchmark.h>

#include <deque>

#include "core/protocol.hpp"
#include "core/verifier.hpp"
#include "crypto/montgomery.hpp"
#include "crypto/rsa.hpp"
#include "crypto/sha256.hpp"
#include "crypto/sha256_batch.hpp"
#include "util/rng.hpp"

namespace {

using namespace tlc;
using namespace tlc::core;

const crypto::RsaKeyPair& edge_kp() {
  static const crypto::RsaKeyPair kp = [] {
    Rng rng(101);
    return crypto::rsa_generate(1024, rng);
  }();
  return kp;
}

const crypto::RsaKeyPair& op_kp() {
  static const crypto::RsaKeyPair kp = [] {
    Rng rng(102);
    return crypto::rsa_generate(1024, rng);
  }();
  return kp;
}

PlanRef plan() { return PlanRef{0, kHour, 0.5}; }

void BM_Sha256(benchmark::State& state) {
  Rng rng(1);
  const Bytes data = rng.bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::sha256(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(65536);

// The batched front end under auto-dispatch (§16): N independent
// 64-byte messages per call — the Merkle leaf/node shape. Compare
// against BM_Sha256/64 for the multi-lane win.
void BM_Sha256Batch(benchmark::State& state) {
  Rng rng(2);
  const auto count = static_cast<std::size_t>(state.range(0));
  std::vector<Bytes> inputs;
  inputs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) inputs.push_back(rng.bytes(64));
  std::vector<const std::uint8_t*> ptrs(count);
  std::vector<std::size_t> lens(count, 64);
  for (std::size_t i = 0; i < count; ++i) ptrs[i] = inputs[i].data();
  std::vector<std::uint8_t> out(count * 32);
  for (auto _ : state) {
    crypto::sha256_batch(ptrs.data(), lens.data(), count, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0) * 64);
}
BENCHMARK(BM_Sha256Batch)->Arg(64)->Arg(1024);

// The primitive under everything below: one CIOS Montgomery multiply
// at the modulus width sign/verify use.
void BM_MontgomeryMul1024(benchmark::State& state) {
  Rng rng(7);
  const crypto::BigUInt n = op_kp().public_key.n;
  const auto ctx = crypto::MontgomeryContext::create(n);
  const crypto::MontgomeryContext::Rep a =
      ctx->to_mont(crypto::BigUInt::random_below(n, rng));
  const crypto::MontgomeryContext::Rep b =
      ctx->to_mont(crypto::BigUInt::random_below(n, rng));
  crypto::MontgomeryContext::Rep out;
  crypto::MontgomeryContext::Rep scratch;
  for (auto _ : state) {
    ctx->mul(a, b, out, scratch);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_MontgomeryMul1024);

void BM_RsaSign1024(benchmark::State& state) {
  const Bytes message = bytes_of("charging record");
  for (auto _ : state) {
    benchmark::DoNotOptimize(rsa_sign(op_kp().private_key, message));
  }
}
BENCHMARK(BM_RsaSign1024);

void BM_RsaVerify1024(benchmark::State& state) {
  const Bytes message = bytes_of("charging record");
  const Bytes signature = rsa_sign(op_kp().private_key, message);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        rsa_verify(op_kp().public_key, message, signature));
  }
}
BENCHMARK(BM_RsaVerify1024);

void BM_CdrEncodeSign(benchmark::State& state) {
  CdrMessage body;
  body.plan = plan();
  body.sender = PartyRole::Operator;
  body.volume = 123456789;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        encode_signed_cdr(sign_cdr(body, op_kp().private_key)));
  }
}
BENCHMARK(BM_CdrEncodeSign);

Bytes negotiate_poc() {
  EndpointConfig op_config;
  op_config.role = PartyRole::Operator;
  op_config.own_private = op_kp().private_key;
  op_config.own_public = op_kp().public_key;
  op_config.peer_public = edge_kp().public_key;
  op_config.plan = plan();
  op_config.view = UsageView{100000000, 92000000};
  EndpointConfig edge_config = op_config;
  edge_config.role = PartyRole::EdgeVendor;
  edge_config.own_private = edge_kp().private_key;
  edge_config.own_public = edge_kp().public_key;
  edge_config.peer_public = op_kp().public_key;

  OptimalStrategy op_strategy;
  OptimalStrategy edge_strategy;
  ProtocolEndpoint op(op_config, op_strategy, Rng(5));
  ProtocolEndpoint edge(edge_config, edge_strategy, Rng(6));
  std::deque<std::pair<bool, Bytes>> wire;
  op.set_send([&](const Bytes& m) { wire.emplace_back(true, m); });
  edge.set_send([&](const Bytes& m) { wire.emplace_back(false, m); });
  op.start();
  while (!wire.empty()) {
    auto [to_edge, m] = wire.front();
    wire.pop_front();
    if (to_edge) {
      (void)edge.receive(m);
    } else {
      (void)op.receive(m);
    }
  }
  return encode_signed_poc(*op.poc());
}

void BM_FullNegotiation(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(negotiate_poc());
  }
}
BENCHMARK(BM_FullNegotiation);

void BM_VerifyPoc(benchmark::State& state) {
  const Bytes poc = negotiate_poc();
  const VerificationRequest request{poc, plan(), edge_kp().public_key,
                                    op_kp().public_key};
  for (auto _ : state) {
    benchmark::DoNotOptimize(verify_poc(request));
  }
  // The paper's scalability claim: ~230K verifications/hour on a Z840.
  state.counters["PoCs_per_hour"] = benchmark::Counter(
      3600.0, benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_VerifyPoc);

void BM_Rsa1024KeyGen(benchmark::State& state) {
  std::uint64_t seed = 1000;
  for (auto _ : state) {
    Rng rng(seed++);
    benchmark::DoNotOptimize(crypto::rsa_generate(1024, rng));
  }
}
BENCHMARK(BM_Rsa1024KeyGen)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
