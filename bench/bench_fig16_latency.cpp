// Figure 16: TLC's impact on data latency.
//  (a) round-trip time within the charging cycle, with and without TLC
//      running, per device — TLC touches nothing on the data path, so
//      the distributions coincide up to noise;
//  (b) negotiation rounds at the end of the cycle for TLC-random vs
//      TLC-optimal, per application.
#include "bench_common.hpp"

#include "testbed/testbed.hpp"

using namespace tlc;
using namespace tlc::testbed;

namespace {

Samples measure_rtt(const bench::BenchOptions& options,
                    const epc::DeviceProfile& device, bool tlc_enabled,
                    std::uint64_t seed) {
  ScenarioConfig config;
  config.app = AppKind::GamingQci7;  // light traffic alongside the pings
  config.cycle_length = 60 * kSecond;
  config.cycles = options.full ? 4 : 1;
  config.device = device;
  config.seed = seed;
  // "With TLC" only adds the end-of-cycle negotiation; the data path is
  // untouched (§5.2). The flag exists to make that claim executable:
  config.enable_counter_check = tlc_enabled;

  Testbed testbed(config);
  testbed.enable_rtt_probes(options.full ? 200 : 50,
                            250 * kMillisecond);
  testbed.run();
  Samples rtts;
  rtts.add_all(testbed.rtt_ms());
  return rtts;
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = bench::parse_options(argc, argv);
  print_banner("Figure 16a: RTT within the charging cycle");
  bench::print_mode(options);

  TextTable rtt_table({"Device", "RTT w/o TLC (ms)", "RTT w/ TLC (ms)",
                       "delta (ms)"});
  for (const epc::DeviceProfile& device :
       {epc::device_el20(), epc::device_pixel2xl(), epc::device_s7edge()}) {
    const Samples without = measure_rtt(options, device, false, options.seed);
    const Samples with = measure_rtt(options, device, true, options.seed + 1);
    rtt_table.add_row({device.name, cell(without.mean(), 1),
                       cell(with.mean(), 1),
                       cell(with.mean() - without.mean(), 2)});
  }
  rtt_table.print();
  std::printf(
      "paper reference (Fig 16a): marginal RTT differences with/without "
      "TLC on every device\n(EL20 / Pixel 2 XL / S7 Edge around 35-60 ms "
      "over the small cell).\n");

  print_banner("Figure 16b: negotiation rounds after the charging cycle");
  TextTable rounds_table({"Application", "TLC-random (rounds)",
                          "TLC-optimal (rounds)"});
  for (AppKind app : {AppKind::WebcamUdp, AppKind::WebcamRtsp,
                      AppKind::GamingQci7, AppKind::VrGvsp}) {
    RunningStats random_rounds;
    RunningStats optimal_rounds;
    int variant = 0;
    for (double bg : options.background_levels()) {
      auto config = bench::base_scenario(options, app, bg);
      config.seed = options.seed + 100 + static_cast<std::uint64_t>(variant++);
      const auto result = run_experiment(
          config, {Scheme::TlcRandom, Scheme::TlcOptimal});
      for (const CycleOutcome& o : result.outcomes.at(Scheme::TlcRandom)) {
        random_rounds.add(o.rounds);
      }
      for (const CycleOutcome& o : result.outcomes.at(Scheme::TlcOptimal)) {
        optimal_rounds.add(o.rounds);
      }
    }
    rounds_table.add_row({app_name(app), cell(random_rounds.mean(), 1),
                          cell(optimal_rounds.mean(), 1)});
  }
  rounds_table.print();
  std::printf(
      "paper reference (Fig 16b): TLC-optimal converges in exactly 1 round "
      "(Theorem 4);\nTLC-random needs ~2.7-4.6 rounds depending on the "
      "app.\n");
  return 0;
}
