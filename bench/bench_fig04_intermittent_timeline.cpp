// Figure 4: charging-gap timeline under intermittent connectivity
// (downlink UDP WebCam, no background traffic, ~1.93 s mean outages).
//
// Prints the three stacked series of the paper's figure: device-side
// rate, cumulative charging gap, and RSS, sampled every second, with
// outage intervals marked.
#include "bench_common.hpp"

#include "testbed/testbed.hpp"

using namespace tlc;
using namespace tlc::testbed;

int main(int argc, char** argv) {
  const auto options = bench::parse_options(argc, argv);
  print_banner("Figure 4: gap timeline under intermittent connectivity");
  bench::print_mode(options);

  ScenarioConfig config;
  config.app = AppKind::WebcamUdpDownlink;
  config.disconnect_ratio = 0.12;  // short, repetitive outages
  config.mean_outage_s = 1.93;     // the paper's measured average
  config.cycle_length = 300 * kSecond;  // the figure spans 300 s
  config.cycles = 1;
  config.seed = options.seed + 3;
  config.mean_rss_dbm = -95.0;  // the figure's RSS band wanders near -95
  // The paper's small cell buffers well under a second of this stream
  // ("the buffer is not sufficient to eliminate the gaps", §3.2).
  config.enodeb.queue_limit_bytes = 160 * 1024;

  Testbed testbed(config);
  testbed.enable_timeline(kSecond);
  testbed.run();

  const auto& timeline = testbed.timeline();
  std::printf("time(s)  rate(Mbps)  gap(MB)  RSS(dBm)  service\n");
  std::printf("--------------------------------------------------\n");
  const std::size_t step = 5;  // print every 5 s, like the figure's grid
  for (std::size_t i = 0; i < timeline.size(); i += step) {
    const TimelinePoint& p = timeline[i];
    if (to_seconds(p.at) > 300.5) break;
    std::printf("%7.0f  %10.2f  %7.2f  %8.1f  %s\n", to_seconds(p.at),
                p.device_rate_mbps, p.gap_mb, p.rss_dbm,
                p.connected ? "up" : "OUTAGE");
  }

  // Aggregates matching the §3.2 discussion.
  double outage_seconds = 0.0;
  int outage_episodes = 0;
  bool prev_connected = true;
  double final_gap = 0.0;
  for (const TimelinePoint& p : timeline) {
    if (to_seconds(p.at) > 300.5) break;
    if (!p.connected) outage_seconds += 1.0;
    if (prev_connected && !p.connected) ++outage_episodes;
    prev_connected = p.connected;
    final_gap = p.gap_mb;
  }
  std::printf(
      "\nsummary over 300 s: %d outage episodes, %.1f s disconnected "
      "(mean %.2f s), final gap %.1f MB (~%.1f MB/hr)\n",
      outage_episodes, outage_seconds,
      outage_episodes > 0 ? outage_seconds / outage_episodes : 0.0,
      final_gap, final_gap * 12.0);
  std::printf(
      "paper reference (Fig 4): 1.93 s mean outages accumulate ~10.6 MB of "
      "gap in 300 s (~127 MB/hr);\nbuffered packets partially recover the "
      "gap after reconnection.\n");
  return 0;
}
