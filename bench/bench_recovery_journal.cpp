// google-benchmark microbenchmarks for the crash-recovery machinery:
// journal append/replay throughput, checkpoint write cost, and the
// end-to-end "recovery tax" — a supervised crash-free fleet run versus
// the plain engine. These bound what write-ahead durability costs the
// charging pipeline per op; DESIGN.md §11.7 quotes the numbers.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "fleet/engine.hpp"
#include "fleet/supervisor.hpp"
#include "recovery/checkpoint.hpp"
#include "recovery/journal.hpp"
#include "recovery/state_log.hpp"
#include "util/rng.hpp"

namespace {

using namespace tlc;

std::string bench_path(const char* name) {
  return std::string("/tmp/tlc_bench_") + name;
}

void wipe_state_log(const std::string& dir, const std::string& stem) {
  std::remove((dir + "/" + stem + ".ckpt").c_str());
  std::remove((dir + "/" + stem + ".ckpt.tmp").c_str());
  std::remove((dir + "/" + stem + ".wal").c_str());
}

// One framed append (CRC32C + length header + payload) to an open
// journal, rotated periodically so the file never grows unboundedly.
void BM_JournalAppend(benchmark::State& state) {
  const std::string path = bench_path("journal_append.wal");
  std::remove(path.c_str());
  auto journal = recovery::Journal::open(path);
  if (!journal.has_value()) {
    state.SkipWithError("journal open failed");
    return;
  }
  Rng rng(1);
  const Bytes op = rng.bytes(static_cast<std::size_t>(state.range(0)));
  std::uint64_t since_rotate = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(journal->append(op).ok());
    if (++since_rotate == 4096) {
      state.PauseTiming();
      (void)journal->rotate();
      since_rotate = 0;
      state.ResumeTiming();
    }
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
  std::remove(path.c_str());
}
BENCHMARK(BM_JournalAppend)->Arg(64)->Arg(256)->Arg(4096);

// Full-file replay: CRC verification plus the apply callback for every
// frame. range(0) = record count at 256-byte payloads.
void BM_JournalReplay(benchmark::State& state) {
  const std::string path = bench_path("journal_replay.wal");
  std::remove(path.c_str());
  {
    auto journal = recovery::Journal::open(path);
    if (!journal.has_value()) {
      state.SkipWithError("journal open failed");
      return;
    }
    Rng rng(2);
    for (std::int64_t i = 0; i < state.range(0); ++i) {
      if (!journal->append(rng.bytes(256)).ok()) {
        state.SkipWithError("append failed");
        return;
      }
    }
  }
  for (auto _ : state) {
    std::uint64_t bytes_seen = 0;
    auto stats = recovery::Journal::replay(
        path, [&bytes_seen](const Bytes& op) { bytes_seen += op.size(); });
    benchmark::DoNotOptimize(stats.has_value());
    benchmark::DoNotOptimize(bytes_seen);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
  std::remove(path.c_str());
}
BENCHMARK(BM_JournalReplay)->Arg(64)->Arg(1024)->Arg(8192);

// Atomic snapshot write: tmp file + CRC header + rename.
void BM_CheckpointWrite(benchmark::State& state) {
  const std::string path = bench_path("checkpoint.ckpt");
  Rng rng(3);
  const Bytes snapshot = rng.bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(recovery::write_checkpoint(path, snapshot).ok());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
}
BENCHMARK(BM_CheckpointWrite)->Arg(1024)->Arg(65536);

// The full StateLog cycle an OFCS checkpoint performs: snapshot write
// plus journal rotation, after a burst of journaled ops.
void BM_StateLogCheckpointCycle(benchmark::State& state) {
  const std::string dir = "/tmp";
  const std::string stem = "tlc_bench_statelog";
  wipe_state_log(dir, stem);
  auto log = recovery::StateLog::open(dir, stem);
  if (!log.has_value()) {
    state.SkipWithError("state log open failed");
    return;
  }
  Rng rng(4);
  const Bytes op = rng.bytes(128);
  const Bytes snapshot = rng.bytes(4096);
  for (auto _ : state) {
    for (int i = 0; i < 16; ++i) benchmark::DoNotOptimize(log->append(op).ok());
    benchmark::DoNotOptimize(log->checkpoint(snapshot).ok());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 16);
  wipe_state_log(dir, stem);
}
BENCHMARK(BM_StateLogCheckpointCycle);

fleet::FleetConfig bench_fleet() {
  fleet::FleetConfig config;
  config.base.cycle_length = 15 * kSecond;
  config.base.cycles = 2;
  config.ue_count = 6;
  config.shards = 3;
  config.threads = 2;
  config.seed = 0xbe7c4;
  config.rsa_bits = 512;
  config.key_cache_slots = 2;
  return config;
}

// Baseline for the recovery tax: the plain engine, no durability.
void BM_FleetPlain(benchmark::State& state) {
  const fleet::FleetConfig config = bench_fleet();
  for (auto _ : state) {
    benchmark::DoNotOptimize(fleet::run_fleet(config));
  }
}
BENCHMARK(BM_FleetPlain)->Unit(benchmark::kMillisecond);

// The same fleet under supervision with no injected faults: every
// shard checkpointed, every settlement chunk journaled, the OFCS
// write-ahead. The delta over BM_FleetPlain is the recovery tax.
void BM_FleetSupervisedCrashFree(benchmark::State& state) {
  fleet::SupervisorConfig config;
  config.fleet = bench_fleet();
  config.state_dir = bench_path("supervised_fleet");
  for (auto _ : state) {
    auto supervised = fleet::run_supervised_fleet(config);
    if (!supervised.has_value()) {
      state.SkipWithError("supervised run failed");
      return;
    }
    benchmark::DoNotOptimize(supervised->result.totals.billed_bytes);
  }
}
BENCHMARK(BM_FleetSupervisedCrashFree)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
