// Ablation for Theorem 1 (§3.3): any charging scheme that synchronizes
// the two parties' records in-band must delay traffic, and the delay
// diverges with loss. TLC's negotiation runs after the cycle and adds
// zero in-cycle delay.
#include "bench_common.hpp"

#include "core/sync_baseline.hpp"

using namespace tlc;
using namespace tlc::core;
using namespace tlc::testbed;

int main(int argc, char** argv) {
  const auto options = bench::parse_options(argc, argv);
  print_banner("Ablation: loss-latency tradeoff of synchronized charging");
  bench::print_mode(options);

  TextTable table({"Loss", "Sync mean delay (ms)", "Sync p99 delay (ms)",
                   "Sync throughput", "Sync retx", "TLC in-cycle delay"});
  for (double loss : {0.0, 0.02, 0.05, 0.10, 0.20, 0.35}) {
    SyncChargingParams params;
    params.loss_probability = loss;
    params.total_packets = options.full ? 200000 : 40000;
    const auto outcome = simulate_sync_charging(params, Rng(options.seed));
    table.add_row({cell_pct(loss, 0), cell(outcome.mean_added_delay_ms, 2),
                   cell(outcome.p99_added_delay_ms, 1),
                   cell_pct(outcome.throughput_ratio),
                   std::to_string(outcome.sync_retransmissions),
                   "0 ms (post-cycle only)"});
  }
  table.print();

  std::printf(
      "\nreading: closing the record gap in-band costs delay that grows "
      "without bound as loss\nincreases (Theorem 1's CAP-style tradeoff); "
      "TLC sidesteps it by never blocking data and\ncancelling loss "
      "against selfishness at cycle end instead.\n");
  return 0;
}
