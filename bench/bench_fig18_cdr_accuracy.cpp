// Figure 18: accuracy of TLC's tamper-resilient charging records.
//
// γo — error of the operator's RRC-COUNTER-CHECK-based downlink record
//      against the ground truth of device-received traffic;
// γe — error of the edge vendor's own record against the ground truth.
// Uplink records reuse existing gateway/app mechanisms and are exact.
#include "bench_common.hpp"

#include "testbed/testbed.hpp"

using namespace tlc;
using namespace tlc::testbed;

int main(int argc, char** argv) {
  const auto options = bench::parse_options(argc, argv);
  print_banner("Figure 18: tamper-resilient CDR accuracy");
  bench::print_mode(options);

  Samples gamma_o;
  Samples gamma_e;
  const int repetitions = options.full ? 8 : 3;
  for (int rep = 0; rep < repetitions; ++rep) {
    for (AppKind app :
         {AppKind::WebcamUdpDownlink, AppKind::VrGvsp, AppKind::WebcamUdp}) {
      auto config = bench::base_scenario(options, app, 0.0);
      config.cycle_length = options.full ? 120 * kSecond : 40 * kSecond;
      config.seed = options.seed + static_cast<std::uint64_t>(rep) * 31 +
                    static_cast<std::uint64_t>(app);
      Testbed testbed(config);
      for (const CycleMeasurements& cycle : testbed.run()) {
        if (cycle.true_received == 0 || cycle.true_sent == 0) continue;
        const double go =
            std::abs(static_cast<double>(cycle.op_received) -
                     static_cast<double>(cycle.true_received)) /
            static_cast<double>(cycle.true_received);
        const double ge = std::abs(static_cast<double>(cycle.edge_sent) -
                                   static_cast<double>(cycle.true_sent)) /
                          static_cast<double>(cycle.true_sent);
        gamma_o.add(go * 100.0);
        gamma_e.add(ge * 100.0);
      }
    }
  }

  print_cdf("operator record error (gamma_o)", gamma_o, 10, "%");
  print_cdf("edge vendor record error (gamma_e)", gamma_e, 10, "%");
  std::printf("  gamma_o: mean %.2f%%  p95 %.2f%%  max %.2f%%\n",
              gamma_o.mean(), gamma_o.quantile(0.95), gamma_o.max());
  std::printf("  gamma_e: mean %.2f%%  p95 %.2f%%  max %.2f%%\n",
              gamma_e.mean(), gamma_e.quantile(0.95), gamma_e.max());
  std::printf(
      "\npaper reference (Fig 18): gamma_o averages 2.0%% (95%% of records "
      "<= 7.7%%, max 12.7%%);\ngamma_e averages 1.2%% (95%% <= 2.9%%, max "
      "4.3%%) — errors stem from asynchronous cycle\nboundaries and "
      "counter-check staleness, reducible with tighter time sync.\n");
  return 0;
}
