// Figure 15: TLC-optimal's charging reduction over legacy 4G/5G,
// µ = (x_legacy − x_TLC) / x_legacy, as a CDF for each lost-data weight
// c in the data plan.
#include "bench_common.hpp"

#include "core/legacy.hpp"

using namespace tlc;
using namespace tlc::testbed;

int main(int argc, char** argv) {
  const auto options = bench::parse_options(argc, argv);
  print_banner("Figure 15: charging reduction vs data-plan weight c");
  bench::print_mode(options);

  const std::vector<double> weights = {0.0, 0.25, 0.5, 0.75, 1.0};

  for (double c : weights) {
    Samples mu;
    // Pool downlink-heavy conditions where legacy over-charges (the
    // regime where µ is meaningful).
    int variant = 0;
    for (double bg : options.background_levels()) {
      auto config =
          bench::base_scenario(options, AppKind::VrGvsp, bg);
      config.plan_c = c;
      config.seed = options.seed + static_cast<std::uint64_t>(variant++);
      Rng rng(config.seed ^ 0x77);
      Testbed testbed(config);
      for (const CycleMeasurements& cycle : testbed.run()) {
        const std::uint64_t legacy = core::legacy_charge(cycle.gateway_volume);
        const auto outcome = evaluate_scheme(cycle, Scheme::TlcOptimal, c,
                                             config.cycle_length, rng);
        if (legacy == 0) continue;
        const double reduction =
            (static_cast<double>(legacy) -
             static_cast<double>(outcome.charged)) /
            static_cast<double>(legacy);
        mu.add(reduction * 100.0);
      }
    }
    char title[64];
    std::snprintf(title, sizeof(title), "c = %.2f", c);
    print_cdf(title, mu, 10, "%");
  }

  std::printf(
      "\npaper reference (Fig 15): smaller c yields larger reductions "
      "(downlink legacy bills the\nsent volume; with c=0 TLC bills only "
      "the received volume). At c=1 TLC equals honest legacy\nand the "
      "reduction collapses to ~0.\n");
  return 0;
}
