// Streaming-ingest throughput (DESIGN.md §16): what one RSA signature
// per Merkle batch buys over one signature per CDR.
//
// Cases (per batch size 64 / 256 / 1024):
//   per_record_sign   the legacy path's unit cost — canonical encode +
//                     RSA-1024 sign per CDR (BM_CdrEncodeSign's shape)
//   merkle_scalar     StreamingIngest with the SHA-256 kernel pinned to
//                     the scalar reference
//   merkle_simd       StreamingIngest under auto-dispatch (SHA-NI /
//                     AVX2 eight-lane where the host has them)
//
// Reported per row: µs per CDR, CDRs/s, and the speedup over the
// per-record baseline. The acceptance bar for §16 is >= 100x at batch
// 1024 on the simd row; bench_report freshes these numbers into
// BENCH_ingest.json.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "charging/ingest.hpp"
#include "crypto/rsa.hpp"
#include "crypto/sha256_batch.hpp"
#include "epc/cdr.hpp"
#include "util/rng.hpp"

namespace tlc::bench {
namespace {

using Clock = std::chrono::steady_clock;
constexpr int kSamples = 3;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct Row {
  std::string name;
  std::uint64_t batch_size;
  std::string kernel;
  std::uint64_t cdrs;
  double wall_seconds;
  double us_per_cdr;
  double cdrs_per_second;
  double speedup_vs_per_record;
};

epc::ChargingDataRecord make_cdr(std::uint32_t i) {
  epc::ChargingDataRecord cdr;
  cdr.served_imsi.value = 262420000000000ULL + i;
  cdr.gateway_address = 0x0a000001;
  cdr.charging_id = static_cast<std::uint16_t>(i);
  cdr.sequence_number = i;
  cdr.time_of_first_usage = static_cast<SimTime>(i) * kSecond;
  cdr.time_of_last_usage = static_cast<SimTime>(i + 1) * kSecond;
  cdr.datavolume_uplink = 1000ULL * i;
  cdr.datavolume_downlink = 2000ULL * i;
  return cdr;
}

const crypto::RsaKeyPair& signing_key() {
  // RSA-1024: parity with the paper's prototype and BM_RsaSign1024.
  static const crypto::RsaKeyPair* kKey = [] {
    Rng rng(0xb47c4);
    return new crypto::RsaKeyPair(crypto::rsa_generate(1024, rng));
  }();
  return *kKey;
}

/// Legacy unit cost: canonical encode + one RSA signature per CDR.
double bench_per_record(std::uint64_t count) {
  const auto start = Clock::now();
  std::size_t sink = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    const Bytes wire =
        charging::encode_cdr_leaf(make_cdr(static_cast<std::uint32_t>(i)));
    sink += crypto::rsa_sign(signing_key().private_key, wire).size();
  }
  if (sink == 0) std::printf("impossible\n");
  return seconds_since(start);
}

/// Streaming pipeline: encode, Merkle, one signature per sealed batch.
double bench_streaming(std::uint64_t count, std::uint64_t batch_size) {
  charging::IngestConfig config;
  config.batch_size = batch_size;
  config.retain_batches = false;
  charging::StreamingIngest ingest(config, &signing_key().private_key,
                                   nullptr);
  const auto start = Clock::now();
  for (std::uint64_t i = 0; i < count; ++i) {
    ingest.submit(make_cdr(static_cast<std::uint32_t>(i)));
  }
  ingest.flush();
  const double wall = seconds_since(start);
  if (ingest.batches_sealed() != (count + batch_size - 1) / batch_size) {
    std::printf("bench_ingest_stream: unexpected batch count\n");
  }
  return wall;
}

template <typename Fn>
Row sample(const std::string& name, std::uint64_t batch_size,
           const std::string& kernel, std::uint64_t cdrs, double baseline_us,
           Fn&& body) {
  std::vector<double> walls;
  for (int i = 0; i < kSamples; ++i) walls.push_back(body());
  std::sort(walls.begin(), walls.end());
  const double wall = walls[walls.size() / 2];
  Row row;
  row.name = name;
  row.batch_size = batch_size;
  row.kernel = kernel;
  row.cdrs = cdrs;
  row.wall_seconds = wall;
  row.us_per_cdr = wall * 1e6 / static_cast<double>(cdrs);
  row.cdrs_per_second = static_cast<double>(cdrs) / wall;
  row.speedup_vs_per_record =
      baseline_us > 0 ? baseline_us / row.us_per_cdr : 1.0;
  std::printf("%18s %6llu %10s %8llu %10.4f %10.2f %12.0f %9.1fx\n",
              row.name.c_str(),
              static_cast<unsigned long long>(row.batch_size),
              row.kernel.c_str(), static_cast<unsigned long long>(row.cdrs),
              row.wall_seconds, row.us_per_cdr, row.cdrs_per_second,
              row.speedup_vs_per_record);
  return row;
}

void write_json(const std::string& path, const std::vector<Row>& rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_ingest_stream: cannot write %s\n",
                 path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"ingest_stream\",\n  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    std::fprintf(
        f,
        "    {\"case\": \"%s\", \"batch_size\": %llu, \"kernel\": \"%s\", "
        "\"cdrs\": %llu, \"wall_seconds\": %.6f, \"us_per_cdr\": %.3f, "
        "\"cdrs_per_second\": %.0f, \"speedup_vs_per_record\": %.1f}%s\n",
        row.name.c_str(), static_cast<unsigned long long>(row.batch_size),
        row.kernel.c_str(), static_cast<unsigned long long>(row.cdrs),
        row.wall_seconds, row.us_per_cdr, row.cdrs_per_second,
        row.speedup_vs_per_record, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

int run(const BenchOptions& options) {
  print_mode(options);
  std::printf("%18s %6s %10s %8s %10s %10s %12s %10s\n", "case", "batch",
              "kernel", "cdrs", "wall (s)", "us/cdr", "cdrs/sec", "speedup");

  std::vector<Row> rows;

  // Baseline: per-record signing. 256 signatures is plenty to pin the
  // ~273µs unit cost (1024 under --full).
  const std::uint64_t baseline_count = options.full ? 1024 : 256;
  rows.push_back(sample("per_record_sign", 1, "rsa-1024", baseline_count, 0,
                        [&] { return bench_per_record(baseline_count); }));
  const double baseline_us = rows.front().us_per_cdr;
  rows.front().speedup_vs_per_record = 1.0;

  for (std::uint64_t batch : {64ULL, 256ULL, 1024ULL}) {
    // Enough CDRs for several sealed batches per run.
    const std::uint64_t cdrs = batch * (options.full ? 64 : 16);

    if (crypto::sha256_force_kernel(crypto::Sha256Kernel::Scalar)) {
      rows.push_back(sample("merkle_scalar", batch, "scalar", cdrs,
                            baseline_us,
                            [&] { return bench_streaming(cdrs, batch); }));
    }
    crypto::sha256_reset_kernel();
    rows.push_back(sample(
        "merkle_simd", batch,
        crypto::sha256_kernel_name(crypto::sha256_batch_kernel()), cdrs,
        baseline_us, [&] { return bench_streaming(cdrs, batch); }));
  }

  if (!options.json_path.empty()) {
    write_json(options.json_path, rows);
  }
  return 0;
}

}  // namespace
}  // namespace tlc::bench

int main(int argc, char** argv) {
  return tlc::bench::run(tlc::bench::parse_options(argc, argv));
}
