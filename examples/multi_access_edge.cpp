// §8 "Multi-access edge": a V2X-style edge vendor bonding two
// operators' networks for coverage. The edge classifies its traffic per
// operator, runs an independent TLC session with each, and ends every
// cycle holding one verifiable PoC per operator.
#include <cstdio>
#include <deque>
#include <memory>

#include "charging/plan.hpp"
#include "core/multi_operator.hpp"
#include "core/verifier.hpp"

using namespace tlc;
using namespace tlc::core;

namespace {

/// Runs one cycle of the edge-side session against a freshly spun
/// operator-side session for `op_kp`.
CycleReceipt settle(TlcSession& edge_session,
                    const crypto::RsaKeyPair& edge_kp,
                    const crypto::RsaKeyPair& op_kp, std::uint64_t sent,
                    std::uint64_t received) {
  SessionConfig op_config;
  op_config.role = PartyRole::Operator;
  op_config.own_keys = op_kp;
  op_config.peer_key = edge_kp.public_key;
  TlcSession op_session(op_config, std::make_unique<OptimalStrategy>(),
                        Rng(11));

  std::deque<std::pair<bool, Bytes>> wire;
  op_session.set_send([&](const Bytes& m) { wire.emplace_back(true, m); });
  edge_session.set_send([&](const Bytes& m) { wire.emplace_back(false, m); });
  (void)op_session.begin_cycle(UsageView{sent, received});
  (void)edge_session.begin_cycle(UsageView{sent, received});
  (void)op_session.start();
  while (!wire.empty()) {
    auto [to_edge, message] = wire.front();
    wire.pop_front();
    if (to_edge) {
      (void)edge_session.receive(message);
    } else {
      (void)op_session.receive(message);
    }
  }
  (void)op_session.finish_cycle();
  return *edge_session.finish_cycle();
}

}  // namespace

int main() {
  std::printf("== Multi-access edge charging (two operators) ==\n\n");

  Rng key_rng(88);
  const auto edge_kp = crypto::rsa_generate(1024, key_rng);
  const auto op_a_kp = crypto::rsa_generate(1024, key_rng);
  const auto op_b_kp = crypto::rsa_generate(1024, key_rng);

  MultiOperatorCharging multi;
  SessionConfig edge_base;
  edge_base.role = PartyRole::EdgeVendor;
  edge_base.own_keys = edge_kp;
  edge_base.peer_key = op_a_kp.public_key;
  (void)multi.add_operator("CarrierA", edge_base,
                           std::make_unique<OptimalStrategy>(), Rng(1));
  edge_base.peer_key = op_b_kp.public_key;
  (void)multi.add_operator("CarrierB", edge_base,
                           std::make_unique<OptimalStrategy>(), Rng(2));

  // This hour the vehicle spent 70% of its time on Carrier A's
  // coverage, 30% on Carrier B's; each operator's monitors only saw its
  // own share (the per-operator traffic classification of §8).
  auto session_a = multi.session("CarrierA");
  auto session_b = multi.session("CarrierB");
  const CycleReceipt a =
      settle(**session_a, edge_kp, op_a_kp, 700000000, 668000000);
  const CycleReceipt b =
      settle(**session_b, edge_kp, op_b_kp, 300000000, 291000000);

  std::printf("CarrierA: charged %.2f MB in %d round(s)\n",
              static_cast<double>(a.charged) / 1e6,
              a.rounds);
  std::printf("CarrierB: charged %.2f MB in %d round(s)\n",
              static_cast<double>(b.charged) / 1e6,
              b.rounds);
  std::printf("total across operators: %.2f MB over %d cycles\n",
              static_cast<double>(multi.total_charged()) / 1e6,
              multi.total_cycles());

  // Each receipt verifies against its own operator's key — and NOT
  // against the other's: the per-operator isolation is cryptographic.
  PublicVerifier verifier;
  const auto& receipt_a = (*session_a)->receipts().entries().front();
  auto ok_a = verifier.verify(VerificationRequest{
      receipt_a.poc_wire, receipt_a.plan, edge_kp.public_key,
      op_a_kp.public_key});
  auto cross = verifier.verify(VerificationRequest{
      receipt_a.poc_wire, receipt_a.plan, edge_kp.public_key,
      op_b_kp.public_key});
  std::printf("\nCarrierA PoC under CarrierA keys: %s\n",
              ok_a ? "ACCEPTED" : "rejected");
  std::printf("CarrierA PoC under CarrierB keys: %s (%s)\n",
              cross ? "ACCEPTED" : "REJECTED",
              cross ? "?!" : cross.error().c_str());
  return 0;
}
