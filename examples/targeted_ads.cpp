// §2.2 scenario 1: real-time outdoor targeted advertisement.
//
// Roadside cameras stream car images over LTE to an edge server that
// classifies car models and rotates billboard ads. The system runs
// 24x7, so data charging is "stressful": the advertiser wants proof the
// operator charges faithfully. This example runs several charging
// cycles across changing radio/congestion conditions and compares the
// legacy bill with TLC's negotiated, verifiable charge.
#include <cstdio>

#include "charging/plan.hpp"
#include "testbed/experiment.hpp"
#include "testbed/report.hpp"

using namespace tlc;
using namespace tlc::testbed;

int main() {
  std::printf("== Outdoor targeted advertisement over the LTE edge ==\n");
  std::printf("(roadside WebCam, RTSP uplink, 24x7 operation)\n\n");

  struct Condition {
    const char* label;
    double background_mbps;
    double rss_dbm;
  };
  const Condition conditions[] = {
      {"quiet night, good signal", 0.0, -88.0},
      {"rush hour (cell congested)", 140.0, -92.0},
      {"camera at coverage edge", 0.0, -103.0},
  };

  TextTable table({"Condition", "Sent (MB)", "Delivered (MB)",
                   "Legacy bill gap", "TLC bill gap", "Rounds"});
  double legacy_total_gap = 0.0;
  double tlc_total_gap = 0.0;
  std::uint64_t seed = 1;
  for (const Condition& condition : conditions) {
    ScenarioConfig config;
    config.app = AppKind::WebcamRtsp;
    config.background_mbps = condition.background_mbps;
    config.mean_rss_dbm = condition.rss_dbm;
    config.cycle_length = 30 * kSecond;
    config.cycles = 2;
    config.seed = seed++;

    const auto result = run_experiment(
        config, {Scheme::Legacy, Scheme::TlcOptimal});
    double sent = 0.0;
    double received = 0.0;
    for (const CycleMeasurements& c : result.cycles) {
      sent += static_cast<double>(c.true_sent) / 1e6;
      received += static_cast<double>(c.true_received) / 1e6;
    }
    legacy_total_gap += result.mean_gap_mb_per_hr(Scheme::Legacy);
    tlc_total_gap += result.mean_gap_mb_per_hr(Scheme::TlcOptimal);
    table.add_row({condition.label, cell(sent, 2), cell(received, 2),
                   cell_pct(result.mean_gap_ratio(Scheme::Legacy)),
                   cell_pct(result.mean_gap_ratio(Scheme::TlcOptimal)),
                   cell(result.mean_rounds(Scheme::TlcOptimal), 0)});
  }
  table.print();

  std::printf(
      "\nadvertiser's takeaway: across conditions TLC cut the average "
      "billing gap from\n%.1f to %.1f MB/hr-equivalent (%.0f%% reduction), "
      "with a publicly verifiable PoC per cycle\nand zero added latency "
      "on the ad-delivery path.\n",
      legacy_total_gap / 3.0, tlc_total_gap / 3.0,
      100.0 * (1.0 - tlc_total_gap / std::max(legacy_total_gap, 1e-9)));
  return 0;
}
