// §5.4: why the operator's downlink monitor must be tamper-resilient.
//
// Strawman 1 installs a user-space monitor that queries the device's
// TrafficStats API — a selfish edge with a custom OS image can scale
// those reads down and get under-charged. TLC instead activates the RRC
// COUNTER CHECK procedure: the base station queries the hardware modem
// directly, which the edge cannot manipulate.
#include <cstdio>

#include "testbed/report.hpp"
#include "testbed/testbed.hpp"

using namespace tlc;
using namespace tlc::testbed;

namespace {

struct MonitorOutcome {
  double true_received_mb = 0.0;
  double operator_record_mb = 0.0;
};

MonitorOutcome run(bool counter_check, double tamper_factor) {
  ScenarioConfig config;
  config.app = AppKind::VrGvsp;  // downlink-heavy: worth under-claiming
  config.cycle_length = 30 * kSecond;
  config.cycles = 1;
  config.seed = 5;
  config.enable_counter_check = counter_check;
  config.edge_trafficstats_tamper = tamper_factor;
  Testbed testbed(config);
  const auto& cycle = testbed.run().front();
  return MonitorOutcome{static_cast<double>(cycle.true_received) / 1e6,
                        static_cast<double>(cycle.op_received) / 1e6};
}

}  // namespace

int main() {
  std::printf("== Tamper-resilient downlink charging records (§5.4) ==\n\n");
  const double tamper = 0.70;  // the selfish edge hides 30% of its usage

  TextTable table({"Operator's DL monitor", "Edge behaviour",
                   "Device truly received (MB)", "Operator's record (MB)",
                   "Revenue impact"});

  const MonitorOutcome honest_api = run(false, 1.0);
  table.add_row({"user-space TrafficStats", "honest",
                 cell(honest_api.true_received_mb, 2),
                 cell(honest_api.operator_record_mb, 2), "none"});

  const MonitorOutcome tampered_api = run(false, tamper);
  const double hidden = tampered_api.true_received_mb -
                        tampered_api.operator_record_mb;
  table.add_row({"user-space TrafficStats", "tampers the API (x0.70)",
                 cell(tampered_api.true_received_mb, 2),
                 cell(tampered_api.operator_record_mb, 2),
                 cell(hidden, 2) + " MB under-charged"});

  const MonitorOutcome rrc = run(true, tamper);
  table.add_row({"RRC COUNTER CHECK (hw modem)", "tampers the API (x0.70)",
                 cell(rrc.true_received_mb, 2),
                 cell(rrc.operator_record_mb, 2),
                 "tamper ineffective"});

  table.print();

  std::printf(
      "\nreading: strawman 1 loses the operator ~30%% of downlink revenue "
      "to a selfish edge;\nstrawman 2 (a root system monitor) would fix "
      "that at the cost of device privileges and\nprivacy. The RRC "
      "COUNTER CHECK reads the hardware modem's counters over the radio\n"
      "connection — user-space tampering cannot touch them, no root "
      "required, and the residual\nerror is the small Fig 18 staleness, "
      "not the tamper.\n");
  return 0;
}
