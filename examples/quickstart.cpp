// Quickstart: one charging cycle end to end.
//
//  1. bring up the emulated LTE testbed (small cell + EPC + edge server)
//  2. stream an edge application for one charging cycle
//  3. run the TLC loss-selfishness cancellation with signed messages
//  4. verify the resulting Proof-of-Charging as an independent party
//
// Build:   cmake -B build -G Ninja && cmake --build build
// Run:     ./build/examples/quickstart
#include <cstdio>
#include <deque>

#include "charging/plan.hpp"
#include "core/protocol.hpp"
#include "core/verifier.hpp"
#include "testbed/testbed.hpp"

using namespace tlc;

int main() {
  std::printf("== TLC quickstart ==\n\n");

  // --- 1. testbed ---------------------------------------------------
  testbed::ScenarioConfig scenario;
  scenario.app = testbed::AppKind::WebcamUdp;  // 1.73 Mbps uplink camera
  scenario.background_mbps = 120.0;            // congested cell
  scenario.cycle_length = 30 * kSecond;
  scenario.cycles = 1;
  scenario.seed = 42;
  testbed::Testbed testbed(scenario);

  // --- 2. stream one cycle ------------------------------------------
  const auto& cycles = testbed.run();
  const testbed::CycleMeasurements& cycle = cycles.front();
  std::printf("ground truth: sent %.2f MB, received %.2f MB (%.1f%% lost)\n",
              static_cast<double>(cycle.true_sent) / 1e6,
              static_cast<double>(cycle.true_received) / 1e6,
              100.0 * (1.0 - static_cast<double>(cycle.true_received) /
                                 static_cast<double>(cycle.true_sent)));

  // --- 3. negotiate --------------------------------------------------
  Rng key_rng(7);
  const auto edge_keys = crypto::rsa_generate(1024, key_rng);
  const auto operator_keys = crypto::rsa_generate(1024, key_rng);
  const core::PlanRef plan{0, 30 * kSecond, /*c=*/0.5};

  core::EndpointConfig op_config;
  op_config.role = core::PartyRole::Operator;
  op_config.own_private = operator_keys.private_key;
  op_config.own_public = operator_keys.public_key;
  op_config.peer_public = edge_keys.public_key;
  op_config.plan = plan;
  op_config.view = core::UsageView{cycle.op_sent, cycle.op_received};

  core::EndpointConfig edge_config;
  edge_config.role = core::PartyRole::EdgeVendor;
  edge_config.own_private = edge_keys.private_key;
  edge_config.own_public = edge_keys.public_key;
  edge_config.peer_public = operator_keys.public_key;
  edge_config.plan = plan;
  edge_config.view = core::UsageView{cycle.edge_sent, cycle.edge_received};

  core::OptimalStrategy op_strategy;
  core::OptimalStrategy edge_strategy;
  core::ProtocolEndpoint op(op_config, op_strategy, Rng(1));
  core::ProtocolEndpoint edge(edge_config, edge_strategy, Rng(2));

  std::deque<std::pair<bool, Bytes>> wire;
  op.set_send([&](const Bytes& m) { wire.emplace_back(true, m); });
  edge.set_send([&](const Bytes& m) { wire.emplace_back(false, m); });
  op.start();
  while (!wire.empty()) {
    auto [to_edge, message] = wire.front();
    wire.pop_front();
    auto status = to_edge ? edge.receive(message) : op.receive(message);
    if (!status.ok()) {
      std::printf("protocol error: %s\n", status.error().c_str());
      return 1;
    }
  }

  const std::uint64_t expected =
      charging::expected_charge(cycle.true_sent, cycle.true_received, plan.c);
  std::printf("negotiated in %d round(s): charged %.2f MB (x-hat %.2f MB, "
              "gap %.2f%%)\n",
              op.rounds(), static_cast<double>(op.negotiated()) / 1e6,
              static_cast<double>(expected) / 1e6,
              100.0 * charging::gap_ratio(op.negotiated(), expected));
  std::printf("legacy 4G/5G would have billed the gateway CDR: %.2f MB "
              "(gap %.2f%%)\n",
              static_cast<double>(cycle.gateway_volume) / 1e6,
              100.0 * charging::gap_ratio(cycle.gateway_volume, expected));

  // --- 4. public verification ---------------------------------------
  core::PublicVerifier verifier;
  auto verified = verifier.verify(core::VerificationRequest{
      encode_signed_poc(*op.poc()), plan, edge_keys.public_key,
      operator_keys.public_key});
  if (!verified) {
    std::printf("verification failed: %s\n", verified.error().c_str());
    return 1;
  }
  std::printf("\npublic verifier: PoC accepted (x=%.2f MB, xe=%.2f MB, "
              "xo=%.2f MB)\n",
              static_cast<double>(verified->charged) / 1e6,
              static_cast<double>(verified->edge_claim) / 1e6,
              static_cast<double>(verified->operator_claim) / 1e6);
  std::printf("== done ==\n");
  return 0;
}
