// §2.2 scenario 2: online mobile gaming acceleration.
//
// A Tencent-style game requests a dedicated high-QoS session (QCI 7,
// 100 ms delay budget) for its player-control stream while the cell
// carries best-effort background load. This example contrasts the
// accelerated session with the same stream on the default bearer
// (QCI 9), in both loss and latency, and shows TLC's charging on top.
#include <cstdio>

#include "testbed/experiment.hpp"
#include "testbed/report.hpp"
#include "testbed/testbed.hpp"

using namespace tlc;
using namespace tlc::testbed;

namespace {

struct QosOutcome {
  double loss = 0.0;
  double mean_rtt_ms = 0.0;
  double legacy_gap_ratio = 0.0;
  double tlc_gap_ratio = 0.0;
};

QosOutcome run(AppKind app, double background_mbps) {
  ScenarioConfig config;
  config.app = app;
  config.background_mbps = background_mbps;
  config.cycle_length = 30 * kSecond;
  config.cycles = 2;
  config.seed = 77;

  Testbed probe(config);
  probe.enable_rtt_probes(25, kSecond);
  probe.run();
  QosOutcome outcome;
  double rtt_sum = 0.0;
  for (double r : probe.rtt_ms()) rtt_sum += r;
  outcome.mean_rtt_ms =
      probe.rtt_ms().empty()
          ? 0.0
          : rtt_sum / static_cast<double>(probe.rtt_ms().size());

  const auto result =
      run_experiment(config, {Scheme::Legacy, Scheme::TlcOptimal});
  for (const CycleMeasurements& c : result.cycles) {
    outcome.loss += 1.0 - static_cast<double>(c.true_received) /
                              static_cast<double>(c.true_sent);
  }
  outcome.loss /= static_cast<double>(result.cycles.size());
  outcome.legacy_gap_ratio = result.mean_gap_ratio(Scheme::Legacy);
  outcome.tlc_gap_ratio = result.mean_gap_ratio(Scheme::TlcOptimal);
  return outcome;
}

}  // namespace

int main() {
  std::printf("== Online gaming acceleration (King-of-Glory-style) ==\n\n");
  const double background = 160.0;  // a busy cell
  std::printf("cell load: %.0f Mbps best-effort background traffic\n\n",
              background);

  const QosOutcome accelerated = run(AppKind::GamingQci7, background);
  const QosOutcome best_effort = run(AppKind::GamingQci9, background);

  TextTable table({"Bearer", "Game-packet loss", "Ping RTT (ms)",
                   "Legacy gap", "TLC gap"});
  table.add_row({"QCI 7 (accelerated)", cell_pct(accelerated.loss),
                 cell(accelerated.mean_rtt_ms, 1),
                 cell_pct(accelerated.legacy_gap_ratio),
                 cell_pct(accelerated.tlc_gap_ratio)});
  table.add_row({"QCI 9 (default)", cell_pct(best_effort.loss),
                 cell(best_effort.mean_rtt_ms, 1),
                 cell_pct(best_effort.legacy_gap_ratio),
                 cell_pct(best_effort.tlc_gap_ratio)});
  table.print();

  std::printf(
      "\nreading: the dedicated QCI 7 session shields the control stream "
      "from congestion\n(sub-100 ms control loop preserved); the game "
      "vendor pays for that priority by request\nvolume, and TLC keeps "
      "even that small bill verifiably honest (Fig 12d).\n");
  return 0;
}
