// §5.3.3-5.3.4: a standalone public verifier (FCC / court / MVNO).
//
// The edge vendor or operator submits (PoC, plan, public keys); the
// verifier replays Algorithm 2 without ever seeing the data transfer.
// This example saves a PoC to disk, verifies it from the file, then
// demonstrates the rejections the proof structure guarantees: post-hoc
// charge edits, plan substitution, and replayed submissions.
#include <cstdio>
#include <deque>
#include <fstream>

#include "core/protocol.hpp"
#include "core/verifier.hpp"

using namespace tlc;
using namespace tlc::core;

namespace {

Bytes negotiate_poc(const crypto::RsaKeyPair& edge_kp,
                    const crypto::RsaKeyPair& op_kp, const PlanRef& plan) {
  EndpointConfig op_config;
  op_config.role = PartyRole::Operator;
  op_config.own_private = op_kp.private_key;
  op_config.own_public = op_kp.public_key;
  op_config.peer_public = edge_kp.public_key;
  op_config.plan = plan;
  op_config.view = UsageView{778500000, 724000000};  // 1 hr UDP webcam

  EndpointConfig edge_config = op_config;
  edge_config.role = PartyRole::EdgeVendor;
  edge_config.own_private = edge_kp.private_key;
  edge_config.own_public = edge_kp.public_key;
  edge_config.peer_public = op_kp.public_key;

  OptimalStrategy op_strategy;
  OptimalStrategy edge_strategy;
  ProtocolEndpoint op(op_config, op_strategy, Rng(1));
  ProtocolEndpoint edge(edge_config, edge_strategy, Rng(2));
  std::deque<std::pair<bool, Bytes>> wire;
  op.set_send([&](const Bytes& m) { wire.emplace_back(true, m); });
  edge.set_send([&](const Bytes& m) { wire.emplace_back(false, m); });
  op.start();
  while (!wire.empty()) {
    auto [to_edge, m] = wire.front();
    wire.pop_front();
    if (to_edge) {
      (void)edge.receive(m);
    } else {
      (void)op.receive(m);
    }
  }
  return encode_signed_poc(*op.poc());
}

void report(const char* what, const Expected<VerifiedCharge>& result) {
  if (result) {
    std::printf("  %-38s ACCEPTED  (x = %.2f MB)\n", what,
                static_cast<double>(result->charged) / 1e6);
  } else {
    std::printf("  %-38s REJECTED  (%s)\n", what, result.error().c_str());
  }
}

}  // namespace

int main() {
  std::printf("== Public Proof-of-Charging verifier ==\n\n");

  Rng key_rng(2019);
  const auto edge_kp = crypto::rsa_generate(1024, key_rng);
  const auto op_kp = crypto::rsa_generate(1024, key_rng);
  const PlanRef plan{0, kHour, 0.5};

  // The parties negotiated during the cycle; the PoC lands on disk the
  // way a billing dispute would submit it.
  const Bytes poc = negotiate_poc(edge_kp, op_kp, plan);
  const char* path = "/tmp/tlc_quickstart.poc";
  {
    std::ofstream out(path, std::ios::binary);
    out.write(reinterpret_cast<const char*>(poc.data()),
              static_cast<std::streamsize>(poc.size()));
  }
  std::printf("stored PoC: %zu bytes at %s\n\n", poc.size(), path);

  Bytes loaded;
  {
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    loaded.resize(static_cast<std::size_t>(in.tellg()));
    in.seekg(0);
    in.read(reinterpret_cast<char*>(loaded.data()),
            static_cast<std::streamsize>(loaded.size()));
  }

  PublicVerifier verifier;
  std::printf("verification results:\n");
  report("genuine PoC from file",
         verifier.verify({loaded, plan, edge_kp.public_key,
                          op_kp.public_key}));

  // A selfish operator edits the charge and re-signs.
  auto tampered = decode_signed_poc(loaded);
  tampered->body.charged *= 2;
  tampered->signature =
      crypto::rsa_sign(op_kp.private_key, encode_poc_body(tampered->body));
  report("operator doubled the charge",
         verifier.verify({encode_signed_poc(*tampered), plan,
                          edge_kp.public_key, op_kp.public_key}));

  // A party claims a different data plan was in force.
  PlanRef wrong_plan = plan;
  wrong_plan.c = 1.0;
  report("plan substituted (c=1.0)",
         verifier.verify({loaded, wrong_plan, edge_kp.public_key,
                          op_kp.public_key}));

  // Double submission of the same cycle's proof.
  report("same PoC submitted again",
         verifier.verify({loaded, plan, edge_kp.public_key,
                          op_kp.public_key}));

  std::printf(
      "\nverifier stats: %llu accepted, %llu rejected (%llu replays "
      "blocked)\n",
      static_cast<unsigned long long>(verifier.accepted()),
      static_cast<unsigned long long>(verifier.rejected()),
      static_cast<unsigned long long>(verifier.replays_blocked()));
  std::remove(path);
  return 0;
}
