// §2.2 scenario 3: edge-powered VR offloading.
//
// A VRidge-style headset offloads rendering to the edge; graphical
// frames stream downlink at ~9 Mbps via GVSP. Heavy volume makes VR the
// biggest victim of charging gaps under congestion — and the biggest
// beneficiary of TLC. This example also shows the Fig 4-style timeline
// when the headset wanders through coverage holes.
#include <cstdio>

#include "testbed/experiment.hpp"
#include "testbed/report.hpp"
#include "testbed/testbed.hpp"

using namespace tlc;
using namespace tlc::testbed;

int main() {
  std::printf("== Edge VR offloading (GVSP downlink, 1080p60) ==\n\n");

  // Part 1: congestion sweep.
  TextTable table({"Background (Mbps)", "Loss", "Legacy gap (MB/hr)",
                   "TLC-optimal gap (MB/hr)", "Reduction"});
  for (double bg : {0.0, 120.0, 160.0}) {
    ScenarioConfig config;
    config.app = AppKind::VrGvsp;
    config.background_mbps = bg;
    config.cycle_length = 30 * kSecond;
    config.cycles = 2;
    config.seed = 9;
    const auto result =
        run_experiment(config, {Scheme::Legacy, Scheme::TlcOptimal});
    double loss = 0.0;
    for (const CycleMeasurements& c : result.cycles) {
      loss += 1.0 - static_cast<double>(c.true_received) /
                        static_cast<double>(c.true_sent);
    }
    loss /= static_cast<double>(result.cycles.size());
    const double legacy = result.mean_gap_mb_per_hr(Scheme::Legacy);
    const double tlc = result.mean_gap_mb_per_hr(Scheme::TlcOptimal);
    table.add_row({cell(bg, 0), cell_pct(loss), cell(legacy, 1),
                   cell(tlc, 1),
                   cell_pct(legacy > 0 ? 1.0 - tlc / legacy : 0.0, 0)});
  }
  table.print();

  // Part 2: a mobile headset with intermittent coverage.
  std::printf("\n-- headset moving through coverage holes --\n");
  ScenarioConfig mobile;
  mobile.app = AppKind::VrGvsp;
  mobile.disconnect_ratio = 0.06;
  mobile.cycle_length = 60 * kSecond;
  mobile.cycles = 1;
  mobile.seed = 10;
  Testbed testbed(mobile);
  testbed.enable_timeline(kSecond);
  testbed.run();
  int outages = 0;
  bool prev = true;
  double peak_gap = 0.0;
  for (const TimelinePoint& p : testbed.timeline()) {
    if (prev && !p.connected) ++outages;
    prev = p.connected;
    peak_gap = std::max(peak_gap, p.gap_mb);
  }
  std::printf(
      "60 s of VR with %d coverage holes: the gateway-vs-headset record "
      "gap peaked at %.1f MB\n(buffering at the small cell recovers part "
      "of it after each hole).\n",
      outages, peak_gap);
  std::printf(
      "TLC settles the cycle at the negotiated x regardless — the VR "
      "vendor never pays for\nframes the headset provably did not "
      "receive beyond the agreed lost-data weight c.\n");
  return 0;
}
