// User equipment (edge device).
//
// Owns the three counting points §5.4 distinguishes:
//  * the application's own counters (ground truth for what the edge app
//    sent/received — the edge vendor's x̂e on the uplink);
//  * the user-space TrafficStats API (what a monitor app can query —
//    tamperable by a selfish edge, modelled with an under-report
//    factor);
//  * the hardware modem counters (tamper-resilient; queried by the
//    eNodeB's RRC COUNTER CHECK — the operator's downlink x̂o).
#pragma once

#include <cstdint>
#include <functional>

#include "epc/enodeb.hpp"
#include "epc/ids.hpp"
#include "epc/profiles.hpp"
#include "sim/packet.hpp"
#include "sim/radio.hpp"
#include "sim/simulator.hpp"

namespace tlc::epc {

class UeDevice final : public RrcEndpoint {
 public:
  using AppReceiveFn = std::function<void(const sim::Packet&)>;

  UeDevice(sim::Simulator& sim, Imsi imsi, DeviceProfile profile,
           sim::RadioChannel* radio, EnodeB* enodeb, Rng rng);

  [[nodiscard]] Imsi imsi() const { return imsi_; }
  [[nodiscard]] const DeviceProfile& profile() const { return profile_; }

  /// EMM attach state, driven by the MME.
  void set_attached(bool attached) { attached_ = attached; }
  [[nodiscard]] bool attached() const { return attached_; }

  /// Application-layer uplink send. Always counted as app-sent (the
  /// data was produced and handed to the stack); dropped at the modem
  /// when the device is detached or out of coverage.
  void app_send(const sim::Packet& packet);

  /// Delivery callback for downlink packets that reach the app.
  void set_app_receive_handler(AppReceiveFn handler) {
    on_app_receive_ = std::move(handler);
  }

  // --- RrcEndpoint (hardware modem) ---
  [[nodiscard]] std::uint64_t modem_tx_bytes() const override {
    return modem_tx_bytes_;
  }
  [[nodiscard]] std::uint64_t modem_rx_bytes() const override {
    return modem_rx_bytes_;
  }
  void modem_deliver(const sim::Packet& packet) override;

  // --- Ground-truth application counters ---
  [[nodiscard]] std::uint64_t app_tx_bytes() const { return app_tx_bytes_; }
  [[nodiscard]] std::uint64_t app_rx_bytes() const { return app_rx_bytes_; }

  // --- User-space TrafficStats API (strawman 1 of §5.4) ---
  /// A selfish edge with a custom OS image can scale these reads down;
  /// factor 1.0 = honest, 0.8 = under-report by 20%.
  void set_traffic_stats_tamper(double factor) { tamper_factor_ = factor; }
  [[nodiscard]] std::uint64_t traffic_stats_tx() const;
  [[nodiscard]] std::uint64_t traffic_stats_rx() const;

  /// Uplink packets dropped at the modem (detached / out of coverage).
  [[nodiscard]] std::uint64_t modem_dropped() const { return modem_dropped_; }

 private:
  /// Device-side processing latency (profile base RTT split per leg,
  /// with jitter) — gives Fig 16a its per-device RTT differences.
  [[nodiscard]] SimTime processing_delay();

  sim::Simulator& sim_;
  Imsi imsi_;
  DeviceProfile profile_;
  sim::RadioChannel* radio_;
  EnodeB* enodeb_;
  Rng rng_;
  bool attached_ = false;
  AppReceiveFn on_app_receive_;

  std::uint64_t app_tx_bytes_ = 0;
  std::uint64_t app_rx_bytes_ = 0;
  std::uint64_t modem_tx_bytes_ = 0;
  std::uint64_t modem_rx_bytes_ = 0;
  std::uint64_t modem_dropped_ = 0;
  double tamper_factor_ = 1.0;
};

}  // namespace tlc::epc
