// Identifiers used across the emulated EPC.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace tlc::epc {

/// International Mobile Subscriber Identity. Stored numerically;
/// formatted as the 15-digit decimal string operators print in CDRs.
struct Imsi {
  std::uint64_t value = 0;

  [[nodiscard]] std::string to_string() const {
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%015llu",
                  static_cast<unsigned long long>(value));
    return buf;
  }

  [[nodiscard]] bool operator==(const Imsi& o) const { return value == o.value; }
  [[nodiscard]] bool operator<(const Imsi& o) const { return value < o.value; }
};

/// GTP tunnel endpoint id assigned by the SPGW per bearer.
using Teid = std::uint32_t;

/// Application flow id (one workload stream on one device).
using FlowId = std::uint32_t;

}  // namespace tlc::epc

template <>
struct std::hash<tlc::epc::Imsi> {
  std::size_t operator()(const tlc::epc::Imsi& imsi) const noexcept {
    return std::hash<std::uint64_t>{}(imsi.value);
  }
};
