#include "epc/profiles.hpp"

namespace tlc::epc {

// crypto_scale values are the paper's Fig 17 PoC verification times
// normalized to the Z840 (15.7 ms): EL20 23.2 ms, Pixel 2 XL 75.6 ms,
// S7 Edge 58.3 ms.
DeviceProfile device_el20() {
  return DeviceProfile{"EL20", 23.2 / 15.7, 36 * kMillisecond, 5.0};
}

DeviceProfile device_pixel2xl() {
  return DeviceProfile{"Pixel 2XL", 75.6 / 15.7, 52 * kMillisecond, 8.0};
}

DeviceProfile device_s7edge() {
  return DeviceProfile{"S7 Edge", 58.3 / 15.7, 46 * kMillisecond, 7.0};
}

DeviceProfile device_z840() {
  return DeviceProfile{"Z840", 1.0, 2 * kMillisecond, 0.3};
}

std::vector<DeviceProfile> all_devices() {
  return {device_el20(), device_pixel2xl(), device_s7edge(), device_z840()};
}

}  // namespace tlc::epc
