// Policy and Charging Rules Function.
//
// Maps application flows to QoS classes — this is how the Tencent-style
// gaming acceleration of §2.2 works: the game requests a dedicated
// high-QoS session (QCI 3/7) while background traffic rides QCI 9.
// The eNodeB scheduler consumes these rules for strict-priority service.
#pragma once

#include <unordered_map>

#include "epc/ids.hpp"
#include "sim/packet.hpp"

namespace tlc::epc {

class Pcrf {
 public:
  /// Installs (or replaces) the QoS rule for a flow.
  void install_rule(FlowId flow, sim::Qci qci);

  /// Removes a rule; the flow falls back to default bearer QCI 9.
  void remove_rule(FlowId flow);

  /// QCI for a flow; QCI 9 (default bearer) when no dedicated rule.
  [[nodiscard]] sim::Qci qci_for(FlowId flow) const;

  /// Packet delay budget implied by the flow's QCI (TS 23.203).
  [[nodiscard]] SimTime delay_budget(FlowId flow) const;

  [[nodiscard]] std::size_t rule_count() const { return rules_.size(); }

 private:
  std::unordered_map<FlowId, sim::Qci> rules_;
};

}  // namespace tlc::epc
