#include "epc/spgw.hpp"

namespace tlc::epc {

Spgw::Spgw(sim::Simulator& sim, EnodeB& enodeb, SpgwParams params)
    : sim_(sim), enodeb_(enodeb), params_(params), s1_link_(sim, params.s1_link) {
  enodeb_.set_uplink_sink([this](Imsi imsi, const sim::Packet& packet) {
    uplink_from_enodeb(imsi, packet);
  });
  // Fixed S1-U sink: delivery events carry the IMSI as the u64 context,
  // keeping the per-packet capture inside the inline event buffer.
  s1_link_.set_deliver_sink(
      [this](const sim::Packet& delivered, std::uint64_t imsi) {
        enodeb_.downlink_submit(Imsi{imsi}, delivered);
      });
}

void Spgw::create_session(Imsi imsi) { sessions_[imsi].active = true; }

void Spgw::close_session(Imsi imsi) {
  auto it = sessions_.find(imsi);
  if (it != sessions_.end()) it->second.active = false;
}

bool Spgw::has_session(Imsi imsi) const {
  auto it = sessions_.find(imsi);
  return it != sessions_.end() && it->second.active;
}

void Spgw::downlink_submit(Imsi imsi, const sim::Packet& packet) {
  auto it = sessions_.find(imsi);
  if (it == sessions_.end() || !it->second.active) {
    ++discarded_detached_;
    return;
  }
  Session& session = it->second;
  // Charge first — this ordering is the root of the downlink gap.
  session.dl_bytes += packet.size_bytes;
  if (session.first_usage < 0) session.first_usage = sim_.now();
  session.last_usage = sim_.now();

  s1_link_.send(packet, imsi.value);
}

void Spgw::uplink_from_enodeb(Imsi imsi, const sim::Packet& packet) {
  auto it = sessions_.find(imsi);
  if (it == sessions_.end() || !it->second.active) {
    ++discarded_detached_;
    return;
  }
  Session& session = it->second;
  session.ul_bytes += packet.size_bytes;
  if (session.first_usage < 0) session.first_usage = sim_.now();
  session.last_usage = sim_.now();

  if (server_sink_) server_sink_(imsi, packet);
}

std::uint64_t Spgw::uplink_bytes(Imsi imsi) const {
  auto it = sessions_.find(imsi);
  return it == sessions_.end() ? 0 : it->second.ul_bytes;
}

std::uint64_t Spgw::downlink_bytes(Imsi imsi) const {
  auto it = sessions_.find(imsi);
  return it == sessions_.end() ? 0 : it->second.dl_bytes;
}

ChargingDataRecord Spgw::generate_cdr(Imsi imsi) {
  Session& session = sessions_[imsi];
  ChargingDataRecord cdr;
  cdr.served_imsi = imsi;
  cdr.gateway_address = params_.gateway_address;
  cdr.charging_id = params_.charging_id;
  cdr.sequence_number = session.next_sequence++;
  cdr.time_of_first_usage = session.first_usage < 0 ? 0 : session.first_usage;
  cdr.time_of_last_usage = session.last_usage;
  cdr.datavolume_uplink = session.ul_bytes - session.ul_reported;
  cdr.datavolume_downlink = session.dl_bytes - session.dl_reported;
  session.ul_reported = session.ul_bytes;
  session.dl_reported = session.dl_bytes;
  session.first_usage = -1;
  return cdr;
}

}  // namespace tlc::epc
