#include "epc/spgw.hpp"

namespace tlc::epc {
namespace {

std::size_t qci_slot(sim::Qci qci) {
  switch (qci) {
    case sim::Qci::kQci3:
      return 0;
    case sim::Qci::kQci7:
      return 1;
    case sim::Qci::kQci9:
      return 2;
  }
  return 2;
}

}  // namespace

Spgw::Spgw(sim::Simulator& sim, EnodeB& enodeb, SpgwParams params)
    : sim_(sim), enodeb_(enodeb), params_(params), s1_link_(sim, params.s1_link) {
  enodeb_.set_uplink_sink([this](Imsi imsi, const sim::Packet& packet) {
    uplink_from_enodeb(imsi, packet);
  });
  // Fixed S1-U sink: delivery events carry the IMSI as the u64 context,
  // keeping the per-packet capture inside the inline event buffer.
  s1_link_.set_deliver_sink(
      [this](const sim::Packet& delivered, std::uint64_t imsi) {
        enodeb_.downlink_submit(Imsi{imsi}, delivered);
      });
}

void Spgw::create_session(Imsi imsi) { sessions_[imsi].active = true; }

void Spgw::close_session(Imsi imsi) {
  auto it = sessions_.find(imsi);
  if (it != sessions_.end()) it->second.active = false;
}

bool Spgw::has_session(Imsi imsi) const {
  auto it = sessions_.find(imsi);
  return it != sessions_.end() && it->second.active;
}

void Spgw::note_packet(Session& session, const sim::Packet& packet,
                       bool free_class, bool zero_rated, bool replayed) {
  AnomalyCounters& a = session.anomaly;
  const AnomalyParams& p = params_.anomaly;
  a.protocol_bytes[static_cast<std::size_t>(packet.protocol)] +=
      packet.size_bytes;
  a.qci_bytes[qci_slot(packet.qci)] += packet.size_bytes;

  // Lazy window roll: the index is a pure function of arrival time, so
  // the detectors never schedule events (and so cannot shift event
  // sequence numbers of adversary-free runs).
  const std::int64_t window = p.window > 0 ? sim_.now() / p.window : 0;
  if (window != session.window_index) {
    session.window_index = window;
    session.window_free_small_packets = 0;
    session.window_zero_rated_bytes = 0;
  }

  if (free_class) {
    a.free_bytes += packet.size_bytes;
    ++a.free_packets;
    a.entropy_millis_sum += packet.entropy_millis;
    if (packet.size_bytes <= p.small_packet_bytes) {
      ++a.free_small_packets;
      if (++session.window_free_small_packets >
          p.free_small_packets_per_window) {
        a.flags |= kAnomalySmallPacketFlood;
      }
    }
    if (a.free_bytes >= p.entropy_min_free_bytes &&
        a.mean_free_entropy_millis() >= p.entropy_threshold_millis) {
      a.flags |= kAnomalyHighEntropyFreeClass;
    }
  }
  if (zero_rated) {
    a.zero_rated_bytes += packet.size_bytes;
    session.window_zero_rated_bytes += packet.size_bytes;
    if (session.window_zero_rated_bytes > p.zero_rated_bytes_per_window) {
      a.flags |= kAnomalyZeroRatedVolume;
    }
  }
  if (replayed) {
    a.replayed_bytes += packet.size_bytes;
    ++a.replayed_packets;
    a.flags |= kAnomalyFlowReplay;
  }
}

Spgw::Session* Spgw::charged_session(Session& carrier,
                                     const sim::Packet& packet) {
  if (!params_.flow_based_charging) return &carrier;
  auto owner = flow_owners_.find(packet.flow_id);
  if (owner == flow_owners_.end()) return &carrier;
  auto session = sessions_.find(owner->second);
  if (session == sessions_.end()) return &carrier;
  return &session->second;
}

void Spgw::downlink_submit(Imsi imsi, const sim::Packet& packet) {
  auto it = sessions_.find(imsi);
  if (it == sessions_.end() || !it->second.active) {
    ++discarded_detached_;
    return;
  }
  Session& session = it->second;
  const bool free_class =
      sim::is_free_class(packet.protocol) && !params_.charge_free_classes;
  const bool zero_rated = is_zero_rated(packet.flow_id);
  note_packet(session, packet, free_class, zero_rated, /*replayed=*/false);
  if (free_class || zero_rated) {
    // Forwarded without counting — the Ghost-Traffic gap.
    session.uncharged_dl += packet.size_bytes;
  } else {
    // Charge first — this ordering is the root of the downlink gap.
    session.dl_bytes += packet.size_bytes;
    if (session.first_usage < 0) session.first_usage = sim_.now();
    session.last_usage = sim_.now();
  }

  s1_link_.send(packet, imsi.value);
}

void Spgw::uplink_from_enodeb(Imsi imsi, const sim::Packet& packet) {
  auto it = sessions_.find(imsi);
  if (it == sessions_.end() || !it->second.active) {
    ++discarded_detached_;
    return;
  }
  Session& session = it->second;
  const bool free_class =
      sim::is_free_class(packet.protocol) && !params_.charge_free_classes;
  const bool zero_rated = is_zero_rated(packet.flow_id);
  const auto owner = flow_owners_.find(packet.flow_id);
  const bool replayed = owner != flow_owners_.end() && owner->second != imsi;
  note_packet(session, packet, free_class, zero_rated, replayed);
  if (free_class || zero_rated) {
    session.uncharged_ul += packet.size_bytes;
  } else {
    Session& payer = *charged_session(session, packet);
    payer.ul_bytes += packet.size_bytes;
    if (payer.first_usage < 0) payer.first_usage = sim_.now();
    payer.last_usage = sim_.now();
  }

  if (server_sink_) server_sink_(imsi, packet);
}

void Spgw::set_zero_rated(FlowId flow) { zero_rated_flows_.insert(flow); }

bool Spgw::is_zero_rated(FlowId flow) const {
  return zero_rated_flows_.contains(flow);
}

void Spgw::bind_flow(FlowId flow, Imsi owner) {
  flow_owners_[flow] = owner;
}

std::uint64_t Spgw::uncharged_bytes(Imsi imsi) const {
  auto it = sessions_.find(imsi);
  return it == sessions_.end() ? 0 : it->second.anomaly.uncharged_bytes();
}

AnomalyCounters Spgw::anomaly(Imsi imsi) const {
  auto it = sessions_.find(imsi);
  return it == sessions_.end() ? AnomalyCounters{} : it->second.anomaly;
}

std::uint64_t Spgw::uplink_bytes(Imsi imsi) const {
  auto it = sessions_.find(imsi);
  return it == sessions_.end() ? 0 : it->second.ul_bytes;
}

std::uint64_t Spgw::downlink_bytes(Imsi imsi) const {
  auto it = sessions_.find(imsi);
  return it == sessions_.end() ? 0 : it->second.dl_bytes;
}

ChargingDataRecord Spgw::generate_cdr(Imsi imsi) {
  Session& session = sessions_[imsi];
  ChargingDataRecord cdr;
  cdr.served_imsi = imsi;
  cdr.gateway_address = params_.gateway_address;
  cdr.charging_id = params_.charging_id;
  cdr.sequence_number = session.next_sequence++;
  cdr.time_of_first_usage = session.first_usage < 0 ? 0 : session.first_usage;
  cdr.time_of_last_usage = session.last_usage;
  cdr.datavolume_uplink = session.ul_bytes - session.ul_reported;
  cdr.datavolume_downlink = session.dl_bytes - session.dl_reported;
  cdr.uncharged_uplink = session.uncharged_ul - session.uncharged_ul_reported;
  cdr.uncharged_downlink =
      session.uncharged_dl - session.uncharged_dl_reported;
  cdr.anomaly_flags = session.anomaly.flags;
  session.ul_reported = session.ul_bytes;
  session.dl_reported = session.dl_bytes;
  session.uncharged_ul_reported = session.uncharged_ul;
  session.uncharged_dl_reported = session.uncharged_dl;
  session.first_usage = -1;
  return cdr;
}

}  // namespace tlc::epc
