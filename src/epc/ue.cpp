#include "epc/ue.hpp"

#include <algorithm>
#include <cmath>

namespace tlc::epc {

UeDevice::UeDevice(sim::Simulator& sim, Imsi imsi, DeviceProfile profile,
                   sim::RadioChannel* radio, EnodeB* enodeb, Rng rng)
    : sim_(sim),
      imsi_(imsi),
      profile_(std::move(profile)),
      radio_(radio),
      enodeb_(enodeb),
      rng_(rng) {}

SimTime UeDevice::processing_delay() {
  const double jitter_ms =
      std::abs(rng_.gaussian(0.0, profile_.rtt_jitter_ms / 2.0));
  return profile_.base_rtt / 2 + from_millis(jitter_ms);
}

void UeDevice::app_send(const sim::Packet& packet) {
  app_tx_bytes_ += packet.size_bytes;
  sim_.schedule_after(processing_delay(), [this, packet] {
    if (!attached_ || !radio_->connected(sim_.now())) {
      ++modem_dropped_;
      return;
    }
    modem_tx_bytes_ += packet.size_bytes;
    enodeb_->uplink_submit(imsi_, packet);
  });
}

void UeDevice::modem_deliver(const sim::Packet& packet) {
  modem_rx_bytes_ += packet.size_bytes;
  sim_.schedule_after(processing_delay(), [this, packet] {
    app_rx_bytes_ += packet.size_bytes;
    if (on_app_receive_) on_app_receive_(packet);
  });
}

std::uint64_t UeDevice::traffic_stats_tx() const {
  return static_cast<std::uint64_t>(
      static_cast<double>(app_tx_bytes_) * std::clamp(tamper_factor_, 0.0, 1.0));
}

std::uint64_t UeDevice::traffic_stats_rx() const {
  return static_cast<std::uint64_t>(
      static_cast<double>(app_rx_bytes_) * std::clamp(tamper_factor_, 0.0, 1.0));
}

}  // namespace tlc::epc
