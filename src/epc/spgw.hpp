// Serving/PDN gateway (S-GW/P-GW collapsed, as in OpenEPC's SPGW node).
//
// This is where legacy 4G/5G charging happens (§2.1): the gateway
// forwards edge traffic and counts usage per subscriber, per direction.
// Crucially for the charging gap:
//  * downlink packets are counted *before* they cross the S1 link, the
//    eNodeB queue and the air — losses beyond this point have already
//    been charged;
//  * uplink packets are counted on arrival from the eNodeB — losses over
//    the air were never charged;
//  * traffic for a detached UE is discarded uncharged (the MME's
//    radio-link-failure detach caps outage-induced over-charging, §3.2).
//
// The gateway emits Trace-1-style CDRs per charging cycle. A
// "selfish operator" in the paper can rewrite these records at will —
// reproduced in tests by editing the returned CDR, since nothing in
// legacy 4G/5G authenticates it.
//
// Ghost-Traffic extension (DESIGN.md §13): the gateway also carries the
// traffic classes that evade the counting point — free-class ICMP/DNS
// and zero-rated flows are forwarded *uncharged* — and runs cheap
// per-IMSI detectors over them: per-protocol/per-QCI volume histograms,
// a small-packet-rate heuristic and a payload-entropy heuristic for
// tunnels, a per-window volume cap for zero-rated flows, and
// flow-identity binding against free-riders. Detection is fully lazy
// (window indices are derived from the packet's arrival time), so the
// detectors schedule no simulator events and cannot perturb event
// ordering of adversary-free runs.
#pragma once

#include <array>
#include <functional>
#include <unordered_map>
#include <unordered_set>

#include "epc/cdr.hpp"
#include "epc/enodeb.hpp"
#include "epc/ids.hpp"
#include "sim/link.hpp"
#include "sim/packet.hpp"
#include "sim/simulator.hpp"

namespace tlc::epc {

/// Detector thresholds. Defaults are sized so honest workloads (which
/// emit no free-class or zero-rated traffic at all) can never trip
/// them, while the ISSUE's tunnel profiles overshoot by an order of
/// magnitude.
struct AnomalyParams {
  /// Detection window; all rate heuristics are per-window. Also the
  /// period from which the documented leakage bounds derive.
  SimTime window = kSecond;
  /// A free-class packet at or under this size counts as "small".
  std::uint32_t small_packet_bytes = 128;
  /// Small free-class packets tolerated per window before the flood
  /// flag fires (generous: real diagnostics send a few per second).
  std::uint32_t free_small_packets_per_window = 50;
  /// Zero-rated volume tolerated per window before the abuse flag
  /// fires.
  std::uint64_t zero_rated_bytes_per_window = 64 * 1024;
  /// Mean free-class payload entropy (thousandths) above which the
  /// tunnel-entropy flag fires...
  std::uint32_t entropy_threshold_millis = 800;
  /// ...once at least this much free-class volume has accumulated
  /// (small samples of legitimate high-entropy DNS are not enough).
  std::uint64_t entropy_min_free_bytes = 4096;
};

/// Per-IMSI detector state, exposed for audit. Everything is exact
/// integer arithmetic so fleet digests of these counters are
/// bit-stable.
struct AnomalyCounters {
  /// Volume histogram per transport protocol (index = sim::Protocol).
  std::array<std::uint64_t, sim::kProtocolCount> protocol_bytes{};
  /// Volume histogram per QCI (index: 0 = QCI3, 1 = QCI7, 2 = QCI9).
  std::array<std::uint64_t, 3> qci_bytes{};
  /// Free-class (ICMP/DNS) traffic forwarded uncharged.
  std::uint64_t free_bytes = 0;
  std::uint64_t free_packets = 0;
  std::uint64_t free_small_packets = 0;
  /// Sum of per-packet entropy_millis over free-class packets.
  std::uint64_t entropy_millis_sum = 0;
  /// Zero-rated flow volume forwarded uncharged.
  std::uint64_t zero_rated_bytes = 0;
  /// Traffic carried on flows bound to a different IMSI.
  std::uint64_t replayed_bytes = 0;
  std::uint64_t replayed_packets = 0;
  /// Union of AnomalyFlag bits (sticky for the session's lifetime).
  std::uint32_t flags = 0;

  /// Volume that escaped charging entirely (the billing-bypass leak).
  [[nodiscard]] std::uint64_t uncharged_bytes() const {
    return free_bytes + zero_rated_bytes;
  }
  [[nodiscard]] std::uint32_t mean_free_entropy_millis() const {
    return free_packets == 0
               ? 0
               : static_cast<std::uint32_t>(entropy_millis_sum / free_packets);
  }

  [[nodiscard]] bool operator==(const AnomalyCounters&) const = default;
};

struct SpgwParams {
  std::uint32_t gateway_address = (192u << 24) | (168u << 16) | (2u << 8) | 11u;
  std::uint16_t charging_id = 0;
  /// S1-U link to the eNodeB (1 Gbps Ethernet in the paper's testbed).
  sim::LinkParams s1_link{1e9, 500 * kMicrosecond, 4u << 20};
  /// Bypass-detector thresholds (DESIGN.md §13).
  AnomalyParams anomaly;
  /// Close the free-class gap: count ICMP/DNS like any other traffic.
  /// Off by default — the uncharged free class *is* the legacy gap the
  /// adversarial suite exercises.
  bool charge_free_classes = false;
  /// Charge uplink traffic to the flow's bound owner instead of the
  /// carrying IMSI. Turns a flow-identity replay from a bypass into a
  /// charge on the victim — which is why detection still flags the
  /// carrier either way.
  bool flow_based_charging = false;
};

class Spgw {
 public:
  /// Uplink traffic leaving the core toward the edge server.
  using ServerSinkFn = std::function<void(Imsi, const sim::Packet&)>;

  Spgw(sim::Simulator& sim, EnodeB& enodeb, SpgwParams params = {});

  void set_server_sink(ServerSinkFn sink) { server_sink_ = std::move(sink); }

  /// Creates the charging session for a subscriber (on attach).
  void create_session(Imsi imsi);
  /// Tears the session down (on detach). Usage survives for CDR export.
  void close_session(Imsi imsi);
  [[nodiscard]] bool has_session(Imsi imsi) const;

  /// Downlink entry point: edge server -> core. Counted here, then
  /// forwarded over S1 to the eNodeB.
  void downlink_submit(Imsi imsi, const sim::Packet& packet);

  /// Uplink exit point, wired as the eNodeB's uplink sink. Counted here,
  /// then handed to the edge server.
  void uplink_from_enodeb(Imsi imsi, const sim::Packet& packet);

  /// Cumulative charged volume for a subscriber.
  [[nodiscard]] std::uint64_t uplink_bytes(Imsi imsi) const;
  [[nodiscard]] std::uint64_t downlink_bytes(Imsi imsi) const;

  /// Marks a flow as zero-rated (sponsored / toll-free): forwarded
  /// uncharged, but volume-capped by the zero-rated detector.
  void set_zero_rated(FlowId flow);
  [[nodiscard]] bool is_zero_rated(FlowId flow) const;

  /// Binds a flow identity to its legitimate owner. Traffic carried by
  /// a different IMSI on a bound flow raises kAnomalyFlowReplay (and,
  /// under flow_based_charging, is charged to the owner).
  void bind_flow(FlowId flow, Imsi owner);

  /// Volume forwarded for `imsi` without being charged (free-class +
  /// zero-rated) — the subscriber's cumulative billing leak.
  [[nodiscard]] std::uint64_t uncharged_bytes(Imsi imsi) const;

  /// Detector state for a subscriber (zero counters if unknown).
  [[nodiscard]] AnomalyCounters anomaly(Imsi imsi) const;

  /// Generates the next CDR for `imsi`, covering usage since the last
  /// generate_cdr call (sequence numbers increase monotonically).
  [[nodiscard]] ChargingDataRecord generate_cdr(Imsi imsi);

  /// Packets discarded because the subscriber had no session.
  [[nodiscard]] std::uint64_t discarded_detached() const {
    return discarded_detached_;
  }

 private:
  struct Session {
    bool active = false;
    std::uint64_t ul_bytes = 0;
    std::uint64_t dl_bytes = 0;
    // Cycle bookkeeping for CDR generation.
    std::uint64_t ul_reported = 0;
    std::uint64_t dl_reported = 0;
    std::uint32_t next_sequence = 1000;  // OpenEPC starts near 1000
    SimTime first_usage = -1;
    SimTime last_usage = 0;
    // Uncharged (free-class + zero-rated) volume, with CDR watermarks.
    std::uint64_t uncharged_ul = 0;
    std::uint64_t uncharged_dl = 0;
    std::uint64_t uncharged_ul_reported = 0;
    std::uint64_t uncharged_dl_reported = 0;
    // Detector state. Window indices derive from packet arrival times,
    // so detection adds no simulator events.
    AnomalyCounters anomaly;
    std::int64_t window_index = -1;
    std::uint32_t window_free_small_packets = 0;
    std::uint64_t window_zero_rated_bytes = 0;
  };

  /// Updates the per-IMSI detectors for one forwarded packet.
  void note_packet(Session& session, const sim::Packet& packet,
                   bool free_class, bool zero_rated, bool replayed);
  /// The session charged for a (non-free) uplink packet: the carrier,
  /// or the bound flow owner under flow_based_charging.
  Session* charged_session(Session& carrier, const sim::Packet& packet);

  sim::Simulator& sim_;
  EnodeB& enodeb_;
  SpgwParams params_;
  sim::Link s1_link_;
  ServerSinkFn server_sink_;
  std::unordered_map<Imsi, Session> sessions_;
  std::unordered_set<FlowId> zero_rated_flows_;
  std::unordered_map<FlowId, Imsi> flow_owners_;
  std::uint64_t discarded_detached_ = 0;
};

}  // namespace tlc::epc
