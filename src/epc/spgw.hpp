// Serving/PDN gateway (S-GW/P-GW collapsed, as in OpenEPC's SPGW node).
//
// This is where legacy 4G/5G charging happens (§2.1): the gateway
// forwards edge traffic and counts usage per subscriber, per direction.
// Crucially for the charging gap:
//  * downlink packets are counted *before* they cross the S1 link, the
//    eNodeB queue and the air — losses beyond this point have already
//    been charged;
//  * uplink packets are counted on arrival from the eNodeB — losses over
//    the air were never charged;
//  * traffic for a detached UE is discarded uncharged (the MME's
//    radio-link-failure detach caps outage-induced over-charging, §3.2).
//
// The gateway emits Trace-1-style CDRs per charging cycle. A
// "selfish operator" in the paper can rewrite these records at will —
// reproduced in tests by editing the returned CDR, since nothing in
// legacy 4G/5G authenticates it.
#pragma once

#include <functional>
#include <unordered_map>

#include "epc/cdr.hpp"
#include "epc/enodeb.hpp"
#include "epc/ids.hpp"
#include "sim/link.hpp"
#include "sim/packet.hpp"
#include "sim/simulator.hpp"

namespace tlc::epc {

struct SpgwParams {
  std::uint32_t gateway_address = (192u << 24) | (168u << 16) | (2u << 8) | 11u;
  std::uint16_t charging_id = 0;
  /// S1-U link to the eNodeB (1 Gbps Ethernet in the paper's testbed).
  sim::LinkParams s1_link{1e9, 500 * kMicrosecond, 4u << 20};
};

class Spgw {
 public:
  /// Uplink traffic leaving the core toward the edge server.
  using ServerSinkFn = std::function<void(Imsi, const sim::Packet&)>;

  Spgw(sim::Simulator& sim, EnodeB& enodeb, SpgwParams params = {});

  void set_server_sink(ServerSinkFn sink) { server_sink_ = std::move(sink); }

  /// Creates the charging session for a subscriber (on attach).
  void create_session(Imsi imsi);
  /// Tears the session down (on detach). Usage survives for CDR export.
  void close_session(Imsi imsi);
  [[nodiscard]] bool has_session(Imsi imsi) const;

  /// Downlink entry point: edge server -> core. Counted here, then
  /// forwarded over S1 to the eNodeB.
  void downlink_submit(Imsi imsi, const sim::Packet& packet);

  /// Uplink exit point, wired as the eNodeB's uplink sink. Counted here,
  /// then handed to the edge server.
  void uplink_from_enodeb(Imsi imsi, const sim::Packet& packet);

  /// Cumulative charged volume for a subscriber.
  [[nodiscard]] std::uint64_t uplink_bytes(Imsi imsi) const;
  [[nodiscard]] std::uint64_t downlink_bytes(Imsi imsi) const;

  /// Generates the next CDR for `imsi`, covering usage since the last
  /// generate_cdr call (sequence numbers increase monotonically).
  [[nodiscard]] ChargingDataRecord generate_cdr(Imsi imsi);

  /// Packets discarded because the subscriber had no session.
  [[nodiscard]] std::uint64_t discarded_detached() const {
    return discarded_detached_;
  }

 private:
  struct Session {
    bool active = false;
    std::uint64_t ul_bytes = 0;
    std::uint64_t dl_bytes = 0;
    // Cycle bookkeeping for CDR generation.
    std::uint64_t ul_reported = 0;
    std::uint64_t dl_reported = 0;
    std::uint32_t next_sequence = 1000;  // OpenEPC starts near 1000
    SimTime first_usage = -1;
    SimTime last_usage = 0;
  };

  sim::Simulator& sim_;
  EnodeB& enodeb_;
  SpgwParams params_;
  sim::Link s1_link_;
  ServerSinkFn server_sink_;
  std::unordered_map<Imsi, Session> sessions_;
  std::uint64_t discarded_detached_ = 0;
};

}  // namespace tlc::epc
