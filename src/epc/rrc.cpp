#include "epc/rrc.hpp"

#include "util/serde.hpp"

namespace tlc::epc {

// tlclint: codec(rrc_counter_check, encode)
Bytes RrcCounterCheck::encode() const {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(RrcMessageType::CounterCheck));
  w.u32(transaction_id);
  return w.take();
}

// tlclint: codec(rrc_counter_check, decode)
Expected<RrcCounterCheck> RrcCounterCheck::decode(const Bytes& wire) {
  ByteReader r(wire);
  auto type = r.u8();
  if (!type) return Err("rrc: " + type.error());
  if (*type != static_cast<std::uint8_t>(RrcMessageType::CounterCheck)) {
    return Err("rrc: not a CounterCheck");
  }
  auto id = r.u32();
  if (!id) return Err("rrc: " + id.error());
  if (!r.exhausted()) return Err("rrc: trailing bytes");
  return RrcCounterCheck{*id};
}

// tlclint: codec(rrc_counter_check_response, encode)
Bytes RrcCounterCheckResponse::encode() const {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(RrcMessageType::CounterCheckResponse));
  w.u32(transaction_id);
  w.u64(uplink_bytes);
  w.u64(downlink_bytes);
  return w.take();
}

// tlclint: codec(rrc_counter_check_response, decode)
Expected<RrcCounterCheckResponse> RrcCounterCheckResponse::decode(
    const Bytes& wire) {
  ByteReader r(wire);
  auto type = r.u8();
  if (!type) return Err("rrc: " + type.error());
  if (*type !=
      static_cast<std::uint8_t>(RrcMessageType::CounterCheckResponse)) {
    return Err("rrc: not a CounterCheckResponse");
  }
  RrcCounterCheckResponse response;
  auto id = r.u32();
  if (!id) return Err("rrc: " + id.error());
  response.transaction_id = *id;
  auto ul = r.u64();
  if (!ul) return Err("rrc: " + ul.error());
  response.uplink_bytes = *ul;
  auto dl = r.u64();
  if (!dl) return Err("rrc: " + dl.error());
  response.downlink_bytes = *dl;
  if (!r.exhausted()) return Err("rrc: trailing bytes");
  return response;
}

}  // namespace tlc::epc
