// Mobility Management Entity.
//
// Tracks EMM attach state per device and emulates radio-link-failure
// handling: §3.2 observes that the paper's LTE core detaches a device
// after ~5 s of persistent disconnectivity, which caps the charging gap
// an outage can accumulate (the SPGW stops forwarding/charging for a
// detached UE). Shorter intermittent outages go unnoticed — exactly the
// regime where the gap keeps growing.
#pragma once

#include <functional>
#include <unordered_map>

#include "epc/hss.hpp"
#include "epc/ids.hpp"
#include "sim/radio.hpp"
#include "sim/simulator.hpp"

namespace tlc::epc {

struct MmeParams {
  /// Radio-link supervision period.
  SimTime poll_interval = 500 * kMillisecond;
  /// Persistent-outage threshold before network-initiated detach
  /// (the paper's core averaged 5 s).
  SimTime detach_after = 5 * kSecond;
  /// Attach procedure latency once coverage returns.
  SimTime attach_delay = 200 * kMillisecond;
};

class Mme {
 public:
  /// Fired on EMM state changes so the SPGW / eNodeB / UE can react.
  using StateChangeFn = std::function<void(Imsi, bool attached)>;

  Mme(sim::Simulator& sim, Hss& hss, MmeParams params = {});

  /// Registers a UE and its radio for supervision, then performs the
  /// initial attach (authorized against the HSS).
  /// Returns false when the HSS rejects the subscriber.
  bool register_ue(Imsi imsi, sim::RadioChannel* radio);

  void set_state_change_handler(StateChangeFn handler) {
    on_state_change_ = std::move(handler);
  }

  /// Starts periodic radio-link supervision.
  void start();

  [[nodiscard]] bool attached(Imsi imsi) const;
  [[nodiscard]] std::uint64_t detach_count() const { return detaches_; }
  [[nodiscard]] std::uint64_t attach_count() const { return attaches_; }

 private:
  struct UeState {
    sim::RadioChannel* radio = nullptr;
    bool attached = false;
    bool reattach_pending = false;
  };

  void poll();
  void set_attached(Imsi imsi, UeState& state, bool attached);

  sim::Simulator& sim_;
  Hss& hss_;
  MmeParams params_;
  std::unordered_map<Imsi, UeState> ues_;
  StateChangeFn on_state_change_;
  bool started_ = false;
  std::uint64_t detaches_ = 0;
  std::uint64_t attaches_ = 0;
};

}  // namespace tlc::epc
