// Device and subscriber profiles mirroring the paper's testbed (§7,
// Figure 11): an HPE EL20 IoT gateway, a Samsung S7 Edge, a Google
// Pixel 2 XL, and the HP Z840 workstation hosting the LTE core + edge
// server.
#pragma once

#include <string>
#include <vector>

#include "epc/ids.hpp"
#include "util/simtime.hpp"

namespace tlc::epc {

/// Hardware profile for latency/crypto cost modelling (Figs 16a, 17).
/// `crypto_scale` multiplies crypto time measured on the host so the
/// relative device costs match the paper's measurements (normalized to
/// the Z840 workstation).
struct DeviceProfile {
  std::string name;
  double crypto_scale = 1.0;
  SimTime base_rtt = 40 * kMillisecond;  // device <-> edge server via LTE
  double rtt_jitter_ms = 6.0;
};

/// The paper's four hardware platforms.
[[nodiscard]] DeviceProfile device_el20();
[[nodiscard]] DeviceProfile device_pixel2xl();
[[nodiscard]] DeviceProfile device_s7edge();
[[nodiscard]] DeviceProfile device_z840();
[[nodiscard]] std::vector<DeviceProfile> all_devices();

/// Subscriber record provisioned in the HSS.
struct SubscriberProfile {
  Imsi imsi;
  std::string name;
  DeviceProfile device;
};

}  // namespace tlc::epc
