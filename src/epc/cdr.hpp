// Charging Data Records, as produced by the 4G gateway (Trace 1 of the
// paper).
//
// Two encodings are provided:
//  * XML, matching OpenEPC's <chargingRecord> element byte-for-byte in
//    structure (Trace 1); and
//  * a 34-byte compact binary form — the "LTE CDR" row of the paper's
//    Fig 17 message-size table.
#pragma once

#include <cstdint>
#include <string>

#include "epc/ids.hpp"
#include "util/bytes.hpp"
#include "util/expected.hpp"
#include "util/simtime.hpp"

namespace tlc::epc {

/// Per-IMSI anomaly flags raised by the gateway's bypass detectors
/// (DESIGN.md §13) and surfaced through CDRs into the OFCS. A flag is
/// sticky for the life of the charging session.
enum AnomalyFlag : std::uint32_t {
  /// Free-class (ICMP/DNS) small-packet rate exceeded the per-window
  /// limit — the signature of a tunnel smuggling payload in uncharged
  /// chatter.
  kAnomalySmallPacketFlood = 1u << 0,
  /// Mean payload entropy of free-class traffic crossed the threshold
  /// once enough bytes accumulated — diagnostics and resolver lookups
  /// are low-entropy; encrypted tunnel payload is not.
  kAnomalyHighEntropyFreeClass = 1u << 1,
  /// A zero-rated flow moved more volume per window than any sponsored
  /// service plausibly needs (QoS-class mislabeling abuse).
  kAnomalyZeroRatedVolume = 1u << 2,
  /// Traffic arrived on a flow bound to a different IMSI — a free-rider
  /// replaying another subscriber's flow identity.
  kAnomalyFlowReplay = 1u << 3,
};

struct ChargingDataRecord {
  Imsi served_imsi;
  std::uint32_t gateway_address = 0;  // IPv4, host byte order
  std::uint16_t charging_id = 0;
  std::uint32_t sequence_number = 0;
  SimTime time_of_first_usage = 0;
  SimTime time_of_last_usage = 0;
  std::uint64_t datavolume_uplink = 0;
  std::uint64_t datavolume_downlink = 0;

  /// Volume the gateway forwarded but did not charge (free-class and
  /// zero-rated traffic) plus the detector flag union — the audit
  /// fields of DESIGN.md §13. They ride the full-width journal codec
  /// and XML rendering only; the legacy 34-byte compact wire form
  /// predates them and stays pinned at 34 bytes (the fields decode as
  /// zero from it).
  std::uint64_t uncharged_uplink = 0;
  std::uint64_t uncharged_downlink = 0;
  std::uint32_t anomaly_flags = 0;

  [[nodiscard]] SimTime time_usage() const {
    return time_of_last_usage - time_of_first_usage;
  }

  /// Trace-1 style XML rendering.
  [[nodiscard]] std::string to_xml() const;

  /// Compact binary encoding: exactly 34 bytes (the legacy LTE CDR size
  /// reported in Fig 17).
  [[nodiscard]] Bytes encode_compact() const;
  [[nodiscard]] static Expected<ChargingDataRecord> decode_compact(
      const Bytes& data);

  [[nodiscard]] bool operator==(const ChargingDataRecord& o) const = default;
};

/// Renders "a.b.c.d" from a host-order IPv4 address.
[[nodiscard]] std::string format_ipv4(std::uint32_t address);

}  // namespace tlc::epc
