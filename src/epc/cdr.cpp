#include "epc/cdr.hpp"

#include <sstream>

#include "util/serde.hpp"

namespace tlc::epc {
namespace {

/// CDR timestamps are carried as whole seconds (the gateway logs wall
/// seconds); volumes as u32 truncated at 4 GiB like legacy 32-bit
/// counters.
std::uint32_t seconds_u32(SimTime t) {
  return static_cast<std::uint32_t>(t / kSecond);
}

/// Wire version of the 34-byte compact encoding. Bump on any field
/// order/width change — tools/schemas/epc_cdr_compact.schema pins the
/// layout and `ctest -L static` fails on drift.
constexpr std::uint32_t kCdrCompactVersion = 1;
static_assert(kCdrCompactVersion >= 1);

}  // namespace

std::string format_ipv4(std::uint32_t address) {
  std::ostringstream out;
  out << ((address >> 24) & 0xff) << '.' << ((address >> 16) & 0xff) << '.'
      << ((address >> 8) & 0xff) << '.' << (address & 0xff);
  return out.str();
}

std::string ChargingDataRecord::to_xml() const {
  std::ostringstream out;
  out << "<chargingRecord>\n"
      << "  <servedIMSI>" << served_imsi.to_string() << "</servedIMSI>\n"
      << "  <gatewayAddress>" << format_ipv4(gateway_address)
      << "</gatewayAddress>\n"
      << "  <chargingID>" << charging_id << "</chargingID>\n"
      << "  <SequenceNumber>" << sequence_number << "</SequenceNumber>\n"
      << "  <timeOfFirstUsage>" << format_time(time_of_first_usage)
      << "</timeOfFirstUsage>\n"
      << "  <timeOfLastUsage>" << format_time(time_of_last_usage)
      << "</timeOfLastUsage>\n"
      << "  <timeUsage>" << (time_usage() / kSecond) << "</timeUsage>\n"
      << "  <datavolumeUplink>" << datavolume_uplink
      << "</datavolumeUplink>\n"
      << "  <datavolumeDownlink>" << datavolume_downlink
      << "</datavolumeDownlink>\n";
  // Audit extension (DESIGN.md §13): rendered only when the detectors
  // saw something, so legacy records keep their pinned byte-for-byte
  // shape.
  if (uncharged_uplink != 0 || uncharged_downlink != 0) {
    out << "  <unchargedUplink>" << uncharged_uplink
        << "</unchargedUplink>\n"
        << "  <unchargedDownlink>" << uncharged_downlink
        << "</unchargedDownlink>\n";
  }
  if (anomaly_flags != 0) {
    out << "  <anomalyFlags>" << anomaly_flags << "</anomalyFlags>\n";
  }
  out << "</chargingRecord>";
  return out.str();
}

// tlclint: codec(epc_cdr_compact, encode, version=kCdrCompactVersion)
Bytes ChargingDataRecord::encode_compact() const {
  // 8 (imsi) + 4 (gw) + 2 (charging id) + 4 (seq) + 4 (first) + 4 (last)
  // + 4 (ul) + 4 (dl) = 34 bytes.
  ByteWriter w;
  w.u64(served_imsi.value);
  w.u32(gateway_address);
  w.u16(charging_id);
  w.u32(sequence_number);
  w.u32(seconds_u32(time_of_first_usage));
  w.u32(seconds_u32(time_of_last_usage));
  w.u32(static_cast<std::uint32_t>(datavolume_uplink));
  w.u32(static_cast<std::uint32_t>(datavolume_downlink));
  return w.take();
}

// tlclint: codec(epc_cdr_compact, decode, version=kCdrCompactVersion)
Expected<ChargingDataRecord> ChargingDataRecord::decode_compact(
    const Bytes& data) {
  if (data.size() != 34) {
    return Err("cdr: compact encoding must be exactly 34 bytes");
  }
  ByteReader r(data);
  ChargingDataRecord cdr;
  cdr.served_imsi.value = *r.u64();
  cdr.gateway_address = *r.u32();
  cdr.charging_id = *r.u16();
  cdr.sequence_number = *r.u32();
  cdr.time_of_first_usage = static_cast<SimTime>(*r.u32()) * kSecond;
  cdr.time_of_last_usage = static_cast<SimTime>(*r.u32()) * kSecond;
  cdr.datavolume_uplink = *r.u32();
  cdr.datavolume_downlink = *r.u32();
  return cdr;
}

}  // namespace tlc::epc
