#include "epc/enodeb.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace tlc::epc {

Expected<Bytes> RrcEndpoint::handle_rrc(const Bytes& wire) {
  auto check = RrcCounterCheck::decode(wire);
  if (!check) return Err(check.error());
  RrcCounterCheckResponse response;
  response.transaction_id = check->transaction_id;
  response.uplink_bytes = modem_tx_bytes();
  response.downlink_bytes = modem_rx_bytes();
  return response.encode();
}

EnodeB::EnodeB(sim::Simulator& sim, EnodebParams params, Rng rng)
    : sim_(sim), params_(params), rng_(rng) {}

std::size_t EnodeB::queue_index(sim::Qci qci) {
  switch (qci) {
    case sim::Qci::kQci3:
      return 0;
    case sim::Qci::kQci7:
      return 1;
    case sim::Qci::kQci9:
      return 2;
  }
  return 2;
}

void EnodeB::add_ue(Imsi imsi, RrcEndpoint* endpoint,
                    sim::RadioChannel* radio) {
  UeCtx& ue = ues_[imsi];
  ue.endpoint = endpoint;
  ue.radio = radio;
  ue.last_activity = sim_.now();
}

void EnodeB::flush_ue(QueueSet& set, Imsi imsi,
                      std::uint64_t& flush_counter) {
  for (std::size_t q = 0; q < kQueues; ++q) {
    auto& queue = set.queues[q];
    for (auto it = queue.begin(); it != queue.end();) {
      if (it->imsi == imsi) {
        set.bytes[q] -= std::min<std::uint64_t>(set.bytes[q],
                                                it->packet.size_bytes);
        it = queue.erase(it);
        ++flush_counter;
      } else {
        ++it;
      }
    }
  }
}

void EnodeB::remove_ue(Imsi imsi) {
  auto it = ues_.find(imsi);
  if (it == ues_.end()) return;
  flush_ue(dl_, imsi, stats_.dl_flushed);
  std::uint64_t ul_flushed = 0;
  flush_ue(ul_, imsi, ul_flushed);
  stats_.ul_queue_drops += ul_flushed;
  ues_.erase(it);
}

std::uint64_t EnodeB::dl_backlog(Imsi imsi) const {
  std::uint64_t total = 0;
  for (const auto& queue : dl_.queues) {
    for (const QueuedPacket& entry : queue) {
      if (entry.imsi == imsi) total += entry.packet.size_bytes;
    }
  }
  return total;
}

void EnodeB::touch_rrc(Imsi imsi, UeCtx& ue) {
  ue.last_activity = sim_.now();
  if (!ue.rrc_connected) {
    ue.rrc_connected = true;
    ++stats_.rrc_setups;
    sim_.schedule_after(params_.rrc_inactivity_timeout,
                        [this, imsi] { check_inactivity(imsi); });
  }
}

void EnodeB::check_inactivity(Imsi imsi) {
  auto it = ues_.find(imsi);
  if (it == ues_.end() || !it->second.rrc_connected) return;
  UeCtx& ue = it->second;
  const SimTime idle = sim_.now() - ue.last_activity;
  if (idle >= params_.rrc_inactivity_timeout) {
    release_rrc(imsi, ue);
  } else {
    sim_.schedule_after(params_.rrc_inactivity_timeout - idle,
                        [this, imsi] { check_inactivity(imsi); });
  }
}

void EnodeB::release_rrc(Imsi imsi, UeCtx& ue) {
  // §5.4: before releasing the connection the base station queries the
  // device-received traffic with RRC COUNTER CHECK.
  if (counter_check_ && ue.radio->connected(sim_.now())) {
    do_counter_check(imsi);
  }
  ue.rrc_connected = false;
  ++stats_.rrc_releases;
  TLC_DEBUG("enodeb") << "RRC release for " << imsi.to_string() << " at "
                      << format_time(sim_.now());
}

void EnodeB::do_counter_check(Imsi imsi) {
  ++stats_.counter_checks;
  const std::uint32_t transaction = next_rrc_transaction_++;
  // The response returns after one RRC round trip; counters are read at
  // response time (the modem answers with its state when it replies).
  sim_.schedule_after(params_.counter_check_delay, [this, imsi, transaction] {
    auto it = ues_.find(imsi);
    if (it == ues_.end() || counter_check_ == nullptr) return;
    const RrcCounterCheck check{transaction};
    auto response_wire = it->second.endpoint->handle_rrc(check.encode());
    if (!response_wire) {
      TLC_WARN("enodeb") << "counter check failed: " << response_wire.error();
      return;
    }
    auto response = RrcCounterCheckResponse::decode(*response_wire);
    if (!response || response->transaction_id != transaction) {
      TLC_WARN("enodeb") << "counter check response invalid";
      return;
    }
    counter_check_(imsi, response->uplink_bytes, response->downlink_bytes,
                   sim_.now());
  });
}

void EnodeB::request_counter_check(Imsi imsi) {
  auto it = ues_.find(imsi);
  if (it == ues_.end()) return;
  if (!it->second.radio->connected(sim_.now())) return;  // unreachable
  do_counter_check(imsi);
}

bool EnodeB::rrc_connected(Imsi imsi) const {
  auto it = ues_.find(imsi);
  return it != ues_.end() && it->second.rrc_connected;
}

void EnodeB::set_rate_limit(Imsi imsi, double bps) {
  auto it = ues_.find(imsi);
  if (it == ues_.end()) return;
  it->second.rate_limit_bps = bps;
  it->second.tokens_bytes = 0.0;
  it->second.tokens_updated = sim_.now();
}

double EnodeB::rate_limit(Imsi imsi) const {
  auto it = ues_.find(imsi);
  return it == ues_.end() ? 0.0 : it->second.rate_limit_bps;
}

namespace {

/// Token bucket burst allowance: one second of the limited rate.
double bucket_cap(double bps) { return bps / 8.0; }

}  // namespace

bool EnodeB::rate_tokens_available(const UeCtx& ue,
                                   std::uint32_t size_bytes) const {
  if (ue.rate_limit_bps <= 0.0) return true;
  const double elapsed_s = to_seconds(sim_.now() - ue.tokens_updated);
  const double tokens = std::min(
      bucket_cap(ue.rate_limit_bps),
      ue.tokens_bytes + ue.rate_limit_bps / 8.0 * elapsed_s);
  return tokens >= static_cast<double>(size_bytes);
}

bool EnodeB::consume_rate_tokens(UeCtx& ue, std::uint32_t size_bytes) {
  if (ue.rate_limit_bps <= 0.0) return true;
  const SimTime now = sim_.now();
  const double elapsed_s = to_seconds(now - ue.tokens_updated);
  ue.tokens_bytes = std::min(
      bucket_cap(ue.rate_limit_bps),
      ue.tokens_bytes + ue.rate_limit_bps / 8.0 * elapsed_s);
  ue.tokens_updated = now;
  if (ue.tokens_bytes < static_cast<double>(size_bytes)) return false;
  ue.tokens_bytes -= static_cast<double>(size_bytes);
  return true;
}

bool EnodeB::enqueue(QueueSet& set, std::size_t q, Imsi imsi,
                     const sim::Packet& packet) {
  if (set.bytes[q] + packet.size_bytes > params_.queue_limit_bytes) {
    return false;
  }
  set.queues[q].push_back(QueuedPacket{imsi, packet});
  set.bytes[q] += packet.size_bytes;
  return true;
}

void EnodeB::downlink_submit(Imsi imsi, const sim::Packet& packet) {
  auto it = ues_.find(imsi);
  if (it == ues_.end()) {
    return;  // no context (detached): dies here, uncharged downstream
  }
  const std::size_t q = queue_index(packet.qci);
  if (!enqueue(dl_, q, imsi, packet)) {
    ++stats_.dl_queue_drops;
    return;
  }
  if (!dl_serving_) serve_dl();
}

void EnodeB::uplink_submit(Imsi imsi, const sim::Packet& packet) {
  auto it = ues_.find(imsi);
  if (it == ues_.end()) return;
  touch_rrc(imsi, it->second);
  const std::size_t q = queue_index(packet.qci);
  if (!enqueue(ul_, q, imsi, packet)) {
    ++stats_.ul_queue_drops;
    return;
  }
  if (!ul_serving_) serve_ul();
}

bool EnodeB::pick(QueueSet& set, std::size_t& out_queue,
                  std::size_t& out_pos) {
  const SimTime now = sim_.now();
  for (std::size_t q = 0; q < kQueues; ++q) {
    const auto& queue = set.queues[q];
    for (std::size_t pos = 0; pos < queue.size(); ++pos) {
      auto it = ues_.find(queue[pos].imsi);
      if (it != ues_.end() && it->second.radio->connected(now) &&
          rate_tokens_available(it->second, queue[pos].packet.size_bytes)) {
        out_queue = q;
        out_pos = pos;
        return true;
      }
    }
  }
  return false;
}

void EnodeB::serve_dl() {
  // Delay-budget discard before service: stale head-of-line packets
  // (typically buffered through an outage) are dropped, not delivered.
  if (params_.pdb_discard_factor > 0.0) {
    for (std::size_t q = 0; q < kQueues; ++q) {
      auto& queue = dl_.queues[q];
      while (!queue.empty()) {
        const sim::Packet& head = queue.front().packet;
        const auto budget = static_cast<SimTime>(
            params_.pdb_discard_factor *
            static_cast<double>(sim::qci_delay_budget(head.qci)));
        if (sim_.now() - head.created_at <= budget) break;
        dl_.bytes[q] -=
            std::min<std::uint64_t>(dl_.bytes[q], head.size_bytes);
        queue.pop_front();
        ++stats_.dl_pdb_drops;
      }
    }
  }

  std::size_t q = 0;
  std::size_t pos = 0;
  if (!pick(dl_, q, pos)) {
    dl_serving_ = false;
    // Traffic may be waiting for a UE out of coverage: poll again while
    // any DL queue is non-empty.
    bool pending = false;
    for (const auto& queue : dl_.queues) pending = pending || !queue.empty();
    if (pending && !dl_retry_armed_) {
      dl_retry_armed_ = true;
      sim_.schedule_after(params_.blocked_retry, [this] {
        dl_retry_armed_ = false;
        if (!dl_serving_) serve_dl();
      });
    }
    return;
  }

  dl_serving_ = true;
  const QueuedPacket entry = dl_.queues[q][pos];
  dl_.queues[q].erase(dl_.queues[q].begin() + static_cast<std::ptrdiff_t>(pos));
  dl_.bytes[q] -= std::min<std::uint64_t>(dl_.bytes[q],
                                          entry.packet.size_bytes);
  consume_rate_tokens(ues_[entry.imsi], entry.packet.size_bytes);

  const double tx_seconds = static_cast<double>(entry.packet.size_bytes) *
                            8.0 / params_.dl_capacity_bps;
  sim_.schedule_after(from_seconds(tx_seconds), [this, entry] {
    auto it = ues_.find(entry.imsi);
    if (it != ues_.end()) {
      UeCtx& target = it->second;
      const double loss = target.radio->packet_loss_probability(sim_.now());
      if (rng_.chance(loss)) {
        ++stats_.dl_air_drops;
      } else {
        ++stats_.dl_delivered;
        touch_rrc(entry.imsi, target);
        target.endpoint->modem_deliver(entry.packet);
      }
    }
    dl_serving_ = false;
    serve_dl();
  });
}

void EnodeB::serve_ul() {
  std::size_t q = 0;
  std::size_t pos = 0;
  if (!pick(ul_, q, pos)) {
    ul_serving_ = false;
    bool pending = false;
    for (const auto& queue : ul_.queues) pending = pending || !queue.empty();
    if (pending && !ul_retry_armed_) {
      ul_retry_armed_ = true;
      sim_.schedule_after(params_.blocked_retry, [this] {
        ul_retry_armed_ = false;
        if (!ul_serving_) serve_ul();
      });
    }
    return;
  }

  ul_serving_ = true;
  const QueuedPacket entry = ul_.queues[q][pos];
  ul_.queues[q].erase(ul_.queues[q].begin() + static_cast<std::ptrdiff_t>(pos));
  ul_.bytes[q] -= std::min<std::uint64_t>(ul_.bytes[q],
                                          entry.packet.size_bytes);
  consume_rate_tokens(ues_[entry.imsi], entry.packet.size_bytes);

  const double tx_seconds = static_cast<double>(entry.packet.size_bytes) *
                            8.0 / params_.ul_capacity_bps;
  sim_.schedule_after(from_seconds(tx_seconds), [this, entry] {
    auto it = ues_.find(entry.imsi);
    if (it != ues_.end()) {
      UeCtx& source = it->second;
      const double loss = source.radio->packet_loss_probability(sim_.now());
      if (rng_.chance(loss)) {
        ++stats_.ul_air_drops;
      } else {
        ++stats_.ul_delivered;
        if (uplink_sink_) uplink_sink_(entry.imsi, entry.packet);
      }
    }
    ul_serving_ = false;
    serve_ul();
  });
}

}  // namespace tlc::epc
