#include "epc/mme.hpp"

#include <algorithm>
#include <vector>

#include "util/logging.hpp"

namespace tlc::epc {

Mme::Mme(sim::Simulator& sim, Hss& hss, MmeParams params)
    : sim_(sim), hss_(hss), params_(params) {}

bool Mme::register_ue(Imsi imsi, sim::RadioChannel* radio) {
  if (!hss_.authorize_attach(imsi)) {
    TLC_WARN("mme") << "attach rejected for IMSI " << imsi.to_string();
    return false;
  }
  UeState& state = ues_[imsi];
  state.radio = radio;
  set_attached(imsi, state, true);
  return true;
}

void Mme::set_attached(Imsi imsi, UeState& state, bool attached) {
  if (state.attached == attached) return;
  state.attached = attached;
  if (attached) {
    ++attaches_;
  } else {
    ++detaches_;
  }
  TLC_INFO("mme") << "IMSI " << imsi.to_string() << " "
                  << (attached ? "attached" : "detached") << " at "
                  << format_time(sim_.now());
  if (on_state_change_) on_state_change_(imsi, attached);
}

void Mme::start() {
  if (started_) return;
  started_ = true;
  sim_.schedule_after(params_.poll_interval, [this] { poll(); });
}

void Mme::poll() {
  const SimTime now = sim_.now();
  // Poll in ascending IMSI order, not hash order: detaches and attach
  // timers scheduled in this pass land at identical timestamps, so
  // iteration order decides their relative event order. Hash order
  // would tie that to insertion history and hasher implementation.
  std::vector<Imsi> imsis;
  imsis.reserve(ues_.size());
  // tlclint: ordered — key collection, sorted on the next line
  for (const auto& [imsi, state] : ues_) imsis.push_back(imsi);
  std::sort(imsis.begin(), imsis.end());
  for (const Imsi imsi : imsis) {
    UeState& state = ues_.at(imsi);
    if (state.radio == nullptr) continue;
    const bool connected = state.radio->connected(now);
    if (state.attached) {
      if (!connected) {
        const SimTime since = state.radio->disconnected_since();
        if (since >= 0 && now - since >= params_.detach_after) {
          // Radio link failure: network-initiated detach.
          set_attached(imsi, state, false);
        }
      }
    } else if (connected && !state.reattach_pending &&
               hss_.authorize_attach(imsi)) {
      // Coverage restored: run the attach procedure.
      state.reattach_pending = true;
      sim_.schedule_after(params_.attach_delay, [this, imsi] {
        auto it = ues_.find(imsi);
        if (it == ues_.end()) return;
        it->second.reattach_pending = false;
        if (it->second.radio->connected(sim_.now())) {
          set_attached(imsi, it->second, true);
        }
      });
    }
  }
  sim_.schedule_after(params_.poll_interval, [this] { poll(); });
}

bool Mme::attached(Imsi imsi) const {
  auto it = ues_.find(imsi);
  return it != ues_.end() && it->second.attached;
}

}  // namespace tlc::epc
