// Home Subscriber Server: the operator's subscriber database.
//
// Stores provisioned subscribers and authorizes attach requests from the
// MME. Deliberately small — the charging experiments only need identity
// and admission — but kept as a separate function node to mirror the
// paper's OpenEPC deployment (Fig 11a).
#pragma once

#include <optional>
#include <unordered_map>

#include "epc/ids.hpp"
#include "epc/profiles.hpp"

namespace tlc::epc {

class Hss {
 public:
  /// Adds or replaces a subscriber record.
  void provision(SubscriberProfile profile);

  /// Removes a subscriber; pending sessions are the MME's problem.
  void deprovision(Imsi imsi);

  [[nodiscard]] std::optional<SubscriberProfile> lookup(Imsi imsi) const;

  /// Attach admission: known and not barred.
  [[nodiscard]] bool authorize_attach(Imsi imsi) const;

  /// Administrative barring (e.g. operator suspends a delinquent edge
  /// vendor after a failed negotiation).
  void set_barred(Imsi imsi, bool barred);

  [[nodiscard]] std::size_t subscriber_count() const {
    return subscribers_.size();
  }

 private:
  struct Entry {
    SubscriberProfile profile;
    bool barred = false;
  };
  std::unordered_map<Imsi, Entry> subscribers_;
};

}  // namespace tlc::epc
