#include "epc/pcrf.hpp"

namespace tlc::epc {

void Pcrf::install_rule(FlowId flow, sim::Qci qci) { rules_[flow] = qci; }

void Pcrf::remove_rule(FlowId flow) { rules_.erase(flow); }

sim::Qci Pcrf::qci_for(FlowId flow) const {
  auto it = rules_.find(flow);
  return it == rules_.end() ? sim::Qci::kQci9 : it->second;
}

SimTime Pcrf::delay_budget(FlowId flow) const {
  return sim::qci_delay_budget(qci_for(flow));
}

}  // namespace tlc::epc
