#include "epc/hss.hpp"

namespace tlc::epc {

void Hss::provision(SubscriberProfile profile) {
  subscribers_[profile.imsi] = Entry{std::move(profile), false};
}

void Hss::deprovision(Imsi imsi) { subscribers_.erase(imsi); }

std::optional<SubscriberProfile> Hss::lookup(Imsi imsi) const {
  auto it = subscribers_.find(imsi);
  if (it == subscribers_.end()) return std::nullopt;
  return it->second.profile;
}

bool Hss::authorize_attach(Imsi imsi) const {
  auto it = subscribers_.find(imsi);
  return it != subscribers_.end() && !it->second.barred;
}

void Hss::set_barred(Imsi imsi, bool barred) {
  auto it = subscribers_.find(imsi);
  if (it != subscribers_.end()) {
    it->second.barred = barred;
  }
}

}  // namespace tlc::epc
