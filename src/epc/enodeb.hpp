// Small-cell eNodeB.
//
// Implements the pieces of the base station the charging gap depends on:
//  * a strict-priority air scheduler over shared per-QCI drop-tail
//    queues (QCI 3 > 7 > 9, per TS 23.203). Flows inside one QCI share
//    a FIFO, so iperf background traffic on QCI 9 congests the cell and
//    same-class app traffic loses proportionally — the Fig 3/13 effect —
//    while QCI 7 gaming stays clean (Fig 12d);
//  * per-packet air loss from the UE's radio channel (BLER from RSS,
//    forced loss during outages). Downlink air loss happens *after* the
//    SPGW charged the packet — the core over-charging mechanism;
//  * downlink buffering across short outages: packets whose UE is out
//    of coverage stay queued (later packets for other UEs are served
//    around them) and drain on reconnect — the t=240 s gap dip in
//    Fig 4 — with overflow drops when the outage outlasts the queue;
//  * the RRC connection state machine with inactivity release, and the
//    RRC COUNTER CHECK procedure (§5.4) used as the operator's
//    tamper-resilient monitor: on every RRC release (and on demand at
//    cycle end) the eNodeB queries the hardware modem's cumulative
//    counters and reports them to the operator.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>

#include "epc/ids.hpp"
#include "epc/rrc.hpp"
#include "sim/packet.hpp"
#include "sim/radio.hpp"
#include "sim/simulator.hpp"
#include "util/expected.hpp"

namespace tlc::epc {

/// The device side of the radio interface, implemented by UeDevice.
/// Counter reads model the hardware modem's statistics — tamper
/// resilient by construction (§5.4).
class RrcEndpoint {
 public:
  virtual ~RrcEndpoint() = default;
  /// Cumulative bytes the modem has transmitted on the uplink.
  [[nodiscard]] virtual std::uint64_t modem_tx_bytes() const = 0;
  /// Cumulative bytes the modem has received on the downlink.
  [[nodiscard]] virtual std::uint64_t modem_rx_bytes() const = 0;
  /// Delivers a downlink packet into the device.
  virtual void modem_deliver(const sim::Packet& packet) = 0;

  /// Handles an encoded RRC message from the base station and returns
  /// the encoded response. The default implements COUNTER CHECK from
  /// the modem counters — firmware behaviour the application processor
  /// cannot override, which is the §5.4 tamper-resilience argument.
  [[nodiscard]] virtual Expected<Bytes> handle_rrc(const Bytes& wire);
};

struct EnodebParams {
  /// Cell capacity per direction (20 MHz FDD band 2 small cell),
  /// calibrated so the Fig 3/13 background sweep (0-160 Mbps iperf)
  /// produces the paper's overload loss levels.
  double dl_capacity_bps = 115e6;
  double ul_capacity_bps = 100e6;
  /// Shared per-QCI drop-tail queue limit.
  std::uint32_t queue_limit_bytes = 1u << 20;
  /// RRC inactivity timeout before connection release.
  SimTime rrc_inactivity_timeout = 10 * kSecond;
  /// COUNTER CHECK request/response round trip over RRC.
  SimTime counter_check_delay = 20 * kMillisecond;
  /// Re-poll period when queued traffic cannot be served (all candidate
  /// UEs out of coverage).
  SimTime blocked_retry = 20 * kMillisecond;
  /// Delay-budget discard (§3.1 cause 5: the operator's middlebox/RLC
  /// drops frames that blew their latency requirement). A packet whose
  /// queue sojourn exceeds `pdb_discard_factor` x its QCI delay budget
  /// is dropped at dequeue. 0 disables.
  double pdb_discard_factor = 5.0;
};

class EnodeB {
 public:
  /// Counter-check report: modem-cumulative UL/DL bytes at `at`.
  using CounterCheckFn = std::function<void(
      Imsi, std::uint64_t ul_bytes, std::uint64_t dl_bytes, SimTime at)>;
  using UplinkSinkFn = std::function<void(Imsi, const sim::Packet&)>;

  struct Stats {
    std::uint64_t dl_delivered = 0;
    std::uint64_t dl_queue_drops = 0;
    std::uint64_t dl_air_drops = 0;
    std::uint64_t dl_pdb_drops = 0;  // exceeded delay budget in queue
    std::uint64_t dl_flushed = 0;    // dropped on detach
    std::uint64_t ul_delivered = 0;
    std::uint64_t ul_queue_drops = 0;
    std::uint64_t ul_air_drops = 0;
    std::uint64_t rrc_setups = 0;
    std::uint64_t rrc_releases = 0;
    std::uint64_t counter_checks = 0;
  };

  EnodeB(sim::Simulator& sim, EnodebParams params, Rng rng);

  /// Registers a UE served by this cell.
  void add_ue(Imsi imsi, RrcEndpoint* endpoint, sim::RadioChannel* radio);

  /// Detach: flushes the UE's queued traffic (counted as dl_flushed;
  /// those downlink bytes were already charged upstream).
  void remove_ue(Imsi imsi);

  /// Uplink packets that survive the air are forwarded here (-> SPGW).
  void set_uplink_sink(UplinkSinkFn sink) { uplink_sink_ = std::move(sink); }

  /// Activates the §5.4 tamper-resilient monitor.
  void set_counter_check_handler(CounterCheckFn handler) {
    counter_check_ = std::move(handler);
  }

  /// Downlink packet from the SPGW for `imsi`.
  void downlink_submit(Imsi imsi, const sim::Packet& packet);

  /// Uplink packet from the UE's modem.
  void uplink_submit(Imsi imsi, const sim::Packet& packet);

  /// On-demand COUNTER CHECK (the operator issues one at each charging
  /// cycle boundary). Silently skipped when the UE is out of coverage —
  /// that inaccuracy is part of the Fig 18 error budget.
  void request_counter_check(Imsi imsi);

  /// Applies the §2.1 "unlimited plan" throttle: the subscriber keeps
  /// service but is rate-limited (e.g. 128 kbps once the OFCS reports
  /// the quota exceeded). 0 clears the limit. Applies per direction via
  /// a token bucket at the scheduler.
  void set_rate_limit(Imsi imsi, double bps);
  [[nodiscard]] double rate_limit(Imsi imsi) const;

  [[nodiscard]] bool rrc_connected(Imsi imsi) const;
  [[nodiscard]] bool has_ue(Imsi imsi) const {
    return ues_.find(imsi) != ues_.end();
  }
  [[nodiscard]] const Stats& stats() const { return stats_; }
  /// Bytes currently queued for one UE on the downlink (all QCIs).
  [[nodiscard]] std::uint64_t dl_backlog(Imsi imsi) const;

 private:
  // QCI 3 / 7 / 9 -> queue index 0 / 1 / 2.
  static constexpr std::size_t kQueues = 3;
  [[nodiscard]] static std::size_t queue_index(sim::Qci qci);

  struct UeCtx {
    RrcEndpoint* endpoint = nullptr;
    sim::RadioChannel* radio = nullptr;
    bool rrc_connected = false;
    SimTime last_activity = 0;
    // Quota throttle (token bucket; 0 bps = unlimited).
    double rate_limit_bps = 0.0;
    double tokens_bytes = 0.0;
    SimTime tokens_updated = 0;
  };

  /// Token-bucket admission for a throttled UE; consumes on success.
  bool consume_rate_tokens(UeCtx& ue, std::uint32_t size_bytes);
  [[nodiscard]] bool rate_tokens_available(const UeCtx& ue,
                                           std::uint32_t size_bytes) const;

  struct QueuedPacket {
    Imsi imsi;
    sim::Packet packet;
  };
  struct QueueSet {
    std::array<std::deque<QueuedPacket>, kQueues> queues;
    std::array<std::uint64_t, kQueues> bytes{};
  };

  void touch_rrc(Imsi imsi, UeCtx& ue);
  void check_inactivity(Imsi imsi);
  void release_rrc(Imsi imsi, UeCtx& ue);
  void do_counter_check(Imsi imsi);

  bool enqueue(QueueSet& set, std::size_t q, Imsi imsi,
               const sim::Packet& packet);
  /// Finds the first servable packet by strict priority, skipping
  /// entries whose UE is out of coverage (they stay queued). Returns
  /// false when nothing can be served now.
  bool pick(QueueSet& set, std::size_t& out_queue, std::size_t& out_pos);
  void flush_ue(QueueSet& set, Imsi imsi, std::uint64_t& flush_counter);

  void serve_dl();
  void serve_ul();

  sim::Simulator& sim_;
  EnodebParams params_;
  Rng rng_;
  std::map<Imsi, UeCtx> ues_;
  QueueSet dl_;
  QueueSet ul_;
  UplinkSinkFn uplink_sink_;
  CounterCheckFn counter_check_;
  Stats stats_;
  std::uint32_t next_rrc_transaction_ = 1;
  bool dl_serving_ = false;
  bool ul_serving_ = false;
  bool dl_retry_armed_ = false;
  bool ul_retry_armed_ = false;
};

}  // namespace tlc::epc
