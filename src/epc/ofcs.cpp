#include "epc/ofcs.hpp"

#include <algorithm>
#include <utility>

#include "util/logging.hpp"
#include "util/serde.hpp"

namespace tlc::epc {
namespace {

// Journal op encoding (the OFCS StateLog payloads). CDRs get a
// full-width codec here — the 34-byte compact wire form truncates
// volumes to u32 and times to seconds, which would make replayed state
// diverge from the live ledger.
constexpr std::uint8_t kOpIngest = 1;
constexpr std::uint8_t kOpClose = 2;
constexpr std::uint8_t kOpSettle = 3;

// Version 2 extends the CDR codec with the §13 audit fields
// (uncharged volumes + anomaly flags); journals and snapshots written
// by version 1 are no longer readable, which is fine — supervisor state
// directories never outlive a binary in this repo.
// v3: bill amounts moved from f64 currency units to u64 micro-units.
constexpr std::uint8_t kSnapshotVersion = 3;

// tlclint: codec(ofcs_cdr_full, encode, version=kSnapshotVersion)
void write_cdr(ByteWriter& w, const ChargingDataRecord& cdr) {
  w.u64(cdr.served_imsi.value);
  w.u32(cdr.gateway_address);
  w.u16(cdr.charging_id);
  w.u32(cdr.sequence_number);
  w.i64(cdr.time_of_first_usage);
  w.i64(cdr.time_of_last_usage);
  w.u64(cdr.datavolume_uplink);
  w.u64(cdr.datavolume_downlink);
  w.u64(cdr.uncharged_uplink);
  w.u64(cdr.uncharged_downlink);
  w.u32(cdr.anomaly_flags);
}

// tlclint: codec(ofcs_cdr_full, decode, version=kSnapshotVersion)
Expected<ChargingDataRecord> read_cdr(ByteReader& r) {
  ChargingDataRecord cdr;
  auto imsi = r.u64();
  if (!imsi) return Err("ofcs: truncated cdr");
  cdr.served_imsi.value = *imsi;
  auto gateway = r.u32();
  auto charging_id = r.u16();
  auto sequence = r.u32();
  auto first = r.i64();
  auto last = r.i64();
  auto uplink = r.u64();
  auto downlink = r.u64();
  auto uncharged_ul = r.u64();
  auto uncharged_dl = r.u64();
  auto anomaly_flags = r.u32();
  if (!gateway || !charging_id || !sequence || !first || !last || !uplink ||
      !downlink || !uncharged_ul || !uncharged_dl || !anomaly_flags) {
    return Err("ofcs: truncated cdr");
  }
  cdr.gateway_address = *gateway;
  cdr.charging_id = *charging_id;
  cdr.sequence_number = *sequence;
  cdr.time_of_first_usage = *first;
  cdr.time_of_last_usage = *last;
  cdr.datavolume_uplink = *uplink;
  cdr.datavolume_downlink = *downlink;
  cdr.uncharged_uplink = *uncharged_ul;
  cdr.uncharged_downlink = *uncharged_dl;
  cdr.anomaly_flags = *anomaly_flags;
  return cdr;
}

// tlclint: codec(ofcs_bill_line, encode, version=kSnapshotVersion)
void write_line(ByteWriter& w, const BillLine& line) {
  w.u32(line.cycle_index);
  w.u64(line.gateway_volume);
  w.u64(line.billed_volume);
  w.u64(line.amount_micro);
  w.u8(line.throttled ? 1 : 0);
}

// tlclint: codec(ofcs_bill_line, decode, version=kSnapshotVersion)
Expected<BillLine> read_line(ByteReader& r) {
  BillLine line;
  auto cycle = r.u32();
  auto gateway = r.u64();
  auto billed = r.u64();
  auto amount = r.u64();
  auto throttled = r.u8();
  if (!cycle || !gateway || !billed || !amount || !throttled) {
    return Err("ofcs: truncated bill line");
  }
  line.cycle_index = *cycle;
  line.gateway_volume = *gateway;
  line.billed_volume = *billed;
  line.amount_micro = *amount;
  line.throttled = *throttled != 0;
  return line;
}

// tlclint: codec(ofcs_op_ingest, encode, version=kSnapshotVersion)
Bytes encode_ingest_op(const ChargingDataRecord& cdr) {
  ByteWriter w;
  w.u8(kOpIngest);
  write_cdr(w, cdr);
  return w.take();
}

// tlclint: codec(ofcs_op_close, encode, version=kSnapshotVersion)
Bytes encode_close_op(Imsi imsi, const BillLine& line) {
  ByteWriter w;
  w.u8(kOpClose);
  w.u64(imsi.value);
  write_line(w, line);
  return w.take();
}

// tlclint: codec(ofcs_op_settle, encode, version=kSnapshotVersion)
Bytes encode_settle_op(std::uint64_t ue_id, std::uint32_t cycle_index,
                       SettlementOutcome outcome) {
  ByteWriter w;
  w.u8(kOpSettle);
  w.u64(ue_id);
  w.u32(cycle_index);
  w.u8(static_cast<std::uint8_t>(outcome));
  return w.take();
}

}  // namespace

Ofcs::Ofcs(charging::DataPlan plan) : plan_(plan) {}

void Ofcs::ingest(const ChargingDataRecord& cdr) {
  if (log_ != nullptr) {
    const CdrKey key{cdr.served_imsi.value, cdr.charging_id,
                     cdr.sequence_number};
    if (seen_cdrs_.contains(key)) {
      ++duplicate_ops_dropped_;
      return;
    }
    if (!journal_op(encode_ingest_op(cdr))) return;
  }
  apply_ingest(cdr);
}

void Ofcs::apply_ingest(const ChargingDataRecord& cdr) {
  if (log_ != nullptr) {
    seen_cdrs_.insert(
        CdrKey{cdr.served_imsi.value, cdr.charging_id, cdr.sequence_number});
  }
  State& state = subscribers_[cdr.served_imsi];
  state.archive.push_back(cdr);
  state.pending_ul += cdr.datavolume_uplink;
  state.pending_dl += cdr.datavolume_downlink;
  state.uncharged_bytes += cdr.uncharged_uplink + cdr.uncharged_downlink;
  state.anomaly_flags |= cdr.anomaly_flags;
  ++ingested_;
}

BillLine Ofcs::close_cycle(Imsi imsi) {
  return close_cycle(imsi, subscribers_[imsi].next_cycle);
}

BillLine Ofcs::close_cycle(Imsi imsi, std::uint32_t cycle_index) {
  State& state = subscribers_[imsi];
  if (cycle_index < state.next_cycle) {
    // Already rated (post-recovery re-execution): hand back the stored
    // line, bit for bit. Nothing is re-billed.
    ++duplicate_ops_dropped_;
    return state.billing.lines[cycle_index];
  }

  BillLine line;
  line.cycle_index = state.next_cycle;
  line.gateway_volume = state.pending_ul + state.pending_dl;
  line.billed_volume =
      hook_ ? hook_(imsi, line.cycle_index, line.gateway_volume)
            : line.gateway_volume;
  // Fixed-point rating: bytes x micro-price per MB, floor division at
  // the final step only (no float round-trip anywhere in the bill).
  line.amount_micro =
      line.billed_volume * plan_.price_micro_per_mb / 1'000'000;
  // Quota check for "unlimited" plans: beyond the quota the subscriber
  // keeps service but is throttled (§2.1: e.g. 128 kbps after 15 GB).
  line.throttled = state.billing.total_billed_bytes + line.billed_volume >
                   plan_.quota_bytes;

  // The journaled op carries the fully-rated line (not the inputs), so
  // replay restores the exact amount bits without re-running the hook.
  if (log_ != nullptr && !journal_op(encode_close_op(imsi, line))) {
    return line;
  }
  apply_close(imsi, line);
  return line;
}

void Ofcs::apply_close(Imsi imsi, const BillLine& line) {
  State& state = subscribers_[imsi];
  state.pending_ul = 0;
  state.pending_dl = 0;
  state.next_cycle = line.cycle_index + 1;
  state.billing.total_billed_bytes += line.billed_volume;
  state.billing.total_amount_micro += line.amount_micro;
  state.billing.throttled = line.throttled;
  state.billing.lines.push_back(line);
}

std::vector<Imsi> Ofcs::subscribers() const {
  std::vector<Imsi> imsis;
  imsis.reserve(subscribers_.size());
  // tlclint: ordered — key collection, sorted on the next line
  for (const auto& [imsi, state] : subscribers_) imsis.push_back(imsi);
  std::sort(imsis.begin(), imsis.end());
  return imsis;
}

std::vector<std::pair<Imsi, BillLine>> Ofcs::close_cycle_all() {
  std::vector<std::pair<Imsi, BillLine>> lines;
  for (Imsi imsi : subscribers()) {
    lines.emplace_back(imsi, close_cycle(imsi));
  }
  return lines;
}

std::vector<std::pair<Imsi, BillLine>> Ofcs::close_cycle_all(
    std::uint32_t cycle_index) {
  std::vector<std::pair<Imsi, BillLine>> lines;
  for (Imsi imsi : subscribers()) {
    lines.emplace_back(imsi, close_cycle(imsi, cycle_index));
  }
  return lines;
}

void Ofcs::record_settlement(std::uint32_t cycle_index,
                             SettlementOutcome outcome, std::uint64_t ue_id) {
  if (log_ != nullptr) {
    if (settled_.contains(SettleKey{ue_id, cycle_index})) {
      ++duplicate_ops_dropped_;
      return;
    }
    if (!journal_op(encode_settle_op(ue_id, cycle_index, outcome))) return;
  }
  apply_settlement(ue_id, cycle_index, outcome);
}

void Ofcs::apply_settlement(std::uint64_t ue_id, std::uint32_t cycle_index,
                            SettlementOutcome outcome) {
  if (log_ != nullptr) settled_.insert(SettleKey{ue_id, cycle_index});
  if (settlement_by_cycle_.size() <= cycle_index) {
    settlement_by_cycle_.resize(cycle_index + 1);
  }
  SettlementCounters& counters = settlement_by_cycle_[cycle_index];
  switch (outcome) {
    case SettlementOutcome::Converged:
      ++counters.converged;
      break;
    case SettlementOutcome::Retried:
      ++counters.retried;
      break;
    case SettlementOutcome::Degraded:
      ++counters.degraded;
      break;
    case SettlementOutcome::RejectedTamper:
      ++counters.rejected_tamper;
      break;
  }
}

SettlementCounters Ofcs::settlement_counters(std::uint32_t cycle_index) const {
  if (cycle_index >= settlement_by_cycle_.size()) return {};
  return settlement_by_cycle_[cycle_index];
}

SettlementCounters Ofcs::settlement_totals() const {
  SettlementCounters sum;
  for (const SettlementCounters& counters : settlement_by_cycle_) {
    sum.converged += counters.converged;
    sum.retried += counters.retried;
    sum.degraded += counters.degraded;
    sum.rejected_tamper += counters.rejected_tamper;
  }
  return sum;
}

Ofcs::FleetTotals Ofcs::totals() const {
  FleetTotals totals;
  totals.subscribers = subscribers_.size();
  // Ascending-IMSI accumulation keeps the rollup order-stable across
  // runs (unordered_map iteration order is not part of the fleet
  // determinism contract); integer micro-units make the sum exact.
  for (Imsi imsi : subscribers()) {
    const State& state = subscribers_.at(imsi);
    totals.billed_bytes += state.billing.total_billed_bytes;
    totals.amount_micro += state.billing.total_amount_micro;
    if (state.billing.throttled) ++totals.throttled;
    totals.uncharged_bytes += state.uncharged_bytes;
    if (state.anomaly_flags != 0) ++totals.flagged_subscribers;
  }
  totals.settlement = settlement_totals();
  return totals;
}

std::uint64_t Ofcs::uncharged_bytes(Imsi imsi) const {
  auto it = subscribers_.find(imsi);
  return it == subscribers_.end() ? 0 : it->second.uncharged_bytes;
}

std::uint32_t Ofcs::anomaly_flags(Imsi imsi) const {
  auto it = subscribers_.find(imsi);
  return it == subscribers_.end() ? 0 : it->second.anomaly_flags;
}

const SubscriberBilling* Ofcs::billing(Imsi imsi) const {
  auto it = subscribers_.find(imsi);
  return it == subscribers_.end() ? nullptr : &it->second.billing;
}

const std::vector<ChargingDataRecord>* Ofcs::archive(Imsi imsi) const {
  auto it = subscribers_.find(imsi);
  return it == subscribers_.end() ? nullptr : &it->second.archive;
}

// ---- Crash recovery -------------------------------------------------

Status Ofcs::attach_recovery(recovery::StateLog* log) {
  log_ = log;
  recovery_error_ = Status::Ok();
  duplicate_ops_dropped_ = 0;
  if (log == nullptr) return Status::Ok();

  auto recovered = log->recover();
  if (!recovered) return Err(recovered.error());
  if (recovered->snapshot.has_value()) {
    if (Status restored = restore_state(*recovered->snapshot);
        !restored.ok()) {
      return restored;
    }
  }
  // Re-apply the op suffix. Ops already folded into the snapshot (the
  // crash-between-checkpoint-and-rotate window) are dropped by their
  // record IDs.
  for (const Bytes& op : recovered->ops) {
    if (Status applied = apply_journal_op(op); !applied.ok()) return applied;
  }
  if (recovered->journal_stats.torn_tail()) {
    TLC_WARN("ofcs") << "journal had a torn tail; dropped "
                     << recovered->journal_stats.truncated_bytes
                     << " unacknowledged bytes";
  }
  return Status::Ok();
}

Status Ofcs::checkpoint() {
  if (log_ == nullptr) return Err("ofcs: checkpoint without recovery log");
  return log_->checkpoint(serialize_state());
}

bool Ofcs::journal_op(const Bytes& op) {
  if (Status appended = log_->append(op); !appended.ok()) {
    // WAL discipline: no durable op, no apply. Drop the mutation and
    // surface the failure through recovery_error().
    if (recovery_error_.ok()) recovery_error_ = Err(appended.error());
    TLC_WARN("ofcs") << "journal append failed, op dropped: "
                     << appended.error();
    return false;
  }
  return true;
}

// Switch-multiplexed replay decoder: each branch's layout is pinned by
// the encode-only ofcs_op_* schemas, so no single codec shape fits here.
// tlclint: allow(schema-coverage) multiplexed decoder, see ofcs_op_* schemas
Status Ofcs::apply_journal_op(const Bytes& op) {
  ByteReader r(op);
  auto tag = r.u8();
  if (!tag) return Err("ofcs: empty journal op");
  switch (*tag) {
    case kOpIngest: {
      auto cdr = read_cdr(r);
      if (!cdr) return Err(cdr.error());
      const CdrKey key{cdr->served_imsi.value, cdr->charging_id,
                       cdr->sequence_number};
      if (seen_cdrs_.contains(key)) {
        ++duplicate_ops_dropped_;
        return Status::Ok();
      }
      apply_ingest(*cdr);
      return Status::Ok();
    }
    case kOpClose: {
      auto imsi = r.u64();
      if (!imsi) return Err("ofcs: truncated close op");
      auto line = read_line(r);
      if (!line) return Err(line.error());
      if (line->cycle_index < subscribers_[Imsi{*imsi}].next_cycle) {
        ++duplicate_ops_dropped_;
        return Status::Ok();
      }
      apply_close(Imsi{*imsi}, *line);
      return Status::Ok();
    }
    case kOpSettle: {
      auto ue_id = r.u64();
      auto cycle = r.u32();
      auto outcome = r.u8();
      if (!ue_id || !cycle || !outcome) {
        return Err("ofcs: truncated settle op");
      }
      if (settled_.contains(SettleKey{*ue_id, *cycle})) {
        ++duplicate_ops_dropped_;
        return Status::Ok();
      }
      apply_settlement(*ue_id, *cycle,
                       static_cast<SettlementOutcome>(*outcome));
      return Status::Ok();
    }
    default:
      return Err("ofcs: unknown journal op tag");
  }
}

// tlclint: codec(ofcs_snapshot, encode, version=kSnapshotVersion)
Bytes Ofcs::serialize_state() const {
  ByteWriter w;
  w.u8(kSnapshotVersion);
  w.u64(ingested_);
  w.u32(static_cast<std::uint32_t>(subscribers_.size()));
  for (Imsi imsi : subscribers()) {
    const State& state = subscribers_.at(imsi);
    w.u64(imsi.value);
    w.u32(static_cast<std::uint32_t>(state.archive.size()));
    for (const ChargingDataRecord& cdr : state.archive) write_cdr(w, cdr);
    w.u64(state.pending_ul);
    w.u64(state.pending_dl);
    w.u32(state.next_cycle);
    w.u32(static_cast<std::uint32_t>(state.billing.lines.size()));
    for (const BillLine& line : state.billing.lines) write_line(w, line);
    w.u64(state.billing.total_billed_bytes);
    w.u64(state.billing.total_amount_micro);
    w.u8(state.billing.throttled ? 1 : 0);
    w.u64(state.uncharged_bytes);
    w.u32(state.anomaly_flags);
  }
  w.u32(static_cast<std::uint32_t>(settlement_by_cycle_.size()));
  for (const SettlementCounters& counters : settlement_by_cycle_) {
    w.u64(counters.converged);
    w.u64(counters.retried);
    w.u64(counters.degraded);
    w.u64(counters.rejected_tamper);
  }
  w.u32(static_cast<std::uint32_t>(seen_cdrs_.size()));
  for (const auto& [imsi, charging_id, sequence] : seen_cdrs_) {
    w.u64(imsi);
    w.u16(charging_id);
    w.u32(sequence);
  }
  w.u32(static_cast<std::uint32_t>(settled_.size()));
  for (const auto& [ue_id, cycle] : settled_) {
    w.u64(ue_id);
    w.u32(cycle);
  }
  return w.take();
}

// tlclint: codec(ofcs_snapshot, decode, version=kSnapshotVersion)
Status Ofcs::restore_state(const Bytes& snapshot) {
  subscribers_.clear();
  ingested_ = 0;
  settlement_by_cycle_.clear();
  seen_cdrs_.clear();
  settled_.clear();

  ByteReader r(snapshot);
  auto version = r.u8();
  if (!version || *version != kSnapshotVersion) {
    return Err("ofcs snapshot: unsupported version");
  }
  auto ingested = r.u64();
  auto subscriber_count = r.u32();
  if (!ingested || !subscriber_count) return Err("ofcs snapshot: truncated");
  ingested_ = *ingested;
  for (std::uint32_t i = 0; i < *subscriber_count; ++i) {
    auto imsi = r.u64();
    auto archive_count = r.u32();
    if (!imsi || !archive_count) return Err("ofcs snapshot: truncated");
    State& state = subscribers_[Imsi{*imsi}];
    state.archive.reserve(*archive_count);
    for (std::uint32_t j = 0; j < *archive_count; ++j) {
      auto cdr = read_cdr(r);
      if (!cdr) return Err(cdr.error());
      state.archive.push_back(*cdr);
    }
    auto pending_ul = r.u64();
    auto pending_dl = r.u64();
    auto next_cycle = r.u32();
    auto line_count = r.u32();
    if (!pending_ul || !pending_dl || !next_cycle || !line_count) {
      return Err("ofcs snapshot: truncated");
    }
    state.pending_ul = *pending_ul;
    state.pending_dl = *pending_dl;
    state.next_cycle = *next_cycle;
    state.billing.lines.reserve(*line_count);
    for (std::uint32_t j = 0; j < *line_count; ++j) {
      auto line = read_line(r);
      if (!line) return Err(line.error());
      state.billing.lines.push_back(*line);
    }
    auto total_billed = r.u64();
    auto total_amount = r.u64();
    auto throttled = r.u8();
    if (!total_billed || !total_amount || !throttled) {
      return Err("ofcs snapshot: truncated");
    }
    state.billing.total_billed_bytes = *total_billed;
    state.billing.total_amount_micro = *total_amount;
    state.billing.throttled = *throttled != 0;
    auto uncharged = r.u64();
    auto anomaly_flags = r.u32();
    if (!uncharged || !anomaly_flags) return Err("ofcs snapshot: truncated");
    state.uncharged_bytes = *uncharged;
    state.anomaly_flags = *anomaly_flags;
  }
  auto cycle_count = r.u32();
  if (!cycle_count) return Err("ofcs snapshot: truncated");
  settlement_by_cycle_.resize(*cycle_count);
  for (std::uint32_t i = 0; i < *cycle_count; ++i) {
    auto converged = r.u64();
    auto retried = r.u64();
    auto degraded = r.u64();
    auto rejected = r.u64();
    if (!converged || !retried || !degraded || !rejected) {
      return Err("ofcs snapshot: truncated");
    }
    settlement_by_cycle_[i] = SettlementCounters{*converged, *retried,
                                                 *degraded, *rejected};
  }
  auto seen_count = r.u32();
  if (!seen_count) return Err("ofcs snapshot: truncated");
  for (std::uint32_t i = 0; i < *seen_count; ++i) {
    auto imsi = r.u64();
    auto charging_id = r.u16();
    auto sequence = r.u32();
    if (!imsi || !charging_id || !sequence) {
      return Err("ofcs snapshot: truncated");
    }
    seen_cdrs_.insert(CdrKey{*imsi, *charging_id, *sequence});
  }
  auto settled_count = r.u32();
  if (!settled_count) return Err("ofcs snapshot: truncated");
  for (std::uint32_t i = 0; i < *settled_count; ++i) {
    auto ue_id = r.u64();
    auto cycle = r.u32();
    if (!ue_id || !cycle) return Err("ofcs snapshot: truncated");
    settled_.insert(SettleKey{*ue_id, *cycle});
  }
  if (!r.exhausted()) return Err("ofcs snapshot: trailing bytes");
  return Status::Ok();
}

}  // namespace tlc::epc
