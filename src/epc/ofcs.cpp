#include "epc/ofcs.hpp"

#include <algorithm>
#include <utility>

namespace tlc::epc {

Ofcs::Ofcs(charging::DataPlan plan) : plan_(plan) {}

void Ofcs::ingest(const ChargingDataRecord& cdr) {
  State& state = subscribers_[cdr.served_imsi];
  state.archive.push_back(cdr);
  state.pending_ul += cdr.datavolume_uplink;
  state.pending_dl += cdr.datavolume_downlink;
  ++ingested_;
}

BillLine Ofcs::close_cycle(Imsi imsi) {
  State& state = subscribers_[imsi];
  BillLine line;
  line.cycle_index = state.next_cycle++;
  line.gateway_volume = state.pending_ul + state.pending_dl;
  state.pending_ul = 0;
  state.pending_dl = 0;

  line.billed_volume =
      hook_ ? hook_(imsi, line.cycle_index, line.gateway_volume)
            : line.gateway_volume;
  line.amount = static_cast<double>(line.billed_volume) / 1e6 *
                plan_.price_per_mb;

  state.billing.total_billed_bytes += line.billed_volume;
  state.billing.total_amount += line.amount;
  // Quota check for "unlimited" plans: beyond the quota the subscriber
  // keeps service but is throttled (§2.1: e.g. 128 kbps after 15 GB).
  state.billing.throttled =
      state.billing.total_billed_bytes > plan_.quota_bytes;
  line.throttled = state.billing.throttled;

  state.billing.lines.push_back(line);
  return line;
}

std::vector<Imsi> Ofcs::subscribers() const {
  std::vector<Imsi> imsis;
  imsis.reserve(subscribers_.size());
  // tlclint: ordered — key collection, sorted on the next line
  for (const auto& [imsi, state] : subscribers_) imsis.push_back(imsi);
  std::sort(imsis.begin(), imsis.end());
  return imsis;
}

std::vector<std::pair<Imsi, BillLine>> Ofcs::close_cycle_all() {
  std::vector<std::pair<Imsi, BillLine>> lines;
  for (Imsi imsi : subscribers()) {
    lines.emplace_back(imsi, close_cycle(imsi));
  }
  return lines;
}

void Ofcs::record_settlement(std::uint32_t cycle_index,
                             SettlementOutcome outcome) {
  if (settlement_by_cycle_.size() <= cycle_index) {
    settlement_by_cycle_.resize(cycle_index + 1);
  }
  SettlementCounters& counters = settlement_by_cycle_[cycle_index];
  switch (outcome) {
    case SettlementOutcome::Converged:
      ++counters.converged;
      break;
    case SettlementOutcome::Retried:
      ++counters.retried;
      break;
    case SettlementOutcome::Degraded:
      ++counters.degraded;
      break;
    case SettlementOutcome::RejectedTamper:
      ++counters.rejected_tamper;
      break;
  }
}

SettlementCounters Ofcs::settlement_counters(std::uint32_t cycle_index) const {
  if (cycle_index >= settlement_by_cycle_.size()) return {};
  return settlement_by_cycle_[cycle_index];
}

SettlementCounters Ofcs::settlement_totals() const {
  SettlementCounters sum;
  for (const SettlementCounters& counters : settlement_by_cycle_) {
    sum.converged += counters.converged;
    sum.retried += counters.retried;
    sum.degraded += counters.degraded;
    sum.rejected_tamper += counters.rejected_tamper;
  }
  return sum;
}

Ofcs::FleetTotals Ofcs::totals() const {
  FleetTotals totals;
  totals.subscribers = subscribers_.size();
  // Ascending-IMSI accumulation keeps the floating-point sum bit-stable
  // across runs (unordered_map iteration order is not part of the
  // fleet determinism contract).
  for (Imsi imsi : subscribers()) {
    const State& state = subscribers_.at(imsi);
    totals.billed_bytes += state.billing.total_billed_bytes;
    totals.amount += state.billing.total_amount;
    if (state.billing.throttled) ++totals.throttled;
  }
  totals.settlement = settlement_totals();
  return totals;
}

const SubscriberBilling* Ofcs::billing(Imsi imsi) const {
  auto it = subscribers_.find(imsi);
  return it == subscribers_.end() ? nullptr : &it->second.billing;
}

const std::vector<ChargingDataRecord>* Ofcs::archive(Imsi imsi) const {
  auto it = subscribers_.find(imsi);
  return it == subscribers_.end() ? nullptr : &it->second.archive;
}

}  // namespace tlc::epc
