// RRC COUNTER CHECK messages (TS 36.331 §5.3.6, simplified).
//
// §5.4's tamper-resilient monitor rides this procedure: the base
// station sends a COUNTER CHECK over the radio connection, the hardware
// modem answers with its cumulative PDCP counts. The messages here are
// concrete wire structs (not just function calls) so the procedure's
// encoding is testable and the transaction-id matching is explicit.
#pragma once

#include <cstdint>

#include "util/bytes.hpp"
#include "util/expected.hpp"

namespace tlc::epc {

enum class RrcMessageType : std::uint8_t {
  CounterCheck = 1,
  CounterCheckResponse = 2,
};

/// Network -> UE: report your PDCP COUNT values.
struct RrcCounterCheck {
  std::uint32_t transaction_id = 0;

  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static Expected<RrcCounterCheck> decode(const Bytes& wire);
  [[nodiscard]] bool operator==(const RrcCounterCheck& o) const = default;
};

/// UE -> network: the modem's cumulative counters. In real RRC these
/// are per-DRB COUNT values; the charging monitor needs the byte
/// aggregates.
struct RrcCounterCheckResponse {
  std::uint32_t transaction_id = 0;
  std::uint64_t uplink_bytes = 0;
  std::uint64_t downlink_bytes = 0;

  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static Expected<RrcCounterCheckResponse> decode(
      const Bytes& wire);
  [[nodiscard]] bool operator==(const RrcCounterCheckResponse& o) const =
      default;
};

}  // namespace tlc::epc
