// Offline Charging System (OFCS).
//
// The function node the paper extends with TLC (§6: "an extended policy
// of LTE offline charging functions"). The SPGW pushes CDRs here; the
// OFCS archives them per subscriber, rates them into bills under the
// data plan (including the "unlimited" plan's quota-then-throttle
// behaviour of §2.1), and exposes the post-processing hook where TLC's
// loss-selfishness cancellation replaces the raw gateway volume with
// the negotiated x.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <set>
#include <tuple>
#include <unordered_map>
#include <utility>
#include <vector>

#include "charging/plan.hpp"
#include "epc/cdr.hpp"
#include "epc/ids.hpp"
#include "recovery/state_log.hpp"

namespace tlc::epc {

/// How one (subscriber, cycle) TLC settlement ended, as seen by the
/// operator's charging backend (§8 outcome taxonomy; mirrors
/// core::SettleOutcome without depending on the core library — the EPC
/// layer deliberately cannot see the protocol stack).
enum class SettlementOutcome : std::uint8_t {
  Converged,
  Retried,
  Degraded,
  RejectedTamper,
};

/// Per-cycle settlement outcome census.
struct SettlementCounters {
  std::uint64_t converged = 0;
  std::uint64_t retried = 0;
  std::uint64_t degraded = 0;
  std::uint64_t rejected_tamper = 0;

  [[nodiscard]] std::uint64_t total() const {
    return converged + retried + degraded + rejected_tamper;
  }
  [[nodiscard]] bool operator==(const SettlementCounters&) const = default;
};

/// One rated charging cycle for a subscriber.
struct BillLine {
  std::uint32_t cycle_index = 0;
  /// Raw gateway volume aggregated from the cycle's CDRs.
  std::uint64_t gateway_volume = 0;
  /// Volume actually billed (equals gateway_volume in legacy mode; the
  /// TLC hook substitutes the negotiated x).
  std::uint64_t billed_volume = 0;
  std::uint64_t amount_micro = 0;  // micro currency units (1e-6)
  bool throttled = false;
};

struct SubscriberBilling {
  std::vector<BillLine> lines;
  std::uint64_t total_billed_bytes = 0;
  std::uint64_t total_amount_micro = 0;
  /// Whether the subscriber is currently speed-limited (quota hit).
  bool throttled = false;
};

class Ofcs {
 public:
  /// TLC post-processing hook: given the cycle's aggregated gateway
  /// volume, returns the billed volume (the negotiated x). Absent hook
  /// = legacy billing.
  using ChargeHook = std::function<std::uint64_t(
      Imsi, std::uint32_t cycle_index, std::uint64_t gateway_volume)>;

  explicit Ofcs(charging::DataPlan plan);

  /// Ingests a CDR from the gateway (any number per cycle).
  void ingest(const ChargingDataRecord& cdr);

  /// Installs the TLC policy (§6). Replaces any previous hook.
  void set_charge_hook(ChargeHook hook) { hook_ = std::move(hook); }

  /// Closes the current cycle for `imsi`: aggregates its pending CDRs,
  /// applies the hook, rates the bill, updates quota/throttle state.
  /// Returns the new bill line (zero-volume cycles still produce one).
  BillLine close_cycle(Imsi imsi);

  /// Idempotent close: closing a cycle that is already rated returns
  /// the stored line (exact bits — nothing is recomputed) instead of
  /// opening a new one. This is what makes post-recovery re-execution
  /// safe: a supervisor that replays a billing pass after a crash
  /// cannot close the same cycle twice (the no-double-bill invariant,
  /// DESIGN.md §11.4). `cycle_index` must not be ahead of the
  /// subscriber's next open cycle.
  BillLine close_cycle(Imsi imsi, std::uint32_t cycle_index);

  /// Closes the current cycle for every known subscriber, in ascending
  /// IMSI order (deterministic regardless of ingest order — fleet runs
  /// merge shard results concurrently). Returns one line per
  /// subscriber.
  std::vector<std::pair<Imsi, BillLine>> close_cycle_all();

  /// Cycle-indexed variant (idempotent, like the two-argument
  /// close_cycle): re-closing cycle `cycle_index` after recovery hands
  /// back the stored lines.
  std::vector<std::pair<Imsi, BillLine>> close_cycle_all(
      std::uint32_t cycle_index);

  /// Subscribers with state, ascending IMSI order.
  [[nodiscard]] std::vector<Imsi> subscribers() const;

  /// Records how cycle `cycle_index` settled for one subscriber (the
  /// fleet engine calls this once per settlement receipt). `ue_id`
  /// identifies the subscriber's device; with recovery attached it
  /// forms the idempotence key (ue, cycle) — re-recording after a
  /// crash is a no-op, so no settled cycle is counted twice.
  void record_settlement(std::uint32_t cycle_index, SettlementOutcome outcome,
                         std::uint64_t ue_id = 0);

  /// Outcome census of one cycle (zero counters past the last recorded
  /// cycle) and the all-cycle aggregate.
  [[nodiscard]] SettlementCounters settlement_counters(
      std::uint32_t cycle_index) const;
  [[nodiscard]] SettlementCounters settlement_totals() const;
  [[nodiscard]] std::size_t settlement_cycles() const {
    return settlement_by_cycle_.size();
  }

  /// Fleet-level rollup across every subscriber's rated cycles.
  struct FleetTotals {
    std::size_t subscribers = 0;
    std::size_t throttled = 0;  // currently speed-limited
    std::uint64_t billed_bytes = 0;
    std::uint64_t amount_micro = 0;
    /// Settlement outcome census across all recorded cycles.
    SettlementCounters settlement;
    /// §13 audit rollup: bytes that escaped charging (free-class +
    /// zero-rated, from CDR uncharged fields) and subscribers with at
    /// least one anomaly flag raised.
    std::uint64_t uncharged_bytes = 0;
    std::size_t flagged_subscribers = 0;
  };
  [[nodiscard]] FleetTotals totals() const;

  /// §13 audit accessors: cumulative uncharged volume and the anomaly
  /// flag union ingested for one subscriber (0 if unknown).
  [[nodiscard]] std::uint64_t uncharged_bytes(Imsi imsi) const;
  [[nodiscard]] std::uint32_t anomaly_flags(Imsi imsi) const;

  [[nodiscard]] const SubscriberBilling* billing(Imsi imsi) const;
  /// CDRs archived for a subscriber (the audit trail; unauthenticated
  /// in legacy 4G/5G, which is what TLC's PoC fixes).
  [[nodiscard]] const std::vector<ChargingDataRecord>* archive(
      Imsi imsi) const;

  [[nodiscard]] const charging::DataPlan& plan() const { return plan_; }
  [[nodiscard]] std::uint64_t cdrs_ingested() const { return ingested_; }

  // ---- Crash recovery (DESIGN.md §11.4) -----------------------------
  //
  // With a StateLog attached the ledger follows write-ahead discipline:
  // every mutation is journaled before it is applied, each op carries
  // an idempotent record ID ((imsi, charging_id, seq) for CDRs,
  // (imsi, cycle) for closes, (ue, cycle) for settlements), and replay
  // of any op suffix over any snapshot converges on the same state —
  // no byte billed twice, no settled cycle lost. Without one, nothing
  // below runs and the legacy behaviour is bit-identical to before.

  /// Attaches `log` and recovers: restores the last checkpoint (if
  /// any) and re-applies the journaled op suffix. Call on a freshly
  /// constructed Ofcs, before any ingest. nullptr detaches.
  [[nodiscard]] Status attach_recovery(recovery::StateLog* log);

  /// Snapshots the full ledger into the StateLog and rotates its
  /// journal, bounding future replay.
  [[nodiscard]] Status checkpoint();

  /// Full-fidelity state snapshot / restore (exact double bits; used
  /// by checkpoints and tested for round-trip identity).
  [[nodiscard]] Bytes serialize_state() const;
  [[nodiscard]] Status restore_state(const Bytes& snapshot);

  /// First journal/apply error since attach, if any. The WAL rule is
  /// "no apply without a durable op", so a failed append drops the
  /// mutation and records the error here instead of half-applying.
  [[nodiscard]] const Status& recovery_error() const {
    return recovery_error_;
  }
  [[nodiscard]] std::uint64_t duplicate_ops_dropped() const {
    return duplicate_ops_dropped_;
  }

 private:
  struct State {
    std::vector<ChargingDataRecord> archive;
    std::uint64_t pending_ul = 0;
    std::uint64_t pending_dl = 0;
    std::uint32_t next_cycle = 0;
    SubscriberBilling billing;
    /// §13 audit aggregates, accumulated over ingested CDRs.
    std::uint64_t uncharged_bytes = 0;
    std::uint32_t anomaly_flags = 0;
  };

  /// Keys: see the recovery comment above.
  using CdrKey = std::tuple<std::uint64_t, std::uint16_t, std::uint32_t>;
  using SettleKey = std::pair<std::uint64_t, std::uint32_t>;

  void apply_ingest(const ChargingDataRecord& cdr);
  /// Applies a fully-rated line to the subscriber (no recomputation —
  /// replay must reproduce the exact stored doubles).
  void apply_close(Imsi imsi, const BillLine& line);
  void apply_settlement(std::uint64_t ue_id, std::uint32_t cycle_index,
                        SettlementOutcome outcome);
  [[nodiscard]] Status apply_journal_op(const Bytes& op);
  /// Journals `op`; on I/O failure records recovery_error_ and returns
  /// false (caller must then skip the apply).
  [[nodiscard]] bool journal_op(const Bytes& op);

  charging::DataPlan plan_;
  ChargeHook hook_;
  std::unordered_map<Imsi, State> subscribers_;
  std::uint64_t ingested_ = 0;
  std::vector<SettlementCounters> settlement_by_cycle_;

  recovery::StateLog* log_ = nullptr;
  Status recovery_error_ = Status::Ok();
  std::uint64_t duplicate_ops_dropped_ = 0;
  /// Idempotence sets (maintained only while a StateLog is attached;
  /// std::set so snapshots serialise deterministically).
  std::set<CdrKey> seen_cdrs_;
  std::set<SettleKey> settled_;
};

}  // namespace tlc::epc
