// Offline Charging System (OFCS).
//
// The function node the paper extends with TLC (§6: "an extended policy
// of LTE offline charging functions"). The SPGW pushes CDRs here; the
// OFCS archives them per subscriber, rates them into bills under the
// data plan (including the "unlimited" plan's quota-then-throttle
// behaviour of §2.1), and exposes the post-processing hook where TLC's
// loss-selfishness cancellation replaces the raw gateway volume with
// the negotiated x.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "charging/plan.hpp"
#include "epc/cdr.hpp"
#include "epc/ids.hpp"

namespace tlc::epc {

/// How one (subscriber, cycle) TLC settlement ended, as seen by the
/// operator's charging backend (§8 outcome taxonomy; mirrors
/// core::SettleOutcome without depending on the core library — the EPC
/// layer deliberately cannot see the protocol stack).
enum class SettlementOutcome : std::uint8_t {
  Converged,
  Retried,
  Degraded,
  RejectedTamper,
};

/// Per-cycle settlement outcome census.
struct SettlementCounters {
  std::uint64_t converged = 0;
  std::uint64_t retried = 0;
  std::uint64_t degraded = 0;
  std::uint64_t rejected_tamper = 0;

  [[nodiscard]] std::uint64_t total() const {
    return converged + retried + degraded + rejected_tamper;
  }
  [[nodiscard]] bool operator==(const SettlementCounters&) const = default;
};

/// One rated charging cycle for a subscriber.
struct BillLine {
  std::uint32_t cycle_index = 0;
  /// Raw gateway volume aggregated from the cycle's CDRs.
  std::uint64_t gateway_volume = 0;
  /// Volume actually billed (equals gateway_volume in legacy mode; the
  /// TLC hook substitutes the negotiated x).
  std::uint64_t billed_volume = 0;
  double amount = 0.0;  // currency units
  bool throttled = false;
};

struct SubscriberBilling {
  std::vector<BillLine> lines;
  std::uint64_t total_billed_bytes = 0;
  double total_amount = 0.0;
  /// Whether the subscriber is currently speed-limited (quota hit).
  bool throttled = false;
};

class Ofcs {
 public:
  /// TLC post-processing hook: given the cycle's aggregated gateway
  /// volume, returns the billed volume (the negotiated x). Absent hook
  /// = legacy billing.
  using ChargeHook = std::function<std::uint64_t(
      Imsi, std::uint32_t cycle_index, std::uint64_t gateway_volume)>;

  explicit Ofcs(charging::DataPlan plan);

  /// Ingests a CDR from the gateway (any number per cycle).
  void ingest(const ChargingDataRecord& cdr);

  /// Installs the TLC policy (§6). Replaces any previous hook.
  void set_charge_hook(ChargeHook hook) { hook_ = std::move(hook); }

  /// Closes the current cycle for `imsi`: aggregates its pending CDRs,
  /// applies the hook, rates the bill, updates quota/throttle state.
  /// Returns the new bill line (zero-volume cycles still produce one).
  BillLine close_cycle(Imsi imsi);

  /// Closes the current cycle for every known subscriber, in ascending
  /// IMSI order (deterministic regardless of ingest order — fleet runs
  /// merge shard results concurrently). Returns one line per
  /// subscriber.
  std::vector<std::pair<Imsi, BillLine>> close_cycle_all();

  /// Subscribers with state, ascending IMSI order.
  [[nodiscard]] std::vector<Imsi> subscribers() const;

  /// Records how cycle `cycle_index` settled for one subscriber (the
  /// fleet engine calls this once per settlement receipt).
  void record_settlement(std::uint32_t cycle_index,
                         SettlementOutcome outcome);

  /// Outcome census of one cycle (zero counters past the last recorded
  /// cycle) and the all-cycle aggregate.
  [[nodiscard]] SettlementCounters settlement_counters(
      std::uint32_t cycle_index) const;
  [[nodiscard]] SettlementCounters settlement_totals() const;
  [[nodiscard]] std::size_t settlement_cycles() const {
    return settlement_by_cycle_.size();
  }

  /// Fleet-level rollup across every subscriber's rated cycles.
  struct FleetTotals {
    std::size_t subscribers = 0;
    std::size_t throttled = 0;  // currently speed-limited
    std::uint64_t billed_bytes = 0;
    double amount = 0.0;
    /// Settlement outcome census across all recorded cycles.
    SettlementCounters settlement;
  };
  [[nodiscard]] FleetTotals totals() const;

  [[nodiscard]] const SubscriberBilling* billing(Imsi imsi) const;
  /// CDRs archived for a subscriber (the audit trail; unauthenticated
  /// in legacy 4G/5G, which is what TLC's PoC fixes).
  [[nodiscard]] const std::vector<ChargingDataRecord>* archive(
      Imsi imsi) const;

  [[nodiscard]] const charging::DataPlan& plan() const { return plan_; }
  [[nodiscard]] std::uint64_t cdrs_ingested() const { return ingested_; }

 private:
  struct State {
    std::vector<ChargingDataRecord> archive;
    std::uint64_t pending_ul = 0;
    std::uint64_t pending_dl = 0;
    std::uint32_t next_cycle = 0;
    SubscriberBilling billing;
  };

  charging::DataPlan plan_;
  ChargeHook hook_;
  std::unordered_map<Imsi, State> subscribers_;
  std::uint64_t ingested_ = 0;
  std::vector<SettlementCounters> settlement_by_cycle_;
};

}  // namespace tlc::epc
