// One fleet shard: a self-contained multi-UE testbed world.
//
// The single-UE `testbed::Testbed` lifted to a population: one
// discrete-event simulator hosting one small cell + EPC function set
// (eNodeB, MME, HSS, PCRF, SPGW, edge server) serving N app UEs — each
// with its own radio channel, workload source drawn from the shard's
// RNG stream, RRC counter monitors and per-party cycle samplers — plus
// an optional background UE congesting the cell. UEs genuinely contend
// for the shared cell capacity, so fleet-level loss statistics include
// the cross-subscriber congestion the paper's Fig 3 sweep isolates.
//
// A shard is strictly single-threaded and deterministic: its entire
// randomness tree roots at stream_seed(fleet_seed, shard_index), and
// all scheduling happens in construction order. Parallelism exists only
// *across* shards — never inside one.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "charging/monitors.hpp"
#include "charging/sampler.hpp"
#include "epc/enodeb.hpp"
#include "epc/hss.hpp"
#include "epc/mme.hpp"
#include "epc/pcrf.hpp"
#include "epc/spgw.hpp"
#include "epc/ue.hpp"
#include "fleet/fleet_config.hpp"
#include "sim/radio.hpp"
#include "sim/simulator.hpp"
#include "testbed/edge_server.hpp"
#include "testbed/experiment.hpp"
#include "testbed/testbed.hpp"
#include "workloads/source.hpp"

namespace tlc::fleet {

/// One member's spec and everything measured for it.
struct UeRecord {
  std::uint64_t ue_index = 0;  // global fleet index
  epc::Imsi imsi{0};
  testbed::FleetMember member;
  std::vector<testbed::CycleMeasurements> cycles;
  /// Per-scheme evaluation of the member's cycles (gap CDF inputs),
  /// computed inside the shard so it parallelizes with the runs.
  std::map<testbed::Scheme, std::vector<testbed::CycleOutcome>> outcomes;

  /// §13 byzantine overlay: which bypass this member ran (kNone for
  /// honest members), the gateway's detector state for it, and the
  /// uncharged volume the gateway forwarded per cycle (sampled at the
  /// operator's boundary, like gateway_volume). These live *outside*
  /// CycleMeasurements so the measurement digest — pinned by the
  /// zero-adversary identity test — keeps its exact composition.
  workloads::AdversaryKind adversary = workloads::AdversaryKind::kNone;
  epc::AnomalyCounters anomaly;
  std::vector<std::uint64_t> uncharged_per_cycle;
};

class FleetShard {
 public:
  /// Builds the shard world for global UE indices
  /// [first_ue, first_ue + ue_count). The population's profiles are
  /// drawn from the shard's seed stream during construction.
  FleetShard(const FleetConfig& config, int shard_index,
             std::uint64_t first_ue, std::size_t ue_count);
  ~FleetShard();

  /// Runs all cycles; idempotent. Records are ordered by ue_index.
  const std::vector<UeRecord>& run();

  [[nodiscard]] int shard_index() const { return shard_index_; }
  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] epc::EnodeB& enodeb() { return *enodeb_; }
  [[nodiscard]] std::size_t population() const { return ues_.size(); }

  /// IMSI for a global fleet index (stable across shard/thread counts).
  [[nodiscard]] static epc::Imsi fleet_imsi(std::uint64_t ue_index);

 private:
  struct UeCtx;

  [[nodiscard]] std::uint64_t shard_seed() const;
  void build_ue(std::uint64_t ue_index, std::uint64_t member_stream);
  void build_background();
  void build_ue_samplers(UeCtx& ue);
  void schedule_ue_boundaries(UeCtx& ue);

  FleetConfig config_;
  int shard_index_;
  sim::Simulator sim_;

  epc::Hss hss_;
  epc::Pcrf pcrf_;
  std::unique_ptr<epc::EnodeB> enodeb_;
  std::unique_ptr<epc::Mme> mme_;
  std::unique_ptr<epc::Spgw> spgw_;
  std::unique_ptr<testbed::EdgeServer> server_;

  std::vector<std::unique_ptr<UeCtx>> ues_;
  std::map<epc::Imsi, UeCtx*> by_imsi_;

  // Background phone (one per shard cell, like the paper's testbed).
  std::unique_ptr<sim::RadioChannel> bg_radio_;
  std::unique_ptr<epc::UeDevice> bg_ue_;
  std::unique_ptr<workloads::TrafficSource> bg_source_;

  bool ran_ = false;
  std::vector<UeRecord> records_;
};

}  // namespace tlc::fleet
