#include "fleet/thread_pool.hpp"

#include <algorithm>
#include <utility>

namespace tlc::fleet {

ThreadPool::ThreadPool(unsigned threads) {
  const unsigned count = std::max(threads, 1u);
  workers_.reserve(count);
  for (unsigned i = 0; i < count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    util::MutexLock lock(mutex_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(Job job) {
  {
    util::MutexLock lock(mutex_);
    queue_.push_back(std::move(job));
  }
  work_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  util::MutexLock lock(mutex_);
  while (!queue_.empty() || in_flight_ != 0) all_done_.wait(mutex_);
}

void ThreadPool::worker_loop() {
  for (;;) {
    Job job;
    {
      util::MutexLock lock(mutex_);
      while (!stopping_ && queue_.empty()) work_ready_.wait(mutex_);
      if (queue_.empty()) return;  // stopping_ with a drained queue
      job = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    job();
    {
      util::MutexLock lock(mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace tlc::fleet
