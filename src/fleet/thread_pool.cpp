#include "fleet/thread_pool.hpp"

#include <algorithm>
#include <utility>

namespace tlc::fleet {

ThreadPool::ThreadPool(unsigned threads) {
  const unsigned count = std::max(threads, 1u);
  workers_.reserve(count);
  for (unsigned i = 0; i < count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(Job job) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(job));
  }
  work_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ with a drained queue
      job = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    job();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace tlc::fleet
