// Fixed-size thread pool for shard execution.
//
// Deliberately minimal: submit closures, wait for all of them. Workers
// are started once and reused, so a fleet run costs S jobs on W
// long-lived threads rather than S thread spawns. Determinism is the
// caller's job — fleet jobs write disjoint result slots, so scheduling
// order cannot leak into output.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tlc::fleet {

class ThreadPool {
 public:
  using Job = std::function<void()>;

  /// `threads` == 0 is clamped to 1. The pool never grows or shrinks.
  explicit ThreadPool(unsigned threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned size() const {
    return static_cast<unsigned>(workers_.size());
  }

  /// Enqueues a job; runs as soon as a worker frees up.
  void submit(Job job);

  /// Blocks until every submitted job has finished executing (not just
  /// been dequeued).
  void wait_idle();

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable all_done_;
  std::deque<Job> queue_;
  std::size_t in_flight_ = 0;  // dequeued but not yet finished
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace tlc::fleet
