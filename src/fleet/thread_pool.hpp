// Fixed-size thread pool for shard execution.
//
// Deliberately minimal: submit closures, wait for all of them. Workers
// are started once and reused, so a fleet run costs S jobs on W
// long-lived threads rather than S thread spawns. Determinism is the
// caller's job — fleet jobs write disjoint result slots, so scheduling
// order cannot leak into output.
//
// All shared state is TLC_GUARDED_BY(mutex_); with Clang,
// -Wthread-safety rejects any unguarded access at compile time
// (complementing the runtime tsan preset).
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "util/thread_annotations.hpp"

namespace tlc::fleet {

class ThreadPool {
 public:
  using Job = std::function<void()>;

  /// `threads` == 0 is clamped to 1. The pool never grows or shrinks.
  explicit ThreadPool(unsigned threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned size() const {
    return static_cast<unsigned>(workers_.size());
  }

  /// Enqueues a job; runs as soon as a worker frees up.
  void submit(Job job) TLC_EXCLUDES(mutex_);

  /// Blocks until every submitted job has finished executing (not just
  /// been dequeued).
  void wait_idle() TLC_EXCLUDES(mutex_);

 private:
  void worker_loop() TLC_EXCLUDES(mutex_);

  util::Mutex mutex_;
  util::CondVar work_ready_;
  util::CondVar all_done_;
  std::deque<Job> queue_ TLC_GUARDED_BY(mutex_);
  std::size_t in_flight_ TLC_GUARDED_BY(mutex_) = 0;  // dequeued, unfinished
  bool stopping_ TLC_GUARDED_BY(mutex_) = false;
  std::vector<std::thread> workers_;
};

}  // namespace tlc::fleet
