#include "fleet/engine.hpp"

#include <algorithm>
#include <bit>
#include <map>
#include <memory>
#include <unordered_map>
#include <utility>

#include "charging/ingest.hpp"
#include "crypto/rsa.hpp"
#include "crypto/sha256.hpp"
#include "fleet/engine_detail.hpp"
#include "fleet/thread_pool.hpp"
#include "sim/rng_stream.hpp"
#include "transport/coded_session.hpp"
#include "transport/lossy_settlement.hpp"

namespace tlc::fleet {
namespace {

epc::SettlementOutcome to_epc_outcome(core::SettleOutcome outcome) {
  switch (outcome) {
    case core::SettleOutcome::Converged:
      return epc::SettlementOutcome::Converged;
    case core::SettleOutcome::Retried:
      return epc::SettlementOutcome::Retried;
    case core::SettleOutcome::Degraded:
      return epc::SettlementOutcome::Degraded;
    case core::SettleOutcome::RejectedTamper:
      return epc::SettlementOutcome::RejectedTamper;
  }
  return epc::SettlementOutcome::Degraded;
}

// Fleet-level seed streams (disjoint from per-shard streams, which are
// derived as stream_seed(seed, shard_index) and so live in the small
// integers).
constexpr std::uint64_t kKeyCacheStream = 0x6b657963ULL;    // "keyc"
constexpr std::uint64_t kSettleSaltStream = 0x73616c74ULL;  // "salt"
constexpr std::uint64_t kIngestKeyStream = 0x696e6773ULL;   // "ings"

constexpr std::uint32_t kGatewayAddress = 0x0a000001;  // 10.0.0.1

void append_u64(Bytes& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void append_double(Bytes& out, double v) {
  append_u64(out, std::bit_cast<std::uint64_t>(v));
}

Bytes digest_measurements(const std::vector<UeRecord>& records) {
  Bytes buf;
  for (const UeRecord& record : records) {
    append_u64(buf, record.ue_index);
    append_u64(buf, record.imsi.value);
    for (const testbed::CycleMeasurements& cycle : record.cycles) {
      append_u64(buf, cycle.true_sent);
      append_u64(buf, cycle.true_received);
      append_u64(buf, cycle.edge_sent);
      append_u64(buf, cycle.edge_received);
      append_u64(buf, cycle.op_sent);
      append_u64(buf, cycle.op_received);
      append_u64(buf, cycle.gateway_volume);
    }
  }
  return crypto::sha256(buf);
}

// §13: the byzantine overlay's entire observable footprint — who ran
// which bypass, what the gateway's detectors accumulated, and the
// uncharged volume forwarded per cycle. Kept separate from the
// measurement digest so zero-adversary fleets hash identically to
// pre-§13 builds.
Bytes digest_anomalies(const std::vector<UeRecord>& records) {
  Bytes buf;
  for (const UeRecord& record : records) {
    append_u64(buf, record.ue_index);
    append_u64(buf, static_cast<std::uint64_t>(record.adversary));
    const epc::AnomalyCounters& a = record.anomaly;
    for (std::uint64_t v : a.protocol_bytes) append_u64(buf, v);
    for (std::uint64_t v : a.qci_bytes) append_u64(buf, v);
    append_u64(buf, a.free_bytes);
    append_u64(buf, a.free_packets);
    append_u64(buf, a.free_small_packets);
    append_u64(buf, a.entropy_millis_sum);
    append_u64(buf, a.zero_rated_bytes);
    append_u64(buf, a.replayed_bytes);
    append_u64(buf, a.replayed_packets);
    append_u64(buf, a.flags);
    append_u64(buf, record.uncharged_per_cycle.size());
    for (std::uint64_t v : record.uncharged_per_cycle) append_u64(buf, v);
  }
  return crypto::sha256(buf);
}

Bytes digest_cdfs(const std::map<testbed::Scheme, Samples>& gap_samples) {
  Bytes buf;
  for (const auto& [scheme, samples] : gap_samples) {
    append_u64(buf, static_cast<std::uint64_t>(scheme));
    append_u64(buf, samples.count());
    for (const auto& [value, fraction] : samples.cdf()) {
      append_double(buf, value);
      append_double(buf, fraction);
    }
  }
  return crypto::sha256(buf);
}

Bytes digest_receipts(const std::vector<core::SettlementReceipt>& receipts) {
  Bytes buf;
  for (const core::SettlementReceipt& receipt : receipts) {
    append_u64(buf, receipt.ue_id);
    append_u64(buf, receipt.cycle);
    append_u64(buf, receipt.completed ? 1 : 0);
    append_u64(buf, receipt.charged);
    append_u64(buf, static_cast<std::uint64_t>(receipt.rounds));
    append_u64(buf, receipt.poc_wire.size());
    append(buf, receipt.poc_wire);
  }
  return crypto::sha256(buf);
}

Bytes digest_ingest(const std::vector<charging::BatchPoc>& batches) {
  Bytes buf;
  for (const charging::BatchPoc& poc : batches) {
    const Bytes wire = charging::encode_batch_poc(poc);
    append_u64(buf, wire.size());
    append(buf, wire);
  }
  return crypto::sha256(buf);
}

}  // namespace

namespace detail {

std::vector<ShardSlice> partition_shards(const FleetConfig& config) {
  std::vector<ShardSlice> slices;
  const std::size_t per_shard = config.ues_per_shard();
  const auto total_ues =
      static_cast<std::uint64_t>(std::max(0, config.ue_count));
  if (per_shard == 0 || total_ues == 0) return slices;
  for (int s = 0; s < config.shards; ++s) {
    const std::uint64_t first = static_cast<std::uint64_t>(s) * per_shard;
    if (first >= total_ues) break;
    const std::size_t count = static_cast<std::size_t>(
        std::min<std::uint64_t>(per_shard, total_ues - first));
    slices.push_back(ShardSlice{s, first, count});
  }
  return slices;
}

std::vector<UeRecord> run_shard_slice(const FleetConfig& config,
                                      const ShardSlice& slice) {
  FleetShard shard(config, slice.shard_index, slice.first_ue, slice.ue_count);
  return shard.run();
}

void collect_gap_samples(const std::vector<UeRecord>& records,
                         std::map<testbed::Scheme, Samples>& gap_samples) {
  for (const UeRecord& record : records) {
    for (const auto& [scheme, outcomes] : record.outcomes) {
      Samples& samples = gap_samples[scheme];
      for (const testbed::CycleOutcome& outcome : outcomes) {
        samples.add(outcome.gap_mb_per_hr);
      }
    }
  }
}

core::BatchConfig make_batch_config(const FleetConfig& config) {
  core::BatchConfig batch;
  batch.c = config.base.plan_c;
  batch.cycle_length = config.base.cycle_length;
  batch.first_cycle_start = 0;
  batch.rng_salt = sim::stream_seed(config.seed, kSettleSaltStream);
  return batch;
}

std::uint64_t key_cache_seed(const FleetConfig& config) {
  return sim::stream_seed(config.seed, kKeyCacheStream);
}

std::vector<core::SettlementItem> settlement_items(
    const std::vector<UeRecord>& records, const FleetConfig& config) {
  std::vector<core::SettlementItem> items;
  items.reserve(records.size() * static_cast<std::size_t>(config.base.cycles));
  for (const UeRecord& record : records) {
    for (const testbed::CycleMeasurements& cycle : record.cycles) {
      core::SettlementItem item;
      item.ue_id = record.ue_index;
      item.edge_view = {cycle.edge_sent, cycle.edge_received};
      item.op_view = {cycle.op_sent, cycle.op_received};
      items.push_back(item);
    }
  }
  return items;
}

charging::DataPlan fleet_plan(const FleetConfig& config) {
  charging::DataPlan plan;
  plan.lost_data_weight_c = config.base.plan_c;
  plan.cycle_length = config.base.cycle_length;
  return plan;
}

void aggregate_fleet(const FleetConfig& config, epc::Ofcs& ofcs,
                     FleetResult& result,
                     const std::function<void(int cycle)>& after_cycle) {
  // Flat (ue_index * cycles + cycle) receipt index: O(1) hook lookups
  // instead of a tree walk per rated CDR, which matters at 10k UEs.
  const auto cycles = static_cast<std::size_t>(std::max(config.base.cycles, 0));
  std::vector<const core::SettlementReceipt*> by_ue_cycle(
      result.records.size() * cycles, nullptr);
  for (const core::SettlementReceipt& receipt : result.receipts) {
    if (receipt.ue_id < result.records.size() && receipt.cycle < cycles) {
      by_ue_cycle[receipt.ue_id * cycles + receipt.cycle] = &receipt;
    }
  }

  // Feed the settlement outcome census (§8) into the charging backend:
  // receipts are in (ue_index, cycle) input order, so the counters are
  // thread-independent by construction.
  for (const core::SettlementReceipt& receipt : result.receipts) {
    ofcs.record_settlement(receipt.cycle, to_epc_outcome(receipt.outcome),
                           receipt.ue_id);
  }

  std::unordered_map<std::uint64_t, std::uint64_t> ue_by_imsi;
  ue_by_imsi.reserve(result.records.size());
  for (const UeRecord& record : result.records) {
    ue_by_imsi[record.imsi.value] = record.ue_index;
  }
  ofcs.set_charge_hook([&by_ue_cycle, &ue_by_imsi, cycles](
                           epc::Imsi imsi, std::uint32_t cycle_index,
                           std::uint64_t gateway_volume) {
    const auto ue = ue_by_imsi.find(imsi.value);
    if (ue == ue_by_imsi.end() || cycle_index >= cycles) return gateway_volume;
    const core::SettlementReceipt* receipt =
        by_ue_cycle[ue->second * cycles + cycle_index];
    if (receipt == nullptr || !receipt->completed) {
      return gateway_volume;  // legacy fallback
    }
    return receipt->charged;
  });

  // Streaming front (§16): one ingest key per fleet, derived from its
  // own seed stream so enabling streaming perturbs no other draw. The
  // pipeline forwards every CDR to the OFCS before batching, so the
  // ledger below is byte-identical with streaming on or off; the
  // batches themselves are a pure function of the serial CDR stream.
  std::unique_ptr<charging::StreamingIngest> streaming;
  crypto::RsaKeyPair ingest_key;
  if (config.streaming_ingest) {
    Rng rng(sim::stream_seed(config.seed, kIngestKeyStream));
    ingest_key = crypto::rsa_generate(config.rsa_bits, rng);
    result.ingest_key = ingest_key.public_key;
    charging::IngestConfig ingest_config;
    ingest_config.batch_size = config.ingest_batch_size;
    ingest_config.retain_batches = false;  // the BatchPoc is the artifact
    streaming = std::make_unique<charging::StreamingIngest>(
        ingest_config, &ingest_key.private_key, &ofcs);
  }

  // Synthetic gateway CDRs per (UE, cycle), rated with the TLC hook
  // substituting each cycle's negotiated x. All closes are
  // cycle-indexed so a recovered ledger re-executes this loop as pure
  // no-ops up to the crash point.
  result.bills.clear();
  result.bills.reserve(static_cast<std::size_t>(config.base.cycles));
  for (int cycle = 0; cycle < config.base.cycles; ++cycle) {
    for (const UeRecord& record : result.records) {
      const testbed::CycleMeasurements& m =
          record.cycles[static_cast<std::size_t>(cycle)];
      const bool uplink = testbed::app_direction(record.member.app) ==
                          sim::Direction::Uplink;
      epc::ChargingDataRecord cdr;
      cdr.served_imsi = record.imsi;
      cdr.gateway_address = kGatewayAddress;
      cdr.charging_id = static_cast<std::uint16_t>(record.ue_index);
      cdr.sequence_number = static_cast<std::uint32_t>(cycle);
      cdr.time_of_first_usage =
          static_cast<SimTime>(cycle) * config.base.cycle_length;
      cdr.time_of_last_usage =
          static_cast<SimTime>(cycle + 1) * config.base.cycle_length;
      cdr.datavolume_uplink = uplink ? m.gateway_volume : 0;
      cdr.datavolume_downlink = uplink ? 0 : m.gateway_volume;
      // §13 audit fields: uncharged leak for this cycle (bypass
      // overlays are uplink by construction) plus the member's
      // cumulative anomaly flags. Zero for honest fleets, so legacy
      // ingest behaviour is unchanged.
      const auto c = static_cast<std::size_t>(cycle);
      cdr.uncharged_uplink = c < record.uncharged_per_cycle.size()
                                 ? record.uncharged_per_cycle[c]
                                 : 0;
      cdr.anomaly_flags = record.anomaly.flags;
      if (streaming != nullptr) {
        streaming->submit(cdr);
      } else {
        ofcs.ingest(cdr);
      }
    }
    // Seal the partial batch at the cycle edge so every batch PoC's
    // time range stays within one cycle (and batch boundaries never
    // depend on how many cycles follow).
    if (streaming != nullptr) streaming->flush();
    result.bills.push_back(
        ofcs.close_cycle_all(static_cast<std::uint32_t>(cycle)));
    if (after_cycle) after_cycle(cycle);
  }
  result.ingest_batches =
      streaming != nullptr ? streaming->batches() : std::vector<charging::BatchPoc>{};
  result.totals = ofcs.totals();
  result.settlement_totals = ofcs.settlement_totals();
  result.settlement_by_cycle.clear();
  result.settlement_by_cycle.reserve(ofcs.settlement_cycles());
  for (std::size_t cycle = 0; cycle < ofcs.settlement_cycles(); ++cycle) {
    result.settlement_by_cycle.push_back(
        ofcs.settlement_counters(static_cast<std::uint32_t>(cycle)));
  }
}

void compute_digests(FleetResult& result) {
  result.measurement_digest = digest_measurements(result.records);
  result.cdf_digest = digest_cdfs(result.gap_samples);
  result.poc_digest = digest_receipts(result.receipts);
  result.anomaly_digest = digest_anomalies(result.records);
  result.ingest_digest = digest_ingest(result.ingest_batches);
}

}  // namespace detail

FleetResult run_fleet(const FleetConfig& config) {
  FleetResult result;
  const std::vector<detail::ShardSlice> slices =
      detail::partition_shards(config);
  if (slices.empty()) return result;

  // Key material is shared read-only across workers; build it before
  // the pool starts so no worker ever takes a lock for a key.
  std::unique_ptr<const core::RsaKeyCache> keys;
  if (config.settle) {
    keys = std::make_unique<core::RsaKeyCache>(
        config.rsa_bits, config.key_cache_slots, detail::key_cache_seed(config));
  }
  const core::BatchConfig batch = detail::make_batch_config(config);

  // Run shards on the pool. Each job owns one pre-allocated slot and
  // carries its slice end-to-end — simulation, gap-sample collection
  // and TLC settlement of its own UEs — so workers never touch shared
  // state. Receipts are pure per-UE functions of (items, keys, salt),
  // which is what makes per-shard settlement concatenated in shard
  // order byte-identical to a whole-fleet settle (and to the
  // supervisor's journaled chunked settle).
  std::vector<detail::ShardOutcome> slots(slices.size());
  {
    ThreadPool pool(config.threads);
    for (std::size_t i = 0; i < slices.size(); ++i) {
      const detail::ShardSlice slice = slices[i];
      detail::ShardOutcome* slot = &slots[i];
      const core::RsaKeyCache* key_cache = keys.get();
      pool.submit([&config, &batch, slice, slot, key_cache] {
        slot->records = detail::run_shard_slice(config, slice);
        detail::collect_gap_samples(slot->records, slot->gap_samples);
        if (key_cache != nullptr) {
          const std::vector<core::SettlementItem> items =
              detail::settlement_items(slot->records, config);
          if (config.lossy_transport &&
              config.transport.coding == transport::Coding::Rlnc) {
            transport::CodedSettler settler(batch, config.transport,
                                            *key_cache);
            transport::LossyBatchReport report = settler.settle(items, 1);
            slot->receipts = std::move(report.receipts);
            slot->coded = report.coded;
          } else if (config.lossy_transport) {
            transport::LossySettler settler(batch, config.transport,
                                            *key_cache);
            slot->receipts = settler.settle(items, 1).receipts;
          } else {
            core::BatchSettler settler(batch, *key_cache);
            slot->receipts = settler.settle(items, 1);
          }
        }
      });
    }
    pool.wait_idle();
  }

  // Merge in shard order == ue_index order (slices are contiguous), so
  // records, receipts and gap samples come out exactly as a serial run
  // over the whole fleet would have produced them.
  result.records.reserve(
      static_cast<std::size_t>(std::max(0, config.ue_count)));
  for (detail::ShardOutcome& slot : slots) {
    for (UeRecord& record : slot.records) {
      result.records.push_back(std::move(record));
    }
    for (core::SettlementReceipt& receipt : slot.receipts) {
      result.receipts.push_back(std::move(receipt));
    }
    for (const auto& [scheme, samples] : slot.gap_samples) {
      result.gap_samples[scheme].add_all(samples.values());
    }
    result.coded_totals += slot.coded;
  }

  epc::Ofcs ofcs(detail::fleet_plan(config));
  detail::aggregate_fleet(config, ofcs, result, nullptr);
  detail::compute_digests(result);
  return result;
}

}  // namespace tlc::fleet
