#include "fleet/supervisor.hpp"

#include <algorithm>
#include <filesystem>
#include <optional>
#include <utility>
#include <vector>

#include "core/batch_settlement.hpp"
#include "fleet/engine_detail.hpp"
#include "fleet/thread_pool.hpp"
#include "recovery/checkpoint.hpp"
#include "recovery/state_log.hpp"
#include "transport/coded_session.hpp"
#include "transport/lossy_settlement.hpp"
#include "transport/settlement_journal.hpp"
#include "util/fileio.hpp"
#include "util/logging.hpp"
#include "util/serde.hpp"

namespace tlc::fleet {
namespace {

// ---------------------------------------------------------------------
// Shard checkpoint codec: the full UeRecord vector, every field exact
// (doubles as bits) so a reused checkpoint is indistinguishable from a
// re-run.
// ---------------------------------------------------------------------

// v2 appends the §13 byzantine fields (adversary kind, gateway anomaly
// counters, uncharged-per-cycle samples). Old-version checkpoints are
// rejected, which just forces a clean re-run of that shard.
constexpr std::uint8_t kShardRecordVersion = 2;

void write_record(ByteWriter& w, const UeRecord& record) {
  w.u64(record.ue_index);
  w.u64(record.imsi.value);
  w.u8(static_cast<std::uint8_t>(record.member.app));
  w.f64(record.member.mean_rss_dbm);
  w.f64(record.member.disconnect_ratio);
  w.f64(record.member.mobility_speed_mps);
  w.u64(record.member.seed);
  w.u32(static_cast<std::uint32_t>(record.cycles.size()));
  for (const testbed::CycleMeasurements& m : record.cycles) {
    w.u64(m.true_sent);
    w.u64(m.true_received);
    w.u64(m.edge_sent);
    w.u64(m.edge_received);
    w.u64(m.op_sent);
    w.u64(m.op_received);
    w.u64(m.gateway_volume);
  }
  w.u32(static_cast<std::uint32_t>(record.outcomes.size()));
  for (const auto& [scheme, outcomes] : record.outcomes) {
    w.u8(static_cast<std::uint8_t>(scheme));
    w.u32(static_cast<std::uint32_t>(outcomes.size()));
    for (const testbed::CycleOutcome& o : outcomes) {
      w.u64(o.expected);
      w.u64(o.charged);
      w.f64(o.gap_mb);
      w.f64(o.gap_mb_per_hr);
      w.f64(o.gap_ratio);
      w.i64(o.rounds);
      w.u8(o.completed ? 1 : 0);
    }
  }
  w.u8(static_cast<std::uint8_t>(record.adversary));
  const epc::AnomalyCounters& a = record.anomaly;
  for (std::uint64_t v : a.protocol_bytes) w.u64(v);
  for (std::uint64_t v : a.qci_bytes) w.u64(v);
  w.u64(a.free_bytes);
  w.u64(a.free_packets);
  w.u64(a.free_small_packets);
  w.u64(a.entropy_millis_sum);
  w.u64(a.zero_rated_bytes);
  w.u64(a.replayed_bytes);
  w.u64(a.replayed_packets);
  w.u32(a.flags);
  w.u32(static_cast<std::uint32_t>(record.uncharged_per_cycle.size()));
  for (std::uint64_t v : record.uncharged_per_cycle) w.u64(v);
}

Expected<UeRecord> read_record(ByteReader& r) {
  UeRecord record;
  auto ue_index = r.u64();
  if (!ue_index) return Err(ue_index.error());
  record.ue_index = *ue_index;
  auto imsi = r.u64();
  if (!imsi) return Err(imsi.error());
  record.imsi = epc::Imsi{*imsi};
  auto app = r.u8();
  if (!app) return Err(app.error());
  record.member.app = static_cast<testbed::AppKind>(*app);
  auto rss = r.f64();
  if (!rss) return Err(rss.error());
  record.member.mean_rss_dbm = *rss;
  auto disconnect = r.f64();
  if (!disconnect) return Err(disconnect.error());
  record.member.disconnect_ratio = *disconnect;
  auto mobility = r.f64();
  if (!mobility) return Err(mobility.error());
  record.member.mobility_speed_mps = *mobility;
  auto seed = r.u64();
  if (!seed) return Err(seed.error());
  record.member.seed = *seed;

  auto ncycles = r.u32();
  if (!ncycles) return Err(ncycles.error());
  record.cycles.resize(*ncycles);
  for (testbed::CycleMeasurements& m : record.cycles) {
    for (std::uint64_t* field :
         {&m.true_sent, &m.true_received, &m.edge_sent, &m.edge_received,
          &m.op_sent, &m.op_received, &m.gateway_volume}) {
      auto v = r.u64();
      if (!v) return Err(v.error());
      *field = *v;
    }
  }

  auto nschemes = r.u32();
  if (!nschemes) return Err(nschemes.error());
  for (std::uint32_t s = 0; s < *nschemes; ++s) {
    auto scheme = r.u8();
    if (!scheme) return Err(scheme.error());
    auto count = r.u32();
    if (!count) return Err(count.error());
    std::vector<testbed::CycleOutcome> outcomes(*count);
    for (testbed::CycleOutcome& o : outcomes) {
      auto expected = r.u64();
      if (!expected) return Err(expected.error());
      o.expected = *expected;
      auto charged = r.u64();
      if (!charged) return Err(charged.error());
      o.charged = *charged;
      auto gap_mb = r.f64();
      if (!gap_mb) return Err(gap_mb.error());
      o.gap_mb = *gap_mb;
      auto gap_hr = r.f64();
      if (!gap_hr) return Err(gap_hr.error());
      o.gap_mb_per_hr = *gap_hr;
      auto gap_ratio = r.f64();
      if (!gap_ratio) return Err(gap_ratio.error());
      o.gap_ratio = *gap_ratio;
      auto rounds = r.i64();
      if (!rounds) return Err(rounds.error());
      o.rounds = static_cast<int>(*rounds);
      auto completed = r.u8();
      if (!completed) return Err(completed.error());
      o.completed = *completed != 0;
    }
    record.outcomes.emplace(static_cast<testbed::Scheme>(*scheme),
                            std::move(outcomes));
  }

  auto adversary = r.u8();
  if (!adversary) return Err(adversary.error());
  record.adversary = static_cast<workloads::AdversaryKind>(*adversary);
  epc::AnomalyCounters& a = record.anomaly;
  std::vector<std::uint64_t*> counter_fields;
  for (std::uint64_t& v : a.protocol_bytes) counter_fields.push_back(&v);
  for (std::uint64_t& v : a.qci_bytes) counter_fields.push_back(&v);
  for (std::uint64_t* field :
       {&a.free_bytes, &a.free_packets, &a.free_small_packets,
        &a.entropy_millis_sum, &a.zero_rated_bytes, &a.replayed_bytes,
        &a.replayed_packets}) {
    counter_fields.push_back(field);
  }
  for (std::uint64_t* field : counter_fields) {
    auto v = r.u64();
    if (!v) return Err(v.error());
    *field = *v;
  }
  auto flags = r.u32();
  if (!flags) return Err(flags.error());
  a.flags = *flags;
  auto nuncharged = r.u32();
  if (!nuncharged) return Err(nuncharged.error());
  record.uncharged_per_cycle.resize(*nuncharged);
  for (std::uint64_t& v : record.uncharged_per_cycle) {
    auto value = r.u64();
    if (!value) return Err(value.error());
    v = *value;
  }
  return record;
}

// tlclint: codec(fleet_shard_checkpoint, encode, version=kShardRecordVersion)
Bytes encode_shard_records(const std::vector<UeRecord>& records) {
  ByteWriter w;
  w.u8(kShardRecordVersion);
  w.u32(static_cast<std::uint32_t>(records.size()));
  for (const UeRecord& record : records) write_record(w, record);
  return w.take();
}

// tlclint: codec(fleet_shard_checkpoint, decode, version=kShardRecordVersion)
Expected<std::vector<UeRecord>> decode_shard_records(const Bytes& data) {
  ByteReader r(data);
  auto version = r.u8();
  if (!version) return Err(version.error());
  if (*version != kShardRecordVersion) {
    return Err("shard checkpoint: unknown version");
  }
  auto count = r.u32();
  if (!count) return Err(count.error());
  std::vector<UeRecord> records;
  records.reserve(*count);
  for (std::uint32_t i = 0; i < *count; ++i) {
    auto record = read_record(r);
    if (!record) return Err(record.error());
    records.push_back(std::move(*record));
  }
  if (!r.exhausted()) return Err("shard checkpoint: trailing bytes");
  return records;
}

// ---------------------------------------------------------------------
// State-file layout under config.state_dir.
// ---------------------------------------------------------------------

std::string shard_checkpoint_path(const SupervisorConfig& config, int shard) {
  return config.state_dir + "/shard-" + std::to_string(shard) + ".ckpt";
}

std::string settle_journal_path(const SupervisorConfig& config) {
  return config.state_dir + "/settle.wal";
}

// ---------------------------------------------------------------------
// Shard phase: run (or reuse) every shard under a per-shard wedge
// watchdog. Workers never touch shared state — each fills its own
// SliceOutcome slot, and the supervisor folds the slots in shard order
// after the join so stats are deterministic at any thread count.
// ---------------------------------------------------------------------

struct SliceOutcome {
  std::vector<UeRecord> records;
  int wedges = 0;
  int restarts = 0;
  bool reused_checkpoint = false;
  std::optional<recovery::CrashException> kill;
  Status error = Status::Ok();
};

SliceOutcome run_one_shard(const SupervisorConfig& config,
                           const detail::ShardSlice& slice) {
  SliceOutcome out;
  const auto scope = static_cast<std::uint64_t>(slice.shard_index);
  const std::string ckpt_path =
      shard_checkpoint_path(config, slice.shard_index);
  for (int attempt = 0;; ++attempt) {
    try {
      auto existing = recovery::read_checkpoint_if_present(ckpt_path);
      if (!existing) {
        out.error = Err(existing.error());
        return out;
      }
      if (existing->has_value()) {
        auto records = decode_shard_records(**existing);
        if (!records) {
          // The rename protocol never leaves a torn checkpoint, so a
          // corrupt one means the storage lied — surface it.
          out.error = Err(records.error());
          return out;
        }
        out.records = std::move(*records);
        out.reused_checkpoint = true;
        return out;
      }
      if (config.plan != nullptr) {
        config.plan->fire(recovery::kCrashShardRun, scope);
      }
      std::vector<UeRecord> records =
          detail::run_shard_slice(config.fleet, slice);
      if (config.plan != nullptr) {
        config.plan->fire(recovery::kCrashShardWedge, scope);
      }
      Status wrote = recovery::write_checkpoint(
          ckpt_path, encode_shard_records(records), config.plan, scope);
      if (!wrote.ok()) {
        out.error = wrote;
        return out;
      }
      out.records = std::move(records);
      return out;
    } catch (const recovery::WedgeException& wedge) {
      // Watchdog deadline: the shard hung, restart it from its last
      // checkpoint (i.e. from scratch — shards checkpoint only whole).
      ++out.wedges;
      ++out.restarts;
      TLC_WARN("fleet") << "shard " << slice.shard_index << " wedged at "
                        << wedge.site.point << ", restarting (attempt "
                        << (attempt + 1) << ")";
      if (attempt + 1 >= config.max_shard_retries) {
        out.error = Err("supervisor: shard wedged past the watchdog budget");
        return out;
      }
    } catch (const recovery::CrashException& crash) {
      out.kill = crash;
      return out;
    }
  }
}

// Runs the shard phase. Throws CrashException when any worker died;
// returns a Status error for non-crash failures.
Status run_shard_phase(const SupervisorConfig& config,
                       const std::vector<detail::ShardSlice>& slices,
                       SupervisionStats& stats, FleetResult& result) {
  std::vector<SliceOutcome> slots(slices.size());
  {
    ThreadPool pool(config.fleet.threads);
    for (std::size_t i = 0; i < slices.size(); ++i) {
      const detail::ShardSlice slice = slices[i];
      SliceOutcome* slot = &slots[i];
      pool.submit([&config, slice, slot] {
        *slot = run_one_shard(config, slice);
      });
    }
    pool.wait_idle();
  }

  // Fold stats first (in shard order), then report the death: every
  // kill in a dying incarnation replicates the same site, so throwing
  // the first one loses nothing.
  std::optional<recovery::CrashException> kill;
  Status error = Status::Ok();
  for (SliceOutcome& slot : slots) {
    stats.wedges += slot.wedges;
    stats.shard_restarts += slot.restarts;
    if (slot.reused_checkpoint) ++stats.shard_checkpoints_reused;
    if (slot.kill.has_value() && !kill.has_value()) kill = slot.kill;
    if (!slot.error.ok() && error.ok()) error = slot.error;
  }
  if (kill.has_value()) throw *kill;
  if (!error.ok()) return error;

  result.records.reserve(
      static_cast<std::size_t>(std::max(0, config.fleet.ue_count)));
  for (SliceOutcome& slot : slots) {
    for (UeRecord& record : slot.records) {
      result.records.push_back(std::move(record));
    }
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------
// Settlement phase: chunks of whole UE groups, journaled as they
// finish, recovered chunks spliced back byte-for-byte.
// ---------------------------------------------------------------------

Status run_settle_phase(const SupervisorConfig& config,
                        SupervisionStats& stats, FleetResult& result) {
  const std::vector<core::SettlementItem> items =
      detail::settlement_items(result.records, config.fleet);

  auto journal = transport::SettlementJournal::open(
      settle_journal_path(config), config.plan, /*scope=*/0);
  if (!journal) return Err(journal.error());
  stats.settle_chunks_recovered += journal->recovered().size();

  // Chunk boundaries: groups of `settle_chunk_ues` consecutive whole
  // UE groups, derived from the (pure) item list — identical in every
  // incarnation, which is what makes chunk indices stable journal keys.
  const std::size_t chunk_ues = std::max<std::size_t>(1, config.settle_chunk_ues);
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  for (std::size_t i = 0; i < items.size();) {
    std::size_t j = i;
    for (std::size_t ues = 0; j < items.size() && ues < chunk_ues; ++ues) {
      const std::uint64_t ue = items[j].ue_id;
      while (j < items.size() && items[j].ue_id == ue) ++j;
    }
    chunks.emplace_back(i, j);
    i = j;
  }

  const core::RsaKeyCache keys(config.fleet.rsa_bits,
                               config.fleet.key_cache_slots,
                               detail::key_cache_seed(config.fleet));
  const core::BatchConfig batch = detail::make_batch_config(config.fleet);

  result.receipts.clear();
  result.receipts.reserve(items.size());
  for (std::size_t chunk_index = 0; chunk_index < chunks.size();
       ++chunk_index) {
    const auto recovered =
        journal->recovered().find(static_cast<std::uint32_t>(chunk_index));
    if (recovered != journal->recovered().end()) {
      result.receipts.insert(result.receipts.end(),
                             recovered->second.receipts.begin(),
                             recovered->second.receipts.end());
      result.coded_totals += recovered->second.coded;
      continue;
    }
    const auto [begin, end] = chunks[chunk_index];
    const std::vector<core::SettlementItem> chunk_items(
        items.begin() + static_cast<std::ptrdiff_t>(begin),
        items.begin() + static_cast<std::ptrdiff_t>(end));
    std::vector<core::SettlementReceipt> receipts;
    transport::CodedCounters coded;
    if (config.fleet.lossy_transport &&
        config.fleet.transport.coding == transport::Coding::Rlnc) {
      transport::CodedSettler settler(batch, config.fleet.transport, keys);
      settler.set_crash_plan(config.plan);
      transport::LossyBatchReport report =
          settler.settle(chunk_items, config.fleet.threads);
      receipts = std::move(report.receipts);
      coded = report.coded;
    } else if (config.fleet.lossy_transport) {
      transport::LossySettler settler(batch, config.fleet.transport, keys);
      settler.set_crash_plan(config.plan);
      receipts =
          settler.settle(chunk_items, config.fleet.threads).receipts;
    } else {
      // The in-process settler has no crash hook; fire the settle-cycle
      // point once per UE group here so lossless runs crash too.
      if (config.plan != nullptr) {
        std::uint64_t last_ue = ~0ULL;
        for (const core::SettlementItem& item : chunk_items) {
          if (item.ue_id == last_ue) continue;
          last_ue = item.ue_id;
          config.plan->fire(recovery::kCrashSettleCycle, item.ue_id);
        }
      }
      core::BatchSettler settler(batch, keys);
      receipts = settler.settle(chunk_items, config.fleet.threads);
    }
    Status journaled = journal->record_chunk(
        static_cast<std::uint32_t>(chunk_index), receipts, coded);
    if (!journaled.ok()) return journaled;
    result.receipts.insert(result.receipts.end(), receipts.begin(),
                           receipts.end());
    result.coded_totals += coded;
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------
// One incarnation: shards → settlement → OFCS aggregation, resuming
// from whatever previous incarnations made durable.
// ---------------------------------------------------------------------

Expected<FleetResult> run_attempt(const SupervisorConfig& config,
                                  SupervisionStats& stats) {
  FleetResult result;
  const std::vector<detail::ShardSlice> slices =
      detail::partition_shards(config.fleet);
  if (slices.empty()) return result;

  Status shard_status = run_shard_phase(config, slices, stats, result);
  if (!shard_status.ok()) return Err(shard_status.error());

  detail::collect_gap_samples(result.records, result.gap_samples);

  if (config.fleet.settle) {
    Status settle_status = run_settle_phase(config, stats, result);
    if (!settle_status.ok()) return Err(settle_status.error());
  }

  auto log = recovery::StateLog::open(config.state_dir, "ofcs", config.plan,
                                      /*scope=*/0);
  if (!log) return Err(log.error());
  epc::Ofcs ofcs(detail::fleet_plan(config.fleet));
  Status attached = ofcs.attach_recovery(&*log);
  if (!attached.ok()) return Err(attached.error());

  const int every = std::max(1, config.checkpoint_every_cycles);
  Status checkpoint_error = Status::Ok();
  detail::aggregate_fleet(config.fleet, ofcs, result,
                          [&ofcs, &checkpoint_error, every](int cycle) {
                            if ((cycle + 1) % every != 0) return;
                            Status s = ofcs.checkpoint();
                            if (!s.ok() && checkpoint_error.ok()) {
                              checkpoint_error = s;
                            }
                          });
  if (!ofcs.recovery_error().ok()) {
    return Err(ofcs.recovery_error().error());
  }
  if (!checkpoint_error.ok()) return Err(checkpoint_error.error());
  stats.duplicate_ops_dropped += ofcs.duplicate_ops_dropped();

  detail::compute_digests(result);
  return result;
}

void remove_state_files(const SupervisorConfig& config,
                        const std::vector<detail::ShardSlice>& slices) {
  auto drop = [](const std::string& path) {
    (void)util::remove_file(path);
    (void)util::remove_file(path + ".tmp");
  };
  for (const detail::ShardSlice& slice : slices) {
    drop(shard_checkpoint_path(config, slice.shard_index));
  }
  drop(settle_journal_path(config));
  drop(config.state_dir + "/ofcs.ckpt");
  drop(config.state_dir + "/ofcs.wal");
}

}  // namespace

Expected<SupervisedResult> run_supervised_fleet(
    const SupervisorConfig& config) {
  if (config.state_dir.empty()) {
    return Err("supervisor: state_dir must be set");
  }
  std::error_code ec;
  std::filesystem::create_directories(config.state_dir, ec);
  if (ec) return Err("supervisor: cannot create state_dir: " + ec.message());

  SupervisionStats stats;
  for (int incarnation = 0; incarnation < config.max_incarnations;
       ++incarnation) {
    ++stats.incarnations;
    if (config.plan != nullptr) config.plan->begin_incarnation();
    try {
      auto result = run_attempt(config, stats);
      if (!result) return Err(result.error());
      remove_state_files(config, detail::partition_shards(config.fleet));
      return SupervisedResult{std::move(*result), stats};
    } catch (const recovery::CrashException& crash) {
      ++stats.crashes;
      TLC_WARN("fleet") << "incarnation " << incarnation << " died at "
                        << crash.site.point << " scope " << crash.site.scope
                        << " hit " << crash.site.hit << "; restarting";
    } catch (const recovery::WedgeException& wedge) {
      // A wedge outside any shard (journal/checkpoint write hung):
      // the supervisor-level deadline fires and the incarnation
      // restarts wholesale.
      ++stats.wedges;
      TLC_WARN("fleet") << "incarnation " << incarnation << " wedged at "
                        << wedge.site.point << "; restarting";
    }
  }
  return Err("supervisor: incarnation budget exhausted");
}

}  // namespace tlc::fleet
