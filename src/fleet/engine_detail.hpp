// Internal fleet-engine building blocks, shared by the plain engine
// (engine.cpp) and the crash-supervised runner (supervisor.cpp).
//
// One code path, two drivers: run_fleet composes these helpers
// straight through, run_supervised_fleet interleaves them with
// checkpoints, journals and crash-injection points. Everything here is
// a pure function of its inputs, which is what makes the supervised
// run's splice-and-resume provably bit-identical to the plain run —
// the supervisor only ever substitutes a helper's output with that
// same output recovered from disk.
#pragma once

#include <functional>
#include <vector>

#include "fleet/engine.hpp"

namespace tlc::fleet::detail {

/// One contiguous range of global UE indices owned by one shard. The
/// partition depends only on (ue_count, shards), never thread count.
struct ShardSlice {
  int shard_index = 0;
  std::uint64_t first_ue = 0;
  std::size_t ue_count = 0;
};

[[nodiscard]] std::vector<ShardSlice> partition_shards(
    const FleetConfig& config);

/// Everything one shard job produces. Workers fill disjoint slots —
/// records, receipts and gap samples alike — and the engine merges the
/// slots in shard order after the pool drains, so the parallel phase
/// shares no mutable state at all.
struct ShardOutcome {
  std::vector<UeRecord> records;
  std::vector<core::SettlementReceipt> receipts;
  std::map<testbed::Scheme, Samples> gap_samples;
  transport::CodedCounters coded;
};

/// Runs one shard world to completion. Pure function of
/// (config, slice) — a re-run after a crash reproduces the records
/// byte for byte.
[[nodiscard]] std::vector<UeRecord> run_shard_slice(const FleetConfig& config,
                                                    const ShardSlice& slice);

/// Appends the fleet gap CDF inputs in (ue_index, cycle) order.
void collect_gap_samples(const std::vector<UeRecord>& records,
                         std::map<testbed::Scheme, Samples>& gap_samples);

[[nodiscard]] core::BatchConfig make_batch_config(const FleetConfig& config);

[[nodiscard]] std::uint64_t key_cache_seed(const FleetConfig& config);

/// Settlement inputs in (ue_index, cycle) order; each UE's items are
/// contiguous, so any chunking along whole-UE boundaries settles to
/// identical receipts.
[[nodiscard]] std::vector<core::SettlementItem> settlement_items(
    const std::vector<UeRecord>& records, const FleetConfig& config);

/// OFCS aggregation: feeds the settlement census, installs the TLC
/// charge hook over `result.receipts`, ingests the synthetic gateway
/// CDRs and closes every cycle; fills bills/totals/settlement fields
/// of `result` (records/gap_samples/receipts must already be there).
/// `ofcs` is caller-constructed — the supervisor attaches its recovery
/// log first — and `after_cycle` (nullable) runs after each cycle
/// closes, which is where checkpoints go. Idempotent against a
/// recovered `ofcs`: re-ingested CDRs, re-closed cycles and
/// re-recorded settlements all dedupe.
void aggregate_fleet(const FleetConfig& config, epc::Ofcs& ofcs,
                     FleetResult& result,
                     const std::function<void(int cycle)>& after_cycle);

/// The data plan the fleet OFCS rates against.
[[nodiscard]] charging::DataPlan fleet_plan(const FleetConfig& config);

/// Fills the three SHA-256 digests from the result's own fields.
void compute_digests(FleetResult& result);

}  // namespace tlc::fleet::detail
