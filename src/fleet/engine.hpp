// Fleet engine: runs every shard, merges their results, aggregates the
// fleet through the OFCS and settles every (UE, cycle) pair via the
// batch TLC API.
//
// This is the top of the determinism contract: `run_fleet` output is a
// pure function of the FleetConfig. Shards execute concurrently on a
// fixed-size thread pool but write pre-allocated, disjoint result
// slots; merging walks those slots in shard order, settlement derives
// all randomness from seed streams, and every floating-point
// accumulation happens in a sorted, thread-independent order. The
// digests exist so tests (and benches) can assert bit-identity across
// thread counts with one comparison.
#pragma once

#include <map>
#include <vector>

#include "charging/ingest.hpp"
#include "core/batch_settlement.hpp"
#include "epc/ofcs.hpp"
#include "fleet/fleet_config.hpp"
#include "fleet/shard.hpp"
#include "util/stats.hpp"

namespace tlc::fleet {

struct FleetResult {
  /// Every member's record, ordered by global ue_index.
  std::vector<UeRecord> records;

  /// Fleet-wide gap CDF inputs per scheme: one gap_mb_per_hr sample per
  /// (UE, cycle), appended in (ue_index, cycle) order.
  std::map<testbed::Scheme, Samples> gap_samples;

  /// Batch TLC settlement receipts, in (ue_index, cycle) order. Empty
  /// when config.settle is false.
  std::vector<core::SettlementReceipt> receipts;

  /// OFCS output: bills[cycle] holds one line per subscriber (ascending
  /// IMSI), rated with the TLC hook backed by the receipts (legacy
  /// gateway volume where settlement is disabled or incomplete).
  std::vector<std::vector<std::pair<epc::Imsi, epc::BillLine>>> bills;
  epc::Ofcs::FleetTotals totals;

  /// Settlement outcome census (§8): per-cycle and aggregate. All
  /// Converged on a lossless run; Retried/Degraded/RejectedTamper
  /// appear once config.lossy_transport injects faults.
  std::vector<epc::SettlementCounters> settlement_by_cycle;
  epc::SettlementCounters settlement_totals;

  /// Coded-transport census (§17), summed over shards in merge order.
  /// All-zero unless config.lossy_transport is on and
  /// config.transport.coding selects RLNC; bit-identical across
  /// thread counts like every other field here.
  transport::CodedCounters coded_totals;

  /// Streaming ingest artifacts (DESIGN.md §16): sealed batch PoCs in
  /// seal order. Empty when config.streaming_ingest is off. A pure
  /// function of the CDR stream, so bit-identical across thread counts
  /// like everything else here.
  std::vector<charging::BatchPoc> ingest_batches;
  /// Verification key for the batch signatures (derived from its own
  /// seed stream). Zero-valued when streaming is off.
  crypto::RsaPublicKey ingest_key;

  /// SHA-256 digests for bit-identity assertions.
  Bytes measurement_digest;  // all merged CycleMeasurements
  Bytes cdf_digest;          // per-scheme gap CDF point series
  Bytes poc_digest;          // all settlement receipts incl. PoC wire
  Bytes anomaly_digest;      // §13 adversary kinds + gateway detectors
  Bytes ingest_digest;       // §16 batch PoC wires, seal order
};

/// Runs the whole fleet: shards on `config.threads` workers, then
/// merge, settlement and OFCS aggregation.
[[nodiscard]] FleetResult run_fleet(const FleetConfig& config);

}  // namespace tlc::fleet
