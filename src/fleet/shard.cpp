#include "fleet/shard.hpp"

#include <algorithm>
#include <cassert>

#include "sim/rng_stream.hpp"
#include "workloads/background.hpp"
#include "workloads/gaming.hpp"
#include "workloads/trace.hpp"
#include "workloads/vr_gvsp.hpp"
#include "workloads/webcam.hpp"

namespace tlc::fleet {
namespace {

// Mirrors testbed::Testbed's cycle bookkeeping.
constexpr SimTime kBoundaryGrace = 50 * kSecond;
constexpr SimTime kCounterCheckLead = 120 * kMillisecond;

// Shard seed-stream layout (indices into the shard's StreamSeeder).
// Each UE owns two streams: profile draws and its world seed.
constexpr std::uint64_t kEnodebStream = 1;
constexpr std::uint64_t kBackgroundStream = 2;
constexpr std::uint64_t kUeStreamBase = 16;

// Stream under a member's seed used for scheme evaluation draws.
constexpr std::uint64_t kSchemeEvalStream = 0xe7a1;

// Stream under a member's seed for the §13 byzantine overlay: the
// adversary role draw and the generator's own randomness. A dedicated
// stream — never ue.rng forks — so a zero adversary fraction consumes
// nothing and honest runs stay byte-identical to pre-§13 fleets.
constexpr std::uint64_t kAdversaryStream = 0xadb5;

constexpr std::uint32_t kFlowBase = 100;
constexpr std::uint32_t kBackgroundFlow = 1;
// Overlay flows live far above the member flow range so an adversary's
// own flow can never collide with a victim's.
constexpr std::uint32_t kAdversaryFlowBase = 1u << 20;
constexpr std::uint64_t kFleetImsiBase = 310170000000000ull;
constexpr std::uint64_t kShardBackgroundImsiBase = 460110000000000ull;

SimTime draw_clamped_offset(const charging::ClockModel& model, Rng& rng,
                            SimTime max_abs) {
  const SimTime offset = model.draw_offset(rng);
  return std::clamp<SimTime>(offset, -max_abs, max_abs);
}

// Largest clock-skew offset a boundary can land past its nominal time
// (the clamp applied in schedule_ue_boundaries).
SimTime max_boundary_offset(SimTime cycle_length) {
  return std::min<SimTime>(kBoundaryGrace - 5 * kSecond, cycle_length / 2);
}

// How far the shard must simulate past the last nominal boundary: the
// worst-case skewed boundary plus a margin for counter-check exchanges
// and in-flight deliveries. Everything recorded — sampler snapshots,
// counter checks, gateway volumes — happens at or before the last
// skewed boundary, so simulating the rest of the fixed 50 s grace was
// pure wasted work (it dominated short-cycle configs: a 2 s × 2 fleet
// spent 50 of 54 simulated seconds on traffic nothing ever read).
SimTime run_tail(SimTime cycle_length) {
  return std::min<SimTime>(kBoundaryGrace,
                           max_boundary_offset(cycle_length) + kSecond);
}

}  // namespace

struct FleetShard::UeCtx {
  UeRecord record;
  testbed::ScenarioConfig scenario;  // lifted base, member applied
  std::uint32_t flow_id = 0;
  Rng rng{0};  // per-UE randomness root (seeded from member.seed)
  std::unique_ptr<sim::RadioChannel> radio;
  std::unique_ptr<epc::UeDevice> device;
  std::unique_ptr<workloads::TrafficSource> source;
  /// §13 bypass overlay riding on top of the normal app (nullptr for
  /// honest members).
  std::unique_ptr<workloads::TrafficSource> adversary_source;

  charging::RrcCounterMonitor rrc_ul{
      charging::RrcCounterMonitor::Track::Uplink};
  charging::RrcCounterMonitor rrc_dl{
      charging::RrcCounterMonitor::Track::Downlink};
  std::vector<std::unique_ptr<charging::UsageMonitor>> monitors;
  std::unique_ptr<charging::CycleSampler> true_sent;
  std::unique_ptr<charging::CycleSampler> true_received;
  std::unique_ptr<charging::CycleSampler> edge_sent;
  std::unique_ptr<charging::CycleSampler> edge_received;
  std::unique_ptr<charging::CycleSampler> op_sent;
  std::unique_ptr<charging::CycleSampler> op_received;
  std::unique_ptr<charging::CycleSampler> gateway;
  /// Uncharged-volume sampler (gateway's §13 leak counter at the
  /// operator's boundary). Built only when the config has adversaries,
  /// so honest fleets schedule no extra events and draw no extra forks.
  std::unique_ptr<charging::CycleSampler> uncharged;
  Rng edge_clock_rng{0};
  Rng op_clock_rng{0};
};

FleetShard::~FleetShard() = default;

epc::Imsi FleetShard::fleet_imsi(std::uint64_t ue_index) {
  return epc::Imsi{kFleetImsiBase + ue_index};
}

FleetShard::FleetShard(const FleetConfig& config, int shard_index,
                       std::uint64_t first_ue, std::size_t ue_count)
    : config_(config), shard_index_(shard_index) {
  enodeb_ = std::make_unique<epc::EnodeB>(
      sim_, config_.base.enodeb,
      sim::stream_rng(shard_seed(), kEnodebStream));
  mme_ = std::make_unique<epc::Mme>(sim_, hss_);
  epc::SpgwParams spgw_params;
  spgw_params.flow_based_charging = config_.adversary.flow_based_charging;
  spgw_ = std::make_unique<epc::Spgw>(sim_, *enodeb_, spgw_params);
  server_ = std::make_unique<testbed::EdgeServer>(sim_, *spgw_);
  spgw_->set_server_sink([this](epc::Imsi imsi, const sim::Packet& packet) {
    server_->deliver_uplink(imsi, packet);
  });

  // Operator's tamper-resilient monitor feed (§5.4), dispatched per
  // member.
  if (config_.base.enable_counter_check) {
    enodeb_->set_counter_check_handler(
        [this](epc::Imsi imsi, std::uint64_t ul, std::uint64_t dl,
               SimTime at) {
          auto it = by_imsi_.find(imsi);
          if (it == by_imsi_.end()) return;
          it->second->rrc_ul.on_report(ul, dl, at);
          it->second->rrc_dl.on_report(ul, dl, at);
        });
  }

  // EMM attach handling for the whole population.
  mme_->set_state_change_handler([this](epc::Imsi imsi, bool attached) {
    epc::UeDevice* device = nullptr;
    sim::RadioChannel* radio = nullptr;
    if (auto it = by_imsi_.find(imsi); it != by_imsi_.end()) {
      device = it->second->device.get();
      radio = it->second->radio.get();
    } else if (bg_ue_ && imsi == bg_ue_->imsi()) {
      device = bg_ue_.get();
      radio = bg_radio_.get();
    }
    if (device == nullptr) return;
    if (attached) {
      spgw_->create_session(imsi);
      enodeb_->add_ue(imsi, device, radio);
      device->set_attached(true);
    } else {
      spgw_->close_session(imsi);
      enodeb_->remove_ue(imsi);
      device->set_attached(false);
    }
  });

  for (std::size_t i = 0; i < ue_count; ++i) {
    build_ue(first_ue + i, kUeStreamBase + 2 * i);
  }
  build_background();

  // Initial attach: population order, then the background phone.
  for (const auto& ue : ues_) {
    const bool ok = mme_->register_ue(ue->record.imsi, ue->radio.get());
    assert(ok);
    (void)ok;
  }
  if (bg_ue_) {
    const bool ok = mme_->register_ue(bg_ue_->imsi(), bg_radio_.get());
    assert(ok);
    (void)ok;
  }
}

std::uint64_t FleetShard::shard_seed() const {
  const auto shard_stream = static_cast<std::uint64_t>(shard_index_);
  return sim::stream_seed(config_.seed, shard_stream);
}

void FleetShard::build_ue(std::uint64_t ue_index,
                          std::uint64_t member_stream) {
  auto owned = std::make_unique<UeCtx>();
  UeCtx& ue = *owned;
  ue.record.ue_index = ue_index;
  ue.record.imsi = fleet_imsi(ue_index);
  ue.flow_id = kFlowBase + static_cast<std::uint32_t>(ues_.size());

  // Member profile drawn from the shard's per-UE stream; the world seed
  // comes from the adjacent stream so profile draws never consume world
  // randomness.
  Rng profile_rng = sim::stream_rng(shard_seed(), member_stream);
  testbed::FleetMember member;
  member.app = config_.app_mix.empty()
                   ? config_.base.app
                   : config_.app_mix[static_cast<std::size_t>(
                         profile_rng.uniform_u64(config_.app_mix.size()))];
  member.mean_rss_dbm = profile_rng.chance(config_.weak_signal_fraction)
                            ? config_.weak_signal_rss_dbm
                            : config_.base.mean_rss_dbm;
  member.disconnect_ratio =
      profile_rng.chance(config_.intermittent_fraction)
          ? config_.intermittent_eta
          : config_.base.disconnect_ratio;
  member.mobility_speed_mps = config_.base.mobility.speed_mps;
  member.seed = sim::stream_seed(shard_seed(), member_stream + 1);
  ue.record.member = member;
  ue.scenario = testbed::lift_scenario(config_.base, member);
  ue.rng = Rng(member.seed);

  // Radio + device, mirroring Testbed's construction order.
  sim::RadioParams radio_params;
  radio_params.mean_rss_dbm = ue.scenario.mean_rss_dbm;
  radio_params.disconnect_ratio = ue.scenario.disconnect_ratio;
  radio_params.mean_outage_s = ue.scenario.mean_outage_s;
  radio_params.mobility = ue.scenario.mobility;
  ue.radio = std::make_unique<sim::RadioChannel>(radio_params, ue.rng.fork());
  ue.device = std::make_unique<epc::UeDevice>(
      sim_, ue.record.imsi, ue.scenario.device, ue.radio.get(),
      enodeb_.get(), ue.rng.fork());
  ue.device->set_traffic_stats_tamper(ue.scenario.edge_trafficstats_tamper);

  hss_.provision(epc::SubscriberProfile{ue.record.imsi, "fleet-member",
                                        ue.scenario.device});
  pcrf_.install_rule(ue.flow_id, testbed::app_qci(member.app));
  // Flow-identity binding (§13): the gateway knows which IMSI owns each
  // member flow, which is what lets it spot free-riders replaying one.
  spgw_->bind_flow(ue.flow_id, ue.record.imsi);

  // Workload source.
  const sim::Direction direction = testbed::app_direction(member.app);
  const sim::Qci qci = pcrf_.qci_for(ue.flow_id);
  UeCtx* raw = &ue;
  workloads::TrafficSource::EmitFn sink;
  if (direction == sim::Direction::Uplink) {
    sink = [raw](const sim::Packet& p) { raw->device->app_send(p); };
  } else {
    sink = [this, raw](const sim::Packet& p) {
      server_->app_send(raw->record.imsi, p);
    };
  }
  if (ue.scenario.replay_trace) {
    ue.source = std::make_unique<workloads::TraceReplaySource>(
        sim_, sink, ue.flow_id, *ue.scenario.replay_trace, /*loop=*/true);
  } else {
    switch (member.app) {
      case testbed::AppKind::WebcamRtsp:
        ue.source = std::make_unique<workloads::WebcamSource>(
            sim_, sink, ue.flow_id, direction, qci,
            workloads::webcam_rtsp_params(), ue.rng.fork(), "WebCam (RTSP)");
        break;
      case testbed::AppKind::WebcamUdp:
      case testbed::AppKind::WebcamUdpDownlink:
        ue.source = std::make_unique<workloads::WebcamSource>(
            sim_, sink, ue.flow_id, direction, qci,
            workloads::webcam_udp_params(), ue.rng.fork(), "WebCam (UDP)");
        break;
      case testbed::AppKind::VrGvsp:
        ue.source = std::make_unique<workloads::VrGvspSource>(
            sim_, sink, ue.flow_id, direction, qci, workloads::VrGvspParams{},
            ue.rng.fork());
        break;
      case testbed::AppKind::GamingQci7:
      case testbed::AppKind::GamingQci9:
        ue.source = std::make_unique<workloads::GamingSource>(
            sim_, sink, ue.flow_id, direction, qci, workloads::GamingParams{},
            ue.rng.fork());
        break;
    }
  }

  // §13 byzantine overlay. Role and generator randomness come from a
  // dedicated stream under the member's seed, guarded by enabled(): a
  // zero-adversary config draws nothing extra anywhere.
  if (config_.adversary.enabled()) {
    Rng adv_rng = sim::stream_rng(member.seed, kAdversaryStream);
    const double fraction =
        std::clamp(config_.adversary.fraction, 0.0, 1.0);
    if (adv_rng.chance(fraction)) {
      const auto& kinds = config_.adversary.kinds;
      ue.record.adversary = kinds[static_cast<std::size_t>(
          adv_rng.uniform_u64(kinds.size()))];
      const std::size_t idx = ues_.size();
      std::uint32_t overlay_flow =
          kAdversaryFlowBase + static_cast<std::uint32_t>(idx);
      switch (ue.record.adversary) {
        case workloads::AdversaryKind::kFreeRider:
          // Replay the previous member's flow identity. The shard's
          // first member has no one to rob and degrades to riding its
          // own flow — no replay, no leak, trivially bounded.
          overlay_flow =
              kFlowBase + static_cast<std::uint32_t>(idx == 0 ? 0 : idx - 1);
          break;
        case workloads::AdversaryKind::kZeroRatedAbuse:
          spgw_->set_zero_rated(overlay_flow);
          break;
        default:
          spgw_->bind_flow(overlay_flow, ue.record.imsi);
          break;
      }
      // Every overlay is uplink: it leaves through the device's bearer
      // and contends for the air like any app traffic.
      ue.adversary_source = workloads::make_adversary(
          ue.record.adversary, sim_,
          [raw](const sim::Packet& p) { raw->device->app_send(p); },
          overlay_flow, adv_rng.fork());
    }
  }

  build_ue_samplers(ue);

  by_imsi_.emplace(ue.record.imsi, &ue);
  ues_.push_back(std::move(owned));
}

void FleetShard::build_background() {
  if (config_.base.background_mbps <= 0.0) return;
  const epc::Imsi bg_imsi{kShardBackgroundImsiBase +
                          static_cast<std::uint64_t>(shard_index_)};
  Rng bg_rng = sim::stream_rng(shard_seed(), kBackgroundStream);

  sim::RadioParams bg_radio_params;
  bg_radio_params.mean_rss_dbm = -70.0;  // strong signal, never drops
  bg_radio_ =
      std::make_unique<sim::RadioChannel>(bg_radio_params, bg_rng.fork());
  bg_ue_ = std::make_unique<epc::UeDevice>(sim_, bg_imsi,
                                           epc::device_s7edge(),
                                           bg_radio_.get(), enodeb_.get(),
                                           bg_rng.fork());
  hss_.provision(
      epc::SubscriberProfile{bg_imsi, "background-phone", epc::device_s7edge()});
  pcrf_.install_rule(kBackgroundFlow, sim::Qci::kQci9);

  // Background congestion runs in the population's dominant direction;
  // with a mixed app population the downlink (where most fleet traffic
  // lives) is the congested side, matching the paper's iperf setup.
  const sim::Direction direction = testbed::app_direction(config_.base.app);
  workloads::TrafficSource::EmitFn sink;
  if (direction == sim::Direction::Uplink) {
    sink = [this](const sim::Packet& p) { bg_ue_->app_send(p); };
  } else {
    sink = [this, bg_imsi](const sim::Packet& p) {
      spgw_->downlink_submit(bg_imsi, p);
    };
  }
  workloads::BackgroundParams bg_params;
  bg_params.rate_mbps = config_.base.background_mbps;
  bg_source_ = std::make_unique<workloads::BackgroundUdpSource>(
      sim_, sink, kBackgroundFlow, direction, bg_params, bg_rng.fork());
}

void FleetShard::build_ue_samplers(UeCtx& ue) {
  const sim::Direction direction =
      testbed::app_direction(ue.record.member.app);
  const charging::ClockModel exact{0.0, 0.0};
  const epc::Imsi imsi = ue.record.imsi;
  UeCtx* raw = &ue;

  auto make_monitor = [&ue](std::string name,
                            std::function<std::uint64_t()> reader)
      -> const charging::UsageMonitor& {
    ue.monitors.push_back(std::make_unique<charging::CallbackMonitor>(
        std::move(name), std::move(reader)));
    return *ue.monitors.back();
  };

  const charging::UsageMonitor& true_sent =
      direction == sim::Direction::Uplink
          ? make_monitor("true-sent",
                         [raw] { return raw->device->app_tx_bytes(); })
          : make_monitor("true-sent",
                         [this, imsi] { return server_->sent_bytes(imsi); });
  const charging::UsageMonitor& true_received =
      direction == sim::Direction::Uplink
          ? make_monitor("true-received",
                         [this, imsi] { return server_->received_bytes(imsi); })
          : make_monitor("true-received",
                         [raw] { return raw->device->app_rx_bytes(); });

  const charging::UsageMonitor& gateway =
      direction == sim::Direction::Uplink
          ? make_monitor("gateway-ul",
                         [this, imsi] { return spgw_->uplink_bytes(imsi); })
          : make_monitor("gateway-dl",
                         [this, imsi] { return spgw_->downlink_bytes(imsi); });

  const charging::UsageMonitor* op_far_side = nullptr;
  if (config_.base.enable_counter_check) {
    op_far_side =
        direction == sim::Direction::Uplink
            ? static_cast<const charging::UsageMonitor*>(&ue.rrc_ul)
            : static_cast<const charging::UsageMonitor*>(&ue.rrc_dl);
  } else {
    op_far_side =
        direction == sim::Direction::Uplink
            ? &make_monitor("trafficstats-tx",
                            [raw] { return raw->device->traffic_stats_tx(); })
            : &make_monitor("trafficstats-rx",
                            [raw] { return raw->device->traffic_stats_rx(); });
  }

  const charging::UsageMonitor& op_sent =
      direction == sim::Direction::Uplink ? *op_far_side : gateway;
  const charging::UsageMonitor& op_received =
      direction == sim::Direction::Uplink ? gateway : *op_far_side;

  ue.true_sent = std::make_unique<charging::CycleSampler>(sim_, true_sent,
                                                          exact, ue.rng.fork());
  ue.true_received = std::make_unique<charging::CycleSampler>(
      sim_, true_received, exact, ue.rng.fork());
  ue.edge_sent = std::make_unique<charging::CycleSampler>(sim_, true_sent,
                                                          exact, ue.rng.fork());
  ue.edge_received = std::make_unique<charging::CycleSampler>(
      sim_, true_received, exact, ue.rng.fork());
  ue.op_sent = std::make_unique<charging::CycleSampler>(sim_, op_sent, exact,
                                                        ue.rng.fork());
  ue.op_received = std::make_unique<charging::CycleSampler>(
      sim_, op_received, exact, ue.rng.fork());
  ue.gateway = std::make_unique<charging::CycleSampler>(sim_, gateway, exact,
                                                        ue.rng.fork());
  ue.edge_clock_rng = ue.rng.fork();
  ue.op_clock_rng = ue.rng.fork();

  // §13 leak sampler — appended strictly after every pre-existing fork
  // so the streams above keep their exact draws, and gated so honest
  // configs build (and schedule) nothing new at all.
  if (config_.adversary.enabled()) {
    const charging::UsageMonitor& uncharged = make_monitor(
        "uncharged", [this, imsi] { return spgw_->uncharged_bytes(imsi); });
    ue.uncharged = std::make_unique<charging::CycleSampler>(
        sim_, uncharged, exact, ue.rng.fork());
  }
}

void FleetShard::schedule_ue_boundaries(UeCtx& ue) {
  const SimTime max_offset = max_boundary_offset(config_.base.cycle_length);
  const double cycle_s = to_seconds(config_.base.cycle_length);
  const charging::ClockModel edge_clock{
      config_.base.edge_clock_rel_std * cycle_s, 0.0};
  const charging::ClockModel op_clock{
      config_.base.operator_clock_rel_std * cycle_s, 0.0};
  const epc::Imsi imsi = ue.record.imsi;

  for (int i = 0; i <= config_.base.cycles; ++i) {
    const SimTime nominal =
        static_cast<SimTime>(i) * config_.base.cycle_length;
    const SimTime edge_at =
        nominal +
        draw_clamped_offset(edge_clock, ue.edge_clock_rng, max_offset);
    const SimTime op_at =
        nominal + draw_clamped_offset(op_clock, ue.op_clock_rng, max_offset);

    ue.true_sent->schedule_boundary(nominal);
    ue.true_received->schedule_boundary(nominal);
    ue.edge_sent->schedule_boundary(edge_at);
    ue.edge_received->schedule_boundary(edge_at);
    ue.op_sent->schedule_boundary(op_at);
    ue.op_received->schedule_boundary(op_at);
    ue.gateway->schedule_boundary(op_at);
    // §13 leak sampler shares the operator's boundary (and draws its
    // offset from its own fork, so the op_at draw sequence above is
    // untouched).
    if (ue.uncharged) ue.uncharged->schedule_boundary(op_at);

    if (config_.base.enable_counter_check) {
      sim_.schedule_at(std::max<SimTime>(op_at - kCounterCheckLead, 0),
                       [this, imsi] { enodeb_->request_counter_check(imsi); });
    }
  }
}

const std::vector<UeRecord>& FleetShard::run() {
  if (ran_) return records_;
  ran_ = true;

  for (auto& ue : ues_) schedule_ue_boundaries(*ue);
  mme_->start();
  for (auto& ue : ues_) {
    ue->source->start(0);
    if (ue->adversary_source) ue->adversary_source->start(0);
  }
  if (bg_source_) bg_source_->start(0);

  const SimTime horizon =
      static_cast<SimTime>(config_.base.cycles) * config_.base.cycle_length +
      run_tail(config_.base.cycle_length);
  sim_.run_until(horizon);

  for (auto& ue : ues_) {
    ue->source->stop();
    if (ue->adversary_source) ue->adversary_source->stop();
  }
  if (bg_source_) bg_source_->stop();

  records_.reserve(ues_.size());
  for (auto& owned : ues_) {
    UeCtx& ue = *owned;
    ue.record.cycles.resize(static_cast<std::size_t>(config_.base.cycles));
    for (int i = 0; i < config_.base.cycles; ++i) {
      auto& cycle = ue.record.cycles[static_cast<std::size_t>(i)];
      const auto idx = static_cast<std::size_t>(i);
      cycle.true_sent = ue.true_sent->cycle_volume(idx);
      cycle.true_received = ue.true_received->cycle_volume(idx);
      cycle.edge_sent = ue.edge_sent->cycle_volume(idx);
      cycle.edge_received = ue.edge_received->cycle_volume(idx);
      cycle.op_sent = ue.op_sent->cycle_volume(idx);
      cycle.op_received = ue.op_received->cycle_volume(idx);
      cycle.gateway_volume = ue.gateway->cycle_volume(idx);
    }
    ue.record.uncharged_per_cycle.assign(
        static_cast<std::size_t>(config_.base.cycles), 0);
    if (ue.uncharged) {
      for (int i = 0; i < config_.base.cycles; ++i) {
        ue.record.uncharged_per_cycle[static_cast<std::size_t>(i)] =
            ue.uncharged->cycle_volume(static_cast<std::size_t>(i));
      }
    }
    ue.record.anomaly = spgw_->anomaly(ue.record.imsi);

    // Scheme evaluation rides the member's own seed stream, so the
    // outcome is independent of shard/thread scheduling by design.
    Rng scheme_rng = sim::stream_rng(ue.record.member.seed,
                                     kSchemeEvalStream);
    for (testbed::Scheme scheme :
         {testbed::Scheme::Legacy, testbed::Scheme::TlcOptimal,
          testbed::Scheme::TlcRandom}) {
      auto& outcomes = ue.record.outcomes[scheme];
      outcomes.reserve(ue.record.cycles.size());
      for (const testbed::CycleMeasurements& cycle : ue.record.cycles) {
        outcomes.push_back(testbed::evaluate_scheme(
            cycle, scheme, config_.base.plan_c, config_.base.cycle_length,
            scheme_rng));
      }
    }
    records_.push_back(std::move(ue.record));
  }
  return records_;
}

}  // namespace tlc::fleet
