// Fleet run configuration.
//
// A fleet is N subscribers (UEs) partitioned over S deterministic
// testbed shards. Each shard is a self-contained world — its own
// discrete-event simulator, small cell, gateway counter set and UE
// population — so shards can run on any number of worker threads
// without sharing mutable state. The determinism contract: fleet
// results are a pure function of this config; the thread count only
// changes wall-clock time, never a byte of output.
#pragma once

#include <cstdint>
#include <vector>

#include "testbed/scenario.hpp"
#include "transport/lossy_settlement.hpp"
#include "workloads/adversarial.hpp"

namespace tlc::fleet {

/// Byzantine population spec (DESIGN.md §13). Whether a UE is an
/// adversary — and which bypass it runs — is drawn from a dedicated
/// per-member seed stream, so a zero fraction leaves every other draw
/// in the fleet untouched and the run byte-identical to a fleet that
/// predates this struct.
struct AdversaryMix {
  /// Fraction of UEs carrying a bypass overlay in [0, 1].
  double fraction = 0.0;
  /// Kinds drawn uniformly per adversarial UE (repeat to weight).
  std::vector<workloads::AdversaryKind> kinds = {
      workloads::AdversaryKind::kIcmpTunnel,
      workloads::AdversaryKind::kDnsTunnel,
      workloads::AdversaryKind::kZeroRatedAbuse,
      workloads::AdversaryKind::kFreeRider,
      workloads::AdversaryKind::kVolumeShaper};
  /// Forwarded to SpgwParams: charge uplink flows to their bound owner
  /// (turns free-riding into a charge on the victim).
  bool flow_based_charging = false;

  [[nodiscard]] bool enabled() const {
    return fraction > 0.0 && !kinds.empty();
  }
};

struct FleetConfig {
  /// Shared knobs every member inherits (cycle structure, cell
  /// parameters, plan, clock discipline, background congestion per
  /// shard cell). Per-UE fields (app, rss, disconnect, seed) are drawn
  /// per member and applied via testbed::lift_scenario.
  testbed::ScenarioConfig base;

  /// Fleet population size.
  int ue_count = 32;

  /// Shard count. Fixed independently of the worker count — results
  /// depend on it (each shard is one cell), so scaling threads up or
  /// down must not change it.
  int shards = 8;

  /// Worker threads for the shard runs and batch settlement.
  unsigned threads = 1;

  /// Master seed; every shard / UE / settlement stream derives from it
  /// through sim::stream_seed.
  std::uint64_t seed = 1;

  /// Workload mix the per-shard RNG stream draws each UE's app from
  /// (uniform over the entries; repeat an entry to weight it).
  std::vector<testbed::AppKind> app_mix = {
      testbed::AppKind::WebcamRtsp, testbed::AppKind::WebcamUdp,
      testbed::AppKind::VrGvsp, testbed::AppKind::GamingQci7};

  /// Population heterogeneity: fraction of UEs in weak signal, and
  /// fraction with intermittent connectivity (Figs 12-14 conditions).
  double weak_signal_fraction = 0.25;
  double weak_signal_rss_dbm = -102.0;
  double intermittent_fraction = 0.25;
  double intermittent_eta = 0.10;

  /// Batch TLC settlement of every (UE, cycle) pair after the runs.
  bool settle = true;
  /// RSA modulus for settlement sessions (tests/benches use 512 for
  /// speed; the paper's prototype uses 1024).
  std::size_t rsa_bits = 512;
  /// Precomputed key-cache slots shared by all sessions.
  std::size_t key_cache_slots = 4;

  /// Settle over the fault-injected transport (§8) instead of the
  /// in-process pump. With all-zero fault rates the receipts are
  /// bit-identical to the lossless path.
  bool lossy_transport = false;
  /// Fault rates, retry policy and transport seed when lossy_transport
  /// is on. Fault schedules derive from (transport.seed, ue, message
  /// index) — never wall clock — so lossy fleets keep the bit-identity
  /// contract at any thread count.
  transport::TransportConfig transport;

  /// Byzantine population (DESIGN.md §13). Default: no adversaries,
  /// and a run bit-identical to pre-§13 fleets.
  AdversaryMix adversary;

  /// Streaming ingest front (DESIGN.md §16): route the synthetic
  /// gateway CDRs through charging::StreamingIngest, sealing one
  /// Merkle-aggregated batch PoC per ingest_batch_size records instead
  /// of paying a signature per record. Bills, totals and every digest
  /// except ingest_digest are byte-identical with this on or off — the
  /// front forwards each CDR to the OFCS unchanged before batching.
  bool streaming_ingest = false;
  /// CDR leaves per sealed batch (bench points: 64 / 256 / 1024).
  std::size_t ingest_batch_size = 256;

  /// Members per shard (ceiling division; the last shard may be short).
  [[nodiscard]] std::size_t ues_per_shard() const {
    if (shards <= 0 || ue_count <= 0) return 0;
    return (static_cast<std::size_t>(ue_count) +
            static_cast<std::size_t>(shards) - 1) /
           static_cast<std::size_t>(shards);
  }
};

}  // namespace tlc::fleet
