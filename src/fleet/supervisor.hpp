// Supervised fleet runner: run_fleet under a crash-recovery regime.
//
// `run_supervised_fleet` produces the same FleetResult as `run_fleet`
// — bit-identical, digests included — while surviving process deaths
// and shard wedges injected by a recovery::CrashPlan at any of the
// instrumented boundaries (DESIGN.md §11.3). The contract rests on
// three legs:
//
//   1. Shard worlds are pure functions of (config, slice). Each shard's
//      records are checkpointed (`<state_dir>/shard-<i>.ckpt`) the
//      moment it finishes; a later incarnation reuses the checkpoint
//      and a wedged shard is simply re-run by the watchdog.
//   2. Settlement receipts are journaled per chunk of whole UE groups
//      (`<state_dir>/settle.wal`); finished chunks replay byte-for-byte
//      and only unfinished chunks re-negotiate.
//   3. The OFCS ledger runs write-ahead over a StateLog
//      (`<state_dir>/ofcs.{ckpt,wal}`) with idempotent record IDs, so
//      re-executing the aggregation pass over a recovered ledger is a
//      stream of deduped no-ops up to the crash point.
//
// An incarnation is one attempt at the whole pipeline. A Kill anywhere
// aborts the attempt (concurrent workers bail at their next
// instrumented point via the plan's dying-state replication); the
// supervisor begins a new incarnation and resumes from whatever state
// the dead one made durable. A Wedge inside a shard is absorbed by the
// per-shard watchdog (that shard restarts from its last checkpoint);
// a Wedge elsewhere restarts the incarnation.
#pragma once

#include <cstddef>
#include <string>

#include "fleet/engine.hpp"
#include "recovery/crash_plan.hpp"
#include "util/expected.hpp"

namespace tlc::fleet {

struct SupervisorConfig {
  FleetConfig fleet;
  /// Directory for checkpoints and journals; created if absent. Must
  /// be set — crash consistency without a place to put state is not a
  /// thing.
  std::string state_dir;
  /// Crash injection; nullptr = run with recovery machinery but no
  /// injected faults.
  recovery::CrashPlan* plan = nullptr;
  /// Incarnation budget: total process (re)starts before giving up.
  int max_incarnations = 64;
  /// Watchdog budget: wedge restarts of one shard within one
  /// incarnation before the incarnation is declared failed.
  int max_shard_retries = 4;
  /// Whole-UE groups per settlement journal chunk.
  std::size_t settle_chunk_ues = 4;
  /// OFCS checkpoint cadence: snapshot + journal rotation every N
  /// closed cycles.
  int checkpoint_every_cycles = 1;
};

/// What the supervision cost: every counter accumulates across
/// incarnations.
struct SupervisionStats {
  int incarnations = 0;
  /// Kill sites that ended an incarnation.
  int crashes = 0;
  /// Wedge sites fired (shard-level and incarnation-level together).
  int wedges = 0;
  /// Shard re-runs performed by the per-shard watchdog.
  int shard_restarts = 0;
  /// Shard results loaded from a prior incarnation's checkpoint
  /// instead of re-simulated.
  std::size_t shard_checkpoints_reused = 0;
  /// Settlement chunks replayed from the journal instead of
  /// re-negotiated.
  std::size_t settle_chunks_recovered = 0;
  /// Journaled OFCS ops dropped by record-ID dedupe (each one is a
  /// would-be double bill or double-counted settlement).
  std::uint64_t duplicate_ops_dropped = 0;
};

struct SupervisedResult {
  FleetResult result;
  SupervisionStats stats;
};

/// Runs the fleet under supervision. On success the state directory's
/// recovery files are removed (the run is settled; nothing to replay).
/// Fails when the incarnation or watchdog budget is exhausted or the
/// recovery machinery itself reports an I/O error.
[[nodiscard]] Expected<SupervisedResult> run_supervised_fleet(
    const SupervisorConfig& config);

}  // namespace tlc::fleet
