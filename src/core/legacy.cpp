#include "core/legacy.hpp"

#include <cmath>

namespace tlc::core {

std::uint64_t legacy_charge(std::uint64_t gateway_cdr_volume,
                            const LegacyChargeParams& params) {
  const double factor =
      params.operator_selfish_factor < 0.0 ? 0.0
                                           : params.operator_selfish_factor;
  return static_cast<std::uint64_t>(
      std::llround(static_cast<double>(gateway_cdr_volume) * factor));
}

}  // namespace tlc::core
