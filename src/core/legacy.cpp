#include "core/legacy.hpp"

namespace tlc::core {

std::uint64_t legacy_charge(std::uint64_t gateway_cdr_volume,
                            const LegacyChargeParams& params) {
  // Split the multiply so volume * ppm never overflows 64 bits for any
  // realistic CDR volume (whole quotient first, then the remainder's
  // share, rounded half-up to match the old llround behaviour).
  const std::uint64_t ppm = params.operator_selfish_ppm;
  const std::uint64_t whole = gateway_cdr_volume / 1'000'000;
  const std::uint64_t rest = gateway_cdr_volume % 1'000'000;
  return whole * ppm + (rest * ppm + 500'000) / 1'000'000;
}

}  // namespace tlc::core
