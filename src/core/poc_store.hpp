// Persistent Proof-of-Charging archive.
//
// §5.3.2: both parties "locally store" each cycle's PoC as the charging
// receipt; disputes are settled later by handing entries to a public
// verifier (§5.3.3). The store keeps (plan, PoC) pairs indexed by the
// cycle start, and serializes to an HMAC-tagged binary file so on-disk
// corruption is detected.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "util/bytes.hpp"
#include "util/expected.hpp"

namespace tlc::core {

class PocStore {
 public:
  struct Entry {
    PlanRef plan;
    Bytes poc_wire;

    [[nodiscard]] bool operator==(const Entry& o) const = default;
  };

  /// Appends a cycle's receipt (cycles are expected in order; lookups
  /// are by exact cycle start).
  void add(const PlanRef& plan, Bytes poc_wire);

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] const std::vector<Entry>& entries() const { return entries_; }

  /// The receipt for the cycle starting at `t_start`, if archived.
  [[nodiscard]] std::optional<Entry> find_cycle(SimTime t_start) const;

  /// Total archived bytes (the paper: 796 B/PoC, "marginal").
  [[nodiscard]] std::uint64_t stored_bytes() const;

  [[nodiscard]] Bytes serialize() const;
  [[nodiscard]] static Expected<PocStore> deserialize(const Bytes& data);

  [[nodiscard]] Status save(const std::string& path) const;
  [[nodiscard]] static Expected<PocStore> load(const std::string& path);

 private:
  std::vector<Entry> entries_;
};

}  // namespace tlc::core
