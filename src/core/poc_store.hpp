// Persistent Proof-of-Charging archive.
//
// §5.3.2: both parties "locally store" each cycle's PoC as the charging
// receipt; disputes are settled later by handing entries to a public
// verifier (§5.3.3). The store keeps (plan, PoC) pairs indexed by the
// cycle start, and serializes to an HMAC-tagged binary file so on-disk
// corruption is detected. Each entry additionally carries its own
// CRC32C frame, which gives the load path two modes:
//
//  * `deserialize` / `load` — strict: any damage (tag mismatch, bad
//    entry CRC, truncation) is a typed error and nothing is returned.
//  * `load_salvage` — lenient: damaged entries are skipped and counted,
//    the intact ones are returned. A device that lost one receipt to
//    bit rot keeps the rest of its audit trail instead of losing the
//    whole file.
//
// With a recovery::StateLog attached, every add() is journaled before
// the in-memory append and entries dedupe by cycle start, so a crashed
// device recovers its archive to the exact pre-crash state.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "recovery/state_log.hpp"
#include "util/bytes.hpp"
#include "util/expected.hpp"

namespace tlc::core {

/// What a stored receipt proves. Cycle entries are the classic §5.3.2
/// per-cycle PoC; Batch entries hold a streaming-ingest Merkle batch
/// PoC (DESIGN.md §16) whose one signature covers many CDRs.
enum class PocKind : std::uint8_t { Cycle = 0, Batch = 1 };

class PocStore {
 public:
  struct Entry {
    PocKind kind = PocKind::Cycle;
    PlanRef plan;
    Bytes poc_wire;

    [[nodiscard]] bool operator==(const Entry& o) const = default;
  };

  /// Outcome of a lenient (salvage) load; defined after the class (it
  /// holds a PocStore by value).
  struct Salvage;

  /// Appends a cycle's receipt (cycles are expected in order; lookups
  /// are by exact cycle start). With recovery attached the entry is
  /// journaled first and duplicate cycle starts are dropped.
  void add(const PlanRef& plan, Bytes poc_wire);

  /// Appends a receipt of an explicit kind. The dedupe/lookup key is
  /// (kind, plan.t_start); for Batch entries callers pass the batch
  /// sequence number as t_start — it is the batch's identity, the time
  /// range lives inside the PoC wire itself.
  void add(PocKind kind, const PlanRef& plan, Bytes poc_wire);

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] const std::vector<Entry>& entries() const { return entries_; }

  /// The receipt for the cycle starting at `t_start`, if archived.
  /// (Cycle entries only — batch receipts don't shadow cycle lookups.)
  [[nodiscard]] std::optional<Entry> find_cycle(SimTime t_start) const;

  /// Kind-explicit lookup by (kind, t_start).
  [[nodiscard]] std::optional<Entry> find(PocKind kind, SimTime t_start) const;

  /// Total archived bytes (the paper: 796 B/PoC, "marginal").
  [[nodiscard]] std::uint64_t stored_bytes() const;

  [[nodiscard]] Bytes serialize() const;
  [[nodiscard]] static Expected<PocStore> deserialize(const Bytes& data);

  [[nodiscard]] Status save(const std::string& path) const;
  [[nodiscard]] static Expected<PocStore> load(const std::string& path);

  /// Lenient load: skips (and counts) corrupt or truncated entries
  /// instead of rejecting the file. Only unreadable files and damaged
  /// headers are errors; the skip count is logged.
  [[nodiscard]] static Expected<Salvage> load_salvage(const std::string& path);

  // ---- Crash recovery (DESIGN.md §11.4) -----------------------------

  /// Attaches `log` and recovers: restores the checkpointed store and
  /// re-applies journaled adds (deduped by cycle start). nullptr
  /// detaches.
  [[nodiscard]] Status attach_recovery(recovery::StateLog* log);

  /// Snapshots the store into the StateLog and rotates its journal.
  [[nodiscard]] Status checkpoint();

  /// First journal error since attach, if any (a failed append drops
  /// the add — no apply without a durable op).
  [[nodiscard]] const Status& recovery_error() const {
    return recovery_error_;
  }
  [[nodiscard]] std::uint64_t duplicate_ops_dropped() const {
    return duplicate_ops_dropped_;
  }

 private:
  std::vector<Entry> entries_;
  recovery::StateLog* log_ = nullptr;
  Status recovery_error_ = Status::Ok();
  std::uint64_t duplicate_ops_dropped_ = 0;
};

struct PocStore::Salvage {
  PocStore store;
  /// Entries dropped for bad CRC / truncation.
  std::size_t entries_skipped = 0;
  /// Whether the whole-file HMAC tag checked out (false after any
  /// corruption, even when every entry was salvaged).
  bool integrity_ok = false;
};

}  // namespace tlc::core
