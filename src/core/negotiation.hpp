// Algorithm 1: loss-selfishness cancellation.
//
// This is the abstract negotiation engine — the pure game of §5.1,
// independent of message signing and transport (protocol.hpp layers
// those on top, and the public verifier replays this logic). Both
// parties exchange claims, decide accept/reject, and on mutual accept
// the charge is x = charged_volume(xe, xo, c) (line 8). On reject, the
// bounds contract to [min, max] of the round's claims (line 12).
#pragma once

#include <cstdint>
#include <vector>

#include "charging/plan.hpp"
#include "core/strategy.hpp"
#include "core/types.hpp"

namespace tlc::core {

struct RoundRecord {
  std::uint64_t edge_claim = 0;
  std::uint64_t operator_claim = 0;
  bool edge_accepted = false;
  bool operator_accepted = false;
};

struct NegotiationResult {
  /// True when both parties accepted within the round cap.
  bool completed = false;
  /// The negotiated charging volume x (valid when completed).
  std::uint64_t charged = 0;
  /// CDR-exchange rounds executed (TLC-optimal: 1).
  int rounds = 0;
  /// Claims that violated the (xL, xU) constraint (misbehaving peers).
  int bound_violations = 0;
  std::uint64_t final_edge_claim = 0;
  std::uint64_t final_operator_claim = 0;
  std::vector<RoundRecord> history;
};

struct NegotiationConfig {
  double c = 0.5;
  int max_rounds = 64;
  /// When the bounds collapse below this many bytes apart, the engine
  /// settles at the midpoint charge — claims can no longer move.
  std::uint64_t convergence_epsilon = 0;
};

/// Runs Algorithm 1 between the edge vendor and the operator.
[[nodiscard]] NegotiationResult negotiate(Strategy& edge_strategy,
                                          const UsageView& edge_view,
                                          Strategy& operator_strategy,
                                          const UsageView& operator_view,
                                          const NegotiationConfig& config);

}  // namespace tlc::core
