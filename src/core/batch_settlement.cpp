#include "core/batch_settlement.hpp"

#include <algorithm>
#include <deque>
#include <thread>
#include <unordered_map>
#include <utility>

#include "sim/rng_stream.hpp"

namespace tlc::core {

RsaKeyCache::RsaKeyCache(std::size_t modulus_bits, std::size_t slots,
                         std::uint64_t seed)
    : modulus_bits_(modulus_bits) {
  if (slots == 0) slots = 1;
  edge_keys_.reserve(slots);
  op_keys_.reserve(slots);
  for (std::size_t i = 0; i < slots; ++i) {
    // Slot keys derive from (seed, slot) alone so slot i survives cache
    // resizes; even/odd streams keep the two parties' keys distinct.
    const std::uint64_t edge_key_stream = 2 * i;
    const std::uint64_t op_key_stream = 2 * i + 1;
    Rng edge_rng = sim::stream_rng(seed, edge_key_stream);
    Rng op_rng = sim::stream_rng(seed, op_key_stream);
    edge_keys_.push_back(crypto::rsa_generate(modulus_bits, edge_rng));
    op_keys_.push_back(crypto::rsa_generate(modulus_bits, op_rng));
    // rsa_generate warms the Montgomery contexts, so the slots handed
    // out below are read-only from here on — workers on any thread
    // share them without ever racing a lazy rebuild.
  }
}

const char* settle_outcome_name(SettleOutcome outcome) {
  switch (outcome) {
    case SettleOutcome::Converged:
      return "converged";
    case SettleOutcome::Retried:
      return "retried";
    case SettleOutcome::Degraded:
      return "degraded";
    case SettleOutcome::RejectedTamper:
      return "rejected-tamper";
  }
  return "?";
}

std::unique_ptr<TlcSession> make_batch_session(const BatchConfig& config,
                                               const RsaKeyCache& keys,
                                               std::uint64_t ue_id,
                                               PartyRole role,
                                               bool tolerate_faults) {
  SessionConfig session_config;
  session_config.role = role;
  if (role == PartyRole::EdgeVendor) {
    session_config.own_keys = keys.edge_key(ue_id);
    session_config.peer_key = keys.operator_key(ue_id).public_key;
  } else {
    session_config.own_keys = keys.operator_key(ue_id);
    session_config.peer_key = keys.edge_key(ue_id).public_key;
  }
  session_config.c = config.c;
  session_config.cycle_length = config.cycle_length;
  session_config.first_cycle_start = config.first_cycle_start;
  session_config.max_rounds = config.max_rounds;
  session_config.tolerate_faults = tolerate_faults;
  // Session RNG derives from (salt, ue, role): a pure function, so the
  // same UE settles to byte-identical PoCs whether it runs in a batch,
  // alone, or on any worker thread.
  const std::uint64_t stream =
      2 * ue_id + (role == PartyRole::EdgeVendor ? 0 : 1);
  return std::make_unique<TlcSession>(
      std::move(session_config), std::make_unique<OptimalStrategy>(),
      sim::stream_rng(config.rng_salt, stream));
}

namespace {

/// One UE's items and reused session pair.
struct Group {
  std::uint64_t ue_id = 0;
  std::vector<std::size_t> item_indices;  // into the input vector
  std::unique_ptr<TlcSession> edge;
  std::unique_ptr<TlcSession> op;
  // Pending wire messages: (to_edge, bytes), FIFO per group.
  std::deque<std::pair<bool, Bytes>> wire;
  bool poisoned = false;  // a cycle failed; remaining cycles skip
  std::string poison_reason;
};

void poison(Group& group, const std::string& reason) {
  group.poisoned = true;
  if (group.poison_reason.empty()) group.poison_reason = reason;
}

/// Delivers one queued message; poisons the group on protocol errors.
void deliver_one(Group& group) {
  auto [to_edge, message] = std::move(group.wire.front());
  group.wire.pop_front();
  const Status status = to_edge ? group.edge->receive(message)
                                : group.op->receive(message);
  if (!status.ok()) poison(group, status.error());
}

/// Arms cycle `item` on both sides and lets the operator initiate.
bool begin_group_cycle(Group& group, const SettlementItem& item) {
  if (group.poisoned) return false;
  if (!group.op->begin_cycle(item.op_view).ok()) return false;
  if (!group.edge->begin_cycle(item.edge_view).ok()) return false;
  return group.op->start().ok();
}

/// Finishes the in-flight cycle and fills the receipt; a failed
/// negotiation poisons the group (its remaining receipts stay
/// incomplete — §5.1: retry policy belongs to the caller).
void finish_group_cycle(Group& group, SettlementReceipt& receipt) {
  if (group.poisoned || !group.op->cycle_complete() ||
      !group.edge->cycle_complete()) {
    group.op->abort_cycle();
    group.edge->abort_cycle();
    poison(group, "negotiation did not complete");
    receipt.failure_reason = group.poison_reason;
    return;
  }
  const auto op_receipt = group.op->finish_cycle();
  const auto edge_receipt = group.edge->finish_cycle();
  if (!op_receipt || !edge_receipt) {
    poison(group, op_receipt ? edge_receipt.error() : op_receipt.error());
    receipt.failure_reason = group.poison_reason;
    return;
  }
  receipt.completed = true;
  receipt.charged = op_receipt->charged;
  receipt.rounds = op_receipt->rounds;
  receipt.poc_wire = group.op->receipts().entries().back().poc_wire;
  receipt.outcome = SettleOutcome::Converged;
}

/// All cycles of one group, local FIFO pump (the thread-worker path).
void run_group(Group& group, const std::vector<SettlementItem>& items,
               std::vector<SettlementReceipt>& receipts) {
  for (std::size_t item_index : group.item_indices) {
    if (!begin_group_cycle(group, items[item_index])) {
      poison(group, "cycle could not start");
      receipts[item_index].failure_reason = group.poison_reason;
      continue;
    }
    while (!group.wire.empty() && !group.poisoned) deliver_one(group);
    finish_group_cycle(group, receipts[item_index]);
  }
}

}  // namespace

BatchSettler::BatchSettler(BatchConfig config, const RsaKeyCache& keys)
    : config_(config), keys_(keys) {}

std::vector<SettlementReceipt> BatchSettler::settle(
    const std::vector<SettlementItem>& items, unsigned threads) const {
  std::vector<SettlementReceipt> receipts(items.size());

  // Group items by UE in first-appearance order; per-UE item order is
  // input order (item n of a UE = its cycle n). A deque keeps Group
  // addresses stable for the send closures below; the side index makes
  // grouping O(n) — deque order alone fixes the output, so the
  // unordered lookup cannot leak into results.
  std::deque<Group> groups;
  std::unordered_map<std::uint64_t, std::size_t> group_by_ue;
  group_by_ue.reserve(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    const auto [it, inserted] =
        group_by_ue.try_emplace(items[i].ue_id, groups.size());
    if (inserted) {
      groups.emplace_back();
      groups.back().ue_id = items[i].ue_id;
    }
    Group* group = &groups[it->second];
    group->item_indices.push_back(i);
    receipts[i].ue_id = items[i].ue_id;
    receipts[i].cycle =
        static_cast<std::uint32_t>(group->item_indices.size() - 1);
  }
  for (Group& group : groups) {
    group.edge =
        make_batch_session(config_, keys_, group.ue_id, PartyRole::EdgeVendor);
    group.op =
        make_batch_session(config_, keys_, group.ue_id, PartyRole::Operator);
    Group* raw = &group;
    group.edge->set_send(
        [raw](const Bytes& m) { raw->wire.emplace_back(false, m); });
    group.op->set_send(
        [raw](const Bytes& m) { raw->wire.emplace_back(true, m); });
  }

  if (threads <= 1 && interleave_) {
    // Lockstep waves: cycle k of every group runs concurrently through
    // a shared pump, one message per visited group per round, visiting
    // order chosen by the hook — cross-session reordering with
    // per-session FIFO intact.
    std::size_t max_cycles = 0;
    for (const Group& group : groups) {
      max_cycles = std::max(max_cycles, group.item_indices.size());
    }
    for (std::size_t cycle = 0; cycle < max_cycles; ++cycle) {
      std::vector<std::size_t> active;
      for (std::size_t g = 0; g < groups.size(); ++g) {
        Group& group = groups[g];
        if (cycle >= group.item_indices.size()) continue;
        if (begin_group_cycle(group, items[group.item_indices[cycle]])) {
          active.push_back(g);
        } else {
          poison(group, "cycle could not start");
          receipts[group.item_indices[cycle]].failure_reason =
              group.poison_reason;
        }
      }
      for (;;) {
        std::vector<std::size_t> pending;
        for (std::size_t g : active) {
          if (!groups[g].wire.empty() && !groups[g].poisoned) {
            pending.push_back(g);
          }
        }
        if (pending.empty()) break;
        interleave_(pending);
        for (std::size_t g : pending) {
          if (!groups[g].wire.empty() && !groups[g].poisoned) {
            deliver_one(groups[g]);
          }
        }
      }
      for (std::size_t g : active) {
        finish_group_cycle(groups[g], receipts[groups[g].item_indices[cycle]]);
      }
    }
    return receipts;
  }

  if (threads <= 1 || groups.size() <= 1) {
    for (Group& group : groups) run_group(group, items, receipts);
    return receipts;
  }

  // Static round-robin partition of groups over a fixed worker set:
  // each group is fully local to one worker and writes only its own
  // receipt slots, so results never depend on the worker count.
  const unsigned workers =
      static_cast<unsigned>(std::min<std::size_t>(threads, groups.size()));
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) {
    pool.emplace_back([&, w] {
      for (std::size_t g = w; g < groups.size(); g += workers) {
        run_group(groups[g], items, receipts);
      }
    });
  }
  for (std::thread& worker : pool) worker.join();
  return receipts;
}

}  // namespace tlc::core
