// High-level TLC session API.
//
// The library surface a downstream integrator uses: one `TlcSession`
// per (edge vendor, operator) relationship and direction of billing. It
// owns the cycle sequence (consistent T via the agreed cycle length),
// wraps the per-cycle signed negotiation, archives each PoC, and hands
// you the numbers. Transport is a callback — bytes in, bytes out — so
// it runs over anything from an in-process queue to a real socket.
//
// Typical flow per cycle (either party):
//   session.begin_cycle(measured_view);      // after the cycle ends
//   session.start();                          // initiator only
//   ... shuttle bytes via set_send / receive ...
//   if (session.cycle_complete()) session.finish_cycle();
#pragma once

#include <memory>
#include <optional>

#include "core/poc_store.hpp"
#include "core/protocol.hpp"
#include "core/strategy.hpp"

namespace tlc::core {

struct SessionConfig {
  PartyRole role = PartyRole::Operator;
  crypto::RsaKeyPair own_keys;
  crypto::RsaPublicKey peer_key;
  /// Agreed plan parameters (setup step 1 of §5.3.1).
  double c = 0.5;
  SimTime cycle_length = kHour;
  SimTime first_cycle_start = 0;
  int max_rounds = 64;
  double crypto_time_scale = 1.0;
  /// Telemetry clock for crypto_seconds(); see EndpointConfig.
  util::WallClock crypto_clock;
  /// Passed through to EndpointConfig::tolerate_faults — required when
  /// the session runs over a lossy transport (§8).
  bool tolerate_faults = false;
};

/// Summary of a settled cycle.
struct CycleReceipt {
  PlanRef plan;
  std::uint64_t charged = 0;
  int rounds = 0;
};

class TlcSession {
 public:
  using SendFn = ProtocolEndpoint::SendFn;

  /// `strategy` decides claims/acceptance for every cycle (HonestStrategy
  /// or OptimalStrategy for well-behaved parties).
  TlcSession(SessionConfig config, std::unique_ptr<Strategy> strategy,
             Rng rng);

  /// Outgoing-message sink; must be set before negotiating.
  void set_send(SendFn send);

  /// The plan of the cycle currently being (or about to be) settled.
  [[nodiscard]] PlanRef current_plan() const;

  /// Arms the negotiation for the current cycle with this party's
  /// measured usage. Fails if a negotiation is already in flight.
  [[nodiscard]] Status begin_cycle(const UsageView& measured);

  /// Initiator entry point: sends the first CDR (call after
  /// begin_cycle; exactly one party initiates).
  [[nodiscard]] Status start();

  /// Feeds a message from the peer.
  [[nodiscard]] Status receive(const Bytes& wire);

  [[nodiscard]] bool negotiating() const { return endpoint_ != nullptr; }
  [[nodiscard]] bool cycle_complete() const {
    return endpoint_ && endpoint_->done();
  }
  [[nodiscard]] bool cycle_failed() const {
    return endpoint_ && endpoint_->failed();
  }

  /// Archives the PoC, records the receipt, advances to the next cycle.
  /// Fails unless cycle_complete().
  [[nodiscard]] Expected<CycleReceipt> finish_cycle();

  /// Abandons a failed negotiation without advancing the cycle (the
  /// parties retry; §5.1: neither benefits from stalling).
  void abort_cycle();

  /// Gives up on the current cycle and moves on to the next one —
  /// graceful degradation after the transport retry budget is spent:
  /// the cycle settles via the operator's unilateral legacy CDR bill
  /// instead, so the plan window must still advance.
  void skip_cycle();

  /// Tamper/duplicate counters of the in-flight negotiation (0 when
  /// none is running).
  [[nodiscard]] int tamper_suspected() const {
    return endpoint_ ? endpoint_->tamper_suspected() : 0;
  }
  [[nodiscard]] int duplicates_ignored() const {
    return endpoint_ ? endpoint_->duplicates_ignored() : 0;
  }
  [[nodiscard]] std::string failure_reason() const {
    return endpoint_ ? endpoint_->failure_reason() : std::string{};
  }
  [[nodiscard]] int cycle_index() const { return cycle_index_; }

  [[nodiscard]] const PocStore& receipts() const { return store_; }
  [[nodiscard]] int completed_cycles() const { return completed_; }
  [[nodiscard]] const std::optional<CycleReceipt>& last_receipt() const {
    return last_receipt_;
  }
  /// Accumulated crypto time across all cycles (Fig 17 accounting).
  [[nodiscard]] double crypto_seconds() const { return crypto_seconds_; }

 private:
  SessionConfig config_;
  std::unique_ptr<Strategy> strategy_;
  Rng rng_;
  SendFn send_;
  std::unique_ptr<ProtocolEndpoint> endpoint_;
  PocStore store_;
  int cycle_index_ = 0;
  int completed_ = 0;
  double crypto_seconds_ = 0.0;
  std::optional<CycleReceipt> last_receipt_;
};

}  // namespace tlc::core
