#include "core/generic.hpp"

#include "charging/plan.hpp"

namespace tlc::core {

GenericDownlinkOutcome generic_downlink_charge(std::uint64_t internet_sent,
                                               std::uint64_t core_received,
                                               std::uint64_t device_received,
                                               double c) {
  GenericDownlinkOutcome out;
  out.charged = charging::charged_volume(internet_sent, device_received, c);
  out.ideal = charging::charged_volume(core_received, device_received, c);
  out.overcharge = out.charged >= out.ideal ? out.charged - out.ideal : 0;
  // c · (x̂e′ − x̂e), computed the same way the charges are (rounded).
  const std::uint64_t internet_loss =
      internet_sent >= core_received ? internet_sent - core_received : 0;
  out.bound = charging::charged_volume(internet_loss, 0, c);
  return out;
}

}  // namespace tlc::core
