#include "core/strategy.hpp"

#include <algorithm>
#include <cmath>

namespace tlc::core {
namespace {

/// Opponent-claim plausibility (the §4 "cross-check"): the edge rejects
/// an operator claim above its own sent volume; the operator rejects an
/// edge claim below its own received volume. Tolerance absorbs honest
/// measurement error.
bool cross_check_passes(const RoundContext& ctx,
                        std::uint64_t opponent_claim) {
  if (ctx.role == PartyRole::EdgeVendor) {
    const double ceiling = static_cast<double>(ctx.view.sent_estimate) *
                           (1.0 + kCrossCheckTolerance);
    return static_cast<double>(opponent_claim) <= ceiling;
  }
  const double floor = static_cast<double>(ctx.view.received_estimate) *
                       (1.0 - kCrossCheckTolerance);
  return static_cast<double>(opponent_claim) >= floor;
}

}  // namespace

std::uint64_t clamp_claim(std::uint64_t desired, const RoundContext& ctx) {
  return std::clamp(desired, ctx.lower_bound, ctx.upper_bound);
}

// --- Honest -----------------------------------------------------------

std::uint64_t HonestStrategy::claim(const RoundContext& ctx) {
  const std::uint64_t truthful = ctx.role == PartyRole::EdgeVendor
                                     ? ctx.view.sent_estimate
                                     : ctx.view.received_estimate;
  return clamp_claim(truthful, ctx);
}

bool HonestStrategy::accept(const RoundContext& ctx,
                            std::uint64_t /*own_claim*/,
                            std::uint64_t opponent_claim) {
  return cross_check_passes(ctx, opponent_claim);
}

// --- Optimal (minimax / maximin, Theorems 3-4) -------------------------

std::uint64_t OptimalStrategy::claim(const RoundContext& ctx) {
  // Edge minimax: claim xe = x̂o (its estimate of the received volume).
  // Operator maximin: claim xo = x̂e (its estimate of the sent volume).
  const std::uint64_t optimal = ctx.role == PartyRole::EdgeVendor
                                    ? ctx.view.received_estimate
                                    : ctx.view.sent_estimate;
  return clamp_claim(optimal, ctx);
}

bool OptimalStrategy::accept(const RoundContext& ctx,
                             std::uint64_t /*own_claim*/,
                             std::uint64_t opponent_claim) {
  // A rational party accepts any claim that survives the cross-check:
  // by Theorem 2 the final charge is then bounded by [x̂o, x̂e], and by
  // Theorem 3 no further rounds can improve its outcome.
  return cross_check_passes(ctx, opponent_claim);
}

// --- Random selfish (TLC-random) ---------------------------------------

RandomSelfishStrategy::RandomSelfishStrategy(Rng rng, double accept_tolerance)
    : rng_(rng), accept_tolerance_(accept_tolerance) {}

std::uint64_t RandomSelfishStrategy::claim(const RoundContext& ctx) {
  // Plausible window: [x̂o, x̂e] as this party measures it, intersected
  // with the negotiation bounds.
  const std::uint64_t lo =
      std::max(ctx.lower_bound, ctx.view.received_estimate);
  const std::uint64_t hi = std::min(ctx.upper_bound, ctx.view.sent_estimate);
  if (lo >= hi) return clamp_claim(lo, ctx);
  const std::uint64_t span = hi - lo;
  return lo + rng_.uniform_u64(span + 1);
}

bool RandomSelfishStrategy::accept(const RoundContext& ctx,
                                   std::uint64_t own_claim,
                                   std::uint64_t opponent_claim) {
  if (!cross_check_passes(ctx, opponent_claim)) return false;
  // Settle once the claims are close — a selfish party that does not
  // know the optimal strategy keeps haggling while it believes the
  // window can still move in its favour (the Fig 16b multi-round
  // behaviour). The tolerance widens with each round: §5.1 shows
  // neither party benefits from prolonging the negotiation (no payment
  // / no service until it ends), so persistent measurement
  // disagreement is eventually split rather than deadlocked.
  const double tolerance =
      accept_tolerance_ * (1.0 + 0.75 * static_cast<double>(ctx.round));
  const double hi =
      static_cast<double>(std::max<std::uint64_t>(
          {own_claim, opponent_claim, 1}));
  const double distance =
      std::abs(static_cast<double>(own_claim) -
               static_cast<double>(opponent_claim)) /
      hi;
  return distance <= tolerance;
}

// --- Misbehaving strategies --------------------------------------------

std::uint64_t RejectAllStrategy::claim(const RoundContext& ctx) {
  const std::uint64_t ideal = ctx.role == PartyRole::EdgeVendor
                                  ? ctx.view.received_estimate
                                  : ctx.view.sent_estimate;
  return clamp_claim(ideal, ctx);
}

bool RejectAllStrategy::accept(const RoundContext& /*ctx*/,
                               std::uint64_t /*own_claim*/,
                               std::uint64_t /*opponent_claim*/) {
  return false;
}

std::uint64_t GreedyOverclaimStrategy::claim(const RoundContext& ctx) {
  const double base = ctx.role == PartyRole::Operator
                          ? static_cast<double>(ctx.view.sent_estimate)
                          : static_cast<double>(ctx.view.received_estimate);
  const double scaled = ctx.role == PartyRole::Operator ? base * factor_
                                                        : base / factor_;
  // Deliberately NOT clamped: a greedy party ignores the line-12
  // constraint; the engine flags the violation.
  return static_cast<std::uint64_t>(std::llround(scaled));
}

bool GreedyOverclaimStrategy::accept(const RoundContext& ctx,
                                     std::uint64_t own_claim,
                                     std::uint64_t opponent_claim) {
  // Accepts only outcomes at least as good as its inflated claim.
  return ctx.role == PartyRole::Operator ? opponent_claim >= own_claim
                                         : opponent_claim <= own_claim;
}

}  // namespace tlc::core
