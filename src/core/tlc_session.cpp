#include "core/tlc_session.hpp"

namespace tlc::core {

TlcSession::TlcSession(SessionConfig config,
                       std::unique_ptr<Strategy> strategy, Rng rng)
    : config_(std::move(config)), strategy_(std::move(strategy)), rng_(rng) {}

void TlcSession::set_send(SendFn send) {
  send_ = std::move(send);
  if (endpoint_) endpoint_->set_send(send_);
}

PlanRef TlcSession::current_plan() const {
  PlanRef plan;
  plan.t_start = config_.first_cycle_start +
                 static_cast<SimTime>(cycle_index_) * config_.cycle_length;
  plan.t_end = plan.t_start + config_.cycle_length;
  plan.c = config_.c;
  return plan;
}

Status TlcSession::begin_cycle(const UsageView& measured) {
  if (endpoint_ && !endpoint_->done() && !endpoint_->failed()) {
    return Err("session: a negotiation is already in flight");
  }
  EndpointConfig endpoint_config;
  endpoint_config.role = config_.role;
  endpoint_config.own_private = config_.own_keys.private_key;
  endpoint_config.own_public = config_.own_keys.public_key;
  endpoint_config.peer_public = config_.peer_key;
  endpoint_config.plan = current_plan();
  endpoint_config.view = measured;
  endpoint_config.max_rounds = config_.max_rounds;
  endpoint_config.crypto_time_scale = config_.crypto_time_scale;
  endpoint_config.crypto_clock = config_.crypto_clock;
  endpoint_config.tolerate_faults = config_.tolerate_faults;
  endpoint_ = std::make_unique<ProtocolEndpoint>(endpoint_config, *strategy_,
                                                 rng_.fork());
  endpoint_->set_send(send_);
  return Status::Ok();
}

Status TlcSession::start() {
  if (!endpoint_) return Err("session: begin_cycle first");
  if (!send_) return Err("session: no transport (set_send first)");
  endpoint_->start();
  return Status::Ok();
}

Status TlcSession::receive(const Bytes& wire) {
  if (!endpoint_) return Err("session: begin_cycle first");
  return endpoint_->receive(wire);
}

Expected<CycleReceipt> TlcSession::finish_cycle() {
  if (!endpoint_) return Err("session: nothing to finish");
  if (endpoint_->failed()) return Err("session: negotiation failed");
  if (!endpoint_->done()) return Err("session: negotiation still running");

  CycleReceipt receipt;
  receipt.plan = current_plan();
  receipt.charged = endpoint_->negotiated();
  receipt.rounds = endpoint_->rounds();
  store_.add(receipt.plan, encode_signed_poc(*endpoint_->poc()));
  crypto_seconds_ += endpoint_->crypto_seconds();
  last_receipt_ = receipt;
  endpoint_.reset();
  ++cycle_index_;
  ++completed_;
  return receipt;
}

void TlcSession::abort_cycle() {
  if (endpoint_) crypto_seconds_ += endpoint_->crypto_seconds();
  endpoint_.reset();
}

void TlcSession::skip_cycle() {
  if (endpoint_) crypto_seconds_ += endpoint_->crypto_seconds();
  endpoint_.reset();
  ++cycle_index_;
}

}  // namespace tlc::core
