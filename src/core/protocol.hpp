// The TLC negotiation protocol (Figure 7): message-driven state
// machines that realize Algorithm 1 with signed CDR/CDA/PoC messages.
//
// Either party may initiate. A party that accepts the peer's CDR
// answers with a CDA (echoing the signed CDR it accepts); the peer
// accepting the CDA constructs and returns the PoC. Any rejection is
// expressed implicitly by sending a fresh CDR, shrinking the claim
// window exactly as Algorithm 1 line 12 prescribes.
//
// The endpoint also keeps the accounting the evaluation needs: rounds
// (Fig 16b), bytes and message counts (Fig 17 table), and wall-clock
// time spent in RSA operations scaled by the device profile (Fig 17
// CDFs).
#pragma once

#include <functional>
#include <optional>
#include <string>

#include "core/messages.hpp"
#include "core/strategy.hpp"
#include "core/types.hpp"
#include "crypto/rsa.hpp"
#include "util/rng.hpp"
#include "util/walltime.hpp"

namespace tlc::core {

enum class EndpointState : std::uint8_t {
  Null,     // nothing sent yet
  SentCdr,  // awaiting the peer's CDA or counter-CDR
  SentCda,  // accepted peer's claim, awaiting PoC or counter-CDR
  Done,     // PoC constructed or received
  Failed,   // protocol violation or round cap
};

[[nodiscard]] const char* endpoint_state_name(EndpointState state);

struct EndpointConfig {
  PartyRole role = PartyRole::Operator;
  crypto::RsaPrivateKey own_private;
  crypto::RsaPublicKey own_public;
  crypto::RsaPublicKey peer_public;
  PlanRef plan;
  UsageView view;
  int max_rounds = 64;
  /// Multiplier applied to measured crypto time (device profiles,
  /// Fig 17: Pixel 2 XL is ~4.8x the Z840).
  double crypto_time_scale = 1.0;
  /// Clock backing the crypto-latency telemetry (crypto_seconds()).
  /// Telemetry only — it never feeds settlement bytes, nonces or RNG
  /// state, so replay stays bit-identical whatever it returns. Defaults
  /// to the sanctioned monotonic wall clock; tests may inject a
  /// deterministic counter.
  util::WallClock crypto_clock;
  /// Transport-hardened mode (§8): messages that fail decode, signature
  /// verification or cross-layer consistency are *dropped* (counted in
  /// tamper_suspected()) instead of aborting the negotiation — over a
  /// lossy link a corrupted copy must not kill a cycle a retransmission
  /// can still save. Protocol-fatal conditions (round cap) still abort.
  bool tolerate_faults = false;
};

class ProtocolEndpoint {
 public:
  using SendFn = std::function<void(const Bytes&)>;

  /// `strategy` must outlive the endpoint.
  ProtocolEndpoint(EndpointConfig config, Strategy& strategy, Rng rng);

  void set_send(SendFn send) { send_ = std::move(send); }

  /// Initiator entry point: claims and sends the first CDR.
  void start();

  /// Feeds one wire message from the peer. Returns an error Status on
  /// protocol violations (the endpoint transitions to Failed for
  /// unrecoverable ones).
  [[nodiscard]] Status receive(const Bytes& wire);

  [[nodiscard]] EndpointState state() const { return state_; }
  [[nodiscard]] bool done() const { return state_ == EndpointState::Done; }
  [[nodiscard]] bool failed() const { return state_ == EndpointState::Failed; }

  /// The agreed charge x (valid when done()).
  [[nodiscard]] std::uint64_t negotiated() const { return negotiated_; }
  /// The proof of charging (present when done(); both the constructor
  /// and the receiver hold a copy — §5.3.2 "locally store it").
  [[nodiscard]] const std::optional<SignedPoc>& poc() const { return poc_; }

  /// Claims this endpoint has issued (= negotiation rounds from this
  /// party's perspective; 1 for TLC-optimal).
  [[nodiscard]] int rounds() const { return claims_made_; }
  [[nodiscard]] int bound_violations() const { return bound_violations_; }

  /// Messages rejected as tampered/corrupt (bad decode, bad signature,
  /// inconsistent plan or mismatched echo). In tolerate_faults mode the
  /// endpoint drops them and keeps negotiating.
  [[nodiscard]] int tamper_suspected() const { return tamper_suspected_; }
  /// Exact duplicates of already-processed messages, ignored without
  /// advancing the state machine (idempotent receive).
  [[nodiscard]] int duplicates_ignored() const { return duplicates_ignored_; }
  /// Reason recorded by the transition to Failed (empty otherwise).
  [[nodiscard]] const std::string& failure_reason() const {
    return failure_reason_;
  }

  // --- Fig 17 accounting ---
  [[nodiscard]] double crypto_seconds() const { return crypto_seconds_; }
  [[nodiscard]] std::uint64_t bytes_sent() const { return bytes_sent_; }
  [[nodiscard]] int messages_sent() const { return messages_sent_; }
  [[nodiscard]] std::size_t last_cdr_size() const { return last_cdr_size_; }
  [[nodiscard]] std::size_t last_cda_size() const { return last_cda_size_; }
  [[nodiscard]] std::size_t last_poc_size() const { return last_poc_size_; }

 private:
  [[nodiscard]] RoundContext make_context() const;
  void send_wire(const Bytes& wire);
  void send_cdr();
  [[nodiscard]] Status handle_cdr(const Bytes& wire);
  [[nodiscard]] Status handle_cda(const Bytes& wire);
  [[nodiscard]] Status handle_poc(const Bytes& wire);
  void fail(const std::string& reason);
  /// Rejects a tampered/corrupt message: counts it, aborts in strict
  /// mode, merely drops it in tolerate_faults mode.
  [[nodiscard]] Status reject_tamper(const std::string& reason);
  [[nodiscard]] bool is_duplicate(const Bytes& wire) const;
  void mark_processed(const Bytes& wire);
  /// Contracts [lower_, upper_] from a claim pair (line 12).
  void update_bounds(std::uint64_t a, std::uint64_t b);

  // Timed crypto wrappers (telemetry clock; see EndpointConfig).
  [[nodiscard]] Bytes timed_sign(const Bytes& message);
  [[nodiscard]] Status timed_verify(const Bytes& message,
                                    const Bytes& signature);
  void record_crypto_nanos(std::uint64_t elapsed);

  EndpointConfig config_;
  Strategy& strategy_;
  Rng rng_;
  SendFn send_;

  EndpointState state_ = EndpointState::Null;
  std::uint64_t lower_ = 0;
  std::uint64_t upper_ = kUnbounded;
  int current_round_ = 0;  // seq carries the round number on the wire
  std::uint64_t own_claim_ = 0;
  std::uint64_t own_nonce_ = 0;
  std::uint64_t peer_nonce_ = 0;
  Bytes last_sent_cdr_wire_;
  Bytes last_sent_cda_wire_;
  std::uint64_t negotiated_ = 0;
  std::optional<SignedPoc> poc_;

  int claims_made_ = 0;
  int bound_violations_ = 0;
  int tamper_suspected_ = 0;
  int duplicates_ignored_ = 0;
  std::string failure_reason_;
  /// Exact wires already accepted, newest last (bounded; duplicates of
  /// these are ignored rather than re-dispatched).
  std::vector<Bytes> processed_wires_;
  double crypto_seconds_ = 0.0;
  std::uint64_t bytes_sent_ = 0;
  int messages_sent_ = 0;
  std::size_t last_cdr_size_ = 0;
  std::size_t last_cda_size_ = 0;
  std::size_t last_poc_size_ = 0;
};

}  // namespace tlc::core
