#include "core/negotiation.hpp"

#include <algorithm>

namespace tlc::core {

NegotiationResult negotiate(Strategy& edge_strategy,
                            const UsageView& edge_view,
                            Strategy& operator_strategy,
                            const UsageView& operator_view,
                            const NegotiationConfig& config) {
  NegotiationResult result;

  std::uint64_t lower = 0;          // xL
  std::uint64_t upper = kUnbounded; // xU

  for (int round = 0; round < config.max_rounds; ++round) {
    RoundContext edge_ctx{PartyRole::EdgeVendor, edge_view, lower, upper,
                          round, config.c};
    RoundContext op_ctx{PartyRole::Operator, operator_view, lower, upper,
                        round, config.c};

    // Line 4: exchange claims (order does not matter).
    const std::uint64_t edge_claim = edge_strategy.claim(edge_ctx);
    const std::uint64_t op_claim = operator_strategy.claim(op_ctx);
    ++result.rounds;

    // Line-12 constraint check: the previous round's bounds are public,
    // so either party detects an out-of-window claim and rejects it.
    const bool edge_violates = edge_claim < lower || edge_claim > upper;
    const bool op_violates = op_claim < lower || op_claim > upper;
    if (edge_violates) ++result.bound_violations;
    if (op_violates) ++result.bound_violations;

    // Line 6: exchange decisions.
    const bool edge_accepts =
        !op_violates && edge_strategy.accept(edge_ctx, edge_claim, op_claim);
    const bool op_accepts =
        !edge_violates &&
        operator_strategy.accept(op_ctx, op_claim, edge_claim);

    result.history.push_back(
        RoundRecord{edge_claim, op_claim, edge_accepts, op_accepts});
    result.final_edge_claim = edge_claim;
    result.final_operator_claim = op_claim;

    if (edge_accepts && op_accepts) {
      // Lines 7-9: settle.
      result.completed = true;
      result.charged = charging::charged_volume(edge_claim, op_claim,
                                                config.c);
      return result;
    }

    // Line 12: contract the bounds — but only from claims that honored
    // the constraint, so a violator cannot widen the window.
    const std::uint64_t lo_claim =
        std::min(edge_violates ? op_claim : edge_claim,
                 op_violates ? edge_claim : op_claim);
    const std::uint64_t hi_claim =
        std::max(edge_violates ? op_claim : edge_claim,
                 op_violates ? edge_claim : op_claim);
    lower = std::max(lower, lo_claim);
    upper = std::min(upper, hi_claim);

    // A fully pinned window means claims can no longer move; settle —
    // but never on the strength of a round with a constraint violation
    // (the violator must not be able to force convergence).
    if (!edge_violates && !op_violates &&
        upper - lower <= config.convergence_epsilon) {
      // Claims can no longer move: settle at the pinned window.
      result.completed = true;
      result.charged = charging::charged_volume(lower, upper, config.c);
      ++result.rounds;
      return result;
    }
  }
  return result;  // round cap hit; negotiation failed
}

}  // namespace tlc::core
