// §8 "Multi-access edge": charging across multiple operators.
//
// Some edge scenarios (V2X, coverage-critical deployments) bond several
// operators' 4G/5G networks. TLC extends naturally: the edge vendor
// runs one independent session per operator, classifies its traffic per
// operator when metering (each operator's tamper-resilient monitor only
// sees its own network), and negotiates/archives a PoC per operator per
// cycle. This registry owns those per-operator sessions and aggregates
// the results.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/tlc_session.hpp"

namespace tlc::core {

class MultiOperatorCharging {
 public:
  /// Registers an operator relationship. `name` must be unique.
  [[nodiscard]] Status add_operator(const std::string& name, SessionConfig config,
                      std::unique_ptr<Strategy> strategy, Rng rng);

  [[nodiscard]] bool has_operator(const std::string& name) const {
    return sessions_.find(name) != sessions_.end();
  }
  [[nodiscard]] std::size_t operator_count() const {
    return sessions_.size();
  }
  [[nodiscard]] std::vector<std::string> operator_names() const;

  /// The per-operator session (begin_cycle / transport wiring happen
  /// against it directly).
  [[nodiscard]] Expected<TlcSession*> session(const std::string& name);

  /// Sum of negotiated charges across all operators' completed cycles.
  [[nodiscard]] std::uint64_t total_charged() const;
  /// Completed cycles across operators.
  [[nodiscard]] int total_cycles() const;

 private:
  std::map<std::string, std::unique_ptr<TlcSession>> sessions_;
  std::map<std::string, std::uint64_t> charged_;
};

}  // namespace tlc::core
