// Shared types of the TLC negotiation (Table 1 notation).
#pragma once

#include <cstdint>
#include <limits>

#include "util/simtime.hpp"

namespace tlc::core {

enum class PartyRole : std::uint8_t { Operator = 0, EdgeVendor = 1 };

[[nodiscard]] constexpr const char* role_name(PartyRole role) {
  return role == PartyRole::Operator ? "operator" : "edge-vendor";
}

[[nodiscard]] constexpr PartyRole other_party(PartyRole role) {
  return role == PartyRole::Operator ? PartyRole::EdgeVendor
                                     : PartyRole::Operator;
}

/// The public data-plan parameters every message pins: the charging
/// cycle T = (T_start, T_end) and the lost-data weight c (§5.3.1).
struct PlanRef {
  SimTime t_start = 0;
  SimTime t_end = 0;
  double c = 0.5;

  [[nodiscard]] bool operator==(const PlanRef& o) const = default;
};

/// One party's measurement of the cycle: its estimates of the
/// ground-truth x̂e (bytes the edge endpoint sent) and x̂o (bytes the
/// receiving endpoint got). Which monitors feed these depends on the
/// party and the direction (§5.4):
///   edge vendor:  sent from its own sender app; received from its own
///                 receiving endpoint;
///   operator:     uplink received from the gateway; downlink sent from
///                 the gateway; the other half from RRC COUNTER CHECK.
struct UsageView {
  std::uint64_t sent_estimate = 0;      // estimate of x̂e
  std::uint64_t received_estimate = 0;  // estimate of x̂o
};

/// Unbounded upper claim sentinel (the xU = ∞ of Algorithm 1 line 1).
inline constexpr std::uint64_t kUnbounded =
    std::numeric_limits<std::uint64_t>::max();

}  // namespace tlc::core
