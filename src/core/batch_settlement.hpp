// Batch TLC settlement over many (UE, cycle) pairs.
//
// The fleet case of §5: one edge vendor and one operator settle every
// subscriber's cycles, not a single device's. Running a fresh
// `TlcSession` pair per (UE, cycle) would re-run RSA keygen — by far
// the most expensive step (Fig 17) — tens of times per cycle, so the
// batch API amortizes it two ways:
//
//  * `RsaKeyCache` precomputes a small set of key pairs once,
//    deterministically from a seed, and hands them out by UE slot
//    (reads are const and thread-safe);
//  * one reusable `TlcSession` pair per UE settles that UE's cycles in
//    sequence, exactly as the single-UE API would.
//
// Distinct UEs share no mutable state, so `settle()` can fan UE groups
// out over worker threads — receipts are bit-identical for every thread
// count, and (single-threaded) the cross-session message pump can be
// reordered arbitrarily between sessions without changing any receipt.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/tlc_session.hpp"
#include "crypto/rsa.hpp"

namespace tlc::core {

/// Deterministic pool of precomputed RSA key pairs. Key slot `i` is a
/// pure function of (seed, i): growing or shrinking the cache never
/// changes the keys existing slots return.
class RsaKeyCache {
 public:
  RsaKeyCache(std::size_t modulus_bits, std::size_t slots,
              std::uint64_t seed);

  [[nodiscard]] std::size_t slots() const { return edge_keys_.size(); }
  [[nodiscard]] std::size_t modulus_bits() const { return modulus_bits_; }

  /// Keys for a UE relationship; `ue_id` maps onto a slot by modulo.
  [[nodiscard]] const crypto::RsaKeyPair& edge_key(std::uint64_t ue_id) const {
    return edge_keys_[static_cast<std::size_t>(ue_id % edge_keys_.size())];
  }
  [[nodiscard]] const crypto::RsaKeyPair& operator_key(
      std::uint64_t ue_id) const {
    return op_keys_[static_cast<std::size_t>(ue_id % op_keys_.size())];
  }

 private:
  std::size_t modulus_bits_;
  std::vector<crypto::RsaKeyPair> edge_keys_;
  std::vector<crypto::RsaKeyPair> op_keys_;
};

/// One (UE, cycle) settlement input. Items of one UE are settled in
/// input order through a single reused session pair; the n-th item of a
/// UE is its cycle n.
struct SettlementItem {
  std::uint64_t ue_id = 0;
  UsageView edge_view;
  UsageView op_view;
};

/// How a (UE, cycle) settlement ended (§8 per-cycle outcome taxonomy).
enum class SettleOutcome : std::uint8_t {
  Converged,       // negotiated on the first delivery of every message
  Retried,         // negotiated, but only after >= 1 retransmission
  Degraded,        // retry budget / deadline spent; legacy CDR bill
  RejectedTamper,  // corruption or forgery detected; legacy CDR bill
};

[[nodiscard]] const char* settle_outcome_name(SettleOutcome outcome);

struct SettlementReceipt {
  std::uint64_t ue_id = 0;
  std::uint32_t cycle = 0;  // per-UE cycle index
  bool completed = false;
  std::uint64_t charged = 0;
  int rounds = 0;
  /// The archived PoC (identical on both sides; the operator's copy).
  Bytes poc_wire;
  SettleOutcome outcome = SettleOutcome::Degraded;
  /// Retransmissions spent on this cycle (lossy transport only).
  int retransmits = 0;
  /// Why the cycle did not converge (empty when it did).
  std::string failure_reason;
};

struct BatchConfig {
  double c = 0.5;
  SimTime cycle_length = kHour;
  SimTime first_cycle_start = 0;
  int max_rounds = 64;
  /// Root for per-session RNG derivation (nonces). Receipts are a pure
  /// function of (items, keys, salt).
  std::uint64_t rng_salt = 0x5eedfa11ULL;
};

/// Builds the reusable per-UE session one side of a batch settlement
/// runs. Key slots and the session RNG stream (salt, 2*ue + role) are
/// pure functions of their inputs, so any driver — the in-process
/// BatchSettler below or the lossy-transport settler — produces
/// byte-identical PoCs for the same inputs.
[[nodiscard]] std::unique_ptr<TlcSession> make_batch_session(
    const BatchConfig& config, const RsaKeyCache& keys, std::uint64_t ue_id,
    PartyRole role, bool tolerate_faults = false);

class BatchSettler {
 public:
  /// Test hook: permutes which session delivers its next pending
  /// message first during the single-threaded pump. Receives the
  /// currently-pending UE group order; per-session FIFO is preserved
  /// regardless of the permutation.
  using InterleaveFn = std::function<void(std::vector<std::size_t>& order)>;

  /// `keys` must outlive the settler.
  BatchSettler(BatchConfig config, const RsaKeyCache& keys);

  void set_interleave(InterleaveFn interleave) {
    interleave_ = std::move(interleave);
  }

  /// Settles every item. `threads` > 1 distributes UE groups over that
  /// many workers (each group stays sequential internally). Receipts
  /// come back in input order and are identical for every thread count
  /// and every cross-session interleaving.
  [[nodiscard]] std::vector<SettlementReceipt> settle(
      const std::vector<SettlementItem>& items, unsigned threads = 1) const;

 private:
  BatchConfig config_;
  const RsaKeyCache& keys_;
  InterleaveFn interleave_;
};

}  // namespace tlc::core
