// Public verification of Proofs-of-Charging (Algorithm 2, §5.3.3).
//
// An independent third party (FCC, a court, an MVNO — §5.3.4) receives
// (PoC, T, c, K+e, K+o) and checks, without auditing any data transfer:
//   1. both nested signatures (operator's and edge vendor's);
//   2. data-plan consistency across every layer (Algorithm 2 line 2);
//   3. nonce/sequence coherence against replays (line 5);
//   4. that the charged volume x replays Algorithm 1 on the embedded
//      claims (lines 8-9).
//
// `PublicVerifier` adds a replay cache across submissions and the
// throughput accounting behind the paper's "230K PoCs/hour on one
// Z840" scalability claim.
#pragma once

#include <cstdint>
#include <set>
#include <string>

#include "core/messages.hpp"
#include "core/types.hpp"
#include "crypto/rsa.hpp"
#include "util/expected.hpp"

namespace tlc::core {

/// Everything Algorithm 2 takes as input.
struct VerificationRequest {
  Bytes poc_wire;  // encoded SignedPoc from either party
  PlanRef plan;    // the publicly agreed (T, c)
  crypto::RsaPublicKey edge_key;
  crypto::RsaPublicKey operator_key;
};

/// Decoded facts a successful verification establishes.
struct VerifiedCharge {
  std::uint64_t charged = 0;        // x
  std::uint64_t edge_claim = 0;     // xe
  std::uint64_t operator_claim = 0; // xo
  std::uint64_t nonce_edge = 0;
  std::uint64_t nonce_operator = 0;
  PartyRole constructed_by = PartyRole::Operator;
};

/// Stateless Algorithm 2. Returns the verified facts or a diagnostic
/// error naming the failed check.
[[nodiscard]] Expected<VerifiedCharge> verify_poc(
    const VerificationRequest& request);

/// Stateful verifier front end: Algorithm 2 plus a cross-submission
/// replay cache keyed by (nonce_e, nonce_o, cycle).
class PublicVerifier {
 public:
  [[nodiscard]] Expected<VerifiedCharge> verify(
      const VerificationRequest& request);

  [[nodiscard]] std::uint64_t accepted() const { return accepted_; }
  [[nodiscard]] std::uint64_t rejected() const { return rejected_; }
  [[nodiscard]] std::uint64_t replays_blocked() const { return replays_; }

 private:
  struct ReplayKey {
    std::uint64_t nonce_edge;
    std::uint64_t nonce_operator;
    SimTime cycle_start;
    [[nodiscard]] auto operator<=>(const ReplayKey&) const = default;
  };

  std::set<ReplayKey> seen_;
  std::uint64_t accepted_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t replays_ = 0;
};

}  // namespace tlc::core
