// TLC protocol messages (§5.3.2):
//
//   CDRe/o = { T, c, s, n, x }K⁻          — signed charging claim
//   CDAe/o = { T, c, s, n, x, CDR_peer }K⁻ — acceptance echoing the
//                                            peer's full signed CDR
//   PoC    = { T, c, x, CDA_peer }K⁻ ‖ ne ‖ no — the proof of charging,
//            signed by the party that received the CDA; nesting means
//            the PoC carries both parties' signatures.
//
// Encodings are deterministic (util/serde) because signatures cover the
// encoded body. decode_* functions never trust lengths from the wire
// beyond buffer bounds; verification is a separate explicit step.
#pragma once

#include <cstdint>

#include "core/types.hpp"
#include "crypto/rsa.hpp"
#include "util/bytes.hpp"
#include "util/expected.hpp"

namespace tlc::core {

enum class MessageType : std::uint8_t { Cdr = 1, Cda = 2, Poc = 3 };

/// Reads the leading type byte without decoding the rest.
[[nodiscard]] Expected<MessageType> peek_type(const Bytes& wire);

// --- CDR ----------------------------------------------------------------

struct CdrMessage {
  PlanRef plan;
  PartyRole sender = PartyRole::Operator;
  std::uint64_t seq = 0;
  std::uint64_t nonce = 0;
  std::uint64_t volume = 0;  // the claim (bytes)

  [[nodiscard]] bool operator==(const CdrMessage& o) const = default;
};

struct SignedCdr {
  CdrMessage body;
  Bytes signature;
};

[[nodiscard]] Bytes encode_cdr_body(const CdrMessage& body);
[[nodiscard]] SignedCdr sign_cdr(const CdrMessage& body,
                                 const crypto::RsaPrivateKey& key);
[[nodiscard]] Bytes encode_signed_cdr(const SignedCdr& cdr);
[[nodiscard]] Expected<SignedCdr> decode_signed_cdr(const Bytes& wire);
[[nodiscard]] Status verify_signed_cdr(const SignedCdr& cdr,
                                       const crypto::RsaPublicKey& key);

// --- CDA ----------------------------------------------------------------

struct CdaMessage {
  PlanRef plan;
  PartyRole sender = PartyRole::Operator;
  std::uint64_t seq = 0;
  std::uint64_t nonce = 0;
  std::uint64_t volume = 0;  // the acceptor's own claim
  Bytes peer_cdr_wire;       // full encoded SignedCdr being accepted

  [[nodiscard]] bool operator==(const CdaMessage& o) const = default;
};

struct SignedCda {
  CdaMessage body;
  Bytes signature;
};

[[nodiscard]] Bytes encode_cda_body(const CdaMessage& body);
[[nodiscard]] SignedCda sign_cda(const CdaMessage& body,
                                 const crypto::RsaPrivateKey& key);
[[nodiscard]] Bytes encode_signed_cda(const SignedCda& cda);
[[nodiscard]] Expected<SignedCda> decode_signed_cda(const Bytes& wire);
[[nodiscard]] Status verify_signed_cda(const SignedCda& cda,
                                       const crypto::RsaPublicKey& key);

// --- PoC ----------------------------------------------------------------

struct PocMessage {
  PlanRef plan;
  PartyRole sender = PartyRole::Operator;  // the party constructing it
  std::uint64_t seq = 0;
  std::uint64_t charged = 0;  // the negotiated x
  Bytes cda_wire;             // full encoded SignedCda it finalizes

  [[nodiscard]] bool operator==(const PocMessage& o) const = default;
};

struct SignedPoc {
  PocMessage body;
  Bytes signature;
  // The "‖ ne ‖ no" trailer: both parties' nonces, carried in clear for
  // the verifier's replay check (Algorithm 2 line 5).
  std::uint64_t nonce_edge = 0;
  std::uint64_t nonce_operator = 0;
};

[[nodiscard]] Bytes encode_poc_body(const PocMessage& body);
[[nodiscard]] SignedPoc sign_poc(const PocMessage& body,
                                 const crypto::RsaPrivateKey& key,
                                 std::uint64_t nonce_edge,
                                 std::uint64_t nonce_operator);
[[nodiscard]] Bytes encode_signed_poc(const SignedPoc& poc);
[[nodiscard]] Expected<SignedPoc> decode_signed_poc(const Bytes& wire);
[[nodiscard]] Status verify_signed_poc(const SignedPoc& poc,
                                       const crypto::RsaPublicKey& key);

}  // namespace tlc::core
