// Negotiation strategies (§5.1, §5.2 and the §7.1 comparison set).
//
// A strategy answers two questions each round of Algorithm 1: what do I
// claim, and do I accept the opponent's claim? The engine supplies the
// current bounds (xL, xU) and the party's own measurements.
//
// Provided strategies:
//  * Honest        — claims its truthful measurement (xe = x̂e or
//                    xo = x̂o); accepts anything that passes the
//                    cross-check.
//  * Optimal       — the minimax/maximin strategy of Theorems 3-4: the
//                    edge claims its estimate of x̂o, the operator its
//                    estimate of x̂e; converges in one round against a
//                    rational or honest opponent ("TLC-optimal").
//  * RandomSelfish — selfish but unaware of the optimal strategy
//                    ("TLC-random"): draws uniformly inside the
//                    plausible window each round, accepting once the
//                    claims are close.
//  * RejectAll     — misbehaving: never accepts (negotiation fails at
//                    the round cap; §5.1 discusses why this only hurts
//                    the misbehaving party).
//  * GreedyOverclaim — a selfish operator that ignores the plausibility
//                    cross-check and claims beyond x̂e; detected and
//                    rejected by the edge every round.
#pragma once

#include <memory>
#include <string>

#include "core/types.hpp"
#include "util/rng.hpp"

namespace tlc::core {

/// Per-round inputs supplied by the negotiation engine.
struct RoundContext {
  PartyRole role = PartyRole::Operator;
  UsageView view;
  std::uint64_t lower_bound = 0;          // xL
  std::uint64_t upper_bound = kUnbounded; // xU
  int round = 0;                          // 0-based
  double c = 0.5;
};

class Strategy {
 public:
  virtual ~Strategy() = default;

  /// The claim to report this round (line 4 of Algorithm 1).
  [[nodiscard]] virtual std::uint64_t claim(const RoundContext& ctx) = 0;

  /// Whether to accept given both claims (line 6 of Algorithm 1).
  [[nodiscard]] virtual bool accept(const RoundContext& ctx,
                                    std::uint64_t own_claim,
                                    std::uint64_t opponent_claim) = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Cross-check tolerance: measurements of the same quantity by the two
/// parties differ by a few percent (Fig 18), so plausibility checks
/// must leave that much slack or honest parties would deadlock.
inline constexpr double kCrossCheckTolerance = 0.08;

class HonestStrategy final : public Strategy {
 public:
  [[nodiscard]] std::uint64_t claim(const RoundContext& ctx) override;
  [[nodiscard]] bool accept(const RoundContext& ctx, std::uint64_t own_claim,
                            std::uint64_t opponent_claim) override;
  [[nodiscard]] std::string name() const override { return "honest"; }
};

class OptimalStrategy final : public Strategy {
 public:
  [[nodiscard]] std::uint64_t claim(const RoundContext& ctx) override;
  [[nodiscard]] bool accept(const RoundContext& ctx, std::uint64_t own_claim,
                            std::uint64_t opponent_claim) override;
  [[nodiscard]] std::string name() const override { return "tlc-optimal"; }
};

class RandomSelfishStrategy final : public Strategy {
 public:
  /// `accept_tolerance` — relative claim distance below which the party
  /// settles (drives the Fig 16b round counts).
  explicit RandomSelfishStrategy(Rng rng, double accept_tolerance = 0.005);

  [[nodiscard]] std::uint64_t claim(const RoundContext& ctx) override;
  [[nodiscard]] bool accept(const RoundContext& ctx, std::uint64_t own_claim,
                            std::uint64_t opponent_claim) override;
  [[nodiscard]] std::string name() const override { return "tlc-random"; }

 private:
  Rng rng_;
  double accept_tolerance_;
};

class RejectAllStrategy final : public Strategy {
 public:
  [[nodiscard]] std::uint64_t claim(const RoundContext& ctx) override;
  [[nodiscard]] bool accept(const RoundContext& ctx, std::uint64_t own_claim,
                            std::uint64_t opponent_claim) override;
  [[nodiscard]] std::string name() const override { return "reject-all"; }
};

class GreedyOverclaimStrategy final : public Strategy {
 public:
  /// Claims `factor` times its estimate of x̂e (factor > 1 exceeds any
  /// defensible volume).
  explicit GreedyOverclaimStrategy(double factor = 1.5) : factor_(factor) {}

  [[nodiscard]] std::uint64_t claim(const RoundContext& ctx) override;
  [[nodiscard]] bool accept(const RoundContext& ctx, std::uint64_t own_claim,
                            std::uint64_t opponent_claim) override;
  [[nodiscard]] std::string name() const override { return "greedy-overclaim"; }

 private:
  double factor_;
};

/// Clamps a desired claim into the open negotiation window; the engine
/// treats out-of-window claims as protocol violations (Algorithm 1
/// line 12 constraint), so compliant strategies clamp.
[[nodiscard]] std::uint64_t clamp_claim(std::uint64_t desired,
                                        const RoundContext& ctx);

}  // namespace tlc::core
