// Appendix D: TLC in generic (non-edge) mobile data charging.
//
// When the server is an arbitrary Internet host rather than an edge
// server co-located with the core, downlink data can be lost between
// the Internet server and the 4G/5G core. The edge's sent-volume report
// then uses x̂e′ (Internet-sent) instead of x̂e (core-received), so the
// user can be over-charged — but Appendix D proves the over-charge is
// bounded by c · (x̂e′ − x̂e), still strictly better than legacy's
// unbounded exposure.
#pragma once

#include <cstdint>

namespace tlc::core {

struct GenericDownlinkOutcome {
  /// x̂′ — what TLC charges with the Internet-side report x̂e′.
  std::uint64_t charged = 0;
  /// x̂ — the ideal charge based on the core-received volume x̂e.
  std::uint64_t ideal = 0;
  /// x̂′ − x̂, the realized over-charge.
  std::uint64_t overcharge = 0;
  /// c · (x̂e′ − x̂e), Appendix D's bound. overcharge == bound always.
  std::uint64_t bound = 0;
};

/// Evaluates the Appendix D scenario.
/// Requires internet_sent >= core_received >= device_received.
[[nodiscard]] GenericDownlinkOutcome generic_downlink_charge(
    std::uint64_t internet_sent,    // x̂e′
    std::uint64_t core_received,    // x̂e
    std::uint64_t device_received,  // x̂o
    double c);

}  // namespace tlc::core
