#include "core/multi_operator.hpp"

namespace tlc::core {

Status MultiOperatorCharging::add_operator(const std::string& name,
                                           SessionConfig config,
                                           std::unique_ptr<Strategy> strategy,
                                           Rng rng) {
  if (sessions_.find(name) != sessions_.end()) {
    return Err("multi-operator: '" + name + "' already registered");
  }
  sessions_[name] = std::make_unique<TlcSession>(std::move(config),
                                                 std::move(strategy), rng);
  return Status::Ok();
}

std::vector<std::string> MultiOperatorCharging::operator_names() const {
  std::vector<std::string> names;
  names.reserve(sessions_.size());
  for (const auto& [name, session] : sessions_) names.push_back(name);
  return names;
}

Expected<TlcSession*> MultiOperatorCharging::session(const std::string& name) {
  auto it = sessions_.find(name);
  if (it == sessions_.end()) {
    return Err("multi-operator: unknown operator '" + name + "'");
  }
  return it->second.get();
}

std::uint64_t MultiOperatorCharging::total_charged() const {
  std::uint64_t total = 0;
  for (const auto& [name, session] : sessions_) {
    for (const PocStore::Entry& entry : session->receipts().entries()) {
      auto poc = decode_signed_poc(entry.poc_wire);
      if (poc) total += poc->body.charged;
    }
  }
  return total;
}

int MultiOperatorCharging::total_cycles() const {
  int total = 0;
  for (const auto& [name, session] : sessions_) {
    total += session->completed_cycles();
  }
  return total;
}

}  // namespace tlc::core
