#include "core/protocol.hpp"

#include <algorithm>

#include "charging/plan.hpp"
#include "util/logging.hpp"

// Sequence-number convention: seq carries the Algorithm-1 round number.
// A CDR claiming in round k has seq = k; the CDA that accepts a round-k
// pair has seq = k (hence the verifier's "se == so" check holds on any
// flow); the PoC finalizing round k has seq = k + 1.

namespace tlc::core {

const char* endpoint_state_name(EndpointState state) {
  switch (state) {
    case EndpointState::Null:
      return "Null";
    case EndpointState::SentCdr:
      return "CDR";
    case EndpointState::SentCda:
      return "CDA";
    case EndpointState::Done:
      return "PoC";
    case EndpointState::Failed:
      return "Failed";
  }
  return "?";
}

ProtocolEndpoint::ProtocolEndpoint(EndpointConfig config, Strategy& strategy,
                                   Rng rng)
    : config_(std::move(config)), strategy_(strategy), rng_(rng) {
  if (!config_.crypto_clock) config_.crypto_clock = util::monotonic_nanos;
  // Endpoints sign/verify on every round: warm the keys' Montgomery
  // contexts up front (no-op when the keys came from rsa_generate or
  // deserialize, which already carry them).
  config_.own_private.precompute();
  config_.own_public.precompute();
  config_.peer_public.precompute();
}

RoundContext ProtocolEndpoint::make_context() const {
  return RoundContext{config_.role, config_.view, lower_,
                      upper_,       claims_made_, config_.plan.c};
}

Bytes ProtocolEndpoint::timed_sign(const Bytes& message) {
  const std::uint64_t start = config_.crypto_clock();
  Bytes signature = crypto::rsa_sign(config_.own_private, message);
  record_crypto_nanos(config_.crypto_clock() - start);
  return signature;
}

Status ProtocolEndpoint::timed_verify(const Bytes& message,
                                      const Bytes& signature) {
  const std::uint64_t start = config_.crypto_clock();
  Status status = crypto::rsa_verify(config_.peer_public, message, signature);
  record_crypto_nanos(config_.crypto_clock() - start);
  return status;
}

void ProtocolEndpoint::record_crypto_nanos(std::uint64_t elapsed) {
  crypto_seconds_ +=
      static_cast<double>(elapsed) * 1e-9 * config_.crypto_time_scale;
}

void ProtocolEndpoint::send_wire(const Bytes& wire) {
  bytes_sent_ += wire.size();
  ++messages_sent_;
  if (send_) send_(wire);
}

void ProtocolEndpoint::fail(const std::string& reason) {
  state_ = EndpointState::Failed;
  if (failure_reason_.empty()) failure_reason_ = reason;
  TLC_WARN("tlc-proto") << role_name(config_.role)
                        << " negotiation failed: " << reason;
}

Status ProtocolEndpoint::reject_tamper(const std::string& reason) {
  ++tamper_suspected_;
  if (!config_.tolerate_faults) fail(reason);
  return Err(reason);
}

bool ProtocolEndpoint::is_duplicate(const Bytes& wire) const {
  return std::find(processed_wires_.begin(), processed_wires_.end(), wire) !=
         processed_wires_.end();
}

void ProtocolEndpoint::mark_processed(const Bytes& wire) {
  // Bounded memory: old wires cannot recur on a drained channel, so
  // forgetting the oldest is safe.
  constexpr std::size_t kMaxRemembered = 128;
  if (processed_wires_.size() >= kMaxRemembered) {
    processed_wires_.erase(processed_wires_.begin());
  }
  processed_wires_.push_back(wire);
}

void ProtocolEndpoint::update_bounds(std::uint64_t a, std::uint64_t b) {
  lower_ = std::max(lower_, std::min(a, b));
  upper_ = std::min(upper_, std::max(a, b));
}

void ProtocolEndpoint::send_cdr() {
  if (current_round_ >= config_.max_rounds) {
    fail("round cap reached");
    return;
  }
  own_claim_ = strategy_.claim(make_context());
  ++claims_made_;
  own_nonce_ = rng_.next_u64();

  CdrMessage body;
  body.plan = config_.plan;
  body.sender = config_.role;
  body.seq = static_cast<std::uint64_t>(current_round_);
  body.nonce = own_nonce_;
  body.volume = own_claim_;

  SignedCdr cdr{body, timed_sign(encode_cdr_body(body))};
  last_sent_cdr_wire_ = encode_signed_cdr(cdr);
  last_cdr_size_ = last_sent_cdr_wire_.size();
  state_ = EndpointState::SentCdr;
  send_wire(last_sent_cdr_wire_);
}

void ProtocolEndpoint::start() {
  current_round_ = 0;
  send_cdr();
}

Status ProtocolEndpoint::receive(const Bytes& wire) {
  // Idempotent delivery: an exact duplicate of a message this endpoint
  // already acted on is acknowledged and dropped — it must neither
  // advance the state machine nor abort a finished negotiation.
  if (is_duplicate(wire)) {
    ++duplicates_ignored_;
    return Status::Ok();
  }
  if (state_ == EndpointState::Done || state_ == EndpointState::Failed) {
    return Err("endpoint is no longer negotiating");
  }
  auto type = peek_type(wire);
  if (!type) {
    return reject_tamper(type.error());
  }
  Status status = [&]() -> Status {
    switch (*type) {
      case MessageType::Cdr:
        return handle_cdr(wire);
      case MessageType::Cda:
        return handle_cda(wire);
      case MessageType::Poc:
        return handle_poc(wire);
    }
    return Err("unreachable");
  }();
  if (status) mark_processed(wire);
  return status;
}

Status ProtocolEndpoint::handle_cdr(const Bytes& wire) {
  auto decoded = decode_signed_cdr(wire);
  if (!decoded) {
    return reject_tamper(decoded.error());
  }
  const SignedCdr& cdr = *decoded;
  if (cdr.body.sender != other_party(config_.role)) {
    return reject_tamper("cdr: sender role mismatch");
  }
  if (auto s = timed_verify(encode_cdr_body(cdr.body), cdr.signature); !s) {
    return reject_tamper(s.error());
  }
  if (cdr.body.plan != config_.plan) {
    return reject_tamper("cdr: data plan mismatch");
  }

  const auto round = static_cast<int>(cdr.body.seq);
  const std::uint64_t peer_claim = cdr.body.volume;

  // Line-12 constraint: an out-of-window claim is a detectable
  // violation; reject it without letting it move the bounds.
  const bool violates = peer_claim < lower_ || peer_claim > upper_;

  if (state_ == EndpointState::SentCdr && round == current_round_) {
    // I already claimed this round and now hold the peer's same-round
    // claim. Normally that means the peer rejected mine (an accepting
    // peer sends a CDA) — but when both parties initiated the same
    // round simultaneously, nobody has decided anything yet. To keep
    // Fig 7 deadlock-free, exactly one side (the edge vendor, whose
    // state machine has the "recv CDR, send CDA" edge from the CDR
    // state) may answer with a CDA when it accepts; the operator always
    // treats the counter-CDR as a rejection and re-claims.
    peer_nonce_ = cdr.body.nonce;
    if (violates) {
      ++bound_violations_;
      ++current_round_;
      send_cdr();
      return Status::Ok();
    }
    if (config_.role == PartyRole::EdgeVendor &&
        strategy_.accept(make_context(), own_claim_, peer_claim)) {
      own_nonce_ = rng_.next_u64();
      CdaMessage body;
      body.plan = config_.plan;
      body.sender = config_.role;
      body.seq = static_cast<std::uint64_t>(current_round_);
      body.nonce = own_nonce_;
      body.volume = own_claim_;
      body.peer_cdr_wire = wire;
      SignedCda cda{body, timed_sign(encode_cda_body(body))};
      last_sent_cda_wire_ = encode_signed_cda(cda);
      last_cda_size_ = last_sent_cda_wire_.size();
      state_ = EndpointState::SentCda;
      send_wire(last_sent_cda_wire_);
      return Status::Ok();
    }
    update_bounds(own_claim_, peer_claim);
    ++current_round_;
    send_cdr();
    return Status::Ok();
  }

  if (round < current_round_) {
    return Err("cdr: stale round (replay?)");  // drop silently
  }

  // A new round opened by the peer: form my claim and decide.
  current_round_ = round;
  if (current_round_ >= config_.max_rounds) {
    fail("round cap reached");
    return Err("round cap reached");
  }
  if (violates) {
    ++bound_violations_;
    ++current_round_;
    send_cdr();  // implicit reject; do not honor the violating claim
    return Status::Ok();
  }

  const RoundContext ctx = make_context();
  const std::uint64_t my_claim = strategy_.claim(ctx);
  const bool accept = strategy_.accept(ctx, my_claim, peer_claim);
  peer_nonce_ = cdr.body.nonce;

  if (!accept) {
    own_claim_ = my_claim;
    ++claims_made_;
    update_bounds(my_claim, peer_claim);
    // Publish my same-round claim as the implicit rejection.
    own_nonce_ = rng_.next_u64();
    CdrMessage body;
    body.plan = config_.plan;
    body.sender = config_.role;
    body.seq = static_cast<std::uint64_t>(current_round_);
    body.nonce = own_nonce_;
    body.volume = own_claim_;
    SignedCdr reject{body, timed_sign(encode_cdr_body(body))};
    last_sent_cdr_wire_ = encode_signed_cdr(reject);
    last_cdr_size_ = last_sent_cdr_wire_.size();
    state_ = EndpointState::SentCdr;
    send_wire(last_sent_cdr_wire_);
    return Status::Ok();
  }

  // Accept: answer with a CDA echoing the peer's signed CDR.
  own_claim_ = my_claim;
  ++claims_made_;
  own_nonce_ = rng_.next_u64();

  CdaMessage body;
  body.plan = config_.plan;
  body.sender = config_.role;
  body.seq = static_cast<std::uint64_t>(current_round_);
  body.nonce = own_nonce_;
  body.volume = own_claim_;
  body.peer_cdr_wire = wire;

  SignedCda cda{body, timed_sign(encode_cda_body(body))};
  last_sent_cda_wire_ = encode_signed_cda(cda);
  last_cda_size_ = last_sent_cda_wire_.size();
  state_ = EndpointState::SentCda;
  send_wire(last_sent_cda_wire_);
  return Status::Ok();
}

Status ProtocolEndpoint::handle_cda(const Bytes& wire) {
  if (state_ != EndpointState::SentCdr) {
    return Err("cda: unexpected in state " +
               std::string(endpoint_state_name(state_)));
  }
  auto decoded = decode_signed_cda(wire);
  if (!decoded) {
    return reject_tamper(decoded.error());
  }
  const SignedCda& cda = *decoded;
  if (cda.body.sender != other_party(config_.role)) {
    return reject_tamper("cda: sender role mismatch");
  }
  if (auto s = timed_verify(encode_cda_body(cda.body), cda.signature); !s) {
    return reject_tamper(s.error());
  }
  if (cda.body.plan != config_.plan) {
    return reject_tamper("cda: data plan mismatch");
  }
  if (static_cast<int>(cda.body.seq) != current_round_) {
    // Stale acceptance of an earlier round's CDR — happens legitimately
    // when both parties initiated and messages crossed; drop it.
    return Err("cda: round mismatch (stale or replay)");
  }
  if (cda.body.peer_cdr_wire != last_sent_cdr_wire_) {
    return reject_tamper("cda: echoed CDR does not match what we sent");
  }

  const std::uint64_t peer_claim = cda.body.volume;
  const bool violates = peer_claim < lower_ || peer_claim > upper_;
  if (violates) {
    ++bound_violations_;
    ++current_round_;
    send_cdr();
    return Status::Ok();
  }

  const RoundContext ctx = make_context();
  const bool accept = strategy_.accept(ctx, own_claim_, peer_claim);
  peer_nonce_ = cda.body.nonce;
  if (!accept) {
    update_bounds(own_claim_, peer_claim);
    ++current_round_;
    send_cdr();
    return Status::Ok();
  }

  // Both sides accepted the round: construct the PoC (lines 7-9).
  negotiated_ =
      charging::charged_volume(own_claim_, peer_claim, config_.plan.c);

  PocMessage body;
  body.plan = config_.plan;
  body.sender = config_.role;
  body.seq = static_cast<std::uint64_t>(current_round_) + 1;
  body.charged = negotiated_;
  body.cda_wire = wire;

  const std::uint64_t nonce_edge = config_.role == PartyRole::EdgeVendor
                                       ? own_nonce_
                                       : cda.body.nonce;
  const std::uint64_t nonce_operator = config_.role == PartyRole::Operator
                                           ? own_nonce_
                                           : cda.body.nonce;
  SignedPoc poc;
  poc.body = body;
  poc.signature = timed_sign(encode_poc_body(body));
  poc.nonce_edge = nonce_edge;
  poc.nonce_operator = nonce_operator;
  poc_ = poc;

  const Bytes poc_wire = encode_signed_poc(poc);
  last_poc_size_ = poc_wire.size();
  state_ = EndpointState::Done;
  send_wire(poc_wire);
  return Status::Ok();
}

Status ProtocolEndpoint::handle_poc(const Bytes& wire) {
  if (state_ != EndpointState::SentCda) {
    return Err("poc: unexpected in state " +
               std::string(endpoint_state_name(state_)));
  }
  auto decoded = decode_signed_poc(wire);
  if (!decoded) {
    return reject_tamper(decoded.error());
  }
  const SignedPoc& poc = *decoded;
  if (poc.body.sender != other_party(config_.role)) {
    return reject_tamper("poc: sender role mismatch");
  }
  if (auto s = timed_verify(encode_poc_body(poc.body), poc.signature); !s) {
    return reject_tamper(s.error());
  }
  if (poc.body.plan != config_.plan) {
    return reject_tamper("poc: data plan mismatch");
  }
  if (poc.body.cda_wire != last_sent_cda_wire_) {
    return reject_tamper("poc: embedded CDA does not match what we sent");
  }

  // Recompute x from the claims inside the nested messages and check
  // the constructor did not misreport it.
  auto inner_cda = decode_signed_cda(poc.body.cda_wire);
  if (!inner_cda) {
    return reject_tamper(inner_cda.error());
  }
  auto inner_cdr = decode_signed_cdr(inner_cda->body.peer_cdr_wire);
  if (!inner_cdr) {
    return reject_tamper(inner_cdr.error());
  }
  const std::uint64_t expected = charging::charged_volume(
      inner_cda->body.volume, inner_cdr->body.volume, config_.plan.c);
  if (expected != poc.body.charged) {
    return reject_tamper("poc: charged volume inconsistent with claims");
  }

  negotiated_ = poc.body.charged;
  poc_ = poc;
  last_poc_size_ = wire.size();
  state_ = EndpointState::Done;
  return Status::Ok();
}

}  // namespace tlc::core
