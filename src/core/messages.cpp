#include "core/messages.hpp"

#include "util/serde.hpp"

namespace tlc::core {
namespace {

/// Wire version of the three message bodies and their signed framings.
/// Bump on ANY field order/width change — the tools/schemas/msg_*.schema
/// goldens pin the current layout and `ctest -L static` fails on drift.
constexpr std::uint32_t kMessageWireVersion = 1;
static_assert(kMessageWireVersion >= 1);

void write_plan(ByteWriter& w, const PlanRef& plan) {
  w.i64(plan.t_start);
  w.i64(plan.t_end);
  w.f64(plan.c);
}

Expected<PlanRef> read_plan(ByteReader& r) {
  PlanRef plan;
  auto start = r.i64();
  if (!start) return Err(start.error());
  auto end = r.i64();
  if (!end) return Err(end.error());
  auto c = r.f64();
  if (!c) return Err(c.error());
  plan.t_start = *start;
  plan.t_end = *end;
  plan.c = *c;
  return plan;
}

Expected<PartyRole> read_role(ByteReader& r) {
  auto raw = r.u8();
  if (!raw) return Err(raw.error());
  if (*raw > 1) return Err("message: invalid party role");
  return static_cast<PartyRole>(*raw);
}

Status check_type(ByteReader& r, MessageType expected, const char* what) {
  auto type = r.u8();
  if (!type) return Err(type.error());
  if (*type != static_cast<std::uint8_t>(expected)) {
    return Err(std::string(what) + ": wrong message type byte");
  }
  return Status::Ok();
}

}  // namespace

Expected<MessageType> peek_type(const Bytes& wire) {
  // Signed-message framing is blob(body) || blob(signature) [..], so the
  // body's leading type byte sits right after the 4-byte length prefix.
  if (wire.size() < 5) return Err("message: too short");
  const std::uint8_t type = wire[4];
  if (type < 1 || type > 3) return Err("message: unknown type byte");
  return static_cast<MessageType>(type);
}

// --- CDR ----------------------------------------------------------------

// tlclint: codec(msg_cdr_body, encode, version=kMessageWireVersion)
Bytes encode_cdr_body(const CdrMessage& body) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(MessageType::Cdr));
  write_plan(w, body.plan);
  w.u8(static_cast<std::uint8_t>(body.sender));
  w.u64(body.seq);
  w.u64(body.nonce);
  w.u64(body.volume);
  return w.take();
}

SignedCdr sign_cdr(const CdrMessage& body, const crypto::RsaPrivateKey& key) {
  return SignedCdr{body, crypto::rsa_sign(key, encode_cdr_body(body))};
}

// tlclint: codec(msg_signed_cdr, encode, version=kMessageWireVersion)
Bytes encode_signed_cdr(const SignedCdr& cdr) {
  ByteWriter w;
  Bytes body = encode_cdr_body(cdr.body);
  w.blob(body);
  w.blob(cdr.signature);
  return w.take();
}

Expected<SignedCdr> decode_signed_cdr(const Bytes& wire) {
  // tlclint: codec(msg_signed_cdr, decode, version=kMessageWireVersion)
  ByteReader outer(wire);
  auto body_bytes = outer.blob();
  if (!body_bytes) return Err("cdr: " + body_bytes.error());
  auto signature = outer.blob();
  if (!signature) return Err("cdr: " + signature.error());

  // tlclint: codec(msg_cdr_body, decode, version=kMessageWireVersion)
  ByteReader r(*body_bytes);
  if (auto s = check_type(r, MessageType::Cdr, "cdr"); !s) {
    return Err(s.error());
  }
  SignedCdr cdr;
  auto plan = read_plan(r);
  if (!plan) return Err("cdr: " + plan.error());
  cdr.body.plan = *plan;
  auto role = read_role(r);
  if (!role) return Err("cdr: " + role.error());
  cdr.body.sender = *role;
  auto seq = r.u64();
  if (!seq) return Err("cdr: " + seq.error());
  cdr.body.seq = *seq;
  auto nonce = r.u64();
  if (!nonce) return Err("cdr: " + nonce.error());
  cdr.body.nonce = *nonce;
  auto volume = r.u64();
  if (!volume) return Err("cdr: " + volume.error());
  cdr.body.volume = *volume;
  cdr.signature = std::move(*signature);
  return cdr;
}

Status verify_signed_cdr(const SignedCdr& cdr,
                         const crypto::RsaPublicKey& key) {
  return crypto::rsa_verify(key, encode_cdr_body(cdr.body), cdr.signature);
}

// --- CDA ----------------------------------------------------------------

// tlclint: codec(msg_cda_body, encode, version=kMessageWireVersion)
Bytes encode_cda_body(const CdaMessage& body) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(MessageType::Cda));
  write_plan(w, body.plan);
  w.u8(static_cast<std::uint8_t>(body.sender));
  w.u64(body.seq);
  w.u64(body.nonce);
  w.u64(body.volume);
  w.blob(body.peer_cdr_wire);
  return w.take();
}

SignedCda sign_cda(const CdaMessage& body, const crypto::RsaPrivateKey& key) {
  return SignedCda{body, crypto::rsa_sign(key, encode_cda_body(body))};
}

// tlclint: codec(msg_signed_cda, encode, version=kMessageWireVersion)
Bytes encode_signed_cda(const SignedCda& cda) {
  ByteWriter w;
  w.blob(encode_cda_body(cda.body));
  w.blob(cda.signature);
  return w.take();
}

Expected<SignedCda> decode_signed_cda(const Bytes& wire) {
  // tlclint: codec(msg_signed_cda, decode, version=kMessageWireVersion)
  ByteReader outer(wire);
  auto body_bytes = outer.blob();
  if (!body_bytes) return Err("cda: " + body_bytes.error());
  auto signature = outer.blob();
  if (!signature) return Err("cda: " + signature.error());

  // tlclint: codec(msg_cda_body, decode, version=kMessageWireVersion)
  ByteReader r(*body_bytes);
  if (auto s = check_type(r, MessageType::Cda, "cda"); !s) {
    return Err(s.error());
  }
  SignedCda cda;
  auto plan = read_plan(r);
  if (!plan) return Err("cda: " + plan.error());
  cda.body.plan = *plan;
  auto role = read_role(r);
  if (!role) return Err("cda: " + role.error());
  cda.body.sender = *role;
  auto seq = r.u64();
  if (!seq) return Err("cda: " + seq.error());
  cda.body.seq = *seq;
  auto nonce = r.u64();
  if (!nonce) return Err("cda: " + nonce.error());
  cda.body.nonce = *nonce;
  auto volume = r.u64();
  if (!volume) return Err("cda: " + volume.error());
  cda.body.volume = *volume;
  auto peer = r.blob();
  if (!peer) return Err("cda: " + peer.error());
  cda.body.peer_cdr_wire = std::move(*peer);
  cda.signature = std::move(*signature);
  return cda;
}

Status verify_signed_cda(const SignedCda& cda,
                         const crypto::RsaPublicKey& key) {
  return crypto::rsa_verify(key, encode_cda_body(cda.body), cda.signature);
}

// --- PoC ----------------------------------------------------------------

// tlclint: codec(msg_poc_body, encode, version=kMessageWireVersion)
Bytes encode_poc_body(const PocMessage& body) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(MessageType::Poc));
  write_plan(w, body.plan);
  w.u8(static_cast<std::uint8_t>(body.sender));
  w.u64(body.seq);
  w.u64(body.charged);
  w.blob(body.cda_wire);
  return w.take();
}

SignedPoc sign_poc(const PocMessage& body, const crypto::RsaPrivateKey& key,
                   std::uint64_t nonce_edge, std::uint64_t nonce_operator) {
  SignedPoc poc;
  poc.body = body;
  poc.signature = crypto::rsa_sign(key, encode_poc_body(body));
  poc.nonce_edge = nonce_edge;
  poc.nonce_operator = nonce_operator;
  return poc;
}

// tlclint: codec(msg_signed_poc, encode, version=kMessageWireVersion)
Bytes encode_signed_poc(const SignedPoc& poc) {
  ByteWriter w;
  w.blob(encode_poc_body(poc.body));
  w.blob(poc.signature);
  w.u64(poc.nonce_edge);
  w.u64(poc.nonce_operator);
  return w.take();
}

Expected<SignedPoc> decode_signed_poc(const Bytes& wire) {
  // tlclint: codec(msg_signed_poc, decode, version=kMessageWireVersion)
  ByteReader outer(wire);
  auto body_bytes = outer.blob();
  if (!body_bytes) return Err("poc: " + body_bytes.error());
  auto signature = outer.blob();
  if (!signature) return Err("poc: " + signature.error());
  auto nonce_e = outer.u64();
  if (!nonce_e) return Err("poc: " + nonce_e.error());
  auto nonce_o = outer.u64();
  if (!nonce_o) return Err("poc: " + nonce_o.error());

  // tlclint: codec(msg_poc_body, decode, version=kMessageWireVersion)
  ByteReader r(*body_bytes);
  if (auto s = check_type(r, MessageType::Poc, "poc"); !s) {
    return Err(s.error());
  }
  SignedPoc poc;
  auto plan = read_plan(r);
  if (!plan) return Err("poc: " + plan.error());
  poc.body.plan = *plan;
  auto role = read_role(r);
  if (!role) return Err("poc: " + role.error());
  poc.body.sender = *role;
  auto seq = r.u64();
  if (!seq) return Err("poc: " + seq.error());
  poc.body.seq = *seq;
  auto charged = r.u64();
  if (!charged) return Err("poc: " + charged.error());
  poc.body.charged = *charged;
  auto cda = r.blob();
  if (!cda) return Err("poc: " + cda.error());
  poc.body.cda_wire = std::move(*cda);
  poc.signature = std::move(*signature);
  poc.nonce_edge = *nonce_e;
  poc.nonce_operator = *nonce_o;
  return poc;
}

Status verify_signed_poc(const SignedPoc& poc,
                         const crypto::RsaPublicKey& key) {
  return crypto::rsa_verify(key, encode_poc_body(poc.body), poc.signature);
}

}  // namespace tlc::core
