// Theorem-1 ablation: synchronized charging records vs. latency.
//
// §3.3 argues any scheme that closes the loss-induced gap by keeping
// x̂e == x̂o must delay traffic (a CAP-style impossibility). This module
// makes that tradeoff measurable: a window-synchronized charging scheme
// in the style of the prior-work proposals [9, 10, 29] — the sender may
// have at most one unacknowledged record-sync window outstanding; sync
// messages ride the same lossy channel and are retransmitted on
// timeout. TLC, by contrast, adds zero in-cycle delay (Fig 16a).
#pragma once

#include <cstdint>

#include "util/rng.hpp"
#include "util/simtime.hpp"

namespace tlc::core {

struct SyncChargingParams {
  /// Packets per synchronization window.
  std::uint32_t window_packets = 32;
  /// One-way network latency for data and sync messages.
  SimTime one_way_delay = 20 * kMillisecond;
  /// Sync-ack retransmission timeout.
  SimTime retransmit_timeout = 200 * kMillisecond;
  /// Loss probability applied to sync requests and acks (the same
  /// channel that loses data).
  double loss_probability = 0.0;
  /// Workload: packet inter-arrival time.
  SimTime packet_interval = 5 * kMillisecond;
  std::uint64_t total_packets = 20000;
};

struct SyncChargingOutcome {
  /// Mean extra queueing delay per packet caused by sync blocking.
  double mean_added_delay_ms = 0.0;
  double p99_added_delay_ms = 0.0;
  /// Achieved throughput relative to the offered load.
  double throughput_ratio = 1.0;
  /// Sync rounds that needed at least one retransmission.
  std::uint64_t sync_retransmissions = 0;
  /// The charging gap (always 0 — that is the point of the scheme).
  std::uint64_t residual_gap = 0;
};

/// Simulates the window-synchronized scheme and reports the latency it
/// adds. With loss_probability = 0 the added delay is ~one RTT per
/// window amortized; with loss it grows without bound — Theorem 1 in
/// numbers.
[[nodiscard]] SyncChargingOutcome simulate_sync_charging(
    const SyncChargingParams& params, Rng rng);

}  // namespace tlc::core
