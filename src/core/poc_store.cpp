#include "core/poc_store.hpp"

#include "crypto/hmac.hpp"
#include "recovery/crc32c.hpp"
#include "util/fileio.hpp"
#include "util/logging.hpp"
#include "util/serde.hpp"

namespace tlc::core {
namespace {

constexpr std::uint32_t kStoreMagic = 0x544c4350;  // "TLCP"
// v2 added the per-entry CRC32C frame that makes salvage loads
// possible; v1 files (whole-file HMAC only) are no longer readable.
// v3 prefixed each entry with its PocKind so the archive can hold
// streaming-ingest batch PoCs (DESIGN.md §16) next to cycle receipts.
constexpr std::uint32_t kStoreVersion = 3;
constexpr std::size_t kTagBytes = 32;

Bytes integrity_key() { return bytes_of("tlc-poc-store-integrity-v1"); }

// tlclint: codec(poc_entry, encode, version=kStoreVersion)
Bytes encode_entry_body(const PocStore::Entry& entry) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(entry.kind));
  w.i64(entry.plan.t_start);
  w.i64(entry.plan.t_end);
  w.f64(entry.plan.c);
  w.blob(entry.poc_wire);
  return w.take();
}

// tlclint: codec(poc_entry, decode, version=kStoreVersion)
Expected<PocStore::Entry> decode_entry_body(const Bytes& body) {
  ByteReader r(body);
  PocStore::Entry entry;
  auto kind = r.u8();
  auto start = r.i64();
  auto end = r.i64();
  auto c = r.f64();
  if (!kind || !start || !end || !c) return Err("poc store: truncated entry");
  if (*kind > static_cast<std::uint8_t>(PocKind::Batch)) {
    return Err("poc store: unknown entry kind");
  }
  entry.kind = static_cast<PocKind>(*kind);
  entry.plan.t_start = *start;
  entry.plan.t_end = *end;
  entry.plan.c = *c;
  auto wire = r.blob();
  if (!wire) return Err("poc store: " + wire.error());
  if (!r.exhausted()) return Err("poc store: trailing entry bytes");
  entry.poc_wire = std::move(*wire);
  return entry;
}

}  // namespace

void PocStore::add(const PlanRef& plan, Bytes poc_wire) {
  add(PocKind::Cycle, plan, std::move(poc_wire));
}

void PocStore::add(PocKind kind, const PlanRef& plan, Bytes poc_wire) {
  if (log_ != nullptr) {
    // Idempotence key is (kind, cycle start / batch seq): re-adding a
    // recovered receipt after a crash is a no-op.
    if (find(kind, plan.t_start).has_value()) {
      ++duplicate_ops_dropped_;
      return;
    }
    const Bytes op = encode_entry_body(Entry{kind, plan, poc_wire});
    if (Status appended = log_->append(op); !appended.ok()) {
      if (recovery_error_.ok()) recovery_error_ = Err(appended.error());
      TLC_WARN("poc_store") << "journal append failed, add dropped: "
                            << appended.error();
      return;
    }
  }
  entries_.push_back(Entry{kind, plan, std::move(poc_wire)});
}

std::optional<PocStore::Entry> PocStore::find_cycle(SimTime t_start) const {
  return find(PocKind::Cycle, t_start);
}

std::optional<PocStore::Entry> PocStore::find(PocKind kind,
                                              SimTime t_start) const {
  for (const Entry& entry : entries_) {
    if (entry.kind == kind && entry.plan.t_start == t_start) return entry;
  }
  return std::nullopt;
}

std::uint64_t PocStore::stored_bytes() const {
  std::uint64_t total = 0;
  for (const Entry& entry : entries_) total += entry.poc_wire.size();
  return total;
}

// tlclint: codec(poc_archive, encode, version=kStoreVersion)
Bytes PocStore::serialize() const {
  ByteWriter w;
  w.u32(kStoreMagic);
  w.u32(kStoreVersion);
  w.u32(static_cast<std::uint32_t>(entries_.size()));
  for (const Entry& entry : entries_) {
    const Bytes body = encode_entry_body(entry);
    w.u32(recovery::crc32c(body));
    w.blob(body);
  }
  Bytes data = w.take();
  const Bytes tag = crypto::hmac_sha256(integrity_key(), data);
  append(data, tag);
  return data;
}

// tlclint: codec(poc_archive, decode, version=kStoreVersion)
Expected<PocStore> PocStore::deserialize(const Bytes& data) {
  if (data.size() < kTagBytes) return Err("poc store: too short");
  const Bytes body(data.begin(), data.end() - kTagBytes);
  const Bytes tag(data.end() - kTagBytes, data.end());
  if (!constant_time_equal(tag, crypto::hmac_sha256(integrity_key(), body))) {
    return Err("poc store: integrity tag mismatch");
  }
  ByteReader r(body);
  auto magic = r.u32();
  if (!magic || *magic != kStoreMagic) return Err("poc store: bad magic");
  auto version = r.u32();
  if (!version || *version != kStoreVersion) {
    return Err("poc store: unsupported version");
  }
  auto count = r.u32();
  if (!count) return Err("poc store: " + count.error());
  PocStore store;
  store.entries_.reserve(*count);
  for (std::uint32_t i = 0; i < *count; ++i) {
    auto crc = r.u32();
    if (!crc) return Err("poc store: " + crc.error());
    auto entry_body = r.blob();
    if (!entry_body) return Err("poc store: " + entry_body.error());
    if (recovery::crc32c(*entry_body) != *crc) {
      return Err("poc store: entry CRC mismatch");
    }
    auto entry = decode_entry_body(*entry_body);
    if (!entry) return Err(entry.error());
    store.entries_.push_back(std::move(*entry));
  }
  return store;
}

Status PocStore::save(const std::string& path) const {
  return util::write_file_atomic(path, serialize());
}

Expected<PocStore> PocStore::load(const std::string& path) {
  auto data = util::read_file(path);
  if (!data) return Err("poc store: " + data.error());
  return deserialize(*data);
}

// tlclint: codec(poc_archive, decode, version=kStoreVersion)
Expected<PocStore::Salvage> PocStore::load_salvage(const std::string& path) {
  auto data = util::read_file(path);
  if (!data) return Err("poc store: " + data.error());

  Salvage salvage;
  Bytes body = *data;
  if (data->size() >= kTagBytes) {
    const auto body_end =
        data->begin() + static_cast<std::ptrdiff_t>(data->size() - kTagBytes);
    body.assign(data->begin(), body_end);
    const Bytes tag(body_end, data->end());
    salvage.integrity_ok =
        constant_time_equal(tag, crypto::hmac_sha256(integrity_key(), body));
  }

  // Headers have no redundancy to salvage from — a damaged one is
  // still a hard error. Everything past it degrades per entry.
  ByteReader r(body);
  auto magic = r.u32();
  if (!magic || *magic != kStoreMagic) return Err("poc store: bad magic");
  auto version = r.u32();
  if (!version || *version != kStoreVersion) {
    return Err("poc store: unsupported version");
  }
  auto count = r.u32();
  if (!count) return Err("poc store: " + count.error());

  for (std::uint32_t i = 0; i < *count; ++i) {
    auto crc = r.u32();
    auto entry_body = crc ? r.blob() : Expected<Bytes>(Err("short"));
    if (!crc || !entry_body) {
      // Truncated mid-entry: the frame boundary is gone, so every
      // remaining entry is unrecoverable too.
      salvage.entries_skipped += *count - i;
      break;
    }
    if (recovery::crc32c(*entry_body) != *crc) {
      ++salvage.entries_skipped;
      continue;
    }
    auto entry = decode_entry_body(*entry_body);
    if (!entry) {
      ++salvage.entries_skipped;
      continue;
    }
    salvage.store.entries_.push_back(std::move(*entry));
  }
  if (salvage.entries_skipped > 0 || !salvage.integrity_ok) {
    TLC_WARN("poc_store") << "salvage load of " << path << ": kept "
                          << salvage.store.size() << " entries, skipped "
                          << salvage.entries_skipped << ", integrity "
                          << (salvage.integrity_ok ? "ok" : "BAD");
  }
  return salvage;
}

Status PocStore::attach_recovery(recovery::StateLog* log) {
  log_ = log;
  recovery_error_ = Status::Ok();
  duplicate_ops_dropped_ = 0;
  if (log == nullptr) return Status::Ok();

  auto recovered = log->recover();
  if (!recovered) return Err(recovered.error());
  entries_.clear();
  if (recovered->snapshot.has_value()) {
    auto store = deserialize(*recovered->snapshot);
    if (!store) return Err(store.error());
    entries_ = std::move(store->entries_);
  }
  for (const Bytes& op : recovered->ops) {
    auto entry = decode_entry_body(op);
    if (!entry) return Err(entry.error());
    if (find(entry->kind, entry->plan.t_start).has_value()) {
      ++duplicate_ops_dropped_;
      continue;
    }
    entries_.push_back(std::move(*entry));
  }
  return Status::Ok();
}

Status PocStore::checkpoint() {
  if (log_ == nullptr) return Err("poc store: checkpoint without log");
  return log_->checkpoint(serialize());
}

}  // namespace tlc::core
