#include "core/poc_store.hpp"

#include <fstream>

#include "crypto/hmac.hpp"
#include "util/serde.hpp"

namespace tlc::core {
namespace {

constexpr std::uint32_t kStoreMagic = 0x544c4350;  // "TLCP"

Bytes integrity_key() { return bytes_of("tlc-poc-store-integrity-v1"); }

}  // namespace

void PocStore::add(const PlanRef& plan, Bytes poc_wire) {
  entries_.push_back(Entry{plan, std::move(poc_wire)});
}

std::optional<PocStore::Entry> PocStore::find_cycle(SimTime t_start) const {
  for (const Entry& entry : entries_) {
    if (entry.plan.t_start == t_start) return entry;
  }
  return std::nullopt;
}

std::uint64_t PocStore::stored_bytes() const {
  std::uint64_t total = 0;
  for (const Entry& entry : entries_) total += entry.poc_wire.size();
  return total;
}

Bytes PocStore::serialize() const {
  ByteWriter w;
  w.u32(kStoreMagic);
  w.u32(static_cast<std::uint32_t>(entries_.size()));
  for (const Entry& entry : entries_) {
    w.i64(entry.plan.t_start);
    w.i64(entry.plan.t_end);
    w.f64(entry.plan.c);
    w.blob(entry.poc_wire);
  }
  Bytes body = w.take();
  const Bytes tag = crypto::hmac_sha256(integrity_key(), body);
  append(body, tag);
  return body;
}

Expected<PocStore> PocStore::deserialize(const Bytes& data) {
  if (data.size() < 32) return Err("poc store: too short");
  const Bytes body(data.begin(), data.end() - 32);
  const Bytes tag(data.end() - 32, data.end());
  if (!constant_time_equal(tag, crypto::hmac_sha256(integrity_key(), body))) {
    return Err("poc store: integrity tag mismatch");
  }
  ByteReader r(body);
  auto magic = r.u32();
  if (!magic || *magic != kStoreMagic) return Err("poc store: bad magic");
  auto count = r.u32();
  if (!count) return Err("poc store: " + count.error());
  PocStore store;
  store.entries_.reserve(*count);
  for (std::uint32_t i = 0; i < *count; ++i) {
    Entry entry;
    auto start = r.i64();
    if (!start) return Err("poc store: " + start.error());
    entry.plan.t_start = *start;
    auto end = r.i64();
    if (!end) return Err("poc store: " + end.error());
    entry.plan.t_end = *end;
    auto c = r.f64();
    if (!c) return Err("poc store: " + c.error());
    entry.plan.c = *c;
    auto wire = r.blob();
    if (!wire) return Err("poc store: " + wire.error());
    entry.poc_wire = std::move(*wire);
    store.entries_.push_back(std::move(entry));
  }
  return store;
}

Status PocStore::save(const std::string& path) const {
  const Bytes data = serialize();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Err("poc store: cannot open " + path);
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  if (!out) return Err("poc store: write failed");
  return Status::Ok();
}

Expected<PocStore> PocStore::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return Err("poc store: cannot open " + path);
  const std::streamsize size = in.tellg();
  in.seekg(0);
  Bytes data(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(data.data()), size);
  if (!in) return Err("poc store: read failed");
  return deserialize(data);
}

}  // namespace tlc::core
