#include "core/sync_baseline.hpp"

#include <algorithm>
#include <vector>

namespace tlc::core {

SyncChargingOutcome simulate_sync_charging(const SyncChargingParams& params,
                                           Rng rng) {
  // Time-stepped model, no event queue needed: packets arrive at fixed
  // intervals; every `window_packets` packets the sender must complete
  // a record-sync handshake (request + ack, each subject to loss,
  // retried on timeout) before transmitting further packets.
  SyncChargingOutcome outcome;
  std::vector<double> added_delays_ms;
  added_delays_ms.reserve(params.total_packets);

  SimTime sender_free_at = 0;  // earliest time the sender may transmit
  std::uint64_t in_window = 0;
  SimTime last_arrival = 0;

  for (std::uint64_t i = 0; i < params.total_packets; ++i) {
    const SimTime arrival = static_cast<SimTime>(i) * params.packet_interval;
    last_arrival = arrival;
    const SimTime departure = std::max(arrival, sender_free_at);
    added_delays_ms.push_back(to_millis(departure - arrival));

    ++in_window;
    if (in_window == params.window_packets) {
      in_window = 0;
      // Synchronize: request and ack must both survive; each attempt
      // costs one RTT, each failure one retransmission timeout.
      SimTime sync_done = departure;
      for (;;) {
        const bool request_lost = rng.chance(params.loss_probability);
        const bool ack_lost = rng.chance(params.loss_probability);
        if (!request_lost && !ack_lost) {
          sync_done += 2 * params.one_way_delay;
          break;
        }
        ++outcome.sync_retransmissions;
        sync_done += params.retransmit_timeout;
      }
      sender_free_at = sync_done;
    }
  }

  double sum = 0.0;
  for (double d : added_delays_ms) sum += d;
  outcome.mean_added_delay_ms =
      added_delays_ms.empty() ? 0.0
                              : sum / static_cast<double>(added_delays_ms.size());
  std::sort(added_delays_ms.begin(), added_delays_ms.end());
  if (!added_delays_ms.empty()) {
    const std::size_t idx = static_cast<std::size_t>(
        0.99 * static_cast<double>(added_delays_ms.size() - 1));
    outcome.p99_added_delay_ms = added_delays_ms[idx];
  }

  const SimTime offered_span = last_arrival + params.packet_interval;
  const SimTime actual_span = std::max(offered_span, sender_free_at);
  outcome.throughput_ratio = actual_span > 0
                                 ? static_cast<double>(offered_span) /
                                       static_cast<double>(actual_span)
                                 : 1.0;
  return outcome;
}

}  // namespace tlc::core
