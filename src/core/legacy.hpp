// The legacy 4G/5G charging baseline (§2.1, §3).
//
// Legacy charging is one-sided: the bill is whatever the operator's
// gateway CDR says. There is no negotiation, no bound and no proof —
// §3.1 notes the selfish charging volume "can be unbounded". The
// baseline here exposes exactly that: the charged volume is the
// gateway record scaled by an arbitrary selfish factor the edge cannot
// contest.
#pragma once

#include <cstdint>

namespace tlc::core {

struct LegacyChargeParams {
  /// Selfish scaling in parts-per-million: 1'000'000 = honest operator
  /// (the §7.1 "(Honest) legacy 4G/5G" baseline); > 1e6 over-claims
  /// with no bound; < 1e6 would model an operator under-billing (never
  /// rational). Fixed-point so the bill never round-trips through
  /// floating point.
  std::uint64_t operator_selfish_ppm = 1'000'000;
};

/// The legacy bill for a cycle, given the gateway's CDR volume.
[[nodiscard]] std::uint64_t legacy_charge(std::uint64_t gateway_cdr_volume,
                                          const LegacyChargeParams& params = {});

}  // namespace tlc::core
