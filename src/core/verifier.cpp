#include "core/verifier.hpp"

#include "charging/plan.hpp"

namespace tlc::core {

Expected<VerifiedCharge> verify_poc(const VerificationRequest& request) {
  // Layer 1: the PoC itself.
  auto poc = decode_signed_poc(request.poc_wire);
  if (!poc) return Err(poc.error());

  // Inherit (or warm, for hand-built keys) the Montgomery contexts
  // once per PoC: the three nested signature checks below share them.
  // Copies of an already-precomputed key share its context for free.
  crypto::RsaPublicKey operator_key = request.operator_key;
  crypto::RsaPublicKey edge_key = request.edge_key;
  operator_key.precompute();
  edge_key.precompute();

  const crypto::RsaPublicKey& constructor_key =
      poc->body.sender == PartyRole::Operator ? operator_key : edge_key;
  const crypto::RsaPublicKey& acceptor_key =
      poc->body.sender == PartyRole::Operator ? edge_key : operator_key;

  if (auto s = verify_signed_poc(*poc, constructor_key); !s) {
    return Err("poc signature: " + s.error());
  }

  // Algorithm 2 line 2: plan consistency at the outer layer.
  if (poc->body.plan != request.plan) {
    return Err("inconsistent data plan (PoC layer)");
  }

  // Layer 2: the embedded CDA, signed by the other party.
  auto cda = decode_signed_cda(poc->body.cda_wire);
  if (!cda) return Err(cda.error());
  if (cda->body.sender != other_party(poc->body.sender)) {
    return Err("cda: embedded sender role incoherent");
  }
  if (auto s = verify_signed_cda(*cda, acceptor_key); !s) {
    return Err("cda signature: " + s.error());
  }
  if (cda->body.plan != request.plan) {
    return Err("inconsistent data plan (CDA layer)");
  }

  // Layer 3: the CDR the CDA accepted, signed by the PoC constructor.
  auto cdr = decode_signed_cdr(cda->body.peer_cdr_wire);
  if (!cdr) return Err(cdr.error());
  if (cdr->body.sender != poc->body.sender) {
    return Err("cdr: embedded sender role incoherent");
  }
  if (auto s = verify_signed_cdr(*cdr, constructor_key); !s) {
    return Err("cdr signature: " + s.error());
  }
  if (cdr->body.plan != request.plan) {
    return Err("inconsistent data plan (CDR layer)");
  }

  // Algorithm 2 line 5: the clear-text nonces must match the nonces
  // inside the signed layers, and the exchange's sequence numbers must
  // be coherent (the CDA answers exactly the CDR it embeds).
  const std::uint64_t inner_edge_nonce =
      cda->body.sender == PartyRole::EdgeVendor ? cda->body.nonce
                                                : cdr->body.nonce;
  const std::uint64_t inner_operator_nonce =
      cda->body.sender == PartyRole::Operator ? cda->body.nonce
                                              : cdr->body.nonce;
  if (inner_edge_nonce != poc->nonce_edge ||
      inner_operator_nonce != poc->nonce_operator) {
    return Err("nonce mismatch (replay suspected)");
  }
  if (cda->body.seq != cdr->body.seq) {
    return Err("sequence numbers incoherent (se != so)");
  }
  if (poc->body.seq != cdr->body.seq + 1) {
    return Err("poc sequence incoherent with negotiation");
  }

  // Algorithm 2 line 8: replay the cancellation formula.
  const std::uint64_t edge_claim = cda->body.sender == PartyRole::EdgeVendor
                                       ? cda->body.volume
                                       : cdr->body.volume;
  const std::uint64_t operator_claim =
      cda->body.sender == PartyRole::Operator ? cda->body.volume
                                              : cdr->body.volume;
  const std::uint64_t recomputed =
      charging::charged_volume(edge_claim, operator_claim, request.plan.c);
  if (recomputed != poc->body.charged) {
    return Err("charged volume does not replay Algorithm 1");
  }

  VerifiedCharge out;
  out.charged = poc->body.charged;
  out.edge_claim = edge_claim;
  out.operator_claim = operator_claim;
  out.nonce_edge = poc->nonce_edge;
  out.nonce_operator = poc->nonce_operator;
  out.constructed_by = poc->body.sender;
  return out;
}

Expected<VerifiedCharge> PublicVerifier::verify(
    const VerificationRequest& request) {
  auto verified = verify_poc(request);
  if (!verified) {
    ++rejected_;
    return verified;
  }
  const ReplayKey key{verified->nonce_edge, verified->nonce_operator,
                      request.plan.t_start};
  if (!seen_.insert(key).second) {
    ++rejected_;
    ++replays_;
    return Err("duplicate PoC (replay blocked)");
  }
  ++accepted_;
  return verified;
}

}  // namespace tlc::core
