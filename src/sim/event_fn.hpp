// Small-buffer-optimized, move-only callable for the simulator hot path.
//
// Every closure the emulated testbed schedules — packet deliveries, link
// serialization completions, RRC timers, charging boundaries — fits the
// 48-byte inline buffer, so the event loop never touches the heap per
// event. Larger captures (only seen in tests) fall back to a single heap
// allocation, preserving std::function-like generality.
#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace tlc::sim {

class EventFn {
 public:
  /// Largest capture stored inline. Chosen to cover every closure in the
  /// tree (max today: [this, QueuedPacket] and [this, Packet, context]
  /// at 48 bytes) while keeping sizeof(EventFn) at one cache line.
  static constexpr std::size_t kInlineSize = 48;
  static constexpr std::size_t kInlineAlign = alignof(std::max_align_t);

  EventFn() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventFn(F&& fn) {  // NOLINT(google-explicit-constructor)
    init(std::forward<F>(fn));
  }

  EventFn(EventFn&& other) noexcept { move_from(other); }
  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;
  ~EventFn() { reset(); }

  [[nodiscard]] explicit operator bool() const { return invoke_ != nullptr; }

  void operator()() { invoke_(storage_); }

  /// Destroys the held callable (if any) and returns to the empty state.
  void reset() {
    if (manage_ != nullptr) manage_(Op::kDestroy, storage_, nullptr);
    invoke_ = nullptr;
    manage_ = nullptr;
  }

 private:
  enum class Op { kDestroy, kMove };
  using InvokeFn = void (*)(void*);
  using ManageFn = void (*)(Op, void* dst, void* src);

  template <typename F>
  struct InlineHandler {
    static void invoke(void* s) { (*std::launder(reinterpret_cast<F*>(s)))(); }
    static void manage(Op op, void* dst, void* src) {
      if (op == Op::kDestroy) {
        std::launder(reinterpret_cast<F*>(dst))->~F();
      } else {
        F* from = std::launder(reinterpret_cast<F*>(src));
        ::new (dst) F(std::move(*from));
        from->~F();
      }
    }
  };

  template <typename F>
  struct HeapHandler {
    static F*& ptr(void* s) { return *std::launder(reinterpret_cast<F**>(s)); }
    static void invoke(void* s) { (*ptr(s))(); }
    static void manage(Op op, void* dst, void* src) {
      if (op == Op::kDestroy) {
        delete ptr(dst);
      } else {
        ::new (dst) F*(ptr(src));
      }
    }
  };

  template <typename F>
  void init(F&& fn) {
    using D = std::decay_t<F>;
    if constexpr (sizeof(D) <= kInlineSize && alignof(D) <= kInlineAlign &&
                  std::is_trivially_copyable_v<D> &&
                  std::is_trivially_destructible_v<D>) {
      // Trivial inline: moved by memcpy, destroyed for free. This is the
      // hot case — plain lambdas capturing pointers and PODs.
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(fn));
      invoke_ = &InlineHandler<D>::invoke;
      manage_ = nullptr;
    } else if constexpr (sizeof(D) <= kInlineSize &&
                         alignof(D) <= kInlineAlign &&
                         std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(fn));
      invoke_ = &InlineHandler<D>::invoke;
      manage_ = &InlineHandler<D>::manage;
    } else {
      ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(fn)));
      invoke_ = &HeapHandler<D>::invoke;
      manage_ = &HeapHandler<D>::manage;
    }
  }

  void move_from(EventFn& other) noexcept {
    invoke_ = other.invoke_;
    manage_ = other.manage_;
    if (invoke_ != nullptr) {
      if (manage_ == nullptr) {
        std::memcpy(storage_, other.storage_, kInlineSize);
      } else {
        manage_(Op::kMove, storage_, other.storage_);
      }
    }
    other.invoke_ = nullptr;
    other.manage_ = nullptr;
  }

  alignas(kInlineAlign) unsigned char storage_[kInlineSize] = {};
  InvokeFn invoke_ = nullptr;
  ManageFn manage_ = nullptr;
};

}  // namespace tlc::sim
