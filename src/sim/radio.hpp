// Radio channel model for the small cell.
//
// Reproduces the two wireless effects the paper measures (Figs 4, 14):
//  * slow RSS fading — an Ornstein-Uhlenbeck random walk around a mean
//    signal strength, mapped to packet loss via bler_from_rss(); and
//  * intermittent connectivity — alternating connected/outage episodes
//    with exponential durations, parameterized by the target
//    disconnectivity ratio η and the mean outage length (1.93 s in the
//    paper's Fig 4 experiment).
//
// State advances lazily on a fixed tick grid so queries at arbitrary
// times are deterministic for a given seed.
#pragma once

#include <optional>

#include "sim/mobility.hpp"
#include "util/rng.hpp"
#include "util/simtime.hpp"

namespace tlc::sim {

struct RadioParams {
  double mean_rss_dbm = -90.0;
  double rss_stddev_db = 4.0;
  /// Mean-reversion rate per second of the OU process.
  double rss_reversion_per_s = 0.4;
  /// Target fraction of time spent disconnected (η). 0 disables outages.
  double disconnect_ratio = 0.0;
  /// Mean outage episode duration (paper: 1.93 s average).
  double mean_outage_s = 1.93;
  /// Handover interruptions for a moving device (§3.1 cause 2);
  /// speed 0 (the default) disables them.
  MobilityParams mobility{};
  /// State update granularity.
  SimTime tick = 100 * kMillisecond;
};

class RadioChannel {
 public:
  RadioChannel(RadioParams params, Rng rng);

  /// Advances internal state to time `t` (monotonic; earlier times are
  /// answered from current state).
  void advance_to(SimTime t);

  /// Received signal strength at time `t` (dBm).
  [[nodiscard]] double rss(SimTime t);

  /// Whether the device currently has uplink+downlink service.
  [[nodiscard]] bool connected(SimTime t);

  /// Per-packet drop probability at time `t`: BLER from the current RSS
  /// while connected, 1.0 during an outage.
  [[nodiscard]] double packet_loss_probability(SimTime t);

  /// Start of the ongoing outage, or a negative value when connected.
  /// The MME uses this to emulate radio-link-failure detach (§3.2: the
  /// core detaches a persistently unreachable device after ~5 s).
  [[nodiscard]] SimTime disconnected_since() const {
    return connected_ ? -1 : outage_started_at_;
  }

  /// Cumulative disconnected time up to `t`.
  [[nodiscard]] SimTime total_disconnected(SimTime t);

  /// Measured disconnectivity ratio η over [0, t].
  [[nodiscard]] double measured_disconnect_ratio(SimTime t);

  /// Handover statistics (zero when mobility is disabled).
  [[nodiscard]] std::uint64_t handovers() const {
    return mobility_ ? mobility_->handovers() : 0;
  }
  [[nodiscard]] std::uint64_t failed_handovers() const {
    return mobility_ ? mobility_->failed_handovers() : 0;
  }

 private:
  void step_tick();
  [[nodiscard]] bool mobility_interrupted(SimTime t);

  RadioParams params_;
  Rng rng_;
  std::optional<MobilityModel> mobility_;
  SimTime current_ = 0;
  double rss_dbm_;
  bool connected_ = true;
  SimTime episode_ends_at_ = 0;
  SimTime outage_started_at_ = -1;
  SimTime disconnected_accum_ = 0;
};

}  // namespace tlc::sim
