#include "sim/rng_stream.hpp"

namespace tlc::sim {
namespace {

/// moremur: a stronger-than-splitmix64 finalizer (Pelle Evensen's
/// constants). Bijective on 64 bits, so distinct inputs cannot collide.
std::uint64_t mix(std::uint64_t x) {
  x ^= x >> 27;
  x *= 0x3c79ac492ba7b653ULL;
  x ^= x >> 33;
  x *= 0x1c69b3f74ac4ae35ULL;
  x ^= x >> 27;
  return x;
}

}  // namespace

std::uint64_t stream_seed(std::uint64_t master, std::uint64_t stream) {
  // Two mixing rounds with the stream index injected between them: a
  // single round of master ^ stream would leave adjacent streams one
  // bit apart at the mixer input, which weak constants turn into
  // detectable seed correlations downstream (Rng re-expands the seed
  // through splitmix64).
  std::uint64_t x = mix(master ^ 0x9e3779b97f4a7c15ULL);
  x = mix(x + stream * 0xd1b54a32d192ed03ULL);
  return x;
}

Rng stream_rng(std::uint64_t master, std::uint64_t stream) {
  return Rng(stream_seed(master, stream));
}

}  // namespace tlc::sim
