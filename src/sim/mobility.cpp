#include "sim/mobility.hpp"

#include <algorithm>

namespace tlc::sim {

double handover_interval_s(const MobilityParams& params) {
  if (params.speed_mps <= 0.0) return 0.0;
  // Mean chord across a cell of radius R is ~(pi/2) R; the crossing
  // time sets the handover cadence.
  return (3.14159265 / 2.0) * params.cell_radius_m / params.speed_mps;
}

MobilityModel::MobilityModel(MobilityParams params, Rng rng)
    : params_(params), rng_(rng) {
  const double interval = handover_interval_s(params_);
  if (interval > 0.0) {
    next_handover_ = from_seconds(rng_.exponential(interval));
  }
}

void MobilityModel::advance_to(SimTime t) {
  if (next_handover_ < 0) return;
  while (next_handover_ <= t) {
    ++handovers_;
    const bool failed = rng_.chance(params_.failure_prob);
    if (failed) ++failures_;
    const SimTime duration =
        failed ? from_seconds(params_.failure_outage_s)
               : from_millis(params_.interruption_ms);
    interruption_until_ = std::max(interruption_until_,
                                   next_handover_ + duration);
    total_ += duration;
    const double interval = handover_interval_s(params_);
    next_handover_ += from_seconds(std::max(
        0.5, rng_.exponential(interval)));
  }
}

bool MobilityModel::in_interruption(SimTime t) {
  advance_to(t);
  return t < interruption_until_;
}

}  // namespace tlc::sim
