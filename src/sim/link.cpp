#include "sim/link.hpp"

#include <algorithm>

namespace tlc::sim {

Link::Link(Simulator& sim, LinkParams params) : sim_(sim), params_(params) {}

SimTime Link::serialization_time(std::uint32_t bytes) const {
  const double seconds = static_cast<double>(bytes) * 8.0 / params_.rate_bps;
  return from_seconds(seconds);
}

void Link::drain() const {
  const SimTime now = sim_.now();
  while (!in_flight_.empty() && in_flight_.front().tx_done <= now) {
    queued_bytes_ -= std::min(queued_bytes_, in_flight_.front().size);
    in_flight_.pop_front();
  }
}

std::uint32_t Link::queued_bytes() const {
  drain();
  return queued_bytes_;
}

SimTime Link::current_delay(std::uint32_t bytes) const {
  const SimTime queue_wait = std::max<SimTime>(busy_until_ - sim_.now(), 0);
  return queue_wait + serialization_time(bytes) + params_.propagation_delay;
}

SimTime Link::admit(const Packet& packet) {
  drain();
  if (queued_bytes_ + packet.size_bytes > params_.queue_limit_bytes) {
    ++dropped_;
    if (on_drop_) on_drop_(packet);
    return -1;
  }
  queued_bytes_ += packet.size_bytes;

  const SimTime start = std::max(busy_until_, sim_.now());
  const SimTime tx_done = start + serialization_time(packet.size_bytes);
  busy_until_ = tx_done;
  in_flight_.push_back(InFlight{tx_done, packet.size_bytes});
  return tx_done + params_.propagation_delay;
}

bool Link::send(const Packet& packet, std::uint64_t context) {
  const SimTime deliver_at = admit(packet);
  if (deliver_at < 0) return false;
  // [this, packet, context] is 48 bytes: inline in EventFn, no heap.
  sim_.schedule_at(deliver_at, [this, packet, context] {
    ++delivered_;
    if (sink_) sink_(packet, context);
  });
  return true;
}

bool Link::send(const Packet& packet, DeliverFn on_deliver) {
  const SimTime deliver_at = admit(packet);
  if (deliver_at < 0) return false;
  sim_.schedule_at(deliver_at,
                   [this, packet, deliver = std::move(on_deliver)] {
                     ++delivered_;
                     if (deliver) deliver(packet);
                   });
  return true;
}

}  // namespace tlc::sim
