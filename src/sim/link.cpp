#include "sim/link.hpp"

#include <algorithm>

namespace tlc::sim {

Link::Link(Simulator& sim, LinkParams params) : sim_(sim), params_(params) {}

SimTime Link::serialization_time(std::uint32_t bytes) const {
  const double seconds = static_cast<double>(bytes) * 8.0 / params_.rate_bps;
  return from_seconds(seconds);
}

SimTime Link::current_delay(std::uint32_t bytes) const {
  const SimTime queue_wait = std::max<SimTime>(busy_until_ - sim_.now(), 0);
  return queue_wait + serialization_time(bytes) + params_.propagation_delay;
}

bool Link::send(const Packet& packet, DeliverFn on_deliver) {
  if (queued_bytes_ + packet.size_bytes > params_.queue_limit_bytes) {
    ++dropped_;
    if (on_drop_) on_drop_(packet);
    return false;
  }
  queued_bytes_ += packet.size_bytes;

  const SimTime start = std::max(busy_until_, sim_.now());
  const SimTime tx_done = start + serialization_time(packet.size_bytes);
  busy_until_ = tx_done;

  // Dequeue accounting when serialization completes ...
  sim_.schedule_at(tx_done, [this, size = packet.size_bytes] {
    queued_bytes_ -= std::min(queued_bytes_, size);
  });
  // ... delivery after propagation.
  sim_.schedule_at(tx_done + params_.propagation_delay,
                   [this, packet, deliver = std::move(on_deliver)] {
                     ++delivered_;
                     if (deliver) deliver(packet);
                   });
  return true;
}

}  // namespace tlc::sim
