// Packet loss models.
//
// §3.1 of the paper taxonomizes loss across layers; in the emulation all
// of them reduce to stochastic per-packet drop processes at the right
// place in the path: Bernoulli (steady-state residual loss),
// Gilbert-Elliott (bursty air-interface loss), and an RSS-to-BLER curve
// for signal-strength-driven loss (Figs 3, 4, 13, 14 sweep these).
#pragma once

#include <memory>

#include "sim/packet.hpp"
#include "util/rng.hpp"
#include "util/simtime.hpp"

namespace tlc::sim {

/// Decides whether one packet is lost. Implementations may keep state
/// (burst models); each call represents one transmission attempt in time
/// order.
class LossModel {
 public:
  virtual ~LossModel() = default;
  [[nodiscard]] virtual bool should_drop(const Packet& packet,
                                         SimTime now) = 0;
};

/// Independent drops with fixed probability.
class BernoulliLoss final : public LossModel {
 public:
  BernoulliLoss(double probability, Rng rng);
  [[nodiscard]] bool should_drop(const Packet& packet, SimTime now) override;

 private:
  double probability_;
  Rng rng_;
};

/// Two-state Markov burst loss (Gilbert-Elliott). The chain transitions
/// per packet; the bad state models deep fades / HARQ exhaustion.
class GilbertElliottLoss final : public LossModel {
 public:
  struct Params {
    double p_good_to_bad = 0.005;
    double p_bad_to_good = 0.20;
    double loss_in_good = 0.001;
    double loss_in_bad = 0.50;
  };

  GilbertElliottLoss(Params params, Rng rng);
  [[nodiscard]] bool should_drop(const Packet& packet, SimTime now) override;

  [[nodiscard]] bool in_bad_state() const { return bad_; }

 private:
  Params params_;
  Rng rng_;
  bool bad_ = false;
};

/// Residual block-error probability as a function of received signal
/// strength (dBm). Calibrated so that the "good radio" regime of the
/// paper (RSS >= -95 dBm) yields the small single-digit-percent gap of
/// Fig 3, ramping steeply below -105 dBm as link adaptation runs out of
/// MCS headroom.
[[nodiscard]] double bler_from_rss(double rss_dbm);

}  // namespace tlc::sim
