// Packet model.
//
// The charging problem only depends on packet identity, size, direction
// and QoS class — payload contents never matter — so packets are a small
// value type and the simulator moves them by copy. The adversarial
// suite (DESIGN.md §13) adds two shallow-classifier facts a gateway
// can read without touching payload bytes: the transport protocol and
// a payload-entropy estimate (what a DPI tap would compute; tunnels
// carrying compressed/encrypted data score high, chatty plaintext
// protocols score low).
#pragma once

#include <cstdint>

#include "util/simtime.hpp"

namespace tlc::sim {

/// Direction relative to the device: uplink = device -> server.
enum class Direction : std::uint8_t { Uplink, Downlink };

/// Transport protocol as the gateway's shallow classifier labels it.
/// ICMP and DNS form the traditionally *uncharged* class — operators
/// forward diagnostics and resolver traffic for free, which is exactly
/// the hole Ghost-Traffic-style tunnels ride through.
enum class Protocol : std::uint8_t {
  kUdp = 0,
  kTcp = 1,
  kIcmp = 2,
  kDns = 3,
};

inline constexpr std::size_t kProtocolCount = 4;

[[nodiscard]] constexpr const char* protocol_name(Protocol p) {
  switch (p) {
    case Protocol::kUdp:
      return "UDP";
    case Protocol::kTcp:
      return "TCP";
    case Protocol::kIcmp:
      return "ICMP";
    case Protocol::kDns:
      return "DNS";
  }
  return "UDP";
}

/// Protocols the legacy charging function forwards without counting.
[[nodiscard]] constexpr bool is_free_class(Protocol p) {
  return p == Protocol::kIcmp || p == Protocol::kDns;
}

[[nodiscard]] constexpr const char* direction_name(Direction d) {
  return d == Direction::Uplink ? "UL" : "DL";
}

/// LTE QoS Class Identifier. The paper's experiments use QCI 3/7
/// (gaming, 50/100 ms delay budget) and QCI 9 (best-effort background).
enum class Qci : std::uint8_t {
  kQci3 = 3,  // real-time gaming, GBR, 50 ms budget
  kQci7 = 7,  // voice / interactive gaming, non-GBR, 100 ms budget
  kQci9 = 9,  // default best-effort
};

/// Strict-priority rank: lower value served first. 3GPP TS 23.203 gives
/// QCI 3 priority 3, QCI 7 priority 7, QCI 9 priority 9.
[[nodiscard]] constexpr int qci_priority(Qci qci) {
  return static_cast<int>(qci);
}

/// Per-QCI packet delay budget from TS 23.203 Table 6.1.7.
[[nodiscard]] constexpr SimTime qci_delay_budget(Qci qci) {
  switch (qci) {
    case Qci::kQci3:
      return 50 * kMillisecond;
    case Qci::kQci7:
      return 100 * kMillisecond;
    case Qci::kQci9:
      return 300 * kMillisecond;
  }
  return 300 * kMillisecond;
}

struct Packet {
  std::uint64_t id = 0;       // unique per simulation
  std::uint32_t flow_id = 0;  // workload/bearer flow
  std::uint32_t size_bytes = 0;
  Direction direction = Direction::Uplink;
  Qci qci = Qci::kQci9;
  Protocol protocol = Protocol::kUdp;
  /// Payload-entropy estimate in thousandths (0 = constant bytes,
  /// 1000 = indistinguishable from random). Kept integral so every
  /// downstream aggregate stays in exact arithmetic.
  std::uint16_t entropy_millis = 0;
  SimTime created_at = 0;
};

}  // namespace tlc::sim
