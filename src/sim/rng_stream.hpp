// Shard-local RNG stream seeding.
//
// The fleet engine runs many independent simulator shards from one
// master seed. Deriving shard seeds naively (seed + shard_index) feeds
// near-identical splitmix64 inputs into adjacent shards and risks
// correlated loss/mobility draws across shards — exactly the artifact a
// fleet-level gap CDF must not contain. `stream_seed` pushes the
// (master, stream) pair through two rounds of a strong 64-bit mixer so
// adjacent stream indices land in statistically independent regions of
// the seed space; `stream_rng` wraps the result in the simulator's
// xoshiro generator.
#pragma once

#include <cstdint>

#include "util/rng.hpp"

namespace tlc::sim {

/// Decorrelated 64-bit seed for stream `stream` of master seed `master`.
/// Pure function: the same (master, stream) pair always yields the same
/// seed, independent of call order or thread — the determinism anchor
/// for sharded runs.
[[nodiscard]] std::uint64_t stream_seed(std::uint64_t master,
                                        std::uint64_t stream);

/// An `Rng` seeded from stream_seed(master, stream).
[[nodiscard]] Rng stream_rng(std::uint64_t master, std::uint64_t stream);

/// Hands out decorrelated child streams of one master seed by index.
/// Unlike Rng::fork(), obtaining stream i does not disturb stream j —
/// shards can be built in any order (or concurrently) and still see
/// identical randomness.
class StreamSeeder {
 public:
  explicit StreamSeeder(std::uint64_t master) : master_(master) {}

  [[nodiscard]] std::uint64_t seed(std::uint64_t stream) const {
    return stream_seed(master_, stream);
  }
  [[nodiscard]] Rng rng(std::uint64_t stream) const {
    return stream_rng(master_, stream);
  }
  /// A sub-seeder rooted at one stream (e.g. per-shard → per-UE).
  [[nodiscard]] StreamSeeder child(std::uint64_t stream) const {
    return StreamSeeder(seed(stream));
  }

 private:
  std::uint64_t master_;
};

}  // namespace tlc::sim
