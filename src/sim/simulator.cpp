#include "sim/simulator.hpp"

#include <algorithm>
#include <utility>

namespace tlc::sim {

std::uint64_t Simulator::schedule_at(SimTime at, Action action) {
  const std::uint64_t id = next_id_++;
  queue_.push(Event{std::max(at, now_), next_seq_++, id});
  actions_.emplace(id, std::move(action));
  return id;
}

std::uint64_t Simulator::schedule_after(SimTime delay, Action action) {
  return schedule_at(now_ + std::max<SimTime>(delay, 0), std::move(action));
}

void Simulator::cancel(std::uint64_t id) { actions_.erase(id); }

bool Simulator::step() {
  while (!queue_.empty()) {
    const Event event = queue_.top();
    queue_.pop();
    auto it = actions_.find(event.id);
    if (it == actions_.end()) {
      continue;  // cancelled
    }
    Action action = std::move(it->second);
    actions_.erase(it);
    now_ = event.at;
    ++executed_;
    action();
    return true;
  }
  return false;
}

void Simulator::run_until(SimTime horizon) {
  for (;;) {
    // Discard cancelled events at the head so the horizon check below
    // always looks at a live event.
    while (!queue_.empty() && actions_.find(queue_.top().id) == actions_.end()) {
      queue_.pop();
    }
    if (queue_.empty() || queue_.top().at > horizon) break;
    step();
  }
  now_ = std::max(now_, horizon);
}

void Simulator::run() {
  while (step()) {
  }
}

}  // namespace tlc::sim
