#include "sim/simulator.hpp"

#include <algorithm>
#include <utility>

namespace tlc::sim {

std::uint32_t Simulator::acquire_slot() {
  if (free_head_ == kNoSlot) {
    // Grow by one block; block addresses are stable so slots can hold
    // live EventFns across growth.
    auto block = std::make_unique<Slot[]>(kSlotsPerBlock);
    const std::uint32_t base = slot_count_;
    for (std::size_t i = kSlotsPerBlock; i > 0; --i) {
      block[i - 1].next_free = free_head_;
      free_head_ = base + static_cast<std::uint32_t>(i - 1);
    }
    blocks_.push_back(std::move(block));
    slot_count_ += static_cast<std::uint32_t>(kSlotsPerBlock);
  }
  const std::uint32_t index = free_head_;
  free_head_ = slot_at(index).next_free;
  return index;
}

void Simulator::release_slot(std::uint32_t index) {
  Slot& slot = slot_at(index);
  ++slot.generation;  // retire outstanding ids for this incarnation
  slot.next_free = free_head_;
  free_head_ = index;
}

void Simulator::heap_push(HeapEntry entry) {
  heap_.push_back(entry);
  std::size_t i = heap_.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!entry_less(heap_[i], heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

void Simulator::heap_pop() {
  const HeapEntry moved = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  if (n == 0) return;
  std::size_t i = 0;
  for (;;) {
    const std::size_t first = 4 * i + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t last = std::min(first + 4, n);
    for (std::size_t child = first + 1; child < last; ++child) {
      if (entry_less(heap_[child], heap_[best])) best = child;
    }
    if (!entry_less(heap_[best], moved)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = moved;
}

std::uint64_t Simulator::schedule_at(SimTime at, Action action) {
  const std::uint32_t index = acquire_slot();
  Slot& slot = slot_at(index);
  slot.action = std::move(action);
  slot.armed = true;
  heap_push(HeapEntry{std::max(at, now_), next_seq_++, index});
  ++live_;
  return (static_cast<std::uint64_t>(slot.generation) << 32) |
         (static_cast<std::uint64_t>(index) + 1);
}

std::uint64_t Simulator::schedule_after(SimTime delay, Action action) {
  return schedule_at(now_ + std::max<SimTime>(delay, 0), std::move(action));
}

void Simulator::cancel(std::uint64_t id) {
  const auto index_plus_one = static_cast<std::uint32_t>(id & 0xffffffffu);
  if (index_plus_one == 0 || index_plus_one > slot_count_) return;
  Slot& slot = slot_at(index_plus_one - 1);
  if (!slot.armed || slot.generation != static_cast<std::uint32_t>(id >> 32)) {
    return;  // already fired, already cancelled, or a recycled slot
  }
  slot.armed = false;
  slot.action.reset();
  --live_;
  // The slot stays pinned until its heap entry pops; release happens there.
}

bool Simulator::step() {
  while (!heap_.empty()) {
    const HeapEntry entry = heap_.front();
    heap_pop();
    Slot& slot = slot_at(entry.slot);
    if (!slot.armed) {
      release_slot(entry.slot);  // cancelled: retire the pinned slot
      continue;
    }
    // Move the action to the stack before releasing so the slot can be
    // reused (and this very event re-cancelled as a no-op) during invoke.
    EventFn action = std::move(slot.action);
    slot.armed = false;
    release_slot(entry.slot);
    --live_;
    now_ = entry.at;
    ++executed_;
    action();
    return true;
  }
  return false;
}

void Simulator::drop_disarmed_heads() {
  while (!heap_.empty() && !slot_at(heap_.front().slot).armed) {
    const std::uint32_t slot = heap_.front().slot;
    heap_pop();
    release_slot(slot);
  }
}

void Simulator::run_until(SimTime horizon) {
  for (;;) {
    // Discard cancelled events at the head so the horizon check below
    // always looks at a live event.
    drop_disarmed_heads();
    if (heap_.empty() || heap_.front().at > horizon) break;
    step();
  }
  now_ = std::max(now_, horizon);
}

void Simulator::run() {
  while (step()) {
  }
}

}  // namespace tlc::sim
