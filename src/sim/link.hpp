// Point-to-point link with finite rate, propagation delay and a
// drop-tail queue.
//
// Links model the wired segments of the testbed (eNodeB <-> SPGW S1-U,
// SPGW <-> edge server Ethernet) and serve as the serialization stage of
// the air interface behind the eNodeB scheduler. IP-layer congestion
// loss (§3.1 cause 3) happens here: packets arriving to a full queue are
// dropped *after* the upstream charging point saw them.
//
// Hot path: the owner installs one delivery sink up front and sends with
// a u64 context (the SPGW passes the IMSI), so each packet costs exactly
// one scheduled event with an inline 48-byte capture — no per-packet
// std::function, no dequeue event. Queue occupancy is tracked lazily: a
// FIFO of (tx_done, size) records drains whenever the link is observed.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "sim/packet.hpp"
#include "sim/simulator.hpp"
#include "util/simtime.hpp"

namespace tlc::sim {

struct LinkParams {
  double rate_bps = 1e9;                     // serialization rate
  SimTime propagation_delay = kMillisecond;  // one-way latency
  std::uint32_t queue_limit_bytes = 256 * 1024;
};

class Link {
 public:
  using DeliverFn = std::function<void(const Packet&)>;
  using SinkFn = std::function<void(const Packet&, std::uint64_t context)>;
  using DropFn = std::function<void(const Packet&)>;

  Link(Simulator& sim, LinkParams params);

  /// Installs the fixed delivery sink used by the context overload of
  /// send(). Set once at wiring time, before traffic flows.
  void set_deliver_sink(SinkFn sink) { sink_ = std::move(sink); }

  /// Enqueues `packet`; the fixed sink fires with (`packet`, `context`)
  /// after queueing + serialization + propagation. Returns false (and
  /// invokes the drop handler) when the queue is full.
  bool send(const Packet& packet, std::uint64_t context);

  /// Per-send callback variant (convenience for tests and one-off
  /// wiring; the closure may exceed the inline event buffer).
  bool send(const Packet& packet, DeliverFn on_deliver);

  /// Observer for drop-tail losses (charging-gap accounting).
  void set_drop_handler(DropFn handler) { on_drop_ = std::move(handler); }

  [[nodiscard]] std::uint32_t queued_bytes() const;
  [[nodiscard]] std::uint64_t delivered_packets() const { return delivered_; }
  [[nodiscard]] std::uint64_t dropped_packets() const { return dropped_; }

  /// Queueing + serialization delay a packet of `bytes` would see now.
  [[nodiscard]] SimTime current_delay(std::uint32_t bytes) const;

 private:
  struct InFlight {
    SimTime tx_done;
    std::uint32_t size;
  };

  [[nodiscard]] SimTime serialization_time(std::uint32_t bytes) const;
  /// Retires in-flight entries whose serialization has completed.
  void drain() const;
  /// Admission + serialization bookkeeping shared by both send paths;
  /// returns the delivery time, or -1 when the packet is dropped.
  SimTime admit(const Packet& packet);

  Simulator& sim_;
  LinkParams params_;
  SimTime busy_until_ = 0;
  // Admitted-but-unserialized packets, FIFO by tx_done. Drained lazily
  // (no per-packet dequeue event), hence mutable for const observers.
  mutable std::deque<InFlight> in_flight_;
  mutable std::uint32_t queued_bytes_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
  SinkFn sink_;
  DropFn on_drop_;
};

}  // namespace tlc::sim
