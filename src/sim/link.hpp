// Point-to-point link with finite rate, propagation delay and a
// drop-tail queue.
//
// Links model the wired segments of the testbed (eNodeB <-> SPGW S1-U,
// SPGW <-> edge server Ethernet) and serve as the serialization stage of
// the air interface behind the eNodeB scheduler. IP-layer congestion
// loss (§3.1 cause 3) happens here: packets arriving to a full queue are
// dropped *after* the upstream charging point saw them.
#pragma once

#include <cstdint>
#include <functional>

#include "sim/packet.hpp"
#include "sim/simulator.hpp"
#include "util/simtime.hpp"

namespace tlc::sim {

struct LinkParams {
  double rate_bps = 1e9;                     // serialization rate
  SimTime propagation_delay = kMillisecond;  // one-way latency
  std::uint32_t queue_limit_bytes = 256 * 1024;
};

class Link {
 public:
  using DeliverFn = std::function<void(const Packet&)>;
  using DropFn = std::function<void(const Packet&)>;

  Link(Simulator& sim, LinkParams params);

  /// Enqueues `packet`; `on_deliver` fires after queueing +
  /// serialization + propagation. Returns false (and invokes the drop
  /// handler) when the queue is full.
  bool send(const Packet& packet, DeliverFn on_deliver);

  /// Observer for drop-tail losses (charging-gap accounting).
  void set_drop_handler(DropFn handler) { on_drop_ = std::move(handler); }

  [[nodiscard]] std::uint32_t queued_bytes() const { return queued_bytes_; }
  [[nodiscard]] std::uint64_t delivered_packets() const { return delivered_; }
  [[nodiscard]] std::uint64_t dropped_packets() const { return dropped_; }

  /// Queueing + serialization delay a packet of `bytes` would see now.
  [[nodiscard]] SimTime current_delay(std::uint32_t bytes) const;

 private:
  [[nodiscard]] SimTime serialization_time(std::uint32_t bytes) const;

  Simulator& sim_;
  LinkParams params_;
  SimTime busy_until_ = 0;
  std::uint32_t queued_bytes_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
  DropFn on_drop_;
};

}  // namespace tlc::sim
