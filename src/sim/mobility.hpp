// Device mobility and handovers (§3.1 loss cause 2).
//
// A moving device periodically crosses cell borders; each handover
// interrupts the radio for tens of milliseconds (break-before-make),
// and occasionally fails outright, costing a re-establishment outage.
// The model converts speed and cell geometry into a handover process
// that the radio channel superimposes on its fading/outage state.
#pragma once

#include <cstdint>

#include "util/rng.hpp"
#include "util/simtime.hpp"

namespace tlc::sim {

struct MobilityParams {
  /// Device speed. 0 disables handovers (static camera); ~1.4 walks,
  /// ~16.7 is highway driving (the §2.2 targeted-ad cars).
  double speed_mps = 0.0;
  /// Typical distance between handover points (small-cell deployments
  /// are dense).
  double cell_radius_m = 300.0;
  /// Interruption per successful handover.
  double interruption_ms = 55.0;
  /// Probability a handover fails and needs RRC re-establishment.
  double failure_prob = 0.03;
  /// Outage on a failed handover.
  double failure_outage_s = 1.0;
};

/// Expected time between handovers for this mobility pattern.
[[nodiscard]] double handover_interval_s(const MobilityParams& params);

/// Generates the handover interruption process.
class MobilityModel {
 public:
  MobilityModel(MobilityParams params, Rng rng);

  /// Whether the device is inside a handover interruption at `t`
  /// (advances internal state; queries must be monotone).
  [[nodiscard]] bool in_interruption(SimTime t);

  [[nodiscard]] std::uint64_t handovers() const { return handovers_; }
  [[nodiscard]] std::uint64_t failed_handovers() const { return failures_; }
  [[nodiscard]] SimTime total_interruption() const { return total_; }

 private:
  void advance_to(SimTime t);

  MobilityParams params_;
  Rng rng_;
  SimTime next_handover_ = -1;  // -1: disabled
  SimTime interruption_until_ = -1;
  std::uint64_t handovers_ = 0;
  std::uint64_t failures_ = 0;
  SimTime total_ = 0;
};

}  // namespace tlc::sim
