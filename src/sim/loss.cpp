#include "sim/loss.hpp"

#include <algorithm>
#include <cmath>

namespace tlc::sim {

BernoulliLoss::BernoulliLoss(double probability, Rng rng)
    : probability_(std::clamp(probability, 0.0, 1.0)), rng_(rng) {}

bool BernoulliLoss::should_drop(const Packet& /*packet*/, SimTime /*now*/) {
  return rng_.chance(probability_);
}

GilbertElliottLoss::GilbertElliottLoss(Params params, Rng rng)
    : params_(params), rng_(rng) {}

bool GilbertElliottLoss::should_drop(const Packet& /*packet*/,
                                     SimTime /*now*/) {
  if (bad_) {
    if (rng_.chance(params_.p_bad_to_good)) bad_ = false;
  } else {
    if (rng_.chance(params_.p_good_to_bad)) bad_ = true;
  }
  return rng_.chance(bad_ ? params_.loss_in_bad : params_.loss_in_good);
}

double bler_from_rss(double rss_dbm) {
  // Logistic ramp calibrated against the paper's small-cell prototype:
  // the §3.2 experiments see a few percent residual loss even in good
  // radio (RSS >= -95 dBm: gaps of 2-8% across apps, from HARQ
  // exhaustion plus middlebox/app-layer drops that ride on top of PHY
  // loss), ramping towards ~45% around -110 dBm as link adaptation runs
  // out of MCS headroom.
  //   -85 dBm -> ~0.5%   -95 dBm -> ~4%   -105 dBm -> ~23%
  //   -110 dBm -> ~45%   -120 dBm -> ~86%
  const double x = (rss_dbm + 111.0) / 5.0;
  const double bler = 1.0 / (1.0 + std::exp(x));
  // Keep a small residual HARQ-failure floor even in perfect signal.
  return std::clamp(bler, 0.002, 1.0);
}

}  // namespace tlc::sim
