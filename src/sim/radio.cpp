#include "sim/radio.hpp"

#include <algorithm>
#include <cmath>

#include "sim/loss.hpp"

namespace tlc::sim {

RadioChannel::RadioChannel(RadioParams params, Rng rng)
    : params_(params), rng_(rng), rss_dbm_(params.mean_rss_dbm) {
  if (params_.mobility.speed_mps > 0.0) {
    mobility_.emplace(params_.mobility, rng_.fork());
  }
  // Draw the first connected episode length.
  if (params_.disconnect_ratio > 0.0 && params_.disconnect_ratio < 1.0) {
    const double mean_connected_s = params_.mean_outage_s *
                                    (1.0 - params_.disconnect_ratio) /
                                    params_.disconnect_ratio;
    episode_ends_at_ = from_seconds(rng_.exponential(mean_connected_s));
  } else {
    episode_ends_at_ = -1;  // never toggles
  }
}

void RadioChannel::step_tick() {
  const double dt = to_seconds(params_.tick);

  // Ornstein-Uhlenbeck RSS update.
  const double drift =
      params_.rss_reversion_per_s * (params_.mean_rss_dbm - rss_dbm_) * dt;
  const double diffusion = params_.rss_stddev_db *
                           std::sqrt(2.0 * params_.rss_reversion_per_s * dt) *
                           rng_.gaussian();
  rss_dbm_ += drift + diffusion;
  rss_dbm_ = std::clamp(rss_dbm_, -140.0, -40.0);

  const SimTime next = current_ + params_.tick;

  // Connectivity episode transitions.
  if (episode_ends_at_ >= 0) {
    while (episode_ends_at_ <= next) {
      const SimTime toggle_at = episode_ends_at_;
      if (connected_) {
        connected_ = false;
        outage_started_at_ = toggle_at;
        const double outage_s =
            std::max(0.05, rng_.exponential(params_.mean_outage_s));
        episode_ends_at_ = toggle_at + from_seconds(outage_s);
      } else {
        disconnected_accum_ += toggle_at - outage_started_at_;
        connected_ = true;
        outage_started_at_ = -1;
        const double mean_connected_s = params_.mean_outage_s *
                                        (1.0 - params_.disconnect_ratio) /
                                        params_.disconnect_ratio;
        const double connected_s =
            std::max(0.05, rng_.exponential(mean_connected_s));
        episode_ends_at_ = toggle_at + from_seconds(connected_s);
      }
    }
  }
  current_ = next;
}

void RadioChannel::advance_to(SimTime t) {
  while (current_ + params_.tick <= t) {
    step_tick();
  }
}

bool RadioChannel::mobility_interrupted(SimTime t) {
  return mobility_ && mobility_->in_interruption(t);
}

double RadioChannel::rss(SimTime t) {
  advance_to(t);
  // During an outage the measurable signal collapses; report a floor so
  // Fig 4-style timelines show the characteristic dips.
  const bool up = connected_ && !mobility_interrupted(t);
  return up ? rss_dbm_ : std::min(rss_dbm_, -120.0);
}

bool RadioChannel::connected(SimTime t) {
  advance_to(t);
  // Handover interruptions do NOT read as loss of service: the UE
  // context stays alive and the scheduler keeps transmitting — but the
  // in-flight data dies on the floor (no X2 forwarding, [10]). That is
  // why packet_loss_probability is 1 during them while connected()
  // remains true: handover loss is charged-then-lost, exactly the gap
  // source §3.1 cause 2 describes.
  return connected_;
}

double RadioChannel::packet_loss_probability(SimTime t) {
  advance_to(t);
  if (!connected_ || mobility_interrupted(t)) return 1.0;
  return bler_from_rss(rss_dbm_);
}

SimTime RadioChannel::total_disconnected(SimTime t) {
  advance_to(t);
  SimTime total = disconnected_accum_;
  if (!connected_ && outage_started_at_ >= 0 && t > outage_started_at_) {
    total += t - outage_started_at_;
  }
  if (mobility_) {
    (void)mobility_->in_interruption(t);  // advance the handover process
    total += mobility_->total_interruption();
  }
  return total;
}

double RadioChannel::measured_disconnect_ratio(SimTime t) {
  if (t <= 0) return 0.0;
  return static_cast<double>(total_disconnected(t)) / static_cast<double>(t);
}

}  // namespace tlc::sim
