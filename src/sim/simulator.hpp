// Discrete-event simulation engine.
//
// Single-threaded, deterministic: events at the same timestamp fire in
// scheduling order. Everything in the emulated testbed — workload packet
// arrivals, link serialization, RRC timers, charging-cycle boundaries —
// is an event on this queue.
//
// The hot path is allocation-free: callables live in slab-allocated
// slots (EventFn keeps captures ≤48 bytes inline), the pending set is a
// 4-ary min-heap of 24-byte POD entries, and slots recycle through a
// free list. A slot stays pinned until its heap entry pops — cancel()
// only disarms it — so each heap entry maps to exactly one slot
// incarnation and generations are needed only to reject stale ids.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "sim/event_fn.hpp"
#include "util/simtime.hpp"

namespace tlc::sim {

class Simulator {
 public:
  using Action = EventFn;

  /// Current simulated time.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `action` at absolute time `at` (clamped to now()).
  /// Returns an id usable with cancel().
  std::uint64_t schedule_at(SimTime at, Action action);

  /// Schedules `action` after a relative delay.
  std::uint64_t schedule_after(SimTime delay, Action action);

  /// Cancels a pending event; no-op if it already fired or was cancelled.
  void cancel(std::uint64_t id);

  /// Runs events until the queue is empty or the horizon is passed.
  /// now() advances to the horizon even if later events remain pending.
  void run_until(SimTime horizon);

  /// Runs until the queue drains completely.
  void run();

  /// Pending (non-cancelled) event count.
  [[nodiscard]] std::size_t pending() const { return live_; }

  /// Total events executed so far (for harness diagnostics).
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

 private:
  static constexpr std::uint32_t kNoSlot = 0xffffffffu;
  static constexpr std::size_t kSlotsPerBlock = 512;

  struct Slot {
    EventFn action;
    std::uint32_t generation = 0;  // bumped on release; validates cancel(id)
    std::uint32_t next_free = kNoSlot;
    bool armed = false;
  };

  // POD heap entry; (at, seq) gives FIFO order at equal timestamps.
  struct HeapEntry {
    SimTime at;
    std::uint64_t seq;
    std::uint32_t slot;
  };

  static bool entry_less(const HeapEntry& a, const HeapEntry& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.seq < b.seq;
  }

  Slot& slot_at(std::uint32_t index) {
    return blocks_[index / kSlotsPerBlock][index % kSlotsPerBlock];
  }
  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t index);
  void heap_push(HeapEntry entry);
  void heap_pop();
  void drop_disarmed_heads();

  bool step();  // executes one event; false if queue empty

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::size_t live_ = 0;  // armed (schedulable) events; cancel drops this
  std::vector<HeapEntry> heap_;
  std::vector<std::unique_ptr<Slot[]>> blocks_;  // stable slot addresses
  std::uint32_t slot_count_ = 0;
  std::uint32_t free_head_ = kNoSlot;
};

}  // namespace tlc::sim
