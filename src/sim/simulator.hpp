// Discrete-event simulation engine.
//
// Single-threaded, deterministic: events at the same timestamp fire in
// scheduling order. Everything in the emulated testbed — workload packet
// arrivals, link serialization, RRC timers, charging-cycle boundaries —
// is an event on this queue.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>

#include "util/simtime.hpp"

namespace tlc::sim {

class Simulator {
 public:
  using Action = std::function<void()>;

  /// Current simulated time.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `action` at absolute time `at` (clamped to now()).
  /// Returns an id usable with cancel().
  std::uint64_t schedule_at(SimTime at, Action action);

  /// Schedules `action` after a relative delay.
  std::uint64_t schedule_after(SimTime delay, Action action);

  /// Cancels a pending event; no-op if it already fired or was cancelled.
  void cancel(std::uint64_t id);

  /// Runs events until the queue is empty or the horizon is passed.
  /// now() advances to the horizon even if later events remain pending.
  void run_until(SimTime horizon);

  /// Runs until the queue drains completely.
  void run();

  /// Pending (non-cancelled) event count.
  [[nodiscard]] std::size_t pending() const { return actions_.size(); }

  /// Total events executed so far (for harness diagnostics).
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

 private:
  struct Event {
    SimTime at = 0;
    std::uint64_t seq = 0;  // tie-break: FIFO at equal time
    std::uint64_t id = 0;
    // Reversed comparison for min-heap via std::priority_queue.
    bool operator<(const Event& other) const {
      if (at != other.at) return at > other.at;
      return seq > other.seq;
    }
  };

  bool step();  // executes one event; false if queue empty

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::priority_queue<Event> queue_;
  // Actions keyed by event id; cancel() erases the entry so the popped
  // event becomes a no-op.
  std::unordered_map<std::uint64_t, Action> actions_;
};

}  // namespace tlc::sim
