#include "testbed/testbed.hpp"

#include <algorithm>
#include <cassert>

#include "workloads/background.hpp"
#include "workloads/gaming.hpp"
#include "workloads/vr_gvsp.hpp"
#include "workloads/webcam.hpp"

namespace tlc::testbed {
namespace {

constexpr SimTime kBoundaryGrace = 50 * kSecond;
constexpr SimTime kCounterCheckLead = 120 * kMillisecond;

/// Clock offsets are clamped so a boundary sample cannot drift into a
/// neighbouring cycle's territory entirely.
SimTime draw_clamped_offset(const charging::ClockModel& model, Rng& rng,
                            SimTime max_abs) {
  const SimTime offset = model.draw_offset(rng);
  return std::clamp<SimTime>(offset, -max_abs, max_abs);
}

}  // namespace

Testbed::Testbed(ScenarioConfig config)
    : config_(std::move(config)), rng_(config_.seed) {
  // Radio channels: the app device per the scenario, the background
  // phone in strong signal with no outages (it only exists to congest
  // the cell).
  sim::RadioParams app_radio_params;
  app_radio_params.mean_rss_dbm = config_.mean_rss_dbm;
  app_radio_params.disconnect_ratio = config_.disconnect_ratio;
  app_radio_params.mean_outage_s = config_.mean_outage_s;
  app_radio_params.mobility = config_.mobility;
  app_radio_ = std::make_unique<sim::RadioChannel>(app_radio_params,
                                                   rng_.fork());
  sim::RadioParams bg_radio_params;
  bg_radio_params.mean_rss_dbm = -70.0;
  bg_radio_ = std::make_unique<sim::RadioChannel>(bg_radio_params, rng_.fork());

  enodeb_ = std::make_unique<epc::EnodeB>(sim_, config_.enodeb,
                                          rng_.fork());
  mme_ = std::make_unique<epc::Mme>(sim_, hss_);
  spgw_ = std::make_unique<epc::Spgw>(sim_, *enodeb_);
  server_ = std::make_unique<EdgeServer>(sim_, *spgw_);
  spgw_->set_server_sink([this](epc::Imsi imsi, const sim::Packet& packet) {
    server_->deliver_uplink(imsi, packet);
  });

  app_ue_ = std::make_unique<epc::UeDevice>(sim_, kAppImsi, config_.device,
                                            app_radio_.get(), enodeb_.get(),
                                            rng_.fork());
  app_ue_->set_traffic_stats_tamper(config_.edge_trafficstats_tamper);
  bg_ue_ = std::make_unique<epc::UeDevice>(sim_, kBackgroundImsi,
                                           epc::device_s7edge(),
                                           bg_radio_.get(), enodeb_.get(),
                                           rng_.fork());
  app_ue_->set_app_receive_handler(
      [this](const sim::Packet& packet) { on_app_receive(packet); });

  // Subscriber provisioning + QoS rules.
  hss_.provision(epc::SubscriberProfile{kAppImsi, "edge-app-device",
                                        config_.device});
  hss_.provision(epc::SubscriberProfile{kBackgroundImsi, "background-phone",
                                        epc::device_s7edge()});
  pcrf_.install_rule(kAppFlow, app_qci(config_.app));
  pcrf_.install_rule(kBackgroundFlow, sim::Qci::kQci9);

  // Operator's tamper-resilient monitor feed (§5.4).
  if (config_.enable_counter_check) {
    enodeb_->set_counter_check_handler(
        [this](epc::Imsi imsi, std::uint64_t ul, std::uint64_t dl,
               SimTime at) {
          if (imsi == kAppImsi) {
            rrc_ul_.on_report(ul, dl, at);
            rrc_dl_.on_report(ul, dl, at);
          }
        });
  }

  wire_attach_handling();
  build_sources();
  build_samplers();
}

void Testbed::wire_attach_handling() {
  mme_->set_state_change_handler([this](epc::Imsi imsi, bool attached) {
    epc::UeDevice* ue = imsi == kAppImsi ? app_ue_.get() : bg_ue_.get();
    sim::RadioChannel* radio =
        imsi == kAppImsi ? app_radio_.get() : bg_radio_.get();
    if (attached) {
      spgw_->create_session(imsi);
      enodeb_->add_ue(imsi, ue, radio);
      ue->set_attached(true);
    } else {
      spgw_->close_session(imsi);
      enodeb_->remove_ue(imsi);
      ue->set_attached(false);
    }
  });
  const bool app_ok = mme_->register_ue(kAppImsi, app_radio_.get());
  const bool bg_ok = mme_->register_ue(kBackgroundImsi, bg_radio_.get());
  assert(app_ok && bg_ok);
  (void)app_ok;
  (void)bg_ok;
}

void Testbed::build_sources() {
  const sim::Direction direction = app_direction(config_.app);
  const sim::Qci qci = pcrf_.qci_for(kAppFlow);

  workloads::TrafficSource::EmitFn app_sink;
  if (direction == sim::Direction::Uplink) {
    app_sink = [this](const sim::Packet& p) { app_ue_->app_send(p); };
  } else {
    app_sink = [this](const sim::Packet& p) {
      server_->app_send(kAppImsi, p);
    };
  }

  if (config_.replay_trace) {
    // The paper's methodology: loop a captured trace (tcprelay) through
    // the testbed instead of running a generative model.
    app_source_ = std::make_unique<workloads::TraceReplaySource>(
        sim_, app_sink, kAppFlow, *config_.replay_trace, /*loop=*/true);
    return build_background_source(direction);
  }
  switch (config_.app) {
    case AppKind::WebcamRtsp:
      app_source_ = std::make_unique<workloads::WebcamSource>(
          sim_, app_sink, kAppFlow, direction, qci,
          workloads::webcam_rtsp_params(), rng_.fork(), "WebCam (RTSP)");
      break;
    case AppKind::WebcamUdp:
    case AppKind::WebcamUdpDownlink:
      app_source_ = std::make_unique<workloads::WebcamSource>(
          sim_, app_sink, kAppFlow, direction, qci,
          workloads::webcam_udp_params(), rng_.fork(), "WebCam (UDP)");
      break;
    case AppKind::VrGvsp:
      app_source_ = std::make_unique<workloads::VrGvspSource>(
          sim_, app_sink, kAppFlow, direction, qci, workloads::VrGvspParams{},
          rng_.fork());
      break;
    case AppKind::GamingQci7:
    case AppKind::GamingQci9:
      app_source_ = std::make_unique<workloads::GamingSource>(
          sim_, app_sink, kAppFlow, direction, qci, workloads::GamingParams{},
          rng_.fork());
      break;
  }
  build_background_source(direction);
}

void Testbed::build_background_source(sim::Direction direction) {

  if (config_.background_mbps > 0.0) {
    workloads::TrafficSource::EmitFn bg_sink;
    if (direction == sim::Direction::Uplink) {
      bg_sink = [this](const sim::Packet& p) { bg_ue_->app_send(p); };
    } else {
      // Background downlink arrives from the Internet side of the
      // gateway, not from the edge server (it must not touch the edge
      // vendor's netstat counters).
      bg_sink = [this](const sim::Packet& p) {
        spgw_->downlink_submit(kBackgroundImsi, p);
      };
    }
    workloads::BackgroundParams bg_params;
    bg_params.rate_mbps = config_.background_mbps;
    bg_source_ = std::make_unique<workloads::BackgroundUdpSource>(
        sim_, bg_sink, kBackgroundFlow, direction, bg_params, rng_.fork());
  }
}

void Testbed::build_samplers() {
  const sim::Direction direction = app_direction(config_.app);
  const charging::ClockModel exact{0.0, 0.0};
  auto make_monitor = [this](std::string name,
                             std::function<std::uint64_t()> reader)
      -> const charging::UsageMonitor& {
    monitors_.push_back(std::make_unique<charging::CallbackMonitor>(
        std::move(name), std::move(reader)));
    return *monitors_.back();
  };

  // Ground-truth counting points.
  const charging::UsageMonitor& true_sent =
      direction == sim::Direction::Uplink
          ? make_monitor("true-sent", [this] { return app_ue_->app_tx_bytes(); })
          : make_monitor("true-sent", [this] { return server_->sent_bytes(kAppImsi); });
  const charging::UsageMonitor& true_received =
      direction == sim::Direction::Uplink
          ? make_monitor("true-received",
                         [this] { return server_->received_bytes(kAppImsi); })
          : make_monitor("true-received",
                         [this] { return app_ue_->app_rx_bytes(); });

  // Operator's gateway counter for the app's direction (the legacy
  // billing basis).
  const charging::UsageMonitor& gateway =
      direction == sim::Direction::Uplink
          ? make_monitor("gateway-ul",
                         [this] { return spgw_->uplink_bytes(kAppImsi); })
          : make_monitor("gateway-dl",
                         [this] { return spgw_->downlink_bytes(kAppImsi); });

  // Operator's view of the other endpoint: RRC COUNTER CHECK when
  // activated (§5.4 "our solution"), else the tamperable user-space
  // TrafficStats API (strawman 1).
  const charging::UsageMonitor* op_far_side = nullptr;
  if (config_.enable_counter_check) {
    op_far_side = direction == sim::Direction::Uplink
                      ? static_cast<const charging::UsageMonitor*>(&rrc_ul_)
                      : static_cast<const charging::UsageMonitor*>(&rrc_dl_);
  } else {
    op_far_side =
        direction == sim::Direction::Uplink
            ? &make_monitor("trafficstats-tx",
                            [this] { return app_ue_->traffic_stats_tx(); })
            : &make_monitor("trafficstats-rx",
                            [this] { return app_ue_->traffic_stats_rx(); });
  }

  // Per-party assembled (sent, received) views.
  const charging::UsageMonitor& edge_sent = true_sent;
  const charging::UsageMonitor& edge_received = true_received;
  const charging::UsageMonitor& op_sent =
      direction == sim::Direction::Uplink ? *op_far_side : gateway;
  const charging::UsageMonitor& op_received =
      direction == sim::Direction::Uplink ? gateway : *op_far_side;

  true_sent_sampler_ =
      std::make_unique<charging::CycleSampler>(sim_, true_sent, exact,
                                               rng_.fork());
  true_received_sampler_ = std::make_unique<charging::CycleSampler>(
      sim_, true_received, exact, rng_.fork());
  edge_sent_sampler_ = std::make_unique<charging::CycleSampler>(
      sim_, edge_sent, exact, rng_.fork());
  edge_received_sampler_ = std::make_unique<charging::CycleSampler>(
      sim_, edge_received, exact, rng_.fork());
  op_sent_sampler_ = std::make_unique<charging::CycleSampler>(
      sim_, op_sent, exact, rng_.fork());
  op_received_sampler_ = std::make_unique<charging::CycleSampler>(
      sim_, op_received, exact, rng_.fork());
  gateway_sampler_ = std::make_unique<charging::CycleSampler>(
      sim_, gateway, exact, rng_.fork());
}

void Testbed::schedule_cycle_boundaries() {
  const SimTime max_offset = std::min<SimTime>(
      kBoundaryGrace - 5 * kSecond, config_.cycle_length / 2);
  const double cycle_s = to_seconds(config_.cycle_length);
  const charging::ClockModel edge_clock{
      config_.edge_clock_rel_std * cycle_s, 0.0};
  const charging::ClockModel op_clock{
      config_.operator_clock_rel_std * cycle_s, 0.0};
  Rng edge_clock_rng = rng_.fork();
  Rng op_clock_rng = rng_.fork();

  for (int i = 0; i <= config_.cycles; ++i) {
    const SimTime nominal = static_cast<SimTime>(i) * config_.cycle_length;
    const SimTime edge_at =
        nominal + draw_clamped_offset(edge_clock, edge_clock_rng, max_offset);
    const SimTime op_at =
        nominal + draw_clamped_offset(op_clock, op_clock_rng, max_offset);

    true_sent_sampler_->schedule_boundary(nominal);
    true_received_sampler_->schedule_boundary(nominal);
    edge_sent_sampler_->schedule_boundary(edge_at);
    edge_received_sampler_->schedule_boundary(edge_at);
    op_sent_sampler_->schedule_boundary(op_at);
    op_received_sampler_->schedule_boundary(op_at);
    gateway_sampler_->schedule_boundary(op_at);

    // The operator refreshes its RRC-based record just before it
    // snapshots (bounded overhead: one COUNTER CHECK per boundary plus
    // those piggybacked on RRC releases).
    if (config_.enable_counter_check) {
      sim_.schedule_at(std::max<SimTime>(op_at - kCounterCheckLead, 0),
                       [this] { enodeb_->request_counter_check(kAppImsi); });
    }
  }
}

void Testbed::on_app_receive(const sim::Packet& packet) {
  if (packet.flow_id == EdgeServer::kPingFlow) {
    rtt_ms_.push_back(to_millis(sim_.now() - packet.created_at));
  }
}

void Testbed::record_timeline_point() {
  const sim::Direction direction = app_direction(config_.app);
  const std::uint64_t device_bytes = direction == sim::Direction::Uplink
                                         ? app_ue_->app_tx_bytes()
                                         : app_ue_->app_rx_bytes();
  const std::uint64_t charged_bytes =
      direction == sim::Direction::Uplink
          ? spgw_->uplink_bytes(kAppImsi)
          : spgw_->downlink_bytes(kAppImsi);
  // The "edge side" cumulative for the gap: what the edge metered.
  const std::uint64_t edge_bytes = direction == sim::Direction::Uplink
                                       ? app_ue_->app_tx_bytes()
                                       : app_ue_->app_rx_bytes();

  TimelinePoint point;
  point.at = sim_.now();
  const double delta_bytes =
      static_cast<double>(device_bytes - timeline_prev_device_bytes_);
  point.device_rate_mbps =
      delta_bytes * 8.0 / 1e6 / to_seconds(timeline_interval_);
  timeline_prev_device_bytes_ = device_bytes;
  point.charged_cum_mb = static_cast<double>(charged_bytes) / 1e6;
  point.device_cum_mb = static_cast<double>(edge_bytes) / 1e6;
  point.gap_mb = point.charged_cum_mb >= point.device_cum_mb
                     ? point.charged_cum_mb - point.device_cum_mb
                     : point.device_cum_mb - point.charged_cum_mb;
  point.rss_dbm = app_radio_->rss(sim_.now());
  point.connected = app_radio_->connected(sim_.now());
  timeline_.push_back(point);

  sim_.schedule_after(timeline_interval_, [this] { record_timeline_point(); });
}

void Testbed::send_ping() {
  if (pings_remaining_ <= 0) return;
  --pings_remaining_;
  sim::Packet probe;
  probe.id = next_ping_id_++;
  probe.flow_id = EdgeServer::kPingFlow;
  probe.size_bytes = 64;
  probe.direction = sim::Direction::Uplink;
  // Probes ride the application's bearer, so the measured RTT reflects
  // the QoS class the app actually experiences (QCI 7 gaming pings are
  // not stuck behind best-effort backlog).
  probe.qci = app_qci(config_.app);
  probe.created_at = sim_.now();
  app_ue_->app_send(probe);
  sim_.schedule_after(ping_interval_, [this] { send_ping(); });
}

void Testbed::enable_timeline(SimTime interval) {
  timeline_enabled_ = true;
  timeline_interval_ = interval;
}

void Testbed::enable_rtt_probes(int count, SimTime interval) {
  pings_remaining_ = count;
  ping_interval_ = interval;
}

double Testbed::measured_disconnect_ratio() {
  return app_radio_->measured_disconnect_ratio(sim_.now());
}

const std::vector<CycleMeasurements>& Testbed::run() {
  if (ran_) return cycles_;
  ran_ = true;

  schedule_cycle_boundaries();
  mme_->start();
  app_source_->start(0);
  if (bg_source_) bg_source_->start(0);
  if (timeline_enabled_) {
    sim_.schedule_after(timeline_interval_,
                        [this] { record_timeline_point(); });
  }
  if (pings_remaining_ > 0) {
    sim_.schedule_after(2 * kSecond, [this] { send_ping(); });
  }

  const SimTime horizon =
      static_cast<SimTime>(config_.cycles) * config_.cycle_length +
      kBoundaryGrace;
  sim_.run_until(horizon);

  // Stop sources so the simulator can quiesce if the caller keeps going.
  app_source_->stop();
  if (bg_source_) bg_source_->stop();

  cycles_.resize(static_cast<std::size_t>(config_.cycles));
  for (int i = 0; i < config_.cycles; ++i) {
    auto& cycle = cycles_[static_cast<std::size_t>(i)];
    const auto idx = static_cast<std::size_t>(i);
    cycle.true_sent = true_sent_sampler_->cycle_volume(idx);
    cycle.true_received = true_received_sampler_->cycle_volume(idx);
    cycle.edge_sent = edge_sent_sampler_->cycle_volume(idx);
    cycle.edge_received = edge_received_sampler_->cycle_volume(idx);
    cycle.op_sent = op_sent_sampler_->cycle_volume(idx);
    cycle.op_received = op_received_sampler_->cycle_volume(idx);
    cycle.gateway_volume = gateway_sampler_->cycle_volume(idx);
  }
  return cycles_;
}

}  // namespace tlc::testbed
