#include "testbed/report.hpp"

#include <algorithm>
#include <sstream>

namespace tlc::testbed {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t i = 0; i < headers_.size(); ++i) {
    widths[i] = headers_[i].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      out << (i == 0 ? "" : "  ");
      out << row[i];
      out << std::string(widths[i] - row[i].size(), ' ');
    }
    out << '\n';
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  out << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

void TextTable::print() const { std::fputs(render().c_str(), stdout); }

void print_cdf(const std::string& title, const Samples& samples,
               std::size_t points, const char* unit) {
  std::printf("%s  (n=%zu, mean=%.2f%s)\n", title.c_str(), samples.count(),
              samples.mean(), unit);
  for (const auto& [value, fraction] : samples.cdf(points)) {
    std::printf("  %8.2f%s : %5.1f%%\n", value, unit, fraction * 100.0);
  }
}

void print_banner(const std::string& title) {
  std::printf("\n==== %s ====\n\n", title.c_str());
}

std::string cell(double v, int precision) {
  return format_double(v, precision);
}

std::string cell_pct(double ratio, int precision) {
  return format_double(ratio * 100.0, precision) + "%";
}

}  // namespace tlc::testbed
