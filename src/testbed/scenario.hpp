// Scenario configuration mirroring the paper's testbed (§7, Fig 11):
// one LTE small cell + OpenEPC-style core, an edge server co-located
// with the core, an app device, and a second phone absorbing iperf
// background traffic.
#pragma once

#include <cstdint>
#include <string>

#include <memory>

#include "charging/plan.hpp"
#include "charging/sampler.hpp"
#include "epc/enodeb.hpp"
#include "epc/profiles.hpp"
#include "sim/mobility.hpp"
#include "sim/packet.hpp"
#include "util/simtime.hpp"
#include "workloads/trace.hpp"

namespace tlc::testbed {

/// The four §7.1 applications (gaming in both QoS configurations), plus
/// the downlink UDP WebCam variant the Fig 4 intermittent-connectivity
/// experiment streams.
enum class AppKind {
  WebcamRtsp,         // 0.77 Mbps UL
  WebcamUdp,          // 1.73 Mbps UL
  WebcamUdpDownlink,  // 1.73 Mbps DL (Fig 4)
  VrGvsp,             // 9.0 Mbps DL
  GamingQci7,         // 0.02 Mbps DL, accelerated
  GamingQci9,         // same stream, best-effort
};

[[nodiscard]] const char* app_name(AppKind app);
[[nodiscard]] sim::Direction app_direction(AppKind app);
[[nodiscard]] sim::Qci app_qci(AppKind app);
[[nodiscard]] double app_nominal_mbps(AppKind app);

struct ScenarioConfig {
  AppKind app = AppKind::WebcamUdp;

  /// When set, the app traffic is this captured trace replayed in a
  /// loop (the paper's tcpdump + tcprelay methodology) instead of the
  /// generative model for `app`; `app` still selects the direction and
  /// QoS class.
  std::shared_ptr<const workloads::Trace> replay_trace;

  /// iperf UDP background to the second phone (the congestion knob of
  /// Figs 3/13); runs in the app's direction on QCI 9.
  double background_mbps = 0.0;

  /// Radio environment of the app device. -92 dBm reproduces the
  /// paper's "good radio" (RSS >= -95 dBm) baseline loss of a few
  /// percent; sweep below -95 for the weak-signal experiments.
  double mean_rss_dbm = -92.0;
  /// Intermittent disconnectivity ratio η (Figs 4/14); 0 disables.
  double disconnect_ratio = 0.0;
  double mean_outage_s = 1.93;

  /// Device mobility (handover loss, §3.1 cause 2); speed 0 disables.
  sim::MobilityParams mobility{};

  /// Data plan.
  double plan_c = 0.5;

  /// Charging cycle length. The paper uses 1-hour cycles; experiments
  /// here default to compressed cycles and scale gaps to MB/hr.
  SimTime cycle_length = 60 * kSecond;
  int cycles = 3;

  std::uint64_t seed = 1;
  epc::DeviceProfile device = epc::device_el20();

  /// Small-cell parameters (capacity, queue depth, RRC timers).
  epc::EnodebParams enodeb{};

  /// Clock discipline per party as a *fraction of the cycle length*
  /// (drives the Fig 18 record errors: the paper's coarse cycle sync
  /// leaves ~1-2% volume error on hour cycles). The testbed converts to
  /// absolute boundary offsets: stddev = rel * cycle_length.
  double edge_clock_rel_std = 0.0075;
  double operator_clock_rel_std = 0.012;

  /// §5.4 tamper-resilient monitor on/off (off falls back to nothing —
  /// the operator's received-side view degrades to the gateway count).
  bool enable_counter_check = true;

  /// Optional tampering by a selfish edge on user-space TrafficStats
  /// (strawman demo): 1.0 = honest.
  double edge_trafficstats_tamper = 1.0;

  [[nodiscard]] std::string describe() const;
};

/// One member of a fleet population: the per-UE knobs a fleet engine
/// draws from its shard RNG stream. Everything not listed here (cycle
/// structure, cell parameters, plan, clock discipline) is inherited
/// from the fleet's base scenario.
struct FleetMember {
  AppKind app = AppKind::WebcamUdp;
  double mean_rss_dbm = -92.0;
  double disconnect_ratio = 0.0;
  double mobility_speed_mps = 0.0;
  std::uint64_t seed = 1;
};

/// Lifts a base scenario to one fleet member's scenario: applies the
/// member overrides and leaves every shared knob untouched. The lift is
/// the single place the base → per-UE mapping lives, so a one-UE
/// Testbed run with a lifted config and a fleet shard slot agree on
/// what the member's world looks like.
[[nodiscard]] ScenarioConfig lift_scenario(const ScenarioConfig& base,
                                           const FleetMember& member);

}  // namespace tlc::testbed
