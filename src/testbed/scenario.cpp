#include "testbed/scenario.hpp"

#include <sstream>

namespace tlc::testbed {

const char* app_name(AppKind app) {
  switch (app) {
    case AppKind::WebcamRtsp:
      return "WebCam (RTSP, UL)";
    case AppKind::WebcamUdp:
      return "WebCam (UDP, UL)";
    case AppKind::WebcamUdpDownlink:
      return "WebCam (UDP, DL)";
    case AppKind::VrGvsp:
      return "VRidge (GVSP, DL)";
    case AppKind::GamingQci7:
      return "Gaming w/ QCI=7 (UDP, DL)";
    case AppKind::GamingQci9:
      return "Gaming w/ QCI=9 (UDP, DL)";
  }
  return "?";
}

sim::Direction app_direction(AppKind app) {
  switch (app) {
    case AppKind::WebcamRtsp:
    case AppKind::WebcamUdp:
      return sim::Direction::Uplink;
    case AppKind::WebcamUdpDownlink:
    case AppKind::VrGvsp:
    case AppKind::GamingQci7:
    case AppKind::GamingQci9:
      return sim::Direction::Downlink;
  }
  return sim::Direction::Uplink;
}

sim::Qci app_qci(AppKind app) {
  return app == AppKind::GamingQci7 ? sim::Qci::kQci7 : sim::Qci::kQci9;
}

double app_nominal_mbps(AppKind app) {
  switch (app) {
    case AppKind::WebcamRtsp:
      return 0.77;
    case AppKind::WebcamUdp:
    case AppKind::WebcamUdpDownlink:
      return 1.73;
    case AppKind::VrGvsp:
      return 9.0;
    case AppKind::GamingQci7:
    case AppKind::GamingQci9:
      return 0.02;
  }
  return 0.0;
}

std::string ScenarioConfig::describe() const {
  std::ostringstream out;
  out << app_name(app) << " bg=" << background_mbps << "Mbps"
      << " rss=" << mean_rss_dbm << "dBm"
      << " eta=" << disconnect_ratio << " c=" << plan_c
      << " cycle=" << to_seconds(cycle_length) << "s x" << cycles
      << " seed=" << seed;
  return out.str();
}

ScenarioConfig lift_scenario(const ScenarioConfig& base,
                             const FleetMember& member) {
  ScenarioConfig config = base;
  config.app = member.app;
  config.mean_rss_dbm = member.mean_rss_dbm;
  config.disconnect_ratio = member.disconnect_ratio;
  config.mobility.speed_mps = member.mobility_speed_mps;
  config.seed = member.seed;
  return config;
}

}  // namespace tlc::testbed
