#include "testbed/edge_server.hpp"

namespace tlc::testbed {

EdgeServer::EdgeServer(sim::Simulator& sim, epc::Spgw& spgw)
    : sim_(sim), spgw_(spgw) {}

std::uint64_t EdgeServer::sent_bytes(epc::Imsi imsi) const {
  auto it = counters_.find(imsi);
  return it == counters_.end() ? 0 : it->second.sent;
}

std::uint64_t EdgeServer::received_bytes(epc::Imsi imsi) const {
  auto it = counters_.find(imsi);
  return it == counters_.end() ? 0 : it->second.received;
}

void EdgeServer::app_send(epc::Imsi imsi, const sim::Packet& packet) {
  counters_[imsi].sent += packet.size_bytes;
  spgw_.downlink_submit(imsi, packet);
}

void EdgeServer::deliver_uplink(epc::Imsi imsi, const sim::Packet& packet) {
  if (packet.flow_id == kPingFlow) {
    // Echo the probe downlink with negligible server turnaround. Probes
    // stay out of the app's netstat counters, as a real deployment
    // would use a separate diagnostic socket.
    sim::Packet echo = packet;
    echo.direction = sim::Direction::Downlink;
    echo.created_at = packet.created_at;  // carry the departure stamp
    sim_.schedule_after(200 * kMicrosecond, [this, imsi, echo] {
      spgw_.downlink_submit(imsi, echo);
    });
    return;
  }
  counters_[imsi].received += packet.size_bytes;
  if (on_receive_) on_receive_(imsi, packet);
}

}  // namespace tlc::testbed
