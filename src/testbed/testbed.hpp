// The emulated testbed of §7 / Figure 11, assembled.
//
// One small cell (eNodeB) + EPC function nodes (HSS, MME, PCRF, SPGW,
// and the charging monitors that feed OFCS/TLC), an edge server
// co-located with the core, the application device, and a second phone
// absorbing iperf background traffic.
//
// `run()` drives the configured number of charging cycles and returns,
// per cycle, the ground-truth volumes and each party's sampled
// measurements — everything the charging schemes (legacy / TLC) need.
#pragma once

#include <memory>
#include <vector>

#include "charging/monitors.hpp"
#include "charging/sampler.hpp"
#include "epc/enodeb.hpp"
#include "epc/hss.hpp"
#include "epc/mme.hpp"
#include "epc/pcrf.hpp"
#include "epc/spgw.hpp"
#include "epc/ue.hpp"
#include "sim/radio.hpp"
#include "sim/simulator.hpp"
#include "testbed/edge_server.hpp"
#include "testbed/scenario.hpp"
#include "workloads/source.hpp"

namespace tlc::testbed {

/// Everything measured for one charging cycle.
struct CycleMeasurements {
  // Ground truth at exact nominal boundaries.
  std::uint64_t true_sent = 0;      // x̂e
  std::uint64_t true_received = 0;  // x̂o
  // Edge vendor's sampled view (its own clock).
  std::uint64_t edge_sent = 0;
  std::uint64_t edge_received = 0;
  // Operator's sampled view (its own clock; received/sent side via RRC
  // COUNTER CHECK or the gateway depending on direction).
  std::uint64_t op_sent = 0;
  std::uint64_t op_received = 0;
  // What the legacy 4G/5G bill would be based on (the gateway CDR for
  // the app's direction).
  std::uint64_t gateway_volume = 0;
};

/// One sample of the Fig 4 timeline.
struct TimelinePoint {
  SimTime at = 0;
  double device_rate_mbps = 0.0;   // app-layer goodput at the device side
  double charged_cum_mb = 0.0;     // operator (gateway) cumulative, MB
  double device_cum_mb = 0.0;      // device/server cumulative, MB
  double gap_mb = 0.0;             // charged - device
  double rss_dbm = 0.0;
  bool connected = true;
};

class Testbed {
 public:
  explicit Testbed(ScenarioConfig config);

  /// Record a Fig 4-style timeline at `interval` (call before run()).
  void enable_timeline(SimTime interval = kSecond);

  /// Schedule `count` RTT probes spaced `interval` (call before run()).
  void enable_rtt_probes(int count, SimTime interval = kSecond);

  /// Runs all cycles; idempotent (subsequent calls return cached data).
  const std::vector<CycleMeasurements>& run();

  [[nodiscard]] const std::vector<TimelinePoint>& timeline() const {
    return timeline_;
  }
  [[nodiscard]] const std::vector<double>& rtt_ms() const { return rtt_ms_; }

  // Component access for tests and examples.
  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] epc::EnodeB& enodeb() { return *enodeb_; }
  [[nodiscard]] epc::Spgw& spgw() { return *spgw_; }
  [[nodiscard]] epc::Mme& mme() { return *mme_; }
  [[nodiscard]] epc::Hss& hss() { return hss_; }
  [[nodiscard]] epc::Pcrf& pcrf() { return pcrf_; }
  [[nodiscard]] epc::UeDevice& app_ue() { return *app_ue_; }
  [[nodiscard]] EdgeServer& server() { return *server_; }
  [[nodiscard]] sim::RadioChannel& app_radio() { return *app_radio_; }
  [[nodiscard]] const ScenarioConfig& config() const { return config_; }
  [[nodiscard]] epc::Imsi app_imsi() const { return kAppImsi; }

  /// Measured disconnectivity ratio η over the whole run (Fig 14 x-axis).
  [[nodiscard]] double measured_disconnect_ratio();

 private:
  static constexpr epc::Imsi kAppImsi{111326547648ull};
  static constexpr epc::Imsi kBackgroundImsi{222326547648ull};
  static constexpr std::uint32_t kAppFlow = 1;
  static constexpr std::uint32_t kBackgroundFlow = 2;

  void wire_attach_handling();
  void build_sources();
  void build_background_source(sim::Direction direction);
  void build_samplers();
  void schedule_cycle_boundaries();
  void on_app_receive(const sim::Packet& packet);
  void record_timeline_point();
  void send_ping();

  ScenarioConfig config_;
  Rng rng_;
  sim::Simulator sim_;

  std::unique_ptr<sim::RadioChannel> app_radio_;
  std::unique_ptr<sim::RadioChannel> bg_radio_;
  std::unique_ptr<epc::EnodeB> enodeb_;
  epc::Hss hss_;
  epc::Pcrf pcrf_;
  std::unique_ptr<epc::Mme> mme_;
  std::unique_ptr<epc::Spgw> spgw_;
  std::unique_ptr<EdgeServer> server_;
  std::unique_ptr<epc::UeDevice> app_ue_;
  std::unique_ptr<epc::UeDevice> bg_ue_;

  std::unique_ptr<workloads::TrafficSource> app_source_;
  std::unique_ptr<workloads::TrafficSource> bg_source_;

  // Operator's tamper-resilient monitors (fed by COUNTER CHECK).
  charging::RrcCounterMonitor rrc_ul_{charging::RrcCounterMonitor::Track::Uplink};
  charging::RrcCounterMonitor rrc_dl_{
      charging::RrcCounterMonitor::Track::Downlink};

  // Cumulative-counter adapters (constructed in build_samplers()).
  std::vector<std::unique_ptr<charging::UsageMonitor>> monitors_;
  std::unique_ptr<charging::CycleSampler> true_sent_sampler_;
  std::unique_ptr<charging::CycleSampler> true_received_sampler_;
  std::unique_ptr<charging::CycleSampler> edge_sent_sampler_;
  std::unique_ptr<charging::CycleSampler> edge_received_sampler_;
  std::unique_ptr<charging::CycleSampler> op_sent_sampler_;
  std::unique_ptr<charging::CycleSampler> op_received_sampler_;
  std::unique_ptr<charging::CycleSampler> gateway_sampler_;

  bool ran_ = false;
  std::vector<CycleMeasurements> cycles_;

  // Timeline recording.
  bool timeline_enabled_ = false;
  SimTime timeline_interval_ = kSecond;
  std::vector<TimelinePoint> timeline_;
  std::uint64_t timeline_prev_device_bytes_ = 0;

  // RTT probing. Ping ids live in their own namespace above workload
  // packet ids; per-instance so concurrent testbeds never share state.
  int pings_remaining_ = 0;
  SimTime ping_interval_ = kSecond;
  std::uint64_t next_ping_id_ = 1ull << 40;
  std::vector<double> rtt_ms_;
};

}  // namespace tlc::testbed
