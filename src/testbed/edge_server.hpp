// Edge application server.
//
// Co-located with the LTE core (§7: the HP Z840 hosts both), so the
// SPGW <-> server hop is lossless. Keeps the edge vendor's server-side
// netstat counters (§5.4: /proc/<pid>/net/netstat in the prototype) and
// echoes ping probes for the Fig 16a RTT measurement.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "epc/ids.hpp"
#include "epc/spgw.hpp"
#include "sim/packet.hpp"
#include "sim/simulator.hpp"

namespace tlc::testbed {

class EdgeServer {
 public:
  /// Flow id reserved for RTT probes; echoed back downlink.
  static constexpr std::uint32_t kPingFlow = 0xfffffffe;

  EdgeServer(sim::Simulator& sim, epc::Spgw& spgw);

  /// Application downlink send toward `imsi` (server -> device).
  void app_send(epc::Imsi imsi, const sim::Packet& packet);

  /// Uplink delivery from the SPGW; wire as the gateway's server sink.
  void deliver_uplink(epc::Imsi imsi, const sim::Packet& packet);

  /// Server-side netstat counters (edge vendor's monitors), per device —
  /// the edge app keeps one socket pair per device, so its counters
  /// never mix in other subscribers' traffic.
  [[nodiscard]] std::uint64_t sent_bytes(epc::Imsi imsi) const;
  [[nodiscard]] std::uint64_t received_bytes(epc::Imsi imsi) const;

  /// Optional observer for received uplink packets.
  void set_receive_handler(
      std::function<void(epc::Imsi, const sim::Packet&)> handler) {
    on_receive_ = std::move(handler);
  }

 private:
  struct Counters {
    std::uint64_t sent = 0;
    std::uint64_t received = 0;
  };

  sim::Simulator& sim_;
  epc::Spgw& spgw_;
  std::unordered_map<epc::Imsi, Counters> counters_;
  std::function<void(epc::Imsi, const sim::Packet&)> on_receive_;
};

}  // namespace tlc::testbed
