// Plain-text table / series printers shared by the bench binaries.
//
// Every bench regenerates a paper table or figure as text: tables print
// aligned columns; figures print their data series (x, y per scheme) so
// the curves can be compared against the paper directly or re-plotted.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "util/stats.hpp"

namespace tlc::testbed {

/// Aligned text table.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  /// Renders with column alignment and a header rule.
  [[nodiscard]] std::string render() const;
  void print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a CDF as "value fraction" pairs under a series title.
void print_cdf(const std::string& title, const Samples& samples,
               std::size_t points = 10, const char* unit = "");

/// Banner for bench output sections.
void print_banner(const std::string& title);

/// "12.34" helpers for table cells.
[[nodiscard]] std::string cell(double v, int precision = 2);
[[nodiscard]] std::string cell_pct(double ratio, int precision = 1);

}  // namespace tlc::testbed
