// Experiment harness: runs the testbed and evaluates charging schemes.
//
// One testbed run produces per-cycle measurements; each scheme (legacy
// 4G/5G, TLC-optimal, TLC-random — the §7.1 comparison set) is then
// evaluated on those measurements, yielding the paper's metrics:
// absolute gap ∆ = |x − x̂| (scaled to MB/hr), relative ratio ε = ∆/x̂,
// and negotiation rounds.
#pragma once

#include <map>
#include <vector>

#include "core/negotiation.hpp"
#include "testbed/scenario.hpp"
#include "testbed/testbed.hpp"

namespace tlc::testbed {

enum class Scheme { Legacy, TlcOptimal, TlcRandom };

[[nodiscard]] const char* scheme_name(Scheme scheme);

struct CycleOutcome {
  std::uint64_t expected = 0;  // x̂ from ground truth
  std::uint64_t charged = 0;   // x under the scheme
  double gap_mb = 0.0;         // ∆ for this cycle, MB
  double gap_mb_per_hr = 0.0;  // ∆ scaled to the paper's hourly cycles
  double gap_ratio = 0.0;      // ε
  int rounds = 0;              // negotiation rounds (0 for legacy)
  bool completed = true;
};

/// Evaluates one scheme on one cycle's measurements.
[[nodiscard]] CycleOutcome evaluate_scheme(const CycleMeasurements& cycle,
                                           Scheme scheme, double c,
                                           SimTime cycle_length, Rng& rng);

struct ExperimentResult {
  ScenarioConfig config;
  std::vector<CycleMeasurements> cycles;
  std::map<Scheme, std::vector<CycleOutcome>> outcomes;

  [[nodiscard]] double mean_gap_mb_per_hr(Scheme scheme) const;
  [[nodiscard]] double mean_gap_ratio(Scheme scheme) const;
  [[nodiscard]] double mean_rounds(Scheme scheme) const;
};

/// Runs the scenario once and evaluates all requested schemes.
[[nodiscard]] ExperimentResult run_experiment(
    const ScenarioConfig& config,
    const std::vector<Scheme>& schemes = {Scheme::Legacy, Scheme::TlcOptimal,
                                          Scheme::TlcRandom});

}  // namespace tlc::testbed
