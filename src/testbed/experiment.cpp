#include "testbed/experiment.hpp"

#include "charging/plan.hpp"
#include "core/legacy.hpp"
#include "core/strategy.hpp"

namespace tlc::testbed {

const char* scheme_name(Scheme scheme) {
  switch (scheme) {
    case Scheme::Legacy:
      return "Legacy 4G/5G";
    case Scheme::TlcOptimal:
      return "TLC-optimal";
    case Scheme::TlcRandom:
      return "TLC-random";
  }
  return "?";
}

CycleOutcome evaluate_scheme(const CycleMeasurements& cycle, Scheme scheme,
                             double c, SimTime cycle_length, Rng& rng) {
  CycleOutcome outcome;
  outcome.expected =
      charging::expected_charge(cycle.true_sent, cycle.true_received, c);

  switch (scheme) {
    case Scheme::Legacy: {
      outcome.charged = core::legacy_charge(cycle.gateway_volume);
      break;
    }
    case Scheme::TlcOptimal: {
      core::OptimalStrategy edge;
      core::OptimalStrategy op;
      const core::UsageView edge_view{cycle.edge_sent, cycle.edge_received};
      const core::UsageView op_view{cycle.op_sent, cycle.op_received};
      const auto result = core::negotiate(edge, edge_view, op, op_view,
                                          core::NegotiationConfig{c, 64, 0});
      outcome.charged = result.charged;
      outcome.rounds = result.rounds;
      outcome.completed = result.completed;
      break;
    }
    case Scheme::TlcRandom: {
      core::RandomSelfishStrategy edge(rng.fork());
      core::RandomSelfishStrategy op(rng.fork());
      const core::UsageView edge_view{cycle.edge_sent, cycle.edge_received};
      const core::UsageView op_view{cycle.op_sent, cycle.op_received};
      const auto result = core::negotiate(edge, edge_view, op, op_view,
                                          core::NegotiationConfig{c, 64, 0});
      outcome.charged = result.charged;
      outcome.rounds = result.rounds;
      outcome.completed = result.completed;
      break;
    }
  }

  const std::uint64_t gap_bytes =
      charging::charging_gap(outcome.charged, outcome.expected);
  outcome.gap_mb = static_cast<double>(gap_bytes) / 1e6;
  const double hours = to_seconds(cycle_length) / 3600.0;
  outcome.gap_mb_per_hr = hours > 0 ? outcome.gap_mb / hours : 0.0;
  outcome.gap_ratio = charging::gap_ratio(outcome.charged, outcome.expected);
  return outcome;
}

double ExperimentResult::mean_gap_mb_per_hr(Scheme scheme) const {
  auto it = outcomes.find(scheme);
  if (it == outcomes.end() || it->second.empty()) return 0.0;
  double sum = 0.0;
  for (const CycleOutcome& o : it->second) sum += o.gap_mb_per_hr;
  return sum / static_cast<double>(it->second.size());
}

double ExperimentResult::mean_gap_ratio(Scheme scheme) const {
  auto it = outcomes.find(scheme);
  if (it == outcomes.end() || it->second.empty()) return 0.0;
  double sum = 0.0;
  for (const CycleOutcome& o : it->second) sum += o.gap_ratio;
  return sum / static_cast<double>(it->second.size());
}

double ExperimentResult::mean_rounds(Scheme scheme) const {
  auto it = outcomes.find(scheme);
  if (it == outcomes.end() || it->second.empty()) return 0.0;
  double sum = 0.0;
  for (const CycleOutcome& o : it->second) sum += o.rounds;
  return sum / static_cast<double>(it->second.size());
}

ExperimentResult run_experiment(const ScenarioConfig& config,
                                const std::vector<Scheme>& schemes) {
  ExperimentResult result;
  result.config = config;

  Testbed testbed(config);
  result.cycles = testbed.run();

  Rng scheme_rng(config.seed ^ 0x9e3779b97f4a7c15ULL);
  for (Scheme scheme : schemes) {
    auto& outcomes = result.outcomes[scheme];
    outcomes.reserve(result.cycles.size());
    for (const CycleMeasurements& cycle : result.cycles) {
      outcomes.push_back(evaluate_scheme(cycle, scheme, config.plan_c,
                                         config.cycle_length, scheme_rng));
    }
  }
  return result;
}

}  // namespace tlc::testbed
