// CRC32C (Castagnoli, polynomial 0x1EDC6F41) for journal and
// checkpoint framing.
//
// CRC32C instead of the crypto hashes used elsewhere because frame
// checksums guard against *accidental* corruption (torn writes, bit
// rot) on a hot append path — 4 bytes per record and a table lookup
// per byte, versus 32 bytes and a compression function per block for
// SHA-256. Integrity against an *adversary* stays where it already
// lives: the HMAC tag on the PoC store body and the RSA signatures on
// the PoCs themselves.
#pragma once

#include <cstdint>

#include "util/bytes.hpp"

namespace tlc::recovery {

/// One-shot CRC32C of a buffer (initial state 0).
[[nodiscard]] std::uint32_t crc32c(const Bytes& data);

/// Streaming form: feed the previous return value back as `seed` to
/// extend a checksum across multiple buffers.
[[nodiscard]] std::uint32_t crc32c_extend(std::uint32_t seed,
                                          const std::uint8_t* data,
                                          std::size_t size);

}  // namespace tlc::recovery
