// StateLog: the snapshot + write-ahead-journal pair used by every
// recoverable component (OFCS ledger, PoC store, settlement runner).
//
// A StateLog owns two files under one stem:
//
//   <dir>/<stem>.ckpt   latest committed snapshot (checkpoint.hpp)
//   <dir>/<stem>.wal    ops appended since that snapshot (journal.hpp)
//
// The protocol is the textbook one. On every state mutation the owner
// appends an op *first*, then applies it in memory. Periodically the
// owner serialises its full state, calls `checkpoint()` — which
// atomically replaces the .ckpt and then rotates the .wal — and replay
// cost stays bounded by one checkpoint interval. On restart,
// `recover()` hands back the snapshot (if any) plus the op suffix; the
// owner restores the snapshot and re-applies the ops, which must be
// idempotent because the crash window between journal-append and
// in-memory apply means the tail op may or may not have taken effect
// before death.
//
// Crash windows and why each is safe (DESIGN.md §11.4):
//   - die before checkpoint tmp write: old .ckpt + full .wal replay
//   - die before rename: ditto; the stale .tmp is inert
//   - die after rename, before rotate: new .ckpt + un-rotated .wal —
//     every op in the .wal is already folded into the snapshot, so
//     replaying it over the snapshot must be a no-op; this is exactly
//     the idempotence the record-ID dedupe provides
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "recovery/crash_plan.hpp"
#include "recovery/journal.hpp"
#include "util/bytes.hpp"
#include "util/expected.hpp"

namespace tlc::recovery {

class StateLog {
 public:
  struct Recovered {
    /// Last committed snapshot; nullopt on first boot.
    std::optional<Bytes> snapshot;
    /// Ops appended after that snapshot, in append order.
    std::vector<Bytes> ops;
    Journal::ReplayStats journal_stats;
  };

  /// Opens the pair, truncating any torn journal tail. Crash injection
  /// (if `plan` is given) covers appends and checkpoints alike, keyed
  /// by `scope`.
  [[nodiscard]] static Expected<StateLog> open(const std::string& dir,
                                               const std::string& stem,
                                               CrashPlan* plan = nullptr,
                                               std::uint64_t scope = 0);

  /// Reads snapshot + op suffix for the owner to rebuild from. Corrupt
  /// checkpoints are typed errors; a torn journal tail is not (it was
  /// already truncated by open()).
  [[nodiscard]] Expected<Recovered> recover() const;

  /// Journals one op. Call before applying the op in memory.
  [[nodiscard]] Status append(const Bytes& op);

  /// Commits `snapshot` as the new checkpoint and rotates the journal.
  [[nodiscard]] Status checkpoint(const Bytes& snapshot);

  [[nodiscard]] const std::string& checkpoint_path() const {
    return checkpoint_path_;
  }
  [[nodiscard]] const std::string& journal_path() const {
    return journal_.path();
  }
  [[nodiscard]] std::uint64_t ops_since_checkpoint() const {
    return journal_.appended();
  }

 private:
  StateLog(std::string checkpoint_path, Journal journal, CrashPlan* plan,
           std::uint64_t scope)
      : checkpoint_path_(std::move(checkpoint_path)),
        journal_(std::move(journal)),
        plan_(plan),
        scope_(scope) {}

  std::string checkpoint_path_;
  Journal journal_;
  CrashPlan* plan_ = nullptr;
  std::uint64_t scope_ = 0;
};

}  // namespace tlc::recovery
