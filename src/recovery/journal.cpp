#include "recovery/journal.hpp"

#include <filesystem>

#include "recovery/crc32c.hpp"
#include "util/fileio.hpp"
#include "util/serde.hpp"

namespace tlc::recovery {
namespace {

constexpr std::uint32_t kJournalMagic = 0x544c434a;  // "TLCJ"
constexpr std::uint32_t kJournalVersion = 1;
constexpr std::size_t kHeaderBytes = 8;
constexpr std::size_t kFrameOverhead = 8;  // len + crc
/// Upper bound on one frame's payload; a length field beyond this is
/// corruption, not a real record.
constexpr std::uint32_t kMaxPayload = 1u << 30;

// tlclint: codec(journal_header, encode, version=kJournalVersion)
Bytes header_bytes() {
  ByteWriter w;
  w.u32(kJournalMagic);
  w.u32(kJournalVersion);
  return w.take();
}

/// Walks `data`, streaming intact frames to `apply` (which may be
/// null). Returns stats; never fails past the header — everything
/// unparseable is the torn tail.
Expected<Journal::ReplayStats> scan(
    const Bytes& data, const std::function<void(const Bytes&)>* apply) {
  Journal::ReplayStats stats;
  if (data.size() < kHeaderBytes) {
    if (data.empty()) return stats;  // never created / fresh rotate
    return Err("journal: truncated header (" + std::to_string(data.size()) +
               " bytes)");
  }
  // tlclint: codec(journal_header, decode, version=kJournalVersion)
  ByteReader header(data);
  const auto magic = header.u32();
  const auto version = header.u32();
  if (!magic || *magic != kJournalMagic) return Err("journal: bad magic");
  if (!version || *version != kJournalVersion) {
    return Err("journal: unsupported version");
  }
  std::size_t pos = kHeaderBytes;
  while (pos + kFrameOverhead <= data.size()) {
    const std::uint32_t len = (std::uint32_t{data[pos]} << 24) |
                              (std::uint32_t{data[pos + 1]} << 16) |
                              (std::uint32_t{data[pos + 2]} << 8) |
                              std::uint32_t{data[pos + 3]};
    const std::uint32_t crc = (std::uint32_t{data[pos + 4]} << 24) |
                              (std::uint32_t{data[pos + 5]} << 16) |
                              (std::uint32_t{data[pos + 6]} << 8) |
                              std::uint32_t{data[pos + 7]};
    if (len > kMaxPayload) break;
    if (pos + kFrameOverhead + len > data.size()) break;  // short frame
    const std::uint8_t* payload = data.data() + pos + kFrameOverhead;
    if (crc32c_extend(0, payload, len) != crc) break;  // bit rot / torn
    if (apply != nullptr && *apply) {
      (*apply)(Bytes(payload, payload + len));
    }
    ++stats.records;
    pos += kFrameOverhead + len;
  }
  stats.valid_bytes = pos;
  stats.truncated_bytes = data.size() - pos;
  return stats;
}

}  // namespace

Expected<Journal> Journal::open(const std::string& path, CrashPlan* plan,
                                std::uint64_t scope) {
  Journal journal(path, plan, scope);
  if (util::file_exists(path)) {
    auto data = util::read_file(path);
    if (!data) return Err(data.error());
    auto stats = scan(*data, nullptr);
    if (!stats) return Err(stats.error());
    journal.recovery_stats_ = *stats;
    if (stats->truncated_bytes > 0) {
      std::error_code ec;
      std::filesystem::resize_file(path, stats->valid_bytes, ec);
      if (ec) {
        return Err("journal: cannot truncate torn tail of " + path + ": " +
                   ec.message());
      }
    }
    if (stats->valid_bytes == 0) {
      // Empty file (torn creation or fresh rotate): lay down a header.
      if (Status ok = util::write_file(path, header_bytes()); !ok.ok()) {
        return Err(ok.error());
      }
    }
  } else {
    if (Status ok = util::write_file(path, header_bytes()); !ok.ok()) {
      return Err(ok.error());
    }
  }
  journal.out_.open(path, std::ios::binary | std::ios::app);
  if (!journal.out_) return Err("journal: cannot open " + path + " for append");
  return journal;
}

Expected<Journal::ReplayStats> Journal::replay(
    const std::string& path, const std::function<void(const Bytes&)>& apply) {
  if (!util::file_exists(path)) return ReplayStats{};
  auto data = util::read_file(path);
  if (!data) return Err(data.error());
  return scan(*data, &apply);
}

Status Journal::write_raw(const std::uint8_t* data, std::size_t size) {
  out_.write(reinterpret_cast<const char*>(data),
             static_cast<std::streamsize>(size));
  out_.flush();
  if (!out_) return Err("journal: write to " + path_ + " failed");
  return Status::Ok();
}

Status Journal::append(const Bytes& payload) {
  if (payload.size() > kMaxPayload) return Err("journal: payload too large");
  if (plan_ != nullptr) plan_->fire(kCrashJournalAppendPre, scope_);

  // Encode-only codec: scan() decodes the frame prefix with manual
  // byte shifts so a torn tail can never throw mid-parse.
  // tlclint: codec(journal_frame, encode, version=kJournalVersion)
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.u32(crc32c(payload));
  const Bytes& prefix = w.data();

  // Torn-write injection: leave half the frame on disk, then die. If
  // the handler unexpectedly returns, repair by completing the frame.
  const bool torn =
      plan_ != nullptr && plan_->pending(kCrashJournalAppendTorn, scope_);
  const std::size_t cut = torn ? payload.size() / 2 : payload.size();
  if (Status ok = write_raw(prefix.data(), prefix.size()); !ok.ok()) return ok;
  if (Status ok = write_raw(payload.data(), cut); !ok.ok()) return ok;
  if (plan_ != nullptr) plan_->fire(kCrashJournalAppendTorn, scope_);
  if (cut < payload.size()) {
    if (Status ok = write_raw(payload.data() + cut, payload.size() - cut);
        !ok.ok()) {
      return ok;
    }
  }

  ++appended_;
  if (plan_ != nullptr) plan_->fire(kCrashJournalAppendPost, scope_);
  return Status::Ok();
}

Status Journal::rotate() {
  out_.close();
  if (Status ok = util::write_file(path_, header_bytes()); !ok.ok()) return ok;
  out_.open(path_, std::ios::binary | std::ios::app);
  if (!out_) return Err("journal: cannot reopen " + path_ + " after rotate");
  appended_ = 0;
  return Status::Ok();
}

}  // namespace tlc::recovery
