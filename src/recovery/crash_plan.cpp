#include "recovery/crash_plan.hpp"

#include "util/rng.hpp"

namespace tlc::recovery {

const std::vector<std::string>& crash_point_catalogue() {
  static const std::vector<std::string> kPoints = {
      kCrashJournalAppendPre,    kCrashJournalAppendTorn,
      kCrashJournalAppendPost,   kCrashCheckpointPreWrite,
      kCrashCheckpointPreRename, kCrashCheckpointPostRename,
      kCrashShardRun,            kCrashShardWedge,
      kCrashSettleCycle,         kCrashSettleChunkPre,
      kCrashSettleChunkPost,     kCrashCodedPacketPre,
      kCrashCodedPacketPost,
  };
  return kPoints;
}

CrashPlan::CrashPlan()
    : handler_([](const CrashSite& site) {
        if (site.kind == CrashKind::Wedge) throw WedgeException{site};
        throw CrashException{site};
      }) {}

void CrashPlan::arm(CrashSite site) {
  util::MutexLock lock(mu_);
  armed_.push_back(std::move(site));
}

void CrashPlan::arm_seeded(std::uint64_t seed, int crashes,
                           std::uint64_t scopes, std::uint64_t max_hit) {
  Rng rng(seed);
  const auto& catalogue = crash_point_catalogue();
  for (int i = 0; i < crashes; ++i) {
    CrashSite site;
    site.point = catalogue[static_cast<std::size_t>(
        rng.uniform_u64(catalogue.size()))];
    site.scope = rng.uniform_u64(scopes == 0 ? 1 : scopes);
    site.hit = rng.uniform_u64(max_hit == 0 ? 1 : max_hit);
    site.kind =
        site.point == kCrashShardWedge ? CrashKind::Wedge : CrashKind::Kill;
    arm(std::move(site));
  }
}

void CrashPlan::set_handler(Handler handler) {
  util::MutexLock lock(mu_);
  handler_ = std::move(handler);
}

void CrashPlan::fire(std::string_view point, std::uint64_t scope) {
  CrashSite matched;
  Handler handler;
  {
    util::MutexLock lock(mu_);
    if (dying_) {
      // The incarnation is already dead: don't count this boundary or
      // consume armed sites — just kill the calling thread too.
      matched = dying_site_;
      handler = handler_;
    } else {
      const std::uint64_t count = hits_[Key{std::string(point), scope}]++;
      if (armed_.empty()) return;
      const CrashSite& front = armed_.front();
      if (front.point != point || front.scope != scope || front.hit != count) {
        return;
      }
      matched = front;
      armed_.pop_front();
      ++fired_;
      if (matched.kind == CrashKind::Kill) {
        dying_ = true;
        dying_site_ = matched;
      }
      handler = handler_;
    }
  }
  // Invoked outside the lock: the handler throws (or aborts), and a
  // concurrent worker hitting another point must not deadlock.
  handler(matched);
}

bool CrashPlan::pending(std::string_view point, std::uint64_t scope) const {
  util::MutexLock lock(mu_);
  if (dying_ || armed_.empty()) return false;
  const CrashSite& front = armed_.front();
  if (front.point != point || front.scope != scope) return false;
  const auto it = hits_.find(Key{std::string(point), scope});
  const std::uint64_t count = it == hits_.end() ? 0 : it->second;
  return front.hit == count;
}

void CrashPlan::begin_incarnation() {
  util::MutexLock lock(mu_);
  hits_.clear();
  dying_ = false;
}

int CrashPlan::crashes_fired() const {
  util::MutexLock lock(mu_);
  return fired_;
}

std::size_t CrashPlan::armed_remaining() const {
  util::MutexLock lock(mu_);
  return armed_.size();
}

}  // namespace tlc::recovery
