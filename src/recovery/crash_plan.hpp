// Deterministic crash injection for the recovery subsystem.
//
// A CrashPlan is a seeded schedule of process-death (and wedge) events
// named at the instrumented boundaries of the durable-state machinery:
// journal appends, checkpoint writes, shard runs and settlement
// chunks. Instrumented code calls `fire(point, scope)` at each
// boundary; when the armed site matches, the plan invokes its handler
// — by default throwing CrashException / WedgeException, which tests
// and the fleet supervisor catch as "the process (or shard) died
// here". Nothing real-time or ambient is involved: a site is
// (point name, scope id, k-th hit), hit counters are kept per
// (point, scope) and reset at `begin_incarnation()`, so the same plan
// against the same workload crashes at exactly the same byte on every
// run and at every thread count (scopes partition concurrent callers:
// shard index for shard-side points, UE id for settlement points).
//
// The handler is injectable in the spirit of util::WallClock — tests
// keep the default throwing handler, while a standalone harness could
// install one that calls abort() to exercise real process death.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/thread_annotations.hpp"

namespace tlc::recovery {

// ---------------------------------------------------------------------
// Crash-point taxonomy (DESIGN.md §11.3). Scope conventions:
//   journal/checkpoint points   scope = owner id (0 for the OFCS log,
//                               shard index for shard checkpoints)
//   shard points                scope = shard index
//   settle points               scope = slice index (chunk) or UE id
// ---------------------------------------------------------------------

/// Before a journal frame is written: the op is lost entirely.
inline constexpr const char* kCrashJournalAppendPre = "journal-append-pre";
/// Mid-frame: a torn tail is left on disk (replay must truncate it).
inline constexpr const char* kCrashJournalAppendTorn = "journal-append-torn";
/// After the frame is durable but before the in-memory apply.
inline constexpr const char* kCrashJournalAppendPost = "journal-append-post";
/// Before the checkpoint temp file is written.
inline constexpr const char* kCrashCheckpointPreWrite = "checkpoint-pre-write";
/// Temp file written, not yet renamed over the checkpoint.
inline constexpr const char* kCrashCheckpointPreRename =
    "checkpoint-pre-rename";
/// Checkpoint renamed into place, journal not yet rotated.
inline constexpr const char* kCrashCheckpointPostRename =
    "checkpoint-post-rename";
/// Inside a shard's cycle run (the shard worker dies mid-world).
inline constexpr const char* kCrashShardRun = "shard-run";
/// Shard wedge marker: the watchdog deadline fires instead of a crash.
inline constexpr const char* kCrashShardWedge = "shard-wedge";
/// At a settlement cycle boundary inside the runner (mid-negotiation).
inline constexpr const char* kCrashSettleCycle = "settle-cycle";
/// Settlement chunk computed, receipts not yet journaled.
inline constexpr const char* kCrashSettleChunkPre = "settle-chunk-pre";
/// Settlement chunk journaled, before the supervisor consumes it.
inline constexpr const char* kCrashSettleChunkPost = "settle-chunk-post";
/// Coded receiver holds an innovative packet it has not journaled yet
/// (§17.4): the packet dies with the process and its rank must be
/// re-earned by the resumed incarnation.
inline constexpr const char* kCrashCodedPacketPre = "coded-packet-pre";
/// Innovative packet journaled: the resumed incarnation replays it and
/// resumes the generation at the journaled rank.
inline constexpr const char* kCrashCodedPacketPost = "coded-packet-post";

/// Every instrumented point, for seeded plan generation.
[[nodiscard]] const std::vector<std::string>& crash_point_catalogue();

enum class CrashKind : std::uint8_t {
  Kill,   // simulated process death (CrashException)
  Wedge,  // simulated hang past the watchdog deadline (WedgeException)
};

struct CrashSite {
  std::string point;
  std::uint64_t scope = 0;
  /// Fires on the hit-th visit (0-based) of (point, scope) within the
  /// current incarnation.
  std::uint64_t hit = 0;
  CrashKind kind = CrashKind::Kill;
};

/// Thrown by the default handler on a Kill site. Deliberately not
/// derived from std::exception: nothing between the crash point and
/// the supervisor is allowed to swallow it by accident.
struct CrashException {
  CrashSite site;
};

/// Thrown by the default handler on a Wedge site; the supervisor's
/// watchdog treats it as a deadline overrun, not a death.
struct WedgeException {
  CrashSite site;
};

class CrashPlan {
 public:
  /// Receives the matched site; expected to not return normally (the
  /// default throws CrashException or WedgeException by kind).
  using Handler = std::function<void(const CrashSite&)>;

  CrashPlan();

  /// Queues a site. Sites fire strictly in arm order: the second site
  /// can only fire after the first has (so multi-crash plans model
  /// "crash, recover, crash again").
  void arm(CrashSite site);

  /// Seeded schedule: draws and arms `crashes` sites from the
  /// catalogue with scopes in [0, scopes) and hit indices in
  /// [0, max_hit). Some drawn sites may never be reached by a given
  /// workload — such a plan simply injects fewer crashes, which tests
  /// treat as a (valid) crash-free run. (A member rather than a
  /// factory: the mutex makes CrashPlan immovable.)
  void arm_seeded(std::uint64_t seed, int crashes, std::uint64_t scopes,
                  std::uint64_t max_hit = 3);

  void set_handler(Handler handler);

  /// Instrumented-code hook. Cheap when nothing is armed. When the
  /// front armed site matches (point, scope) at its hit count, pops it
  /// and invokes the handler (outside the internal lock).
  ///
  /// Once a Kill site fires, the incarnation is dying: every later
  /// fire() from any thread re-invokes the handler with the same site
  /// instead of matching armed sites. A dead process executes no
  /// boundaries — concurrent workers bail at their next instrumented
  /// point, no armed site is consumed by a race, and the crash
  /// schedule stays identical at every thread count.
  void fire(std::string_view point, std::uint64_t scope = 0);

  /// True when the *next* fire(point, scope) would trigger the front
  /// armed site. Lets instrumented code stage pre-crash damage (e.g. a
  /// deliberately torn journal frame) before calling fire().
  [[nodiscard]] bool pending(std::string_view point,
                             std::uint64_t scope = 0) const;

  /// A new process incarnation: resets per-(point, scope) hit counters
  /// so re-executed boundaries count from zero again and clears the
  /// dying flag. Armed sites that already fired stay retired.
  void begin_incarnation();

  [[nodiscard]] int crashes_fired() const;
  [[nodiscard]] std::size_t armed_remaining() const;

 private:
  using Key = std::pair<std::string, std::uint64_t>;

  mutable util::Mutex mu_;
  std::deque<CrashSite> armed_ TLC_GUARDED_BY(mu_);
  std::map<Key, std::uint64_t> hits_ TLC_GUARDED_BY(mu_);
  Handler handler_ TLC_GUARDED_BY(mu_);
  int fired_ TLC_GUARDED_BY(mu_) = 0;
  bool dying_ TLC_GUARDED_BY(mu_) = false;
  CrashSite dying_site_ TLC_GUARDED_BY(mu_);
};

}  // namespace tlc::recovery
