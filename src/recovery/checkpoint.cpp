#include "recovery/checkpoint.hpp"

#include <filesystem>

#include "recovery/crc32c.hpp"
#include "util/fileio.hpp"
#include "util/serde.hpp"

namespace tlc::recovery {
namespace {

constexpr std::uint32_t kCheckpointMagic = 0x544c434b;  // "TLCK"
constexpr std::uint32_t kCheckpointVersion = 1;
constexpr std::size_t kCheckpointHeaderBytes = 16;

}  // namespace

Status write_checkpoint(const std::string& path, const Bytes& snapshot,
                        CrashPlan* plan, std::uint64_t scope) {
  if (plan != nullptr) plan->fire(kCrashCheckpointPreWrite, scope);

  // tlclint: codec(recovery_checkpoint, encode, version=kCheckpointVersion)
  ByteWriter w;
  w.u32(kCheckpointMagic);
  w.u32(kCheckpointVersion);
  w.u32(crc32c(snapshot));
  w.blob(snapshot);  // u32 payload_len + payload

  // The tmp-write / rename split is spelled out (rather than calling
  // util::write_file_atomic) so the pre-rename crash window is
  // injectable: a crash here must leave the previous checkpoint
  // untouched and the stale .tmp ignored.
  const std::string tmp = path + ".tmp";
  if (Status written = util::write_file(tmp, w.data()); !written.ok()) {
    return written;
  }
  if (plan != nullptr) plan->fire(kCrashCheckpointPreRename, scope);
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    return Err("checkpoint: rename " + tmp + " -> " + path + " failed: " +
               ec.message());
  }
  if (plan != nullptr) plan->fire(kCrashCheckpointPostRename, scope);
  return Status::Ok();
}

Expected<Bytes> read_checkpoint(const std::string& path) {
  auto data = util::read_file(path);
  if (!data) return Err(data.error());
  if (data->size() < kCheckpointHeaderBytes) {
    return Err("checkpoint: truncated header in " + path);
  }
  // tlclint: codec(recovery_checkpoint, decode, version=kCheckpointVersion)
  ByteReader r(*data);
  const auto magic = r.u32();
  const auto version = r.u32();
  const auto crc = r.u32();
  if (!magic || *magic != kCheckpointMagic) {
    return Err("checkpoint: bad magic in " + path);
  }
  if (!version || *version != kCheckpointVersion) {
    return Err("checkpoint: unsupported version in " + path);
  }
  if (!crc) return Err("checkpoint: truncated header in " + path);
  auto payload = r.blob();
  if (!payload || !r.exhausted()) {
    return Err("checkpoint: length mismatch in " + path);
  }
  if (crc32c(*payload) != *crc) {
    return Err("checkpoint: CRC mismatch in " + path);
  }
  return *payload;
}

Expected<std::optional<Bytes>> read_checkpoint_if_present(
    const std::string& path) {
  if (!util::file_exists(path)) return std::optional<Bytes>{};
  auto payload = read_checkpoint(path);
  if (!payload) return Err(payload.error());
  return std::optional<Bytes>(std::move(*payload));
}

}  // namespace tlc::recovery
