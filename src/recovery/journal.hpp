// Write-ahead journal: length-prefixed, CRC32C-framed append log.
//
// The durability primitive under every piece of charging state
// (DESIGN.md §11). An op is appended *before* it is applied in memory;
// recovery is snapshot-load + replay of the journal suffix. The frame
// format is deliberately minimal:
//
//   file   := header frame*
//   header := u32 magic "TLCJ" | u32 version (1)
//   frame  := u32 payload_len | u32 crc32c(payload) | payload
//
// (all integers big-endian, via util/serde). Replay walks frames until
// the first one that is short, over-long or CRC-mismatched and treats
// everything from there on as a torn tail: the valid prefix is
// replayed, the tail length is reported, and `open` physically
// truncates it so the next append lands on a frame boundary. A torn
// tail is *expected* after a crash mid-append — the op it held was
// never acknowledged, so dropping it is correct. Only an unreadable
// file or a damaged header is a hard (typed) error; no input bytes can
// make replay mis-apply a frame.
//
// Crash points (crash_plan.hpp) bracket the append: before the frame
// (op lost), mid-frame (torn tail left behind), and after the flush
// but before the caller's in-memory apply (the classic WAL window —
// recovery must make the op idempotent).
#pragma once

#include <cstdint>
#include <fstream>
#include <functional>
#include <string>

#include "recovery/crash_plan.hpp"
#include "util/bytes.hpp"
#include "util/expected.hpp"

namespace tlc::recovery {

class Journal {
 public:
  struct ReplayStats {
    std::uint64_t records = 0;
    /// Bytes of header + intact frames.
    std::uint64_t valid_bytes = 0;
    /// Bytes past the valid prefix (0 on a clean file).
    std::uint64_t truncated_bytes = 0;
    [[nodiscard]] bool torn_tail() const { return truncated_bytes > 0; }
  };

  /// Opens (or creates) a journal for appending. An existing file is
  /// scanned first and any torn tail is truncated away; the scan's
  /// stats are available via `recovery_stats()`. `plan`/`scope` wire in
  /// crash injection for every subsequent append.
  [[nodiscard]] static Expected<Journal> open(const std::string& path,
                                              CrashPlan* plan = nullptr,
                                              std::uint64_t scope = 0);

  /// Streams every intact record of `path` through `apply`, stopping at
  /// the torn tail. Missing file = zero records (a journal that was
  /// never created is an empty journal). Unreadable files and damaged
  /// headers are typed errors.
  [[nodiscard]] static Expected<ReplayStats> replay(
      const std::string& path, const std::function<void(const Bytes&)>& apply);

  Journal(Journal&&) = default;
  Journal& operator=(Journal&&) = default;

  /// Appends one framed record and flushes. The caller applies the op
  /// to its in-memory state only after this returns Ok.
  [[nodiscard]] Status append(const Bytes& payload);

  /// Restarts the journal as empty (after a checkpoint made its
  /// contents redundant).
  [[nodiscard]] Status rotate();

  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] std::uint64_t appended() const { return appended_; }
  [[nodiscard]] const ReplayStats& recovery_stats() const {
    return recovery_stats_;
  }

 private:
  Journal(std::string path, CrashPlan* plan, std::uint64_t scope)
      : path_(std::move(path)), plan_(plan), scope_(scope) {}

  [[nodiscard]] Status write_raw(const std::uint8_t* data, std::size_t size);

  std::string path_;
  CrashPlan* plan_ = nullptr;
  std::uint64_t scope_ = 0;
  std::ofstream out_;
  std::uint64_t appended_ = 0;
  ReplayStats recovery_stats_;
};

}  // namespace tlc::recovery
