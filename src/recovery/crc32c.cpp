#include "recovery/crc32c.hpp"

#include <array>

namespace tlc::recovery {
namespace {

// Reflected table for the Castagnoli polynomial (0x1EDC6F41, reflected
// 0x82F63B78), built once at first use.
const std::array<std::uint32_t, 256>& table() {
  static const std::array<std::uint32_t, 256> kTable = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc & 1u) != 0 ? (crc >> 1) ^ 0x82F63B78u : crc >> 1;
      }
      t[i] = crc;
    }
    return t;
  }();
  return kTable;
}

}  // namespace

std::uint32_t crc32c_extend(std::uint32_t seed, const std::uint8_t* data,
                            std::size_t size) {
  const auto& t = table();
  std::uint32_t crc = ~seed;
  for (std::size_t i = 0; i < size; ++i) {
    crc = t[(crc ^ data[i]) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

std::uint32_t crc32c(const Bytes& data) {
  return crc32c_extend(0, data.data(), data.size());
}

}  // namespace tlc::recovery
