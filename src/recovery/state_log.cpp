#include "recovery/state_log.hpp"

#include "recovery/checkpoint.hpp"

namespace tlc::recovery {

Expected<StateLog> StateLog::open(const std::string& dir,
                                  const std::string& stem, CrashPlan* plan,
                                  std::uint64_t scope) {
  const std::string base = dir.empty() ? stem : dir + "/" + stem;
  auto journal = Journal::open(base + ".wal", plan, scope);
  if (!journal) return Err(journal.error());
  return StateLog(base + ".ckpt", std::move(*journal), plan, scope);
}

Expected<StateLog::Recovered> StateLog::recover() const {
  Recovered out;
  auto snapshot = read_checkpoint_if_present(checkpoint_path_);
  if (!snapshot) return Err(snapshot.error());
  out.snapshot = std::move(*snapshot);
  auto stats = Journal::replay(
      journal_.path(), [&out](const Bytes& op) { out.ops.push_back(op); });
  if (!stats) return Err(stats.error());
  out.journal_stats = *stats;
  return out;
}

Status StateLog::append(const Bytes& op) { return journal_.append(op); }

Status StateLog::checkpoint(const Bytes& snapshot) {
  if (Status written =
          write_checkpoint(checkpoint_path_, snapshot, plan_, scope_);
      !written.ok()) {
    return written;
  }
  return journal_.rotate();
}

}  // namespace tlc::recovery
