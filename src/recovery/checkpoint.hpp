// Checkpoint (snapshot) files: the other half of snapshot + journal
// replay.
//
// A checkpoint is one CRC-framed blob, replaced crash-atomically
// (write to `path.tmp`, flush, rename). The commit point is the
// rename: readers only ever see the previous checkpoint or the new
// one, and a stale .tmp from a crash between write and rename is
// simply ignored. Checkpoints bound journal replay — after a
// checkpoint commits, the journal rotates, so recovery cost is one
// snapshot load plus at most one checkpoint interval of ops
// (DESIGN.md §11: the bounded-replay invariant).
//
//   file := u32 magic "TLCK" | u32 version (1) | u32 crc32c(payload)
//         | u32 payload_len | payload
#pragma once

#include <optional>
#include <string>

#include "recovery/crash_plan.hpp"
#include "util/bytes.hpp"
#include "util/expected.hpp"

namespace tlc::recovery {

/// Atomically replaces the checkpoint at `path` with `snapshot`.
/// Crash points: before the temp write, between write and rename, and
/// after the rename (before the caller rotates its journal).
[[nodiscard]] Status write_checkpoint(const std::string& path,
                                      const Bytes& snapshot,
                                      CrashPlan* plan = nullptr,
                                      std::uint64_t scope = 0);

/// Loads and validates a checkpoint. A corrupt or truncated file is a
/// typed error — the rename protocol never produces one, so damage
/// means the storage itself lied.
[[nodiscard]] Expected<Bytes> read_checkpoint(const std::string& path);

/// As read_checkpoint, but a missing file is `nullopt` (first boot:
/// nothing checkpointed yet), not an error.
[[nodiscard]] Expected<std::optional<Bytes>> read_checkpoint_if_present(
    const std::string& path);

}  // namespace tlc::recovery
