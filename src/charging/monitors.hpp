// The charging-record monitor stack (§5.4, Figure 8).
//
// Both parties build their per-cycle usage claims from cumulative
// monitors. A monitor is just "read a cumulative byte counter now"; the
// differences between the available monitors are where they sit and who
// can tamper with them:
//
//   edge vendor, uplink sent     -> device app / TrafficStats
//   edge vendor, downlink sent   -> server netstat
//   edge vendor, received        -> its receiving endpoint's counters
//   operator, uplink received    -> SPGW gateway counter
//   operator, downlink received  -> RRC COUNTER CHECK reports (hardware
//                                   modem; strawmen 1-2 are the
//                                   tamperable/privileged alternatives)
//
// `RrcCounterMonitor` is event-driven: it only advances when the eNodeB
// delivers a COUNTER CHECK response, so its reads are slightly stale —
// that staleness (plus cycle misalignment, see sampler.hpp) is the
// Fig 18 record error.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>

#include "util/simtime.hpp"

namespace tlc::charging {

/// A cumulative byte counter. Implementations capture the counting
/// point; `read()` returns total bytes since simulation start.
class UsageMonitor {
 public:
  virtual ~UsageMonitor() = default;
  [[nodiscard]] virtual std::uint64_t read() const = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Adapts any callable returning a cumulative counter.
class CallbackMonitor final : public UsageMonitor {
 public:
  CallbackMonitor(std::string name, std::function<std::uint64_t()> reader)
      : name_(std::move(name)), reader_(std::move(reader)) {}

  [[nodiscard]] std::uint64_t read() const override { return reader_(); }
  [[nodiscard]] std::string name() const override { return name_; }

 private:
  std::string name_;
  std::function<std::uint64_t()> reader_;
};

/// Operator-side downlink monitor fed by RRC COUNTER CHECK responses
/// (§5.4 "our solution"). Wire `on_report` as the eNodeB's counter-check
/// handler. Reads return the modem counter as of the last response.
class RrcCounterMonitor final : public UsageMonitor {
 public:
  enum class Track { Uplink, Downlink };

  explicit RrcCounterMonitor(Track track) : track_(track) {}

  /// Counter-check response from the base station.
  void on_report(std::uint64_t ul_bytes, std::uint64_t dl_bytes, SimTime at);

  [[nodiscard]] std::uint64_t read() const override { return last_value_; }
  [[nodiscard]] std::string name() const override {
    return track_ == Track::Downlink ? "rrc-counter-dl" : "rrc-counter-ul";
  }
  [[nodiscard]] SimTime last_report_at() const { return last_report_at_; }
  [[nodiscard]] std::uint64_t reports() const { return reports_; }

 private:
  Track track_;
  std::uint64_t last_value_ = 0;
  SimTime last_report_at_ = -1;
  std::uint64_t reports_ = 0;
};

/// Strawman 1 (§5.4): a user-space monitor reading a tamperable API.
/// Wraps another monitor and under-reports by `factor` — what a selfish
/// edge with a custom OS image would do to the operator's in-device
/// monitor.
class TamperedMonitor final : public UsageMonitor {
 public:
  TamperedMonitor(const UsageMonitor& inner, double factor)
      : inner_(inner), factor_(factor) {}

  [[nodiscard]] std::uint64_t read() const override;
  [[nodiscard]] std::string name() const override {
    return inner_.name() + "+tampered";
  }

 private:
  const UsageMonitor& inner_;
  double factor_;
};

}  // namespace tlc::charging
