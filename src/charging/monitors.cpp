#include "charging/monitors.hpp"

#include <algorithm>

namespace tlc::charging {

void RrcCounterMonitor::on_report(std::uint64_t ul_bytes,
                                  std::uint64_t dl_bytes, SimTime at) {
  // Responses can in principle arrive out of order; keep the newest.
  if (at < last_report_at_) return;
  last_value_ = track_ == Track::Downlink ? dl_bytes : ul_bytes;
  last_report_at_ = at;
  ++reports_;
}

std::uint64_t TamperedMonitor::read() const {
  const double factor = std::clamp(factor_, 0.0, 1.0);
  return static_cast<std::uint64_t>(static_cast<double>(inner_.read()) *
                                    factor);
}

}  // namespace tlc::charging
