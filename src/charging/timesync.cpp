#include "charging/timesync.hpp"

#include <cmath>
#include <limits>

namespace tlc::charging {

TimeSyncResult ntp_sync(const TimeSyncParams& params, Rng& rng) {
  TimeSyncResult result;
  double best_rtt = std::numeric_limits<double>::infinity();
  double best_offset = 0.0;

  for (int round = 0; round < std::max(1, params.rounds); ++round) {
    // Request leg and response leg with independent jitter.
    const double fwd_ms =
        std::max(0.1, params.one_way_delay_ms +
                          std::abs(rng.gaussian(0.0, params.delay_jitter_ms)));
    const double back_ms =
        std::max(0.1, params.one_way_delay_ms +
                          std::abs(rng.gaussian(0.0, params.delay_jitter_ms)));
    // Client timestamps (client clock = server clock + true_offset):
    //   t0 client send, t1 server receive, t2 server send, t3 client recv.
    // offset_est = ((t1 - t0) + (t2 - t3)) / 2
    //            = -true_offset + (fwd - back) / 2     (server processing ~0)
    const double offset_est_s =
        -params.true_offset_s + (fwd_ms - back_ms) / 2.0 / 1e3;
    const double rtt = fwd_ms + back_ms;
    if (rtt < best_rtt) {
      best_rtt = rtt;
      best_offset = offset_est_s;
    }
  }

  // The client corrects by subtracting its estimate of the server-to-
  // client offset (-best_offset estimates true_offset).
  result.estimated_offset_s = -best_offset;
  result.residual_error_s =
      std::abs(params.true_offset_s - result.estimated_offset_s);
  result.best_rtt_ms = best_rtt;
  return result;
}

ClockModel disciplined_clock(const TimeSyncParams& params, Rng& rng) {
  const TimeSyncResult result = ntp_sync(params, rng);
  ClockModel model;
  // The residual shows up as a (sign-random) bias at each boundary, plus
  // a small wander between re-syncs.
  model.bias_s = (rng.chance(0.5) ? 1.0 : -1.0) * result.residual_error_s;
  model.offset_stddev_s = result.residual_error_s / 2.0 + 1e-4;
  return model;
}

}  // namespace tlc::charging
