#include "charging/timesync.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>

namespace tlc::charging {
namespace {

/// Absolute gaussian delay jitter quantized to whole microseconds. The
/// only floating point in this TU lives here, at the RNG draw edge.
std::uint64_t draw_jitter_us(const TimeSyncParams& params, Rng& rng) {
  // tlclint: allow(float-money) gaussian RNG edge, rounded to whole us
  const double jitter = rng.gaussian(0.0, static_cast<double>(params.delay_jitter_us));
  return static_cast<std::uint64_t>(std::llround(std::abs(jitter)));
}

/// One delay leg: mean one-way delay plus jitter, floored at 100us.
std::uint64_t draw_leg_us(const TimeSyncParams& params, Rng& rng) {
  return std::max<std::uint64_t>(100,
                                 params.one_way_delay_us +
                                     draw_jitter_us(params, rng));
}

}  // namespace

TimeSyncResult ntp_sync(const TimeSyncParams& params, Rng& rng) {
  TimeSyncResult result;
  std::uint64_t best_rtt_us = std::numeric_limits<std::uint64_t>::max();
  std::int64_t best_offset_us = 0;

  for (int round = 0; round < std::max(1, params.rounds); ++round) {
    // Request leg and response leg with independent jitter.
    const std::uint64_t fwd_us = draw_leg_us(params, rng);
    const std::uint64_t back_us = draw_leg_us(params, rng);
    // Client timestamps (client clock = server clock + true_offset):
    //   t0 client send, t1 server receive, t2 server send, t3 client recv.
    // offset_est = ((t1 - t0) + (t2 - t3)) / 2
    //            = -true_offset + (fwd - back) / 2     (server processing ~0)
    const std::int64_t offset_est_us =
        -params.true_offset_us + (static_cast<std::int64_t>(fwd_us) -
                                  static_cast<std::int64_t>(back_us)) /
                                     2;
    const std::uint64_t rtt_us = fwd_us + back_us;
    if (rtt_us < best_rtt_us) {
      best_rtt_us = rtt_us;
      best_offset_us = offset_est_us;
    }
  }

  // The client corrects by subtracting its estimate of the server-to-
  // client offset (-best_offset estimates true_offset).
  result.estimated_offset_us = -best_offset_us;
  result.residual_error_us = static_cast<std::uint64_t>(
      std::llabs(params.true_offset_us - result.estimated_offset_us));
  result.best_rtt_us = best_rtt_us;
  return result;
}

ClockModel disciplined_clock(const TimeSyncParams& params, Rng& rng) {
  const TimeSyncResult result = ntp_sync(params, rng);
  ClockModel model;
  // ClockModel speaks seconds (it feeds rng.gaussian directly); convert
  // the integer residual at this boundary only. The residual shows up
  // as a (sign-random) bias at each boundary, plus a small wander
  // between re-syncs.
  // tlclint: allow(float-money) seconds conversion at the ClockModel edge
  const double residual_s = static_cast<double>(result.residual_error_us) * 1e-6;
  model.bias_s = (rng.chance(0.5) ? 1.0 : -1.0) * residual_s;
  model.offset_stddev_s = residual_s / 2.0 + 1e-4;
  return model;
}

}  // namespace tlc::charging
