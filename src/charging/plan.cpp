#include "charging/plan.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace tlc::charging {

std::string DataPlan::describe() const {
  std::ostringstream out;
  out << "DataPlan{c=" << lost_data_weight_c
      << ", cycle=" << to_seconds(cycle_length) << "s"
      << ", quota=" << (quota_bytes >> 20) << "MB"
      << ", throttle=" << throttle_kbps << "kbps}";
  return out.str();
}

std::uint64_t charged_volume(std::uint64_t claim_a, std::uint64_t claim_b,
                             double c) {
  const double weight = std::clamp(c, 0.0, 1.0);
  const std::uint64_t lo = std::min(claim_a, claim_b);
  const std::uint64_t hi = std::max(claim_a, claim_b);
  const double x = static_cast<double>(lo) +
                   weight * static_cast<double>(hi - lo);
  return static_cast<std::uint64_t>(std::llround(x));
}

std::uint64_t expected_charge(std::uint64_t sent, std::uint64_t received,
                              double c) {
  return charged_volume(sent, received, c);
}

std::uint64_t charging_gap(std::uint64_t charged, std::uint64_t expected) {
  return charged > expected ? charged - expected : expected - charged;
}

double gap_ratio(std::uint64_t charged, std::uint64_t expected) {
  if (expected == 0) return 0.0;
  return static_cast<double>(charging_gap(charged, expected)) /
         static_cast<double>(expected);
}

}  // namespace tlc::charging
