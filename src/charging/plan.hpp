// Data plan and the paper's charging formula.
//
// Equation (1): x̂ = x̂o + c · (x̂e − x̂o), with the lost-data weight
// c ∈ [0, 1] agreed in the plan. Algorithm 1 line 8 generalizes it to
// claims in either order; `charged_volume` implements that symmetric
// form. All volumes are bytes.
#pragma once

#include <cstdint>
#include <string>

#include "util/simtime.hpp"

namespace tlc::charging {

/// The charging cycle T = (T_start, T_end) from Table 1.
struct ChargingCycle {
  SimTime start = 0;
  SimTime end = 0;

  [[nodiscard]] SimTime length() const { return end - start; }
  [[nodiscard]] bool operator==(const ChargingCycle& o) const = default;
};

/// Data plan agreed between the edge app vendor and the operator
/// before the cycle (§5.3.1 setup step 1). Pricing/quota fields are
/// carried for completeness; the protocol itself only consumes (c, T).
struct DataPlan {
  /// Charging weight for lost data: 0 = receiver-pays, 1 = sender-pays.
  double lost_data_weight_c = 0.5;
  SimTime cycle_length = kHour;
  /// "Unlimited" plan throttle parameters (§1: e.g. 128 kbps beyond
  /// 15 GB). Not exercised by the negotiation, provided for policy
  /// modelling.
  std::uint64_t quota_bytes = 15ull << 30;
  std::uint64_t throttle_kbps = 128;
  /// Price in micro-currency-units per MB (10'000 = 0.01/MB). Money is
  /// fixed-point end to end; bills divide by 1e6 only at display time.
  std::uint64_t price_micro_per_mb = 10'000;

  [[nodiscard]] std::string describe() const;
};

/// Algorithm 1 line 8: the negotiated charging volume for a pair of
/// claims. Symmetric in the claim order.
[[nodiscard]] std::uint64_t charged_volume(std::uint64_t claim_a,
                                           std::uint64_t claim_b, double c);

/// Equation (1) with ground truth: x̂ = x̂o + c (x̂e − x̂o); requires
/// x̂e >= x̂o (callers pass measured sent/received volumes).
[[nodiscard]] std::uint64_t expected_charge(std::uint64_t sent,
                                            std::uint64_t received, double c);

/// Absolute charging gap ∆ = |x − x̂| in bytes.
[[nodiscard]] std::uint64_t charging_gap(std::uint64_t charged,
                                         std::uint64_t expected);

/// Relative gap ratio ε = ∆ / x̂ (0 when x̂ == 0).
[[nodiscard]] double gap_ratio(std::uint64_t charged, std::uint64_t expected);

}  // namespace tlc::charging
