// NTP-style time synchronization (§5.3.1 setup / §7.2).
//
// The charging cycle T must be consistent between the edge vendor and
// the operator; the paper synchronizes via NTP and attributes the
// residual Fig 18 record errors to the remaining misalignment. This
// module models the classic four-timestamp exchange: each round
// estimates offset = ((t1-t0)+(t2-t3))/2, whose error is the path
// asymmetry; taking the round with the smallest RTT (NTP's clock
// filter) gives the disciplined offset. The result plugs straight into
// a ClockModel. All quantities are integer microseconds — floating
// point exists only at the RNG draw edge inside the implementation.
#pragma once

#include <cstdint>

#include "charging/sampler.hpp"
#include "util/rng.hpp"

namespace tlc::charging {

struct TimeSyncParams {
  /// The party's true clock offset before synchronization (signed us).
  std::int64_t true_offset_us = 1'500'000;
  /// Mean one-way network delay to the time server.
  std::uint64_t one_way_delay_us = 15'000;
  /// Per-leg delay jitter (asymmetry source — the NTP error floor).
  std::uint64_t delay_jitter_us = 4'000;
  /// Exchange rounds; NTP keeps the best-RTT sample.
  int rounds = 8;
};

struct TimeSyncResult {
  /// Offset the client computed (and will correct by), signed us.
  std::int64_t estimated_offset_us = 0;
  /// |true - estimated| after discipline — the residual misalignment.
  std::uint64_t residual_error_us = 0;
  /// RTT of the sample that won the clock filter.
  std::uint64_t best_rtt_us = 0;
};

/// Runs the synchronization exchange.
[[nodiscard]] TimeSyncResult ntp_sync(const TimeSyncParams& params, Rng& rng);

/// A ClockModel for a party that disciplines its clock with `params`
/// before every cycle boundary: the boundary offset becomes the NTP
/// residual instead of the raw drift.
[[nodiscard]] ClockModel disciplined_clock(const TimeSyncParams& params,
                                           Rng& rng);

}  // namespace tlc::charging
