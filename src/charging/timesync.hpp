// NTP-style time synchronization (§5.3.1 setup / §7.2).
//
// The charging cycle T must be consistent between the edge vendor and
// the operator; the paper synchronizes via NTP and attributes the
// residual Fig 18 record errors to the remaining misalignment. This
// module models the classic four-timestamp exchange: each round
// estimates offset = ((t1-t0)+(t2-t3))/2, whose error is the path
// asymmetry; taking the round with the smallest RTT (NTP's clock
// filter) gives the disciplined offset. The result plugs straight into
// a ClockModel.
#pragma once

#include "charging/sampler.hpp"
#include "util/rng.hpp"

namespace tlc::charging {

struct TimeSyncParams {
  /// The party's true clock offset before synchronization.
  double true_offset_s = 1.5;
  /// Mean one-way network delay to the time server.
  double one_way_delay_ms = 15.0;
  /// Per-leg delay jitter (asymmetry source — the NTP error floor).
  double delay_jitter_ms = 4.0;
  /// Exchange rounds; NTP keeps the best-RTT sample.
  int rounds = 8;
};

struct TimeSyncResult {
  /// Offset the client computed (and will correct by).
  double estimated_offset_s = 0.0;
  /// |true - estimated| after discipline — the residual misalignment.
  double residual_error_s = 0.0;
  /// RTT of the sample that won the clock filter.
  double best_rtt_ms = 0.0;
};

/// Runs the synchronization exchange.
[[nodiscard]] TimeSyncResult ntp_sync(const TimeSyncParams& params, Rng& rng);

/// A ClockModel for a party that disciplines its clock with `params`
/// before every cycle boundary: the boundary offset becomes the NTP
/// residual instead of the raw drift.
[[nodiscard]] ClockModel disciplined_clock(const TimeSyncParams& params,
                                           Rng& rng);

}  // namespace tlc::charging
