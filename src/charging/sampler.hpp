// Per-cycle usage sampling with clock misalignment.
//
// §7.2 / Fig 18: the edge vendor's and operator's charging cycles are
// synchronized with NTP, so each party snapshots its cumulative
// counters at the *nominal* cycle boundary plus its own clock offset.
// The offset (and, for RRC-based monitors, report staleness) produces
// the small record errors γe, γo the paper measures.
#pragma once

#include <cstdint>
#include <vector>

#include "charging/monitors.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "util/simtime.hpp"

namespace tlc::charging {

/// A party's clock discipline. Offsets are drawn fresh per boundary
/// (NTP re-syncs between cycles).
struct ClockModel {
  /// Standard deviation of the boundary-sampling offset. The paper's
  /// prototype synchronized cycles coarsely (its Fig 18 record errors
  /// average 1-2% on hour-long cycles, "due to the asynchronous
  /// charging cycle start/end"), which corresponds to offsets on the
  /// order of tens of seconds; tight NTP discipline would shrink these
  /// to milliseconds, as §7.2 notes.
  double offset_stddev_s = 12.0;
  /// Constant skew added to every boundary (0 for disciplined clocks).
  double bias_s = 0.0;

  [[nodiscard]] SimTime draw_offset(Rng& rng) const {
    return from_seconds(bias_s + offset_stddev_s * rng.gaussian());
  }
};

/// Samples one cumulative monitor at (possibly misaligned) cycle
/// boundaries and exposes per-cycle volumes.
class CycleSampler {
 public:
  CycleSampler(sim::Simulator& sim, const UsageMonitor& monitor,
               ClockModel clock, Rng rng);

  /// Schedules a snapshot at nominal boundary time `at` (+ clock
  /// offset). Boundaries must be scheduled in nominal order.
  void schedule_boundary(SimTime at);

  /// Volume between boundary i and i+1 (i.e. cycle i), defined once
  /// both snapshots have fired.
  [[nodiscard]] std::uint64_t cycle_volume(std::size_t cycle) const;
  [[nodiscard]] std::size_t completed_cycles() const;

  /// Raw cumulative snapshots, one per scheduled boundary.
  [[nodiscard]] const std::vector<std::uint64_t>& snapshots() const {
    return snapshots_;
  }

 private:
  sim::Simulator& sim_;
  const UsageMonitor& monitor_;
  ClockModel clock_;
  Rng rng_;
  std::vector<std::uint64_t> snapshots_;
};

}  // namespace tlc::charging
