// Streaming CDR ingest: micro-batched Merkle-aggregated PoC
// (DESIGN.md §16).
//
// The per-record PoC path signs every charging record individually —
// ~273µs of RSA per CDR (BM_RsaSign1024), capping a core at ~3.6k
// signed CDRs/s. This pipeline collapses the per-record cost to
// hashing: CDRs stream in, each canonical 70-byte leaf wire is hashed
// into a Merkle tree (multi-lane SHA-256, crypto/sha256_batch), and
// **one** RSA signature per micro-batch covers the tree root plus the
// leaf count and batch sequence number. A verifier checks the batch
// signature once, then per-CDR inclusion by a log-depth hash path.
//
// Pipeline stages per submitted CDR:
//   1. encode the canonical leaf wire (full-width, never the lossy
//      34-byte compact form — billing proofs must cover exact volumes)
//   2. forward the CDR unchanged to the OFCS sink (bills are
//      byte-identical with the pipeline on or off — proven by test)
//   3. buffer the leaf; at batch_size leaves, seal: build the Merkle
//      tree, sign the commitment, emit a BatchPoc
//
// Fallback semantics: the pipeline is a *front* — the OFCS ledger and
// the per-record PoC path (core/messages, core/poc_store) are
// untouched and remain the reference. Disabling streaming (or a seal
// failure) degrades to exactly the legacy behaviour; nothing about
// billing ever depends on a batch having sealed.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "crypto/merkle.hpp"
#include "crypto/rsa.hpp"
#include "epc/cdr.hpp"
#include "epc/ofcs.hpp"
#include "util/bytes.hpp"
#include "util/expected.hpp"

namespace tlc::charging {

/// Canonical full-width CDR leaf wire (70 bytes). This — not the lossy
/// compact form — is what gets hashed into the tree, so an inclusion
/// proof pins every field the bill depends on.
[[nodiscard]] Bytes encode_cdr_leaf(const epc::ChargingDataRecord& cdr);
[[nodiscard]] Expected<epc::ChargingDataRecord> decode_cdr_leaf(
    const Bytes& wire);

/// One sealed micro-batch's proof of charging: the signed commitment
/// (root, leaf count, sequence, time range) every inclusion proof
/// anchors to.
struct BatchPoc {
  std::uint64_t batch_seq = 0;
  std::uint32_t leaf_count = 0;
  SimTime first_usage = 0;  // min time_of_first_usage over the batch
  SimTime last_usage = 0;   // max time_of_last_usage over the batch
  crypto::MerkleHash root = {};
  Bytes signature;  // RSA over encode_batch_commitment(*this)

  [[nodiscard]] bool operator==(const BatchPoc& o) const = default;
};

/// The exact bytes the batch signature covers (everything but the
/// signature itself).
[[nodiscard]] Bytes encode_batch_commitment(const BatchPoc& poc);

[[nodiscard]] Bytes encode_batch_poc(const BatchPoc& poc);
[[nodiscard]] Expected<BatchPoc> decode_batch_poc(const Bytes& wire);

/// Per-CDR inclusion proof against a BatchPoc.
struct InclusionProof {
  std::uint64_t batch_seq = 0;
  crypto::MerkleProof merkle;

  [[nodiscard]] bool operator==(const InclusionProof& o) const = default;
};

[[nodiscard]] Bytes encode_inclusion_proof(const InclusionProof& proof);
[[nodiscard]] Expected<InclusionProof> decode_inclusion_proof(
    const Bytes& wire);

// ---- Verifier side ----------------------------------------------------

/// Checks the batch signature over the commitment. One RSA verify
/// amortized over every record in the batch.
[[nodiscard]] Status verify_batch_poc(const BatchPoc& poc,
                                      const crypto::RsaPublicKey& key);

/// Checks that `cdr` is the `proof.merkle.leaf_index`-th record of the
/// batch `poc` commits to: binds batch_seq and leaf_count, then walks
/// the hash path. No signature work — call verify_batch_poc once per
/// batch beforehand.
[[nodiscard]] Status verify_cdr_inclusion(const BatchPoc& poc,
                                          const epc::ChargingDataRecord& cdr,
                                          const InclusionProof& proof);

// ---- The pipeline -----------------------------------------------------

struct IngestConfig {
  /// Leaves per micro-batch; larger batches amortize the signature
  /// further (bench: 64/256/1024).
  std::size_t batch_size = 256;
  /// Keep sealed batches' trees and leaf wires in memory so proofs can
  /// be produced later. Fleet-scale streams turn this off: the BatchPoc
  /// (and whatever the sink archived) is the durable artifact.
  bool retain_batches = true;
};

class StreamingIngest {
 public:
  /// `signing_key` must outlive the pipeline. `sink` (nullable)
  /// receives every CDR unchanged, before batching. `on_sealed`
  /// (nullable) fires per sealed batch with the encoded BatchPoc wire —
  /// the PocStore archive hook, kept as a callback so the charging
  /// layer stays independent of the core library.
  using BatchSink = std::function<void(const BatchPoc&, const Bytes& wire)>;

  StreamingIngest(IngestConfig config,
                  const crypto::RsaPrivateKey* signing_key, epc::Ofcs* sink,
                  BatchSink on_sealed = nullptr);

  /// Forwards to the OFCS sink and buffers the canonical leaf. Seals a
  /// batch every config.batch_size submissions.
  void submit(const epc::ChargingDataRecord& cdr);

  /// Seals the current partial batch (no-op when empty). Call at end
  /// of cycle so every ingested CDR is covered by some BatchPoc.
  void flush();

  /// Sealed batch commitments, in seal order.
  [[nodiscard]] const std::vector<BatchPoc>& batches() const {
    return batches_;
  }

  /// Inclusion proof for leaf `leaf_index` of sealed batch
  /// `batch_index` (requires config.retain_batches).
  [[nodiscard]] Expected<InclusionProof> prove(std::size_t batch_index,
                                               std::uint32_t leaf_index) const;

  /// The retained canonical leaf wire (requires config.retain_batches).
  [[nodiscard]] Expected<Bytes> leaf_wire(std::size_t batch_index,
                                          std::uint32_t leaf_index) const;

  [[nodiscard]] std::uint64_t cdrs_submitted() const { return submitted_; }
  [[nodiscard]] std::uint64_t batches_sealed() const {
    return static_cast<std::uint64_t>(batches_.size());
  }
  [[nodiscard]] std::uint64_t leaf_bytes_hashed() const {
    return leaf_bytes_hashed_;
  }

 private:
  struct Sealed {
    crypto::MerkleTree tree;
    std::vector<Bytes> leaves;
  };

  void seal();

  IngestConfig config_;
  const crypto::RsaPrivateKey* key_;
  epc::Ofcs* sink_;
  BatchSink on_sealed_;

  std::vector<Bytes> pending_leaves_;
  SimTime pending_first_ = 0;
  SimTime pending_last_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t submitted_ = 0;
  std::uint64_t leaf_bytes_hashed_ = 0;
  std::vector<BatchPoc> batches_;
  std::vector<Sealed> sealed_;  // parallel to batches_ when retained
};

}  // namespace tlc::charging
