#include "charging/sampler.hpp"

#include <cassert>

namespace tlc::charging {

CycleSampler::CycleSampler(sim::Simulator& sim, const UsageMonitor& monitor,
                           ClockModel clock, Rng rng)
    : sim_(sim), monitor_(monitor), clock_(clock), rng_(rng) {}

void CycleSampler::schedule_boundary(SimTime at) {
  const SimTime offset = clock_.draw_offset(rng_);
  const std::size_t slot = snapshots_.size();
  snapshots_.push_back(0);
  sim_.schedule_at(at + offset, [this, slot] {
    snapshots_[slot] = monitor_.read();
  });
}

std::uint64_t CycleSampler::cycle_volume(std::size_t cycle) const {
  assert(cycle + 1 < snapshots_.size());
  const std::uint64_t start = snapshots_[cycle];
  const std::uint64_t end = snapshots_[cycle + 1];
  return end >= start ? end - start : 0;
}

std::size_t CycleSampler::completed_cycles() const {
  return snapshots_.empty() ? 0 : snapshots_.size() - 1;
}

}  // namespace tlc::charging
