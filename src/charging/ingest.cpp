#include "charging/ingest.hpp"

#include <algorithm>
#include <utility>

#include "util/serde.hpp"

namespace tlc::charging {
namespace {

/// Wire version for every streaming-ingest artifact (leaf, commitment,
/// batch PoC, inclusion proof). Bump together: a verifier that cannot
/// parse the commitment cannot check any proof against it.
constexpr std::uint8_t kBatchWireVersion = 1;

constexpr std::size_t kCdrLeafSize = 70;
constexpr std::size_t kRootSize = 32;

}  // namespace

// tlclint: codec(charging_cdr_leaf, encode, version=kBatchWireVersion)
Bytes encode_cdr_leaf(const epc::ChargingDataRecord& cdr) {
  // Full-width, field-for-field the OFCS journal layout: 8 (imsi) +
  // 4 (gw) + 2 (charging id) + 4 (seq) + 8 (first) + 8 (last) + 8 (ul)
  // + 8 (dl) + 8 (uncharged ul) + 8 (uncharged dl) + 4 (flags) = 70.
  ByteWriter w;
  w.u64(cdr.served_imsi.value);
  w.u32(cdr.gateway_address);
  w.u16(cdr.charging_id);
  w.u32(cdr.sequence_number);
  w.i64(cdr.time_of_first_usage);
  w.i64(cdr.time_of_last_usage);
  w.u64(cdr.datavolume_uplink);
  w.u64(cdr.datavolume_downlink);
  w.u64(cdr.uncharged_uplink);
  w.u64(cdr.uncharged_downlink);
  w.u32(cdr.anomaly_flags);
  return w.take();
}

// tlclint: codec(charging_cdr_leaf, decode, version=kBatchWireVersion)
Expected<epc::ChargingDataRecord> decode_cdr_leaf(const Bytes& wire) {
  if (wire.size() != kCdrLeafSize) return Err("cdr leaf: wrong size");
  ByteReader r(wire);
  epc::ChargingDataRecord cdr;
  auto imsi = r.u64();
  auto gateway = r.u32();
  auto charging_id = r.u16();
  auto sequence = r.u32();
  auto first = r.i64();
  auto last = r.i64();
  auto uplink = r.u64();
  auto downlink = r.u64();
  auto uncharged_ul = r.u64();
  auto uncharged_dl = r.u64();
  auto anomaly_flags = r.u32();
  if (!imsi || !gateway || !charging_id || !sequence || !first || !last ||
      !uplink || !downlink || !uncharged_ul || !uncharged_dl ||
      !anomaly_flags) {
    return Err("cdr leaf: truncated");
  }
  cdr.served_imsi.value = *imsi;
  cdr.gateway_address = *gateway;
  cdr.charging_id = *charging_id;
  cdr.sequence_number = *sequence;
  cdr.time_of_first_usage = *first;
  cdr.time_of_last_usage = *last;
  cdr.datavolume_uplink = *uplink;
  cdr.datavolume_downlink = *downlink;
  cdr.uncharged_uplink = *uncharged_ul;
  cdr.uncharged_downlink = *uncharged_dl;
  cdr.anomaly_flags = *anomaly_flags;
  return cdr;
}

// tlclint: codec(charging_batch_commitment, encode, version=kBatchWireVersion)
Bytes encode_batch_commitment(const BatchPoc& poc) {
  // Signing leaf_count next to the root is what closes the
  // odd-duplication root ambiguity (see crypto/merkle.hpp); batch_seq
  // prevents replaying one batch's signature for another.
  ByteWriter w;
  w.u8(kBatchWireVersion);
  w.u64(poc.batch_seq);
  w.u32(poc.leaf_count);
  w.i64(poc.first_usage);
  w.i64(poc.last_usage);
  w.blob(Bytes(poc.root.begin(), poc.root.end()));
  return w.take();
}

// tlclint: codec(charging_batch_poc, encode, version=kBatchWireVersion)
Bytes encode_batch_poc(const BatchPoc& poc) {
  ByteWriter w;
  w.u8(kBatchWireVersion);
  w.u64(poc.batch_seq);
  w.u32(poc.leaf_count);
  w.i64(poc.first_usage);
  w.i64(poc.last_usage);
  w.blob(Bytes(poc.root.begin(), poc.root.end()));
  w.blob(poc.signature);
  return w.take();
}

// tlclint: codec(charging_batch_poc, decode, version=kBatchWireVersion)
Expected<BatchPoc> decode_batch_poc(const Bytes& wire) {
  ByteReader r(wire);
  auto version = r.u8();
  if (!version) return Err("batch poc: truncated");
  if (*version != kBatchWireVersion) return Err("batch poc: bad version");
  auto batch_seq = r.u64();
  auto leaf_count = r.u32();
  auto first = r.i64();
  auto last = r.i64();
  auto root = r.blob();
  auto signature = r.blob();
  if (!batch_seq || !leaf_count || !first || !last || !root || !signature) {
    return Err("batch poc: truncated");
  }
  if (root->size() != kRootSize) return Err("batch poc: bad root size");
  if (!r.exhausted()) return Err("batch poc: trailing bytes");
  BatchPoc poc;
  poc.batch_seq = *batch_seq;
  poc.leaf_count = *leaf_count;
  poc.first_usage = *first;
  poc.last_usage = *last;
  std::copy(root->begin(), root->end(), poc.root.begin());
  poc.signature = std::move(*signature);
  return poc;
}

// tlclint: codec(charging_inclusion_proof, encode, version=kBatchWireVersion)
Bytes encode_inclusion_proof(const InclusionProof& proof) {
  ByteWriter w;
  w.u8(kBatchWireVersion);
  w.u64(proof.batch_seq);
  w.u32(proof.merkle.leaf_index);
  w.u32(proof.merkle.leaf_count);
  w.u32(static_cast<std::uint32_t>(proof.merkle.path.size()));
  for (const crypto::MerkleHash& hash : proof.merkle.path) {
    w.blob(Bytes(hash.begin(), hash.end()));
  }
  return w.take();
}

// tlclint: codec(charging_inclusion_proof, decode, version=kBatchWireVersion)
Expected<InclusionProof> decode_inclusion_proof(const Bytes& wire) {
  ByteReader r(wire);
  auto version = r.u8();
  if (!version) return Err("inclusion proof: truncated");
  if (*version != kBatchWireVersion) {
    return Err("inclusion proof: bad version");
  }
  auto batch_seq = r.u64();
  auto leaf_index = r.u32();
  auto leaf_count = r.u32();
  auto depth = r.u32();
  if (!batch_seq || !leaf_index || !leaf_count || !depth) {
    return Err("inclusion proof: truncated");
  }
  // A 32-bit leaf count caps real depth at 32; anything larger is a
  // forged header, rejected before allocating.
  if (*depth > 64) return Err("inclusion proof: depth implausible");
  InclusionProof proof;
  proof.batch_seq = *batch_seq;
  proof.merkle.leaf_index = *leaf_index;
  proof.merkle.leaf_count = *leaf_count;
  proof.merkle.path.reserve(*depth);
  for (std::uint32_t i = 0; i < *depth; ++i) {
    auto hash = r.blob();
    if (!hash) return Err("inclusion proof: truncated path");
    if (hash->size() != kRootSize) {
      return Err("inclusion proof: bad path hash size");
    }
    crypto::MerkleHash node;
    std::copy(hash->begin(), hash->end(), node.begin());
    proof.merkle.path.push_back(node);
  }
  if (!r.exhausted()) return Err("inclusion proof: trailing bytes");
  return proof;
}

Status verify_batch_poc(const BatchPoc& poc,
                        const crypto::RsaPublicKey& key) {
  if (poc.leaf_count == 0) return Err("batch poc: empty batch");
  return crypto::rsa_verify(key, encode_batch_commitment(poc),
                            poc.signature);
}

Status verify_cdr_inclusion(const BatchPoc& poc,
                            const epc::ChargingDataRecord& cdr,
                            const InclusionProof& proof) {
  if (proof.batch_seq != poc.batch_seq) {
    return Err("inclusion: batch sequence mismatch");
  }
  if (proof.merkle.leaf_count != poc.leaf_count) {
    return Err("inclusion: leaf count mismatch");
  }
  return crypto::merkle_verify(poc.root, encode_cdr_leaf(cdr), proof.merkle);
}

StreamingIngest::StreamingIngest(IngestConfig config,
                                 const crypto::RsaPrivateKey* signing_key,
                                 epc::Ofcs* sink, BatchSink on_sealed)
    : config_(config),
      key_(signing_key),
      sink_(sink),
      on_sealed_(std::move(on_sealed)) {
  if (config_.batch_size == 0) config_.batch_size = 1;
  pending_leaves_.reserve(config_.batch_size);
}

void StreamingIngest::submit(const epc::ChargingDataRecord& cdr) {
  // Billing first: the ledger never waits on (or depends on) a seal.
  if (sink_ != nullptr) sink_->ingest(cdr);

  Bytes leaf = encode_cdr_leaf(cdr);
  leaf_bytes_hashed_ += leaf.size();
  if (pending_leaves_.empty()) {
    pending_first_ = cdr.time_of_first_usage;
    pending_last_ = cdr.time_of_last_usage;
  } else {
    pending_first_ = std::min(pending_first_, cdr.time_of_first_usage);
    pending_last_ = std::max(pending_last_, cdr.time_of_last_usage);
  }
  pending_leaves_.push_back(std::move(leaf));
  ++submitted_;
  if (pending_leaves_.size() >= config_.batch_size) seal();
}

void StreamingIngest::flush() { seal(); }

void StreamingIngest::seal() {
  if (pending_leaves_.empty()) return;

  crypto::MerkleTree tree = crypto::MerkleTree::build(pending_leaves_);
  BatchPoc poc;
  poc.batch_seq = next_seq_++;
  poc.leaf_count = tree.leaf_count();
  poc.first_usage = pending_first_;
  poc.last_usage = pending_last_;
  poc.root = tree.root();
  if (key_ != nullptr) {
    poc.signature = crypto::rsa_sign(*key_, encode_batch_commitment(poc));
  }

  const Bytes wire = encode_batch_poc(poc);
  if (on_sealed_) on_sealed_(poc, wire);
  batches_.push_back(std::move(poc));
  if (config_.retain_batches) {
    sealed_.push_back(Sealed{std::move(tree), std::move(pending_leaves_)});
  }
  pending_leaves_.clear();  // valid-but-unspecified after the move above
  pending_leaves_.reserve(config_.batch_size);
  pending_first_ = 0;
  pending_last_ = 0;
}

Expected<InclusionProof> StreamingIngest::prove(
    std::size_t batch_index, std::uint32_t leaf_index) const {
  if (!config_.retain_batches) {
    return Err("ingest: batches not retained");
  }
  if (batch_index >= sealed_.size()) {
    return Err("ingest: batch index out of range");
  }
  auto merkle = sealed_[batch_index].tree.proof(leaf_index);
  if (!merkle) return Err(merkle.error());
  InclusionProof proof;
  proof.batch_seq = batches_[batch_index].batch_seq;
  proof.merkle = std::move(*merkle);
  return proof;
}

Expected<Bytes> StreamingIngest::leaf_wire(std::size_t batch_index,
                                           std::uint32_t leaf_index) const {
  if (!config_.retain_batches) {
    return Err("ingest: batches not retained");
  }
  if (batch_index >= sealed_.size()) {
    return Err("ingest: batch index out of range");
  }
  const std::vector<Bytes>& leaves = sealed_[batch_index].leaves;
  if (leaf_index >= leaves.size()) {
    return Err("ingest: leaf index out of range");
  }
  return leaves[leaf_index];
}

}  // namespace tlc::charging
