#include "transport/rlnc.hpp"

#include <algorithm>

#include "transport/gf256.hpp"

namespace tlc::transport {

std::vector<Bytes> chunk_payload(const Bytes& payload,
                                 std::size_t chunk_bytes) {
  std::vector<Bytes> chunks;
  if (chunk_bytes == 0) return chunks;
  const std::size_t count =
      payload.empty() ? 1 : (payload.size() + chunk_bytes - 1) / chunk_bytes;
  chunks.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Bytes chunk(chunk_bytes, 0);
    const std::size_t begin = i * chunk_bytes;
    const std::size_t n =
        std::min(chunk_bytes, payload.size() > begin ? payload.size() - begin
                                                     : 0);
    std::copy_n(payload.begin() + static_cast<std::ptrdiff_t>(begin), n,
                chunk.begin());
    chunks.push_back(std::move(chunk));
  }
  return chunks;
}

GenerationEncoder::GenerationEncoder(std::vector<Bytes> chunks)
    : chunks_(std::move(chunks)) {}

CodedSymbol GenerationEncoder::systematic(std::uint16_t index) const {
  CodedSymbol symbol;
  symbol.coefficients.assign(chunks_.size(), 0);
  symbol.coefficients[index] = 1;
  symbol.body = chunks_[index];
  return symbol;
}

CodedSymbol GenerationEncoder::coded(Rng& rng) const {
  CodedSymbol symbol;
  symbol.coefficients = rng.bytes(chunks_.size());
  const bool all_zero =
      std::all_of(symbol.coefficients.begin(), symbol.coefficients.end(),
                  [](std::uint8_t c) { return c == 0; });
  if (all_zero) symbol.coefficients.back() = 1;
  symbol.body.assign(chunks_.front().size(), 0);
  for (std::size_t i = 0; i < chunks_.size(); ++i) {
    gf256::axpy(symbol.body.data(), chunks_[i].data(), symbol.body.size(),
                symbol.coefficients[i]);
  }
  return symbol;
}

GenerationDecoder::GenerationDecoder(std::uint16_t generation_size,
                                     std::uint16_t chunk_bytes)
    : generation_size_(generation_size), chunk_bytes_(chunk_bytes) {
  rows_.reserve(generation_size);
}

bool GenerationDecoder::add(const CodedSymbol& symbol) {
  if (symbol.coefficients.size() != generation_size_ ||
      symbol.body.size() != chunk_bytes_ || complete()) {
    return false;
  }
  Bytes coeffs = symbol.coefficients;
  Bytes body = symbol.body;

  // Forward-reduce against the rows held so far (sorted by pivot).
  for (const Row& row : rows_) {
    const std::uint8_t factor = coeffs[row.pivot];
    if (factor == 0) continue;
    gf256::axpy(coeffs.data(), row.coefficients.data(), coeffs.size(),
                factor);
    gf256::axpy(body.data(), row.body.data(), body.size(), factor);
  }

  const auto pivot_it =
      std::find_if(coeffs.begin(), coeffs.end(),
                   [](std::uint8_t c) { return c != 0; });
  if (pivot_it == coeffs.end()) return false;  // linearly dependent
  const std::uint16_t pivot =
      static_cast<std::uint16_t>(pivot_it - coeffs.begin());

  // Normalize the pivot to 1.
  const std::uint8_t scale = gf256::inv(coeffs[pivot]);
  gf256::scale(coeffs.data(), coeffs.size(), scale);
  gf256::scale(body.data(), body.size(), scale);

  // Back-substitute into the existing rows so the set stays in
  // reduced row-echelon form and full rank reads out directly.
  for (Row& row : rows_) {
    const std::uint8_t factor = row.coefficients[pivot];
    if (factor == 0) continue;
    gf256::axpy(row.coefficients.data(), coeffs.data(),
                row.coefficients.size(), factor);
    gf256::axpy(row.body.data(), body.data(), row.body.size(), factor);
  }

  Row row;
  row.coefficients = std::move(coeffs);
  row.body = std::move(body);
  row.pivot = pivot;
  rows_.insert(std::upper_bound(rows_.begin(), rows_.end(), row,
                                [](const Row& a, const Row& b) {
                                  return a.pivot < b.pivot;
                                }),
               std::move(row));
  ++rank_;
  return true;
}

std::vector<Bytes> GenerationDecoder::chunks() const {
  std::vector<Bytes> out;
  if (!complete()) return out;
  out.reserve(rows_.size());
  for (const Row& row : rows_) out.push_back(row.body);
  return out;
}

}  // namespace tlc::transport
