// Batch settlement over a fault-injected transport (§8).
//
// The lossy-link counterpart of core::BatchSettler: the same per-UE
// reusable session pairs and key slots, but every wire message crosses
// a FaultyChannel and is protected by the stop-and-wait retry shim.
// Unlike the in-process settler, a cycle that cannot converge does not
// poison its UE — it degrades to the legacy CDR bill and the next
// cycle proceeds.
//
// Determinism contract: every random draw derives from
// (transport.seed, ue, message index) for faults, (transport.seed, ue,
// cycle, party) for retry jitter, and (rng_salt, ue, role) for session
// nonces — pure functions, no wall clock, no shared RNG sequences.
// Receipts and counters are therefore bit-identical for every thread
// count, and with all-zero fault rates the PoC bytes equal the
// lossless BatchSettler's exactly.
#pragma once

#include <cstddef>
#include <vector>

#include "core/batch_settlement.hpp"
#include "recovery/crash_plan.hpp"
#include "transport/faulty_channel.hpp"
#include "transport/retry.hpp"
#include "transport/transport_config.hpp"

namespace tlc::transport {

/// Receipts plus the per-outcome census (§8 settlement counters) and
/// the coded-path census (§17; all-zero from LossySettler itself and
/// whenever TransportConfig::coding is off).
struct LossyBatchReport {
  std::vector<core::SettlementReceipt> receipts;
  std::size_t converged = 0;
  std::size_t retried = 0;
  std::size_t degraded = 0;
  std::size_t rejected_tamper = 0;
  CodedCounters coded;
};

class LossySettler {
 public:
  /// `keys` must outlive the settler.
  LossySettler(core::BatchConfig config, TransportConfig transport,
               const core::RsaKeyCache& keys);

  /// Wires in crash injection: the settle-cycle point fires before
  /// each (UE, cycle) negotiation, scoped by UE id so the schedule is
  /// thread-count independent. A CrashException raised inside a worker
  /// is caught there, the remaining workers drain, and it is rethrown
  /// from the calling thread — the supervisor sees one clean crash.
  void set_crash_plan(recovery::CrashPlan* plan) { plan_ = plan; }

  /// Settles every item; same grouping, ordering and threading rules
  /// as BatchSettler::settle.
  [[nodiscard]] LossyBatchReport settle(
      const std::vector<core::SettlementItem>& items,
      unsigned threads = 1) const;

 private:
  core::BatchConfig config_;
  TransportConfig transport_;
  const core::RsaKeyCache& keys_;
  recovery::CrashPlan* plan_ = nullptr;
};

}  // namespace tlc::transport
