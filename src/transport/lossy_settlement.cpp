#include "transport/lossy_settlement.hpp"

#include <algorithm>
#include <atomic>
#include <deque>
#include <optional>
#include <thread>
#include <unordered_map>

#include "sim/rng_stream.hpp"
#include "transport/settlement_runner.hpp"
#include "util/thread_annotations.hpp"

namespace tlc::transport {
namespace {

struct Group {
  std::uint64_t ue_id = 0;
  std::vector<std::size_t> item_indices;  // into the input vector
};

}  // namespace

LossySettler::LossySettler(core::BatchConfig config, TransportConfig transport,
                           const core::RsaKeyCache& keys)
    : config_(config), transport_(transport), keys_(keys) {}

LossyBatchReport LossySettler::settle(
    const std::vector<core::SettlementItem>& items, unsigned threads) const {
  LossyBatchReport report;
  report.receipts.resize(items.size());

  // Same grouping as BatchSettler: by UE in first-appearance order,
  // item n of a UE = its cycle n. The side index makes grouping O(n);
  // deque order alone fixes the output.
  std::deque<Group> groups;
  std::unordered_map<std::uint64_t, std::size_t> group_by_ue;
  group_by_ue.reserve(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    const auto [it, inserted] =
        group_by_ue.try_emplace(items[i].ue_id, groups.size());
    if (inserted) {
      groups.emplace_back();
      groups.back().ue_id = items[i].ue_id;
    }
    Group* group = &groups[it->second];
    group->item_indices.push_back(i);
    report.receipts[i].ue_id = items[i].ue_id;
    report.receipts[i].cycle =
        static_cast<std::uint32_t>(group->item_indices.size() - 1);
  }

  auto run_group = [&](const Group& group) {
    const std::uint64_t ue = group.ue_id;
    auto edge = core::make_batch_session(config_, keys_, ue,
                                         core::PartyRole::EdgeVendor,
                                         /*tolerate_faults=*/true);
    auto op = core::make_batch_session(config_, keys_, ue,
                                       core::PartyRole::Operator,
                                       /*tolerate_faults=*/true);
    // Fault schedules and retry jitter derive from (seed, ue, ...):
    // the group is a pure function of its inputs wherever it runs.
    // Even/odd streams split the per-UE index space between the two
    // consumers.
    const std::uint64_t fault_stream = 2 * ue;
    const std::uint64_t jitter_stream = 2 * ue + 1;
    FaultyChannel channel(transport_.to_edge, transport_.to_operator,
                          sim::stream_seed(transport_.seed, fault_stream));
    const std::uint64_t jitter_root =
        sim::stream_seed(transport_.seed, jitter_stream);
    std::uint64_t now = 0;

    for (std::size_t slot = 0; slot < group.item_indices.size(); ++slot) {
      const std::size_t item_index = group.item_indices[slot];
      const core::SettlementItem& item = items[item_index];
      core::SettlementReceipt& receipt = report.receipts[item_index];

      // Scoped by UE: the k-th visit of (settle-cycle, ue) is this
      // UE's cycle k no matter how groups land on workers.
      if (plan_ != nullptr) plan_->fire(recovery::kCrashSettleCycle, ue);

      if (!op->begin_cycle(item.op_view).ok() ||
          !edge->begin_cycle(item.edge_view).ok()) {
        receipt.failure_reason = "cycle could not start";
        continue;
      }
      // Each cycle is a fresh transport association: leftovers of the
      // previous cycle (late duplicates, reordered stragglers) must
      // not replay into this one.
      channel.drain();

      const std::uint64_t slot_stream = slot;
      SettlementRunner runner(*edge, *op, channel, transport_.retry,
                              sim::stream_seed(jitter_root, slot_stream), now);
      CycleRunResult result = runner.run_cycle(
          keys_.edge_key(ue).public_key, keys_.operator_key(ue).public_key);
      now = runner.now() + 1;

      receipt.outcome = result.outcome;
      receipt.completed = result.outcome == core::SettleOutcome::Converged ||
                          result.outcome == core::SettleOutcome::Retried;
      receipt.charged = result.charged;
      receipt.rounds = result.rounds;
      receipt.poc_wire = std::move(result.poc_wire);
      receipt.retransmits = result.retransmits;
      receipt.failure_reason = std::move(result.failure_reason);
    }
  };

  if (threads <= 1 || groups.size() <= 1) {
    for (const Group& group : groups) run_group(group);
  } else {
    // Static round-robin partition: each group is fully local to one
    // worker and writes only its own receipt slots, so results never
    // depend on the worker count.
    const unsigned workers =
        static_cast<unsigned>(std::min<std::size_t>(threads, groups.size()));
    std::vector<std::thread> pool;
    pool.reserve(workers);
    // Injected crashes must not escape a worker thread (std::terminate)
    // — each worker catches, the rest drain at their next group, and
    // the first crash is rethrown from the calling thread after join.
    // CrashPlan's dying-state replication makes "first" deterministic:
    // every worker that touches another crash point after the kill
    // receives the same site.
    std::atomic<bool> crashed{false};
    util::Mutex crash_mu;
    std::optional<recovery::CrashException> kill;
    std::optional<recovery::WedgeException> wedge;
    for (unsigned w = 0; w < workers; ++w) {
      pool.emplace_back([&, w] {
        for (std::size_t g = w; g < groups.size(); g += workers) {
          if (crashed.load(std::memory_order_relaxed)) return;
          try {
            run_group(groups[g]);
          } catch (const recovery::CrashException& e) {
            crashed.store(true, std::memory_order_relaxed);
            util::MutexLock lock(crash_mu);
            if (!kill.has_value()) kill = e;
            return;
          } catch (const recovery::WedgeException& e) {
            crashed.store(true, std::memory_order_relaxed);
            util::MutexLock lock(crash_mu);
            if (!wedge.has_value()) wedge = e;
            return;
          }
        }
      });
    }
    for (std::thread& worker : pool) worker.join();
    if (kill.has_value()) throw *kill;
    if (wedge.has_value()) throw *wedge;
  }

  // Census in input order — a pure function of the receipts.
  for (const core::SettlementReceipt& receipt : report.receipts) {
    switch (receipt.outcome) {
      case core::SettleOutcome::Converged:
        ++report.converged;
        break;
      case core::SettleOutcome::Retried:
        ++report.retried;
        break;
      case core::SettleOutcome::Degraded:
        ++report.degraded;
        break;
      case core::SettleOutcome::RejectedTamper:
        ++report.rejected_tamper;
        break;
    }
  }
  return report;
}

}  // namespace tlc::transport
