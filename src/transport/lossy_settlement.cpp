#include "transport/lossy_settlement.hpp"

#include <algorithm>

#include "sim/rng_stream.hpp"
#include "transport/group_runner.hpp"
#include "transport/settlement_runner.hpp"

namespace tlc::transport {

LossySettler::LossySettler(core::BatchConfig config, TransportConfig transport,
                           const core::RsaKeyCache& keys)
    : config_(config), transport_(transport), keys_(keys) {}

LossyBatchReport LossySettler::settle(
    const std::vector<core::SettlementItem>& items, unsigned threads) const {
  LossyBatchReport report;
  report.receipts.resize(items.size());

  // Same grouping as BatchSettler: by UE in first-appearance order,
  // item n of a UE = its cycle n.
  const std::deque<detail::UeGroup> groups =
      detail::group_by_ue(items, report.receipts);

  auto run_group = [&](const detail::UeGroup& group, std::size_t) {
    const std::uint64_t ue = group.ue_id;
    auto edge = core::make_batch_session(config_, keys_, ue,
                                         core::PartyRole::EdgeVendor,
                                         /*tolerate_faults=*/true);
    auto op = core::make_batch_session(config_, keys_, ue,
                                       core::PartyRole::Operator,
                                       /*tolerate_faults=*/true);
    // Fault schedules and retry jitter derive from (seed, ue, ...):
    // the group is a pure function of its inputs wherever it runs.
    // Even/odd streams split the per-UE index space between the two
    // consumers.
    const std::uint64_t fault_stream = 2 * ue;
    const std::uint64_t jitter_stream = 2 * ue + 1;
    FaultyChannel channel(transport_.to_edge, transport_.to_operator,
                          sim::stream_seed(transport_.seed, fault_stream));
    const std::uint64_t jitter_root =
        sim::stream_seed(transport_.seed, jitter_stream);
    std::uint64_t now = 0;

    for (std::size_t slot = 0; slot < group.item_indices.size(); ++slot) {
      const std::size_t item_index = group.item_indices[slot];
      const core::SettlementItem& item = items[item_index];
      core::SettlementReceipt& receipt = report.receipts[item_index];

      // Scoped by UE: the k-th visit of (settle-cycle, ue) is this
      // UE's cycle k no matter how groups land on workers.
      if (plan_ != nullptr) plan_->fire(recovery::kCrashSettleCycle, ue);

      if (!op->begin_cycle(item.op_view).ok() ||
          !edge->begin_cycle(item.edge_view).ok()) {
        receipt.failure_reason = "cycle could not start";
        continue;
      }
      // Each cycle is a fresh transport association: leftovers of the
      // previous cycle (late duplicates, reordered stragglers) must
      // not replay into this one.
      channel.drain();

      const std::uint64_t slot_stream = slot;
      SettlementRunner runner(*edge, *op, channel, transport_.retry,
                              sim::stream_seed(jitter_root, slot_stream), now);
      CycleRunResult result = runner.run_cycle(
          keys_.edge_key(ue).public_key, keys_.operator_key(ue).public_key);
      now = runner.now() + 1;

      receipt.outcome = result.outcome;
      receipt.completed = result.outcome == core::SettleOutcome::Converged ||
                          result.outcome == core::SettleOutcome::Retried;
      receipt.charged = result.charged;
      receipt.rounds = result.rounds;
      receipt.poc_wire = std::move(result.poc_wire);
      receipt.retransmits = result.retransmits;
      receipt.failure_reason = std::move(result.failure_reason);
    }
  };

  detail::run_groups(groups, threads, run_group);
  detail::fill_census(report);
  return report;
}

}  // namespace tlc::transport
