#include "transport/gf256.hpp"

namespace tlc::transport::gf256 {
namespace {

struct Tables {
  // exp_ is doubled so mul via exp_[log a + log b] needs no mod 255.
  std::uint8_t exp_[512];
  std::uint8_t log_[256];
  std::uint8_t mul_[256][256];

  Tables() {
    std::uint16_t x = 1;
    for (int i = 0; i < 255; ++i) {
      exp_[i] = static_cast<std::uint8_t>(x);
      exp_[i + 255] = static_cast<std::uint8_t>(x);
      log_[x] = static_cast<std::uint8_t>(i);
      x <<= 1;
      if ((x & 0x100) != 0) x ^= kPolynomial;
    }
    exp_[510] = exp_[0];
    exp_[511] = exp_[1];
    log_[0] = 0;  // never read on a valid path

    for (int a = 0; a < 256; ++a) {
      mul_[0][a] = 0;
      mul_[a][0] = 0;
    }
    for (int a = 1; a < 256; ++a) {
      for (int b = 1; b < 256; ++b) {
        mul_[a][b] = exp_[log_[a] + log_[b]];
      }
    }
  }
};

const Tables& tables() {
  static const Tables kTables;
  return kTables;
}

}  // namespace

std::uint8_t mul(std::uint8_t a, std::uint8_t b) {
  return tables().mul_[a][b];
}

std::uint8_t inv(std::uint8_t a) {
  if (a == 0) return 0;
  const Tables& t = tables();
  return t.exp_[255 - t.log_[a]];
}

std::uint8_t div(std::uint8_t a, std::uint8_t b) {
  if (b == 0) return 0;
  return mul(a, inv(b));
}

const std::uint8_t* mul_row(std::uint8_t c) { return tables().mul_[c]; }

void axpy(std::uint8_t* dst, const std::uint8_t* src, std::size_t n,
          std::uint8_t c) {
  if (c == 0) return;
  const std::uint8_t* row = mul_row(c);
  for (std::size_t i = 0; i < n; ++i) dst[i] ^= row[src[i]];
}

void scale(std::uint8_t* dst, std::size_t n, std::uint8_t c) {
  const std::uint8_t* row = mul_row(c);
  for (std::size_t i = 0; i < n; ++i) dst[i] = row[dst[i]];
}

}  // namespace tlc::transport::gf256
