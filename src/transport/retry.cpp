#include "transport/retry.hpp"

#include <algorithm>
#include <cmath>

namespace tlc::transport {

std::uint64_t backoff_timeout(const RetryPolicy& policy, int attempt,
                              Rng& jitter_rng) {
  double timeout = static_cast<double>(policy.base_timeout_ticks);
  for (int i = 0; i < attempt; ++i) timeout *= policy.backoff_factor;
  timeout = std::min(timeout, static_cast<double>(policy.max_timeout_ticks));
  auto ticks = static_cast<std::uint64_t>(timeout);
  ticks = std::max<std::uint64_t>(ticks, 1);
  if (policy.jitter > 0.0) {
    const auto spread = static_cast<std::uint64_t>(
        policy.jitter * static_cast<double>(ticks));
    if (spread > 0) ticks += jitter_rng.uniform_u64(spread);
  }
  return ticks;
}

void RetransmitTimer::arm(std::uint64_t now) {
  attempt_ = 0;
  deadline_ = now + backoff_timeout(policy_, attempt_, jitter_rng_);
}

void RetransmitTimer::disarm() { deadline_ = kNever; }

bool RetransmitTimer::record_retransmit(std::uint64_t now) {
  if (budget_exhausted()) {
    deadline_ = kNever;
    return false;
  }
  ++total_;
  ++attempt_;
  deadline_ = now + backoff_timeout(policy_, attempt_, jitter_rng_);
  return true;
}

}  // namespace tlc::transport
