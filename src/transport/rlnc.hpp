// Generation-based random linear network coding over GF(2^8) (§17).
//
// A generation is `generation_size` fixed-width chunks of the sealed
// settlement batch. The encoder emits symbols — (coefficient vector,
// body) pairs — either systematically (unit vector e_i, chunk i) or
// coded (seeded random coefficients, body = Σ c_i × chunk_i). The
// decoder runs incremental Gauss–Jordan elimination: each added
// symbol is reduced against the rows held so far, rejected as
// linearly dependent when its coefficients cancel to zero, otherwise
// normalized, back-substituted and kept. Rank `generation_size` means
// the row set is the identity matrix and the chunks read out
// directly; the decoder never emits plaintext below full rank.
//
// Determinism: the encoder draws coefficients from the caller's Rng
// only — typically a per-(group, generation) stream off the named
// coefficient seed stream (coded_session.hpp) — so a generation's
// coded symbols are a pure function of (payload, seed) wherever and
// whenever they are produced.
#pragma once

#include <cstdint>
#include <vector>

#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace tlc::transport {

/// One RLNC symbol: the coding vector and the combined body.
struct CodedSymbol {
  Bytes coefficients;  // generation_size entries
  Bytes body;          // chunk_bytes entries
};

/// Splits `payload` into chunks of `chunk_bytes`, zero-padding the
/// tail chunk. Returns at least one chunk (all-zero for an empty
/// payload) so every generation has a well-defined size.
[[nodiscard]] std::vector<Bytes> chunk_payload(const Bytes& payload,
                                               std::size_t chunk_bytes);

class GenerationEncoder {
 public:
  /// `chunks` must be non-empty and uniform in size (chunk_payload's
  /// output, possibly a generation-sized slice of it).
  explicit GenerationEncoder(std::vector<Bytes> chunks);

  [[nodiscard]] std::uint16_t generation_size() const {
    return static_cast<std::uint16_t>(chunks_.size());
  }
  [[nodiscard]] std::uint16_t chunk_bytes() const {
    return static_cast<std::uint16_t>(chunks_.front().size());
  }

  /// Systematic symbol i: unit coefficients, body = chunk i verbatim.
  [[nodiscard]] CodedSymbol systematic(std::uint16_t index) const;

  /// Random-combination symbol with coefficients drawn from `rng`.
  /// An all-zero draw (probability 256^-g) is patched to e_last so
  /// every emitted symbol spans at least one dimension.
  [[nodiscard]] CodedSymbol coded(Rng& rng) const;

 private:
  std::vector<Bytes> chunks_;
};

class GenerationDecoder {
 public:
  GenerationDecoder(std::uint16_t generation_size, std::uint16_t chunk_bytes);

  /// Reduces the symbol into the row set. Returns true when it was
  /// innovative (rank grew), false when linearly dependent on symbols
  /// already held. Symbols with mismatched widths are rejected as
  /// dependent (defensive; the session layer CRC-screens first).
  bool add(const CodedSymbol& symbol);

  [[nodiscard]] std::uint16_t rank() const { return rank_; }
  [[nodiscard]] std::uint16_t generation_size() const {
    return generation_size_;
  }
  [[nodiscard]] bool complete() const { return rank_ == generation_size_; }

  /// The decoded chunks, pivot order == chunk order. Only meaningful
  /// when complete() — below full rank it returns an empty vector.
  [[nodiscard]] std::vector<Bytes> chunks() const;

 private:
  struct Row {
    Bytes coefficients;
    Bytes body;
    std::uint16_t pivot = 0;
  };

  std::uint16_t generation_size_;
  std::uint16_t chunk_bytes_;
  std::uint16_t rank_ = 0;
  std::vector<Row> rows_;  // kept sorted by pivot column
};

}  // namespace tlc::transport
