// Reliability shim between one TlcSession and a lossy channel (§8).
//
// The negotiation is stop-and-wait (each party has at most one message
// outstanding), so reliability is exactly one retransmit timer per
// party. The driver records the last wire this side sent and, when the
// timer expires or the peer's duplicate betrays a lost reply, resends
// those *same bytes* — same signature, same nonce; the peer's
// idempotent receive makes the resend a no-op if the original arrived
// after all. Retransmissions draw on a per-cycle budget; once it is
// spent the driver reports degradation and the cycle falls back to the
// legacy CDR bill.
#pragma once

#include <functional>
#include <string>

#include "core/tlc_session.hpp"
#include "transport/retry.hpp"

namespace tlc::transport {

class ReliableSessionDriver {
 public:
  /// Where outgoing wires go (into a FaultyChannel lane).
  using WireSink = std::function<void(const Bytes&)>;

  /// Hooks the session's send path. The session must already have the
  /// cycle armed (begin_cycle); call before start()/first delivery.
  ReliableSessionDriver(core::TlcSession& session, RetryPolicy policy,
                        Rng jitter_rng, WireSink sink);

  /// Syncs the driver's virtual clock (stamps timer arms triggered by
  /// sends the session makes from within start()).
  void set_now(std::uint64_t now) { now_ = now; }

  /// Delivers one inbound wire at `now`. A duplicate of an
  /// already-processed message means the peer missed our reply, so it
  /// is answered by resending the last sent wire (budget permitting).
  void on_wire(const Bytes& wire, std::uint64_t now);

  /// Drives the retransmit timer at `now`. Returns false once the
  /// retransmission budget is exhausted — the caller degrades the
  /// cycle.
  [[nodiscard]] bool poll(std::uint64_t now);

  /// Next tick at which poll() would act (RetransmitTimer::kNever when
  /// idle or degraded).
  [[nodiscard]] std::uint64_t next_deadline() const;

  [[nodiscard]] int retransmits() const { return timer_.retransmits(); }
  [[nodiscard]] int duplicates_seen() const { return duplicates_seen_; }
  [[nodiscard]] bool degraded() const { return degraded_; }
  [[nodiscard]] const std::string& last_error() const { return last_error_; }

 private:
  void handle_send(const Bytes& wire);
  void resend_last(std::uint64_t now);

  core::TlcSession& session_;
  RetransmitTimer timer_;
  WireSink sink_;
  Bytes last_sent_;
  std::uint64_t now_ = 0;
  int duplicates_seen_ = 0;
  bool degraded_ = false;
  std::string last_error_;
};

}  // namespace tlc::transport
