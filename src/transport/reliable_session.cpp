#include "transport/reliable_session.hpp"

namespace tlc::transport {

ReliableSessionDriver::ReliableSessionDriver(core::TlcSession& session,
                                             RetryPolicy policy, Rng jitter_rng,
                                             WireSink sink)
    : session_(session), timer_(policy, jitter_rng), sink_(std::move(sink)) {
  session_.set_send([this](const Bytes& wire) { handle_send(wire); });
}

void ReliableSessionDriver::handle_send(const Bytes& wire) {
  last_sent_ = wire;
  timer_.arm(now_);
  sink_(wire);
}

void ReliableSessionDriver::resend_last(std::uint64_t now) {
  if (last_sent_.empty()) return;
  if (!timer_.record_retransmit(now)) {
    degraded_ = true;
    return;
  }
  // Same bytes, same signature, same nonce — never re-signed.
  sink_(last_sent_);
}

void ReliableSessionDriver::on_wire(const Bytes& wire, std::uint64_t now) {
  now_ = now;
  const int dupes_before = session_.duplicates_ignored();
  const Status status = session_.receive(wire);
  if (session_.duplicates_ignored() > dupes_before) {
    // The peer repeated itself: our reply to that message was lost (or
    // is still in flight). Resending it is the only way a lost final
    // PoC ever reaches a peer that has nothing left to time out on.
    ++duplicates_seen_;
    resend_last(now);
    return;
  }
  if (!status.ok()) last_error_ = status.error();
  if (session_.cycle_complete() || session_.cycle_failed()) timer_.disarm();
}

bool ReliableSessionDriver::poll(std::uint64_t now) {
  now_ = now;
  if (degraded_) return false;
  if (!timer_.expired(now)) return true;
  if (!timer_.record_retransmit(now)) {
    degraded_ = true;
    return false;
  }
  sink_(last_sent_);
  return true;
}

std::uint64_t ReliableSessionDriver::next_deadline() const {
  return degraded_ ? RetransmitTimer::kNever : timer_.deadline();
}

}  // namespace tlc::transport
