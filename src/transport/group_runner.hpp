// Shared per-UE-group execution scaffold for the transport settlers.
//
// Both the stop-and-wait LossySettler and the RLNC CodedSettler settle
// a batch the same way: group items by UE in first-appearance order,
// run each group as a pure function of its inputs on a static
// round-robin worker partition, and census the receipts at the end.
// This header holds that scaffold — grouping, the crash-exception
// capture/rethrow dance, and the outcome census — so the two settlers
// differ only in what happens inside one group.
#pragma once

#include <atomic>
#include <cstddef>
#include <deque>
#include <functional>
#include <optional>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/batch_settlement.hpp"
#include "recovery/crash_plan.hpp"
#include "transport/lossy_settlement.hpp"
#include "util/thread_annotations.hpp"

namespace tlc::transport::detail {

struct UeGroup {
  std::uint64_t ue_id = 0;
  std::vector<std::size_t> item_indices;  // into the input vector
};

/// Groups items by UE in first-appearance order and pre-fills each
/// receipt slot's (ue_id, cycle). The side index makes grouping O(n);
/// deque order alone fixes the output.
inline std::deque<UeGroup> group_by_ue(
    const std::vector<core::SettlementItem>& items,
    std::vector<core::SettlementReceipt>& receipts) {
  std::deque<UeGroup> groups;
  std::unordered_map<std::uint64_t, std::size_t> group_by_id;
  group_by_id.reserve(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    const auto [it, inserted] =
        group_by_id.try_emplace(items[i].ue_id, groups.size());
    if (inserted) {
      groups.emplace_back();
      groups.back().ue_id = items[i].ue_id;
    }
    UeGroup* group = &groups[it->second];
    group->item_indices.push_back(i);
    receipts[i].ue_id = items[i].ue_id;
    receipts[i].cycle =
        static_cast<std::uint32_t>(group->item_indices.size() - 1);
  }
  return groups;
}

/// Runs `run_group(group, group_index)` over every group. With more
/// than one thread, groups land on workers in a static round-robin
/// partition: each group is fully local to one worker and writes only
/// its own slots, so results never depend on the worker count.
/// Injected crashes must not escape a worker thread (std::terminate)
/// — each worker catches, the rest drain at their next group, and the
/// first crash is rethrown from the calling thread after join.
/// CrashPlan's dying-state replication makes "first" deterministic.
inline void run_groups(
    const std::deque<UeGroup>& groups, unsigned threads,
    const std::function<void(const UeGroup&, std::size_t)>& run_group) {
  if (threads <= 1 || groups.size() <= 1) {
    for (std::size_t g = 0; g < groups.size(); ++g) {
      run_group(groups[g], g);
    }
    return;
  }
  const unsigned workers =
      static_cast<unsigned>(std::min<std::size_t>(threads, groups.size()));
  std::vector<std::thread> pool;
  pool.reserve(workers);
  std::atomic<bool> crashed{false};
  util::Mutex crash_mu;
  std::optional<recovery::CrashException> kill;
  std::optional<recovery::WedgeException> wedge;
  for (unsigned w = 0; w < workers; ++w) {
    pool.emplace_back([&, w] {
      for (std::size_t g = w; g < groups.size(); g += workers) {
        if (crashed.load(std::memory_order_relaxed)) return;
        try {
          run_group(groups[g], g);
        } catch (const recovery::CrashException& e) {
          crashed.store(true, std::memory_order_relaxed);
          util::MutexLock lock(crash_mu);
          if (!kill.has_value()) kill = e;
          return;
        } catch (const recovery::WedgeException& e) {
          crashed.store(true, std::memory_order_relaxed);
          util::MutexLock lock(crash_mu);
          if (!wedge.has_value()) wedge = e;
          return;
        }
      }
    });
  }
  for (std::thread& worker : pool) worker.join();
  if (kill.has_value()) throw *kill;
  if (wedge.has_value()) throw *wedge;
}

/// Fills the per-outcome census from the receipts, in input order — a
/// pure function of the receipts.
inline void fill_census(LossyBatchReport& report) {
  for (const core::SettlementReceipt& receipt : report.receipts) {
    switch (receipt.outcome) {
      case core::SettleOutcome::Converged:
        ++report.converged;
        break;
      case core::SettleOutcome::Retried:
        ++report.retried;
        break;
      case core::SettleOutcome::Degraded:
        ++report.degraded;
        break;
      case core::SettleOutcome::RejectedTamper:
        ++report.rejected_tamper;
        break;
    }
  }
}

}  // namespace tlc::transport::detail
