// Transport-layer configuration shared by the stop-and-wait and
// network-coded settlement paths (§8, §17).
//
// Split out of lossy_settlement.hpp so the coded session (which the
// LossySettler is itself a fallback target of) can see the config
// without an include cycle. `TransportConfig::coding` selects the
// path; with `Coding::Off` every consumer behaves byte-identically to
// the pre-coding transport — the coded knobs are never read and no
// coded seed stream is ever drawn.
#pragma once

#include <cstdint>

#include "transport/faulty_channel.hpp"
#include "transport/retry.hpp"

namespace tlc::transport {

/// Which transfer discipline carries the sealed settlement batch.
enum class Coding : std::uint8_t {
  Off = 0,   // stop-and-wait per message (PR 2 behaviour)
  Rlnc = 1,  // GF(2^8) random linear network coding (§17)
};

/// Knobs for the RLNC coded session. Defaults are tuned so the
/// zero-loss coded path sends exactly one systematic pass plus one
/// ACK — no redundancy tax when the link is clean.
struct CodedConfig {
  /// Chunks per generation (coefficient-vector length).
  std::uint16_t generation_size = 32;
  /// Bytes per chunk; the sealed batch is zero-padded to a whole
  /// number of chunks.
  std::uint16_t chunk_bytes = 64;
  /// Extra coded packets in the first burst, as a fraction of the
  /// generation size (0.0 = systematic pass only).
  double initial_redundancy = 0.0;
  /// Virtual ticks between consecutive packet submissions in a burst.
  std::uint64_t packet_interval_ticks = 1;
  /// Ticks the sender waits for the end-of-generation ACK before
  /// topping the generation up with more coded packets.
  std::uint64_t ack_timeout_ticks = 32;
  /// Per-generation packet budget, as a multiple of the generation
  /// size. When (packets sent) > generation_size * max_overhead the
  /// coded transfer gives up and the group falls back one rung on the
  /// degradation ladder (stop-and-wait, then legacy CDR).
  double max_overhead = 8.0;
  /// Hard per-group tick budget for the coded transfer.
  std::uint64_t max_ticks = 1 << 20;
};

/// Census of the coded path. Sums across groups/shards in merge
/// order; all-zero whenever coding is off.
struct CodedCounters {
  std::uint64_t generations = 0;         // generations started
  std::uint64_t generations_decoded = 0; // reached full rank
  std::uint64_t packets_sent = 0;        // coded + systematic submissions
  std::uint64_t packets_delivered = 0;   // survived the channel, CRC ok
  std::uint64_t packets_dependent = 0;   // delivered but not innovative
  std::uint64_t packets_corrupt = 0;     // CRC/truncation rejects
  std::uint64_t acks_sent = 0;
  std::uint64_t cycles_coded = 0;        // receipts carried by RLNC
  std::uint64_t fallbacks = 0;           // groups that left the coded rung
  std::uint64_t bytes_on_wire = 0;       // packet + ack wire bytes submitted

  CodedCounters& operator+=(const CodedCounters& other) {
    generations += other.generations;
    generations_decoded += other.generations_decoded;
    packets_sent += other.packets_sent;
    packets_delivered += other.packets_delivered;
    packets_dependent += other.packets_dependent;
    packets_corrupt += other.packets_corrupt;
    acks_sent += other.acks_sent;
    cycles_coded += other.cycles_coded;
    fallbacks += other.fallbacks;
    bytes_on_wire += other.bytes_on_wire;
    return *this;
  }
  friend bool operator==(const CodedCounters&, const CodedCounters&) = default;
};

/// Everything that shapes the lossy transport between the parties.
struct TransportConfig {
  FaultProfile to_edge;
  FaultProfile to_operator;
  RetryPolicy retry;
  /// Root seed for fault schedules and retry jitter (independent of
  /// the protocol-level rng_salt).
  std::uint64_t seed = 0x10557;
  /// Transfer discipline for sealed settlement batches.
  Coding coding = Coding::Off;
  /// RLNC knobs (read only when coding == Coding::Rlnc).
  CodedConfig coded;
};

}  // namespace tlc::transport
