#include "transport/settlement_journal.hpp"

#include "util/serde.hpp"

namespace tlc::transport {

/// Wire version of the receipt and chunk records below. Bump on any
/// field order/width change — tools/schemas/settlement_*.schema pins
/// the layout and `ctest -L static` fails on drift. v2 appended the
/// coded-path counters to the chunk record (§17).
constexpr std::uint32_t kSettlementWireVersion = 2;
static_assert(kSettlementWireVersion >= 1);

// tlclint: codec(settlement_receipt, encode, version=kSettlementWireVersion)
void write_receipt(ByteWriter& w, const core::SettlementReceipt& receipt) {
  w.u64(receipt.ue_id);
  w.u32(receipt.cycle);
  w.u8(receipt.completed ? 1 : 0);
  w.u64(receipt.charged);
  w.i64(receipt.rounds);
  w.blob(receipt.poc_wire);
  w.u8(static_cast<std::uint8_t>(receipt.outcome));
  w.i64(receipt.retransmits);
  w.str(receipt.failure_reason);
}

// tlclint: codec(settlement_receipt, decode, version=kSettlementWireVersion)
Expected<core::SettlementReceipt> read_receipt(ByteReader& r) {
  core::SettlementReceipt receipt;
  auto ue_id = r.u64();
  auto cycle = r.u32();
  auto completed = r.u8();
  auto charged = r.u64();
  auto rounds = r.i64();
  if (!ue_id || !cycle || !completed || !charged || !rounds) {
    return Err("settlement journal: truncated receipt");
  }
  receipt.ue_id = *ue_id;
  receipt.cycle = *cycle;
  receipt.completed = *completed != 0;
  receipt.charged = *charged;
  receipt.rounds = static_cast<int>(*rounds);
  auto poc_wire = r.blob();
  if (!poc_wire) return Err("settlement journal: " + poc_wire.error());
  receipt.poc_wire = std::move(*poc_wire);
  auto outcome = r.u8();
  auto retransmits = r.i64();
  if (!outcome || !retransmits) {
    return Err("settlement journal: truncated receipt");
  }
  receipt.outcome = static_cast<core::SettleOutcome>(*outcome);
  receipt.retransmits = static_cast<int>(*retransmits);
  auto failure_reason = r.str();
  if (!failure_reason) {
    return Err("settlement journal: " + failure_reason.error());
  }
  receipt.failure_reason = std::move(*failure_reason);
  return receipt;
}

Expected<SettlementJournal> SettlementJournal::open(const std::string& path,
                                                   recovery::CrashPlan* plan,
                                                   std::uint64_t scope) {
  auto journal = recovery::Journal::open(path, plan, scope);
  if (!journal) return Err(journal.error());
  SettlementJournal settlement(std::move(*journal), plan, scope);

  Status decode_error = Status::Ok();
  auto stats = recovery::Journal::replay(path, [&](const Bytes& record) {
    if (!decode_error.ok()) return;
    // tlclint: codec(settlement_chunk, decode, version=kSettlementWireVersion)
    ByteReader r(record);
    auto chunk_index = r.u32();
    auto count = r.u32();
    if (!chunk_index || !count) {
      decode_error = Err("settlement journal: truncated chunk record");
      return;
    }
    RecoveredChunk chunk;
    chunk.receipts.reserve(*count);
    for (std::uint32_t i = 0; i < *count; ++i) {
      auto receipt = read_receipt(r);
      if (!receipt) {
        decode_error = Err(receipt.error());
        return;
      }
      chunk.receipts.push_back(std::move(*receipt));
    }
    auto generations = r.u64();
    auto generations_decoded = r.u64();
    auto packets_sent = r.u64();
    auto packets_delivered = r.u64();
    auto packets_dependent = r.u64();
    auto packets_corrupt = r.u64();
    auto acks_sent = r.u64();
    auto cycles_coded = r.u64();
    auto fallbacks = r.u64();
    auto bytes_on_wire = r.u64();
    if (!generations || !generations_decoded || !packets_sent ||
        !packets_delivered || !packets_dependent || !packets_corrupt ||
        !acks_sent || !cycles_coded || !fallbacks || !bytes_on_wire) {
      decode_error = Err("settlement journal: truncated coded counters");
      return;
    }
    chunk.coded.generations = *generations;
    chunk.coded.generations_decoded = *generations_decoded;
    chunk.coded.packets_sent = *packets_sent;
    chunk.coded.packets_delivered = *packets_delivered;
    chunk.coded.packets_dependent = *packets_dependent;
    chunk.coded.packets_corrupt = *packets_corrupt;
    chunk.coded.acks_sent = *acks_sent;
    chunk.coded.cycles_coded = *cycles_coded;
    chunk.coded.fallbacks = *fallbacks;
    chunk.coded.bytes_on_wire = *bytes_on_wire;
    // Duplicate chunk records (post-append crash, chunk re-recorded by
    // an over-cautious caller) are idempotent: the receipts are
    // identical by the purity argument, keep the first.
    settlement.recovered_.emplace(*chunk_index, std::move(chunk));
  });
  if (!stats) return Err(stats.error());
  if (!decode_error.ok()) return Err(decode_error.error());
  return settlement;
}

Status SettlementJournal::record_chunk(
    std::uint32_t chunk_index,
    const std::vector<core::SettlementReceipt>& receipts,
    const CodedCounters& coded) {
  if (plan_ != nullptr) plan_->fire(recovery::kCrashSettleChunkPre, scope_);
  // tlclint: codec(settlement_chunk, encode, version=kSettlementWireVersion)
  ByteWriter w;
  w.u32(chunk_index);
  w.u32(static_cast<std::uint32_t>(receipts.size()));
  for (const core::SettlementReceipt& receipt : receipts) {
    write_receipt(w, receipt);
  }
  w.u64(coded.generations);
  w.u64(coded.generations_decoded);
  w.u64(coded.packets_sent);
  w.u64(coded.packets_delivered);
  w.u64(coded.packets_dependent);
  w.u64(coded.packets_corrupt);
  w.u64(coded.acks_sent);
  w.u64(coded.cycles_coded);
  w.u64(coded.fallbacks);
  w.u64(coded.bytes_on_wire);
  if (Status appended = journal_.append(w.data()); !appended.ok()) {
    return appended;
  }
  if (plan_ != nullptr) plan_->fire(recovery::kCrashSettleChunkPost, scope_);
  return Status::Ok();
}

Status SettlementJournal::reset() {
  recovered_.clear();
  return journal_.rotate();
}

}  // namespace tlc::transport
