// One settlement cycle over a lossy channel (§8: retry/degradation
// state machine).
//
// Drives an (edge, operator) session pair through a FaultyChannel on a
// shared virtual clock until the cycle reaches exactly one terminal
// state:
//
//   Converged       both sides hold the PoC; no retransmission needed
//   Retried         both sides hold the PoC after >= 1 retransmission
//   Degraded        retry budget or deadline spent; legacy CDR bill
//   RejectedTamper  corruption/forgery detected (or the final PoC fails
//                   Algorithm 2); legacy CDR bill
//
// "Never stuck" is structural: every loop iteration advances the clock
// to the next channel delivery or timer deadline, an idle transport
// with nothing armed degrades immediately, and a hard per-cycle tick
// deadline backstops everything else. A converged PoC is re-checked
// with the public verifier (Algorithm 2) before it is reported — a PoC
// that cannot be publicly verified is worthless, so it degrades the
// cycle as tampering instead of being accepted.
#pragma once

#include <string>

#include "core/batch_settlement.hpp"
#include "core/tlc_session.hpp"
#include "transport/faulty_channel.hpp"
#include "transport/reliable_session.hpp"

namespace tlc::transport {

/// Canonical degradation reasons (receipt failure_reason values).
inline constexpr const char* kReasonBudget = "retry-budget-exhausted";
inline constexpr const char* kReasonDeadline = "cycle-deadline-exceeded";
inline constexpr const char* kReasonIdle = "transport-idle";
inline constexpr const char* kReasonUnverifiable = "unverifiable-poc";

struct CycleRunResult {
  core::SettleOutcome outcome = core::SettleOutcome::Degraded;
  std::uint64_t charged = 0;
  int rounds = 0;
  Bytes poc_wire;  // operator's archived copy (empty unless converged)
  int retransmits = 0;
  int duplicates = 0;
  int tamper_suspected = 0;
  std::uint64_t ticks = 0;  // virtual ticks the cycle consumed
  std::string failure_reason;
};

class SettlementRunner {
 public:
  /// Both sessions must have the cycle armed (begin_cycle) and the
  /// channel drained of the previous cycle's leftovers. `jitter_seed`
  /// decorrelates the two parties' retry timers; `start_tick` continues
  /// the caller's monotonic clock.
  SettlementRunner(core::TlcSession& edge, core::TlcSession& op,
                   FaultyChannel& channel, RetryPolicy policy,
                   std::uint64_t jitter_seed, std::uint64_t start_tick);

  /// Runs the cycle to a terminal state. The public keys feed the
  /// Algorithm 2 check of the converged PoC.
  [[nodiscard]] CycleRunResult run_cycle(
      const crypto::RsaPublicKey& edge_key,
      const crypto::RsaPublicKey& operator_key);

  /// Clock position after run_cycle (monotonic across cycles).
  [[nodiscard]] std::uint64_t now() const { return now_; }

 private:
  CycleRunResult degrade(std::string reason, std::uint64_t start);
  void fill_counters(CycleRunResult& result, std::uint64_t start) const;

  core::TlcSession& edge_;
  core::TlcSession& op_;
  FaultyChannel& channel_;
  RetryPolicy policy_;
  ReliableSessionDriver edge_driver_;
  ReliableSessionDriver op_driver_;
  std::uint64_t now_;
};

}  // namespace tlc::transport
