#include "transport/faulty_channel.hpp"

#include <algorithm>

#include "sim/rng_stream.hpp"

namespace tlc::transport {
namespace {

// Fixed draw order per message — drop, duplicate, then per-copy
// (corrupt, truncate, delay jitter, reorder) — so a schedule never
// shifts when an unrelated rate changes from zero.
void mutate_copy(const FaultProfile& profile, Rng& rng, Bytes& wire,
                 std::uint64_t now, std::uint64_t& due,
                 FaultyChannel::Stats& stats) {
  if (rng.chance(profile.corrupt) && !wire.empty()) {
    const std::uint64_t flips = 1 + rng.uniform_u64(3);
    for (std::uint64_t f = 0; f < flips; ++f) {
      const auto at = static_cast<std::size_t>(rng.uniform_u64(wire.size()));
      wire[at] ^= static_cast<std::uint8_t>(1 + rng.uniform_u64(255));
    }
    ++stats.corrupted;
  }
  if (rng.chance(profile.truncate) && wire.size() > 1) {
    wire.resize(static_cast<std::size_t>(rng.uniform_u64(wire.size())));
    ++stats.truncated;
  }
  due = now + profile.base_delay_ticks;
  if (profile.delay_jitter_ticks > 0) {
    due += rng.uniform_u64(profile.delay_jitter_ticks + 1);
  }
  if (rng.chance(profile.reorder)) {
    due += profile.reorder_hold_ticks;
    ++stats.reordered;
  }
}

}  // namespace

FaultyChannel::FaultyChannel(FaultProfile to_edge, FaultProfile to_operator,
                             std::uint64_t seed)
    : seed_(seed) {
  lanes_[static_cast<std::size_t>(Dir::ToEdge)].profile = to_edge;
  lanes_[static_cast<std::size_t>(Dir::ToOperator)].profile = to_operator;
}

void FaultyChannel::send(Dir dir, const Bytes& wire, std::uint64_t now) {
  Lane& l = lane(dir);
  ++l.stats.submitted;
  // The whole schedule of message n comes from its own stream: pure in
  // (seed, dir, n), untouched by other messages or the other lane.
  const auto dir_stream = static_cast<std::uint64_t>(dir);
  Rng rng = sim::stream_rng(sim::stream_seed(seed_, dir_stream),
                            l.next_msg_stream++);
  if (rng.chance(l.profile.drop)) {
    ++l.stats.dropped;
    return;
  }
  const int copies = rng.chance(l.profile.duplicate) ? 2 : 1;
  if (copies == 2) ++l.stats.duplicated;
  for (int c = 0; c < copies; ++c) {
    InFlight flight;
    flight.wire = wire;
    mutate_copy(l.profile, rng, flight.wire, now, flight.due, l.stats);
    flight.seq = l.next_seq++;
    l.queue.push_back(std::move(flight));
  }
}

std::vector<Bytes> FaultyChannel::deliver_due(Dir dir, std::uint64_t now) {
  Lane& l = lane(dir);
  std::vector<InFlight> due;
  auto keep = l.queue.begin();
  for (auto it = l.queue.begin(); it != l.queue.end(); ++it) {
    if (it->due <= now) {
      due.push_back(std::move(*it));
    } else {
      if (keep != it) *keep = std::move(*it);  // guard the self-move
      ++keep;
    }
  }
  l.queue.erase(keep, l.queue.end());
  std::sort(due.begin(), due.end(), [](const InFlight& a, const InFlight& b) {
    return a.due != b.due ? a.due < b.due : a.seq < b.seq;
  });
  std::vector<Bytes> out;
  out.reserve(due.size());
  for (auto& flight : due) out.push_back(std::move(flight.wire));
  l.stats.delivered += out.size();
  return out;
}

std::uint64_t FaultyChannel::earliest_due() const {
  std::uint64_t earliest = kIdle;
  for (const Lane& l : lanes_) {
    for (const InFlight& flight : l.queue) {
      earliest = std::min(earliest, flight.due);
    }
  }
  return earliest;
}

std::size_t FaultyChannel::in_flight() const {
  return lanes_[0].queue.size() + lanes_[1].queue.size();
}

void FaultyChannel::drain() {
  lanes_[0].queue.clear();
  lanes_[1].queue.clear();
}

}  // namespace tlc::transport
