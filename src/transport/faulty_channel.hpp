// Deterministic fault-injecting message channel (§8: fault model).
//
// Sits between the edge and operator `ProtocolEndpoint`s and subjects
// every wire message to configurable, per-direction drop, duplication,
// reordering, delay, truncation and byte corruption. The fault schedule
// of the n-th message on a direction is a pure function of
// (seed, direction, n) — derived through sim::stream_seed, never a
// shared RNG sequence or wall clock — so two runs with the same seed
// inject byte-identical faults regardless of call interleaving or
// thread count. That is what lets whole fleets run over lossy transport
// while preserving the bit-identity-across-thread-counts contract.
//
// Time is virtual: the caller stamps send/deliver calls with its own
// monotonic tick counter. With an all-zero profile the channel is a
// 1-tick FIFO pipe and settlement output is bit-identical to the
// lossless in-process pump.
#pragma once

#include <cstdint>
#include <vector>

#include "util/bytes.hpp"

namespace tlc::transport {

/// Per-direction fault rates and delay shape. All probabilities are
/// independent per message (duplication composes with corruption etc.).
struct FaultProfile {
  double drop = 0.0;       // message vanishes
  double duplicate = 0.0;  // message delivered twice
  double reorder = 0.0;    // copy held back so later sends overtake it
  double corrupt = 0.0;    // 1-3 random bytes XORed
  double truncate = 0.0;   // tail cut off
  std::uint64_t base_delay_ticks = 1;    // minimum propagation delay
  std::uint64_t delay_jitter_ticks = 0;  // uniform extra [0, jitter]
  std::uint64_t reorder_hold_ticks = 12; // extra hold when reordered

  [[nodiscard]] bool any() const {
    return drop > 0.0 || duplicate > 0.0 || reorder > 0.0 || corrupt > 0.0 ||
           truncate > 0.0 || delay_jitter_ticks > 0;
  }
};

class FaultyChannel {
 public:
  enum class Dir : std::uint8_t { ToEdge = 0, ToOperator = 1 };

  struct Stats {
    std::uint64_t submitted = 0;
    std::uint64_t delivered = 0;
    std::uint64_t dropped = 0;
    std::uint64_t duplicated = 0;
    std::uint64_t reordered = 0;
    std::uint64_t corrupted = 0;
    std::uint64_t truncated = 0;
  };

  FaultyChannel(FaultProfile to_edge, FaultProfile to_operator,
                std::uint64_t seed);

  /// Submits a message at virtual time `now`; the fault schedule of the
  /// n-th submission per direction depends only on (seed, dir, n).
  void send(Dir dir, const Bytes& wire, std::uint64_t now);

  /// All messages due at or before `now`, in (due tick, submission
  /// order) order; removes them from flight.
  [[nodiscard]] std::vector<Bytes> deliver_due(Dir dir, std::uint64_t now);

  /// Earliest due tick over both directions (kIdle when nothing flies).
  [[nodiscard]] std::uint64_t earliest_due() const;
  [[nodiscard]] std::size_t in_flight() const;

  /// Discards everything still in flight (cycle boundary: each
  /// settlement cycle is a fresh transport association, so a delayed
  /// copy from a finished cycle never leaks into the next one).
  void drain();

  [[nodiscard]] const Stats& stats(Dir dir) const {
    return lanes_[static_cast<std::size_t>(dir)].stats;
  }

  static constexpr std::uint64_t kIdle = ~0ull;

 private:
  struct InFlight {
    std::uint64_t due = 0;
    std::uint64_t seq = 0;  // tie-break: submission order
    Bytes wire;
  };
  struct Lane {
    FaultProfile profile;
    std::uint64_t next_msg_stream = 0;  // per-direction message stream index
    std::uint64_t next_seq = 0;
    std::vector<InFlight> queue;
    Stats stats;
  };

  Lane& lane(Dir dir) { return lanes_[static_cast<std::size_t>(dir)]; }

  std::uint64_t seed_;
  Lane lanes_[2];
};

}  // namespace tlc::transport
