#include "transport/coded_session.hpp"

#include <algorithm>
#include <cmath>

#include "recovery/crc32c.hpp"
#include "sim/rng_stream.hpp"
#include "transport/group_runner.hpp"
#include "transport/settlement_journal.hpp"
#include "util/serde.hpp"

namespace tlc::transport {
namespace {

/// Wire version of the coded-transport messages below. Bump on any
/// field order/width change — tools/schemas/transport_*.schema pins
/// the layout and `ctest -L static` fails on drift.
constexpr std::uint32_t kCodedWireVersion = 1;
static_assert(kCodedWireVersion >= 1);

/// Ceiling division for packet/chunk geometry.
std::uint32_t div_ceil(std::uint32_t a, std::uint32_t b) {
  return (a + b - 1) / b;
}

/// A CodedConfig with the degenerate zeroes clamped away, so geometry
/// arithmetic never divides by zero.
CodedConfig sanitized(CodedConfig config) {
  if (config.generation_size == 0) config.generation_size = 1;
  if (config.chunk_bytes == 0) config.chunk_bytes = 1;
  if (config.packet_interval_ticks == 0) config.packet_interval_ticks = 1;
  if (config.ack_timeout_ticks == 0) config.ack_timeout_ticks = 1;
  return config;
}

}  // namespace

// ---------------------------------------------------------------------
// Wire codecs. The trailing CRC32C covers every byte before it; both
// decoders verify it only after the field walk consumed the buffer
// exactly, so a corrupted length prefix can never smuggle unchecked
// bytes past the screen.
// ---------------------------------------------------------------------

// tlclint: codec(transport_coded_packet, encode, version=kCodedWireVersion)
Bytes encode_coded_packet(const CodedPacket& packet) {
  ByteWriter w;
  w.u64(packet.transfer_id);
  w.u32(packet.generation);
  w.u16(packet.generation_size);
  w.u16(packet.chunk_bytes);
  w.u32(packet.payload_len);
  w.blob(packet.coefficients);
  w.blob(packet.body);
  const std::uint32_t crc = recovery::crc32c(w.data());
  w.u32(crc);
  return w.take();
}

// tlclint: codec(transport_coded_packet, decode, version=kCodedWireVersion)
Expected<CodedPacket> decode_coded_packet(const Bytes& wire) {
  ByteReader r(wire);
  CodedPacket packet;
  auto transfer_id = r.u64();
  auto generation = r.u32();
  auto generation_size = r.u16();
  auto chunk_bytes = r.u16();
  auto payload_len = r.u32();
  if (!transfer_id || !generation || !generation_size || !chunk_bytes ||
      !payload_len) {
    return Err("coded packet: truncated header");
  }
  auto coefficients = r.blob();
  if (!coefficients) return Err("coded packet: " + coefficients.error());
  auto body = r.blob();
  if (!body) return Err("coded packet: " + body.error());
  auto crc = r.u32();
  if (!crc) return Err("coded packet: truncated crc");
  if (!r.exhausted()) return Err("coded packet: trailing bytes");
  if (*crc != recovery::crc32c_extend(0, wire.data(), wire.size() - 4)) {
    return Err("coded packet: crc mismatch");
  }
  packet.transfer_id = *transfer_id;
  packet.generation = *generation;
  packet.generation_size = *generation_size;
  packet.chunk_bytes = *chunk_bytes;
  packet.payload_len = *payload_len;
  packet.coefficients = std::move(*coefficients);
  packet.body = std::move(*body);
  return packet;
}

// tlclint: codec(transport_generation_ack, encode, version=kCodedWireVersion)
Bytes encode_generation_ack(const GenerationAck& ack) {
  ByteWriter w;
  w.u64(ack.transfer_id);
  w.u32(ack.generation);
  w.u16(ack.rank);
  const std::uint32_t crc = recovery::crc32c(w.data());
  w.u32(crc);
  return w.take();
}

// tlclint: codec(transport_generation_ack, decode, version=kCodedWireVersion)
Expected<GenerationAck> decode_generation_ack(const Bytes& wire) {
  ByteReader r(wire);
  GenerationAck ack;
  auto transfer_id = r.u64();
  auto generation = r.u32();
  auto rank = r.u16();
  auto crc = r.u32();
  if (!transfer_id || !generation || !rank || !crc) {
    return Err("generation ack: truncated");
  }
  if (!r.exhausted()) return Err("generation ack: trailing bytes");
  if (*crc != recovery::crc32c_extend(0, wire.data(), wire.size() - 4)) {
    return Err("generation ack: crc mismatch");
  }
  ack.transfer_id = *transfer_id;
  ack.generation = *generation;
  ack.rank = *rank;
  return ack;
}

// ---------------------------------------------------------------------
// CodedReceiver
// ---------------------------------------------------------------------

CodedReceiver::CodedReceiver(CodedConfig config)
    : config_(sanitized(config)) {}

void CodedReceiver::attach_journal(recovery::Journal* journal) {
  journal_ = journal;
}

void CodedReceiver::set_crash_plan(recovery::CrashPlan* plan,
                                   std::uint64_t scope) {
  plan_ = plan;
  scope_ = scope;
}

bool CodedReceiver::accept_geometry(const CodedPacket& packet) {
  if (!geometry_known_) {
    if (packet.payload_len == 0 || packet.chunk_bytes == 0) return false;
    transfer_id_ = packet.transfer_id;
    payload_len_ = packet.payload_len;
    chunk_count_ = div_ceil(payload_len_, packet.chunk_bytes);
    generation_count_ = div_ceil(chunk_count_, config_.generation_size);
    decoders_.reserve(generation_count_);
    for (std::uint32_t g = 0; g < generation_count_; ++g) {
      const std::uint32_t first = g * config_.generation_size;
      const std::uint16_t size = static_cast<std::uint16_t>(
          std::min<std::uint32_t>(config_.generation_size,
                                  chunk_count_ - first));
      decoders_.emplace_back(size, packet.chunk_bytes);
    }
    chunk_bytes_known_ = packet.chunk_bytes;
    geometry_known_ = true;
  }
  if (packet.transfer_id != transfer_id_ ||
      packet.payload_len != payload_len_ ||
      packet.chunk_bytes != chunk_bytes_known_ ||
      packet.generation >= generation_count_) {
    return false;
  }
  const GenerationDecoder& decoder = decoders_[packet.generation];
  return packet.generation_size == decoder.generation_size() &&
         packet.coefficients.size() == decoder.generation_size() &&
         packet.body.size() == chunk_bytes_known_;
}

CodedReceiver::Intake CodedReceiver::ingest(const Bytes& wire,
                                            bool journal_and_fire) {
  Intake intake;
  auto packet = decode_coded_packet(wire);
  if (!packet || !accept_geometry(*packet)) {
    intake.kind = Intake::Kind::Corrupt;
    return intake;
  }
  GenerationDecoder& decoder = decoders_[packet->generation];
  const bool was_complete = decoder.complete();
  CodedSymbol symbol;
  symbol.coefficients = std::move(packet->coefficients);
  symbol.body = std::move(packet->body);
  const bool innovative = decoder.add(symbol);
  if (innovative && journal_and_fire) {
    // The packet's rank is only durable once the raw wire is framed
    // in the journal — the pre point models dying with it in memory,
    // the post point dying right after it became replayable.
    if (plan_ != nullptr) plan_->fire(recovery::kCrashCodedPacketPre, scope_);
    if (journal_ != nullptr) (void)journal_->append(wire);
    if (plan_ != nullptr) plan_->fire(recovery::kCrashCodedPacketPost, scope_);
  }
  intake.kind =
      innovative ? Intake::Kind::Innovative : Intake::Kind::Dependent;
  // Single end-of-generation ACK — re-sent whenever a straggler or
  // top-up packet lands on an already-complete generation, which is
  // what recovers a lost ACK without any receiver-side timer.
  if (decoder.complete() && (innovative || was_complete)) {
    intake.ack_due = true;
    intake.ack.transfer_id = transfer_id_;
    intake.ack.generation = packet->generation;
    intake.ack.rank = decoder.rank();
  }
  return intake;
}

CodedReceiver::Intake CodedReceiver::on_wire(const Bytes& wire) {
  return ingest(wire, /*journal_and_fire=*/true);
}

void CodedReceiver::restore(const Bytes& wire) {
  (void)ingest(wire, /*journal_and_fire=*/false);
}

std::uint32_t CodedReceiver::generations_complete() const {
  std::uint32_t complete = 0;
  for (const GenerationDecoder& decoder : decoders_) {
    if (decoder.complete()) ++complete;
  }
  return complete;
}

std::uint16_t CodedReceiver::rank(std::uint32_t generation) const {
  if (generation >= decoders_.size()) return 0;
  return decoders_[generation].rank();
}

bool CodedReceiver::complete() const {
  return geometry_known_ && generations_complete() == generation_count_;
}

Expected<Bytes> CodedReceiver::payload() const {
  if (!complete()) return Err("coded receiver: transfer not decoded");
  Bytes out;
  out.reserve(static_cast<std::size_t>(chunk_count_) * chunk_bytes_known_);
  for (const GenerationDecoder& decoder : decoders_) {
    for (const Bytes& chunk : decoder.chunks()) {
      out.insert(out.end(), chunk.begin(), chunk.end());
    }
  }
  out.resize(payload_len_);  // trim the zero-padded tail chunk
  return out;
}

// ---------------------------------------------------------------------
// CodedTransfer
// ---------------------------------------------------------------------

CodedTransfer::CodedTransfer(CodedConfig config, FaultyChannel& channel,
                             std::uint64_t transfer_id, Bytes payload,
                             std::uint64_t coeff_seed,
                             std::uint64_t start_tick)
    : config_(sanitized(config)),
      channel_(channel),
      transfer_id_(transfer_id),
      payload_(std::move(payload)),
      coeff_seed_(coeff_seed),
      now_(start_tick) {}

TransferOutcome CodedTransfer::run(CodedReceiver& receiver) {
  TransferOutcome out;
  CodedCounters& counters = out.counters;
  if (payload_.empty()) {
    out.delivered = true;
    out.end_tick = now_;
    return out;
  }
  const std::uint64_t transfer_start = now_;
  const std::vector<Bytes> chunks =
      chunk_payload(payload_, config_.chunk_bytes);
  const std::uint32_t generation_count = div_ceil(
      static_cast<std::uint32_t>(chunks.size()), config_.generation_size);

  // Loss estimate carried across generations: the first burst of
  // generation n pre-pays the redundancy generation n-1 turned out to
  // need, so a steadily lossy link converges in one burst per
  // generation instead of one timeout round per loss.
  double loss_estimate =
      std::clamp(config_.initial_redundancy, 0.0, 0.9);

  for (std::uint32_t gen = 0; gen < generation_count; ++gen) {
    const std::size_t first =
        static_cast<std::size_t>(gen) * config_.generation_size;
    const std::size_t gen_size = std::min<std::size_t>(
        config_.generation_size, chunks.size() - first);
    GenerationEncoder encoder(std::vector<Bytes>(
        chunks.begin() + static_cast<std::ptrdiff_t>(first),
        chunks.begin() + static_cast<std::ptrdiff_t>(first + gen_size)));
    const std::uint64_t generation_stream = gen;
    Rng coeff_rng = sim::stream_rng(coeff_seed_, generation_stream);
    ++counters.generations;

    const std::size_t budget = std::max<std::size_t>(
        gen_size + 2,
        static_cast<std::size_t>(
            std::ceil(static_cast<double>(gen_size) * config_.max_overhead)));
    std::size_t sent_this_gen = 0;
    std::size_t innovative_this_gen = 0;

    auto send_symbol = [&](CodedSymbol symbol) {
      CodedPacket packet;
      packet.transfer_id = transfer_id_;
      packet.generation = gen;
      packet.generation_size = static_cast<std::uint16_t>(gen_size);
      packet.chunk_bytes = config_.chunk_bytes;
      packet.payload_len = static_cast<std::uint32_t>(payload_.size());
      packet.coefficients = std::move(symbol.coefficients);
      packet.body = std::move(symbol.body);
      const Bytes wire = encode_coded_packet(packet);
      channel_.send(FaultyChannel::Dir::ToOperator, wire, now_);
      now_ += config_.packet_interval_ticks;
      ++counters.packets_sent;
      ++sent_this_gen;
      counters.bytes_on_wire += wire.size();
    };

    // Systematic-first burst: on a clean link the generation decodes
    // from exactly gen_size unit-vector packets, zero coding tax.
    for (std::size_t i = 0; i < gen_size; ++i) {
      send_symbol(encoder.systematic(static_cast<std::uint16_t>(i)));
    }
    const std::size_t prepay = std::min(
        gen_size,
        static_cast<std::size_t>(std::ceil(static_cast<double>(gen_size) *
                                           loss_estimate /
                                           (1.0 - loss_estimate))));
    for (std::size_t i = 0; i < prepay; ++i) {
      send_symbol(encoder.coded(coeff_rng));
    }

    std::uint64_t ack_deadline = now_ + config_.ack_timeout_ticks;
    bool acked = false;
    while (!acked) {
      for (const Bytes& wire :
           channel_.deliver_due(FaultyChannel::Dir::ToOperator, now_)) {
        const CodedReceiver::Intake intake = receiver.on_wire(wire);
        switch (intake.kind) {
          case CodedReceiver::Intake::Kind::Innovative:
            ++counters.packets_delivered;
            ++innovative_this_gen;
            break;
          case CodedReceiver::Intake::Kind::Dependent:
            ++counters.packets_delivered;
            ++counters.packets_dependent;
            break;
          case CodedReceiver::Intake::Kind::Corrupt:
            ++counters.packets_corrupt;
            break;
        }
        if (intake.ack_due) {
          const Bytes ack_wire = encode_generation_ack(intake.ack);
          channel_.send(FaultyChannel::Dir::ToEdge, ack_wire, now_);
          ++counters.acks_sent;
          counters.bytes_on_wire += ack_wire.size();
        }
      }
      for (const Bytes& wire :
           channel_.deliver_due(FaultyChannel::Dir::ToEdge, now_)) {
        auto ack = decode_generation_ack(wire);
        if (!ack) {
          ++counters.packets_corrupt;
          continue;
        }
        if (ack->transfer_id == transfer_id_ && ack->generation == gen &&
            ack->rank == gen_size) {
          acked = true;
        }
      }
      if (acked) break;
      if (now_ - transfer_start > config_.max_ticks) {
        out.end_tick = now_;
        return out;  // tick budget spent: next rung of the ladder
      }
      // Advance to the next delivery or the ACK deadline — the
      // never-stuck invariant (an idle channel jumps straight to the
      // deadline and tops the generation up).
      const std::uint64_t next_due = channel_.earliest_due();
      const std::uint64_t target = std::min(next_due, ack_deadline);
      now_ = std::max(now_ + 1, target);
      if (now_ >= ack_deadline) {
        if (sent_this_gen >= budget) {
          out.end_tick = now_;
          return out;  // packet budget spent: fall back
        }
        // Redundancy-adaptive top-up: at least one packet, more when
        // the link has been eating them.
        const std::size_t topup = std::min(
            budget - sent_this_gen,
            std::max<std::size_t>(
                1, static_cast<std::size_t>(
                       std::ceil(static_cast<double>(gen_size) *
                                 std::max(loss_estimate, 0.125)))));
        for (std::size_t i = 0; i < topup; ++i) {
          send_symbol(encoder.coded(coeff_rng));
        }
        ack_deadline = now_ + config_.ack_timeout_ticks;
      }
    }
    ++counters.generations_decoded;
    if (sent_this_gen > 0) {
      const double waste =
          1.0 - static_cast<double>(std::min(innovative_this_gen,
                                             sent_this_gen)) /
                    static_cast<double>(sent_this_gen);
      loss_estimate = std::clamp(waste, config_.initial_redundancy, 0.9);
    }
  }
  out.delivered = true;
  out.end_tick = now_;
  return out;
}

// ---------------------------------------------------------------------
// Sealed-batch codec (receipts <-> transfer payload)
// ---------------------------------------------------------------------

// tlclint: codec(transport_sealed_batch, encode, version=kCodedWireVersion)
Bytes seal_receipts(const std::vector<core::SettlementReceipt>& receipts) {
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(receipts.size()));
  for (const core::SettlementReceipt& receipt : receipts) {
    write_receipt(w, receipt);
  }
  return w.take();
}

// tlclint: codec(transport_sealed_batch, decode, version=kCodedWireVersion)
Expected<std::vector<core::SettlementReceipt>> unseal_receipts(
    const Bytes& payload) {
  ByteReader r(payload);
  auto count = r.u32();
  if (!count) return Err("sealed batch: truncated count");
  std::vector<core::SettlementReceipt> receipts;
  receipts.reserve(*count);
  for (std::uint32_t i = 0; i < *count; ++i) {
    auto receipt = read_receipt(r);
    if (!receipt) return Err(receipt.error());
    receipts.push_back(std::move(*receipt));
  }
  return receipts;
}

// ---------------------------------------------------------------------
// CodedSettler
// ---------------------------------------------------------------------

CodedSettler::CodedSettler(core::BatchConfig config, TransportConfig transport,
                           const core::RsaKeyCache& keys)
    : config_(config), transport_(transport), keys_(keys) {}

LossyBatchReport CodedSettler::settle(
    const std::vector<core::SettlementItem>& items, unsigned threads) const {
  LossyBatchReport report;
  report.receipts.resize(items.size());
  const std::deque<detail::UeGroup> groups =
      detail::group_by_ue(items, report.receipts);
  // Per-group counters merge after the pool drains, in group order —
  // the same discipline that keeps receipts thread-count independent.
  std::vector<CodedCounters> counters(groups.size());

  auto run_group = [&](const detail::UeGroup& group, std::size_t gi) {
    const std::uint64_t ue = group.ue_id;
    std::vector<core::SettlementItem> group_items;
    group_items.reserve(group.item_indices.size());
    for (const std::size_t index : group.item_indices) {
      group_items.push_back(items[index]);
      // Same (settle-cycle, ue) schedule as the stop-and-wait path:
      // the k-th fire is this UE's cycle k at any thread count.
      if (plan_ != nullptr) plan_->fire(recovery::kCrashSettleCycle, ue);
    }

    // Rung 1 — negotiate in-process (lossless batch mechanics), seal
    // the receipts and carry them across the lossy link as one RLNC
    // transfer. The negotiation is the same pure per-UE function the
    // lossless settler computes, so a clean transfer reproduces the
    // stop-and-wait zero-fault receipts byte for byte.
    core::BatchSettler negotiator(config_, keys_);
    std::vector<core::SettlementReceipt> receipts =
        negotiator.settle(group_items, 1);
    const Bytes payload = seal_receipts(receipts);

    const std::uint64_t fault_stream = 2 * ue;
    FaultyChannel channel(transport_.to_edge, transport_.to_operator,
                          sim::stream_seed(transport_.seed, fault_stream));
    const std::uint64_t coeff_root =
        sim::stream_seed(transport_.seed, kCodedCoeffStream);
    const std::uint64_t group_coeff_stream = ue;
    const std::uint64_t coeff_seed =
        sim::stream_seed(coeff_root, group_coeff_stream);

    CodedReceiver receiver(transport_.coded);
    receiver.set_crash_plan(plan_, ue);
    CodedTransfer transfer(transport_.coded, channel,
                           /*transfer_id=*/coeff_seed, payload, coeff_seed);
    const TransferOutcome outcome = transfer.run(receiver);
    CodedCounters& group_counters = counters[gi];
    group_counters = outcome.counters;

    std::vector<core::SettlementReceipt> delivered;
    bool coded_ok = outcome.delivered;
    if (coded_ok) {
      auto decoded = receiver.payload();
      coded_ok = decoded.has_value();
      if (coded_ok) {
        auto parsed = unseal_receipts(*decoded);
        coded_ok =
            parsed.has_value() && parsed->size() == group.item_indices.size();
        if (coded_ok) delivered = std::move(*parsed);
      }
    }

    if (coded_ok) {
      group_counters.cycles_coded += delivered.size();
      for (std::size_t j = 0; j < group.item_indices.size(); ++j) {
        report.receipts[group.item_indices[j]] = std::move(delivered[j]);
      }
      return;
    }

    // Rung 2 — the coded path spent its budget: re-settle the whole
    // group stop-and-wait (which itself degrades hopeless cycles to
    // the legacy CDR bill, rung 3). The fallback draws its fault and
    // jitter schedules from the same per-UE streams a pure
    // stop-and-wait run would, so the ladder stays deterministic. The
    // crash plan is deliberately not re-attached: this group's
    // settle-cycle points already fired during negotiation.
    ++group_counters.fallbacks;
    LossySettler fallback(config_, transport_, keys_);
    LossyBatchReport fallback_report = fallback.settle(group_items, 1);
    for (std::size_t j = 0; j < group.item_indices.size(); ++j) {
      report.receipts[group.item_indices[j]] =
          std::move(fallback_report.receipts[j]);
    }
  };

  detail::run_groups(groups, threads, run_group);
  for (const CodedCounters& group_counters : counters) {
    report.coded += group_counters;
  }
  detail::fill_census(report);
  return report;
}

}  // namespace tlc::transport
