#include "transport/settlement_runner.hpp"

#include <algorithm>

#include "core/verifier.hpp"
#include "sim/rng_stream.hpp"

namespace tlc::transport {
namespace {

/// Per-cycle jitter index space: stream 0 drives the edge endpoint's
/// retry jitter, stream 1 the operator's.
constexpr std::uint64_t kEdgeJitterStream = 0;
constexpr std::uint64_t kOpJitterStream = 1;

}  // namespace

SettlementRunner::SettlementRunner(core::TlcSession& edge,
                                   core::TlcSession& op,
                                   FaultyChannel& channel, RetryPolicy policy,
                                   std::uint64_t jitter_seed,
                                   std::uint64_t start_tick)
    : edge_(edge),
      op_(op),
      channel_(channel),
      policy_(policy),
      edge_driver_(edge, policy, sim::stream_rng(jitter_seed, kEdgeJitterStream),
                   [this](const Bytes& wire) {
                     channel_.send(FaultyChannel::Dir::ToOperator, wire, now_);
                   }),
      op_driver_(op, policy, sim::stream_rng(jitter_seed, kOpJitterStream),
                 [this](const Bytes& wire) {
                   channel_.send(FaultyChannel::Dir::ToEdge, wire, now_);
                 }),
      now_(start_tick) {}

void SettlementRunner::fill_counters(CycleRunResult& result,
                                     std::uint64_t start) const {
  result.retransmits = edge_driver_.retransmits() + op_driver_.retransmits();
  result.duplicates =
      edge_driver_.duplicates_seen() + op_driver_.duplicates_seen();
  // Endpoint counters must be read before finish/skip tears the
  // endpoint down.
  result.tamper_suspected = edge_.tamper_suspected() + op_.tamper_suspected();
  result.ticks = now_ - start;
}

CycleRunResult SettlementRunner::degrade(std::string reason,
                                         std::uint64_t start) {
  CycleRunResult result;
  fill_counters(result, start);
  result.outcome = result.tamper_suspected > 0
                       ? core::SettleOutcome::RejectedTamper
                       : core::SettleOutcome::Degraded;
  result.failure_reason = std::move(reason);
  // Graceful degradation: give up on *this* cycle only. Advancing the
  // cycle index keeps both plan windows aligned for the next cycle,
  // which settles via the operator's unilateral legacy CDR bill.
  edge_.skip_cycle();
  op_.skip_cycle();
  return result;
}

CycleRunResult SettlementRunner::run_cycle(
    const crypto::RsaPublicKey& edge_key,
    const crypto::RsaPublicKey& operator_key) {
  const std::uint64_t start = now_;
  const core::PlanRef plan = op_.current_plan();

  edge_driver_.set_now(now_);
  op_driver_.set_now(now_);
  if (!op_.start().ok()) return degrade("cycle could not start", start);

  for (;;) {
    for (const Bytes& wire :
         channel_.deliver_due(FaultyChannel::Dir::ToEdge, now_)) {
      edge_driver_.on_wire(wire, now_);
    }
    for (const Bytes& wire :
         channel_.deliver_due(FaultyChannel::Dir::ToOperator, now_)) {
      op_driver_.on_wire(wire, now_);
    }

    if (edge_.cycle_complete() && op_.cycle_complete()) break;
    if (edge_.cycle_failed() || op_.cycle_failed()) {
      const std::string why =
          edge_.cycle_failed() ? edge_.failure_reason() : op_.failure_reason();
      return degrade("protocol-failed: " + why, start);
    }
    if (!edge_driver_.poll(now_) || !op_driver_.poll(now_)) {
      return degrade(kReasonBudget, start);
    }

    const std::uint64_t next =
        std::min({channel_.earliest_due(), edge_driver_.next_deadline(),
                  op_driver_.next_deadline()});
    if (next == FaultyChannel::kIdle) return degrade(kReasonIdle, start);
    now_ = std::max(next, now_ + 1);
    if (now_ - start > policy_.max_ticks) {
      return degrade(kReasonDeadline, start);
    }
  }

  CycleRunResult result;
  fill_counters(result, start);

  const auto op_receipt = op_.finish_cycle();
  const auto edge_receipt = edge_.finish_cycle();
  if (!op_receipt || !edge_receipt) {
    // finish_cycle cannot fail on a done endpoint, but stay terminal.
    result.outcome = core::SettleOutcome::Degraded;
    result.failure_reason =
        op_receipt ? edge_receipt.error() : op_receipt.error();
    if (!op_receipt) op_.skip_cycle();
    if (!edge_receipt) edge_.skip_cycle();
    return result;
  }
  result.charged = op_receipt->charged;
  result.rounds = op_receipt->rounds;
  result.poc_wire = op_.receipts().entries().back().poc_wire;

  // Algorithm 2 gate: a PoC both parties hold but nobody else can
  // verify is not a settlement — classify it as tampering.
  core::VerificationRequest request;
  request.poc_wire = result.poc_wire;
  request.plan = plan;
  request.edge_key = edge_key;
  request.operator_key = operator_key;
  if (auto verified = core::verify_poc(request); !verified) {
    result.outcome = core::SettleOutcome::RejectedTamper;
    result.failure_reason =
        std::string(kReasonUnverifiable) + ": " + verified.error();
    result.charged = 0;
    result.poc_wire.clear();
    return result;
  }

  result.outcome = result.retransmits > 0 ? core::SettleOutcome::Retried
                                          : core::SettleOutcome::Converged;
  return result;
}

}  // namespace tlc::transport
