// Retry policy for settlement transport (§8: fault model).
//
// The negotiation is stop-and-wait: each party has at most one message
// outstanding, so loss recovery is a per-message timeout that resends
// the *same bytes* (same signature, same nonce — the peer's dedup and
// the endpoint's idempotent receive make the resend harmless). Timeouts
// grow exponentially with deterministic jitter, and the total number of
// retransmissions per cycle is bounded: when the budget runs out the
// cycle degrades to the operator's unilateral legacy bill instead of
// negotiating forever.
//
// All time here is virtual ticks — never wall clock — so every retry
// schedule is a pure function of (policy, seed) and fleet runs stay
// bit-reproducible.
#pragma once

#include <cstdint>

#include "util/rng.hpp"

namespace tlc::transport {

struct RetryPolicy {
  /// Timeout before the first retransmission of a message.
  std::uint64_t base_timeout_ticks = 16;
  /// Exponential growth per retransmission of the same message.
  double backoff_factor = 2.0;
  /// Backoff ceiling.
  std::uint64_t max_timeout_ticks = 1024;
  /// Jitter fraction: each armed timeout is lengthened by a draw from
  /// [0, jitter * timeout), decorrelating the two parties' retries.
  double jitter = 0.25;
  /// Retransmission budget per party per cycle (the bounded
  /// renegotiation budget); exhausting it degrades the cycle.
  int max_retransmits = 8;
  /// Hard per-cycle deadline in ticks — the never-stuck backstop.
  std::uint64_t max_ticks = 1 << 20;
};

/// Timeout for the `attempt`-th retransmission of one message
/// (attempt 0 = the wait before the first resend). Deterministic given
/// the policy and the jitter RNG state.
[[nodiscard]] std::uint64_t backoff_timeout(const RetryPolicy& policy,
                                            int attempt, Rng& jitter_rng);

/// Stop-and-wait retransmit timer over a virtual clock.
///
/// `arm(now)` starts a fresh backoff ladder for a newly sent message;
/// `record_retransmit(now)` climbs one rung and re-arms, returning
/// false once the per-cycle budget is exhausted (the caller degrades).
/// The budget spans the whole cycle — re-arming for a new message does
/// not refund spent retransmissions.
class RetransmitTimer {
 public:
  static constexpr std::uint64_t kNever = ~0ull;

  RetransmitTimer(RetryPolicy policy, Rng jitter_rng)
      : policy_(policy), jitter_rng_(jitter_rng) {}

  /// A fresh message went out at `now`: restart the backoff ladder.
  void arm(std::uint64_t now);
  /// Nothing outstanding (negotiation finished): stop firing.
  void disarm();

  [[nodiscard]] bool armed() const { return deadline_ != kNever; }
  [[nodiscard]] std::uint64_t deadline() const { return deadline_; }
  [[nodiscard]] bool expired(std::uint64_t now) const {
    return armed() && now >= deadline_;
  }

  /// Accounts one retransmission at `now` and re-arms with the next
  /// backoff step. Returns false (leaving the timer disarmed) when the
  /// budget is exhausted.
  [[nodiscard]] bool record_retransmit(std::uint64_t now);

  [[nodiscard]] int retransmits() const { return total_; }
  [[nodiscard]] bool budget_exhausted() const {
    return total_ >= policy_.max_retransmits;
  }

 private:
  RetryPolicy policy_;
  Rng jitter_rng_;
  int attempt_ = 0;  // rung on the current message's backoff ladder
  int total_ = 0;    // cycle-wide retransmission count
  std::uint64_t deadline_ = kNever;
};

}  // namespace tlc::transport
