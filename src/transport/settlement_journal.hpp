// Durable settlement progress: receipts journaled per chunk so a
// crashed settlement pass resumes instead of re-negotiating.
//
// The supervised fleet splits a settlement pass into chunks of whole
// UE groups. Each chunk's receipts are journaled as one record the
// moment the chunk finishes; a process that dies mid-pass replays the
// journal, keeps the finished chunks' receipts byte-for-byte, and
// re-runs only the unfinished chunks. That is sound because a UE
// group is a pure function of its inputs (batch_settlement.hpp /
// lossy_settlement.hpp determinism contracts): re-running a chunk in a
// new incarnation yields the receipts the dead incarnation would have
// produced, so the spliced result is bit-identical to a crash-free
// pass — including every PoC byte.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/batch_settlement.hpp"
#include "recovery/crash_plan.hpp"
#include "recovery/journal.hpp"
#include "transport/transport_config.hpp"
#include "util/expected.hpp"
#include "util/serde.hpp"

namespace tlc::transport {

/// Full-fidelity receipt codec (every field round-trips exactly,
/// poc_wire included) — shared by the chunk records here and by tests.
void write_receipt(ByteWriter& w, const core::SettlementReceipt& receipt);
[[nodiscard]] Expected<core::SettlementReceipt> read_receipt(ByteReader& r);

/// One journaled settlement chunk: the receipts plus the coded-path
/// census the chunk's transfers accumulated (all-zero when the chunk
/// settled stop-and-wait or in-process). Splicing the counters back
/// keeps supervised coded runs byte-identical to detached ones.
struct RecoveredChunk {
  std::vector<core::SettlementReceipt> receipts;
  CodedCounters coded;
};

class SettlementJournal {
 public:
  /// Opens `path`, replaying any chunks a previous incarnation left
  /// behind into `recovered()`.
  [[nodiscard]] static Expected<SettlementJournal> open(
      const std::string& path, recovery::CrashPlan* plan = nullptr,
      std::uint64_t scope = 0);

  /// Chunks recovered at open, keyed by chunk index.
  [[nodiscard]] const std::map<std::uint32_t, RecoveredChunk>& recovered()
      const {
    return recovered_;
  }

  /// Journals one finished chunk. Crash points bracket the append
  /// (settle-chunk-pre: work lost, chunk re-runs; settle-chunk-post:
  /// work durable, replay must not double-count it).
  [[nodiscard]] Status record_chunk(
      std::uint32_t chunk_index,
      const std::vector<core::SettlementReceipt>& receipts,
      const CodedCounters& coded = CodedCounters{});

  /// Empties the journal once the pass's receipts are consumed
  /// downstream (the OFCS ledger journals its own ops from here on).
  [[nodiscard]] Status reset();

 private:
  SettlementJournal(recovery::Journal journal, recovery::CrashPlan* plan,
                    std::uint64_t scope)
      : journal_(std::move(journal)), plan_(plan), scope_(scope) {}

  recovery::Journal journal_;
  recovery::CrashPlan* plan_ = nullptr;
  std::uint64_t scope_ = 0;
  std::map<std::uint32_t, RecoveredChunk> recovered_;
};

}  // namespace tlc::transport
