// GF(2^8) field arithmetic for the RLNC codec (§17).
//
// The field is GF(2)[x] / (x^8 + x^4 + x^3 + x^2 + 1) — the 0x11d
// Reed-Solomon polynomial, under which x (= 2) generates the whole
// multiplicative group, so one log/exp table pair covers every
// nonzero product. Two table layers:
//
//   log/exp   512 + 256 bytes; powers the inverse and the reference
//             path, and builds the layer below.
//   mul table 64 KiB full a×b matrix; `mul_row(c)` hands the decoder
//             the 256-entry row of c so the hot axpy loop is one load
//             + one XOR per byte with no log/exp indirection.
//
// Tables are built once on first use (thread-safe magic static) and
// are pure compile-time-determined data — no seeds, no allocation
// after construction.
#pragma once

#include <cstddef>
#include <cstdint>

namespace tlc::transport::gf256 {

/// x^8 + x^4 + x^3 + x^2 + 1.
inline constexpr std::uint16_t kPolynomial = 0x11d;

/// a × b in the field. 0 absorbs as usual.
[[nodiscard]] std::uint8_t mul(std::uint8_t a, std::uint8_t b);

/// Multiplicative inverse of a (a != 0; inv(0) returns 0 defensively).
[[nodiscard]] std::uint8_t inv(std::uint8_t a);

/// a / b == a × inv(b). b == 0 returns 0 defensively.
[[nodiscard]] std::uint8_t div(std::uint8_t a, std::uint8_t b);

/// The 256-entry row {c×0, c×1, ..., c×255} of the full mul table.
[[nodiscard]] const std::uint8_t* mul_row(std::uint8_t c);

/// dst[i] ^= c × src[i] for i in [0, n): the row operation of the
/// decoder's Gaussian elimination and the encoder's combine loop.
void axpy(std::uint8_t* dst, const std::uint8_t* src, std::size_t n,
          std::uint8_t c);

/// dst[i] = c × dst[i] (row scaling; c != 0 for a useful result).
void scale(std::uint8_t* dst, std::size_t n, std::uint8_t c);

}  // namespace tlc::transport::gf256
