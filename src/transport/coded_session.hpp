// Network-coded settlement transport (§17): rateless RLNC sessions
// that survive lossy edge links.
//
// The stop-and-wait path (§8) pays a full RTT per loss. Here the
// sealed settlement batch of one UE group — every cycle's receipt,
// PoC wire included — is split into generations of fixed-size chunks
// and streamed through the same FaultyChannel as GF(2^8) random
// linear combinations: the sender keeps emitting coded packets until
// the receiver's Gaussian elimination reaches full rank and answers
// with a single end-of-generation ACK. No per-packet ACKs, so k
// losses cost k extra coded packets instead of k RTTs.
//
// Degradation ladder: when a generation exhausts its packet budget
// (generation_size × max_overhead) or the transfer its tick budget,
// the whole group falls back one rung to the stop-and-wait
// LossySettler — which itself degrades unconvergeable cycles to the
// legacy CDR bill. Every rung is deterministic, so the ladder is too.
//
// Determinism contract: coefficient draws come from the dedicated
// kCodedCoeffStream seed stream keyed by (transport.seed, ue,
// generation); fault schedules reuse the LossySettler's per-UE
// channel stream. A group's coded transfer is a pure function of its
// inputs wherever it runs — receipts, counters and every wire byte
// are bit-identical at any thread count, and with coding off nothing
// here executes at all.
#pragma once

#include <cstdint>
#include <vector>

#include "core/batch_settlement.hpp"
#include "recovery/crash_plan.hpp"
#include "recovery/journal.hpp"
#include "transport/faulty_channel.hpp"
#include "transport/lossy_settlement.hpp"
#include "transport/rlnc.hpp"
#include "transport/transport_config.hpp"
#include "util/expected.hpp"

namespace tlc::transport {

/// Named seed stream for RLNC coefficient draws ("coef"). Keyed under
/// TransportConfig::seed; per-group children are keyed by UE id, so a
/// fleet's coefficient randomness never collides with the fault or
/// jitter streams.
inline constexpr std::uint64_t kCodedCoeffStream = 0x636f6566ULL;

/// One coded packet on the wire (codec: transport_coded_packet).
struct CodedPacket {
  std::uint64_t transfer_id = 0;
  std::uint32_t generation = 0;
  /// Chunks in this packet's generation (the tail generation of a
  /// transfer may be shorter than CodedConfig::generation_size).
  std::uint16_t generation_size = 0;
  std::uint16_t chunk_bytes = 0;
  /// Exact sealed-payload length of the whole transfer; the decoder
  /// trims the zero-padded tail chunk back to this.
  std::uint32_t payload_len = 0;
  Bytes coefficients;  // generation_size GF(2^8) entries
  Bytes body;          // chunk_bytes combined bytes
};

/// End-of-generation acknowledgement (codec: transport_generation_ack).
struct GenerationAck {
  std::uint64_t transfer_id = 0;
  std::uint32_t generation = 0;
  /// Receiver rank for that generation; == generation_size means
  /// decoded, anything less is advisory.
  std::uint16_t rank = 0;
};

/// Wire codecs. Both messages end with a CRC32C over every byte
/// before it, so channel corruption and truncation are screened
/// before any field is trusted (a corrupt packet must never reach the
/// decoder's row set — Gaussian elimination would happily absorb it).
[[nodiscard]] Bytes encode_coded_packet(const CodedPacket& packet);
[[nodiscard]] Expected<CodedPacket> decode_coded_packet(const Bytes& wire);
[[nodiscard]] Bytes encode_generation_ack(const GenerationAck& ack);
[[nodiscard]] Expected<GenerationAck> decode_generation_ack(const Bytes& wire);

/// Receiving endpoint of one coded transfer. Owns a GenerationDecoder
/// per generation and, when a journal is attached, appends every
/// innovative packet's raw wire before acknowledging it — so a
/// restarted endpoint replays the journal through `restore()` and
/// resumes mid-generation at its journaled rank instead of starting
/// the generation over (DESIGN.md §17.4).
class CodedReceiver {
 public:
  explicit CodedReceiver(CodedConfig config);

  /// Journal for innovative packets; crash points kCrashCodedPacketPre
  /// (packet dies with the process) and kCrashCodedPacketPost (packet
  /// durable) bracket each append when `plan` is armed.
  void attach_journal(recovery::Journal* journal);
  void set_crash_plan(recovery::CrashPlan* plan, std::uint64_t scope);

  struct Intake {
    enum class Kind : std::uint8_t { Innovative, Dependent, Corrupt };
    Kind kind = Kind::Corrupt;
    /// An end-of-generation ACK should be sent (set on completion and
    /// again on any packet for an already-complete generation — the
    /// lost-ACK recovery path).
    bool ack_due = false;
    GenerationAck ack;
  };

  /// Feeds one raw wire message through CRC screening, geometry
  /// checks and the decoder; journals innovative packets.
  [[nodiscard]] Intake on_wire(const Bytes& wire);

  /// Replays one journaled packet record (recovery path: rank is
  /// rebuilt, nothing is re-journaled, no crash points fire).
  void restore(const Bytes& wire);

  /// Decoded generations so far / total (total known after the first
  /// accepted packet).
  [[nodiscard]] std::uint32_t generations_complete() const;
  [[nodiscard]] std::uint32_t generation_count() const {
    return generation_count_;
  }
  [[nodiscard]] std::uint16_t rank(std::uint32_t generation) const;
  [[nodiscard]] bool complete() const;

  /// The reassembled sealed payload, trimmed to the transfer's exact
  /// length. Fails below full rank — never partial plaintext.
  [[nodiscard]] Expected<Bytes> payload() const;

 private:
  [[nodiscard]] bool accept_geometry(const CodedPacket& packet);
  Intake ingest(const Bytes& wire, bool journal_and_fire);

  CodedConfig config_;
  recovery::Journal* journal_ = nullptr;
  recovery::CrashPlan* plan_ = nullptr;
  std::uint64_t scope_ = 0;

  bool geometry_known_ = false;
  std::uint64_t transfer_id_ = 0;
  std::uint16_t chunk_bytes_known_ = 0;
  std::uint32_t payload_len_ = 0;
  std::uint32_t chunk_count_ = 0;
  std::uint32_t generation_count_ = 0;
  std::vector<GenerationDecoder> decoders_;
};

/// Everything the sender learned from driving one transfer.
struct TransferOutcome {
  /// Receiver reached full rank on every generation and the sender
  /// saw the final ACK. False means a budget ran out — the caller
  /// takes the next rung on the degradation ladder.
  bool delivered = false;
  CodedCounters counters;
  std::uint64_t end_tick = 0;
};

/// Drives one sealed payload through a FaultyChannel: systematic
/// first burst, redundancy-adaptive top-ups on ACK timeout, single
/// end-of-generation ACKs. Virtual-clock event loop in the style of
/// SettlementRunner — every iteration advances to the next delivery
/// or deadline, so the loop is structurally never stuck.
class CodedTransfer {
 public:
  /// Packets travel Dir::ToOperator, ACKs Dir::ToEdge. `coeff_seed`
  /// roots the per-generation coefficient streams.
  CodedTransfer(CodedConfig config, FaultyChannel& channel,
                std::uint64_t transfer_id, Bytes payload,
                std::uint64_t coeff_seed, std::uint64_t start_tick = 0);

  /// Runs to delivery or budget exhaustion. The receiver may already
  /// hold journaled rank (crash resume): completed generations are
  /// re-ACKed off the first packet they see and cost one burst, not a
  /// re-receive of their rank.
  [[nodiscard]] TransferOutcome run(CodedReceiver& receiver);

 private:
  CodedConfig config_;
  FaultyChannel& channel_;
  std::uint64_t transfer_id_;
  Bytes payload_;
  std::uint64_t coeff_seed_;
  std::uint64_t now_;
};

/// The §17 settler: same grouping, threading and crash-injection
/// rules as LossySettler, but each group's receipts are negotiated
/// in-process (lossless batch mechanics) and carried across the lossy
/// link as one RLNC-coded sealed batch. With zero fault rates the
/// receipts, bills and digests are byte-identical to LossySettler's.
class CodedSettler {
 public:
  /// `keys` must outlive the settler.
  CodedSettler(core::BatchConfig config, TransportConfig transport,
               const core::RsaKeyCache& keys);

  /// Same crash-injection contract as LossySettler::set_crash_plan;
  /// the settle-cycle point fires per (UE, cycle) before negotiation
  /// and the coded packet points fire inside the group's transfer.
  void set_crash_plan(recovery::CrashPlan* plan) { plan_ = plan; }

  [[nodiscard]] LossyBatchReport settle(
      const std::vector<core::SettlementItem>& items,
      unsigned threads = 1) const;

 private:
  core::BatchConfig config_;
  TransportConfig transport_;
  const core::RsaKeyCache& keys_;
  recovery::CrashPlan* plan_ = nullptr;
};

/// Seals a group's receipts into the coded-transfer payload (u32
/// count + full-fidelity receipts) / parses it back. Shared with the
/// property tests so "decoded == sent" is asserted on real bytes.
[[nodiscard]] Bytes seal_receipts(
    const std::vector<core::SettlementReceipt>& receipts);
[[nodiscard]] Expected<std::vector<core::SettlementReceipt>> unseal_receipts(
    const Bytes& payload);

}  // namespace tlc::transport
