// Small file-I/O helpers shared by every durable-state component.
//
// All persistent artefacts in this repo (PoC stores, write-ahead
// journals, checkpoints) funnel their raw reads and writes through
// these four functions, for two reasons: failure surfaces as
// Expected<>/Status instead of stream state bits, and the tlclint
// `journal-write` rule can then reject any *other* file-write
// primitive in the stateful subsystems — durable bytes must go through
// an API that understands atomicity, not an ad-hoc ofstream.
#pragma once

#include <string>

#include "util/bytes.hpp"
#include "util/expected.hpp"

namespace tlc::util {

/// Reads a whole file. Fails on missing/unreadable paths.
[[nodiscard]] Expected<Bytes> read_file(const std::string& path);

/// Overwrites `path` with `data` in place (truncate + write). Not
/// atomic — callers that need crash-atomicity use write_file_atomic.
[[nodiscard]] Status write_file(const std::string& path, const Bytes& data);

/// Crash-atomic replace: writes `path + ".tmp"`, flushes, then renames
/// over `path`. A crash leaves either the old file or the new one,
/// never a torn mix; a stale .tmp from a previous crash is ignored by
/// readers and overwritten by the next writer.
[[nodiscard]] Status write_file_atomic(const std::string& path,
                                       const Bytes& data);

[[nodiscard]] bool file_exists(const std::string& path);

/// Removes a file if present; missing files are not an error.
[[nodiscard]] Status remove_file(const std::string& path);

}  // namespace tlc::util
