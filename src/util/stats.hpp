// Statistics accumulators used by the experiment harness and benches.
//
// The paper reports averages (Table 2), CDFs (Figs 12, 15, 17, 18) and
// time series; `RunningStats` gives streaming mean/stddev/min/max,
// `Samples` retains values for exact quantiles and CDF dumps, and
// `Histogram` bins time-series data.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace tlc {

/// Streaming mean / variance (Welford), min and max.
class RunningStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const { return count_ == 0 ? 0.0 : mean_; }
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return count_ == 0 ? 0.0 : min_; }
  [[nodiscard]] double max() const { return count_ == 0 ? 0.0 : max_; }
  [[nodiscard]] double sum() const { return sum_; }

  /// Merges another accumulator into this one.
  void merge(const RunningStats& other);

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Retains all samples; supports exact quantiles and CDF extraction.
class Samples {
 public:
  void add(double x);
  void add_all(const std::vector<double>& xs);

  [[nodiscard]] std::size_t count() const { return values_.size(); }
  [[nodiscard]] bool empty() const { return values_.empty(); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

  /// Exact quantile, q in [0, 1], linear interpolation between order
  /// statistics. Empty sample set returns 0.
  [[nodiscard]] double quantile(double q) const;

  /// (value, cumulative fraction) pairs at `points` evenly spaced
  /// probabilities — the series plotted in the paper's CDF figures.
  [[nodiscard]] std::vector<std::pair<double, double>> cdf(
      std::size_t points = 20) const;

  [[nodiscard]] const std::vector<double>& values() const { return values_; }

 private:
  void ensure_sorted() const;

  std::vector<double> values_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

/// Fixed-width bins over [lo, hi); out-of-range values clamp to the
/// first/last bin.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x, double weight = 1.0);

  [[nodiscard]] std::size_t bins() const { return counts_.size(); }
  [[nodiscard]] double bin_lo(std::size_t i) const;
  [[nodiscard]] double bin_hi(std::size_t i) const;
  [[nodiscard]] double count(std::size_t i) const { return counts_[i]; }
  [[nodiscard]] double total() const { return total_; }

 private:
  double lo_;
  double hi_;
  std::vector<double> counts_;
  double total_ = 0.0;
};

/// Formats a double with fixed precision — shared by report printers.
[[nodiscard]] std::string format_double(double v, int precision = 2);

}  // namespace tlc
