// The single sanctioned wall-clock read in the library.
//
// Everything on a settlement or simulation path runs on virtual time
// (util/simtime.hpp); tlclint's `wallclock` rule rejects std::chrono
// clocks, time(), rand() etc. anywhere else in src/. The one legitimate
// consumer of real time is *telemetry* — measuring how long real crypto
// operations take (ProtocolEndpoint::crypto_seconds(), Fig 16/17) —
// and that read is funneled through here so it stays auditable and
// mockable: callers take a `WallClock` function and tests inject a
// deterministic one.
#pragma once

#include <chrono>  // tlclint: allow(wallclock) sole sanctioned wall-clock site
#include <cstdint>
#include <functional>

namespace tlc::util {

/// Monotonic nanosecond counter for latency telemetry. Never use this
/// for anything that feeds settlement bytes, RNG seeding or message
/// contents — those must come from SimTime / seed streams.
using WallClock = std::function<std::uint64_t()>;

[[nodiscard]] inline std::uint64_t monotonic_nanos() {
  // tlclint: allow(wallclock) telemetry-only monotonic read
  const auto now = std::chrono::steady_clock::now().time_since_epoch();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(now).count());
}

}  // namespace tlc::util
