#include "util/rng.hpp"

#include <cmath>

namespace tlc {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) {
    word = splitmix64(s);
  }
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::uniform_u64(std::uint64_t bound) {
  if (bound == 0) return 0;
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo >= hi) return lo;
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_u64(span));
}

double Rng::uniform() {
  // 53 random mantissa bits.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform();
}

double Rng::gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 1e-300);
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  cached_gaussian_ = radius * std::sin(angle);
  has_cached_gaussian_ = true;
  return radius * std::cos(angle);
}

double Rng::gaussian(double mean, double stddev) {
  return mean + stddev * gaussian();
}

double Rng::exponential(double mean) {
  double u = 0.0;
  do {
    u = uniform();
  } while (u <= 1e-300);
  return -mean * std::log(u);
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

std::uint64_t Rng::poisson(double mean) {
  if (mean <= 0.0) return 0;
  if (mean < 30.0) {
    // Knuth's multiplication method.
    const double limit = std::exp(-mean);
    std::uint64_t k = 0;
    double product = uniform();
    while (product > limit) {
      ++k;
      product *= uniform();
    }
    return k;
  }
  // Normal approximation with continuity correction.
  const double draw = gaussian(mean, std::sqrt(mean));
  return draw <= 0.0 ? 0 : static_cast<std::uint64_t>(draw + 0.5);
}

Bytes Rng::bytes(std::size_t n) {
  Bytes out;
  out.reserve(n);
  while (out.size() < n) {
    std::uint64_t word = next_u64();
    for (int i = 0; i < 8 && out.size() < n; ++i) {
      out.push_back(static_cast<std::uint8_t>(word & 0xff));
      word >>= 8;
    }
  }
  return out;
}

Rng Rng::fork() {
  return Rng(next_u64());
}

}  // namespace tlc
