// Leveled logging for the library.
//
// Defaults to Warn so tests and benches stay quiet; examples raise the
// level to show the protocol in action. Not thread-safe by design — the
// simulator is single-threaded.
#pragma once

#include <sstream>
#include <string>

namespace tlc {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Global minimum level; messages below it are discarded.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

/// Emits one line to stderr as "[level] component: message".
void log_message(LogLevel level, std::string_view component,
                 std::string_view message);

namespace detail {

/// Stream-style one-shot logger: LogLine(...).stream() << "x=" << x;
class LogLine {
 public:
  LogLine(LogLevel level, std::string_view component)
      : level_(level), component_(component) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine();

  [[nodiscard]] std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace tlc

#define TLC_LOG(level, component)                                   \
  if (static_cast<int>(level) < static_cast<int>(tlc::log_level())) \
    ;                                                               \
  else                                                              \
    tlc::detail::LogLine(level, component).stream()

#define TLC_DEBUG(component) TLC_LOG(tlc::LogLevel::Debug, component)
#define TLC_INFO(component) TLC_LOG(tlc::LogLevel::Info, component)
#define TLC_WARN(component) TLC_LOG(tlc::LogLevel::Warn, component)
#define TLC_ERROR(component) TLC_LOG(tlc::LogLevel::Error, component)
