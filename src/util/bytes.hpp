// Byte-buffer helpers shared across the TLC library.
//
// All wire formats in this project (CDR/CDA/PoC messages, RSA key blobs,
// packet payloads) are carried as `Bytes`. The helpers here provide hex
// round-trips for debugging/storage and constant-time comparison for
// signature material.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/expected.hpp"

namespace tlc {

using Bytes = std::vector<std::uint8_t>;

/// Encodes `data` as lowercase hex ("deadbeef").
[[nodiscard]] std::string to_hex(const Bytes& data);

/// Decodes a hex string (case-insensitive). Fails on odd length or
/// non-hex characters.
[[nodiscard]] Expected<Bytes> from_hex(std::string_view hex);

/// Builds a byte buffer from an ASCII string (no terminator).
[[nodiscard]] Bytes bytes_of(std::string_view text);

/// Renders a byte buffer as ASCII, replacing non-printable bytes with '.'.
[[nodiscard]] std::string printable(const Bytes& data);

/// Constant-time equality for secret-dependent material (signatures,
/// MACs). Still returns early on length mismatch, which is public.
[[nodiscard]] bool constant_time_equal(const Bytes& a, const Bytes& b);

/// Appends `src` to `dst`.
void append(Bytes& dst, const Bytes& src);

}  // namespace tlc
