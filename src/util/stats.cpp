#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>

namespace tlc {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void Samples::add(double x) {
  values_.push_back(x);
  sorted_valid_ = false;
}

void Samples::add_all(const std::vector<double>& xs) {
  values_.insert(values_.end(), xs.begin(), xs.end());
  sorted_valid_ = false;
}

double Samples::mean() const {
  if (values_.empty()) return 0.0;
  return std::accumulate(values_.begin(), values_.end(), 0.0) /
         static_cast<double>(values_.size());
}

double Samples::min() const {
  if (values_.empty()) return 0.0;
  return *std::min_element(values_.begin(), values_.end());
}

double Samples::max() const {
  if (values_.empty()) return 0.0;
  return *std::max_element(values_.begin(), values_.end());
}

void Samples::ensure_sorted() const {
  if (sorted_valid_) return;
  sorted_ = values_;
  std::sort(sorted_.begin(), sorted_.end());
  sorted_valid_ = true;
}

double Samples::quantile(double q) const {
  if (values_.empty()) return 0.0;
  ensure_sorted();
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

std::vector<std::pair<double, double>> Samples::cdf(std::size_t points) const {
  std::vector<std::pair<double, double>> out;
  if (values_.empty() || points == 0) return out;
  out.reserve(points + 1);
  for (std::size_t i = 0; i <= points; ++i) {
    const double q = static_cast<double>(i) / static_cast<double>(points);
    out.emplace_back(quantile(q), q);
  }
  return out;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins == 0 ? 1 : bins, 0.0) {}

void Histogram::add(double x, double weight) {
  const double span = hi_ - lo_;
  std::size_t idx = 0;
  if (span > 0.0) {
    const double rel = (x - lo_) / span;
    const auto scaled =
        static_cast<std::ptrdiff_t>(rel * static_cast<double>(counts_.size()));
    idx = static_cast<std::size_t>(std::clamp<std::ptrdiff_t>(
        scaled, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1));
  }
  counts_[idx] += weight;
  total_ += weight;
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t i) const { return bin_lo(i + 1); }

std::string format_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

}  // namespace tlc
