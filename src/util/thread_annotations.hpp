// Clang thread-safety annotations and the annotated lock primitives.
//
// The fleet's determinism story (DESIGN.md §7) rests on "shards never
// share mutable state except through the thread pool's queue". That
// invariant was previously enforced only at runtime (the tsan preset);
// these macros promote it to compile time: when the compiler is Clang,
// `-Wthread-safety -Werror` rejects any access to a TLC_GUARDED_BY
// field without its mutex held. Under GCC the macros expand to nothing
// and the wrappers are zero-cost shims over the std primitives.
//
// tlclint's `naked-mutex` rule requires `fleet/`, `transport/` and
// `epc/ofcs*` to use these wrappers instead of raw std::mutex, so new
// shared state cannot bypass the analysis by accident.
//
// Follows the Abseil/LLVM pattern:
// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
#pragma once

#include <condition_variable>
#include <mutex>

#if defined(__clang__) && (!defined(SWIG))
#define TLC_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define TLC_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

/// Field is protected by the given mutex; reads and writes require it.
#define TLC_GUARDED_BY(x) TLC_THREAD_ANNOTATION(guarded_by(x))

/// Pointer target is protected by the given mutex.
#define TLC_PT_GUARDED_BY(x) TLC_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function requires the mutex(es) to be held by the caller.
#define TLC_REQUIRES(...) \
  TLC_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function must be called WITHOUT the mutex(es) held.
#define TLC_EXCLUDES(...) TLC_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function acquires the mutex(es) and does not release them.
#define TLC_ACQUIRE(...) \
  TLC_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the mutex(es).
#define TLC_RELEASE(...) \
  TLC_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function conditionally acquires the mutex (returns `ret` on success).
#define TLC_TRY_ACQUIRE(ret, ...) \
  TLC_THREAD_ANNOTATION(try_acquire_capability(ret, __VA_ARGS__))

/// Declares a lockable type (class-level attribute).
#define TLC_CAPABILITY(name) TLC_THREAD_ANNOTATION(capability(name))

/// Declares an RAII type whose lifetime equals a critical section.
#define TLC_SCOPED_CAPABILITY TLC_THREAD_ANNOTATION(scoped_lockable)

/// Returns a reference to the capability guarding the annotated object.
#define TLC_RETURN_CAPABILITY(x) TLC_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: disables analysis inside one function. Use only with a
/// comment explaining why the analysis cannot see the invariant.
#define TLC_NO_THREAD_SAFETY_ANALYSIS \
  TLC_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace tlc::util {

/// std::mutex with Clang capability annotations. BasicLockable, so it
/// also works directly with std::condition_variable_any (see CondVar).
class TLC_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() TLC_ACQUIRE() { mu_.lock(); }
  void unlock() TLC_RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool try_lock() TLC_TRY_ACQUIRE(true) {
    return mu_.try_lock();
  }

 private:
  std::mutex mu_;
};

/// RAII lock over Mutex; replaces std::lock_guard / std::unique_lock in
/// the annotated subsystems.
class TLC_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) TLC_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() TLC_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable paired with Mutex. Waits directly on the Mutex
/// (condition_variable_any accepts any BasicLockable); like
/// absl::CondVar::Wait, the internal unlock/relock during the wait is
/// invisible to the analysis, so wait() simply REQUIRES the mutex.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks, reacquires before returning.
  /// Caller must re-check its predicate (spurious wakeups).
  void wait(Mutex& mu) TLC_REQUIRES(mu) { cv_.wait(mu); }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace tlc::util
