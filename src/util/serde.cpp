#include "util/serde.hpp"

#include <bit>
#include <cstring>

namespace tlc {

void ByteWriter::u8(std::uint8_t v) { buffer_.push_back(v); }

void ByteWriter::u16(std::uint16_t v) {
  buffer_.push_back(static_cast<std::uint8_t>(v >> 8));
  buffer_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::u32(std::uint32_t v) {
  for (int shift = 24; shift >= 0; shift -= 8) {
    buffer_.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void ByteWriter::u64(std::uint64_t v) {
  for (int shift = 56; shift >= 0; shift -= 8) {
    buffer_.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void ByteWriter::i64(std::int64_t v) {
  u64(static_cast<std::uint64_t>(v));
}

void ByteWriter::f64(double v) {
  u64(std::bit_cast<std::uint64_t>(v));
}

void ByteWriter::blob(const Bytes& data) {
  u32(static_cast<std::uint32_t>(data.size()));
  buffer_.insert(buffer_.end(), data.begin(), data.end());
}

void ByteWriter::str(std::string_view text) {
  u32(static_cast<std::uint32_t>(text.size()));
  buffer_.insert(buffer_.end(), text.begin(), text.end());
}

Expected<std::uint8_t> ByteReader::u8() {
  if (!need(1)) return Err("serde: truncated u8");
  return data_[pos_++];
}

Expected<std::uint16_t> ByteReader::u16() {
  if (!need(2)) return Err("serde: truncated u16");
  std::uint16_t v = 0;
  for (int i = 0; i < 2; ++i) {
    v = static_cast<std::uint16_t>((v << 8) | data_[pos_++]);
  }
  return v;
}

Expected<std::uint32_t> ByteReader::u32() {
  if (!need(4)) return Err("serde: truncated u32");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v = (v << 8) | data_[pos_++];
  }
  return v;
}

Expected<std::uint64_t> ByteReader::u64() {
  if (!need(8)) return Err("serde: truncated u64");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v = (v << 8) | data_[pos_++];
  }
  return v;
}

Expected<std::int64_t> ByteReader::i64() {
  auto v = u64();
  if (!v) return Err(v.error());
  return static_cast<std::int64_t>(*v);
}

Expected<double> ByteReader::f64() {
  auto v = u64();
  if (!v) return Err(v.error());
  return std::bit_cast<double>(*v);
}

Expected<Bytes> ByteReader::blob() {
  auto len = u32();
  if (!len) return Err(len.error());
  if (!need(*len)) return Err("serde: truncated blob body");
  Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + *len));
  pos_ += *len;
  return out;
}

Expected<std::string> ByteReader::str() {
  auto raw = blob();
  if (!raw) return Err(raw.error());
  return std::string(raw->begin(), raw->end());
}

}  // namespace tlc
