// Deterministic random number generation.
//
// Every stochastic component in the simulator (radio fading, loss models,
// workload jitter, selfish-strategy draws, RSA keygen in tests) takes an
// explicit `Rng` so experiments are exactly reproducible from a seed.
// The generator is xoshiro256**, seeded through splitmix64 as its authors
// recommend.
#pragma once

#include <cstdint>
#include <vector>

#include "util/bytes.hpp"

namespace tlc {

class Rng {
 public:
  /// Seeds the full 256-bit state from a 64-bit seed via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64 random bits.
  std::uint64_t next_u64();

  /// Uniform in [0, bound). bound == 0 returns 0. Unbiased (rejection).
  std::uint64_t uniform_u64(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal via Box-Muller (cached pair).
  double gaussian();

  /// Normal with the given mean / standard deviation.
  double gaussian(double mean, double stddev);

  /// Exponential with the given mean (> 0).
  double exponential(double mean);

  /// Bernoulli trial with probability p in [0, 1].
  bool chance(double p);

  /// Poisson-distributed count with the given mean (Knuth for small
  /// means, normal approximation for large ones).
  std::uint64_t poisson(double mean);

  /// `n` random bytes (for nonces and key material in tests).
  Bytes bytes(std::size_t n);

  /// Derives an independent child generator; used to give each module a
  /// decorrelated stream from one experiment seed.
  Rng fork();

 private:
  std::uint64_t state_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace tlc
