#include "util/logging.hpp"

#include <cstdio>

namespace tlc {
namespace {

LogLevel g_level = LogLevel::Warn;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug:
      return "debug";
    case LogLevel::Info:
      return "info";
    case LogLevel::Warn:
      return "warn";
    case LogLevel::Error:
      return "error";
    case LogLevel::Off:
      return "off";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level = level; }

LogLevel log_level() { return g_level; }

void log_message(LogLevel level, std::string_view component,
                 std::string_view message) {
  if (static_cast<int>(level) < static_cast<int>(g_level)) return;
  std::fprintf(stderr, "[%s] %.*s: %.*s\n", level_name(level),
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(message.size()), message.data());
}

namespace detail {

LogLine::~LogLine() { log_message(level_, component_, stream_.str()); }

}  // namespace detail
}  // namespace tlc
