#include "util/fileio.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>

namespace tlc::util {

namespace fs = std::filesystem;

Expected<Bytes> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return Err("fileio: cannot open " + path);
  const std::streamsize size = in.tellg();
  if (size < 0) return Err("fileio: cannot stat " + path);
  in.seekg(0);
  Bytes data(static_cast<std::size_t>(size));
  if (size > 0) {
    in.read(reinterpret_cast<char*>(data.data()), size);
    if (!in) return Err("fileio: short read from " + path);
  }
  return data;
}

Status write_file(const std::string& path, const Bytes& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Err("fileio: cannot open " + path + " for writing");
  if (!data.empty()) {
    out.write(reinterpret_cast<const char*>(data.data()),
              static_cast<std::streamsize>(data.size()));
  }
  out.flush();
  if (!out) return Err("fileio: write to " + path + " failed");
  return Status::Ok();
}

Status write_file_atomic(const std::string& path, const Bytes& data) {
  const std::string tmp = path + ".tmp";
  if (Status written = write_file(tmp, data); !written.ok()) return written;
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    return Err("fileio: rename " + tmp + " -> " + path + " failed: " +
               ec.message());
  }
  return Status::Ok();
}

bool file_exists(const std::string& path) {
  std::error_code ec;
  return fs::exists(path, ec) && !ec;
}

Status remove_file(const std::string& path) {
  std::error_code ec;
  fs::remove(path, ec);
  if (ec) return Err("fileio: remove " + path + " failed: " + ec.message());
  return Status::Ok();
}

}  // namespace tlc::util
