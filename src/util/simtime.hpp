// Simulated time.
//
// The whole testbed runs on virtual time: `SimTime` is a nanosecond tick
// count since simulation start. Charging cycles, RRC timers, link
// serialization delays and workload schedules all use it; nothing in the
// simulation path reads the wall clock (benchmarks that time real crypto
// use std::chrono directly).
#pragma once

#include <cstdint>
#include <string>

namespace tlc {

/// Nanoseconds of simulated time. Plain integer type so it can be used
/// freely in arithmetic and comparisons.
using SimTime = std::int64_t;

inline constexpr SimTime kNanosecond = 1;
inline constexpr SimTime kMicrosecond = 1000 * kNanosecond;
inline constexpr SimTime kMillisecond = 1000 * kMicrosecond;
inline constexpr SimTime kSecond = 1000 * kMillisecond;
inline constexpr SimTime kMinute = 60 * kSecond;
inline constexpr SimTime kHour = 60 * kMinute;

[[nodiscard]] constexpr double to_seconds(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}

[[nodiscard]] constexpr double to_millis(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kMillisecond);
}

[[nodiscard]] constexpr SimTime from_seconds(double s) {
  return static_cast<SimTime>(s * static_cast<double>(kSecond));
}

[[nodiscard]] constexpr SimTime from_millis(double ms) {
  return static_cast<SimTime>(ms * static_cast<double>(kMillisecond));
}

/// "hh:mm:ss.mmm" rendering for logs and timeline reports.
[[nodiscard]] inline std::string format_time(SimTime t) {
  const std::int64_t total_ms = t / kMillisecond;
  const std::int64_t ms = total_ms % 1000;
  const std::int64_t total_s = total_ms / 1000;
  const std::int64_t s = total_s % 60;
  const std::int64_t m = (total_s / 60) % 60;
  const std::int64_t h = total_s / 3600;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%02lld:%02lld:%02lld.%03lld",
                static_cast<long long>(h), static_cast<long long>(m),
                static_cast<long long>(s), static_cast<long long>(ms));
  return buf;
}

}  // namespace tlc
