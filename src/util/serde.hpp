// Binary serialization used by all TLC wire messages.
//
// The format is deliberately simple and deterministic (no maps, no
// varints for signed fields): big-endian fixed-width integers and
// length-prefixed byte strings. Deterministic encoding matters because
// CDR/CDA/PoC signatures are computed over the encoded bytes — two
// encoders must produce identical buffers for identical messages.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "util/bytes.hpp"
#include "util/expected.hpp"

namespace tlc {

/// Appends fields to a growing byte buffer.
class ByteWriter {
 public:
  ByteWriter() = default;

  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v);
  /// IEEE-754 bits, big-endian.
  void f64(double v);
  /// u32 length prefix + raw bytes.
  void blob(const Bytes& data);
  /// u32 length prefix + UTF-8 bytes.
  void str(std::string_view text);

  [[nodiscard]] const Bytes& data() const { return buffer_; }
  [[nodiscard]] Bytes take() { return std::move(buffer_); }
  [[nodiscard]] std::size_t size() const { return buffer_.size(); }

 private:
  Bytes buffer_;
};

/// Reads fields back; every accessor fails cleanly on truncation.
class ByteReader {
 public:
  explicit ByteReader(const Bytes& data) : data_(data) {}

  [[nodiscard]] Expected<std::uint8_t> u8();
  [[nodiscard]] Expected<std::uint16_t> u16();
  [[nodiscard]] Expected<std::uint32_t> u32();
  [[nodiscard]] Expected<std::uint64_t> u64();
  [[nodiscard]] Expected<std::int64_t> i64();
  [[nodiscard]] Expected<double> f64();
  [[nodiscard]] Expected<Bytes> blob();
  [[nodiscard]] Expected<std::string> str();

  /// Bytes not yet consumed.
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool exhausted() const { return remaining() == 0; }

 private:
  [[nodiscard]] bool need(std::size_t n) const { return remaining() >= n; }

  const Bytes& data_;
  std::size_t pos_ = 0;
};

}  // namespace tlc
