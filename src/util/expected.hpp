// Minimal expected<T, std::string> substitute.
//
// The toolchain (GCC 12, C++20) predates std::expected, and exceptions are
// a poor fit for protocol parsing where failure is a normal outcome
// (malformed message, bad signature). `Expected<T>` carries either a value
// or a human-readable error string; `Status` is the void flavour.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace tlc {

/// Error wrapper so `Expected<std::string>` stays unambiguous.
struct Error {
  std::string message;
};

/// Convenience factory: `return Err("bad length");`
[[nodiscard]] inline Error Err(std::string message) {
  return Error{std::move(message)};
}

/// Class-level [[nodiscard]]: any call that drops an Expected return is
/// a compile error under -Werror, even if the function declaration
/// forgot its own annotation (tlclint's nodiscard-expected rule keeps
/// declarations annotated too, for readers and for pre-C++17 tooling).
template <typename T>
class [[nodiscard]] Expected {
 public:
  Expected(T value) : value_(std::move(value)) {}         // NOLINT(implicit)
  Expected(Error error) : error_(std::move(error.message)) {}  // NOLINT

  [[nodiscard]] bool has_value() const { return value_.has_value(); }
  explicit operator bool() const { return has_value(); }

  [[nodiscard]] const T& value() const& {
    assert(has_value());
    return *value_;
  }
  [[nodiscard]] T& value() & {
    assert(has_value());
    return *value_;
  }
  [[nodiscard]] T&& value() && {
    assert(has_value());
    return std::move(*value_);
  }
  [[nodiscard]] const T& operator*() const& { return value(); }
  [[nodiscard]] T& operator*() & { return value(); }
  [[nodiscard]] const T* operator->() const { return &value(); }
  [[nodiscard]] T* operator->() { return &value(); }

  /// Error text; only meaningful when !has_value().
  [[nodiscard]] const std::string& error() const {
    assert(!has_value());
    return error_;
  }

  [[nodiscard]] T value_or(T fallback) const {
    return has_value() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  std::string error_;
};

/// Result of an operation with no payload.
class [[nodiscard]] Status {
 public:
  Status() = default;                                  // success
  Status(Error error) : error_(std::move(error.message)) {}  // NOLINT

  [[nodiscard]] bool ok() const { return !error_.has_value(); }
  explicit operator bool() const { return ok(); }
  [[nodiscard]] const std::string& error() const {
    assert(!ok());
    return *error_;
  }

  [[nodiscard]] static Status Ok() { return Status{}; }

 private:
  std::optional<std::string> error_;
};

}  // namespace tlc
