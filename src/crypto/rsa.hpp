// RSA with PKCS#1 v1.5 signatures (SHA-256), from scratch.
//
// This is the "java.security RSA-1024" of the paper's prototype (§6):
// CDR/CDA/PoC messages are signed by the edge app vendor and the cellular
// operator, and the public verifier recovers and checks the digests
// (Algorithm 2). Keys support CRT for ~4x faster signing.
//
// The paper uses RSA-1024 for parity with its prototype; the library
// supports any modulus size >= 512 bits (tests use smaller keys for
// speed, benches use 1024).
#pragma once

#include <cstddef>
#include <memory>
#include <string>

#include "crypto/bignum.hpp"
#include "crypto/montgomery.hpp"
#include "util/bytes.hpp"
#include "util/expected.hpp"
#include "util/rng.hpp"

namespace tlc::crypto {

/// Public half: (n, e). Comparable and serializable so parties can pin
/// each other's keys and verifiers can identify signers.
struct RsaPublicKey {
  BigUInt n;
  BigUInt e;
  /// Cached Montgomery context for n (DESIGN.md §10). Immutable once
  /// built, shared by copies of the key, safe to read from any thread.
  /// Populated by rsa_generate / deserialize / precompute(); verify
  /// falls back to a per-call context when absent.
  std::shared_ptr<const MontgomeryContext> mont_n;

  /// Builds mont_n if absent (no-op when n is unusable, e.g. zero).
  void precompute();

  /// Modulus size in bytes == signature size.
  [[nodiscard]] std::size_t modulus_bytes() const {
    return (n.bit_length() + 7) / 8;
  }

  [[nodiscard]] Bytes serialize() const;
  [[nodiscard]] static Expected<RsaPublicKey> deserialize(const Bytes& data);

  /// SHA-256 over the serialized key; hex-truncated id for logs.
  [[nodiscard]] Bytes fingerprint() const;
  [[nodiscard]] std::string fingerprint_hex() const;

  [[nodiscard]] bool operator==(const RsaPublicKey& o) const {
    return n == o.n && e == o.e;
  }
};

/// Private half, with CRT parameters.
struct RsaPrivateKey {
  BigUInt n;
  BigUInt d;
  // CRT acceleration.
  BigUInt p;
  BigUInt q;
  BigUInt d_p;    // d mod (p-1)
  BigUInt d_q;    // d mod (q-1)
  BigUInt q_inv;  // q^-1 mod p

  /// Cached half-size Montgomery contexts for the CRT sign path (and
  /// mont_n for keys without CRT parameters). Same sharing and thread
  /// safety story as RsaPublicKey::mont_n.
  std::shared_ptr<const MontgomeryContext> mont_p;
  std::shared_ptr<const MontgomeryContext> mont_q;
  std::shared_ptr<const MontgomeryContext> mont_n;

  /// Builds the missing contexts (no-op for unusable moduli).
  void precompute();

  /// Raw RSA private operation m^d mod n via CRT.
  [[nodiscard]] BigUInt private_op(const BigUInt& m) const;
};

struct RsaKeyPair {
  RsaPublicKey public_key;
  RsaPrivateKey private_key;
};

/// Generates a fresh key pair with a modulus of `bits` bits (e = 65537).
/// Deterministic given the RNG state — tests fix the seed.
[[nodiscard]] RsaKeyPair rsa_generate(std::size_t bits, Rng& rng);

/// EMSA-PKCS1-v1_5 signature over SHA-256(message).
/// Returns modulus_bytes() bytes.
[[nodiscard]] Bytes rsa_sign(const RsaPrivateKey& key, const Bytes& message);

/// Verifies an EMSA-PKCS1-v1_5 / SHA-256 signature. Status with a
/// diagnostic error on failure (bad length, bad padding, digest
/// mismatch).
[[nodiscard]] Status rsa_verify(const RsaPublicKey& key, const Bytes& message,
                                const Bytes& signature);

/// Raw PKCS#1 v1.5 type-2 encryption of a short payload to the public
/// key (used by the optional confidential PoC store, not the signature
/// path). Payload must be <= modulus_bytes() - 11.
[[nodiscard]] Expected<Bytes> rsa_encrypt(const RsaPublicKey& key,
                                          const Bytes& payload, Rng& rng);

/// Inverse of rsa_encrypt.
[[nodiscard]] Expected<Bytes> rsa_decrypt(const RsaPrivateKey& key,
                                          const Bytes& ciphertext);

}  // namespace tlc::crypto
