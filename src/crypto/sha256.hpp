// SHA-256 (FIPS 180-4), implemented from scratch.
//
// Used for message digests inside RSA PKCS#1 v1.5 signatures on CDR, CDA
// and PoC messages, and for key fingerprints. Streaming interface plus a
// one-shot helper.
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.hpp"

namespace tlc::crypto {

inline constexpr std::size_t kSha256DigestSize = 32;

class Sha256 {
 public:
  Sha256();

  /// Absorbs more input. May be called repeatedly.
  void update(const std::uint8_t* data, std::size_t len);
  void update(const Bytes& data);

  /// Finalizes and returns the 32-byte digest. The object must not be
  /// updated afterwards (reset() to reuse).
  [[nodiscard]] Bytes finish();

  /// Restores the initial state.
  void reset();

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
};

/// One-shot digest.
[[nodiscard]] Bytes sha256(const Bytes& data);

}  // namespace tlc::crypto
