// Batched SHA-256 for the streaming ingest hot path (DESIGN.md §16).
//
// The per-message `Sha256` class costs ~1µs per 64-byte input, almost
// all of it in the compression rounds. Hashing a micro-batch of CDR
// leaves one at a time leaves 8-wide vector units idle, so this module
// adds a batch-oriented front end with runtime kernel dispatch:
//
//   * Scalar  — the existing `Sha256` class, one message at a time.
//               Always available; the reference the other kernels are
//               soaked against (bit-identical by test, not by trust).
//   * ShaNi   — x86 SHA extensions, one message at a time but ~10x
//               cheaper per block than scalar rounds.
//   * Avx2x8  — eight-way interleaved compression: eight equal-length
//               messages ride one register file, one SHA-256 round is
//               computed for all eight lanes per instruction sequence.
//
// Dispatch picks the best kernel the host supports; equal-length runs
// of eight go through the wide kernel, stragglers and mixed-length
// inputs fall back to the best single-message kernel. All kernels
// produce FIPS 180-4 SHA-256 — the digests are identical regardless of
// the path taken, which is what lets Merkle roots built on any host
// match bit-for-bit.
#pragma once

#include <cstdint>
#include <vector>

#include "util/bytes.hpp"

namespace tlc::crypto {

enum class Sha256Kernel : std::uint8_t { Scalar = 0, ShaNi = 1, Avx2x8 = 2 };

/// Human-readable kernel name ("scalar", "sha-ni", "avx2-x8").
[[nodiscard]] const char* sha256_kernel_name(Sha256Kernel kernel);

/// The kernel batch hashing currently uses (after dispatch or a force).
[[nodiscard]] Sha256Kernel sha256_batch_kernel();

/// True when the host can run `kernel` at all.
[[nodiscard]] bool sha256_kernel_available(Sha256Kernel kernel);

/// Test/bench hook: pin batch hashing to one kernel. Returns false
/// (and changes nothing) when the host lacks it.
[[nodiscard]] bool sha256_force_kernel(Sha256Kernel kernel);

/// Back to auto-dispatch (the default).
void sha256_reset_kernel();

/// Hashes `count` independent messages: `inputs[i]` is `lens[i]` bytes,
/// digest `i` is written to `out + 32 * i`. Kernels are chosen per run:
/// aligned groups of eight equal-length messages take the wide path.
void sha256_batch(const std::uint8_t* const* inputs, const std::size_t* lens,
                  std::size_t count, std::uint8_t* out);

/// Convenience wrapper over byte vectors.
[[nodiscard]] std::vector<Bytes> sha256_batch(const std::vector<Bytes>& inputs);

}  // namespace tlc::crypto
