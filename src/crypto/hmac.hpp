// HMAC-SHA256 (RFC 2104).
//
// Used to derive deterministic per-message nonces in tests and to
// authenticate trace files; the TLC protocol itself uses RSA signatures.
#pragma once

#include "util/bytes.hpp"

namespace tlc::crypto {

/// HMAC-SHA256 of `message` under `key`. Keys longer than the block size
/// are hashed first, as the RFC specifies.
[[nodiscard]] Bytes hmac_sha256(const Bytes& key, const Bytes& message);

}  // namespace tlc::crypto
