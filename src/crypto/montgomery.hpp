// Montgomery-form modular arithmetic: the division-free fast path
// behind RSA sign/verify and Miller-Rabin (DESIGN.md §10).
//
// A `MontgomeryContext` precomputes, per odd modulus n: the limb vector
// of n, n' = -n^{-1} mod 2^64, and R^2 mod n (R = 2^(64k) for k limbs).
// Internally the context packs BigUInt's base-2^32 limbs into base-2^64
// words so every CIOS step is one 64x64->128 hardware multiply; with
// those, Montgomery multiplication replaces every multiply-then-divide
// of the schoolbook path with one fused interleaved pass, and modular
// exponentiation becomes:
//
//   * `mod_exp`        — fixed-window (w up to 5) for dense private
//                        exponents (CRT halves d_p / d_q, Miller-Rabin
//                        witnesses);
//   * `mod_exp_sparse` — plain left-to-right square-and-multiply, which
//                        is optimal for sparse public exponents
//                        (e = 65537 costs 16 squares + 1 multiply; a
//                        window table would cost 30 multiplies just to
//                        build).
//
// Contexts are immutable after construction, so a context cached inside
// a key (rsa.hpp) is safe to share across threads — the fleet hands
// `RsaKeyCache` entries to every worker concurrently.
#pragma once

#include <cstdint>
#include <vector>

#include "crypto/bignum.hpp"
#include "util/expected.hpp"

namespace tlc::crypto {

class MontgomeryContext {
 public:
  /// A residue in Montgomery form: exactly `limb_count()` base-2^64
  /// limbs, least significant first. Buffers are reused across the
  /// exponentiation inner loops — no per-multiply allocation.
  using Rep = std::vector<std::uint64_t>;

  /// Builds the context for `modulus`; the modulus must be odd and > 1
  /// (Montgomery reduction needs gcd(n, 2^64) == 1).
  [[nodiscard]] static Expected<MontgomeryContext> create(
      const BigUInt& modulus);

  [[nodiscard]] const BigUInt& modulus() const { return modulus_; }
  [[nodiscard]] std::size_t limb_count() const { return n_.size(); }

  /// x * R mod n. `x` is reduced mod n first if needed.
  [[nodiscard]] Rep to_mont(const BigUInt& x) const;
  /// a * R^-1 mod n (leaves Montgomery form).
  [[nodiscard]] BigUInt from_mont(const Rep& a) const;

  /// out = a * b * R^-1 mod n (CIOS). `scratch` must outlive the call
  /// and is resized as needed; passing the same vector to consecutive
  /// calls amortizes its allocation. `out` may alias `a` or `b`.
  void mul(const Rep& a, const Rep& b, Rep& out, Rep& scratch) const;
  /// out = a^2 * R^-1 mod n. Same contract as `mul`.
  void square(const Rep& a, Rep& out, Rep& scratch) const;

  /// base^exponent mod n, fixed-window over Montgomery multiplication.
  /// Matches BigUInt::mod_exp_slow bit-for-bit on every input.
  [[nodiscard]] BigUInt mod_exp(const BigUInt& base,
                                const BigUInt& exponent) const;

  /// base^exponent mod n, left-to-right square-and-multiply: multiplies
  /// only on set exponent bits, so it wins for sparse exponents like
  /// the RSA public exponent 65537.
  [[nodiscard]] BigUInt mod_exp_sparse(const BigUInt& base,
                                       const BigUInt& exponent) const;

 private:
  MontgomeryContext() = default;

  /// Montgomery representation of 1 (= R mod n).
  [[nodiscard]] const Rep& one() const { return r_mod_n_; }

  /// Packs a value known to be < n into `limb_count()` base-2^64 limbs.
  [[nodiscard]] Rep pack(const BigUInt& x) const;

  BigUInt modulus_;
  std::vector<std::uint64_t> n_;  // modulus limbs (base 2^64), length k
  std::uint64_t n_prime_ = 0;     // -n^{-1} mod 2^64
  Rep r_mod_n_;                   // R mod n (Montgomery form of 1)
  Rep r2_mod_n_;                  // R^2 mod n (to_mont multiplier)
};

}  // namespace tlc::crypto
