#include "crypto/montgomery.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace tlc::crypto {
namespace {

using DoubleLimb = unsigned __int128;

/// -n0^{-1} mod 2^64 for odd n0, by Newton-Hensel lifting: x = n0 is
/// an inverse mod 2^3 (odd squares are 1 mod 8), and every iteration
/// doubles the number of correct low bits, so five reach 96 >= 64.
std::uint64_t neg_inverse_u64(std::uint64_t n0) {
  std::uint64_t x = n0;
  for (int i = 0; i < 5; ++i) {
    x *= 2u - n0 * x;
  }
  return ~x + 1u;
}

/// Packs base-2^32 BigUInt limbs into `k` base-2^64 words.
MontgomeryContext::Rep pack_limbs(const std::vector<std::uint32_t>& limbs32,
                                  std::size_t k) {
  MontgomeryContext::Rep out(k, 0);
  for (std::size_t i = 0; i < limbs32.size(); ++i) {
    out[i / 2] |= static_cast<std::uint64_t>(limbs32[i]) << (32 * (i % 2));
  }
  return out;
}

/// Inverse of pack_limbs (trailing zero halves are fine: BigUInt
/// normalizes on construction).
std::vector<std::uint32_t> unpack_limbs(const MontgomeryContext::Rep& limbs64) {
  std::vector<std::uint32_t> out(limbs64.size() * 2);
  for (std::size_t i = 0; i < limbs64.size(); ++i) {
    out[2 * i] = static_cast<std::uint32_t>(limbs64[i]);
    out[2 * i + 1] = static_cast<std::uint32_t>(limbs64[i] >> 32);
  }
  return out;
}

}  // namespace

Expected<MontgomeryContext> MontgomeryContext::create(const BigUInt& modulus) {
  if (modulus.is_zero() || !modulus.is_odd()) {
    return Err("montgomery: modulus must be odd and non-zero");
  }
  if (modulus == BigUInt{1}) {
    return Err("montgomery: modulus must exceed 1");
  }
  MontgomeryContext ctx;
  ctx.modulus_ = modulus;
  const std::size_t k = (modulus.limbs().size() + 1) / 2;
  ctx.n_ = pack_limbs(modulus.limbs(), k);
  ctx.n_prime_ = neg_inverse_u64(ctx.n_[0]);
  // R = 2^(64k). One Algorithm D division each for R mod n and
  // R^2 mod n at construction buys a division-free inner loop forever.
  const BigUInt r = (BigUInt{1} << (64 * k)) % modulus;
  const BigUInt r2 = (r * r) % modulus;
  ctx.r_mod_n_ = pack_limbs(r.limbs(), k);
  ctx.r2_mod_n_ = pack_limbs(r2.limbs(), k);
  return ctx;
}

MontgomeryContext::Rep MontgomeryContext::pack(const BigUInt& x) const {
  assert(x < modulus_);
  return pack_limbs(x.limbs(), n_.size());
}

void MontgomeryContext::mul(const Rep& a, const Rep& b, Rep& out,
                            Rep& scratch) const {
  const std::size_t k = n_.size();
  assert(a.size() == k && b.size() == k);
  // CIOS (Koc/Acar/Kaliski): interleave the multiply limbs with the
  // reduction limbs so the running total t never exceeds k + 2 limbs.
  scratch.assign(k + 2, 0);
  std::uint64_t* t = scratch.data();
  for (std::size_t i = 0; i < k; ++i) {
    const std::uint64_t ai = a[i];
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < k; ++j) {
      const DoubleLimb cur =
          t[j] + static_cast<DoubleLimb>(ai) * b[j] + carry;
      t[j] = static_cast<std::uint64_t>(cur);
      carry = static_cast<std::uint64_t>(cur >> 64);
    }
    const DoubleLimb top = static_cast<DoubleLimb>(t[k]) + carry;
    t[k] = static_cast<std::uint64_t>(top);
    t[k + 1] = static_cast<std::uint64_t>(top >> 64);

    const std::uint64_t m = t[0] * n_prime_;
    DoubleLimb cur = t[0] + static_cast<DoubleLimb>(m) * n_[0];
    carry = static_cast<std::uint64_t>(cur >> 64);
    for (std::size_t j = 1; j < k; ++j) {
      cur = t[j] + static_cast<DoubleLimb>(m) * n_[j] + carry;
      t[j - 1] = static_cast<std::uint64_t>(cur);
      carry = static_cast<std::uint64_t>(cur >> 64);
    }
    cur = static_cast<DoubleLimb>(t[k]) + carry;
    t[k - 1] = static_cast<std::uint64_t>(cur);
    t[k] = t[k + 1] + static_cast<std::uint64_t>(cur >> 64);
    t[k + 1] = 0;
  }

  // t is in [0, 2n): one conditional subtraction finishes the reduce.
  bool subtract = t[k] != 0;
  if (!subtract) {
    subtract = true;
    for (std::size_t i = k; i-- > 0;) {
      if (t[i] != n_[i]) {
        subtract = t[i] > n_[i];
        break;
      }
    }
  }
  out.resize(k);
  if (subtract) {
    std::uint64_t borrow = 0;
    for (std::size_t i = 0; i < k; ++i) {
      const DoubleLimb diff =
          static_cast<DoubleLimb>(t[i]) - n_[i] - borrow;
      out[i] = static_cast<std::uint64_t>(diff);
      borrow = static_cast<std::uint64_t>(diff >> 64) & 1u;
    }
  } else {
    std::copy(t, t + k, out.begin());
  }
}

void MontgomeryContext::square(const Rep& a, Rep& out, Rep& scratch) const {
  mul(a, a, out, scratch);
}

MontgomeryContext::Rep MontgomeryContext::to_mont(const BigUInt& x) const {
  const Rep xr = (x < modulus_) ? pack(x) : pack(x % modulus_);
  Rep out;
  Rep scratch;
  mul(xr, r2_mod_n_, out, scratch);
  return out;
}

BigUInt MontgomeryContext::from_mont(const Rep& a) const {
  Rep one_literal(n_.size(), 0);
  one_literal[0] = 1;
  Rep out;
  Rep scratch;
  mul(a, one_literal, out, scratch);
  return BigUInt::from_limbs(unpack_limbs(out));
}

BigUInt MontgomeryContext::mod_exp(const BigUInt& base,
                                   const BigUInt& exponent) const {
  const std::size_t bits = exponent.bit_length();
  if (bits == 0) return BigUInt{1};  // modulus > 1, so 1 mod n == 1
  const Rep base_mont = to_mont(base);

  // Window width by exponent size: squarings dominate either way, the
  // window only trades table-build multiplies against scan multiplies.
  std::size_t w = 1;
  if (bits >= 512) {
    w = 5;
  } else if (bits >= 128) {
    w = 4;
  } else if (bits >= 24) {
    w = 3;
  } else if (bits >= 8) {
    w = 2;
  }

  Rep scratch;
  std::vector<Rep> table(std::size_t{1} << w);
  table[0] = one();
  table[1] = base_mont;
  for (std::size_t i = 2; i < table.size(); ++i) {
    mul(table[i - 1], base_mont, table[i], scratch);
  }

  const std::size_t windows = (bits + w - 1) / w;
  Rep acc;
  for (std::size_t win = windows; win-- > 0;) {
    std::size_t digit = 0;
    for (std::size_t bit = w; bit-- > 0;) {
      digit = (digit << 1) | (exponent.bit(win * w + bit) ? 1u : 0u);
    }
    if (win + 1 == windows) {
      // Top window holds the exponent's leading set bit, so digit != 0.
      acc = table[digit];
      continue;
    }
    for (std::size_t s = 0; s < w; ++s) square(acc, acc, scratch);
    if (digit != 0) mul(acc, table[digit], acc, scratch);
  }
  return from_mont(acc);
}

BigUInt MontgomeryContext::mod_exp_sparse(const BigUInt& base,
                                          const BigUInt& exponent) const {
  const std::size_t bits = exponent.bit_length();
  if (bits == 0) return BigUInt{1};
  const Rep base_mont = to_mont(base);
  Rep acc = base_mont;
  Rep scratch;
  for (std::size_t i = bits - 1; i-- > 0;) {
    square(acc, acc, scratch);
    if (exponent.bit(i)) mul(acc, base_mont, acc, scratch);
  }
  return from_mont(acc);
}

}  // namespace tlc::crypto
