#include "crypto/prime.hpp"

#include <array>
#include <cassert>

#include "crypto/montgomery.hpp"

namespace tlc::crypto {
namespace {

// Trial-division sieve: all primes below 1000.
constexpr std::array<std::uint32_t, 168> kSmallPrimes = {
    2,   3,   5,   7,   11,  13,  17,  19,  23,  29,  31,  37,  41,  43,
    47,  53,  59,  61,  67,  71,  73,  79,  83,  89,  97,  101, 103, 107,
    109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181,
    191, 193, 197, 199, 211, 223, 227, 229, 233, 239, 241, 251, 257, 263,
    269, 271, 277, 281, 283, 293, 307, 311, 313, 317, 331, 337, 347, 349,
    353, 359, 367, 373, 379, 383, 389, 397, 401, 409, 419, 421, 431, 433,
    439, 443, 449, 457, 461, 463, 467, 479, 487, 491, 499, 503, 509, 521,
    523, 541, 547, 557, 563, 569, 571, 577, 587, 593, 599, 601, 607, 613,
    617, 619, 631, 641, 643, 647, 653, 659, 661, 673, 677, 683, 691, 701,
    709, 719, 727, 733, 739, 743, 751, 757, 761, 769, 773, 787, 797, 809,
    811, 821, 823, 827, 829, 839, 853, 857, 859, 863, 877, 881, 883, 887,
    907, 911, 919, 929, 937, 941, 947, 953, 967, 971, 977, 983, 991, 997};

/// Trial-division classification: IsSmallPrime when n equals a sieve
/// entry, HasSmallFactor when one divides it, Unknown otherwise.
/// Single-limb remainders (mod_u32) keep this allocation-free — it runs
/// on every keygen candidate before any Miller-Rabin round.
enum class SieveResult : std::uint8_t { Unknown, IsSmallPrime, HasSmallFactor };

SieveResult sieve_check(const BigUInt& n) {
  const bool single_limb = n.bit_length() <= 32;
  const std::uint64_t low = n.low_u64();
  for (std::uint32_t p : kSmallPrimes) {
    if (single_limb && low == p) return SieveResult::IsSmallPrime;
    if (n.mod_u32(p) == 0) return SieveResult::HasSmallFactor;
  }
  return SieveResult::Unknown;
}

}  // namespace

bool is_probable_prime(const BigUInt& n, Rng& rng, std::size_t rounds) {
  const BigUInt one{1};
  const BigUInt two{2};
  if (n < two) return false;
  if (n == two) return true;
  if (!n.is_odd()) return false;
  switch (sieve_check(n)) {
    case SieveResult::IsSmallPrime:
      return true;
    case SieveResult::HasSmallFactor:
      return false;
    case SieveResult::Unknown:
      break;
  }

  // Write n - 1 = d * 2^r with d odd.
  const BigUInt n_minus_1 = n - one;
  BigUInt d = n_minus_1;
  std::size_t r = 0;
  while (!d.is_odd()) {
    d = d >> 1;
    ++r;
  }

  // One Montgomery context per candidate serves every witness round:
  // the a^d exponentiations and the squaring chain below all run
  // division-free. Values stay in Montgomery form through the chain
  // (the form is a bijection, so comparing against mont(n-1) is exact).
  auto ctx = MontgomeryContext::create(n);
  assert(ctx);  // n is odd and > 2 here
  const MontgomeryContext::Rep minus_one_mont = ctx->to_mont(n_minus_1);
  MontgomeryContext::Rep x_mont;
  MontgomeryContext::Rep scratch;

  const BigUInt n_minus_3 = n - BigUInt{3};
  for (std::size_t round = 0; round < rounds; ++round) {
    // Random base a in [2, n - 2].
    const BigUInt a = BigUInt::random_below(n_minus_3, rng) + two;
    const BigUInt x = ctx->mod_exp(a, d);
    if (x == one || x == n_minus_1) continue;
    x_mont = ctx->to_mont(x);
    bool composite = true;
    for (std::size_t i = 0; i + 1 < r; ++i) {
      ctx->square(x_mont, x_mont, scratch);
      if (x_mont == minus_one_mont) {
        composite = false;
        break;
      }
    }
    if (composite) return false;
  }
  return true;
}

BigUInt generate_prime(std::size_t bits, Rng& rng,
                       std::uint64_t require_coprime_e) {
  const BigUInt e{require_coprime_e};
  const BigUInt one{1};
  for (;;) {
    BigUInt candidate = BigUInt::random_with_bits(bits, rng);
    // Force odd.
    if (!candidate.is_odd()) {
      candidate = candidate + one;
    }
    if (sieve_check(candidate) == SieveResult::HasSmallFactor) continue;
    if (require_coprime_e != 0) {
      const BigUInt p_minus_1 = candidate - one;
      if (BigUInt::gcd(p_minus_1, e) != one) continue;
    }
    if (is_probable_prime(candidate, rng)) {
      return candidate;
    }
  }
}

}  // namespace tlc::crypto
