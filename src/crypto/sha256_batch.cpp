#include "crypto/sha256_batch.hpp"

#include <atomic>
#include <cstring>

#include "crypto/sha256.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define TLC_SHA256_X86 1
#endif

namespace tlc::crypto {
namespace {

constexpr std::array<std::uint32_t, 64> kK = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

constexpr std::array<std::uint32_t, 8> kIv = {
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
    0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};

/// Builds the padded tail (remainder + 0x80 + zeros + 64-bit BE bit
/// length) into `tail` (128 bytes). Returns the tail block count (1 or
/// 2); the caller has already compressed the len/64 full blocks.
std::size_t build_tail(const std::uint8_t* data, std::size_t len,
                       std::uint8_t tail[128]) {
  const std::size_t rem = len % 64;
  std::memset(tail, 0, 128);
  std::memcpy(tail, data + (len - rem), rem);
  tail[rem] = 0x80;
  const std::size_t blocks = rem < 56 ? 1 : 2;
  const std::uint64_t bits = static_cast<std::uint64_t>(len) * 8;
  std::uint8_t* length_bytes = tail + blocks * 64 - 8;
  for (int i = 0; i < 8; ++i) {
    length_bytes[i] = static_cast<std::uint8_t>(bits >> (56 - 8 * i));
  }
  return blocks;
}

void store_digest_be(const std::uint32_t state[8], std::uint8_t* out) {
  for (std::size_t i = 0; i < 8; ++i) {
    out[4 * i + 0] = static_cast<std::uint8_t>(state[i] >> 24);
    out[4 * i + 1] = static_cast<std::uint8_t>(state[i] >> 16);
    out[4 * i + 2] = static_cast<std::uint8_t>(state[i] >> 8);
    out[4 * i + 3] = static_cast<std::uint8_t>(state[i]);
  }
}

/// Reference path: the streaming class itself, so "scalar batch" is the
/// existing KAT-pinned implementation by construction.
void hash1_scalar(const std::uint8_t* data, std::size_t len,
                  std::uint8_t* out) {
  Sha256 h;
  h.update(data, len);
  const Bytes digest = h.finish();
  std::memcpy(out, digest.data(), kSha256DigestSize);
}

#ifdef TLC_SHA256_X86

// ---- SHA-NI single-message kernel -------------------------------------
//
// The standard ABEF/CDGH register arrangement for the x86 SHA
// extensions; message-schedule recurrence W[t] = msg2(msg1(W[t-16],
// W[t-12]) + W[t-7..t-4], W[t-4..t-1]) expressed with the alignr trick.

__attribute__((target("sha,sse4.1,ssse3"))) __m128i k4(int group) {
  return _mm_set_epi32(
      static_cast<int>(kK[static_cast<std::size_t>(group) * 4 + 3]),
      static_cast<int>(kK[static_cast<std::size_t>(group) * 4 + 2]),
      static_cast<int>(kK[static_cast<std::size_t>(group) * 4 + 1]),
      static_cast<int>(kK[static_cast<std::size_t>(group) * 4 + 0]));
}

__attribute__((target("sha,sse4.1,ssse3"))) void compress_shani(
    std::uint32_t state[8], const std::uint8_t* data, std::size_t nblocks) {
  const __m128i kMask =
      _mm_set_epi64x(static_cast<long long>(0x0c0d0e0f08090a0bULL),
                     static_cast<long long>(0x0405060700010203ULL));

  __m128i tmp = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[0]));
  __m128i state1 =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[4]));
  tmp = _mm_shuffle_epi32(tmp, 0xB1);        // CDAB
  state1 = _mm_shuffle_epi32(state1, 0x1B);  // EFGH
  __m128i state0 = _mm_alignr_epi8(tmp, state1, 8);   // ABEF
  state1 = _mm_blend_epi16(state1, tmp, 0xF0);        // CDGH

  while (nblocks-- > 0) {
    const __m128i abef_save = state0;
    const __m128i cdgh_save = state1;

    __m128i m0 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 0)), kMask);
    __m128i m1 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 16)), kMask);
    __m128i m2 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 32)), kMask);
    __m128i m3 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 48)), kMask);

    __m128i msg = _mm_add_epi32(m0, k4(0));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    state0 = _mm_sha256rnds2_epu32(state0, state1, _mm_shuffle_epi32(msg, 0x0E));
    msg = _mm_add_epi32(m1, k4(1));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    state0 = _mm_sha256rnds2_epu32(state0, state1, _mm_shuffle_epi32(msg, 0x0E));
    msg = _mm_add_epi32(m2, k4(2));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    state0 = _mm_sha256rnds2_epu32(state0, state1, _mm_shuffle_epi32(msg, 0x0E));
    msg = _mm_add_epi32(m3, k4(3));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    state0 = _mm_sha256rnds2_epu32(state0, state1, _mm_shuffle_epi32(msg, 0x0E));

    for (int g = 4; g < 16; ++g) {
      const __m128i w = _mm_sha256msg2_epu32(
          _mm_add_epi32(_mm_sha256msg1_epu32(m0, m1),
                        _mm_alignr_epi8(m3, m2, 4)),
          m3);
      msg = _mm_add_epi32(w, k4(g));
      state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
      state0 =
          _mm_sha256rnds2_epu32(state0, state1, _mm_shuffle_epi32(msg, 0x0E));
      m0 = m1;
      m1 = m2;
      m2 = m3;
      m3 = w;
    }

    state0 = _mm_add_epi32(state0, abef_save);
    state1 = _mm_add_epi32(state1, cdgh_save);
    data += 64;
  }

  tmp = _mm_shuffle_epi32(state0, 0x1B);     // FEBA
  state1 = _mm_shuffle_epi32(state1, 0xB1);  // DCHG
  state0 = _mm_blend_epi16(tmp, state1, 0xF0);  // DCBA
  state1 = _mm_alignr_epi8(state1, tmp, 8);     // HGFE
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[0]), state0);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[4]), state1);
}

void hash1_shani(const std::uint8_t* data, std::size_t len,
                 std::uint8_t* out) {
  std::uint32_t state[8];
  std::memcpy(state, kIv.data(), sizeof(state));
  compress_shani(state, data, len / 64);
  std::uint8_t tail[128];
  const std::size_t tail_blocks = build_tail(data, len, tail);
  compress_shani(state, tail, tail_blocks);
  store_digest_be(state, out);
}

// ---- AVX2 eight-way interleaved kernel --------------------------------
//
// Eight equal-length messages, one per 32-bit lane of the ymm register
// file; every SHA-256 round executes once for all eight lanes. State
// layout is word-major: state[w][lane] so each word row loads straight
// into one vector.

__attribute__((target("avx2"), always_inline)) inline __m256i rotr32(
    __m256i x, int n) {
  return _mm256_or_si256(_mm256_srli_epi32(x, n), _mm256_slli_epi32(x, 32 - n));
}

__attribute__((target("avx2"))) void compress_avx2_x8(
    std::uint32_t state[8][8], const std::uint8_t* const lanes[8],
    std::size_t nblocks) {
  // Per-word byte swap: big-endian message words to native lanes.
  const __m256i kSwap = _mm256_setr_epi8(
      3, 2, 1, 0, 7, 6, 5, 4, 11, 10, 9, 8, 15, 14, 13, 12,  //
      3, 2, 1, 0, 7, 6, 5, 4, 11, 10, 9, 8, 15, 14, 13, 12);

  __m256i a = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(state[0]));
  __m256i b = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(state[1]));
  __m256i c = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(state[2]));
  __m256i d = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(state[3]));
  __m256i e = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(state[4]));
  __m256i f = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(state[5]));
  __m256i g = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(state[6]));
  __m256i h = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(state[7]));

  for (std::size_t block = 0; block < nblocks; ++block) {
    const std::size_t off = block * 64;
    __m256i w[16];
    for (int t = 0; t < 16; ++t) {
      std::uint32_t lane_words[8];
      for (int lane = 0; lane < 8; ++lane) {
        std::memcpy(&lane_words[lane],
                    lanes[lane] + off + static_cast<std::size_t>(4 * t), 4);
      }
      w[t] = _mm256_shuffle_epi8(
          _mm256_set_epi32(
              static_cast<int>(lane_words[7]), static_cast<int>(lane_words[6]),
              static_cast<int>(lane_words[5]), static_cast<int>(lane_words[4]),
              static_cast<int>(lane_words[3]), static_cast<int>(lane_words[2]),
              static_cast<int>(lane_words[1]), static_cast<int>(lane_words[0])),
          kSwap);
    }

    const __m256i a0 = a, b0 = b, c0 = c, d0 = d;
    const __m256i e0 = e, f0 = f, g0 = g, h0 = h;

    for (int t = 0; t < 64; ++t) {
      __m256i wt;
      if (t < 16) {
        wt = w[t];
      } else {
        const __m256i w15 = w[(t - 15) & 15];
        const __m256i w2 = w[(t - 2) & 15];
        const __m256i s0 = _mm256_xor_si256(
            _mm256_xor_si256(rotr32(w15, 7), rotr32(w15, 18)),
            _mm256_srli_epi32(w15, 3));
        const __m256i s1 = _mm256_xor_si256(
            _mm256_xor_si256(rotr32(w2, 17), rotr32(w2, 19)),
            _mm256_srli_epi32(w2, 10));
        wt = _mm256_add_epi32(
            _mm256_add_epi32(w[(t - 16) & 15], s0),
            _mm256_add_epi32(w[(t - 7) & 15], s1));
        w[t & 15] = wt;
      }
      const __m256i big_s1 = _mm256_xor_si256(
          _mm256_xor_si256(rotr32(e, 6), rotr32(e, 11)), rotr32(e, 25));
      const __m256i ch =
          _mm256_xor_si256(_mm256_and_si256(e, f), _mm256_andnot_si256(e, g));
      const __m256i t1 = _mm256_add_epi32(
          _mm256_add_epi32(_mm256_add_epi32(h, big_s1), ch),
          _mm256_add_epi32(
              _mm256_set1_epi32(static_cast<int>(kK[static_cast<std::size_t>(t)])),
              wt));
      const __m256i big_s0 = _mm256_xor_si256(
          _mm256_xor_si256(rotr32(a, 2), rotr32(a, 13)), rotr32(a, 22));
      const __m256i maj = _mm256_xor_si256(
          _mm256_xor_si256(_mm256_and_si256(a, b), _mm256_and_si256(a, c)),
          _mm256_and_si256(b, c));
      const __m256i t2 = _mm256_add_epi32(big_s0, maj);
      h = g;
      g = f;
      f = e;
      e = _mm256_add_epi32(d, t1);
      d = c;
      c = b;
      b = a;
      a = _mm256_add_epi32(t1, t2);
    }

    a = _mm256_add_epi32(a, a0);
    b = _mm256_add_epi32(b, b0);
    c = _mm256_add_epi32(c, c0);
    d = _mm256_add_epi32(d, d0);
    e = _mm256_add_epi32(e, e0);
    f = _mm256_add_epi32(f, f0);
    g = _mm256_add_epi32(g, g0);
    h = _mm256_add_epi32(h, h0);
  }

  _mm256_storeu_si256(reinterpret_cast<__m256i*>(state[0]), a);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(state[1]), b);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(state[2]), c);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(state[3]), d);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(state[4]), e);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(state[5]), f);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(state[6]), g);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(state[7]), h);
}

/// Hashes eight equal-length messages through the wide kernel: full
/// blocks straight from the inputs, then every lane's (identically
/// shaped) padded tail.
void hash8_avx2(const std::uint8_t* const inputs[8], std::size_t len,
                std::uint8_t* out) {
  std::uint32_t state[8][8];
  for (std::size_t word = 0; word < 8; ++word) {
    for (std::size_t lane = 0; lane < 8; ++lane) {
      state[word][lane] = kIv[word];
    }
  }

  compress_avx2_x8(state, inputs, len / 64);

  std::uint8_t tails[8][128];
  const std::uint8_t* tail_ptrs[8];
  std::size_t tail_blocks = 0;
  for (int lane = 0; lane < 8; ++lane) {
    tail_blocks = build_tail(inputs[lane], len, tails[lane]);
    tail_ptrs[lane] = tails[lane];
  }
  compress_avx2_x8(state, tail_ptrs, tail_blocks);

  for (std::size_t lane = 0; lane < 8; ++lane) {
    std::uint32_t digest_words[8];
    for (std::size_t word = 0; word < 8; ++word) {
      digest_words[word] = state[word][lane];
    }
    store_digest_be(digest_words, out + 32 * lane);
  }
}

#endif  // TLC_SHA256_X86

bool kernel_available(Sha256Kernel kernel) {
  switch (kernel) {
    case Sha256Kernel::Scalar:
      return true;
#ifdef TLC_SHA256_X86
    case Sha256Kernel::ShaNi:
      __builtin_cpu_init();
      return __builtin_cpu_supports("sha") != 0 &&
             __builtin_cpu_supports("sse4.1") != 0 &&
             __builtin_cpu_supports("ssse3") != 0;
    case Sha256Kernel::Avx2x8:
      __builtin_cpu_init();
      return __builtin_cpu_supports("avx2") != 0;
#else
    case Sha256Kernel::ShaNi:
    case Sha256Kernel::Avx2x8:
      return false;
#endif
  }
  return false;
}

Sha256Kernel detect_kernel() {
  if (kernel_available(Sha256Kernel::Avx2x8)) return Sha256Kernel::Avx2x8;
  if (kernel_available(Sha256Kernel::ShaNi)) return Sha256Kernel::ShaNi;
  return Sha256Kernel::Scalar;
}

/// -1 = auto-dispatch; otherwise the forced kernel's enum value.
std::atomic<int> g_forced{-1};

Sha256Kernel active_kernel() {
  const int forced = g_forced.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<Sha256Kernel>(forced);
  static const Sha256Kernel detected = detect_kernel();
  return detected;
}

/// Best single-message path the active kernel allows. A forced kernel
/// is honoured strictly (forcing scalar must mean scalar everywhere);
/// auto-dispatched Avx2x8 sends stragglers through SHA-NI when the
/// host has it.
void hash1(Sha256Kernel kernel, bool forced, const std::uint8_t* data,
           std::size_t len, std::uint8_t* out) {
#ifdef TLC_SHA256_X86
  if (kernel == Sha256Kernel::ShaNi ||
      (!forced && kernel == Sha256Kernel::Avx2x8 &&
       kernel_available(Sha256Kernel::ShaNi))) {
    hash1_shani(data, len, out);
    return;
  }
#else
  (void)forced;
#endif
  (void)kernel;
  hash1_scalar(data, len, out);
}

}  // namespace

const char* sha256_kernel_name(Sha256Kernel kernel) {
  switch (kernel) {
    case Sha256Kernel::Scalar:
      return "scalar";
    case Sha256Kernel::ShaNi:
      return "sha-ni";
    case Sha256Kernel::Avx2x8:
      return "avx2-x8";
  }
  return "unknown";
}

Sha256Kernel sha256_batch_kernel() { return active_kernel(); }

bool sha256_kernel_available(Sha256Kernel kernel) {
  return kernel_available(kernel);
}

bool sha256_force_kernel(Sha256Kernel kernel) {
  if (!kernel_available(kernel)) return false;
  g_forced.store(static_cast<int>(kernel), std::memory_order_relaxed);
  return true;
}

void sha256_reset_kernel() {
  g_forced.store(-1, std::memory_order_relaxed);
}

void sha256_batch(const std::uint8_t* const* inputs, const std::size_t* lens,
                  std::size_t count, std::uint8_t* out) {
  const Sha256Kernel kernel = active_kernel();
  const bool forced = g_forced.load(std::memory_order_relaxed) >= 0;
  std::size_t i = 0;
#ifdef TLC_SHA256_X86
  if (kernel == Sha256Kernel::Avx2x8) {
    while (i + 8 <= count) {
      bool same = true;
      for (std::size_t lane = 1; lane < 8; ++lane) {
        same = same && lens[i + lane] == lens[i];
      }
      if (!same) {
        hash1(kernel, forced, inputs[i], lens[i], out + 32 * i);
        ++i;
        continue;
      }
      hash8_avx2(inputs + i, lens[i], out + 32 * i);
      i += 8;
    }
  }
#endif
  for (; i < count; ++i) {
    hash1(kernel, forced, inputs[i], lens[i], out + 32 * i);
  }
}

std::vector<Bytes> sha256_batch(const std::vector<Bytes>& inputs) {
  std::vector<const std::uint8_t*> ptrs(inputs.size());
  std::vector<std::size_t> lens(inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    ptrs[i] = inputs[i].data();
    lens[i] = inputs[i].size();
  }
  std::vector<std::uint8_t> flat(inputs.size() * kSha256DigestSize);
  sha256_batch(ptrs.data(), lens.data(), inputs.size(), flat.data());
  std::vector<Bytes> digests(inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    digests[i].assign(flat.begin() + static_cast<std::ptrdiff_t>(
                                         i * kSha256DigestSize),
                      flat.begin() + static_cast<std::ptrdiff_t>(
                                         (i + 1) * kSha256DigestSize));
  }
  return digests;
}

}  // namespace tlc::crypto
