#include "crypto/rsa.hpp"

#include <cassert>
#include <utility>

#include "crypto/prime.hpp"
#include "crypto/sha256.hpp"
#include "util/serde.hpp"

namespace tlc::crypto {
namespace {

// DER-encoded DigestInfo prefix for SHA-256 (RFC 8017 §9.2 note 1).
constexpr std::uint8_t kSha256DigestInfoPrefix[] = {
    0x30, 0x31, 0x30, 0x0d, 0x06, 0x09, 0x60, 0x86, 0x48, 0x01,
    0x65, 0x03, 0x04, 0x02, 0x01, 0x05, 0x00, 0x04, 0x20};

/// EMSA-PKCS1-v1_5 encoding of SHA-256(message) into `em_len` bytes:
/// 0x00 0x01 FF..FF 0x00 DigestInfo || H.
Expected<Bytes> emsa_pkcs1_encode(const Bytes& message, std::size_t em_len) {
  const Bytes digest = sha256(message);
  const std::size_t t_len = sizeof(kSha256DigestInfoPrefix) + digest.size();
  if (em_len < t_len + 11) {
    return Err("rsa: modulus too small for SHA-256 DigestInfo");
  }
  Bytes em;
  em.reserve(em_len);
  em.push_back(0x00);
  em.push_back(0x01);
  em.insert(em.end(), em_len - t_len - 3, 0xff);
  em.push_back(0x00);
  em.insert(em.end(), std::begin(kSha256DigestInfoPrefix),
            std::end(kSha256DigestInfoPrefix));
  em.insert(em.end(), digest.begin(), digest.end());
  assert(em.size() == em_len);
  return em;
}

/// Builds a shared Montgomery context for `modulus` into `slot` if the
/// modulus supports one (odd, > 1) and the slot is still empty.
void build_context(const BigUInt& modulus,
                   std::shared_ptr<const MontgomeryContext>& slot) {
  if (slot || modulus.is_zero() || !modulus.is_odd()) return;
  auto ctx = MontgomeryContext::create(modulus);
  if (ctx) {
    slot = std::make_shared<const MontgomeryContext>(std::move(*ctx));
  }
}

}  // namespace

void RsaPublicKey::precompute() { build_context(n, mont_n); }

void RsaPrivateKey::precompute() {
  build_context(p, mont_p);
  build_context(q, mont_q);
  build_context(n, mont_n);
}

// tlclint: codec(rsa_public_key, encode)
Bytes RsaPublicKey::serialize() const {
  ByteWriter writer;
  writer.blob(n.to_bytes());
  writer.blob(e.to_bytes());
  return writer.take();
}

// tlclint: codec(rsa_public_key, decode)
Expected<RsaPublicKey> RsaPublicKey::deserialize(const Bytes& data) {
  ByteReader reader(data);
  auto n_bytes = reader.blob();
  if (!n_bytes) return Err("rsa pubkey: " + n_bytes.error());
  auto e_bytes = reader.blob();
  if (!e_bytes) return Err("rsa pubkey: " + e_bytes.error());
  RsaPublicKey key;
  key.n = BigUInt::from_bytes(*n_bytes);
  key.e = BigUInt::from_bytes(*e_bytes);
  if (key.n.is_zero() || key.e.is_zero()) {
    return Err("rsa pubkey: zero modulus or exponent");
  }
  // Deserialization happens at key-pinning time, never per message —
  // pay for the Montgomery context here so every later verify is free.
  key.precompute();
  return key;
}

Bytes RsaPublicKey::fingerprint() const { return sha256(serialize()); }

std::string RsaPublicKey::fingerprint_hex() const {
  const std::string full = to_hex(fingerprint());
  return full.substr(0, 16);
}

BigUInt RsaPrivateKey::private_op(const BigUInt& m) const {
  if (p.is_zero() || q.is_zero()) {
    // No CRT parameters: full-size exponentiation (cached context when
    // the key was precomputed; mod_exp builds its own otherwise).
    return mont_n ? mont_n->mod_exp(m, d) : m.mod_exp(d, n);
  }
  // CRT: two half-size fixed-window exponentiations (≈4x the work of
  // one at half the width each), through the cached per-prime contexts.
  const BigUInt m1 = mont_p ? mont_p->mod_exp(m, d_p) : (m % p).mod_exp(d_p, p);
  const BigUInt m2 = mont_q ? mont_q->mod_exp(m, d_q) : (m % q).mod_exp(d_q, q);
  // Garner's recombination: h = q_inv * (m1 - m2) mod p (lift m2 into
  // p's residue ring first).
  const BigUInt m2_mod_p = m2 % p;
  BigUInt diff;
  if (m1 >= m2_mod_p) {
    diff = m1 - m2_mod_p;
  } else {
    diff = (m1 + p) - m2_mod_p;
  }
  BigUInt product;
  BigUInt::mul_into(q_inv, diff, product);
  const BigUInt h = product % p;
  BigUInt::mul_into(q, h, product);
  return m2 + product;
}

RsaKeyPair rsa_generate(std::size_t bits, Rng& rng) {
  assert(bits >= 512 && "modulus must be at least 512 bits");
  const BigUInt e{65537};
  const BigUInt one{1};

  for (;;) {
    const std::size_t half = bits / 2;
    BigUInt p = generate_prime(half, rng);
    BigUInt q = generate_prime(bits - half, rng);
    if (p == q) continue;
    if (p < q) std::swap(p, q);  // CRT convention: p > q

    const BigUInt n = p * q;
    if (n.bit_length() != bits) continue;

    const BigUInt p_minus_1 = p - one;
    const BigUInt q_minus_1 = q - one;
    // lambda(n) = lcm(p-1, q-1)
    const BigUInt g = BigUInt::gcd(p_minus_1, q_minus_1);
    const BigUInt lambda = (p_minus_1 / g) * q_minus_1;

    auto d = e.mod_inverse(lambda);
    if (!d) continue;  // gcd(e, lambda) != 1; extremely unlikely

    RsaKeyPair pair;
    pair.public_key.n = n;
    pair.public_key.e = e;
    pair.private_key.n = n;
    pair.private_key.d = *d;
    pair.private_key.p = p;
    pair.private_key.q = q;
    pair.private_key.d_p = *d % p_minus_1;
    pair.private_key.d_q = *d % q_minus_1;
    auto q_inv = q.mod_inverse(p);
    assert(q_inv);  // p, q distinct primes
    pair.private_key.q_inv = *q_inv;
    // Warm the Montgomery caches once here so every sign/verify this
    // key ever performs starts division-free (RsaKeyCache slots are
    // generated once and then shared read-only across fleet workers).
    pair.public_key.precompute();
    pair.private_key.precompute();
    return pair;
  }
}

Bytes rsa_sign(const RsaPrivateKey& key, const Bytes& message) {
  const std::size_t k = (key.n.bit_length() + 7) / 8;
  auto em = emsa_pkcs1_encode(message, k);
  assert(em && "modulus below minimum signing size");
  const BigUInt m = BigUInt::from_bytes(*em);
  const BigUInt s = key.private_op(m);
  auto padded = s.to_bytes_padded(k);
  assert(padded && "RSA result wider than the modulus");
  return std::move(*padded);
}

Status rsa_verify(const RsaPublicKey& key, const Bytes& message,
                  const Bytes& signature) {
  const std::size_t k = key.modulus_bytes();
  if (signature.size() != k) {
    return Err("rsa_verify: signature length mismatch");
  }
  const BigUInt s = BigUInt::from_bytes(signature);
  if (s >= key.n) {
    return Err("rsa_verify: signature out of range");
  }
  // Public exponents are sparse (e = 65537 has two set bits), so the
  // square-always/multiply-on-set-bits path beats a window table; an
  // uncached key builds a throwaway context (two divisions) rather
  // than falling back to division-per-step arithmetic.
  BigUInt m;
  if (key.mont_n) {
    m = key.mont_n->mod_exp_sparse(s, key.e);
  } else if (auto ctx = MontgomeryContext::create(key.n)) {
    m = ctx->mod_exp_sparse(s, key.e);
  } else {
    m = s.mod_exp(key.e, key.n);
  }
  auto recovered = m.to_bytes_padded(k);
  if (!recovered) return Err("rsa_verify: " + recovered.error());
  auto expected = emsa_pkcs1_encode(message, k);
  if (!expected) return Err(expected.error());
  if (!constant_time_equal(*recovered, *expected)) {
    return Err("rsa_verify: digest mismatch");
  }
  return Status::Ok();
}

Expected<Bytes> rsa_encrypt(const RsaPublicKey& key, const Bytes& payload,
                            Rng& rng) {
  const std::size_t k = key.modulus_bytes();
  if (payload.size() + 11 > k) {
    return Err("rsa_encrypt: payload too long for modulus");
  }
  // EME-PKCS1-v1_5: 0x00 0x02 PS(nonzero random) 0x00 M
  Bytes em;
  em.reserve(k);
  em.push_back(0x00);
  em.push_back(0x02);
  const std::size_t pad_len = k - payload.size() - 3;
  for (std::size_t i = 0; i < pad_len; ++i) {
    std::uint8_t b = 0;
    do {
      b = static_cast<std::uint8_t>(rng.next_u64() & 0xff);
    } while (b == 0);
    em.push_back(b);
  }
  em.push_back(0x00);
  em.insert(em.end(), payload.begin(), payload.end());

  const BigUInt m = BigUInt::from_bytes(em);
  const BigUInt c = key.mont_n ? key.mont_n->mod_exp_sparse(m, key.e)
                               : m.mod_exp(key.e, key.n);
  return c.to_bytes_padded(k);
}

Expected<Bytes> rsa_decrypt(const RsaPrivateKey& key, const Bytes& ciphertext) {
  const std::size_t k = (key.n.bit_length() + 7) / 8;
  if (ciphertext.size() != k) {
    return Err("rsa_decrypt: ciphertext length mismatch");
  }
  const BigUInt c = BigUInt::from_bytes(ciphertext);
  if (c >= key.n) {
    return Err("rsa_decrypt: ciphertext out of range");
  }
  const BigUInt m = key.private_op(c);
  auto padded = m.to_bytes_padded(k);
  if (!padded) return Err("rsa_decrypt: " + padded.error());
  const Bytes& em = *padded;
  if (em.size() < 11 || em[0] != 0x00 || em[1] != 0x02) {
    return Err("rsa_decrypt: bad padding header");
  }
  std::size_t separator = 2;
  while (separator < em.size() && em[separator] != 0x00) {
    ++separator;
  }
  if (separator == em.size() || separator < 10) {
    return Err("rsa_decrypt: bad padding body");
  }
  return Bytes(em.begin() + static_cast<std::ptrdiff_t>(separator) + 1,
               em.end());
}

}  // namespace tlc::crypto
