// Arbitrary-precision unsigned integers for RSA.
//
// Little-endian base-2^32 limbs. Implements schoolbook multiplication,
// Knuth Algorithm D division, GCD and the extended Euclidean modular
// inverse. Modular exponentiation dispatches to the Montgomery CIOS
// fast path (crypto/montgomery.hpp) whenever the modulus is odd — the
// division-based square-and-multiply survives as `mod_exp_slow`, the
// reference implementation for even moduli and for the known-answer
// cross-checks in tests.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/bytes.hpp"
#include "util/expected.hpp"
#include "util/rng.hpp"

namespace tlc::crypto {

class BigUInt;

/// Result of BigUInt::divmod.
struct DivMod;

class BigUInt {
 public:
  /// Zero.
  BigUInt() = default;
  /// From a machine word.
  explicit BigUInt(std::uint64_t value);

  /// From big-endian bytes (as found in signatures / key blobs).
  [[nodiscard]] static BigUInt from_bytes(const Bytes& big_endian);
  /// Minimal big-endian encoding (empty for zero).
  [[nodiscard]] Bytes to_bytes() const;
  /// Big-endian encoding zero-padded on the left to exactly `size`
  /// bytes. Errors (instead of aborting) when the value is wider than
  /// `size` — a corrupt blob must not take down a verifier.
  [[nodiscard]] Expected<Bytes> to_bytes_padded(std::size_t size) const;

  /// Raw little-endian limbs (no trailing zero limbs; empty for zero).
  [[nodiscard]] const std::vector<std::uint32_t>& limbs() const {
    return limbs_;
  }
  /// Adopts a little-endian limb vector (trailing zeros are trimmed).
  [[nodiscard]] static BigUInt from_limbs(std::vector<std::uint32_t> limbs);

  /// Uniformly random value with exactly `bits` bits (top bit set).
  [[nodiscard]] static BigUInt random_with_bits(std::size_t bits, Rng& rng);
  /// Uniformly random value in [0, bound).
  [[nodiscard]] static BigUInt random_below(const BigUInt& bound, Rng& rng);

  [[nodiscard]] bool is_zero() const { return limbs_.empty(); }
  [[nodiscard]] bool is_odd() const {
    return !limbs_.empty() && (limbs_[0] & 1u) != 0;
  }
  /// Number of significant bits (0 for zero).
  [[nodiscard]] std::size_t bit_length() const;
  /// Value of bit `i` (false beyond the top).
  [[nodiscard]] bool bit(std::size_t i) const;

  /// Three-way comparison: -1, 0, +1.
  [[nodiscard]] int compare(const BigUInt& other) const;
  [[nodiscard]] bool operator==(const BigUInt& o) const {
    return compare(o) == 0;
  }
  [[nodiscard]] bool operator!=(const BigUInt& o) const {
    return compare(o) != 0;
  }
  [[nodiscard]] bool operator<(const BigUInt& o) const {
    return compare(o) < 0;
  }
  [[nodiscard]] bool operator<=(const BigUInt& o) const {
    return compare(o) <= 0;
  }
  [[nodiscard]] bool operator>(const BigUInt& o) const {
    return compare(o) > 0;
  }
  [[nodiscard]] bool operator>=(const BigUInt& o) const {
    return compare(o) >= 0;
  }

  [[nodiscard]] BigUInt operator+(const BigUInt& o) const;
  /// Requires *this >= o (asserts in debug builds).
  [[nodiscard]] BigUInt operator-(const BigUInt& o) const;
  [[nodiscard]] BigUInt operator*(const BigUInt& o) const;
  [[nodiscard]] BigUInt operator<<(std::size_t bits) const;
  [[nodiscard]] BigUInt operator>>(std::size_t bits) const;

  /// Pre-sizes the limb buffer (hot paths that build values limb by
  /// limb avoid incremental reallocation).
  void reserve(std::size_t limb_capacity) { limbs_.reserve(limb_capacity); }

  /// out = a * b, reusing out's buffer (no allocation once out has
  /// capacity). out must not alias a or b.
  static void mul_into(const BigUInt& a, const BigUInt& b, BigUInt& out);
  /// out = a * a; same contract as mul_into.
  static void square_into(const BigUInt& a, BigUInt& out);

  /// Knuth Algorithm D. Divisor must be non-zero (asserts).
  [[nodiscard]] DivMod divmod(const BigUInt& divisor) const;
  [[nodiscard]] BigUInt operator/(const BigUInt& o) const;
  [[nodiscard]] BigUInt operator%(const BigUInt& o) const;

  /// Remainder modulo a machine word (no allocation). divisor != 0.
  [[nodiscard]] std::uint32_t mod_u32(std::uint32_t divisor) const;

  /// (this ^ exponent) mod modulus. modulus > 0. Odd moduli run the
  /// division-free Montgomery fast path (crypto/montgomery.hpp); even
  /// moduli fall back to mod_exp_slow. Results are identical.
  [[nodiscard]] BigUInt mod_exp(const BigUInt& exponent,
                                const BigUInt& modulus) const;

  /// Schoolbook square-and-multiply with a full division per step —
  /// the retained reference implementation mod_exp is checked against.
  [[nodiscard]] BigUInt mod_exp_slow(const BigUInt& exponent,
                                     const BigUInt& modulus) const;

  /// Greatest common divisor.
  [[nodiscard]] static BigUInt gcd(BigUInt a, BigUInt b);

  /// Modular inverse of *this mod `modulus`, if gcd == 1.
  [[nodiscard]] Expected<BigUInt> mod_inverse(const BigUInt& modulus) const;

  /// Decimal rendering (for debugging; O(n^2)).
  [[nodiscard]] std::string to_string() const;
  /// Lowercase hex, no leading zeros ("0" for zero).
  [[nodiscard]] std::string to_hex() const;
  [[nodiscard]] static Expected<BigUInt> from_hex(std::string_view hex);

  /// Low 64 bits of the value.
  [[nodiscard]] std::uint64_t low_u64() const;

 private:
  void trim();

  // Least-significant limb first.
  std::vector<std::uint32_t> limbs_;
};

struct DivMod {
  BigUInt quotient;
  BigUInt remainder;
};

inline BigUInt BigUInt::operator/(const BigUInt& o) const {
  return divmod(o).quotient;
}
inline BigUInt BigUInt::operator%(const BigUInt& o) const {
  return divmod(o).remainder;
}

}  // namespace tlc::crypto
