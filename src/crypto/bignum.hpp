// Arbitrary-precision unsigned integers for RSA.
//
// Little-endian base-2^32 limbs. Implements schoolbook multiplication,
// Knuth Algorithm D division (needed for fast 1024-bit modular
// exponentiation), square-and-multiply modexp, binary GCD and the
// extended Euclidean modular inverse. Performance is adequate for the
// paper's workload (Fig 17: hundreds of thousands of PoC verifications
// per hour on one workstation).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace tlc::crypto {

class BigUInt;

/// Result of BigUInt::divmod.
struct DivMod;

class BigUInt {
 public:
  /// Zero.
  BigUInt() = default;
  /// From a machine word.
  explicit BigUInt(std::uint64_t value);

  /// From big-endian bytes (as found in signatures / key blobs).
  [[nodiscard]] static BigUInt from_bytes(const Bytes& big_endian);
  /// Minimal big-endian encoding (empty for zero).
  [[nodiscard]] Bytes to_bytes() const;
  /// Big-endian encoding zero-padded on the left to exactly `size` bytes;
  /// values wider than `size` are an error (asserts).
  [[nodiscard]] Bytes to_bytes_padded(std::size_t size) const;

  /// Uniformly random value with exactly `bits` bits (top bit set).
  [[nodiscard]] static BigUInt random_with_bits(std::size_t bits, Rng& rng);
  /// Uniformly random value in [0, bound).
  [[nodiscard]] static BigUInt random_below(const BigUInt& bound, Rng& rng);

  [[nodiscard]] bool is_zero() const { return limbs_.empty(); }
  [[nodiscard]] bool is_odd() const {
    return !limbs_.empty() && (limbs_[0] & 1u) != 0;
  }
  /// Number of significant bits (0 for zero).
  [[nodiscard]] std::size_t bit_length() const;
  /// Value of bit `i` (false beyond the top).
  [[nodiscard]] bool bit(std::size_t i) const;

  /// Three-way comparison: -1, 0, +1.
  [[nodiscard]] int compare(const BigUInt& other) const;
  [[nodiscard]] bool operator==(const BigUInt& o) const {
    return compare(o) == 0;
  }
  [[nodiscard]] bool operator!=(const BigUInt& o) const {
    return compare(o) != 0;
  }
  [[nodiscard]] bool operator<(const BigUInt& o) const {
    return compare(o) < 0;
  }
  [[nodiscard]] bool operator<=(const BigUInt& o) const {
    return compare(o) <= 0;
  }
  [[nodiscard]] bool operator>(const BigUInt& o) const {
    return compare(o) > 0;
  }
  [[nodiscard]] bool operator>=(const BigUInt& o) const {
    return compare(o) >= 0;
  }

  [[nodiscard]] BigUInt operator+(const BigUInt& o) const;
  /// Requires *this >= o (asserts in debug builds).
  [[nodiscard]] BigUInt operator-(const BigUInt& o) const;
  [[nodiscard]] BigUInt operator*(const BigUInt& o) const;
  [[nodiscard]] BigUInt operator<<(std::size_t bits) const;
  [[nodiscard]] BigUInt operator>>(std::size_t bits) const;

  /// Knuth Algorithm D. Divisor must be non-zero (asserts).
  [[nodiscard]] DivMod divmod(const BigUInt& divisor) const;
  [[nodiscard]] BigUInt operator/(const BigUInt& o) const;
  [[nodiscard]] BigUInt operator%(const BigUInt& o) const;

  /// (this ^ exponent) mod modulus, square-and-multiply. modulus > 0.
  [[nodiscard]] BigUInt mod_exp(const BigUInt& exponent,
                                const BigUInt& modulus) const;

  /// Greatest common divisor.
  [[nodiscard]] static BigUInt gcd(BigUInt a, BigUInt b);

  /// Modular inverse of *this mod `modulus`, if gcd == 1.
  [[nodiscard]] Expected<BigUInt> mod_inverse(const BigUInt& modulus) const;

  /// Decimal rendering (for debugging; O(n^2)).
  [[nodiscard]] std::string to_string() const;
  /// Lowercase hex, no leading zeros ("0" for zero).
  [[nodiscard]] std::string to_hex() const;
  [[nodiscard]] static Expected<BigUInt> from_hex(std::string_view hex);

  /// Low 64 bits of the value.
  [[nodiscard]] std::uint64_t low_u64() const;

 private:
  void trim();

  // Least-significant limb first.
  std::vector<std::uint32_t> limbs_;
};

struct DivMod {
  BigUInt quotient;
  BigUInt remainder;
};

inline BigUInt BigUInt::operator/(const BigUInt& o) const {
  return divmod(o).quotient;
}
inline BigUInt BigUInt::operator%(const BigUInt& o) const {
  return divmod(o).remainder;
}

}  // namespace tlc::crypto
