#include "crypto/hmac.hpp"

#include "crypto/sha256.hpp"

namespace tlc::crypto {

Bytes hmac_sha256(const Bytes& key, const Bytes& message) {
  constexpr std::size_t kBlockSize = 64;

  Bytes normalized_key = key;
  if (normalized_key.size() > kBlockSize) {
    normalized_key = sha256(normalized_key);
  }
  normalized_key.resize(kBlockSize, 0x00);

  Bytes inner_pad(kBlockSize);
  Bytes outer_pad(kBlockSize);
  for (std::size_t i = 0; i < kBlockSize; ++i) {
    inner_pad[i] = static_cast<std::uint8_t>(normalized_key[i] ^ 0x36);
    outer_pad[i] = static_cast<std::uint8_t>(normalized_key[i] ^ 0x5c);
  }

  Sha256 inner;
  inner.update(inner_pad);
  inner.update(message);
  const Bytes inner_digest = inner.finish();

  Sha256 outer;
  outer.update(outer_pad);
  outer.update(inner_digest);
  return outer.finish();
}

}  // namespace tlc::crypto
