#include "crypto/merkle.hpp"

#include <cstring>

#include "crypto/sha256.hpp"
#include "crypto/sha256_batch.hpp"

namespace tlc::crypto {
namespace {

constexpr std::size_t kNodeInputSize = 1 + 32 + 32;

/// Hashes one level's pairs into the next level. `nodes` has `count`
/// hashes; odd counts duplicate the trailing node as its own sibling.
std::vector<MerkleHash> fold_level(const std::vector<MerkleHash>& nodes) {
  const std::size_t pairs = (nodes.size() + 1) / 2;
  // Pack 0x01 || left || right per pair; equal-length inputs keep the
  // multi-lane kernel engaged for the whole level.
  std::vector<std::uint8_t> scratch(pairs * kNodeInputSize);
  std::vector<const std::uint8_t*> ptrs(pairs);
  std::vector<std::size_t> lens(pairs, kNodeInputSize);
  for (std::size_t p = 0; p < pairs; ++p) {
    std::uint8_t* in = scratch.data() + p * kNodeInputSize;
    const MerkleHash& left = nodes[2 * p];
    const MerkleHash& right =
        (2 * p + 1 < nodes.size()) ? nodes[2 * p + 1] : nodes[2 * p];
    in[0] = kMerkleNodeDomain;
    std::memcpy(in + 1, left.data(), 32);
    std::memcpy(in + 33, right.data(), 32);
    ptrs[p] = in;
  }
  std::vector<MerkleHash> parents(pairs);
  sha256_batch(ptrs.data(), lens.data(), pairs,
               reinterpret_cast<std::uint8_t*>(parents.data()));
  return parents;
}

MerkleHash hash_node(const MerkleHash& left, const MerkleHash& right) {
  std::uint8_t in[kNodeInputSize];
  in[0] = kMerkleNodeDomain;
  std::memcpy(in + 1, left.data(), 32);
  std::memcpy(in + 33, right.data(), 32);
  const std::uint8_t* ptr = in;
  const std::size_t len = kNodeInputSize;
  MerkleHash out;
  sha256_batch(&ptr, &len, 1, out.data());
  return out;
}

}  // namespace

MerkleHash merkle_leaf_hash(const std::uint8_t* data, std::size_t len) {
  std::vector<std::uint8_t> in(1 + len);
  in[0] = kMerkleLeafDomain;
  std::memcpy(in.data() + 1, data, len);
  const std::uint8_t* ptr = in.data();
  const std::size_t total = in.size();
  MerkleHash out;
  sha256_batch(&ptr, &total, 1, out.data());
  return out;
}

MerkleHash merkle_leaf_hash(const Bytes& data) {
  return merkle_leaf_hash(data.data(), data.size());
}

std::size_t merkle_proof_depth(std::uint32_t leaf_count) {
  std::size_t depth = 0;
  std::size_t width = leaf_count;
  while (width > 1) {
    width = (width + 1) / 2;
    ++depth;
  }
  return depth;
}

MerkleTree MerkleTree::build(const std::vector<Bytes>& leaves) {
  std::vector<const std::uint8_t*> ptrs(leaves.size());
  std::vector<std::size_t> lens(leaves.size());
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    ptrs[i] = leaves[i].data();
    lens[i] = leaves[i].size();
  }
  return build(ptrs.data(), lens.data(), leaves.size());
}

MerkleTree MerkleTree::build(const std::uint8_t* const* leaves,
                             const std::size_t* lens, std::size_t count) {
  MerkleTree tree;
  tree.leaf_count_ = static_cast<std::uint32_t>(count);
  if (count == 0) return tree;

  // Domain-prefixed leaf inputs, packed contiguously so equal-length
  // leaves (the CDR case) ride the wide kernel.
  std::size_t total = 0;
  for (std::size_t i = 0; i < count; ++i) total += 1 + lens[i];
  std::vector<std::uint8_t> scratch(total);
  std::vector<const std::uint8_t*> ptrs(count);
  std::vector<std::size_t> prefixed_lens(count);
  std::size_t offset = 0;
  for (std::size_t i = 0; i < count; ++i) {
    std::uint8_t* in = scratch.data() + offset;
    in[0] = kMerkleLeafDomain;
    std::memcpy(in + 1, leaves[i], lens[i]);
    ptrs[i] = in;
    prefixed_lens[i] = 1 + lens[i];
    offset += 1 + lens[i];
  }

  std::vector<MerkleHash> level(count);
  sha256_batch(ptrs.data(), prefixed_lens.data(), count,
               reinterpret_cast<std::uint8_t*>(level.data()));

  tree.levels_.push_back(std::move(level));
  while (tree.levels_.back().size() > 1) {
    tree.levels_.push_back(fold_level(tree.levels_.back()));
  }
  tree.root_ = tree.levels_.back().front();
  return tree;
}

Expected<MerkleProof> MerkleTree::proof(std::uint32_t index) const {
  if (index >= leaf_count_) return Err("merkle: proof index out of range");
  MerkleProof proof;
  proof.leaf_index = index;
  proof.leaf_count = leaf_count_;
  std::size_t node = index;
  // Every level except the root contributes one sibling; the last node
  // of an odd level is its own sibling (the duplication rule).
  for (std::size_t lvl = 0; lvl + 1 < levels_.size(); ++lvl) {
    const std::vector<MerkleHash>& nodes = levels_[lvl];
    const std::size_t sibling = (node % 2 == 0) ? node + 1 : node - 1;
    proof.path.push_back(sibling < nodes.size() ? nodes[sibling]
                                                : nodes[node]);
    node /= 2;
  }
  return proof;
}

Status merkle_verify(const MerkleHash& root, const Bytes& leaf,
                     const MerkleProof& proof) {
  if (proof.leaf_count == 0) return Err("merkle: empty tree has no proofs");
  if (proof.leaf_index >= proof.leaf_count) {
    return Err("merkle: leaf index out of range");
  }
  if (proof.path.size() != merkle_proof_depth(proof.leaf_count)) {
    return Err("merkle: proof depth mismatch");
  }
  MerkleHash node = merkle_leaf_hash(leaf);
  std::size_t index = proof.leaf_index;
  for (const MerkleHash& sibling : proof.path) {
    node = (index % 2 == 0) ? hash_node(node, sibling)
                            : hash_node(sibling, node);
    index /= 2;
  }
  if (node != root) return Err("merkle: root mismatch");
  return Status::Ok();
}

}  // namespace tlc::crypto
