// Merkle tree over micro-batch leaves (DESIGN.md §16).
//
// The streaming ingest path amortizes one RSA signature over a batch of
// CDRs by signing the root of a binary hash tree built from the
// canonical CDR wires. A verifier then checks a log-depth inclusion
// proof (a handful of ~1µs hashes) instead of a ~270µs signature per
// record.
//
// Pinned construction rules (wire compatibility depends on these):
//   * leaf hash  = SHA-256(0x00 || leaf bytes)
//   * node hash  = SHA-256(0x01 || left || right)
//   * odd node count at any level: the last node is duplicated as its
//     own sibling (CVE-2012-2459-style root ambiguity between n and
//     n+duplicated leaves is closed by signing the leaf count next to
//     the root — see charging::BatchPoc — never by the tree itself)
//   * a level of one node is the root; duplication never applies to it
//   * the empty tree has the all-zero root and no proofs
//
// The leaf/node domain separation makes a second-preimage splice (a
// node pair presented as a leaf) produce a different hash, so proofs
// cannot be shortened.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "util/bytes.hpp"
#include "util/expected.hpp"

namespace tlc::crypto {

using MerkleHash = std::array<std::uint8_t, 32>;

inline constexpr std::uint8_t kMerkleLeafDomain = 0x00;
inline constexpr std::uint8_t kMerkleNodeDomain = 0x01;

/// SHA-256(0x00 || data) — the leaf hashing rule, exposed for
/// verifiers that receive raw leaf bytes.
[[nodiscard]] MerkleHash merkle_leaf_hash(const std::uint8_t* data,
                                          std::size_t len);
[[nodiscard]] MerkleHash merkle_leaf_hash(const Bytes& data);

/// Sibling path from the leaf level up; the root is never included.
struct MerkleProof {
  std::uint32_t leaf_index = 0;
  std::uint32_t leaf_count = 0;
  std::vector<MerkleHash> path;

  [[nodiscard]] bool operator==(const MerkleProof& o) const = default;
};

/// Number of sibling hashes a proof needs for `leaf_count` leaves.
[[nodiscard]] std::size_t merkle_proof_depth(std::uint32_t leaf_count);

class MerkleTree {
 public:
  /// Hashes each leaf (domain-separated) with the batched multi-lane
  /// SHA-256 and folds the levels. Deterministic for any kernel.
  [[nodiscard]] static MerkleTree build(const std::vector<Bytes>& leaves);

  /// Same, from pointer/length pairs (no per-leaf Bytes needed on the
  /// hot path).
  [[nodiscard]] static MerkleTree build(const std::uint8_t* const* leaves,
                                        const std::size_t* lens,
                                        std::size_t count);

  /// All-zero for the empty tree.
  [[nodiscard]] const MerkleHash& root() const { return root_; }
  [[nodiscard]] std::uint32_t leaf_count() const { return leaf_count_; }
  [[nodiscard]] bool empty() const { return leaf_count_ == 0; }

  /// Inclusion proof for leaf `index` (< leaf_count).
  [[nodiscard]] Expected<MerkleProof> proof(std::uint32_t index) const;

 private:
  /// levels_[0] = leaf hashes, levels_.back() = the single root node.
  std::vector<std::vector<MerkleHash>> levels_;
  MerkleHash root_ = {};
  std::uint32_t leaf_count_ = 0;
};

/// Recomputes the root from `leaf` bytes and the sibling path; Ok iff
/// it matches `root`, the index is in range and the path has exactly
/// the depth `leaf_count` demands.
[[nodiscard]] Status merkle_verify(const MerkleHash& root, const Bytes& leaf,
                                   const MerkleProof& proof);

}  // namespace tlc::crypto
