// Probabilistic prime generation for RSA key material.
//
// Miller-Rabin with trial division by small primes first. Rounds follow
// FIPS 186-4 guidance (enough for the 512-bit factors of RSA-1024).
// Each candidate gets one Montgomery context (DESIGN.md §10): the
// witness exponentiations and squaring chains run division-free, and
// trial division uses single-limb remainders — no BigUInt divisions at
// all on the reject path.
#pragma once

#include <cstddef>

#include "crypto/bignum.hpp"
#include "util/rng.hpp"

namespace tlc::crypto {

/// Miller-Rabin primality test with `rounds` random bases.
/// Deterministically correct for n < 2^64 regardless of `rounds` is NOT
/// guaranteed; this is a probabilistic test for crypto-sized inputs.
[[nodiscard]] bool is_probable_prime(const BigUInt& n, Rng& rng,
                                     std::size_t rounds = 24);

/// Generates a random probable prime with exactly `bits` bits.
/// `avoid_congruent_1_mod` — when non-zero, rejects primes p with
/// p ≡ 1 (mod that value); used to keep gcd(e, p-1) == 1 cheap.
[[nodiscard]] BigUInt generate_prime(std::size_t bits, Rng& rng,
                                     std::uint64_t require_coprime_e = 65537);

}  // namespace tlc::crypto
