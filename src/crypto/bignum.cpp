#include "crypto/bignum.hpp"

#include <algorithm>
#include <cassert>

#include "crypto/montgomery.hpp"

namespace tlc::crypto {
namespace {

constexpr std::uint64_t kLimbBase = 1ULL << 32;

}  // namespace

BigUInt::BigUInt(std::uint64_t value) {
  if (value != 0) {
    limbs_.push_back(static_cast<std::uint32_t>(value));
    if (value >> 32 != 0) {
      limbs_.push_back(static_cast<std::uint32_t>(value >> 32));
    }
  }
}

void BigUInt::trim() {
  while (!limbs_.empty() && limbs_.back() == 0) {
    limbs_.pop_back();
  }
}

BigUInt BigUInt::from_bytes(const Bytes& big_endian) {
  BigUInt out;
  out.limbs_.assign((big_endian.size() + 3) / 4, 0);
  std::size_t bit_shift = 0;
  std::size_t limb = 0;
  for (auto it = big_endian.rbegin(); it != big_endian.rend(); ++it) {
    out.limbs_[limb] |= static_cast<std::uint32_t>(*it) << bit_shift;
    bit_shift += 8;
    if (bit_shift == 32) {
      bit_shift = 0;
      ++limb;
    }
  }
  out.trim();
  return out;
}

Bytes BigUInt::to_bytes() const {
  if (is_zero()) return {};
  Bytes out;
  out.reserve(limbs_.size() * 4);
  // Emit little-endian then reverse; strip leading zeros at the end.
  for (std::uint32_t limb : limbs_) {
    for (int i = 0; i < 4; ++i) {
      out.push_back(static_cast<std::uint8_t>(limb >> (8 * i)));
    }
  }
  while (!out.empty() && out.back() == 0) {
    out.pop_back();
  }
  std::reverse(out.begin(), out.end());
  return out;
}

Expected<Bytes> BigUInt::to_bytes_padded(std::size_t size) const {
  Bytes minimal = to_bytes();
  if (minimal.size() > size) {
    return Err("BigUInt: value needs " + std::to_string(minimal.size()) +
               " bytes, field holds " + std::to_string(size));
  }
  Bytes out(size - minimal.size(), 0x00);
  out.insert(out.end(), minimal.begin(), minimal.end());
  return out;
}

BigUInt BigUInt::from_limbs(std::vector<std::uint32_t> limbs) {
  BigUInt out;
  out.limbs_ = std::move(limbs);
  out.trim();
  return out;
}

BigUInt BigUInt::random_with_bits(std::size_t bits, Rng& rng) {
  if (bits == 0) return BigUInt{};
  BigUInt out;
  const std::size_t limbs = (bits + 31) / 32;
  out.limbs_.resize(limbs);
  for (auto& limb : out.limbs_) {
    limb = static_cast<std::uint32_t>(rng.next_u64());
  }
  const std::size_t top_bits = ((bits - 1) % 32) + 1;
  std::uint32_t& top = out.limbs_.back();
  if (top_bits < 32) {
    top &= (1u << top_bits) - 1;
  }
  top |= 1u << (top_bits - 1);  // force the exact bit length
  out.trim();
  return out;
}

BigUInt BigUInt::random_below(const BigUInt& bound, Rng& rng) {
  assert(!bound.is_zero());
  const std::size_t bits = bound.bit_length();
  // Rejection sampling over [0, 2^bits).
  for (;;) {
    BigUInt candidate;
    const std::size_t limbs = (bits + 31) / 32;
    candidate.limbs_.resize(limbs);
    for (auto& limb : candidate.limbs_) {
      limb = static_cast<std::uint32_t>(rng.next_u64());
    }
    const std::size_t top_bits = ((bits - 1) % 32) + 1;
    if (top_bits < 32) {
      candidate.limbs_.back() &= (1u << top_bits) - 1;
    }
    candidate.trim();
    if (candidate < bound) return candidate;
  }
}

std::size_t BigUInt::bit_length() const {
  if (limbs_.empty()) return 0;
  std::size_t bits = (limbs_.size() - 1) * 32;
  std::uint32_t top = limbs_.back();
  while (top != 0) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

bool BigUInt::bit(std::size_t i) const {
  const std::size_t limb = i / 32;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % 32)) & 1u;
}

int BigUInt::compare(const BigUInt& other) const {
  if (limbs_.size() != other.limbs_.size()) {
    return limbs_.size() < other.limbs_.size() ? -1 : 1;
  }
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    if (limbs_[i] != other.limbs_[i]) {
      return limbs_[i] < other.limbs_[i] ? -1 : 1;
    }
  }
  return 0;
}

BigUInt BigUInt::operator+(const BigUInt& o) const {
  BigUInt out;
  const std::size_t n = std::max(limbs_.size(), o.limbs_.size());
  out.limbs_.reserve(n + 1);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t sum = carry;
    if (i < limbs_.size()) sum += limbs_[i];
    if (i < o.limbs_.size()) sum += o.limbs_[i];
    out.limbs_.push_back(static_cast<std::uint32_t>(sum));
    carry = sum >> 32;
  }
  if (carry != 0) {
    out.limbs_.push_back(static_cast<std::uint32_t>(carry));
  }
  return out;
}

BigUInt BigUInt::operator-(const BigUInt& o) const {
  assert(compare(o) >= 0 && "BigUInt subtraction would underflow");
  BigUInt out;
  out.limbs_.reserve(limbs_.size());
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    std::int64_t diff = static_cast<std::int64_t>(limbs_[i]) - borrow;
    if (i < o.limbs_.size()) diff -= o.limbs_[i];
    if (diff < 0) {
      diff += static_cast<std::int64_t>(kLimbBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.limbs_.push_back(static_cast<std::uint32_t>(diff));
  }
  out.trim();
  return out;
}

BigUInt BigUInt::operator*(const BigUInt& o) const {
  BigUInt out;
  mul_into(*this, o, out);
  return out;
}

void BigUInt::mul_into(const BigUInt& a, const BigUInt& b, BigUInt& out) {
  assert(&out != &a && &out != &b && "mul_into output must not alias");
  if (a.is_zero() || b.is_zero()) {
    out.limbs_.clear();
    return;
  }
  out.limbs_.assign(a.limbs_.size() + b.limbs_.size(), 0);
  for (std::size_t i = 0; i < a.limbs_.size(); ++i) {
    std::uint64_t carry = 0;
    const std::uint64_t ai = a.limbs_[i];
    for (std::size_t j = 0; j < b.limbs_.size(); ++j) {
      const std::uint64_t cur =
          static_cast<std::uint64_t>(out.limbs_[i + j]) + ai * b.limbs_[j] +
          carry;
      out.limbs_[i + j] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
    }
    std::size_t k = i + b.limbs_.size();
    while (carry != 0) {
      const std::uint64_t cur = out.limbs_[k] + carry;
      out.limbs_[k] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
      ++k;
    }
  }
  out.trim();
}

void BigUInt::square_into(const BigUInt& a, BigUInt& out) {
  mul_into(a, a, out);
}

BigUInt BigUInt::operator<<(std::size_t bits) const {
  if (is_zero() || bits == 0) return *this;
  const std::size_t limb_shift = bits / 32;
  const std::size_t bit_shift = bits % 32;
  BigUInt out;
  out.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    const std::uint64_t shifted = static_cast<std::uint64_t>(limbs_[i])
                                  << bit_shift;
    out.limbs_[i + limb_shift] |= static_cast<std::uint32_t>(shifted);
    out.limbs_[i + limb_shift + 1] |=
        static_cast<std::uint32_t>(shifted >> 32);
  }
  out.trim();
  return out;
}

BigUInt BigUInt::operator>>(std::size_t bits) const {
  const std::size_t limb_shift = bits / 32;
  if (limb_shift >= limbs_.size()) return BigUInt{};
  const std::size_t bit_shift = bits % 32;
  BigUInt out;
  out.limbs_.assign(limbs_.size() - limb_shift, 0);
  for (std::size_t i = 0; i < out.limbs_.size(); ++i) {
    std::uint64_t value = limbs_[i + limb_shift] >> bit_shift;
    if (bit_shift != 0 && i + limb_shift + 1 < limbs_.size()) {
      value |= static_cast<std::uint64_t>(limbs_[i + limb_shift + 1])
               << (32 - bit_shift);
    }
    out.limbs_[i] = static_cast<std::uint32_t>(value);
  }
  out.trim();
  return out;
}

DivMod BigUInt::divmod(const BigUInt& divisor) const {
  assert(!divisor.is_zero() && "division by zero");
  if (compare(divisor) < 0) {
    return {BigUInt{}, *this};
  }
  if (divisor.limbs_.size() == 1) {
    // Short division by a single limb.
    const std::uint64_t d = divisor.limbs_[0];
    BigUInt quotient;
    quotient.limbs_.assign(limbs_.size(), 0);
    std::uint64_t rem = 0;
    for (std::size_t i = limbs_.size(); i-- > 0;) {
      const std::uint64_t cur = (rem << 32) | limbs_[i];
      quotient.limbs_[i] = static_cast<std::uint32_t>(cur / d);
      rem = cur % d;
    }
    quotient.trim();
    return {quotient, BigUInt{rem}};
  }

  // Knuth TAOCP vol.2 Algorithm D (base 2^32).
  // D1: normalize so the divisor's top limb has its high bit set.
  int shift = 0;
  {
    std::uint32_t top = divisor.limbs_.back();
    while ((top & 0x80000000u) == 0) {
      top <<= 1;
      ++shift;
    }
  }
  const BigUInt u_norm = *this << static_cast<std::size_t>(shift);
  const BigUInt v_norm = divisor << static_cast<std::size_t>(shift);
  const std::size_t n = v_norm.limbs_.size();
  const std::size_t m = u_norm.limbs_.size() - n;

  std::vector<std::uint32_t> u = u_norm.limbs_;
  u.push_back(0);  // u has m + n + 1 limbs
  const std::vector<std::uint32_t>& v = v_norm.limbs_;

  BigUInt quotient;
  quotient.limbs_.assign(m + 1, 0);

  for (std::size_t j = m + 1; j-- > 0;) {
    // D3: estimate qhat from the top two limbs of the current remainder.
    const std::uint64_t numerator =
        (static_cast<std::uint64_t>(u[j + n]) << 32) | u[j + n - 1];
    std::uint64_t qhat = numerator / v[n - 1];
    std::uint64_t rhat = numerator % v[n - 1];
    while (qhat >= kLimbBase ||
           qhat * v[n - 2] > ((rhat << 32) | u[j + n - 2])) {
      --qhat;
      rhat += v[n - 1];
      if (rhat >= kLimbBase) break;
    }

    // D4: multiply and subtract qhat * v from u[j .. j+n].
    std::int64_t borrow = 0;
    std::uint64_t carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t product = qhat * v[i] + carry;
      carry = product >> 32;
      std::int64_t diff = static_cast<std::int64_t>(u[i + j]) -
                          static_cast<std::int64_t>(product & 0xffffffffu) -
                          borrow;
      if (diff < 0) {
        diff += static_cast<std::int64_t>(kLimbBase);
        borrow = 1;
      } else {
        borrow = 0;
      }
      u[i + j] = static_cast<std::uint32_t>(diff);
    }
    std::int64_t top_diff = static_cast<std::int64_t>(u[j + n]) -
                            static_cast<std::int64_t>(carry) - borrow;

    // D5/D6: if the subtraction underflowed, qhat was one too large —
    // decrement and add v back.
    if (top_diff < 0) {
      --qhat;
      std::uint64_t add_carry = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t sum =
            static_cast<std::uint64_t>(u[i + j]) + v[i] + add_carry;
        u[i + j] = static_cast<std::uint32_t>(sum);
        add_carry = sum >> 32;
      }
      top_diff += static_cast<std::int64_t>(add_carry);
    }
    u[j + n] = static_cast<std::uint32_t>(top_diff);
    quotient.limbs_[j] = static_cast<std::uint32_t>(qhat);
  }

  quotient.trim();
  BigUInt remainder;
  remainder.limbs_.assign(u.begin(), u.begin() + static_cast<std::ptrdiff_t>(n));
  remainder.trim();
  remainder = remainder >> static_cast<std::size_t>(shift);
  return {quotient, remainder};
}

BigUInt BigUInt::mod_exp(const BigUInt& exponent,
                         const BigUInt& modulus) const {
  assert(!modulus.is_zero());
  if (modulus == BigUInt{1}) return BigUInt{};
  if (modulus.is_odd()) {
    auto ctx = MontgomeryContext::create(modulus);
    assert(ctx);  // odd modulus > 1 always succeeds
    return ctx->mod_exp(*this, exponent);
  }
  return mod_exp_slow(exponent, modulus);
}

BigUInt BigUInt::mod_exp_slow(const BigUInt& exponent,
                              const BigUInt& modulus) const {
  assert(!modulus.is_zero());
  if (modulus == BigUInt{1}) return BigUInt{};
  BigUInt result{1};
  BigUInt base = *this % modulus;
  BigUInt product;  // reused across iterations (mul_into, no churn)
  const std::size_t bits = exponent.bit_length();
  for (std::size_t i = 0; i < bits; ++i) {
    if (exponent.bit(i)) {
      mul_into(result, base, product);
      result = product % modulus;
    }
    square_into(base, product);
    base = product % modulus;
  }
  return result;
}

std::uint32_t BigUInt::mod_u32(std::uint32_t divisor) const {
  assert(divisor != 0);
  std::uint64_t rem = 0;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    rem = ((rem << 32) | limbs_[i]) % divisor;
  }
  return static_cast<std::uint32_t>(rem);
}

BigUInt BigUInt::gcd(BigUInt a, BigUInt b) {
  while (!b.is_zero()) {
    BigUInt r = a % b;
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

Expected<BigUInt> BigUInt::mod_inverse(const BigUInt& modulus) const {
  // Extended Euclid, tracking coefficients as (value, negative?) pairs to
  // stay within unsigned arithmetic.
  if (modulus.is_zero()) return Err("mod_inverse: zero modulus");
  BigUInt r0 = modulus;
  BigUInt r1 = *this % modulus;
  BigUInt t0{0}, t1{1};
  bool t0_neg = false, t1_neg = false;

  while (!r1.is_zero()) {
    const DivMod qr = r0.divmod(r1);
    // (t0, t1) <- (t1, t0 - q * t1) with sign tracking.
    const BigUInt q_t1 = qr.quotient * t1;
    BigUInt next_t;
    bool next_neg = false;
    if (t0_neg == t1_neg) {
      // t0 - q*t1 where both share sign s: magnitude |t0| - |q t1| signed.
      if (t0 >= q_t1) {
        next_t = t0 - q_t1;
        next_neg = t0_neg;
      } else {
        next_t = q_t1 - t0;
        next_neg = !t0_neg;
      }
    } else {
      // Opposite signs: magnitudes add, sign of t0.
      next_t = t0 + q_t1;
      next_neg = t0_neg;
    }
    t0 = std::move(t1);
    t0_neg = t1_neg;
    t1 = std::move(next_t);
    t1_neg = next_neg;
    r0 = std::move(r1);
    r1 = qr.remainder;
  }

  if (r0 != BigUInt{1}) {
    return Err("mod_inverse: arguments are not coprime");
  }
  if (t0_neg) {
    return modulus - (t0 % modulus);
  }
  return t0 % modulus;
}

std::string BigUInt::to_string() const {
  if (is_zero()) return "0";
  std::string digits;
  BigUInt value = *this;
  const BigUInt ten{10};
  while (!value.is_zero()) {
    const DivMod qr = value.divmod(ten);
    digits.push_back(static_cast<char>('0' + qr.remainder.low_u64()));
    value = qr.quotient;
  }
  std::reverse(digits.begin(), digits.end());
  return digits;
}

std::string BigUInt::to_hex() const {
  if (is_zero()) return "0";
  std::string out = tlc::to_hex(to_bytes());
  // Strip at most one leading zero nibble (to_bytes is byte-aligned).
  if (out.size() > 1 && out[0] == '0') {
    out.erase(out.begin());
  }
  return out;
}

Expected<BigUInt> BigUInt::from_hex(std::string_view hex) {
  std::string padded(hex);
  if (padded.size() % 2 != 0) {
    padded.insert(padded.begin(), '0');
  }
  auto raw = tlc::from_hex(padded);
  if (!raw) return Err(raw.error());
  return from_bytes(*raw);
}

std::uint64_t BigUInt::low_u64() const {
  std::uint64_t out = 0;
  if (!limbs_.empty()) out = limbs_[0];
  if (limbs_.size() > 1) out |= static_cast<std::uint64_t>(limbs_[1]) << 32;
  return out;
}

}  // namespace tlc::crypto
