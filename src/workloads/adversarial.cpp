#include "workloads/adversarial.hpp"

#include <algorithm>
#include <cmath>

namespace tlc::workloads {
namespace {

// Jittered inter-packet gap around `mean_s`: uniform in
// [1 - jitter, 1 + jitter] × mean, floored at 1 µs so a pathological
// parameter set cannot wedge the event loop.
SimTime jittered_gap(double mean_s, double jitter, Rng& rng) {
  const double factor = rng.uniform(1.0 - jitter, 1.0 + jitter);
  return std::max<SimTime>(from_seconds(mean_s * factor), kMicrosecond);
}

std::uint16_t jittered_entropy(std::uint16_t mean, std::uint16_t jitter,
                               Rng& rng) {
  const std::int64_t drawn =
      static_cast<std::int64_t>(mean) +
      rng.uniform_int(-static_cast<std::int64_t>(jitter),
                      static_cast<std::int64_t>(jitter));
  return static_cast<std::uint16_t>(std::clamp<std::int64_t>(drawn, 0, 1000));
}

}  // namespace

const char* adversary_name(AdversaryKind kind) {
  switch (kind) {
    case AdversaryKind::kNone:
      return "none";
    case AdversaryKind::kIcmpTunnel:
      return "icmp-tunnel";
    case AdversaryKind::kDnsTunnel:
      return "dns-tunnel";
    case AdversaryKind::kZeroRatedAbuse:
      return "zero-rated-abuse";
    case AdversaryKind::kFreeRider:
      return "free-rider";
    case AdversaryKind::kVolumeShaper:
      return "volume-shaper";
  }
  return "none";
}

TunnelParams icmp_tunnel_params() { return TunnelParams{}; }

TunnelParams dns_tunnel_params() {
  TunnelParams params;
  params.protocol = sim::Protocol::kDns;
  params.goodput_kbps = 120.0;
  params.payload_bytes = 100;  // base32-in-qname query sizes
  params.entropy_mean_millis = 930;
  params.entropy_jitter_millis = 40;
  return params;
}

// ---- TunnelSource ---------------------------------------------------

TunnelSource::TunnelSource(sim::Simulator& sim, EmitFn emit,
                           std::uint32_t flow_id, TunnelParams params,
                           Rng rng)
    : PacketSource(sim, std::move(emit), flow_id, sim::Direction::Uplink,
                   sim::Qci::kQci9, rng),
      params_(params) {
  protocol_ = params_.protocol;
}

void TunnelSource::start(SimTime at) {
  running_ = true;
  sim_.schedule_at(at, [this] { next_packet(); });
}

std::string TunnelSource::name() const {
  return std::string("Adversary: ") +
         sim::protocol_name(params_.protocol) + " tunnel";
}

void TunnelSource::next_packet() {
  if (!running_) return;
  entropy_millis_ = jittered_entropy(params_.entropy_mean_millis,
                                     params_.entropy_jitter_millis, rng_);
  emit(params_.payload_bytes);
  const double mean_s = static_cast<double>(params_.payload_bytes) * 8.0 /
                        (params_.goodput_kbps * 1000.0);
  sim_.schedule_after(jittered_gap(mean_s, params_.pacing_jitter, rng_),
                      [this] { next_packet(); });
}

// ---- ZeroRatedAbuseSource -------------------------------------------

ZeroRatedAbuseSource::ZeroRatedAbuseSource(sim::Simulator& sim, EmitFn emit,
                                           std::uint32_t flow_id,
                                           ZeroRatedAbuseParams params,
                                           Rng rng)
    : PacketSource(sim, std::move(emit), flow_id, sim::Direction::Uplink,
                   sim::Qci::kQci9, rng),
      params_(params) {}

void ZeroRatedAbuseSource::start(SimTime at) {
  running_ = true;
  sim_.schedule_at(at, [this] { next_packet(); });
}

void ZeroRatedAbuseSource::next_packet() {
  if (!running_) return;
  emit(params_.packet_bytes);
  const double mean_s = static_cast<double>(params_.packet_bytes) * 8.0 /
                        (params_.rate_mbps * 1e6);
  sim_.schedule_after(jittered_gap(mean_s, params_.pacing_jitter, rng_),
                      [this] { next_packet(); });
}

// ---- FreeRiderSource ------------------------------------------------

FreeRiderSource::FreeRiderSource(sim::Simulator& sim, EmitFn emit,
                                 std::uint32_t victim_flow_id,
                                 FreeRiderParams params, Rng rng)
    : PacketSource(sim, std::move(emit), victim_flow_id,
                   sim::Direction::Uplink, sim::Qci::kQci9, rng),
      params_(params) {}

void FreeRiderSource::start(SimTime at) {
  running_ = true;
  sim_.schedule_at(at, [this] { next_packet(); });
}

void FreeRiderSource::next_packet() {
  if (!running_) return;
  emit(params_.packet_bytes);
  const double mean_s = static_cast<double>(params_.packet_bytes) * 8.0 /
                        (params_.rate_mbps * 1e6);
  sim_.schedule_after(jittered_gap(mean_s, params_.pacing_jitter, rng_),
                      [this] { next_packet(); });
}

// ---- VolumeShaperSource ---------------------------------------------

VolumeShaperSource::VolumeShaperSource(sim::Simulator& sim, EmitFn emit,
                                       std::uint32_t flow_id,
                                       VolumeShaperParams params, Rng rng)
    : PacketSource(sim, std::move(emit), flow_id, sim::Direction::Uplink,
                   sim::Qci::kQci9, rng),
      params_(params) {
  protocol_ = params_.protocol;
  entropy_millis_ = params_.entropy_millis;
}

void VolumeShaperSource::start(SimTime at) {
  running_ = true;
  sim_.schedule_at(at, [this] { next_packet(); });
}

void VolumeShaperSource::next_packet() {
  if (!running_) return;
  emit(params_.packet_bytes);
  // Strict pacing, no jitter: ceil keeps the per-window emission count
  // at or under packets_per_window, which is the whole point.
  const SimTime interval =
      params_.packets_per_window == 0
          ? params_.window
          : (params_.window +
             static_cast<SimTime>(params_.packets_per_window) - 1) /
                static_cast<SimTime>(params_.packets_per_window);
  sim_.schedule_after(std::max<SimTime>(interval, kMicrosecond),
                      [this] { next_packet(); });
}

std::uint64_t shaper_leakage_bound(const VolumeShaperParams& params,
                                   SimTime duration) {
  if (duration <= 0 || params.packets_per_window == 0) return 0;
  const SimTime interval = std::max<SimTime>(
      (params.window + static_cast<SimTime>(params.packets_per_window) - 1) /
          static_cast<SimTime>(params.packets_per_window),
      kMicrosecond);
  const auto max_packets =
      static_cast<std::uint64_t>(duration / interval) + 1;
  return max_packets * params.packet_bytes;
}

// ---- Factory --------------------------------------------------------

std::unique_ptr<TrafficSource> make_adversary(AdversaryKind kind,
                                              sim::Simulator& sim,
                                              TrafficSource::EmitFn emit,
                                              std::uint32_t flow_id,
                                              Rng rng) {
  switch (kind) {
    case AdversaryKind::kNone:
      return nullptr;
    case AdversaryKind::kIcmpTunnel:
      return std::make_unique<TunnelSource>(sim, std::move(emit), flow_id,
                                            icmp_tunnel_params(), rng);
    case AdversaryKind::kDnsTunnel:
      return std::make_unique<TunnelSource>(sim, std::move(emit), flow_id,
                                            dns_tunnel_params(), rng);
    case AdversaryKind::kZeroRatedAbuse:
      return std::make_unique<ZeroRatedAbuseSource>(
          sim, std::move(emit), flow_id, ZeroRatedAbuseParams{}, rng);
    case AdversaryKind::kFreeRider:
      return std::make_unique<FreeRiderSource>(sim, std::move(emit), flow_id,
                                               FreeRiderParams{}, rng);
    case AdversaryKind::kVolumeShaper:
      return std::make_unique<VolumeShaperSource>(
          sim, std::move(emit), flow_id, VolumeShaperParams{}, rng);
  }
  return nullptr;
}

}  // namespace tlc::workloads
