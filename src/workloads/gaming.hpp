// Online-gaming workload (§7.1 scenario 3).
//
// Models the King-of-Glory player-control stream the paper replays:
// small UDP state updates at a fixed tick rate (~0.02 Mbps average),
// with occasional larger world-sync bursts. The acceleration of §2.2
// assigns it QCI 7 (100 ms delay budget); the Fig 12d comparison runs
// the same stream on QCI 9.
#pragma once

#include "workloads/source.hpp"

namespace tlc::workloads {

struct GamingParams {
  double tick_hz = 30.0;
  std::uint32_t update_bytes_mean = 78;  // tuned for ~0.02 Mbps
  double update_jitter = 0.25;
  /// Probability a tick carries a world-sync burst instead.
  double sync_probability = 0.01;
  std::uint32_t sync_bytes = 900;
};

class GamingSource final : public PacketSource {
 public:
  GamingSource(sim::Simulator& sim, EmitFn emit, std::uint32_t flow_id,
               sim::Direction direction, sim::Qci qci, GamingParams params,
               Rng rng);

  void start(SimTime at) override;
  [[nodiscard]] std::string name() const override {
    return "Gaming (King of Glory)";
  }

 private:
  void next_tick();

  GamingParams params_;
};

}  // namespace tlc::workloads
