// Packet-trace record and replay.
//
// The paper replays tcpdump traces (VRidge/Portal 2 from [28], a 1-hour
// King of Glory capture) with tcprelay. This module provides the
// equivalent facility: record any packet stream to a compact binary
// trace (HMAC-tagged against accidental corruption), then replay it
// through the testbed with original timing.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/packet.hpp"
#include "util/bytes.hpp"
#include "util/expected.hpp"
#include "workloads/source.hpp"

namespace tlc::workloads {

struct TraceEntry {
  SimTime offset = 0;  // since trace start
  std::uint32_t size_bytes = 0;
  sim::Direction direction = sim::Direction::Downlink;
  sim::Qci qci = sim::Qci::kQci9;

  [[nodiscard]] bool operator==(const TraceEntry& o) const = default;
};

struct Trace {
  std::string description;
  std::vector<TraceEntry> entries;

  [[nodiscard]] std::uint64_t total_bytes() const;
  [[nodiscard]] SimTime duration() const;

  /// Binary encoding: header, entry array, HMAC-SHA256 integrity tag
  /// keyed by a fixed library key (tamper-evidence for stored traces).
  [[nodiscard]] Bytes serialize() const;
  [[nodiscard]] static Expected<Trace> deserialize(const Bytes& data);

  [[nodiscard]] Status save(const std::string& path) const;
  [[nodiscard]] static Expected<Trace> load(const std::string& path);
};

/// Captures emitted packets into a Trace (wrap a source's sink).
class TraceRecorder {
 public:
  explicit TraceRecorder(std::string description);

  /// Records and forwards to `downstream` (which may be empty).
  [[nodiscard]] TrafficSource::EmitFn tap(TrafficSource::EmitFn downstream);

  [[nodiscard]] const Trace& trace() const { return trace_; }

 private:
  Trace trace_;
  SimTime first_at_ = -1;
};

/// Replays a Trace with original inter-packet timing (the tcprelay of
/// the paper's setup). With `loop` the trace restarts from its first
/// packet after the last one — how the paper keeps a short capture
/// running for a full charging cycle.
class TraceReplaySource final : public TrafficSource {
 public:
  TraceReplaySource(sim::Simulator& sim, EmitFn emit, std::uint32_t flow_id,
                    Trace trace, bool loop = false);

  void start(SimTime at) override;
  void stop() override { running_ = false; }
  [[nodiscard]] std::string name() const override {
    return "replay:" + trace_.description;
  }

 private:
  void emit_next();

  sim::Simulator& sim_;
  EmitFn emit_fn_;
  std::uint32_t flow_id_;
  Trace trace_;
  bool loop_ = false;
  std::size_t next_ = 0;
  SimTime started_at_ = 0;
  bool running_ = false;
  static std::uint64_t next_packet_id_;
};

}  // namespace tlc::workloads
