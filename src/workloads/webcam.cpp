#include "workloads/webcam.hpp"

#include <algorithm>
#include <cmath>

namespace tlc::workloads {

WebcamParams webcam_rtsp_params() {
  WebcamParams params;
  params.mean_bitrate_mbps = 0.77;
  return params;
}

WebcamParams webcam_udp_params() {
  WebcamParams params;
  params.mean_bitrate_mbps = 1.73;
  params.size_jitter = 0.25;  // no RTCP rate control smoothing
  return params;
}

WebcamSource::WebcamSource(sim::Simulator& sim, EmitFn emit,
                           std::uint32_t flow_id, sim::Direction direction,
                           sim::Qci qci, WebcamParams params, Rng rng,
                           std::string name)
    : PacketSource(sim, std::move(emit), flow_id, direction, qci, rng),
      params_(params),
      name_(std::move(name)) {
  // Solve per-frame sizes from the target bitrate:
  // (gop-1) P-frames + 1 I-frame (= iframe_ratio * P) per GOP.
  const double bytes_per_second = params_.mean_bitrate_mbps * 1e6 / 8.0;
  const double gop_seconds =
      static_cast<double>(params_.gop_frames) / params_.fps;
  const double gop_bytes = bytes_per_second * gop_seconds;
  const double p_frames = static_cast<double>(params_.gop_frames - 1);
  p_frame_mean_bytes_ = gop_bytes / (p_frames + params_.iframe_ratio);
}

std::uint32_t WebcamSource::frame_size(bool iframe) {
  const double mean =
      p_frame_mean_bytes_ * (iframe ? params_.iframe_ratio : 1.0);
  const double jittered =
      mean * std::max(0.25, 1.0 + params_.size_jitter * rng_.gaussian());
  return static_cast<std::uint32_t>(std::llround(jittered));
}

void WebcamSource::start(SimTime at) {
  running_ = true;
  sim_.schedule_at(at, [this] { next_frame(); });
}

void WebcamSource::next_frame() {
  if (!running_) return;
  const bool iframe = frame_in_gop_ == 0;
  frame_in_gop_ = (frame_in_gop_ + 1) % params_.gop_frames;
  emit_frame(frame_size(iframe), params_.mtu);
  sim_.schedule_after(from_seconds(1.0 / params_.fps),
                      [this] { next_frame(); });
}

}  // namespace tlc::workloads
