#include "workloads/background.hpp"

#include <algorithm>

namespace tlc::workloads {

BackgroundUdpSource::BackgroundUdpSource(sim::Simulator& sim, EmitFn emit,
                                         std::uint32_t flow_id,
                                         sim::Direction direction,
                                         BackgroundParams params, Rng rng)
    : PacketSource(sim, std::move(emit), flow_id, direction, sim::Qci::kQci9,
                   rng),
      params_(params) {
  if (params_.rate_mbps > 0.0) {
    const double packets_per_second =
        params_.rate_mbps * 1e6 / 8.0 / static_cast<double>(params_.packet_bytes);
    interval_ = from_seconds(1.0 / packets_per_second);
  }
}

void BackgroundUdpSource::start(SimTime at) {
  if (params_.rate_mbps <= 0.0) return;  // congestion knob at zero
  running_ = true;
  sim_.schedule_at(at, [this] { next_packet(); });
}

void BackgroundUdpSource::next_packet() {
  if (!running_) return;
  emit(params_.packet_bytes);
  SimTime next = interval_;
  if (params_.poisson) {
    next = static_cast<SimTime>(std::max(
        1.0, rng_.exponential(static_cast<double>(interval_))));
  }
  sim_.schedule_after(next, [this] { next_packet(); });
}

}  // namespace tlc::workloads
