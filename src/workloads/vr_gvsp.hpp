// Edge-VR workload: GigE-Vision Stream Protocol frames (§7.1
// scenario 2, the VRidge / Portal 2 replay).
//
// 1920×1080p60 graphical frames at an average 9.0 Mbps, shipped GVSP
// style: a small leader packet, a burst of MTU payload packets, and a
// small trailer per frame. The whole frame leaves the server back to
// back — the burstiness is what makes VR the biggest victim of queue
// drops under congestion (Fig 3/13).
#pragma once

#include "workloads/source.hpp"

namespace tlc::workloads {

struct VrGvspParams {
  double mean_bitrate_mbps = 9.0;
  double fps = 60.0;
  /// Frame-to-frame size variability (scene complexity).
  double size_jitter = 0.30;
  /// Occasional large scene-change frames.
  double keyframe_probability = 0.02;
  double keyframe_scale = 2.5;
  std::uint32_t mtu = 1400;
  std::uint32_t leader_bytes = 60;
  std::uint32_t trailer_bytes = 60;
  /// Intra-frame packet pacing: the sender-side stack drains a frame
  /// over a few ms rather than instantaneously (calibrated so overload
  /// loss matches the paper's Fig 3 levels instead of being amplified
  /// by burst clustering at the drop-tail queue).
  SimTime packet_spacing = 280 * kMicrosecond;
};

class VrGvspSource final : public PacketSource {
 public:
  VrGvspSource(sim::Simulator& sim, EmitFn emit, std::uint32_t flow_id,
               sim::Direction direction, sim::Qci qci, VrGvspParams params,
               Rng rng);

  void start(SimTime at) override;
  [[nodiscard]] std::string name() const override { return "VRidge (GVSP)"; }

 private:
  void next_frame();

  VrGvspParams params_;
  double frame_mean_bytes_ = 0.0;
};

}  // namespace tlc::workloads
