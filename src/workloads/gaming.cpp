#include "workloads/gaming.hpp"

#include <algorithm>
#include <cmath>

namespace tlc::workloads {

GamingSource::GamingSource(sim::Simulator& sim, EmitFn emit,
                           std::uint32_t flow_id, sim::Direction direction,
                           sim::Qci qci, GamingParams params, Rng rng)
    : PacketSource(sim, std::move(emit), flow_id, direction, qci, rng),
      params_(params) {}

void GamingSource::start(SimTime at) {
  running_ = true;
  sim_.schedule_at(at, [this] { next_tick(); });
}

void GamingSource::next_tick() {
  if (!running_) return;
  if (rng_.chance(params_.sync_probability)) {
    emit(params_.sync_bytes);
  } else {
    const double jittered =
        static_cast<double>(params_.update_bytes_mean) *
        std::max(0.3, 1.0 + params_.update_jitter * rng_.gaussian());
    emit(static_cast<std::uint32_t>(std::llround(jittered)));
  }
  sim_.schedule_after(from_seconds(1.0 / params_.tick_hz),
                      [this] { next_tick(); });
}

}  // namespace tlc::workloads
