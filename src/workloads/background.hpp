// iperf-style UDP background traffic (the congestion knob of
// Figs 3/13: 0-160 Mbps CBR to a separate phone on QCI 9).
#pragma once

#include "workloads/source.hpp"

namespace tlc::workloads {

struct BackgroundParams {
  double rate_mbps = 100.0;
  std::uint32_t packet_bytes = 1400;
  /// Poisson arrivals (exponential inter-packet gaps). iperf UDP is
  /// nominally CBR, but NIC/driver batching decorrelates it in
  /// practice; near-periodic arrivals phase-lock with the cell's
  /// service period and starve competing flows unrealistically.
  bool poisson = true;
};

class BackgroundUdpSource final : public PacketSource {
 public:
  BackgroundUdpSource(sim::Simulator& sim, EmitFn emit, std::uint32_t flow_id,
                      sim::Direction direction, BackgroundParams params,
                      Rng rng);

  void start(SimTime at) override;
  [[nodiscard]] std::string name() const override { return "iperf UDP"; }

 private:
  void next_packet();

  BackgroundParams params_;
  SimTime interval_ = 0;
};

}  // namespace tlc::workloads
