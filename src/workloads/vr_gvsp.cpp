#include "workloads/vr_gvsp.hpp"

#include <algorithm>
#include <cmath>

namespace tlc::workloads {

VrGvspSource::VrGvspSource(sim::Simulator& sim, EmitFn emit,
                           std::uint32_t flow_id, sim::Direction direction,
                           sim::Qci qci, VrGvspParams params, Rng rng)
    : PacketSource(sim, std::move(emit), flow_id, direction, qci, rng),
      params_(params) {
  const double bytes_per_second = params_.mean_bitrate_mbps * 1e6 / 8.0;
  // Account for the keyframe inflation so the long-run mean matches.
  const double inflation = 1.0 + params_.keyframe_probability *
                                     (params_.keyframe_scale - 1.0);
  frame_mean_bytes_ = bytes_per_second / params_.fps / inflation;
}

void VrGvspSource::start(SimTime at) {
  running_ = true;
  sim_.schedule_at(at, [this] { next_frame(); });
}

void VrGvspSource::next_frame() {
  if (!running_) return;
  double mean = frame_mean_bytes_;
  if (rng_.chance(params_.keyframe_probability)) {
    mean *= params_.keyframe_scale;
  }
  const double jittered =
      mean * std::max(0.25, 1.0 + params_.size_jitter * rng_.gaussian());
  const auto payload = static_cast<std::uint32_t>(std::llround(jittered));

  // GVSP framing: leader, paced payload train, trailer.
  emit(params_.leader_bytes);
  emit_frame(payload, params_.mtu, params_.packet_spacing);
  const std::uint32_t payload_packets = (payload + params_.mtu - 1) / params_.mtu;
  sim_.schedule_after(params_.packet_spacing * (payload_packets + 1),
                      [this] {
                        if (running_) emit(params_.trailer_bytes);
                      });

  sim_.schedule_after(from_seconds(1.0 / params_.fps),
                      [this] { next_frame(); });
}

}  // namespace tlc::workloads
