#include "workloads/trace.hpp"

#include <fstream>

#include "crypto/hmac.hpp"
#include "util/serde.hpp"

namespace tlc::workloads {
namespace {

constexpr std::uint32_t kTraceMagic = 0x544c4354;  // "TLCT"

Bytes integrity_key() { return bytes_of("tlc-trace-integrity-v1"); }

}  // namespace

std::uint64_t Trace::total_bytes() const {
  std::uint64_t total = 0;
  for (const TraceEntry& e : entries) total += e.size_bytes;
  return total;
}

SimTime Trace::duration() const {
  return entries.empty() ? 0 : entries.back().offset;
}

// tlclint: codec(workload_trace, encode)
Bytes Trace::serialize() const {
  ByteWriter w;
  w.u32(kTraceMagic);
  w.str(description);
  w.u32(static_cast<std::uint32_t>(entries.size()));
  for (const TraceEntry& e : entries) {
    w.i64(e.offset);
    w.u32(e.size_bytes);
    w.u8(static_cast<std::uint8_t>(e.direction));
    w.u8(static_cast<std::uint8_t>(e.qci));
  }
  Bytes body = w.take();
  const Bytes tag = crypto::hmac_sha256(integrity_key(), body);
  append(body, tag);
  return body;
}

// tlclint: codec(workload_trace, decode)
Expected<Trace> Trace::deserialize(const Bytes& data) {
  if (data.size() < 32) return Err("trace: too short");
  const Bytes body(data.begin(), data.end() - 32);
  const Bytes tag(data.end() - 32, data.end());
  if (!constant_time_equal(tag, crypto::hmac_sha256(integrity_key(), body))) {
    return Err("trace: integrity tag mismatch");
  }
  ByteReader r(body);
  auto magic = r.u32();
  if (!magic || *magic != kTraceMagic) return Err("trace: bad magic");
  Trace trace;
  auto description = r.str();
  if (!description) return Err("trace: " + description.error());
  trace.description = *description;
  auto count = r.u32();
  if (!count) return Err("trace: " + count.error());
  trace.entries.reserve(*count);
  for (std::uint32_t i = 0; i < *count; ++i) {
    TraceEntry entry;
    auto offset = r.i64();
    if (!offset) return Err("trace: " + offset.error());
    entry.offset = *offset;
    auto size = r.u32();
    if (!size) return Err("trace: " + size.error());
    entry.size_bytes = *size;
    auto direction = r.u8();
    if (!direction || *direction > 1) return Err("trace: bad direction");
    entry.direction = static_cast<sim::Direction>(*direction);
    auto qci = r.u8();
    if (!qci) return Err("trace: " + qci.error());
    entry.qci = static_cast<sim::Qci>(*qci);
    trace.entries.push_back(entry);
  }
  return trace;
}

Status Trace::save(const std::string& path) const {
  const Bytes data = serialize();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Err("trace: cannot open " + path + " for writing");
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  if (!out) return Err("trace: write failed for " + path);
  return Status::Ok();
}

Expected<Trace> Trace::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return Err("trace: cannot open " + path);
  const std::streamsize size = in.tellg();
  in.seekg(0);
  Bytes data(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(data.data()), size);
  if (!in) return Err("trace: read failed for " + path);
  return deserialize(data);
}

TraceRecorder::TraceRecorder(std::string description) {
  trace_.description = std::move(description);
}

TrafficSource::EmitFn TraceRecorder::tap(TrafficSource::EmitFn downstream) {
  return [this, downstream = std::move(downstream)](const sim::Packet& p) {
    if (first_at_ < 0) first_at_ = p.created_at;
    trace_.entries.push_back(
        TraceEntry{p.created_at - first_at_, p.size_bytes, p.direction, p.qci});
    if (downstream) downstream(p);
  };
}

std::uint64_t TraceReplaySource::next_packet_id_ = 1u << 30;

TraceReplaySource::TraceReplaySource(sim::Simulator& sim, EmitFn emit,
                                     std::uint32_t flow_id, Trace trace,
                                     bool loop)
    : sim_(sim),
      emit_fn_(std::move(emit)),
      flow_id_(flow_id),
      trace_(std::move(trace)),
      loop_(loop) {}

void TraceReplaySource::start(SimTime at) {
  if (trace_.entries.empty()) return;
  running_ = true;
  started_at_ = at;
  next_ = 0;
  sim_.schedule_at(at + trace_.entries.front().offset,
                   [this] { emit_next(); });
}

void TraceReplaySource::emit_next() {
  if (!running_ || next_ >= trace_.entries.size()) return;
  const TraceEntry& entry = trace_.entries[next_++];
  sim::Packet packet;
  packet.id = next_packet_id_++;
  packet.flow_id = flow_id_;
  packet.size_bytes = entry.size_bytes;
  packet.direction = entry.direction;
  packet.qci = entry.qci;
  packet.created_at = sim_.now();
  ++packets_;
  bytes_ += entry.size_bytes;
  emit_fn_(packet);
  if (next_ < trace_.entries.size()) {
    sim_.schedule_at(started_at_ + trace_.entries[next_].offset,
                     [this] { emit_next(); });
  } else if (loop_) {
    // Rebase and restart (one mean inter-packet gap between loops so a
    // single-packet trace cannot spin the simulator).
    const SimTime gap = std::max<SimTime>(
        kMillisecond,
        trace_.duration() /
            static_cast<SimTime>(std::max<std::size_t>(
                trace_.entries.size() - 1, 1)));
    next_ = 0;
    started_at_ = sim_.now() + gap - trace_.entries.front().offset;
    sim_.schedule_at(started_at_ + trace_.entries.front().offset,
                     [this] { emit_next(); });
  }
}

}  // namespace tlc::workloads
