// WebCam streaming workloads (§7.1 scenario 1).
//
// The paper streams a 1920×1080p30 H.264 camera with VLC two ways:
//  * RTSP/RTP (average 0.77 Mbps) — the encoder rate-controls harder
//    and RTCP feedback keeps the bitrate lean;
//  * legacy UDP (average 1.73 Mbps) — raw elementary stream push.
//
// Both are modelled as a GOP traffic process: one I-frame per second
// (≈6× a P-frame), 29 P-frames, lognormal-ish size jitter, packetized
// at the RTP MTU. The charging evaluation consumes only the packet
// process, so codec fidelity beyond rate/burst structure is not needed.
#pragma once

#include "workloads/source.hpp"

namespace tlc::workloads {

struct WebcamParams {
  double mean_bitrate_mbps = 0.77;  // RTSP default; UDP preset uses 1.73
  double fps = 30.0;
  /// I-frame to P-frame size ratio.
  double iframe_ratio = 6.0;
  /// Frames per GOP (one I-frame each).
  std::uint32_t gop_frames = 30;
  /// Relative frame-size jitter (stddev / mean).
  double size_jitter = 0.18;
  std::uint32_t mtu = 1400;
};

/// Preset matching the paper's RTSP WebCam numbers.
[[nodiscard]] WebcamParams webcam_rtsp_params();
/// Preset matching the paper's legacy-UDP WebCam numbers.
[[nodiscard]] WebcamParams webcam_udp_params();

class WebcamSource final : public PacketSource {
 public:
  WebcamSource(sim::Simulator& sim, EmitFn emit, std::uint32_t flow_id,
               sim::Direction direction, sim::Qci qci, WebcamParams params,
               Rng rng, std::string name);

  void start(SimTime at) override;
  [[nodiscard]] std::string name() const override { return name_; }

 private:
  void next_frame();
  [[nodiscard]] std::uint32_t frame_size(bool iframe);

  WebcamParams params_;
  std::string name_;
  std::uint32_t frame_in_gop_ = 0;
  double p_frame_mean_bytes_ = 0.0;
};

}  // namespace tlc::workloads
