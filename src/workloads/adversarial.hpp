// Adversarial billing-bypass traffic generators (DESIGN.md §13).
//
// The paper's threat model covers parties lying about *counted*
// traffic; Ghost Traffic (PAPERS.md) names the complementary class —
// traffic that evades the SPGW counting point entirely. Each generator
// here reproduces one bypass as a seeded, deterministic PacketSource
// overlay, so byzantine UEs can ride the normal fleet machinery:
//
//  * TunnelSource       — ICMP/DNS tunnel mimics: smuggle payload in
//                         small uncharged-class packets (high-entropy,
//                         high small-packet rate → both tunnel
//                         heuristics fire);
//  * ZeroRatedAbuseSource — bulk traffic mislabeled onto a zero-rated
//                         (sponsored) flow → per-window volume cap
//                         fires;
//  * FreeRiderSource    — replays another IMSI's flow identity so
//                         flow-based charging bills the victim →
//                         flow-binding check fires;
//  * VolumeShaperSource — rides *under* every detector threshold by
//                         construction; undetectable, but its leak is
//                         provably bounded by shaper_leakage_bound().
//
// All randomness comes from the injected seeded Rng — never wall clock
// or OS entropy (enforced by tlclint's adversarial-scoped rand rule) —
// so fleet results stay bit-identical at any thread count.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "workloads/source.hpp"

namespace tlc::workloads {

enum class AdversaryKind : std::uint8_t {
  kNone = 0,
  kIcmpTunnel = 1,
  kDnsTunnel = 2,
  kZeroRatedAbuse = 3,
  kFreeRider = 4,
  kVolumeShaper = 5,
};

[[nodiscard]] const char* adversary_name(AdversaryKind kind);

/// ICMP/DNS tunnel profile: payload smuggled as small free-class
/// packets at a fixed goodput, with near-random payload entropy (the
/// tunnel carries compressed/encrypted data).
struct TunnelParams {
  sim::Protocol protocol = sim::Protocol::kIcmp;
  /// Smuggled goodput. Default ≫ any plausible diagnostic rate, so the
  /// small-packet-rate heuristic fires within the first window even
  /// under heavy radio loss.
  double goodput_kbps = 400.0;
  std::uint32_t payload_bytes = 96;
  /// Payload entropy: mean ± uniform jitter, in thousandths.
  std::uint16_t entropy_mean_millis = 950;
  std::uint16_t entropy_jitter_millis = 30;
  /// Pacing jitter as a fraction of the mean inter-packet interval.
  double pacing_jitter = 0.2;
};

[[nodiscard]] TunnelParams icmp_tunnel_params();
[[nodiscard]] TunnelParams dns_tunnel_params();

class TunnelSource final : public PacketSource {
 public:
  TunnelSource(sim::Simulator& sim, EmitFn emit, std::uint32_t flow_id,
               TunnelParams params, Rng rng);

  void start(SimTime at) override;
  [[nodiscard]] std::string name() const override;

 private:
  void next_packet();

  TunnelParams params_;
};

/// Bulk transfer mislabeled onto a zero-rated flow: ordinary UDP at a
/// rate far beyond what any sponsored service needs. The flow itself
/// must be registered zero-rated at the gateway (the fleet wiring does
/// this for kZeroRatedAbuse members).
struct ZeroRatedAbuseParams {
  double rate_mbps = 1.5;
  std::uint32_t packet_bytes = 1200;
  double pacing_jitter = 0.2;
};

class ZeroRatedAbuseSource final : public PacketSource {
 public:
  ZeroRatedAbuseSource(sim::Simulator& sim, EmitFn emit,
                       std::uint32_t flow_id, ZeroRatedAbuseParams params,
                       Rng rng);

  void start(SimTime at) override;
  [[nodiscard]] std::string name() const override {
    return "Adversary: zero-rated abuse";
  }

 private:
  void next_packet();

  ZeroRatedAbuseParams params_;
};

/// Free-rider: emits ordinary traffic on *another subscriber's* flow
/// identity (`flow_id` is the victim's). Under flow-based charging the
/// victim pays; either way the gateway's flow binding flags the
/// carrier.
struct FreeRiderParams {
  double rate_mbps = 0.5;
  std::uint32_t packet_bytes = 1000;
  double pacing_jitter = 0.2;
};

class FreeRiderSource final : public PacketSource {
 public:
  FreeRiderSource(sim::Simulator& sim, EmitFn emit,
                  std::uint32_t victim_flow_id, FreeRiderParams params,
                  Rng rng);

  void start(SimTime at) override;
  [[nodiscard]] std::string name() const override {
    return "Adversary: free-rider";
  }

 private:
  void next_packet();

  FreeRiderParams params_;
};

/// Volume shaper: free-class tunnel deliberately tuned to stay under
/// every detector threshold — fewer small packets per window than the
/// flood limit, padded low-entropy encoding under the entropy
/// threshold. It is *designed* to go uncaught; the suite instead
/// asserts its leak never exceeds shaper_leakage_bound().
struct VolumeShaperParams {
  sim::Protocol protocol = sim::Protocol::kIcmp;
  /// Emissions per detection window. Must stay strictly under the
  /// gateway's free_small_packets_per_window for the shaper to evade.
  std::uint32_t packets_per_window = 48;
  SimTime window = kSecond;
  std::uint32_t packet_bytes = 120;
  /// Padded/low-rate encoding: entropy below the tunnel threshold.
  std::uint16_t entropy_millis = 550;
};

class VolumeShaperSource final : public PacketSource {
 public:
  VolumeShaperSource(sim::Simulator& sim, EmitFn emit, std::uint32_t flow_id,
                     VolumeShaperParams params, Rng rng);

  void start(SimTime at) override;
  [[nodiscard]] std::string name() const override {
    return "Adversary: volume shaper";
  }

 private:
  void next_packet();

  VolumeShaperParams params_;
};

/// Upper bound on the bytes a shaper can leak over `duration`: it emits
/// at most one packet per ceil(window / packets_per_window), so
///   leak ≤ (duration / interval + 1) × packet_bytes.
/// This is an *emission* bound; radio loss only shrinks what arrives
/// at the gateway, so the bound holds end to end (the §13 leakage
/// argument).
[[nodiscard]] std::uint64_t shaper_leakage_bound(
    const VolumeShaperParams& params, SimTime duration);

/// Builds the generator for `kind` (kNone returns nullptr). For
/// kFreeRider, `flow_id` must be the victim's flow; for every other
/// kind it is the adversary's own overlay flow.
[[nodiscard]] std::unique_ptr<TrafficSource> make_adversary(
    AdversaryKind kind, sim::Simulator& sim, TrafficSource::EmitFn emit,
    std::uint32_t flow_id, Rng rng);

}  // namespace tlc::workloads
