// Traffic source framework.
//
// A source emits packets into the testbed on the simulator's clock
// through a caller-supplied sink (the testbed routes uplink packets
// into the device app and downlink packets into the edge server). All
// sources are seeded and deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "sim/packet.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace tlc::workloads {

class TrafficSource {
 public:
  using EmitFn = std::function<void(const sim::Packet&)>;

  virtual ~TrafficSource() = default;

  /// Begins emitting at time `at`; runs until stop().
  virtual void start(SimTime at) = 0;
  virtual void stop() = 0;
  [[nodiscard]] virtual std::string name() const = 0;

  [[nodiscard]] std::uint64_t emitted_packets() const { return packets_; }
  [[nodiscard]] std::uint64_t emitted_bytes() const { return bytes_; }

 protected:
  std::uint64_t packets_ = 0;
  std::uint64_t bytes_ = 0;
};

/// Shared plumbing for concrete sources: flow identity, QoS class,
/// per-source RNG and packet-id allocation.
class PacketSource : public TrafficSource {
 public:
  PacketSource(sim::Simulator& sim, EmitFn emit, std::uint32_t flow_id,
               sim::Direction direction, sim::Qci qci, Rng rng);

  void stop() override { running_ = false; }

 protected:
  /// Emits one packet of `size` bytes now.
  void emit(std::uint32_t size_bytes);

  /// Emits `total` bytes as MTU-sized packets plus a remainder (how a
  /// video frame leaves the encoder). Packets are paced `spacing`
  /// apart: the sender NIC/encoder drains the frame at line rate rather
  /// than in zero time, which matters for drop-tail queues downstream.
  /// Implemented as a single self-rescheduling drain event per frame
  /// rather than one pre-scheduled event per chunk, so the event heap
  /// holds one entry per in-flight frame instead of one per packet.
  void emit_frame(std::uint32_t total_bytes, std::uint32_t mtu = 1400,
                  SimTime spacing = 120 * kMicrosecond);

  sim::Simulator& sim_;
  EmitFn emit_fn_;
  std::uint32_t flow_id_;
  sim::Direction direction_;
  sim::Qci qci_;
  Rng rng_;
  bool running_ = false;
  /// Shallow-classifier facts stamped onto every emitted packet.
  /// Defaults (UDP, zero entropy) keep every pre-existing source
  /// byte-identical; the adversarial generators override them per
  /// packet before calling emit().
  sim::Protocol protocol_ = sim::Protocol::kUdp;
  std::uint16_t entropy_millis_ = 0;

 private:
  /// Schedules the next chunk of an in-flight frame `spacing` from now.
  /// Each chunk slot consumes its bytes even while the source is
  /// stopped (emission is skipped, pacing continues), matching the
  /// pre-scheduled per-chunk behavior for stop/restart cycles.
  void schedule_frame_drain(std::uint32_t remaining_bytes, std::uint32_t mtu,
                            SimTime spacing);

  // Per-instance, namespaced by flow: packet ids stay unique within a
  // simulation without a process-global counter (which would be a data
  // race — and a determinism leak — across concurrently running
  // simulator shards).
  std::uint64_t next_packet_id_;
};

}  // namespace tlc::workloads
