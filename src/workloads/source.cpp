#include "workloads/source.hpp"

namespace tlc::workloads {

PacketSource::PacketSource(sim::Simulator& sim, EmitFn emit,
                           std::uint32_t flow_id, sim::Direction direction,
                           sim::Qci qci, Rng rng)
    : sim_(sim),
      emit_fn_(std::move(emit)),
      flow_id_(flow_id),
      direction_(direction),
      qci_(qci),
      rng_(rng),
      next_packet_id_((static_cast<std::uint64_t>(flow_id) << 32) | 1u) {}

void PacketSource::emit(std::uint32_t size_bytes) {
  if (size_bytes == 0) return;
  sim::Packet packet;
  packet.id = next_packet_id_++;
  packet.flow_id = flow_id_;
  packet.size_bytes = size_bytes;
  packet.direction = direction_;
  packet.qci = qci_;
  packet.protocol = protocol_;
  packet.entropy_millis = entropy_millis_;
  packet.created_at = sim_.now();
  ++packets_;
  bytes_ += size_bytes;
  emit_fn_(packet);
}

void PacketSource::emit_frame(std::uint32_t total_bytes, std::uint32_t mtu,
                              SimTime spacing) {
  if (total_bytes == 0) return;
  const std::uint32_t head = std::min(total_bytes, mtu);
  emit(head);  // head of the frame leaves immediately
  schedule_frame_drain(total_bytes - head, mtu, spacing);
}

void PacketSource::schedule_frame_drain(std::uint32_t remaining_bytes,
                                        std::uint32_t mtu, SimTime spacing) {
  if (remaining_bytes == 0) return;
  // [this, remaining_bytes, mtu, spacing] is 24 bytes: inline, trivial.
  sim_.schedule_after(spacing, [this, remaining_bytes, mtu, spacing] {
    const std::uint32_t chunk = std::min(remaining_bytes, mtu);
    if (running_) emit(chunk);
    schedule_frame_drain(remaining_bytes - chunk, mtu, spacing);
  });
}

}  // namespace tlc::workloads
