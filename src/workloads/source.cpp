#include "workloads/source.hpp"

namespace tlc::workloads {

PacketSource::PacketSource(sim::Simulator& sim, EmitFn emit,
                           std::uint32_t flow_id, sim::Direction direction,
                           sim::Qci qci, Rng rng)
    : sim_(sim),
      emit_fn_(std::move(emit)),
      flow_id_(flow_id),
      direction_(direction),
      qci_(qci),
      rng_(rng),
      next_packet_id_((static_cast<std::uint64_t>(flow_id) << 32) | 1u) {}

void PacketSource::emit(std::uint32_t size_bytes) {
  if (size_bytes == 0) return;
  sim::Packet packet;
  packet.id = next_packet_id_++;
  packet.flow_id = flow_id_;
  packet.size_bytes = size_bytes;
  packet.direction = direction_;
  packet.qci = qci_;
  packet.created_at = sim_.now();
  ++packets_;
  bytes_ += size_bytes;
  emit_fn_(packet);
}

void PacketSource::emit_frame(std::uint32_t total_bytes, std::uint32_t mtu,
                              SimTime spacing) {
  SimTime delay = 0;
  bool first = true;
  while (total_bytes > 0) {
    const std::uint32_t chunk = std::min(total_bytes, mtu);
    total_bytes -= chunk;
    if (first) {
      emit(chunk);  // head of the frame leaves immediately
      first = false;
    } else {
      delay += spacing;
      sim_.schedule_after(delay, [this, chunk] {
        if (running_) emit(chunk);
      });
    }
  }
}

}  // namespace tlc::workloads
