// tlc_poc_tool — command-line Proof-of-Charging utility.
//
//   tlc_poc_tool keygen <bits> <prefix>          write <prefix>.pub/.key
//   tlc_poc_tool inspect <poc-file>              decode and print a PoC
//   tlc_poc_tool verify <poc-file> <edge.pub> <op.pub>
//                 --t-start=S --t-end=S --c=C    run Algorithm 2
//   tlc_poc_tool demo <edge-prefix> <op-prefix> <out.poc>
//                 [--sent=B --received=B]        negotiate a sample PoC
//
// Key files hold the hex encoding of the library's key serialization;
// PoC files hold the raw encode_signed_poc bytes.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <fstream>
#include <string>

#include "core/protocol.hpp"
#include "core/verifier.hpp"
#include "crypto/rsa.hpp"
#include "util/serde.hpp"

using namespace tlc;

namespace {

Expected<Bytes> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return Err("cannot open " + path);
  const std::streamsize size = in.tellg();
  in.seekg(0);
  Bytes data(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(data.data()), size);
  if (!in) return Err("read failed for " + path);
  return data;
}

Status write_file(const std::string& path, const Bytes& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Err("cannot open " + path + " for writing");
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  if (!out) return Err("write failed for " + path);
  return Status::Ok();
}

Expected<crypto::RsaPublicKey> load_public_key(const std::string& path) {
  auto hex_data = read_file(path);
  if (!hex_data) return Err(hex_data.error());
  std::string hex(hex_data->begin(), hex_data->end());
  while (!hex.empty() && (hex.back() == '\n' || hex.back() == '\r')) {
    hex.pop_back();
  }
  auto raw = from_hex(hex);
  if (!raw) return Err(path + ": " + raw.error());
  return crypto::RsaPublicKey::deserialize(*raw);
}

Expected<crypto::RsaKeyPair> load_keypair(const std::string& prefix) {
  auto pub = load_public_key(prefix + ".pub");
  if (!pub) return Err(pub.error());
  auto key_hex = read_file(prefix + ".key");
  if (!key_hex) return Err(key_hex.error());
  std::string hex(key_hex->begin(), key_hex->end());
  while (!hex.empty() && (hex.back() == '\n' || hex.back() == '\r')) {
    hex.pop_back();
  }
  auto raw = from_hex(hex);
  if (!raw) return Err(prefix + ".key: " + raw.error());
  // Private key file: blob(n) blob(d) blob(p) blob(q).
  ByteReader r(*raw);
  auto n = r.blob();
  auto d = r.blob();
  auto p = r.blob();
  auto q = r.blob();
  if (!n || !d || !p || !q) return Err(prefix + ".key: malformed");
  crypto::RsaKeyPair pair;
  pair.public_key = *pub;
  pair.private_key.n = crypto::BigUInt::from_bytes(*n);
  pair.private_key.d = crypto::BigUInt::from_bytes(*d);
  pair.private_key.p = crypto::BigUInt::from_bytes(*p);
  pair.private_key.q = crypto::BigUInt::from_bytes(*q);
  const crypto::BigUInt one{1};
  pair.private_key.d_p = pair.private_key.d % (pair.private_key.p - one);
  pair.private_key.d_q = pair.private_key.d % (pair.private_key.q - one);
  auto q_inv = pair.private_key.q.mod_inverse(pair.private_key.p);
  if (!q_inv) return Err(prefix + ".key: bad p/q");
  pair.private_key.q_inv = *q_inv;
  return pair;
}

double arg_double(int argc, char** argv, const char* name, double fallback) {
  const std::string prefix = std::string(name) + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::strtod(argv[i] + prefix.size(), nullptr);
    }
  }
  return fallback;
}

int cmd_keygen(int argc, char** argv) {
  if (argc < 4) {
    std::fprintf(stderr, "usage: keygen <bits> <prefix>\n");
    return 2;
  }
  const auto bits = static_cast<std::size_t>(std::strtoul(argv[2], nullptr, 10));
  const std::string prefix = argv[3];
  Rng rng(static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count()));
  const crypto::RsaKeyPair pair = crypto::rsa_generate(bits, rng);

  const std::string pub_hex = to_hex(pair.public_key.serialize()) + "\n";
  if (auto s = write_file(prefix + ".pub", bytes_of(pub_hex)); !s) {
    std::fprintf(stderr, "%s\n", s.error().c_str());
    return 1;
  }
  ByteWriter w;
  w.blob(pair.private_key.n.to_bytes());
  w.blob(pair.private_key.d.to_bytes());
  w.blob(pair.private_key.p.to_bytes());
  w.blob(pair.private_key.q.to_bytes());
  const std::string key_hex = to_hex(w.take()) + "\n";
  if (auto s = write_file(prefix + ".key", bytes_of(key_hex)); !s) {
    std::fprintf(stderr, "%s\n", s.error().c_str());
    return 1;
  }
  std::printf("wrote %s.pub and %s.key (%zu-bit modulus, fingerprint %s)\n",
              prefix.c_str(), prefix.c_str(), bits,
              pair.public_key.fingerprint_hex().c_str());
  return 0;
}

int cmd_inspect(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr, "usage: inspect <poc-file>\n");
    return 2;
  }
  auto data = read_file(argv[2]);
  if (!data) {
    std::fprintf(stderr, "%s\n", data.error().c_str());
    return 1;
  }
  auto poc = core::decode_signed_poc(*data);
  if (!poc) {
    std::fprintf(stderr, "not a PoC: %s\n", poc.error().c_str());
    return 1;
  }
  auto cda = core::decode_signed_cda(poc->body.cda_wire);
  std::printf("PoC (%zu bytes)\n", data->size());
  std::printf("  constructed by : %s\n",
              core::role_name(poc->body.sender));
  std::printf("  plan           : T=[%s, %s]  c=%.3f\n",
              format_time(poc->body.plan.t_start).c_str(),
              format_time(poc->body.plan.t_end).c_str(), poc->body.plan.c);
  std::printf("  charged x      : %llu bytes (%.3f MB)\n",
              static_cast<unsigned long long>(poc->body.charged),
              static_cast<double>(poc->body.charged) / 1e6);
  std::printf("  round          : %llu\n",
              static_cast<unsigned long long>(poc->body.seq));
  std::printf("  nonces         : ne=%016llx  no=%016llx\n",
              static_cast<unsigned long long>(poc->nonce_edge),
              static_cast<unsigned long long>(poc->nonce_operator));
  if (cda) {
    std::printf("  CDA from %s: claim %llu bytes\n",
                core::role_name(cda->body.sender),
                static_cast<unsigned long long>(cda->body.volume));
    auto cdr = core::decode_signed_cdr(cda->body.peer_cdr_wire);
    if (cdr) {
      std::printf("  CDR from %s: claim %llu bytes\n",
                  core::role_name(cdr->body.sender),
                  static_cast<unsigned long long>(cdr->body.volume));
    }
  }
  std::printf("  (signatures not checked; use `verify` with public keys)\n");
  return 0;
}

int cmd_verify(int argc, char** argv) {
  if (argc < 5) {
    std::fprintf(stderr,
                 "usage: verify <poc-file> <edge.pub> <op.pub> "
                 "[--t-start=S --t-end=S --c=C]\n");
    return 2;
  }
  auto data = read_file(argv[2]);
  if (!data) {
    std::fprintf(stderr, "%s\n", data.error().c_str());
    return 1;
  }
  auto edge_key = load_public_key(argv[3]);
  auto op_key = load_public_key(argv[4]);
  if (!edge_key || !op_key) {
    std::fprintf(stderr, "%s\n",
                 (!edge_key ? edge_key.error() : op_key.error()).c_str());
    return 1;
  }

  // Default plan parameters come from the PoC itself unless pinned on
  // the command line (a real verifier pins them from the public plan).
  core::PlanRef plan;
  if (auto poc = core::decode_signed_poc(*data)) {
    plan = poc->body.plan;
  }
  plan.t_start = from_seconds(
      arg_double(argc, argv, "--t-start", to_seconds(plan.t_start)));
  plan.t_end =
      from_seconds(arg_double(argc, argv, "--t-end", to_seconds(plan.t_end)));
  plan.c = arg_double(argc, argv, "--c", plan.c);

  auto verified = core::verify_poc(
      core::VerificationRequest{*data, plan, *edge_key, *op_key});
  if (!verified) {
    std::printf("REJECTED: %s\n", verified.error().c_str());
    return 1;
  }
  std::printf("ACCEPTED: x=%llu bytes (xe=%llu, xo=%llu), built by %s\n",
              static_cast<unsigned long long>(verified->charged),
              static_cast<unsigned long long>(verified->edge_claim),
              static_cast<unsigned long long>(verified->operator_claim),
              core::role_name(verified->constructed_by));
  return 0;
}

int cmd_demo(int argc, char** argv) {
  if (argc < 5) {
    std::fprintf(stderr,
                 "usage: demo <edge-prefix> <op-prefix> <out.poc> "
                 "[--sent=B --received=B]\n");
    return 2;
  }
  auto edge_kp = load_keypair(argv[2]);
  auto op_kp = load_keypair(argv[3]);
  if (!edge_kp || !op_kp) {
    std::fprintf(stderr, "%s\n",
                 (!edge_kp ? edge_kp.error() : op_kp.error()).c_str());
    return 1;
  }
  const auto sent = static_cast<std::uint64_t>(
      arg_double(argc, argv, "--sent", 778500000.0));
  const auto received = static_cast<std::uint64_t>(
      arg_double(argc, argv, "--received", 724000000.0));

  core::EndpointConfig op_config;
  op_config.role = core::PartyRole::Operator;
  op_config.own_private = op_kp->private_key;
  op_config.own_public = op_kp->public_key;
  op_config.peer_public = edge_kp->public_key;
  op_config.plan = core::PlanRef{0, kHour, 0.5};
  op_config.view = core::UsageView{sent, received};
  core::EndpointConfig edge_config = op_config;
  edge_config.role = core::PartyRole::EdgeVendor;
  edge_config.own_private = edge_kp->private_key;
  edge_config.own_public = edge_kp->public_key;
  edge_config.peer_public = op_kp->public_key;

  core::OptimalStrategy op_strategy;
  core::OptimalStrategy edge_strategy;
  core::ProtocolEndpoint op(op_config, op_strategy, Rng(1));
  core::ProtocolEndpoint edge(edge_config, edge_strategy, Rng(2));
  std::deque<std::pair<bool, Bytes>> wire;
  op.set_send([&](const Bytes& m) { wire.emplace_back(true, m); });
  edge.set_send([&](const Bytes& m) { wire.emplace_back(false, m); });
  op.start();
  while (!wire.empty()) {
    auto [to_edge, message] = wire.front();
    wire.pop_front();
    if (to_edge) {
      (void)edge.receive(message);
    } else {
      (void)op.receive(message);
    }
  }
  if (!op.done()) {
    std::fprintf(stderr, "negotiation failed\n");
    return 1;
  }
  const Bytes poc = core::encode_signed_poc(*op.poc());
  if (auto s = write_file(argv[4], poc); !s) {
    std::fprintf(stderr, "%s\n", s.error().c_str());
    return 1;
  }
  std::printf("negotiated x=%llu in %d round(s); PoC (%zu bytes) -> %s\n",
              static_cast<unsigned long long>(op.negotiated()), op.rounds(),
              poc.size(), argv[4]);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: tlc_poc_tool <keygen|inspect|verify|demo> ...\n");
    return 2;
  }
  const std::string command = argv[1];
  if (command == "keygen") return cmd_keygen(argc, argv);
  if (command == "inspect") return cmd_inspect(argc, argv);
  if (command == "verify") return cmd_verify(argc, argv);
  if (command == "demo") return cmd_demo(argc, argv);
  std::fprintf(stderr, "unknown command '%s'\n", command.c_str());
  return 2;
}
