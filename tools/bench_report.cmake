# Normalized benchmark reports: runs the crypto microbenches and the
# fleet scaling bench, and (re)writes BENCH_crypto.json / BENCH_fleet.json
# at the repo root in a stable schema:
#
#   { "schema": "tlc-bench-v1", "generated": <stamp>, "host": <uname>,
#     "baseline": {...}, "current": {...} }
#
# "baseline" is carried over from the existing committed file, so the
# pair (baseline, current) always reads as before/after for the change
# under review; delete the file to re-baseline. The timestamp is never
# sampled here — it comes from TLC_BENCH_TIMESTAMP (see tlclint's
# wallclock rule for why the repo is strict about ambient time), so
# reruns are reproducible byte-for-byte.
#
# Usage (the `bench_report` target passes all of these):
#   cmake -DBENCH_CRYPTO=<exe> -DBENCH_FLEET=<exe> -DREPO_ROOT=<dir> \
#         -P tools/bench_report.cmake

foreach(required BENCH_CRYPTO BENCH_FLEET BENCH_SIM BENCH_INGEST
        BENCH_TRANSPORT REPO_ROOT)
  if(NOT DEFINED ${required})
    message(FATAL_ERROR "bench_report: -D${required}=... is required")
  endif()
endforeach()

if(DEFINED ENV{TLC_BENCH_TIMESTAMP})
  set(stamp "$ENV{TLC_BENCH_TIMESTAMP}")
else()
  set(stamp "unspecified")
endif()
cmake_host_system_information(RESULT host QUERY OS_NAME OS_PLATFORM)
string(REPLACE ";" " " host "${host}")

# Reads member `key` of the JSON in `path` into `out_var`, or "" when
# the file or member is missing (first run, or schema drift).
function(read_member out_var path key)
  set(${out_var} "" PARENT_SCOPE)
  if(EXISTS "${path}")
    file(READ "${path}" previous)
    string(JSON value ERROR_VARIABLE error GET "${previous}" "${key}")
    if(error STREQUAL "NOTFOUND")
      set(${out_var} "${value}" PARENT_SCOPE)
    endif()
  endif()
endfunction()

# Wraps `current` (a JSON object) in the tlc-bench-v1 envelope and
# writes it to `path`, preserving any existing baseline.
function(write_report path current)
  read_member(baseline "${path}" "baseline")
  if(baseline STREQUAL "")
    set(baseline "${current}")  # first run: baseline == current
  endif()
  set(report "{}")
  string(JSON report SET "${report}" "schema" "\"tlc-bench-v1\"")
  string(JSON report SET "${report}" "generated" "\"${stamp}\"")
  string(JSON report SET "${report}" "host" "\"${host}\"")
  string(JSON report SET "${report}" "baseline" "${baseline}")
  string(JSON report SET "${report}" "current" "${current}")
  file(WRITE "${path}" "${report}\n")
  message(STATUS "bench_report: wrote ${path}")
endfunction()

# --- Crypto microbenches (google-benchmark JSON) -----------------------
execute_process(
  COMMAND "${BENCH_CRYPTO}" --benchmark_format=json --benchmark_min_time=0.2
  OUTPUT_VARIABLE crypto_raw
  RESULT_VARIABLE crypto_status)
if(NOT crypto_status EQUAL 0)
  message(FATAL_ERROR "bench_report: bench_crypto_micro failed")
endif()

string(JSON bench_count LENGTH "${crypto_raw}" "benchmarks")
set(crypto_current "{}")
math(EXPR last "${bench_count} - 1")
foreach(i RANGE ${last})
  string(JSON name GET "${crypto_raw}" "benchmarks" ${i} "name")
  string(JSON real_time GET "${crypto_raw}" "benchmarks" ${i} "real_time")
  string(JSON unit GET "${crypto_raw}" "benchmarks" ${i} "time_unit")
  set(entry "{}")
  string(JSON entry SET "${entry}" "real_time" "${real_time}")
  string(JSON entry SET "${entry}" "time_unit" "\"${unit}\"")
  string(JSON crypto_current SET "${crypto_current}" "${name}" "${entry}")
endforeach()
write_report("${REPO_ROOT}/BENCH_crypto.json" "${crypto_current}")

# --- Event-core microbench (self-reported JSON sidecar) ----------------
set(sim_sidecar "${REPO_ROOT}/build/bench_sim_sidecar.json")
execute_process(
  COMMAND "${BENCH_SIM}" "--json=${sim_sidecar}"
  OUTPUT_QUIET
  RESULT_VARIABLE sim_status)
if(NOT sim_status EQUAL 0)
  message(FATAL_ERROR "bench_report: bench_sim_core failed")
endif()
file(READ "${sim_sidecar}" sim_current)
write_report("${REPO_ROOT}/BENCH_sim_core.json" "${sim_current}")

# --- Streaming ingest bench (self-reported JSON sidecar) ---------------
set(ingest_sidecar "${REPO_ROOT}/build/bench_ingest_sidecar.json")
execute_process(
  COMMAND "${BENCH_INGEST}" "--json=${ingest_sidecar}"
  OUTPUT_QUIET
  RESULT_VARIABLE ingest_status)
if(NOT ingest_status EQUAL 0)
  message(FATAL_ERROR "bench_report: bench_ingest_stream failed")
endif()
file(READ "${ingest_sidecar}" ingest_current)
write_report("${REPO_ROOT}/BENCH_ingest.json" "${ingest_current}")

# --- Coded transport bench (self-reported JSON sidecar) ----------------
# Exit status doubles as the §17 acceptance gate: non-zero means RLNC
# failed to beat stop-and-wait past 10% drop or blew the 1.5x clean-link
# budget.
set(transport_sidecar "${REPO_ROOT}/build/bench_transport_sidecar.json")
execute_process(
  COMMAND "${BENCH_TRANSPORT}" "--json=${transport_sidecar}"
  OUTPUT_QUIET
  RESULT_VARIABLE transport_status)
if(NOT transport_status EQUAL 0)
  message(FATAL_ERROR
    "bench_report: bench_transport_coded failed (acceptance bar?)")
endif()
file(READ "${transport_sidecar}" transport_current)
write_report("${REPO_ROOT}/BENCH_transport.json" "${transport_current}")

# --- Fleet scaling bench (self-reported JSON sidecar) ------------------
set(fleet_sidecar "${REPO_ROOT}/build/bench_fleet_sidecar.json")
execute_process(
  COMMAND "${BENCH_FLEET}" "--json=${fleet_sidecar}"
  OUTPUT_QUIET
  RESULT_VARIABLE fleet_status)
if(NOT fleet_status EQUAL 0)
  message(FATAL_ERROR "bench_report: bench_fleet_scale failed (determinism?)")
endif()
file(READ "${fleet_sidecar}" fleet_current)
write_report("${REPO_ROOT}/BENCH_fleet.json" "${fleet_current}")
