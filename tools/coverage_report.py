#!/usr/bin/env python3
"""Aggregate gcov line coverage into a per-directory report.

Dependency-free replacement for gcovr: walks a --coverage build tree
(the `coverage` CMake preset), invokes `gcov --json-format` on every
.gcda, and merges line records across translation units (a header seen
from many TUs gets the union of its executed lines). Only files under
the given --filter prefixes (relative to --source-root) are reported.

Usage:
  tools/coverage_report.py --build-dir build-coverage \
      --filter src/sim --filter src/fleet [--json coverage.json]

Exit status is 0 unless --min-percent is given and the overall line
coverage falls below it.
"""

import argparse
import json
import os
import subprocess
import sys
from collections import defaultdict


def find_gcda(build_dir):
    for root, _dirs, files in os.walk(build_dir):
        for name in files:
            if name.endswith(".gcda"):
                yield os.path.join(root, name)


def gcov_json(gcda_path):
    """Runs gcov in JSON mode on one .gcda; yields its file records."""
    result = subprocess.run(
        ["gcov", "--json-format", "--stdout", "--branch-probabilities",
         gcda_path],
        capture_output=True, text=True, check=False)
    if result.returncode != 0:
        print(f"warning: gcov failed on {gcda_path}: {result.stderr.strip()}",
              file=sys.stderr)
        return
    # --stdout emits one JSON document per .gcno processed, one per line.
    for line in result.stdout.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            doc = json.loads(line)
        except json.JSONDecodeError:
            continue
        yield from doc.get("files", [])


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build-coverage")
    parser.add_argument("--source-root", default=".")
    parser.add_argument("--filter", action="append", default=[],
                        help="source path prefix to include (repeatable)")
    parser.add_argument("--json", help="write machine-readable summary here")
    parser.add_argument("--min-percent", type=float,
                        help="fail if overall coverage is below this")
    args = parser.parse_args()

    source_root = os.path.realpath(args.source_root)
    filters = args.filter or ["src"]

    # file -> line -> max hit count across all TUs that compiled it.
    lines_by_file = defaultdict(dict)
    gcda_count = 0
    for gcda in sorted(find_gcda(args.build_dir)):
        gcda_count += 1
        for record in gcov_json(gcda):
            path = record.get("file", "")
            real = os.path.realpath(
                path if os.path.isabs(path)
                else os.path.join(args.build_dir, path))
            if not real.startswith(source_root + os.sep):
                continue
            rel = os.path.relpath(real, source_root)
            if not any(rel == f or rel.startswith(f.rstrip("/") + "/")
                       for f in filters):
                continue
            merged = lines_by_file[rel]
            for entry in record.get("lines", []):
                number = entry.get("line_number")
                count = entry.get("count", 0)
                if number is None:
                    continue
                merged[number] = max(merged.get(number, 0), count)

    if gcda_count == 0:
        print(f"error: no .gcda files under {args.build_dir} — "
              "build with the `coverage` preset and run ctest first",
              file=sys.stderr)
        return 2

    per_dir = defaultdict(lambda: [0, 0])  # dir -> [covered, total]
    report_files = []
    for rel in sorted(lines_by_file):
        merged = lines_by_file[rel]
        total = len(merged)
        covered = sum(1 for count in merged.values() if count > 0)
        report_files.append(
            {"file": rel, "covered": covered, "total": total,
             "percent": round(100.0 * covered / total, 1) if total else 0.0})
        per_dir[os.path.dirname(rel)][0] += covered
        per_dir[os.path.dirname(rel)][1] += total

    width = max((len(f["file"]) for f in report_files), default=20)
    print(f"{'file':<{width}}  covered/total  percent")
    for entry in report_files:
        print(f"{entry['file']:<{width}}  "
              f"{entry['covered']:>7}/{entry['total']:<5}  "
              f"{entry['percent']:6.1f}%")
    print()

    overall_covered = overall_total = 0
    summary_dirs = {}
    for directory in sorted(per_dir):
        covered, total = per_dir[directory]
        overall_covered += covered
        overall_total += total
        percent = 100.0 * covered / total if total else 0.0
        summary_dirs[directory] = round(percent, 1)
        print(f"{directory + '/':<{width}}  "
              f"{covered:>7}/{total:<5}  {percent:6.1f}%")
    overall = 100.0 * overall_covered / overall_total if overall_total else 0.0
    print(f"{'TOTAL':<{width}}  "
          f"{overall_covered:>7}/{overall_total:<5}  {overall:6.1f}%")

    if args.json:
        with open(args.json, "w") as out:
            json.dump({"schema": "tlc-coverage-v1",
                       "filters": filters,
                       "directories": summary_dirs,
                       "overall_percent": round(overall, 1),
                       "files": report_files}, out, indent=2)
            out.write("\n")
        print(f"\nwrote {args.json}")

    if args.min_percent is not None and overall < args.min_percent:
        print(f"error: overall coverage {overall:.1f}% is below "
              f"--min-percent {args.min_percent:.1f}%", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
