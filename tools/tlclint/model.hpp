// tlclint cross-TU source model (ISSUE 8).
//
// v1 linted one file at a time; the v2 semantic passes (wire-schema
// extraction, lock-order analysis, seed-stream discipline) need to see
// the whole tree at once: helper functions taking ByteWriter&/
// ByteReader& are spliced into their callers' schemas, lock acquisition
// edges cross functions and files, and stream-constant ownership is a
// property of the include graph. The model is still token-level — no
// libclang, no preprocessor — built in one pass over every file and
// shared by all rules:
//
//   SourceFile   raw + comment/string-stripped lines, pragma table,
//                `#include "..."` targets
//   FunctionDef  brace-matched function bodies with a char-offset →
//                line map, so in-body scans (serde ops, MutexLock
//                scopes, loop depth) stay cheap and precise
//
// The model deliberately ignores templates, overload sets and the
// preprocessor: functions are keyed by name, which is exactly the
// fidelity the checked codebase needs and the fixture corpus pins.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace tlclint {

[[nodiscard]] bool is_ident_char(char c);
[[nodiscard]] std::string trim(const std::string& s);
[[nodiscard]] std::string normalize_ws(const std::string& s);
[[nodiscard]] std::vector<std::string> split_lines(const std::string& text);
[[nodiscard]] bool starts_with(const std::string& s,
                               const std::string& prefix);

/// Replaces comment and string/char-literal *contents* with spaces so
/// token scans cannot match inside them. Line structure is preserved.
[[nodiscard]] std::vector<std::string> strip_comments_and_strings(
    const std::vector<std::string>& lines);

/// Whole-word token search (namespace qualification still matches).
[[nodiscard]] std::vector<std::size_t> find_word(const std::string& code,
                                                 const std::string& token);

/// `name(` used as a free (or std::-qualified) call, not a member.
[[nodiscard]] std::vector<std::size_t> find_call(const std::string& code,
                                                 const std::string& name);

/// Per-line suppression pragmas parsed from the raw lines. An allow on
/// line N covers findings on N and N+1.
class Pragmas {
 public:
  Pragmas() = default;
  explicit Pragmas(const std::vector<std::string>& raw_lines);

  [[nodiscard]] bool allowed(std::size_t line_index,
                             const std::string& rule) const;

 private:
  [[nodiscard]] bool allows(std::size_t index, const std::string& rule) const;

  std::map<std::size_t, std::set<std::string>> allow_;
};

/// One function definition: name, signature head and the half-open
/// char range of its body inside the file's joined code text.
struct FunctionDef {
  std::string name;       // unqualified, e.g. "encode_compact"
  std::string qualified;  // e.g. "ChargingDataRecord::encode_compact"
  std::string head;       // whitespace-normalized signature text
  std::size_t head_line = 0;  // 0-based line of the opening brace's stmt
  std::size_t body_begin = 0;  // char offset just past the opening '{'
  std::size_t body_end = 0;    // char offset of the matching '}'
};

struct SourceFile {
  std::string relpath;  // root-relative, forward slashes
  std::vector<std::string> raw;
  std::vector<std::string> code;
  Pragmas pragmas;
  /// Project-relative include targets, as written ("util/serde.hpp").
  std::vector<std::string> includes;
  /// All code lines joined with '\n' (so offsets map back to lines).
  std::string joined;
  /// joined[i] belongs to raw[line_of(i)].
  std::vector<std::size_t> line_starts;
  std::vector<FunctionDef> functions;

  [[nodiscard]] std::size_t line_of(std::size_t offset) const;
  /// "src/epc/cdr" for "src/epc/cdr.cpp" — the sibling-pair key.
  [[nodiscard]] std::string stem() const;
};

/// The whole analyzed tree. Files added once, then finalize() scans
/// functions and the include graph; lookups are by relpath or stem.
class SourceModel {
 public:
  void add_file(const std::string& relpath, const std::string& contents);
  void finalize();

  [[nodiscard]] const std::vector<SourceFile>& files() const {
    return files_;
  }
  [[nodiscard]] const SourceFile* file(const std::string& relpath) const;
  /// All files sharing a stem (a .cpp and its sibling .hpp).
  [[nodiscard]] std::vector<const SourceFile*> stem_group(
      const std::string& stem) const;
  /// Functions with this unqualified name anywhere in the model.
  [[nodiscard]] std::vector<std::pair<const SourceFile*, const FunctionDef*>>
  functions_named(const std::string& name) const;
  /// True when `from` has an `#include "..."` whose target path ends
  /// with `header_suffix` (include paths are project-relative, so the
  /// suffix match tolerates different root spellings).
  [[nodiscard]] bool directly_includes(const std::string& from,
                                       const std::string& header_suffix) const;

 private:
  std::vector<SourceFile> files_;
  std::map<std::string, std::size_t> by_path_;
  std::map<std::string, std::vector<std::size_t>> by_stem_;
  std::map<std::string, std::vector<std::pair<std::size_t, std::size_t>>>
      functions_by_name_;
};

}  // namespace tlclint
