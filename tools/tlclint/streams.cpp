#include "streams.hpp"

#include <algorithm>
#include <cctype>
#include <set>

namespace tlclint {
namespace {

bool stream_scope_file(const SourceFile& f) {
  return starts_with(f.relpath, "src/") &&
         !starts_with(f.relpath, "src/sim/");
}

bool contains_stream(const std::string& ident) {
  std::string lower;
  for (char c : ident) {
    lower.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  return lower.find("stream") != std::string::npos;
}

bool constant_style(const std::string& ident) {
  return ident.size() >= 2 && ident[0] == 'k' &&
         std::isupper(static_cast<unsigned char>(ident[1])) != 0;
}

std::vector<std::string> idents_in(const std::string& expr) {
  std::vector<std::string> out;
  std::string current;
  for (std::size_t i = 0; i <= expr.size(); ++i) {
    const char c = i < expr.size() ? expr[i] : ' ';
    if (is_ident_char(c)) {
      current.push_back(c);
    } else {
      if (!current.empty() &&
          std::isdigit(static_cast<unsigned char>(current[0])) == 0) {
        out.push_back(current);
      }
      current.clear();
    }
  }
  return out;
}

/// Is `ident` declared (assigned a value) anywhere in `f`?
bool declares(const SourceFile& f, const std::string& ident) {
  for (const std::string& line : f.code) {
    const auto hits = find_word(line, ident);
    if (hits.empty()) continue;
    if (line.find('=', hits[0] + ident.size()) != std::string::npos) {
      return true;
    }
  }
  return false;
}

/// Constant-style stream tokens must be owned by the calling TU: the
/// declaration lives in the TU, its sibling header, or a header the TU
/// directly includes.
enum class Ownership { kOwned, kForeign, kUnknown };

Ownership constant_ownership(const SourceModel& model, const SourceFile& f,
                             const std::string& ident,
                             std::string& declared_in) {
  for (const SourceFile* g : model.stem_group(f.stem())) {
    if (declares(*g, ident)) return Ownership::kOwned;
  }
  bool found = false;
  for (const SourceFile& g : model.files()) {
    if (!declares(g, ident)) continue;
    found = true;
    declared_in = g.relpath;
    for (const std::string& inc : f.includes) {
      if (g.relpath == inc ||
          (g.relpath.size() > inc.size() + 1 &&
           g.relpath.compare(g.relpath.size() - inc.size() - 1, 1, "/") ==
               0 &&
           g.relpath.compare(g.relpath.size() - inc.size(), inc.size(),
                             inc) == 0)) {
        return Ownership::kOwned;
      }
    }
  }
  return found ? Ownership::kForeign : Ownership::kUnknown;
}

std::string last_top_level_arg(const std::string& args) {
  int depth = 0;
  std::size_t last_comma = std::string::npos;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const char c = args[i];
    if (c == '(' || c == '[' || c == '{' || c == '<') ++depth;
    if (c == ')' || c == ']' || c == '}' || c == '>') --depth;
    if (c == ',' && depth == 0) last_comma = i;
  }
  if (last_comma == std::string::npos) return trim(args);
  return trim(args.substr(last_comma + 1));
}

}  // namespace

void check_streams(const SourceModel& model, std::vector<Finding>& findings) {
  for (const SourceFile& f : model.files()) {
    if (!stream_scope_file(f)) continue;
    const std::string& t = f.joined;
    for (const char* call : {"stream_seed", "stream_rng"}) {
      const std::string name(call);
      std::size_t pos = 0;
      while ((pos = t.find(name, pos)) != std::string::npos) {
        const std::size_t word_end = pos + name.size();
        const bool start_ok = pos == 0 || !is_ident_char(t[pos - 1]);
        const bool end_ok =
            word_end < t.size() && !is_ident_char(t[word_end]);
        const std::size_t at = pos;
        pos = word_end;
        if (!start_ok || !end_ok) continue;
        std::size_t open = word_end;
        while (open < t.size() && (t[open] == ' ' || t[open] == '\n')) {
          ++open;
        }
        if (open >= t.size() || t[open] != '(') continue;
        int depth = 0;
        std::size_t close = open;
        while (close < t.size()) {
          if (t[close] == '(') ++depth;
          if (t[close] == ')') {
            --depth;
            if (depth == 0) break;
          }
          ++close;
        }
        const std::string arg = last_top_level_arg(
            normalize_ws(t.substr(open + 1, close - open - 1)));
        const std::size_t line = f.line_of(at);
        if (f.pragmas.allowed(line, "seed-stream")) continue;

        std::vector<std::string> stream_tokens;
        for (const std::string& ident : idents_in(arg)) {
          if (contains_stream(ident)) stream_tokens.push_back(ident);
        }
        const auto report = [&](const std::string& message) {
          Finding fnd;
          fnd.rule = "seed-stream";
          fnd.file = f.relpath;
          fnd.line = static_cast<int>(line) + 1;
          fnd.message = message;
          fnd.snippet =
              line < f.code.size() ? normalize_ws(f.code[line]) : "";
          findings.push_back(std::move(fnd));
        };
        if (stream_tokens.empty()) {
          report("stream index '" + arg + "' passed to " + name +
                 "() has no named stream token — bind it to a "
                 "k...Stream constant or a *_stream local so the index "
                 "space has an owner");
          continue;
        }
        for (const std::string& token : stream_tokens) {
          if (!constant_style(token)) continue;
          std::string declared_in;
          const Ownership own =
              constant_ownership(model, f, token, declared_in);
          if (own == Ownership::kForeign) {
            report("stream constant '" + token + "' is declared in " +
                   declared_in +
                   " but drawn here without including it — a stream used "
                   "outside its declared owner");
          } else if (own == Ownership::kUnknown) {
            report("stream constant '" + token +
                   "' has no visible declaration in the analyzed tree — "
                   "declare it next to the stream's owner");
          }
        }
      }
    }
  }
}

}  // namespace tlclint
