#include "schema.hpp"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <tuple>

namespace tlclint {
namespace {

namespace fs = std::filesystem;

const std::set<std::string>& serde_kinds() {
  static const std::set<std::string> kKinds = {"u8",  "u16", "u32", "u64",
                                               "i64", "f64", "blob", "str"};
  return kKinds;
}

std::size_t skip_ws(const std::string& t, std::size_t i, std::size_t end) {
  while (i < end && (t[i] == ' ' || t[i] == '\t' || t[i] == '\n')) ++i;
  return i;
}

std::size_t match_delim(const std::string& t, std::size_t open,
                        std::size_t end, char o, char c) {
  int depth = 0;
  for (std::size_t i = open; i < end; ++i) {
    if (t[i] == o) ++depth;
    if (t[i] == c) {
      --depth;
      if (depth == 0) return i;
    }
  }
  return end;
}

/// Half-open spans of loop bodies (for/while/do) inside [begin, end).
/// Nesting is expressed by overlap: loop depth at an offset is the
/// number of spans containing it.
std::vector<std::pair<std::size_t, std::size_t>> loop_spans(
    const std::string& t, std::size_t begin, std::size_t end) {
  std::vector<std::pair<std::size_t, std::size_t>> spans;
  std::size_t i = begin;
  while (i < end) {
    if (!is_ident_char(t[i])) {
      ++i;
      continue;
    }
    std::size_t b = i;
    while (i < end && is_ident_char(t[i])) ++i;
    if (b > begin && is_ident_char(t[b - 1])) continue;
    const std::string word = t.substr(b, i - b);
    if (word == "do") {
      const std::size_t j = skip_ws(t, i, end);
      if (j < end && t[j] == '{') {
        spans.push_back({j + 1, match_delim(t, j, end, '{', '}')});
      }
      continue;
    }
    if (word != "for" && word != "while") continue;
    const std::size_t open = skip_ws(t, i, end);
    if (open >= end || t[open] != '(') continue;
    const std::size_t close = match_delim(t, open, end, '(', ')');
    std::size_t k = skip_ws(t, close + 1, end);
    if (k >= end) continue;
    if (t[k] == '{') {
      spans.push_back({k + 1, match_delim(t, k, end, '{', '}')});
    } else if (t[k] != ';') {
      // Single-statement body: up to the first ';' outside nested
      // parens/braces, or the end of a braced sub-statement.
      std::size_t stmt_end = k;
      int paren = 0;
      for (std::size_t j = k; j < end; ++j) {
        if (t[j] == '(') ++paren;
        if (t[j] == ')') --paren;
        if (t[j] == '{' && paren == 0) {
          stmt_end = match_delim(t, j, end, '{', '}') + 1;
          break;
        }
        if (t[j] == ';' && paren == 0) {
          stmt_end = j + 1;
          break;
        }
      }
      spans.push_back({k, stmt_end});
    }
  }
  return spans;
}

int depth_at(const std::vector<std::pair<std::size_t, std::size_t>>& spans,
             std::size_t pos) {
  int depth = 0;
  for (const auto& [b, e] : spans) {
    if (pos >= b && pos < e) ++depth;
  }
  return depth;
}

/// Identifier immediately after a ByteWriter/ByteReader type token
/// (skipping refs, pointers, const): the declared variable or
/// parameter name.
std::string var_after_type(const std::string& t, std::size_t type_end,
                           std::size_t end) {
  std::size_t i = type_end;
  for (;;) {
    i = skip_ws(t, i, end);
    if (i < end && (t[i] == '&' || t[i] == '*')) {
      ++i;
      continue;
    }
    if (t.compare(i, 5, "const") == 0 &&
        (i + 5 >= end || !is_ident_char(t[i + 5]))) {
      i += 5;
      continue;
    }
    break;
  }
  std::string name;
  while (i < end && is_ident_char(t[i])) name.push_back(t[i++]);
  if (!name.empty() && std::isdigit(static_cast<unsigned char>(name[0]))) {
    return "";
  }
  return name;
}

/// All ByteWriter/ByteReader variable names introduced in [begin, end).
std::set<std::string> serde_vars(const std::string& t, std::size_t begin,
                                 std::size_t end) {
  std::set<std::string> vars;
  for (const char* type : {"ByteWriter", "ByteReader"}) {
    std::size_t pos = begin;
    const std::string token(type);
    while ((pos = t.find(token, pos)) != std::string::npos && pos < end) {
      const std::size_t word_end = pos + token.size();
      const bool start_ok = pos == 0 || !is_ident_char(t[pos - 1]);
      const bool end_ok = word_end >= end || !is_ident_char(t[word_end]);
      pos = word_end;
      if (!start_ok || !end_ok) continue;
      const std::string name = var_after_type(t, word_end, end);
      if (!name.empty()) vars.insert(name);
    }
  }
  return vars;
}

struct HelperFn {
  const SourceFile* file = nullptr;
  const FunctionDef* fn = nullptr;
};

/// Functions taking ByteWriter&/ByteReader& are schema helpers: their
/// op sequences splice into callers at the call site's loop depth.
std::map<std::string, std::vector<HelperFn>> build_helper_map(
    const SourceModel& model) {
  std::map<std::string, std::vector<HelperFn>> helpers;
  for (const SourceFile& f : model.files()) {
    for (const FunctionDef& fn : f.functions) {
      if (find_word(fn.head, "ByteWriter").empty() &&
          find_word(fn.head, "ByteReader").empty()) {
        continue;
      }
      helpers[fn.name].push_back({&f, &fn});
    }
  }
  return helpers;
}

class Extractor {
 public:
  explicit Extractor(const SourceModel& model)
      : model_(model), helpers_(build_helper_map(model)) {}

  /// Ops for a whole function body (all serde vars + param vars).
  std::vector<SerdeOp> function_ops(const SourceFile& f,
                                    const FunctionDef& fn) {
    std::set<std::string> vars =
        serde_vars(f.joined, fn.body_begin, fn.body_end);
    for (const std::string& p : serde_vars(fn.head, 0, fn.head.size())) {
      vars.insert(p);
    }
    return range_ops(f, fn.body_begin, fn.body_end, vars, true);
  }

  /// Ops for one tracked variable from its declaration to the end of
  /// the enclosing function body.
  std::vector<SerdeOp> var_ops(const SourceFile& f, const FunctionDef& fn,
                               std::size_t decl_offset,
                               const std::string& var) {
    return range_ops(f, decl_offset, fn.body_end, {var}, true);
  }

  /// True when the function body moves bytes through a serde var it
  /// declares — directly or by handing it to a helper (used by the
  /// coverage rule).
  bool uses_serde(const SourceFile& f, const FunctionDef& fn) {
    const std::set<std::string> vars =
        serde_vars(f.joined, fn.body_begin, fn.body_end);
    if (vars.empty()) return false;
    return !range_ops(f, fn.body_begin, fn.body_end, vars, true).empty();
  }

  [[nodiscard]] bool is_helper(const FunctionDef& fn) const {
    return !find_word(fn.head, "ByteWriter").empty() ||
           !find_word(fn.head, "ByteReader").empty();
  }

 private:
  std::vector<SerdeOp> range_ops(const SourceFile& f, std::size_t begin,
                                 std::size_t end,
                                 const std::set<std::string>& vars,
                                 bool splice_helpers) {
    const std::string& t = f.joined;
    const auto spans = loop_spans(t, begin, end);
    struct Event {
      std::size_t pos;
      std::vector<SerdeOp> ops;
    };
    std::vector<Event> events;

    // Direct ops: `<var>.<kind>(...)`.
    for (std::size_t i = begin; i < end; ++i) {
      if (t[i] != '.') continue;
      std::size_t vb = i;
      while (vb > begin && is_ident_char(t[vb - 1])) --vb;
      if (vb == i) continue;
      const std::string var = t.substr(vb, i - vb);
      if (vb > begin && (is_ident_char(t[vb - 1]) || t[vb - 1] == '.')) {
        continue;
      }
      if (vars.count(var) == 0) continue;
      std::size_t kb = i + 1;
      std::size_t ke = kb;
      while (ke < end && is_ident_char(t[ke])) ++ke;
      const std::string kind = t.substr(kb, ke - kb);
      if (serde_kinds().count(kind) == 0) continue;
      if (ke >= end || t[ke] != '(') continue;
      const std::size_t close = match_delim(t, ke, end, '(', ')');
      SerdeOp op;
      op.kind = kind;
      op.loop_depth = depth_at(spans, i);
      op.arg = normalize_ws(t.substr(ke + 1, close - ke - 1));
      if (op.arg.size() > 60) op.arg = op.arg.substr(0, 57) + "...";
      op.line = f.line_of(i);
      events.push_back({i, {std::move(op)}});
    }

    if (splice_helpers) {
      for (const auto& [hname, defs] : helpers_) {
        for (std::size_t pos : find_word_in_range(t, hname, begin, end)) {
          const std::size_t after = pos + hname.size();
          const std::size_t open = skip_ws(t, after, end);
          if (open >= end || t[open] != '(') continue;
          const std::size_t close = match_delim(t, open, end, '(', ')');
          const std::string args = t.substr(open + 1, close - open - 1);
          bool passes_var = false;
          for (const std::string& v : vars) {
            if (!find_word(args, v).empty()) {
              passes_var = true;
              break;
            }
          }
          if (!passes_var) continue;
          const int call_depth = depth_at(spans, pos);
          std::vector<SerdeOp> spliced;
          for (const HelperFn& h : defs) {
            std::vector<SerdeOp> ops = helper_ops(*h.file, *h.fn);
            for (SerdeOp& op : ops) {
              op.loop_depth += call_depth;
              op.line = f.line_of(pos);
              spliced.push_back(std::move(op));
            }
            break;  // name-keyed model: first definition wins
          }
          if (!spliced.empty()) events.push_back({pos, std::move(spliced)});
        }
      }
    }

    std::sort(events.begin(), events.end(),
              [](const Event& a, const Event& b) { return a.pos < b.pos; });
    std::vector<SerdeOp> out;
    for (Event& e : events) {
      for (SerdeOp& op : e.ops) out.push_back(std::move(op));
    }
    return out;
  }

  std::vector<SerdeOp> helper_ops(const SourceFile& f,
                                  const FunctionDef& fn) {
    const void* key = &fn;
    auto it = memo_.find(key);
    if (it != memo_.end()) return it->second;
    if (in_progress_.count(key) != 0) return {};  // recursion guard
    in_progress_.insert(key);
    std::vector<SerdeOp> ops = function_ops(f, fn);
    in_progress_.erase(key);
    memo_[key] = ops;
    return ops;
  }

  static std::vector<std::size_t> find_word_in_range(const std::string& t,
                                                     const std::string& word,
                                                     std::size_t begin,
                                                     std::size_t end) {
    std::vector<std::size_t> hits;
    std::size_t pos = begin;
    while ((pos = t.find(word, pos)) != std::string::npos && pos < end) {
      const bool start_ok = pos == 0 || !is_ident_char(t[pos - 1]);
      const std::size_t word_end = pos + word.size();
      const bool end_ok = word_end >= end || !is_ident_char(t[word_end]);
      if (start_ok && end_ok) hits.push_back(pos);
      pos = word_end;
    }
    return hits;
  }

  const SourceModel& model_;
  std::map<std::string, std::vector<HelperFn>> helpers_;
  std::map<const void*, std::vector<SerdeOp>> memo_;
  std::set<const void*> in_progress_;
};

struct CodecPragma {
  std::string name;
  bool encode = false;
  std::string version_ident;
  std::size_t line = 0;  // 0-based
};

bool valid_codec_name(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!is_ident_char(c) && c != '-') return false;
  }
  return true;
}

void finding_at(std::vector<Finding>& out, const std::string& rule,
                const SourceFile& f, std::size_t line,
                const std::string& message) {
  Finding fnd;
  fnd.rule = rule;
  fnd.file = f.relpath;
  fnd.line = static_cast<int>(line) + 1;
  fnd.message = message;
  fnd.snippet = line < f.code.size() ? normalize_ws(f.code[line]) : "";
  out.push_back(std::move(fnd));
}

std::vector<CodecPragma> parse_codec_pragmas(const SourceFile& f,
                                             std::vector<Finding>& findings) {
  std::vector<CodecPragma> pragmas;
  for (std::size_t i = 0; i < f.raw.size(); ++i) {
    const std::string& line = f.raw[i];
    const std::size_t at = line.find("tlclint:");
    if (at == std::string::npos) continue;
    const std::size_t c = line.find("codec(", at);
    if (c == std::string::npos) continue;
    const std::size_t close = line.find(')', c);
    if (close == std::string::npos) {
      finding_at(findings, "schema-coverage", f, i,
                 "malformed codec pragma: missing ')'");
      continue;
    }
    std::stringstream ss(line.substr(c + 6, close - c - 6));
    std::vector<std::string> parts;
    std::string part;
    while (std::getline(ss, part, ',')) parts.push_back(trim(part));
    CodecPragma p;
    p.line = i;
    if (parts.size() < 2 || !valid_codec_name(parts[0]) ||
        (parts[1] != "encode" && parts[1] != "decode")) {
      finding_at(findings, "schema-coverage", f, i,
                 "malformed codec pragma: expected "
                 "codec(name, encode|decode[, version=kIdent])");
      continue;
    }
    p.name = parts[0];
    p.encode = parts[1] == "encode";
    for (std::size_t k = 2; k < parts.size(); ++k) {
      if (starts_with(parts[k], "version=")) {
        p.version_ident = trim(parts[k].substr(8));
      }
    }
    pragmas.push_back(std::move(p));
  }
  return pragmas;
}

/// Resolves `ident = value` in the stem group of `file` (the TU and
/// its sibling header — where codec version constants live).
std::string resolve_version(const SourceModel& model, const SourceFile& file,
                            const std::string& ident) {
  for (const SourceFile* f : model.stem_group(file.stem())) {
    for (const std::string& line : f->code) {
      const auto hits = find_word(line, ident);
      if (hits.empty()) continue;
      const std::size_t eq = line.find('=', hits[0] + ident.size());
      if (eq == std::string::npos) continue;
      std::size_t stop = line.find(';', eq);
      if (stop == std::string::npos) stop = line.size();
      const std::string value = trim(line.substr(eq + 1, stop - eq - 1));
      if (!value.empty()) return value;
    }
  }
  return "";
}

/// Loop-normalized op sequence: a maximal run of one kind containing
/// at least one looped op collapses to `kind+`, so rolled/unrolled
/// twins compare equal while order and width changes do not.
std::vector<std::string> normalized_sequence(const CodecSide& side) {
  std::vector<std::string> tokens;
  std::size_t i = 0;
  while (i < side.ops.size()) {
    std::size_t j = i;
    bool looped = false;
    while (j < side.ops.size() && side.ops[j].kind == side.ops[i].kind) {
      looped = looped || side.ops[j].loop_depth > 0;
      ++j;
    }
    if (looped) {
      tokens.push_back(side.ops[i].kind + "+");
    } else {
      for (std::size_t k = i; k < j; ++k) tokens.push_back(side.ops[i].kind);
    }
    i = j;
  }
  return tokens;
}

std::string join_tokens(const std::vector<std::string>& tokens) {
  std::string out;
  for (const std::string& t : tokens) {
    if (!out.empty()) out.push_back(' ');
    out += t;
  }
  return out;
}

std::string layout_hash(const std::vector<const CodecSide*>& sides) {
  // FNV-1a over the encode side's (kind, loop depth) sequence; falls
  // back to the first side for decode-only codecs.
  const CodecSide* basis = nullptr;
  for (const CodecSide* s : sides) {
    if (s->encode) {
      basis = s;
      break;
    }
  }
  if (basis == nullptr && !sides.empty()) basis = sides[0];
  std::uint64_t h = 1469598103934665603ULL;
  const auto mix = [&h](char c) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 1099511628211ULL;
  };
  if (basis != nullptr) {
    for (const SerdeOp& op : basis->ops) {
      for (char c : op.kind) mix(c);
      mix(static_cast<char>('0' + (op.loop_depth % 10)));
      mix('|');
    }
  }
  std::ostringstream ss;
  ss << std::hex;
  ss.width(16);
  ss.fill('0');
  ss << h;
  return ss.str();
}

std::string version_line(const std::vector<const CodecSide*>& sides) {
  for (const CodecSide* s : sides) {
    if (!s->version_ident.empty()) {
      return "version " + s->version_ident + " = " +
             (s->version_value.empty() ? "?" : s->version_value);
    }
  }
  return "version none";
}

std::string read_text_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string golden_field(const std::string& text, const std::string& key) {
  for (const std::string& line : split_lines(text)) {
    if (starts_with(line, key)) return line;
  }
  return "";
}

}  // namespace

std::vector<std::string> SchemaAnalysis::codec_names() const {
  std::vector<std::string> names;
  for (const CodecSide& s : sides) {
    if (std::find(names.begin(), names.end(), s.codec) == names.end()) {
      names.push_back(s.codec);
    }
  }
  std::sort(names.begin(), names.end());
  return names;
}

std::vector<const CodecSide*> SchemaAnalysis::sides_of(
    const std::string& codec) const {
  std::vector<const CodecSide*> out;
  for (const CodecSide& s : sides) {
    if (s.codec == codec) out.push_back(&s);
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const CodecSide* a, const CodecSide* b) {
                     return std::tie(b->encode, a->file, a->line) <
                            std::tie(a->encode, b->file, b->line);
                   });
  return out;
}

SchemaAnalysis extract_schemas(const SourceModel& model,
                               std::vector<Finding>& findings) {
  SchemaAnalysis analysis;
  Extractor extractor(model);
  // (file ptr, function ptr) pairs covered by some codec annotation;
  // the coverage rule skips these.
  std::set<const void*> covered;

  for (const SourceFile& f : model.files()) {
    for (const CodecPragma& p : parse_codec_pragmas(f, findings)) {
      CodecSide side;
      side.codec = p.name;
      side.encode = p.encode;
      side.file = f.relpath;
      side.version_ident = p.version_ident;
      if (!p.version_ident.empty()) {
        side.version_value = resolve_version(model, f, p.version_ident);
        if (side.version_value.empty()) {
          finding_at(findings, "schema-coverage", f, p.line,
                     "codec '" + p.name + "': version constant '" +
                         p.version_ident +
                         "' not found in this translation unit or its "
                         "sibling header");
        }
      }

      // Variable attachment: a ByteWriter/ByteReader declaration on
      // the pragma line or the next one.
      bool attached = false;
      for (std::size_t cand = p.line;
           cand <= p.line + 1 && cand < f.code.size(); ++cand) {
        const std::string& cl = f.code[cand];
        for (const char* type : {"ByteWriter", "ByteReader"}) {
          const auto hits = find_word(cl, type);
          if (hits.empty()) continue;
          const std::string var = var_after_type(
              cl, hits[0] + std::string(type).size(), cl.size());
          if (var.empty()) continue;
          const std::size_t decl_offset =
              (cand < f.line_starts.size() ? f.line_starts[cand] : 0) +
              hits[0];
          const FunctionDef* host = nullptr;
          for (const FunctionDef& fn : f.functions) {
            if (decl_offset >= fn.body_begin && decl_offset < fn.body_end) {
              host = &fn;
              break;
            }
          }
          if (host == nullptr) continue;
          side.function = host->qualified;
          side.line = cand;
          side.ops = extractor.var_ops(f, *host, decl_offset, var);
          covered.insert(host);
          attached = true;
          break;
        }
        if (attached) break;
      }

      // Function attachment: the next function definition.
      if (!attached) {
        const FunctionDef* best = nullptr;
        for (const FunctionDef& fn : f.functions) {
          if (fn.head_line >= p.line && fn.head_line <= p.line + 8 &&
              (best == nullptr || fn.head_line < best->head_line)) {
            best = &fn;
          }
        }
        if (best != nullptr) {
          side.function = best->qualified;
          side.line = best->head_line;
          side.ops = extractor.function_ops(f, *best);
          covered.insert(best);
          attached = true;
        }
      }

      if (!attached) {
        finding_at(findings, "schema-coverage", f, p.line,
                   "codec pragma for '" + p.name +
                       "' is not followed by a function definition or a "
                       "ByteWriter/ByteReader declaration");
        continue;
      }
      if (side.ops.empty()) {
        finding_at(findings, "schema-coverage", f, side.line,
                   "codec '" + p.name +
                       "' extracted zero serde ops — pragma attached to "
                       "the wrong construct?");
        continue;
      }
      analysis.sides.push_back(std::move(side));
    }
  }

  // Coverage: unannotated serde users in src/.
  for (const SourceFile& f : model.files()) {
    if (!starts_with(f.relpath, "src/")) continue;
    if (f.relpath.find("util/serde") != std::string::npos) continue;
    for (const FunctionDef& fn : f.functions) {
      if (covered.count(&fn) != 0) continue;
      if (extractor.is_helper(fn)) continue;  // spliced into callers
      if (!extractor.uses_serde(f, fn)) continue;
      if (f.pragmas.allowed(fn.head_line, "schema-coverage")) continue;
      finding_at(findings, "schema-coverage", f, fn.head_line,
                 "'" + fn.qualified +
                     "' moves wire bytes without a codec annotation — add "
                     "'// tlclint: codec(name, encode|decode[, "
                     "version=kIdent])' or waive with allow(schema-coverage)");
    }
  }

  std::stable_sort(analysis.sides.begin(), analysis.sides.end(),
                   [](const CodecSide& a, const CodecSide& b) {
                     return std::tie(a.codec, b.encode, a.file, a.line) <
                            std::tie(b.codec, a.encode, b.file, b.line);
                   });
  return analysis;
}

std::string render_schema(const std::string& codec,
                          const std::vector<const CodecSide*>& sides) {
  std::ostringstream out;
  out << "# " << codec << " — canonical wire schema extracted by tlclint.\n"
      << "# Regenerate: tlclint --root . --write-schemas tools/schemas src\n"
      << "codec " << codec << "\n"
      << version_line(sides) << "\n"
      << "layout " << layout_hash(sides) << "\n";
  for (const CodecSide* s : sides) {
    out << (s->encode ? "encode " : "decode ") << s->file << " "
        << s->function << "\n";
    for (const SerdeOp& op : s->ops) {
      out << "  " << op.kind;
      for (int d = 0; d < op.loop_depth; ++d) out << "*";
      if (!op.arg.empty()) out << " " << op.arg;
      out << "\n";
    }
  }
  return out.str();
}

void check_asymmetry(const SchemaAnalysis& analysis,
                     std::vector<Finding>& findings) {
  for (const std::string& codec : analysis.codec_names()) {
    const auto sides = analysis.sides_of(codec);
    std::vector<const CodecSide*> encodes;
    std::vector<const CodecSide*> decodes;
    for (const CodecSide* s : sides) {
      (s->encode ? encodes : decodes).push_back(s);
    }
    const auto report = [&findings](const CodecSide& at,
                                    const std::string& message) {
      Finding f;
      f.rule = "schema-asymmetry";
      f.file = at.file;
      f.line = static_cast<int>(at.line) + 1;
      f.message = message;
      f.snippet = at.function;
      findings.push_back(std::move(f));
    };
    if (encodes.size() > 1) {
      report(*encodes[1], "codec '" + codec +
                              "' has more than one encode side — the wire "
                              "format owner must be unique");
    }
    if (encodes.empty() || decodes.empty()) continue;  // one-sided codec
    const std::vector<std::string> want = normalized_sequence(*encodes[0]);
    for (const CodecSide* d : decodes) {
      const std::vector<std::string> got = normalized_sequence(*d);
      if (got != want) {
        report(*d, "codec '" + codec + "' encode/decode asymmetry:\n"
                       "    encode: " + join_tokens(want) + "\n"
                       "    decode: " + join_tokens(got));
      }
    }
  }
}

namespace {

/// Renders a golden path relative to `root` when it lives under it;
/// output must not depend on whether the caller passed absolute or
/// relative paths.
std::string display_schema_path(const std::string& root, const fs::path& p) {
  std::error_code ec;
  const std::string rs = fs::weakly_canonical(root, ec).generic_string();
  const std::string ps = fs::weakly_canonical(p, ec).generic_string();
  if (!rs.empty() && ps.size() > rs.size() + 1 &&
      ps.compare(0, rs.size(), rs) == 0 && ps[rs.size()] == '/') {
    return ps.substr(rs.size() + 1);
  }
  return p.generic_string();
}

}  // namespace

void check_drift(const SchemaAnalysis& analysis,
                 const std::string& schemas_dir, const std::string& root,
                 bool complete_model, std::vector<Finding>& findings) {
  std::set<std::string> known;
  for (const std::string& codec : analysis.codec_names()) {
    known.insert(codec);
    const auto sides = analysis.sides_of(codec);
    const std::string rendered = render_schema(codec, sides);
    const fs::path path = fs::path(schemas_dir) / (codec + ".schema");
    const CodecSide& anchor = *sides[0];
    const auto report = [&findings, &anchor](const std::string& message) {
      Finding f;
      f.rule = "schema-drift";
      f.file = anchor.file;
      f.line = static_cast<int>(anchor.line) + 1;
      f.message = message;
      f.snippet = anchor.function;
      findings.push_back(std::move(f));
    };
    std::error_code ec;
    if (!fs::exists(path, ec)) {
      report("codec '" + codec + "' has no golden " +
             display_schema_path(root, path) +
             " — pin it with --write-schemas and commit the file");
      continue;
    }
    const std::string golden = read_text_file(path);
    if (golden == rendered) continue;
    const std::string golden_layout = golden_field(golden, "layout ");
    const std::string current_layout = "layout " + layout_hash(sides);
    const std::string golden_version = golden_field(golden, "version ");
    const std::string current_version = version_line(sides);
    if (golden_layout == current_layout) {
      report("codec '" + codec + "' golden is stale (naming/sides changed, "
             "wire layout unchanged) — regenerate with --write-schemas");
    } else if (golden_version == current_version) {
      report("codec '" + codec +
             "' WIRE LAYOUT CHANGED without a version bump (" +
             (current_version == "version none"
                  ? std::string("codec declares no version constant")
                  : current_version) +
             ") — bump the version constant, regenerate the golden with "
             "--write-schemas, and review the diff");
    } else {
      report("codec '" + codec + "' wire layout changed (version bumped: " +
             golden_version + " -> " + current_version +
             ") — regenerate the golden with --write-schemas and review "
             "the diff");
    }
  }

  if (!complete_model) return;
  std::error_code ec;
  if (!fs::is_directory(schemas_dir, ec)) return;
  std::vector<fs::path> orphans;
  for (const auto& entry : fs::directory_iterator(schemas_dir)) {
    if (!entry.is_regular_file() ||
        entry.path().extension() != ".schema") {
      continue;
    }
    if (known.count(entry.path().stem().string()) == 0) {
      orphans.push_back(entry.path());
    }
  }
  std::sort(orphans.begin(), orphans.end());
  for (const fs::path& p : orphans) {
    Finding f;
    f.rule = "schema-drift";
    f.file = display_schema_path(root, p);
    f.line = 1;
    f.message = "golden has no extracted codec named '" +
                p.stem().string() +
                "' — delete the file or restore the codec pragma";
    findings.push_back(std::move(f));
  }
}

int write_schemas(const SchemaAnalysis& analysis,
                  const std::string& schemas_dir, bool force,
                  std::string& log) {
  std::error_code ec;
  fs::create_directories(schemas_dir, ec);
  int rc = 0;
  for (const std::string& codec : analysis.codec_names()) {
    const auto sides = analysis.sides_of(codec);
    const std::string rendered = render_schema(codec, sides);
    const fs::path path = fs::path(schemas_dir) / (codec + ".schema");
    if (fs::exists(path, ec)) {
      const std::string golden = read_text_file(path);
      if (golden == rendered) {
        log += "  up-to-date " + codec + "\n";
        continue;
      }
      const std::string golden_layout = golden_field(golden, "layout ");
      const std::string current_layout = "layout " + layout_hash(sides);
      const std::string golden_version = golden_field(golden, "version ");
      if (golden_layout != current_layout &&
          golden_version == version_line(sides) && !force) {
        log += "  REFUSED    " + codec +
               " — wire layout changed but the version constant did not; "
               "bump it first (or --force-schemas)\n";
        rc = 2;
        continue;
      }
    }
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << rendered;
    log += "  wrote      " + codec + "\n";
  }
  return rc;
}

}  // namespace tlclint
