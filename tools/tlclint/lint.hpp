// tlclint — TLC's repo-native determinism & concurrency linter.
//
// v1 (PR 3) was a token/line scanner; v2 (ISSUE 8) adds a two-pass,
// include-graph-aware analysis: pass one loads every file into a
// cross-TU SourceModel (model.hpp), pass two runs the semantic rule
// families over it. No libclang — fast enough to run as a tier-1
// ctest over all of src/.
//
// Per-line rules (pass two, per file):
//
//   wallclock          no std::chrono clocks / time() / rand() /
//                      std::random_device outside util/rng.* and
//                      explicitly allowlisted sites (util/walltime.hpp)
//   float-money        no float/double in charging/money translation
//                      units (src/charging/, src/core/, src/epc/cdr*)
//   unordered-iter     no range-for over unordered_{map,set} without an
//                      ordering pragma — hash order must never reach
//                      serialization or aggregation
//   nodiscard-expected Expected<...>/Status-returning declarations must
//                      be [[nodiscard]]
//   naked-mutex        fleet/, transport/, recovery/ and epc/ofcs* must
//                      use the annotated util::Mutex/MutexLock/CondVar
//                      wrappers, never raw std::mutex & friends
//   journal-write      stateful subsystems (recovery/, core/, epc/,
//                      transport/, fleet/) must write durable bytes via
//                      util::fileio or the Journal API, never a raw
//                      ofstream/FILE
//
// Cross-TU rules (pass two, whole model):
//
//   schema-coverage    ByteWriter/ByteReader use without a
//                      `// tlclint: codec(...)` annotation (schema.hpp)
//   schema-asymmetry   encode/decode sides of one codec disagree after
//                      loop-normalization
//   schema-drift       extracted wire schema differs from the golden
//                      under tools/schemas/ (only with --schemas-dir);
//                      layout changes additionally demand a version-
//                      constant bump
//   lock-cycle         cycle in the cross-TU util::Mutex acquisition
//                      graph (locks.hpp), incl. self-re-acquisition
//   lock-discipline    naked .lock()/.unlock() on a util::Mutex
//   seed-stream        stream_seed/stream_rng index without a named
//                      stream token, or a k...Stream constant drawn
//                      outside its declaring owner (streams.hpp)
//
// Suppression is two-tier: in-code pragmas for sites that are correct
// by design (`// tlclint: allow(rule) reason` on the line or the line
// above; `// tlclint: ordered — reason` for unordered-iter), and a
// checked-in baseline file for legacy findings, so the lint lands clean
// and only *new* findings fail CI.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace tlclint {

struct Finding {
  std::string rule;
  std::string file;  // root-relative, forward slashes
  int line = 0;      // 1-based
  std::string message;
  std::string snippet;  // whitespace-normalized source line

  /// Baseline identity: deliberately excludes the line number so code
  /// motion above a legacy finding does not resurrect it.
  [[nodiscard]] std::string baseline_key() const;
};

struct Options {
  /// Paths are reported relative to this directory.
  std::string root = ".";
  /// Baseline file to subtract (empty = report everything).
  std::string baseline;
  /// Rules to run (empty = all).
  std::vector<std::string> rules;
  /// Directory of checked-in *.schema goldens; empty disables the
  /// schema-drift rule (coverage and asymmetry still run).
  std::string schemas_dir;
};

/// All rule names, in reporting order.
[[nodiscard]] const std::vector<std::string>& all_rules();

/// Lints one file's contents (exposed for unit tests and the fixture
/// corpus driver). `relpath` selects the path-scoped rules; `sibling
/// header` optionally supplies the paired .hpp text so member
/// declarations are visible when linting a .cpp. Cross-TU rules run
/// over a single-file model (plus the sibling as context).
[[nodiscard]] std::vector<Finding> lint_file(const std::string& relpath,
                                             const std::string& contents,
                                             const std::string& sibling_header,
                                             const Options& options);

/// Walks `paths` (files or directories; .cpp/.cc/.hpp/.h), lints every
/// file, runs the cross-TU rules over the combined model, returns
/// findings sorted by (file, line, rule).
[[nodiscard]] std::vector<Finding> lint_paths(
    const std::vector<std::string>& paths, const Options& options);

/// Extracts codec schemas from `paths` and writes/updates the goldens
/// in `schemas_dir`. Returns 0 on success, 2 when a layout change
/// without a version bump was refused (see --force-schemas). `log`
/// receives a per-codec summary.
[[nodiscard]] int write_schema_goldens(const std::vector<std::string>& paths,
                                       const Options& options,
                                       const std::string& schemas_dir,
                                       bool force, std::string& log);

/// Baseline I/O: a multiset of baseline keys.
[[nodiscard]] std::map<std::string, int> load_baseline(
    const std::string& path, std::string& error);
[[nodiscard]] std::string render_baseline(const std::vector<Finding>& findings);

/// Subtracts the baseline multiset; returns only new findings.
[[nodiscard]] std::vector<Finding> subtract_baseline(
    const std::vector<Finding>& findings,
    const std::map<std::string, int>& baseline, int& suppressed);

}  // namespace tlclint
