// Wire-schema extraction + drift detection (ISSUE 8 tentpole, rule
// family 1).
//
// Every codec built on util/serde.hpp declares itself with a pragma on
// the encode/decode function — or, when one function hosts several
// byte streams (the signed message framings), on the individual
// ByteWriter/ByteReader declaration:
//
//   // tlclint: codec(epc_cdr_compact, encode, version=kCompactWireVersion)
//   Bytes ChargingDataRecord::encode_compact() const { ... }
//
// The extractor walks the function body (splicing helper functions
// that take ByteWriter&/ByteReader&, tracking loop depth through
// for/while/do bodies) and produces the canonical field-order/width
// sequence. Three rules ride on it:
//
//   schema-coverage   a function moving bytes through ByteWriter/
//                     ByteReader without a codec annotation (waivable
//                     with allow(schema-coverage) for multiplexers)
//   schema-asymmetry  encode and decode sides of one codec disagree
//                     after loop-normalization (a run of one op kind
//                     containing a looped op collapses to `kind+`, so
//                     an encode-side unrolled loop still matches its
//                     decode-side rolled twin)
//   schema-drift      the rendered schema differs from the checked-in
//                     golden under tools/schemas/ — and if the *layout*
//                     (op kinds + loop depths) changed while the
//                     declared version constant did not, the finding
//                     demands a version bump, not just a regen
//
// --write-schemas regenerates goldens but refuses a layout change
// whose version constant is unbumped unless --force-schemas is given:
// the golden diff plus the version bump is the reviewed artifact.
#pragma once

#include <string>
#include <vector>

#include "lint.hpp"
#include "model.hpp"

namespace tlclint {

/// One serde call: kind is the ByteWriter/ByteReader method name.
struct SerdeOp {
  std::string kind;     // u8 u16 u32 u64 i64 f64 blob str
  int loop_depth = 0;   // number of enclosing for/while/do bodies
  std::string arg;      // normalized encode-side expression ("" decode)
  std::size_t line = 0;  // 0-based
};

/// One annotated encode or decode implementation of a codec.
struct CodecSide {
  std::string codec;
  bool encode = false;
  std::string file;      // root-relative
  std::string function;  // qualified name hosting the stream
  std::size_t line = 0;  // 0-based anchor (the pragma's target line)
  std::vector<SerdeOp> ops;
  std::string version_ident;  // "" = no version declared
  std::string version_value;  // "" = declared but unresolved
};

struct SchemaAnalysis {
  std::vector<CodecSide> sides;  // sorted (codec, decode-after-encode)
  /// Codec names in first-seen sorted order.
  [[nodiscard]] std::vector<std::string> codec_names() const;
  [[nodiscard]] std::vector<const CodecSide*> sides_of(
      const std::string& codec) const;
};

/// Extracts every annotated codec side from the model. Emits
/// schema-coverage findings for unannotated serde users and
/// schema-asymmetry findings for malformed pragmas.
[[nodiscard]] SchemaAnalysis extract_schemas(const SourceModel& model,
                                             std::vector<Finding>& findings);

/// Canonical golden text for one codec (stable across runs).
[[nodiscard]] std::string render_schema(
    const std::string& codec, const std::vector<const CodecSide*>& sides);

/// Encode↔decode agreement after loop-normalization.
void check_asymmetry(const SchemaAnalysis& analysis,
                     std::vector<Finding>& findings);

/// Rendered schemas vs checked-in goldens in `schemas_dir`.
/// `complete_model` additionally flags orphan goldens (only meaningful
/// when the model covers the whole tree, not a single mutated file).
/// Golden paths in findings are printed relative to `root` when they
/// live under it, so output is stable across invocation styles.
void check_drift(const SchemaAnalysis& analysis,
                 const std::string& schemas_dir, const std::string& root,
                 bool complete_model, std::vector<Finding>& findings);

/// Writes/updates goldens. Returns 0 on success, 2 when a layout
/// change without a version bump was refused (unless `force`).
/// Appends a human-readable summary to `log`.
[[nodiscard]] int write_schemas(const SchemaAnalysis& analysis,
                                const std::string& schemas_dir, bool force,
                                std::string& log);

}  // namespace tlclint
