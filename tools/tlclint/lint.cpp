#include "lint.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "locks.hpp"
#include "model.hpp"
#include "schema.hpp"
#include "streams.hpp"

namespace tlclint {
namespace {

namespace fs = std::filesystem;

void add_finding(std::vector<Finding>& out, const std::string& rule,
                 const std::string& relpath, std::size_t line_index,
                 const std::string& message,
                 const std::vector<std::string>& code_lines) {
  Finding f;
  f.rule = rule;
  f.file = relpath;
  f.line = static_cast<int>(line_index) + 1;
  f.message = message;
  f.snippet = normalize_ws(code_lines[line_index]);
  out.push_back(std::move(f));
}

// --------------------------------------------------------------------
// Rule: wallclock
// --------------------------------------------------------------------

void rule_wallclock(const std::string& relpath,
                    const std::vector<std::string>& code,
                    const Pragmas& pragmas, std::vector<Finding>& out) {
  if (relpath.find("util/rng.") != std::string::npos) return;
  static const std::vector<std::string> kTokens = {
      "system_clock",   "steady_clock", "high_resolution_clock",
      "random_device",  "gettimeofday", "clock_gettime",
      "timespec_get",   "localtime",    "gmtime",
      "mktime",         "mt19937",      "minstd_rand",
      "default_random_engine",
  };
  static const std::vector<std::string> kCalls = {"time", "clock", "rand",
                                                  "srand"};
  static const std::vector<std::string> kHeaders = {
      "<chrono>", "<ctime>", "<time.h>", "<random>", "<sys/time.h>"};
  // The §13 bypass generators carry a stricter contract: all their
  // randomness must come from the injected seeded Rng stream, so the
  // OS-entropy syscalls (which the base rule tolerates elsewhere, e.g.
  // in tooling) are banned outright in their translation units.
  static const std::vector<std::string> kEntropyCalls = {
      "getrandom", "getentropy",       "arc4random", "arc4random_uniform",
      "rand_r",    "drand48",          "lrand48",    "mrand48",
      "random",    "arc4random_buf",
  };
  const bool adversarial_scope =
      relpath.find("workloads/adversarial") != std::string::npos;
  for (std::size_t i = 0; i < code.size(); ++i) {
    if (pragmas.allowed(i, "wallclock")) continue;
    const std::string& line = code[i];
    bool flagged = false;
    for (const std::string& token : kTokens) {
      if (!find_word(line, token).empty()) {
        add_finding(out, "wallclock", relpath, i,
                    "wall-clock / ambient-RNG primitive '" + token +
                        "' — use SimTime (util/simtime.hpp) or a seeded "
                        "util::Rng stream",
                    code);
        flagged = true;
        break;
      }
    }
    if (flagged) continue;
    for (const std::string& call : kCalls) {
      if (!find_call(line, call).empty()) {
        add_finding(out, "wallclock", relpath, i,
                    "call to '" + call +
                        "()' reads ambient time/randomness — settlement "
                        "must be a pure function of seeds and SimTime",
                    code);
        flagged = true;
        break;
      }
    }
    if (flagged) continue;
    if (adversarial_scope) {
      for (const std::string& call : kEntropyCalls) {
        if (!find_call(line, call).empty()) {
          add_finding(out, "wallclock", relpath, i,
                      "call to '" + call +
                          "()' draws OS entropy in an adversarial "
                          "generator — bypass traffic must derive from its "
                          "injected seeded Rng stream",
                      code);
          flagged = true;
          break;
        }
      }
      if (flagged) continue;
    }
    if (line.find("#include") != std::string::npos) {
      for (const std::string& header : kHeaders) {
        if (line.find(header) != std::string::npos) {
          add_finding(out, "wallclock", relpath, i,
                      "include of wall-clock/RNG header " + header +
                          " — only util/rng.* and allowlisted sites may",
                      code);
          break;
        }
      }
    }
  }
}

// --------------------------------------------------------------------
// Rule: float-money
// --------------------------------------------------------------------

bool in_money_tu(const std::string& relpath) {
  return starts_with(relpath, "src/charging/") ||
         starts_with(relpath, "src/core/") ||
         starts_with(relpath, "src/epc/cdr");
}

void rule_float_money(const std::string& relpath,
                      const std::vector<std::string>& code,
                      const Pragmas& pragmas, std::vector<Finding>& out) {
  if (!in_money_tu(relpath)) return;
  for (std::size_t i = 0; i < code.size(); ++i) {
    if (pragmas.allowed(i, "float-money")) continue;
    if (!find_word(code[i], "float").empty() ||
        !find_word(code[i], "double").empty()) {
      add_finding(out, "float-money", relpath, i,
                  "floating point in a charging/money translation unit — "
                  "bill in integer bytes; derive ratios at the edges",
                  code);
    }
  }
}

// --------------------------------------------------------------------
// Rule: unordered-iter
// --------------------------------------------------------------------

/// Collects variable/member names declared (or passed) with an
/// unordered_{map,set} type in `code`.
std::set<std::string> unordered_names(const std::vector<std::string>& code) {
  std::set<std::string> names;
  // Join into one buffer with line breaks as spaces: declarations wrap.
  std::string joined;
  for (const std::string& line : code) {
    joined += line;
    joined += ' ';
  }
  for (const char* container : {"unordered_map", "unordered_set"}) {
    std::size_t pos = 0;
    while ((pos = joined.find(container, pos)) != std::string::npos) {
      std::size_t i = pos + std::string(container).size();
      pos = i;
      while (i < joined.size() && joined[i] == ' ') ++i;
      if (i >= joined.size() || joined[i] != '<') continue;
      int depth = 0;
      while (i < joined.size()) {
        if (joined[i] == '<') ++depth;
        if (joined[i] == '>') {
          --depth;
          if (depth == 0) {
            ++i;
            break;
          }
        }
        ++i;
      }
      // Skip refs/pointers/qualifiers between the type and the name.
      for (;;) {
        while (i < joined.size() &&
               (joined[i] == ' ' || joined[i] == '&' || joined[i] == '*')) {
          ++i;
        }
        if (joined.compare(i, 5, "const") == 0 &&
            (i + 5 >= joined.size() || !is_ident_char(joined[i + 5]))) {
          i += 5;
          continue;
        }
        break;
      }
      std::string name;
      while (i < joined.size() && is_ident_char(joined[i])) {
        name += joined[i++];
      }
      if (!name.empty() &&
          std::isdigit(static_cast<unsigned char>(name[0])) == 0) {
        names.insert(name);
      }
    }
  }
  return names;
}

void rule_unordered_iter(const std::string& relpath,
                         const std::vector<std::string>& code,
                         const std::set<std::string>& names,
                         const Pragmas& pragmas, std::vector<Finding>& out) {
  for (std::size_t i = 0; i < code.size(); ++i) {
    const std::vector<std::size_t> fors = find_word(code[i], "for");
    if (fors.empty()) continue;
    // Join up to 4 lines so a wrapped for-header is still parsed.
    std::string joined;
    for (std::size_t j = i; j < code.size() && j < i + 4; ++j) {
      joined += code[j];
      joined += ' ';
    }
    for (std::size_t start : fors) {
      std::size_t open = joined.find('(', start);
      if (open == std::string::npos) continue;
      int depth = 0;
      std::size_t close = open;
      while (close < joined.size()) {
        if (joined[close] == '(') ++depth;
        if (joined[close] == ')') {
          --depth;
          if (depth == 0) break;
        }
        ++close;
      }
      if (close >= joined.size()) continue;
      const std::string header = joined.substr(open + 1, close - open - 1);
      // Range-for: a top-level ':' that is not part of '::'.
      std::size_t colon = std::string::npos;
      int inner = 0;
      for (std::size_t k = 0; k < header.size(); ++k) {
        const char c = header[k];
        if (c == '(' || c == '<' || c == '[') ++inner;
        if (c == ')' || c == '>' || c == ']') --inner;
        if (c == ':' && inner == 0) {
          const bool dbl = (k + 1 < header.size() && header[k + 1] == ':') ||
                           (k > 0 && header[k - 1] == ':');
          if (!dbl) {
            colon = k;
            break;
          }
        }
      }
      if (colon == std::string::npos) continue;
      const std::string range = header.substr(colon + 1);
      bool hit = range.find("unordered_") != std::string::npos;
      if (!hit) {
        std::string ident;
        for (std::size_t k = 0; k <= range.size(); ++k) {
          if (k < range.size() && is_ident_char(range[k])) {
            ident += range[k];
          } else {
            if (!ident.empty() && names.count(ident) != 0) {
              hit = true;
              break;
            }
            ident.clear();
          }
        }
      }
      if (hit && !pragmas.allowed(i, "unordered-iter")) {
        add_finding(out, "unordered-iter", relpath, i,
                    "iteration over an unordered container — hash order "
                    "must not reach serialization/aggregation; iterate a "
                    "sorted view or annotate '// tlclint: ordered — why'",
                    code);
      }
    }
  }
}

// --------------------------------------------------------------------
// Rule: nodiscard-expected
// --------------------------------------------------------------------

void rule_nodiscard(const std::string& relpath,
                    const std::vector<std::string>& raw,
                    const std::vector<std::string>& code,
                    const Pragmas& pragmas, std::vector<Finding>& out) {
  const bool is_header = relpath.size() > 4 &&
                         (relpath.rfind(".hpp") == relpath.size() - 4 ||
                          relpath.rfind(".h") == relpath.size() - 2);
  if (!is_header) return;
  static const std::vector<std::string> kPrefixes = {
      "[[nodiscard]]", "static", "inline", "virtual",
      "constexpr",     "friend", "explicit"};
  for (std::size_t i = 0; i < code.size(); ++i) {
    if (pragmas.allowed(i, "nodiscard-expected")) continue;
    std::string s = trim(code[i]);
    for (bool stripped = true; stripped;) {
      stripped = false;
      for (const std::string& prefix : kPrefixes) {
        if (starts_with(s, prefix)) {
          s = trim(s.substr(prefix.size()));
          stripped = true;
        }
      }
    }
    std::string rest;
    if (starts_with(s, "Expected<")) {
      std::size_t k = 8;
      int depth = 0;
      while (k < s.size()) {
        if (s[k] == '<') ++depth;
        if (s[k] == '>') {
          --depth;
          if (depth == 0) {
            ++k;
            break;
          }
        }
        ++k;
      }
      if (k >= s.size()) continue;  // type wraps to next line; rare
      rest = trim(s.substr(k));
    } else if (starts_with(s, "Status") &&
               (s.size() == 6 || !is_ident_char(s[6]))) {
      rest = trim(s.substr(6));
    } else {
      continue;
    }
    // `rest` must look like `identifier(` — skips variables, ctors
    // (`Status(...)`) and out-of-line definitions (`Foo::bar(`).
    std::string ident;
    std::size_t k = 0;
    while (k < rest.size() && is_ident_char(rest[k])) ident += rest[k++];
    if (ident.empty() || k >= rest.size() || rest[k] != '(') continue;
    const bool annotated =
        raw[i].find("[[nodiscard]]") != std::string::npos ||
        (i > 0 && raw[i - 1].find("[[nodiscard]]") != std::string::npos);
    if (!annotated) {
      add_finding(out, "nodiscard-expected", relpath, i,
                  "declaration returning Expected/Status without "
                  "[[nodiscard]] — dropped errors are silent undercharges",
                  code);
    }
  }
}

// --------------------------------------------------------------------
// Rule: naked-mutex
// --------------------------------------------------------------------

bool in_annotated_subsystem(const std::string& relpath) {
  return starts_with(relpath, "src/fleet/") ||
         starts_with(relpath, "src/transport/") ||
         starts_with(relpath, "src/recovery/") ||
         starts_with(relpath, "src/epc/ofcs") ||
         // Crypto contexts are shared read-only across fleet workers;
         // any mutex appearing there signals a design change that needs
         // the same annotation discipline as the fleet itself.
         starts_with(relpath, "src/crypto/");
}

void rule_naked_mutex(const std::string& relpath,
                      const std::vector<std::string>& code,
                      const Pragmas& pragmas, std::vector<Finding>& out) {
  if (!in_annotated_subsystem(relpath)) return;
  // Longest-first so condition_variable_any wins over its prefix.
  static const std::vector<std::string> kTokens = {
      "std::recursive_timed_mutex",
      "std::condition_variable_any",
      "std::shared_timed_mutex",
      "std::condition_variable",
      "std::recursive_mutex",
      "std::timed_mutex",
      "std::shared_mutex",
      "std::scoped_lock",
      "std::unique_lock",
      "std::lock_guard",
      "std::once_flag",
      "std::call_once",
      "std::mutex",
  };
  for (std::size_t i = 0; i < code.size(); ++i) {
    if (pragmas.allowed(i, "naked-mutex")) continue;
    for (const std::string& token : kTokens) {
      if (!find_word(code[i], token).empty()) {
        add_finding(out, "naked-mutex", relpath, i,
                    "raw '" + token +
                        "' in an annotated subsystem — use util::Mutex / "
                        "MutexLock / CondVar (util/thread_annotations.hpp) "
                        "so Clang's -Wthread-safety sees the lock",
                    code);
        break;
      }
    }
  }
}

// --------------------------------------------------------------------
// Rule: journal-write
// --------------------------------------------------------------------

/// Subsystems whose on-disk bytes are recovery-critical: every durable
/// write must go through util::fileio or the Journal append path, both
/// of which understand atomicity and framing. An ad-hoc ofstream here
/// is a torn-write waiting for a crash.
bool in_stateful_subsystem(const std::string& relpath) {
  return starts_with(relpath, "src/recovery/") ||
         starts_with(relpath, "src/core/") ||
         starts_with(relpath, "src/epc/") ||
         starts_with(relpath, "src/transport/") ||
         starts_with(relpath, "src/fleet/");
}

void rule_journal_write(const std::string& relpath,
                        const std::vector<std::string>& code,
                        const Pragmas& pragmas, std::vector<Finding>& out) {
  if (!in_stateful_subsystem(relpath)) return;
  // The Journal implementation is the one blessed ofstream owner (its
  // append path needs a persistent stream for frame-granular flushes).
  if (relpath.find("src/recovery/journal.") != std::string::npos) return;
  static const std::vector<std::string> kTokens = {"ofstream", "fstream",
                                                   "FILE"};
  static const std::vector<std::string> kCalls = {"fopen", "fwrite", "fputs",
                                                  "fprintf"};
  for (std::size_t i = 0; i < code.size(); ++i) {
    if (pragmas.allowed(i, "journal-write")) continue;
    const std::string& line = code[i];
    bool flagged = false;
    for (const std::string& token : kTokens) {
      if (!find_word(line, token).empty()) {
        add_finding(out, "journal-write", relpath, i,
                    "raw file-write primitive '" + token +
                        "' in a stateful subsystem — durable bytes must go "
                        "through util::fileio or the Journal API "
                        "(recovery/journal.hpp), never an ad-hoc stream",
                    code);
        flagged = true;
        break;
      }
    }
    if (flagged) continue;
    for (const std::string& call : kCalls) {
      if (!find_call(line, call).empty()) {
        add_finding(out, "journal-write", relpath, i,
                    "call to '" + call +
                        "()' writes files behind the recovery machinery's "
                        "back — use util::fileio or the Journal API",
                    code);
        break;
      }
    }
  }
}

// --------------------------------------------------------------------
// Pass drivers
// --------------------------------------------------------------------

bool rule_enabled(const Options& options, const std::string& rule) {
  return options.rules.empty() ||
         std::find(options.rules.begin(), options.rules.end(), rule) !=
             options.rules.end();
}

/// Per-line rules over one file (pass two, file-local part).
std::vector<Finding> lint_lines(const std::string& relpath,
                                const std::vector<std::string>& raw,
                                const std::vector<std::string>& code,
                                const Pragmas& pragmas,
                                const std::set<std::string>& unordered,
                                const Options& options) {
  std::vector<Finding> findings;
  if (rule_enabled(options, "wallclock")) {
    rule_wallclock(relpath, code, pragmas, findings);
  }
  if (rule_enabled(options, "float-money")) {
    rule_float_money(relpath, code, pragmas, findings);
  }
  if (rule_enabled(options, "unordered-iter")) {
    rule_unordered_iter(relpath, code, unordered, pragmas, findings);
  }
  if (rule_enabled(options, "nodiscard-expected")) {
    rule_nodiscard(relpath, raw, code, pragmas, findings);
  }
  if (rule_enabled(options, "naked-mutex")) {
    rule_naked_mutex(relpath, code, pragmas, findings);
  }
  if (rule_enabled(options, "journal-write")) {
    rule_journal_write(relpath, code, pragmas, findings);
  }
  return findings;
}

/// Cross-TU rules over the whole model. `context_files` were loaded
/// only to resolve symbols (sibling headers of linted .cpp files);
/// findings inside them are dropped. `complete_model` enables the
/// orphan-golden check (meaningless on partial models).
void run_semantic(const SourceModel& model, const Options& options,
                  bool complete_model,
                  const std::set<std::string>& context_files,
                  std::vector<Finding>& out) {
  std::vector<Finding> sem;
  const bool want_schema = rule_enabled(options, "schema-coverage") ||
                           rule_enabled(options, "schema-asymmetry") ||
                           rule_enabled(options, "schema-drift");
  if (want_schema) {
    const SchemaAnalysis analysis = extract_schemas(model, sem);
    if (rule_enabled(options, "schema-asymmetry")) {
      check_asymmetry(analysis, sem);
    }
    if (rule_enabled(options, "schema-drift") &&
        !options.schemas_dir.empty()) {
      check_drift(analysis, options.schemas_dir, options.root, complete_model,
                  sem);
    }
  }
  if (rule_enabled(options, "lock-cycle") ||
      rule_enabled(options, "lock-discipline")) {
    check_locks(model, sem);
  }
  if (rule_enabled(options, "seed-stream")) {
    check_streams(model, sem);
  }
  for (Finding& f : sem) {
    if (!rule_enabled(options, f.rule)) continue;
    if (context_files.count(f.file) != 0) continue;
    out.push_back(std::move(f));
  }
}

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

bool lintable_extension(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".cpp" || ext == ".cc" || ext == ".hpp" || ext == ".h";
}

std::string to_relpath(const fs::path& path, const fs::path& root) {
  std::error_code ec;
  fs::path rel = fs::relative(path, root, ec);
  std::string s = (ec || rel.empty()) ? path.string() : rel.generic_string();
  return s;
}

struct LoadedTree {
  SourceModel model;
  /// Relpaths the caller asked to lint, in walk order.
  std::vector<std::string> requested;
  /// Relpaths loaded only as symbol context (sibling headers).
  std::set<std::string> context;
  /// True when any input path was a directory — the model then covers
  /// a whole subtree and completeness checks make sense.
  bool complete = false;
};

LoadedTree load_tree(const std::vector<std::string>& paths,
                     const Options& options) {
  const fs::path root = fs::path(options.root);
  LoadedTree tree;
  std::vector<fs::path> files;
  for (const std::string& p : paths) {
    const fs::path path(p);
    if (fs::is_directory(path)) {
      tree.complete = true;
      for (const auto& entry : fs::recursive_directory_iterator(path)) {
        if (entry.is_regular_file() && lintable_extension(entry.path())) {
          files.push_back(entry.path());
        }
      }
    } else if (fs::is_regular_file(path)) {
      files.push_back(path);
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  std::set<std::string> loaded;
  for (const fs::path& file : files) {
    const std::string rel = to_relpath(file, root);
    if (!loaded.insert(rel).second) continue;
    tree.model.add_file(rel, read_file(file));
    tree.requested.push_back(rel);
  }
  // Sibling headers of linted .cpp files join the model as context:
  // member declarations, version constants and mutex declarations live
  // there even when only the .cpp was requested.
  for (const fs::path& file : files) {
    if (file.extension() != ".cpp" && file.extension() != ".cc") continue;
    fs::path header = file;
    header.replace_extension(".hpp");
    if (!fs::exists(header)) continue;
    const std::string rel = to_relpath(header, root);
    if (!loaded.insert(rel).second) continue;
    tree.model.add_file(rel, read_file(header));
    tree.context.insert(rel);
  }
  tree.model.finalize();
  return tree;
}

}  // namespace

std::string Finding::baseline_key() const {
  return rule + "|" + file + "|" + snippet;
}

const std::vector<std::string>& all_rules() {
  static const std::vector<std::string> kRules = {
      "wallclock",       "float-money",      "unordered-iter",
      "nodiscard-expected", "naked-mutex",   "journal-write",
      "schema-coverage", "schema-asymmetry", "schema-drift",
      "lock-cycle",      "lock-discipline",  "seed-stream"};
  return kRules;
}

std::vector<Finding> lint_file(const std::string& relpath,
                               const std::string& contents,
                               const std::string& sibling_header,
                               const Options& options) {
  SourceModel model;
  model.add_file(relpath, contents);
  std::set<std::string> context;
  if (!sibling_header.empty()) {
    const SourceFile* f = model.file(relpath);
    const std::string sibling_rel = f->stem() + ".hpp";
    model.add_file(sibling_rel, sibling_header);
    context.insert(sibling_rel);
  }
  model.finalize();

  const SourceFile& sf = *model.file(relpath);
  std::set<std::string> names = unordered_names(sf.code);
  if (!sibling_header.empty()) {
    for (const std::string& name :
         unordered_names(model.file(sf.stem() + ".hpp")->code)) {
      names.insert(name);
    }
  }
  std::vector<Finding> findings =
      lint_lines(relpath, sf.raw, sf.code, sf.pragmas, names, options);
  run_semantic(model, options, /*complete_model=*/false, context, findings);
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule) <
                     std::tie(b.file, b.line, b.rule);
            });
  return findings;
}

std::vector<Finding> lint_paths(const std::vector<std::string>& paths,
                                const Options& options) {
  const LoadedTree tree = load_tree(paths, options);

  std::vector<Finding> findings;
  for (const std::string& rel : tree.requested) {
    const SourceFile& sf = *tree.model.file(rel);
    std::set<std::string> names = unordered_names(sf.code);
    for (const SourceFile* sib : tree.model.stem_group(sf.stem())) {
      if (sib == &sf) continue;
      for (const std::string& name : unordered_names(sib->code)) {
        names.insert(name);
      }
    }
    const std::vector<Finding> file_findings =
        lint_lines(rel, sf.raw, sf.code, sf.pragmas, names, options);
    findings.insert(findings.end(), file_findings.begin(),
                    file_findings.end());
  }
  run_semantic(tree.model, options, tree.complete, tree.context, findings);
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule) <
                     std::tie(b.file, b.line, b.rule);
            });
  return findings;
}

int write_schema_goldens(const std::vector<std::string>& paths,
                         const Options& options,
                         const std::string& schemas_dir, bool force,
                         std::string& log) {
  const LoadedTree tree = load_tree(paths, options);
  std::vector<Finding> scratch;
  const SchemaAnalysis analysis = extract_schemas(tree.model, scratch);
  return write_schemas(analysis, schemas_dir, force, log);
}

std::map<std::string, int> load_baseline(const std::string& path,
                                         std::string& error) {
  std::map<std::string, int> baseline;
  std::ifstream in(path);
  if (!in) {
    error = "cannot open baseline file: " + path;
    return baseline;
  }
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    ++baseline[line];
  }
  return baseline;
}

std::string render_baseline(const std::vector<Finding>& findings) {
  std::vector<std::string> keys;
  keys.reserve(findings.size());
  for (const Finding& f : findings) keys.push_back(f.baseline_key());
  std::sort(keys.begin(), keys.end());
  std::ostringstream out;
  out << "# tlclint suppression baseline.\n"
      << "# One `rule|file|normalized snippet` per legacy finding; new\n"
      << "# findings not listed here fail the `static`-labelled ctest.\n"
      << "# Regenerate (after fixing or consciously accepting findings):\n"
      << "#   tlclint --root . --write-baseline tools/tlclint/baseline.txt "
         "src\n";
  for (const std::string& key : keys) out << key << "\n";
  return out.str();
}

std::vector<Finding> subtract_baseline(
    const std::vector<Finding>& findings,
    const std::map<std::string, int>& baseline, int& suppressed) {
  std::map<std::string, int> budget = baseline;
  std::vector<Finding> fresh;
  suppressed = 0;
  for (const Finding& f : findings) {
    auto it = budget.find(f.baseline_key());
    if (it != budget.end() && it->second > 0) {
      --it->second;
      ++suppressed;
    } else {
      fresh.push_back(f);
    }
  }
  return fresh;
}

}  // namespace tlclint
