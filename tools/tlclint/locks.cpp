#include "locks.hpp"

#include <algorithm>
#include <cctype>
#include <functional>
#include <map>
#include <set>
#include <tuple>

namespace tlclint {
namespace {

bool lock_scope_file(const SourceFile& f) {
  return starts_with(f.relpath, "src/") &&
         f.relpath.find("util/thread_annotations") == std::string::npos;
}

struct MutexDecl {
  std::string id;    // "<stem>::<name>"
  std::string name;  // declared variable name
  std::string stem;
  std::string file;
  std::size_t line = 0;
};

std::string ident_after(const std::string& line, std::size_t i) {
  while (i < line.size() &&
         (line[i] == ' ' || line[i] == '\t' || line[i] == '&' ||
          line[i] == '*')) {
    ++i;
  }
  std::string name;
  while (i < line.size() && is_ident_char(line[i])) name.push_back(line[i++]);
  if (!name.empty() && std::isdigit(static_cast<unsigned char>(name[0]))) {
    return "";
  }
  return name;
}

/// Last identifier of an expression like `shard->state_.mu_`.
std::string last_ident(const std::string& expr) {
  std::string name;
  std::string current;
  for (char c : expr) {
    if (is_ident_char(c)) {
      current.push_back(c);
    } else {
      if (!current.empty()) name = current;
      current.clear();
    }
  }
  if (!current.empty()) name = current;
  return name;
}

std::vector<MutexDecl> collect_mutexes(const SourceModel& model) {
  std::vector<MutexDecl> decls;
  for (const SourceFile& f : model.files()) {
    if (!lock_scope_file(f)) continue;
    for (std::size_t i = 0; i < f.code.size(); ++i) {
      for (std::size_t pos : find_word(f.code[i], "Mutex")) {
        const std::string name = ident_after(f.code[i], pos + 5);
        if (name.empty()) continue;
        MutexDecl d;
        d.name = name;
        d.stem = f.stem();
        d.id = d.stem + "::" + name;
        d.file = f.relpath;
        d.line = i;
        decls.push_back(std::move(d));
      }
    }
  }
  return decls;
}

struct MutexIndex {
  // name -> decls with that name; stem+name -> id.
  std::map<std::string, std::vector<const MutexDecl*>> by_name;
  std::map<std::string, std::string> by_stem_name;

  /// Resolution: same stem group first, then a model-wide unique name;
  /// ambiguous or unknown names stay unresolved (no edge, no finding).
  [[nodiscard]] std::string resolve(const std::string& stem,
                                    const std::string& name) const {
    auto it = by_stem_name.find(stem + "::" + name);
    if (it != by_stem_name.end()) return it->second;
    auto nit = by_name.find(name);
    if (nit != by_name.end() && nit->second.size() == 1) {
      return nit->second[0]->id;
    }
    return "";
  }
};

struct Site {
  std::string file;
  std::size_t line = 0;
};

struct CallSite {
  std::string callee;
  std::vector<std::string> held;  // mutex ids live at the call
  Site site;
};

/// Per-function facts from one scope-tracked body scan.
struct FnFacts {
  std::set<std::string> direct_acquires;
  std::vector<CallSite> calls;
  // Nesting edges observed directly in this body.
  std::vector<std::tuple<std::string, std::string, Site>> edges;
};

FnFacts scan_function(const SourceFile& f, const FunctionDef& fn,
                      const MutexIndex& index,
                      const std::set<std::string>& fn_names) {
  FnFacts facts;
  const std::string& t = f.joined;
  struct Held {
    std::string id;
    int depth;
  };
  std::vector<Held> active;
  int depth = 0;
  std::size_t i = fn.body_begin;
  while (i < fn.body_end) {
    const char c = t[i];
    if (c == '{') {
      ++depth;
      ++i;
      continue;
    }
    if (c == '}') {
      --depth;
      while (!active.empty() && active.back().depth > depth) {
        active.pop_back();
      }
      ++i;
      continue;
    }
    if (!is_ident_char(c)) {
      ++i;
      continue;
    }
    const std::size_t b = i;
    while (i < fn.body_end && is_ident_char(t[i])) ++i;
    if (b > 0 && is_ident_char(t[b - 1])) continue;
    const std::string word = t.substr(b, i - b);
    std::size_t j = i;
    while (j < fn.body_end && (t[j] == ' ' || t[j] == '\t' || t[j] == '\n')) {
      ++j;
    }
    if (word == "MutexLock") {
      // `MutexLock <var>(<expr>)` — the expression names the mutex.
      std::size_t k = j;
      while (k < fn.body_end && is_ident_char(t[k])) ++k;
      while (k < fn.body_end && (t[k] == ' ' || t[k] == '\t')) ++k;
      if (k >= fn.body_end || t[k] != '(') continue;
      int pd = 0;
      std::size_t close = k;
      while (close < fn.body_end) {
        if (t[close] == '(') ++pd;
        if (t[close] == ')') {
          --pd;
          if (pd == 0) break;
        }
        ++close;
      }
      std::string expr = t.substr(k + 1, close - k - 1);
      const std::size_t comma = expr.find(',');
      if (comma != std::string::npos) expr = expr.substr(0, comma);
      const std::string mutex_name = last_ident(expr);
      const std::string id = index.resolve(f.stem(), mutex_name);
      i = close < fn.body_end ? close + 1 : fn.body_end;
      if (id.empty()) continue;
      const Site site{f.relpath, f.line_of(b)};
      for (const Held& h : active) {
        facts.edges.emplace_back(h.id, id, site);
      }
      facts.direct_acquires.insert(id);
      active.push_back({id, depth});
      continue;
    }
    if (j < fn.body_end && t[j] == '(' && fn_names.count(word) != 0) {
      CallSite call;
      call.callee = word;
      for (const Held& h : active) call.held.push_back(h.id);
      call.site = {f.relpath, f.line_of(b)};
      facts.calls.push_back(std::move(call));
    }
  }
  return facts;
}

}  // namespace

void check_locks(const SourceModel& model, std::vector<Finding>& findings) {
  const std::vector<MutexDecl> decls = collect_mutexes(model);
  if (decls.empty()) return;
  MutexIndex index;
  for (const MutexDecl& d : decls) {
    index.by_name[d.name].push_back(&d);
    index.by_stem_name[d.stem + "::" + d.name] = d.id;
  }

  // lock-discipline: naked lock()/unlock() on a resolved util::Mutex.
  static const std::vector<std::string> kNaked = {".lock(", ".try_lock(",
                                                 ".unlock("};
  for (const SourceFile& f : model.files()) {
    if (!lock_scope_file(f)) continue;
    for (std::size_t i = 0; i < f.code.size(); ++i) {
      const std::string& line = f.code[i];
      for (const std::string& pat : kNaked) {
        std::size_t pos = 0;
        while ((pos = line.find(pat, pos)) != std::string::npos) {
          std::size_t vb = pos;
          while (vb > 0 && is_ident_char(line[vb - 1])) --vb;
          const std::string var = line.substr(vb, pos - vb);
          pos += pat.size();
          if (var.empty()) continue;
          if (index.resolve(f.stem(), var).empty()) continue;
          if (f.pragmas.allowed(i, "lock-discipline")) continue;
          Finding fnd;
          fnd.rule = "lock-discipline";
          fnd.file = f.relpath;
          fnd.line = static_cast<int>(i) + 1;
          fnd.message =
              "naked '" + pat.substr(1) +
              ")' on util::Mutex '" + var +
              "' — acquire through MutexLock so -Wthread-safety and the "
              "lock-order graph both see it";
          fnd.snippet = normalize_ws(line);
          findings.push_back(std::move(fnd));
        }
      }
    }
  }

  // Function facts + may-acquire fixpoint over the call graph.
  std::set<std::string> fn_names;
  for (const SourceFile& f : model.files()) {
    if (!lock_scope_file(f)) continue;
    for (const FunctionDef& fn : f.functions) fn_names.insert(fn.name);
  }
  struct Keyed {
    const SourceFile* file;
    const FunctionDef* fn;
    FnFacts facts;
  };
  std::vector<Keyed> all;
  std::map<std::string, std::vector<std::size_t>> by_fn_name;
  for (const SourceFile& f : model.files()) {
    if (!lock_scope_file(f)) continue;
    for (const FunctionDef& fn : f.functions) {
      Keyed k{&f, &fn, scan_function(f, fn, index, fn_names)};
      by_fn_name[fn.name].push_back(all.size());
      all.push_back(std::move(k));
    }
  }
  std::vector<std::set<std::string>> may_acquire(all.size());
  for (std::size_t i = 0; i < all.size(); ++i) {
    may_acquire[i] = all[i].facts.direct_acquires;
  }
  for (bool changed = true; changed;) {
    changed = false;
    for (std::size_t i = 0; i < all.size(); ++i) {
      for (const CallSite& call : all[i].facts.calls) {
        auto it = by_fn_name.find(call.callee);
        if (it == by_fn_name.end()) continue;
        for (std::size_t callee : it->second) {
          for (const std::string& m : may_acquire[callee]) {
            if (may_acquire[i].insert(m).second) changed = true;
          }
        }
      }
    }
  }

  // Edge set: direct nesting + held-across-call transitive edges.
  std::map<std::pair<std::string, std::string>, Site> edges;
  const auto add_edge = [&edges](const std::string& from,
                                 const std::string& to, const Site& site) {
    edges.emplace(std::make_pair(from, to), site);
  };
  for (const Keyed& k : all) {
    for (const auto& [from, to, site] : k.facts.edges) {
      add_edge(from, to, site);
    }
  }
  for (std::size_t i = 0; i < all.size(); ++i) {
    for (const CallSite& call : all[i].facts.calls) {
      if (call.held.empty()) continue;
      auto it = by_fn_name.find(call.callee);
      if (it == by_fn_name.end()) continue;
      std::set<std::string> acquired;
      for (std::size_t callee : it->second) {
        acquired.insert(may_acquire[callee].begin(),
                        may_acquire[callee].end());
      }
      for (const std::string& from : call.held) {
        for (const std::string& to : acquired) {
          add_edge(from, to, call.site);
        }
      }
    }
  }

  // Cycle detection over the deterministic (sorted-map) edge set.
  std::map<std::string, std::vector<std::string>> adj;
  for (const auto& [e, site] : edges) {
    (void)site;
    adj[e.first].push_back(e.second);
  }
  std::set<std::string> reported;
  std::map<std::string, int> color;  // 0 white, 1 grey, 2 black
  std::vector<std::string> stack;
  const std::function<void(const std::string&)> dfs =
      [&](const std::string& node) {
        color[node] = 1;
        stack.push_back(node);
        for (const std::string& next : adj[node]) {
          if (color[next] == 1) {
            // Back edge: the cycle is the stack suffix from `next`.
            auto at = std::find(stack.begin(), stack.end(), next);
            std::vector<std::string> cycle(at, stack.end());
            // Canonical rotation for dedup.
            auto min_it = std::min_element(cycle.begin(), cycle.end());
            std::rotate(cycle.begin(), min_it, cycle.end());
            std::string key;
            std::string pretty;
            for (const std::string& n : cycle) {
              key += n + ";";
              pretty += n + " -> ";
            }
            pretty += cycle.front();
            if (reported.insert(key).second) {
              const Site& site = edges.at({node, next});
              const SourceFile* sf = model.file(site.file);
              if (sf != nullptr &&
                  sf->pragmas.allowed(site.line, "lock-cycle")) {
                continue;
              }
              Finding fnd;
              fnd.rule = "lock-cycle";
              fnd.file = site.file;
              fnd.line = static_cast<int>(site.line) + 1;
              fnd.message =
                  "lock acquisition cycle: " + pretty +
                  " — impose a global order or split the critical section";
              fnd.snippet =
                  sf != nullptr && site.line < sf->code.size()
                      ? normalize_ws(sf->code[site.line])
                      : "";
              findings.push_back(std::move(fnd));
            }
          } else if (color[next] == 0) {
            dfs(next);
          }
        }
        stack.pop_back();
        color[node] = 2;
      };
  for (const auto& [node, nexts] : adj) {
    (void)nexts;
    if (color[node] == 0) dfs(node);
  }
}

}  // namespace tlclint
