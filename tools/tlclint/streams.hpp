// Seed-stream discipline (ISSUE 8 tentpole, rule family 3).
//
// Every decorrelated RNG stream in the fleet is an argument to
// sim::stream_seed / sim::stream_rng. Determinism bugs of the
// Mme::poll() class happen when a stream index is an anonymous
// arithmetic expression (`2 * ue + 1`) or a repurposed counter: nobody
// owns the index space, so two sites can silently collide or an
// iteration-order change can silently reassign streams.
//
// The rule: the *last* argument of every stream_seed/stream_rng call
// outside src/sim/ must contain a named stream token — an identifier
// whose name contains "stream" (kAdversaryStream, member_stream,
// slot_stream...). For constant-style tokens (leading 'k') the
// declaration must live in the calling TU, its sibling header, or a
// header the TU directly includes: a stream constant used outside its
// declared owner is exactly the cross-owner draw this rule exists to
// catch. Locals and parameters (lowercase names) are accepted
// wherever they appear — their provenance is the owner's signature.
#pragma once

#include <string>
#include <vector>

#include "lint.hpp"
#include "model.hpp"

namespace tlclint {

void check_streams(const SourceModel& model, std::vector<Finding>& findings);

}  // namespace tlclint
