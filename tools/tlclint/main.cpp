// tlclint CLI. See lint.hpp for the rule catalogue.
//
//   tlclint [--root DIR] [--baseline FILE] [--write-baseline FILE]
//           [--schemas-dir DIR] [--write-schemas DIR] [--force-schemas]
//           [--rule NAME]... [--list-rules] PATH...
//
// Findings go to stdout as `file:line: [rule] message`; the summary
// goes to stderr so golden tests can diff stdout alone. Exit 0 when no
// (new) findings, 1 when findings remain, 2 on usage/IO errors —
// including a refused --write-schemas (layout change without a version
// bump needs --force-schemas).
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "lint.hpp"

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: tlclint [--root DIR] [--baseline FILE]\n"
      "               [--write-baseline FILE] [--schemas-dir DIR]\n"
      "               [--write-schemas DIR] [--force-schemas]\n"
      "               [--rule NAME]... PATH...\n"
      "       tlclint --list-rules\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  tlclint::Options options;
  std::string write_baseline;
  std::string write_schemas;
  bool force_schemas = false;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "tlclint: %s needs an argument\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--root") {
      const char* v = next("--root");
      if (!v) return usage();
      options.root = v;
    } else if (arg == "--baseline") {
      const char* v = next("--baseline");
      if (!v) return usage();
      options.baseline = v;
    } else if (arg == "--write-baseline") {
      const char* v = next("--write-baseline");
      if (!v) return usage();
      write_baseline = v;
    } else if (arg == "--schemas-dir") {
      const char* v = next("--schemas-dir");
      if (!v) return usage();
      options.schemas_dir = v;
    } else if (arg == "--write-schemas") {
      const char* v = next("--write-schemas");
      if (!v) return usage();
      write_schemas = v;
    } else if (arg == "--force-schemas") {
      force_schemas = true;
    } else if (arg == "--rule") {
      const char* v = next("--rule");
      if (!v) return usage();
      options.rules.push_back(v);
    } else if (arg == "--list-rules") {
      for (const std::string& rule : tlclint::all_rules()) {
        std::printf("%s\n", rule.c_str());
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "tlclint: unknown flag %s\n", arg.c_str());
      return usage();
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) return usage();

  if (!write_schemas.empty()) {
    std::string log;
    const int rc = tlclint::write_schema_goldens(paths, options,
                                                 write_schemas, force_schemas,
                                                 log);
    std::fprintf(stderr, "%s", log.c_str());
    return rc;
  }

  const std::vector<tlclint::Finding> all =
      tlclint::lint_paths(paths, options);

  if (!write_baseline.empty()) {
    std::ofstream out(write_baseline);
    if (!out) {
      std::fprintf(stderr, "tlclint: cannot write %s\n",
                   write_baseline.c_str());
      return 2;
    }
    out << tlclint::render_baseline(all);
    std::fprintf(stderr, "tlclint: wrote %zu finding(s) to %s\n", all.size(),
                 write_baseline.c_str());
    return 0;
  }

  std::vector<tlclint::Finding> report = all;
  int suppressed = 0;
  if (!options.baseline.empty()) {
    std::string error;
    const auto baseline = tlclint::load_baseline(options.baseline, error);
    if (!error.empty()) {
      std::fprintf(stderr, "tlclint: %s\n", error.c_str());
      return 2;
    }
    report = tlclint::subtract_baseline(all, baseline, suppressed);
  }

  for (const tlclint::Finding& f : report) {
    std::printf("%s:%d: [%s] %s\n", f.file.c_str(), f.line, f.rule.c_str(),
                f.message.c_str());
    std::printf("    %s\n", f.snippet.c_str());
  }
  std::fprintf(stderr,
               "tlclint: %zu new finding(s), %d suppressed by baseline\n",
               report.size(), suppressed);
  return report.empty() ? 0 : 1;
}
