#include "model.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace tlclint {

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

std::string normalize_ws(const std::string& s) {
  std::string out;
  bool in_space = true;
  for (char c : s) {
    if (c == ' ' || c == '\t' || c == '\n') {
      if (!in_space) out.push_back(' ');
      in_space = true;
    } else {
      out.push_back(c);
      in_space = false;
    }
  }
  while (!out.empty() && out.back() == ' ') out.pop_back();
  return out;
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::string current;
  for (char c : text) {
    if (c == '\n') {
      if (!current.empty() && current.back() == '\r') current.pop_back();
      lines.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) lines.push_back(std::move(current));
  return lines;
}

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.compare(0, prefix.size(), prefix) == 0;
}

// (Raw string literals are treated as plain strings — good enough for
// this codebase, which has none.)
std::vector<std::string> strip_comments_and_strings(
    const std::vector<std::string>& lines) {
  std::vector<std::string> out;
  out.reserve(lines.size());
  bool in_block_comment = false;
  for (const std::string& line : lines) {
    std::string code(line.size(), ' ');
    for (std::size_t i = 0; i < line.size();) {
      if (in_block_comment) {
        if (line[i] == '*' && i + 1 < line.size() && line[i + 1] == '/') {
          in_block_comment = false;
          i += 2;
        } else {
          ++i;
        }
        continue;
      }
      char c = line[i];
      if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') break;
      if (c == '/' && i + 1 < line.size() && line[i + 1] == '*') {
        in_block_comment = true;
        i += 2;
        continue;
      }
      if (c == '"' || c == '\'') {
        const char quote = c;
        code[i] = quote;
        ++i;
        while (i < line.size()) {
          if (line[i] == '\\') {
            i += 2;
            continue;
          }
          if (line[i] == quote) {
            code[i] = quote;
            ++i;
            break;
          }
          ++i;
        }
        continue;
      }
      code[i] = c;
      ++i;
    }
    out.push_back(std::move(code));
  }
  return out;
}

std::vector<std::size_t> find_word(const std::string& code,
                                   const std::string& token) {
  std::vector<std::size_t> hits;
  std::size_t pos = 0;
  while ((pos = code.find(token, pos)) != std::string::npos) {
    const bool start_ok = pos == 0 || !is_ident_char(code[pos - 1]);
    const std::size_t end = pos + token.size();
    const bool end_ok = end >= code.size() || !is_ident_char(code[end]);
    if (start_ok && end_ok) hits.push_back(pos);
    pos = end;
  }
  return hits;
}

std::vector<std::size_t> find_call(const std::string& code,
                                   const std::string& name) {
  std::vector<std::size_t> hits;
  std::size_t pos = 0;
  while ((pos = code.find(name, pos)) != std::string::npos) {
    const std::size_t end = pos + name.size();
    if (end >= code.size() || code[end] != '(') {
      pos = end;
      continue;
    }
    if (pos > 0 && is_ident_char(code[pos - 1])) {
      pos = end;
      continue;
    }
    bool qualified_ok = true;
    if (pos >= 1 && (code[pos - 1] == '.')) qualified_ok = false;
    if (pos >= 2 && code[pos - 2] == '-' && code[pos - 1] == '>')
      qualified_ok = false;
    if (pos >= 2 && code[pos - 1] == ':' && code[pos - 2] == ':') {
      // Only std::time etc. count as the C/chrono function.
      qualified_ok = pos >= 5 && code.compare(pos - 5, 5, "std::") == 0;
    }
    if (qualified_ok) hits.push_back(pos);
    pos = end;
  }
  return hits;
}

Pragmas::Pragmas(const std::vector<std::string>& raw_lines) {
  for (std::size_t i = 0; i < raw_lines.size(); ++i) {
    const std::string& line = raw_lines[i];
    const std::size_t at = line.find("tlclint:");
    if (at == std::string::npos) continue;
    const std::string directive = line.substr(at + 8);
    if (directive.find("ordered") != std::string::npos) {
      allow_[i].insert("unordered-iter");
    }
    std::size_t pos = 0;
    while ((pos = directive.find("allow(", pos)) != std::string::npos) {
      const std::size_t close = directive.find(')', pos);
      if (close == std::string::npos) break;
      std::string inside = directive.substr(pos + 6, close - pos - 6);
      std::stringstream ss(inside);
      std::string rule;
      while (std::getline(ss, rule, ',')) {
        rule = trim(rule);
        if (!rule.empty()) allow_[i].insert(rule);
      }
      pos = close + 1;
    }
  }
}

bool Pragmas::allowed(std::size_t line_index, const std::string& rule) const {
  return allows(line_index, rule) ||
         (line_index > 0 && allows(line_index - 1, rule));
}

bool Pragmas::allows(std::size_t index, const std::string& rule) const {
  auto it = allow_.find(index);
  return it != allow_.end() &&
         (it->second.count(rule) != 0 || it->second.count("*") != 0);
}

std::size_t SourceFile::line_of(std::size_t offset) const {
  auto it = std::upper_bound(line_starts.begin(), line_starts.end(), offset);
  if (it == line_starts.begin()) return 0;
  return static_cast<std::size_t>(it - line_starts.begin()) - 1;
}

std::string SourceFile::stem() const {
  const std::size_t dot = relpath.rfind('.');
  const std::size_t slash = relpath.rfind('/');
  if (dot == std::string::npos ||
      (slash != std::string::npos && dot < slash)) {
    return relpath;
  }
  return relpath.substr(0, dot);
}

namespace {

enum class HeadKind { kContainer, kFunction, kData };

/// A statement head is everything between the previous statement
/// boundary and an opening '{'. At container scope it is either a
/// namespace/class/struct/enum/union, a function definition, or an
/// aggregate initializer; we only need to tell those three apart.
HeadKind classify_head(std::string head) {
  head = trim(head);
  for (bool stripped = true; stripped;) {
    stripped = false;
    for (const char* spec : {"public:", "private:", "protected:"}) {
      if (starts_with(head, spec)) {
        head = trim(head.substr(std::string(spec).size()));
        stripped = true;
      }
    }
  }
  if (head.empty()) return HeadKind::kData;
  if (!head.empty() && head.back() == '=') return HeadKind::kData;
  // Container keywords at angle/paren depth zero (so `template <class
  // T>` and macro arguments do not misfire).
  int angle = 0;
  int paren = 0;
  std::string word;
  bool saw_operator = false;
  std::size_t first_paren = std::string::npos;
  for (std::size_t i = 0; i <= head.size(); ++i) {
    const char c = i < head.size() ? head[i] : ' ';
    if (is_ident_char(c)) {
      word.push_back(c);
      continue;
    }
    if (angle == 0 && paren == 0 && !word.empty()) {
      if (word == "namespace" || word == "class" || word == "struct" ||
          word == "union" || word == "enum") {
        return HeadKind::kContainer;
      }
      if (word == "operator") saw_operator = true;
    }
    word.clear();
    if (c == '<') ++angle;
    if (c == '>' && angle > 0) --angle;
    if (c == '(') {
      if (angle == 0 && paren == 0 && first_paren == std::string::npos) {
        first_paren = i;
      }
      ++paren;
    }
    if (c == ')' && paren > 0) --paren;
  }
  if (saw_operator) return HeadKind::kFunction;
  if (first_paren == std::string::npos) return HeadKind::kData;
  // The token (possibly ::-qualified) immediately before the first
  // top-level '(' is the candidate function name.
  std::size_t e = first_paren;
  while (e > 0 && (head[e - 1] == ' ')) --e;
  std::size_t b = e;
  while (b > 0 && (is_ident_char(head[b - 1]) || head[b - 1] == ':')) --b;
  const std::string name = head.substr(b, e - b);
  if (name.empty()) return HeadKind::kData;
  const std::string last =
      name.rfind(':') == std::string::npos
          ? name
          : name.substr(name.rfind(':') + 1);
  if (last == "if" || last == "for" || last == "while" || last == "switch" ||
      last == "catch" || last == "return" || last.empty()) {
    return HeadKind::kData;
  }
  return HeadKind::kFunction;
}

/// Extracts `name` / `qualified` from a function head.
void head_names(const std::string& head, std::string& name,
                std::string& qualified) {
  int angle = 0;
  std::size_t first_paren = std::string::npos;
  const std::size_t op = head.find("operator");
  for (std::size_t i = 0; i < head.size(); ++i) {
    const char c = head[i];
    if (c == '<') ++angle;
    if (c == '>' && angle > 0) --angle;
    if (c == '(' && angle == 0) {
      // `operator()` / `operator<<`: the paren may belong to the
      // operator token itself; take the first '(' after it.
      if (op != std::string::npos && i >= op && i < op + 8) continue;
      first_paren = i;
      break;
    }
  }
  if (first_paren == std::string::npos) {
    name = qualified = normalize_ws(head);
    return;
  }
  std::size_t e = first_paren;
  while (e > 0 && head[e - 1] == ' ') --e;
  std::size_t b = e;
  while (b > 0 && (is_ident_char(head[b - 1]) || head[b - 1] == ':')) --b;
  qualified = head.substr(b, e - b);
  const std::size_t colon = qualified.rfind(':');
  name = colon == std::string::npos ? qualified : qualified.substr(colon + 1);
  if (op != std::string::npos && op < first_paren) {
    qualified = normalize_ws(head.substr(op, first_paren - op));
    name = qualified;
  }
}

bool preprocessor_line(const std::string& line) {
  const std::string t = trim(line);
  return !t.empty() && t[0] == '#';
}

/// Single forward pass over the joined code text: tracks brace nesting,
/// records function bodies found at container scope (file, namespace,
/// class) and fast-forwards over them so lambdas and local types inside
/// bodies never masquerade as top-level definitions.
void scan_functions(SourceFile& f) {
  const std::string& t = f.joined;
  std::vector<HeadKind> stack;
  std::size_t stmt_start = 0;
  std::size_t line_start = 0;
  std::size_t i = 0;
  while (i < t.size()) {
    const char c = t[i];
    if (c == '\n') {
      if (preprocessor_line(t.substr(line_start, i - line_start))) {
        stmt_start = i + 1;
      }
      line_start = i + 1;
      ++i;
      continue;
    }
    if (c == ';') {
      stmt_start = i + 1;
      ++i;
      continue;
    }
    if (c == '}') {
      if (!stack.empty()) stack.pop_back();
      stmt_start = i + 1;
      ++i;
      continue;
    }
    if (c != '{') {
      ++i;
      continue;
    }
    const std::string head =
        normalize_ws(t.substr(stmt_start, i - stmt_start));
    const bool container_ctx =
        stack.empty() || stack.back() == HeadKind::kContainer;
    const HeadKind kind = classify_head(head);
    if (container_ctx && kind == HeadKind::kFunction) {
      FunctionDef fn;
      fn.head = head;
      head_names(head, fn.name, fn.qualified);
      // First non-space char of the head anchors the pragma line.
      std::size_t hb = stmt_start;
      while (hb < i && (t[hb] == ' ' || t[hb] == '\t' || t[hb] == '\n')) ++hb;
      fn.head_line = f.line_of(hb);
      fn.body_begin = i + 1;
      int depth = 1;
      std::size_t j = i + 1;
      while (j < t.size() && depth > 0) {
        if (t[j] == '{') ++depth;
        if (t[j] == '}') --depth;
        ++j;
      }
      fn.body_end = depth == 0 ? j - 1 : t.size();
      const std::size_t body_end = fn.body_end;
      f.functions.push_back(std::move(fn));
      i = body_end < t.size() ? body_end + 1 : t.size();
      stmt_start = i;
      continue;
    }
    stack.push_back(kind);
    stmt_start = i + 1;
    ++i;
  }
}

void parse_includes(SourceFile& f) {
  for (const std::string& line : f.raw) {
    const std::string t = trim(line);
    if (!starts_with(t, "#include")) continue;
    const std::size_t q1 = t.find('"');
    if (q1 == std::string::npos) continue;
    const std::size_t q2 = t.find('"', q1 + 1);
    if (q2 == std::string::npos) continue;
    f.includes.push_back(t.substr(q1 + 1, q2 - q1 - 1));
  }
}

}  // namespace

void SourceModel::add_file(const std::string& relpath,
                           const std::string& contents) {
  SourceFile f;
  f.relpath = relpath;
  f.raw = split_lines(contents);
  f.code = strip_comments_and_strings(f.raw);
  f.pragmas = Pragmas(f.raw);
  parse_includes(f);
  f.joined.clear();
  for (const std::string& line : f.code) {
    f.line_starts.push_back(f.joined.size());
    f.joined += line;
    f.joined.push_back('\n');
  }
  scan_functions(f);
  by_path_[relpath] = files_.size();
  by_stem_[f.stem()].push_back(files_.size());
  files_.push_back(std::move(f));
}

void SourceModel::finalize() {
  functions_by_name_.clear();
  for (std::size_t fi = 0; fi < files_.size(); ++fi) {
    for (std::size_t gi = 0; gi < files_[fi].functions.size(); ++gi) {
      functions_by_name_[files_[fi].functions[gi].name].push_back({fi, gi});
    }
  }
}

const SourceFile* SourceModel::file(const std::string& relpath) const {
  auto it = by_path_.find(relpath);
  return it == by_path_.end() ? nullptr : &files_[it->second];
}

std::vector<const SourceFile*> SourceModel::stem_group(
    const std::string& stem) const {
  std::vector<const SourceFile*> out;
  auto it = by_stem_.find(stem);
  if (it == by_stem_.end()) return out;
  for (std::size_t idx : it->second) out.push_back(&files_[idx]);
  return out;
}

std::vector<std::pair<const SourceFile*, const FunctionDef*>>
SourceModel::functions_named(const std::string& name) const {
  std::vector<std::pair<const SourceFile*, const FunctionDef*>> out;
  auto it = functions_by_name_.find(name);
  if (it == functions_by_name_.end()) return out;
  for (const auto& [fi, gi] : it->second) {
    out.push_back({&files_[fi], &files_[fi].functions[gi]});
  }
  return out;
}

bool SourceModel::directly_includes(const std::string& from,
                                    const std::string& header_suffix) const {
  const SourceFile* f = file(from);
  if (f == nullptr) return false;
  for (const std::string& inc : f->includes) {
    if (inc == header_suffix) return true;
    if (inc.size() > header_suffix.size() &&
        inc.compare(inc.size() - header_suffix.size() - 1, 1, "/") == 0 &&
        inc.compare(inc.size() - header_suffix.size(), header_suffix.size(),
                    header_suffix) == 0) {
      return true;
    }
  }
  return false;
}

}  // namespace tlclint
