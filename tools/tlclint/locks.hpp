// Lock-order analysis (ISSUE 8 tentpole, rule family 2).
//
// Clang's -Wthread-safety proves that annotated mutexes guard what
// they claim, but it does not see a *global* acquisition order. This
// pass rebuilds one from the model:
//
//   nodes   `util::Mutex` declarations, keyed `<stem>::<name>` so a
//           mutex named in a header and locked in its .cpp is one node
//   edges   A -> B when a MutexLock of B happens (textually, scope-
//           tracked) while a MutexLock of A is live — directly, or
//           transitively through the name-resolved call graph (a call
//           made under A to a function whose may-acquire set contains
//           B adds A -> B at the call site)
//
// Two rules:
//
//   lock-cycle       any cycle in the edge set, including the length-1
//                    self-deadlock of re-acquiring a held mutex
//   lock-discipline  naked `.lock()` / `.try_lock()` / `.unlock()` on
//                    a resolved util::Mutex — bypassing MutexLock
//                    blinds both -Wthread-safety and this graph
//
// The may-acquire sets are a fixpoint over the call graph, so an edge
// through three layers of helpers is still found; unresolvable callees
// (function pointers, std:: calls) are conservatively ignored.
#pragma once

#include <string>
#include <vector>

#include "lint.hpp"
#include "model.hpp"

namespace tlclint {

/// Runs both lock rules over every `src/` file in the model.
void check_locks(const SourceModel& model, std::vector<Finding>& findings);

}  // namespace tlclint
