#include "util/serde.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace tlc {
namespace {

TEST(SerdeTest, ScalarRoundTrip) {
  ByteWriter w;
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.i64(-42);
  w.f64(3.14159);

  ByteReader r(w.data());
  EXPECT_EQ(*r.u8(), 0xab);
  EXPECT_EQ(*r.u16(), 0x1234);
  EXPECT_EQ(*r.u32(), 0xdeadbeefu);
  EXPECT_EQ(*r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(*r.i64(), -42);
  EXPECT_DOUBLE_EQ(*r.f64(), 3.14159);
  EXPECT_TRUE(r.exhausted());
}

TEST(SerdeTest, BigEndianLayout) {
  ByteWriter w;
  w.u32(0x01020304);
  const Bytes& data = w.data();
  ASSERT_EQ(data.size(), 4u);
  EXPECT_EQ(data[0], 0x01);
  EXPECT_EQ(data[3], 0x04);
}

TEST(SerdeTest, BlobAndStringRoundTrip) {
  ByteWriter w;
  w.blob(bytes_of("payload"));
  w.str("hello world");
  w.blob({});

  ByteReader r(w.data());
  EXPECT_EQ(*r.blob(), bytes_of("payload"));
  EXPECT_EQ(*r.str(), "hello world");
  EXPECT_TRUE(r.blob()->empty());
  EXPECT_TRUE(r.exhausted());
}

TEST(SerdeTest, TruncationDetected) {
  ByteWriter w;
  w.u64(7);
  Bytes data = w.take();
  data.pop_back();
  ByteReader r(data);
  EXPECT_FALSE(r.u64());
}

TEST(SerdeTest, TruncatedBlobBodyDetected) {
  ByteWriter w;
  w.blob(bytes_of("0123456789"));
  Bytes data = w.take();
  data.resize(data.size() - 3);
  ByteReader r(data);
  EXPECT_FALSE(r.blob());
}

TEST(SerdeTest, EmptyReaderFailsCleanly) {
  const Bytes empty;
  ByteReader r(empty);
  EXPECT_FALSE(r.u8());
  EXPECT_FALSE(r.u16());
  EXPECT_FALSE(r.u32());
  EXPECT_FALSE(r.u64());
  EXPECT_FALSE(r.blob());
  EXPECT_TRUE(r.exhausted());
}

TEST(SerdeTest, ExtremeValues) {
  ByteWriter w;
  w.u64(std::numeric_limits<std::uint64_t>::max());
  w.i64(std::numeric_limits<std::int64_t>::min());
  w.f64(-0.0);
  w.f64(std::numeric_limits<double>::infinity());
  ByteReader r(w.data());
  EXPECT_EQ(*r.u64(), std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(*r.i64(), std::numeric_limits<std::int64_t>::min());
  EXPECT_EQ(*r.f64(), 0.0);
  EXPECT_EQ(*r.f64(), std::numeric_limits<double>::infinity());
}

TEST(SerdeTest, DeterministicEncoding) {
  // Two writers encoding the same fields must produce identical bytes —
  // signatures are computed over the encoding.
  auto encode = [] {
    ByteWriter w;
    w.u64(1234567);
    w.str("plan");
    w.f64(0.5);
    return w.take();
  };
  EXPECT_EQ(encode(), encode());
}

TEST(SerdeTest, RemainingTracksConsumption) {
  ByteWriter w;
  w.u32(1);
  w.u32(2);
  ByteReader r(w.data());
  EXPECT_EQ(r.remaining(), 8u);
  (void)r.u32();
  EXPECT_EQ(r.remaining(), 4u);
  (void)r.u32();
  EXPECT_EQ(r.remaining(), 0u);
}

}  // namespace
}  // namespace tlc
