#include "util/bytes.hpp"

#include <gtest/gtest.h>

namespace tlc {
namespace {

TEST(BytesTest, HexRoundTrip) {
  const Bytes data = {0x00, 0x01, 0xab, 0xff, 0x7e};
  EXPECT_EQ(to_hex(data), "0001abff7e");
  auto back = from_hex("0001abff7e");
  ASSERT_TRUE(back);
  EXPECT_EQ(*back, data);
}

TEST(BytesTest, HexEmpty) {
  EXPECT_EQ(to_hex({}), "");
  auto back = from_hex("");
  ASSERT_TRUE(back);
  EXPECT_TRUE(back->empty());
}

TEST(BytesTest, HexUppercaseAccepted) {
  auto value = from_hex("DEADBEEF");
  ASSERT_TRUE(value);
  EXPECT_EQ(to_hex(*value), "deadbeef");
}

TEST(BytesTest, HexOddLengthRejected) {
  EXPECT_FALSE(from_hex("abc"));
}

TEST(BytesTest, HexBadCharacterRejected) {
  EXPECT_FALSE(from_hex("zz"));
  EXPECT_FALSE(from_hex("0g"));
}

TEST(BytesTest, BytesOfString) {
  const Bytes b = bytes_of("abc");
  ASSERT_EQ(b.size(), 3u);
  EXPECT_EQ(b[0], 'a');
  EXPECT_EQ(b[2], 'c');
}

TEST(BytesTest, PrintableMasksControlBytes) {
  const Bytes data = {'h', 'i', 0x00, 0x1f, '!'};
  EXPECT_EQ(printable(data), "hi..!");
}

TEST(BytesTest, ConstantTimeEqual) {
  const Bytes a = bytes_of("signature-material");
  Bytes b = a;
  EXPECT_TRUE(constant_time_equal(a, b));
  b.back() ^= 1;
  EXPECT_FALSE(constant_time_equal(a, b));
  b.pop_back();
  EXPECT_FALSE(constant_time_equal(a, b));  // length mismatch
  EXPECT_TRUE(constant_time_equal({}, {}));
}

TEST(BytesTest, AppendConcatenates) {
  Bytes dst = bytes_of("ab");
  append(dst, bytes_of("cd"));
  EXPECT_EQ(dst, bytes_of("abcd"));
  append(dst, {});
  EXPECT_EQ(dst, bytes_of("abcd"));
}

}  // namespace
}  // namespace tlc
