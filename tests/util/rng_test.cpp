#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace tlc {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(1234);
  Rng b(1234);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    equal += a.next_u64() == b.next_u64() ? 1 : 0;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, UniformBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.uniform_u64(17), 17u);
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
  EXPECT_EQ(rng.uniform_u64(0), 0u);
  EXPECT_EQ(rng.uniform_u64(1), 0u);
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const std::int64_t v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo = saw_lo || v == -3;
    saw_hi = saw_hi || v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
  EXPECT_EQ(rng.uniform_int(5, 5), 5);
  EXPECT_EQ(rng.uniform_int(9, 2), 9);  // degenerate returns lo
}

TEST(RngTest, GaussianMoments) {
  Rng rng(42);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(43);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double e = rng.exponential(2.5);
    EXPECT_GE(e, 0.0);
    sum += e;
  }
  EXPECT_NEAR(sum / n, 2.5, 0.05);
}

TEST(RngTest, ChanceEdges) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(RngTest, ChanceFrequency) {
  Rng rng(6);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    hits += rng.chance(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, PoissonMean) {
  Rng rng(8);
  for (double mean : {0.5, 4.0, 80.0}) {
    double sum = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
      sum += static_cast<double>(rng.poisson(mean));
    }
    EXPECT_NEAR(sum / n, mean, mean * 0.05 + 0.02) << "mean=" << mean;
  }
  EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(RngTest, BytesLengthAndDeterminism) {
  Rng a(77);
  Rng b(77);
  const Bytes x = a.bytes(33);
  const Bytes y = b.bytes(33);
  EXPECT_EQ(x.size(), 33u);
  EXPECT_EQ(x, y);
}

TEST(RngTest, ForkDecorrelates) {
  Rng parent(99);
  Rng child = parent.fork();
  // The fork consumes parent state, so parent and child streams differ.
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    equal += parent.next_u64() == child.next_u64() ? 1 : 0;
  }
  EXPECT_LT(equal, 2);
}

}  // namespace
}  // namespace tlc
